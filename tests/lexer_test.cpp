//===- tests/lexer_test.cpp - Lexer tests --------------------------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/lexer.h"

#include <gtest/gtest.h>

using namespace warrow;

namespace {

std::vector<Token> lex(std::string_view Source, DiagnosticEngine &Diags) {
  Lexer L(Source, Diags);
  return L.lexAll();
}

TEST(Lexer, Keywords) {
  DiagnosticEngine Diags;
  auto Tokens =
      lex("int void if else while for return break continue", Diags);
  ASSERT_EQ(Tokens.size(), 10u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::KwInt);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::KwVoid);
  EXPECT_EQ(Tokens[2].Kind, TokenKind::KwIf);
  EXPECT_EQ(Tokens[3].Kind, TokenKind::KwElse);
  EXPECT_EQ(Tokens[4].Kind, TokenKind::KwWhile);
  EXPECT_EQ(Tokens[5].Kind, TokenKind::KwFor);
  EXPECT_EQ(Tokens[6].Kind, TokenKind::KwReturn);
  EXPECT_EQ(Tokens[7].Kind, TokenKind::KwBreak);
  EXPECT_EQ(Tokens[8].Kind, TokenKind::KwContinue);
  EXPECT_EQ(Tokens[9].Kind, TokenKind::Eof);
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(Lexer, OperatorsAndPunctuation) {
  DiagnosticEngine Diags;
  auto Tokens = lex("= == != < <= > >= && || ! + - * / % ( ) { } [ ] ; ,",
                    Diags);
  std::vector<TokenKind> Expected = {
      TokenKind::Assign,      TokenKind::EqualEqual, TokenKind::BangEqual,
      TokenKind::Less,        TokenKind::LessEqual,  TokenKind::Greater,
      TokenKind::GreaterEqual, TokenKind::AmpAmp,    TokenKind::PipePipe,
      TokenKind::Bang,        TokenKind::Plus,       TokenKind::Minus,
      TokenKind::Star,        TokenKind::Slash,      TokenKind::Percent,
      TokenKind::LParen,      TokenKind::RParen,     TokenKind::LBrace,
      TokenKind::RBrace,      TokenKind::LBracket,   TokenKind::RBracket,
      TokenKind::Semicolon,   TokenKind::Comma,      TokenKind::Eof};
  ASSERT_EQ(Tokens.size(), Expected.size());
  for (size_t I = 0; I < Expected.size(); ++I)
    EXPECT_EQ(Tokens[I].Kind, Expected[I]) << "token " << I;
}

TEST(Lexer, IntegerLiterals) {
  DiagnosticEngine Diags;
  auto Tokens = lex("0 42 123456789", Diags);
  EXPECT_EQ(Tokens[0].IntValue, 0);
  EXPECT_EQ(Tokens[1].IntValue, 42);
  EXPECT_EQ(Tokens[2].IntValue, 123456789);
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(Lexer, OverflowingLiteralDiagnosed) {
  DiagnosticEngine Diags;
  lex("99999999999999999999999999", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lexer, CommentsSkipped) {
  DiagnosticEngine Diags;
  auto Tokens = lex("a // line comment\nb /* block\ncomment */ c", Diags);
  ASSERT_EQ(Tokens.size(), 4u);
  EXPECT_EQ(Tokens[0].Text, "a");
  EXPECT_EQ(Tokens[1].Text, "b");
  EXPECT_EQ(Tokens[2].Text, "c");
  EXPECT_EQ(Tokens[2].Line, 3u);
}

TEST(Lexer, UnterminatedBlockComment) {
  DiagnosticEngine Diags;
  lex("a /* never closed", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lexer, PositionsTracked) {
  DiagnosticEngine Diags;
  auto Tokens = lex("a\n  b", Diags);
  EXPECT_EQ(Tokens[0].Line, 1u);
  EXPECT_EQ(Tokens[0].Column, 1u);
  EXPECT_EQ(Tokens[1].Line, 2u);
  EXPECT_EQ(Tokens[1].Column, 3u);
}

TEST(Lexer, InvalidCharacter) {
  DiagnosticEngine Diags;
  auto Tokens = lex("a # b", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  bool HasError = false;
  for (const Token &T : Tokens)
    if (T.Kind == TokenKind::Error)
      HasError = true;
  EXPECT_TRUE(HasError);
}

TEST(Lexer, SingleAmpersandRejected) {
  DiagnosticEngine Diags;
  lex("a & b", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lexer, ConcurrencyKeywords) {
  DiagnosticEngine Diags;
  auto Tokens = lex("spawn lock unlock mutex spawned lockx", Diags);
  ASSERT_EQ(Tokens.size(), 7u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::KwSpawn);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::KwLock);
  EXPECT_EQ(Tokens[2].Kind, TokenKind::KwUnlock);
  EXPECT_EQ(Tokens[3].Kind, TokenKind::KwMutex);
  // Keywords don't swallow identifier prefixes.
  EXPECT_EQ(Tokens[4].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[5].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[6].Kind, TokenKind::Eof);
  EXPECT_FALSE(Diags.hasErrors());
}

} // namespace
