//===- tests/interval_test.cpp - Interval domain tests -----------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Unit tests plus parameterized property tests of the lattice and
// widening/narrowing laws on random interval samples.
//
//===----------------------------------------------------------------------===//

#include "lattice/interval.h"
#include "support/rng.h"

#include <gtest/gtest.h>

using namespace warrow;

namespace {

Interval Iv(int64_t Lo, int64_t Hi) { return Interval::make(Lo, Hi); }

TEST(Interval, Basics) {
  EXPECT_TRUE(Interval::bot().isBot());
  EXPECT_TRUE(Interval::top().isTop());
  EXPECT_TRUE(Interval::constant(4).isConstant());
  EXPECT_EQ(Interval::constant(4).constantValue(), 4);
  EXPECT_TRUE(Iv(1, 3).contains(2));
  EXPECT_FALSE(Iv(1, 3).contains(4));
  EXPECT_FALSE(Interval::bot().contains(0));
  EXPECT_EQ(Iv(1, 3).str(), "[1,3]");
  EXPECT_EQ(Interval::bot().str(), "bot");
  EXPECT_EQ(Interval::atLeast(Bound(2)).str(), "[2,+inf]");
}

TEST(Interval, LatticeOps) {
  EXPECT_EQ(Iv(0, 3).join(Iv(2, 5)), Iv(0, 5));
  EXPECT_EQ(Iv(0, 3).meet(Iv(2, 5)), Iv(2, 3));
  EXPECT_TRUE(Iv(0, 1).meet(Iv(3, 4)).isBot());
  EXPECT_TRUE(Iv(1, 2).leq(Iv(0, 3)));
  EXPECT_FALSE(Iv(0, 3).leq(Iv(1, 2)));
  EXPECT_EQ(Interval::bot().join(Iv(1, 2)), Iv(1, 2));
  EXPECT_TRUE(Interval::bot().leq(Interval::bot()));
}

TEST(Interval, WidenNarrow) {
  // Unstable bounds jump to infinity.
  EXPECT_EQ(Iv(0, 3).widen(Iv(0, 5)), Iv(0, 3).widen(Iv(2, 5)));
  Interval W = Iv(0, 3).widen(Iv(0, 5));
  EXPECT_TRUE(W.hi().isPosInf());
  EXPECT_EQ(W.lo(), Bound(0));
  Interval W2 = Iv(0, 3).widen(Iv(-1, 3));
  EXPECT_TRUE(W2.lo().isNegInf());
  // Stable: unchanged.
  EXPECT_EQ(Iv(0, 5).widen(Iv(1, 4)), Iv(0, 5));
  // Narrowing refines only infinite bounds.
  EXPECT_EQ(Interval::atLeast(Bound(0)).narrow(Iv(0, 7)), Iv(0, 7));
  EXPECT_EQ(Iv(0, 100).narrow(Iv(0, 7)), Iv(0, 100));
  EXPECT_EQ(Interval::top().narrow(Iv(-3, 7)), Iv(-3, 7));
}

TEST(Interval, WidenWithThresholds) {
  std::vector<int64_t> Thresholds = {-1, 0, 1, 10, 100};
  EXPECT_EQ(Iv(0, 3).widenWithThresholds(Iv(0, 5), Thresholds), Iv(0, 10));
  EXPECT_EQ(Iv(0, 3).widenWithThresholds(Iv(0, 50), Thresholds),
            Iv(0, 100));
  Interval Past = Iv(0, 3).widenWithThresholds(Iv(0, 500), Thresholds);
  EXPECT_TRUE(Past.hi().isPosInf());
  Interval Down = Iv(0, 3).widenWithThresholds(Iv(-5, 3), Thresholds);
  EXPECT_TRUE(Down.lo().isNegInf())
      << "no threshold lies at or below -5, so the bound falls to -inf";
  std::vector<int64_t> WithNeg = {-10, -1, 0, 1, 10, 100};
  EXPECT_EQ(Iv(0, 3).widenWithThresholds(Iv(-5, 3), WithNeg), Iv(-10, 3))
      << "snaps to the largest threshold at or below the new bound";
}

TEST(Interval, Arithmetic) {
  EXPECT_EQ(Iv(1, 2).add(Iv(3, 5)), Iv(4, 7));
  EXPECT_EQ(Iv(1, 2).sub(Iv(3, 5)), Iv(-4, -1));
  EXPECT_EQ(Iv(-2, 3).mul(Iv(4, 5)), Iv(-10, 15));
  EXPECT_EQ(Iv(-2, -1).mul(Iv(-3, -2)), Iv(2, 6));
  EXPECT_EQ(Iv(2, 3).neg(), Iv(-3, -2));
  EXPECT_TRUE(Iv(1, 2).add(Interval::bot()).isBot());
}

TEST(Interval, Division) {
  EXPECT_EQ(Iv(10, 20).div(Iv(2, 5)), Iv(2, 10));
  EXPECT_EQ(Iv(10, 20).div(Iv(-2, -1)), Iv(-20, -5));
  // Divisor straddling zero: zero removed, both signs joined.
  EXPECT_EQ(Iv(10, 20).div(Iv(-2, 2)), Iv(-20, 20));
  EXPECT_TRUE(Iv(10, 20).div(Interval::constant(0)).isBot())
      << "division by exactly zero is infeasible";
  EXPECT_EQ(Iv(7, 7).div(Iv(2, 2)), Iv(3, 3));
  EXPECT_EQ(Iv(-7, -7).div(Iv(2, 2)), Interval::constant(-3))
      << "C-style truncation towards zero";
}

TEST(Interval, Remainder) {
  Interval R = Iv(0, 100).rem(Iv(10, 10));
  EXPECT_TRUE(Iv(0, 9).leq(R));
  EXPECT_TRUE(R.leq(Iv(0, 9)));
  // Sign follows the dividend.
  Interval R2 = Iv(-100, -1).rem(Iv(10, 10));
  EXPECT_TRUE(R2.leq(Iv(-9, 0)));
  // Bounded by the dividend when smaller.
  EXPECT_TRUE(Iv(0, 3).rem(Iv(10, 10)).leq(Iv(0, 3)));
  EXPECT_TRUE(Iv(1, 5).rem(Interval::constant(0)).isBot());
  // Soundness spot checks.
  for (int64_t A = -20; A <= 20; ++A)
    for (int64_t B = 1; B <= 7; ++B)
      EXPECT_TRUE(Iv(A, A).rem(Iv(B, B)).contains(A % B))
          << A << " % " << B;
}

TEST(Interval, Restrictions) {
  EXPECT_EQ(Iv(0, 10).restrictLess(Iv(3, 5)), Iv(0, 4));
  EXPECT_EQ(Iv(0, 10).restrictLessEq(Iv(3, 5)), Iv(0, 5));
  EXPECT_EQ(Iv(0, 10).restrictGreater(Iv(3, 5)), Iv(4, 10));
  EXPECT_EQ(Iv(0, 10).restrictGreaterEq(Iv(3, 5)), Iv(3, 10));
  EXPECT_EQ(Iv(0, 10).restrictEqual(Iv(3, 5)), Iv(3, 5));
  EXPECT_EQ(Iv(0, 10).restrictNotEqual(Interval::constant(0)), Iv(1, 10));
  EXPECT_EQ(Iv(0, 10).restrictNotEqual(Interval::constant(10)), Iv(0, 9));
  EXPECT_EQ(Iv(0, 10).restrictNotEqual(Interval::constant(5)), Iv(0, 10))
      << "interior removal cannot be represented";
  EXPECT_TRUE(Interval::constant(3)
                  .restrictNotEqual(Interval::constant(3))
                  .isBot());
  EXPECT_TRUE(Iv(5, 10).restrictLess(Iv(0, 5)).isBot());
}

// --- Property tests over random samples ------------------------------------

class IntervalLaws : public ::testing::TestWithParam<uint64_t> {
protected:
  Interval sample(Rng &R) {
    switch (R.below(8)) {
    case 0:
      return Interval::bot();
    case 1:
      return Interval::top();
    case 2:
      return Interval::atLeast(Bound(R.range(-50, 50)));
    case 3:
      return Interval::atMost(Bound(R.range(-50, 50)));
    default: {
      int64_t A = R.range(-50, 50), B = R.range(-50, 50);
      return Interval::make(Bound(std::min(A, B)), Bound(std::max(A, B)));
    }
    }
  }
};

TEST_P(IntervalLaws, LatticeLaws) {
  Rng R(GetParam());
  for (int K = 0; K < 300; ++K) {
    Interval A = sample(R), B = sample(R), C = sample(R);
    // Partial order.
    EXPECT_TRUE(A.leq(A));
    EXPECT_TRUE(Interval::bot().leq(A));
    EXPECT_TRUE(A.leq(Interval::top()));
    // Join is lub.
    EXPECT_TRUE(A.leq(A.join(B)));
    EXPECT_TRUE(B.leq(A.join(B)));
    if (A.leq(C) && B.leq(C)) {
      EXPECT_TRUE(A.join(B).leq(C));
    }
    // Meet is glb.
    EXPECT_TRUE(A.meet(B).leq(A));
    EXPECT_TRUE(A.meet(B).leq(B));
    if (C.leq(A) && C.leq(B)) {
      EXPECT_TRUE(C.leq(A.meet(B)));
    }
    // Commutativity / associativity.
    EXPECT_EQ(A.join(B), B.join(A));
    EXPECT_EQ(A.meet(B), B.meet(A));
    EXPECT_EQ(A.join(B).join(C), A.join(B.join(C)));
  }
}

TEST_P(IntervalLaws, WideningLaws) {
  Rng R(GetParam() + 1000);
  for (int K = 0; K < 300; ++K) {
    Interval A = sample(R), B = sample(R);
    // a ⊔ b ⊑ a ▽ b.
    EXPECT_TRUE(A.join(B).leq(A.widen(B)))
        << A.str() << " widen " << B.str();
    // Narrowing: for b ⊑ a, b ⊑ a △ b ⊑ a.
    Interval Small = A.meet(B);
    EXPECT_TRUE(Small.leq(A.narrow(Small)));
    EXPECT_TRUE(A.narrow(Small).leq(A));
  }
}

TEST_P(IntervalLaws, ArithmeticSoundness) {
  Rng R(GetParam() + 2000);
  for (int K = 0; K < 200; ++K) {
    int64_t ALo = R.range(-20, 20);
    int64_t AHi = ALo + static_cast<int64_t>(R.below(5));
    int64_t BLo = R.range(-20, 20);
    int64_t BHi = BLo + static_cast<int64_t>(R.below(5));
    Interval A = Iv(ALo, AHi), B = Iv(BLo, BHi);
    for (int64_t X = ALo; X <= AHi; ++X)
      for (int64_t Y = BLo; Y <= BHi; ++Y) {
        EXPECT_TRUE(A.add(B).contains(X + Y));
        EXPECT_TRUE(A.sub(B).contains(X - Y));
        EXPECT_TRUE(A.mul(B).contains(X * Y));
        if (Y != 0) {
          EXPECT_TRUE(A.div(B).contains(X / Y))
              << A.str() << "/" << B.str() << " at " << X << "/" << Y;
          EXPECT_TRUE(A.rem(B).contains(X % Y))
              << A.str() << "%" << B.str() << " at " << X << "%" << Y;
        }
      }
  }
}

TEST_P(IntervalLaws, WideningStabilizesChains) {
  Rng R(GetParam() + 3000);
  for (int K = 0; K < 50; ++K) {
    Interval Acc = sample(R);
    // Any sequence combined via widening stabilizes quickly.
    int Changes = 0;
    for (int Step = 0; Step < 100; ++Step) {
      Interval Next = Acc.widen(Acc.join(sample(R)));
      if (!(Next == Acc))
        ++Changes;
      Acc = Next;
    }
    EXPECT_LE(Changes, 4) << "interval widening has small height";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalLaws,
                         ::testing::Values(1ull, 2ull, 3ull, 17ull, 99ull));

} // namespace
