//===- tests/engine_hygiene_test.cpp - Engine layering hygiene gate ------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The instrumentation layer (engine/instr.h) is the only place allowed to
// talk to the trace sink: strategies emit through TraceEmitter /
// Instrumentation so the `if (Options.Trace)` boilerplate the refactor
// removed cannot creep back in. This gate greps every header under
// src/engine/strategies/ for direct TraceSink / TraceEvent usage.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#ifndef WARROW_SOURCE_DIR
#error "WARROW_SOURCE_DIR must be defined by the test build"
#endif

namespace {

namespace fs = std::filesystem;

std::string readFile(const fs::path &Path) {
  std::ifstream In(Path);
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

/// Lines that use a forbidden token outside comments. Doc comments may
/// mention the types; code may not.
std::vector<std::string> violatingLines(const std::string &Text,
                                        const std::string &Token) {
  std::vector<std::string> Bad;
  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line)) {
    std::string Code = Line.substr(0, Line.find("//"));
    if (Code.find(Token) != std::string::npos)
      Bad.push_back(Line);
  }
  return Bad;
}

TEST(EngineHygiene, StrategiesNeverTouchTheTraceSinkDirectly) {
  fs::path Dir = fs::path(WARROW_SOURCE_DIR) / "src" / "engine" /
                 "strategies";
  ASSERT_TRUE(fs::is_directory(Dir)) << Dir;
  size_t Headers = 0;
  for (const fs::directory_entry &Entry : fs::directory_iterator(Dir)) {
    if (Entry.path().extension() != ".h")
      continue;
    ++Headers;
    std::string Text = readFile(Entry.path());
    ASSERT_FALSE(Text.empty()) << Entry.path();
    for (const char *Token :
         {"Options.Trace->", "TraceSink", "TraceEvent::", "->event("}) {
      std::vector<std::string> Bad = violatingLines(Text, Token);
      EXPECT_TRUE(Bad.empty())
          << Entry.path().filename() << " uses '" << Token
          << "' directly; route it through engine/instr.h. First hit:\n  "
          << Bad.front();
    }
  }
  // All eleven strategy headers scanned (a silently empty directory
  // would pass vacuously otherwise).
  EXPECT_EQ(Headers, 11u);
}

TEST(EngineHygiene, LegacySolverHeadersAreShims) {
  // The tentpole's LoC contract: src/solvers/*.h forward to the engine
  // and contain no iteration loops of their own.
  fs::path Dir = fs::path(WARROW_SOURCE_DIR) / "src" / "solvers";
  for (const fs::directory_entry &Entry : fs::directory_iterator(Dir)) {
    if (Entry.path().extension() != ".h" ||
        Entry.path().filename() == "stats.h")
      continue;
    std::string Text = readFile(Entry.path());
    EXPECT_NE(Text.find("engine/"), std::string::npos)
        << Entry.path().filename() << ": shim must include the engine";
    for (const char *Token : {"while (", "while(", "for (", "for("}) {
      std::vector<std::string> Bad = violatingLines(Text, Token);
      EXPECT_TRUE(Bad.empty())
          << Entry.path().filename()
          << " still contains an iteration loop; the engine owns those:\n  "
          << Bad.front();
    }
  }
}

} // namespace
