//===- tests/engine_hygiene_test.cpp - Engine layering hygiene gate ------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The instrumentation layer (engine/instr.h) is the only place allowed to
// talk to the trace sink: strategies emit through TraceEmitter /
// Instrumentation so the `if (Options.Trace)` boilerplate the refactor
// removed cannot creep back in. This gate greps every header under
// src/engine/strategies/ for direct TraceSink / TraceEvent usage.
//
//===----------------------------------------------------------------------===//

#include "engine/registry.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#ifndef WARROW_SOURCE_DIR
#error "WARROW_SOURCE_DIR must be defined by the test build"
#endif

namespace {

namespace fs = std::filesystem;

std::string readFile(const fs::path &Path) {
  std::ifstream In(Path);
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

/// Lines that use a forbidden token outside comments. Doc comments may
/// mention the types; code may not.
std::vector<std::string> violatingLines(const std::string &Text,
                                        const std::string &Token) {
  std::vector<std::string> Bad;
  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line)) {
    std::string Code = Line.substr(0, Line.find("//"));
    if (Code.find(Token) != std::string::npos)
      Bad.push_back(Line);
  }
  return Bad;
}

TEST(EngineHygiene, StrategiesNeverTouchTheTraceSinkDirectly) {
  fs::path Dir = fs::path(WARROW_SOURCE_DIR) / "src" / "engine" /
                 "strategies";
  ASSERT_TRUE(fs::is_directory(Dir)) << Dir;
  size_t Headers = 0;
  for (const fs::directory_entry &Entry : fs::directory_iterator(Dir)) {
    if (Entry.path().extension() != ".h")
      continue;
    ++Headers;
    std::string Text = readFile(Entry.path());
    ASSERT_FALSE(Text.empty()) << Entry.path();
    for (const char *Token :
         {"Options.Trace->", "TraceSink", "TraceEvent::", "->event("}) {
      std::vector<std::string> Bad = violatingLines(Text, Token);
      EXPECT_TRUE(Bad.empty())
          << Entry.path().filename() << " uses '" << Token
          << "' directly; route it through engine/instr.h. First hit:\n  "
          << Bad.front();
    }
  }
  // All eleven strategy headers scanned (a silently empty directory
  // would pass vacuously otherwise).
  EXPECT_EQ(Headers, 11u);
}

TEST(EngineHygiene, LegacySolverHeadersAreShims) {
  // The tentpole's LoC contract: src/solvers/*.h forward to the engine
  // and contain no iteration loops of their own.
  fs::path Dir = fs::path(WARROW_SOURCE_DIR) / "src" / "solvers";
  for (const fs::directory_entry &Entry : fs::directory_iterator(Dir)) {
    if (Entry.path().extension() != ".h" ||
        Entry.path().filename() == "stats.h")
      continue;
    std::string Text = readFile(Entry.path());
    EXPECT_NE(Text.find("engine/"), std::string::npos)
        << Entry.path().filename() << ": shim must include the engine";
    for (const char *Token : {"while (", "while(", "for (", "for("}) {
      std::vector<std::string> Bad = violatingLines(Text, Token);
      EXPECT_TRUE(Bad.empty())
          << Entry.path().filename()
          << " still contains an iteration loop; the engine owns those:\n  "
          << Bad.front();
    }
  }
}

TEST(EngineHygiene, DocumentedSolverCountsMatchTheRegistry) {
  // `--list-solvers` (the registry) is the source of truth for how many
  // strategy×operator combinations exist; prose counts in the docs have
  // drifted before (17 vs 20 across PRs 7-8). Every numeric claim in the
  // three documents must equal the live registry size, and each document
  // must still contain its claim — a silently deleted sentence would
  // make this gate vacuous.
  const size_t Registered = warrow::engine::solverRegistry().size();
  const std::regex ClaimRe(
      "([0-9]+) (?:registered|named) strategy\xC3\x97operator|"
      "registry at ([0-9]+) entries");
  for (const char *Doc : {"README.md", "DESIGN.md", "ROADMAP.md"}) {
    fs::path DocPath = fs::path(WARROW_SOURCE_DIR) / Doc;
    std::string Text = readFile(DocPath);
    ASSERT_FALSE(Text.empty()) << DocPath;
    size_t Claims = 0;
    for (std::sregex_iterator It(Text.begin(), Text.end(), ClaimRe), End;
         It != End; ++It) {
      const std::smatch &M = *It;
      std::string Count = M[1].matched ? M[1].str() : M[2].str();
      ++Claims;
      EXPECT_EQ(std::stoul(Count), Registered)
          << Doc << " claims " << Count << " solver registry entries but "
          << "the registry has " << Registered
          << "; run --list-solvers and fix the doc (or this regex)";
    }
    EXPECT_GE(Claims, 1u)
        << Doc << " no longer states the registry size; keep one claim "
        << "so readers and this gate stay honest";
  }
}

} // namespace
