//===- tests/intra_test.cpp - Dense intraprocedural analysis tests --------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/intra.h"
#include "lang/parser.h"
#include "lattice/combine.h"
#include "solvers/srr.h"
#include "solvers/sw.h"
#include "solvers/two_phase.h"

#include <gtest/gtest.h>

#include <numeric>

using namespace warrow;

namespace {

Interval Iv(int64_t Lo, int64_t Hi) { return Interval::make(Lo, Hi); }

struct DenseRun {
  std::unique_ptr<Program> P;
  ProgramCfg Cfgs;
  IntraSystem IS;
};

DenseRun buildFromSource(std::string_view Source, bool UseRpo = true) {
  DiagnosticEngine Diags;
  auto P = parseProgram(Source, Diags);
  EXPECT_TRUE(P != nullptr) << Diags.str();
  DenseRun Run;
  Run.Cfgs = buildProgramCfg(*P);
  Run.P = std::move(P);
  std::vector<uint32_t> Order;
  if (UseRpo) {
    Order = Run.Cfgs.cfgOf(0).reversePostOrder();
  } else {
    Order.resize(Run.Cfgs.cfgOf(0).numNodes());
    std::iota(Order.begin(), Order.end(), 0u);
  }
  Run.IS = buildIntraSystem(*Run.P, Run.Cfgs, 0, Order);
  return Run;
}

TEST(Intra, SimpleLoopInvariantWithSW) {
  DenseRun Run = buildFromSource(
      "int main() { int i = 0; while (i < 8) i = i + 1; return i; }");
  SolveResult<AbsValue> R = solveSW(Run.IS.System, WarrowCombine{});
  ASSERT_TRUE(R.Stats.Converged);
  Var ExitVar = Run.IS.VarOfNode[Cfg::ExitNode];
  ASSERT_TRUE(R.Sigma[ExitVar].isEnv());
  Symbol Ret = Run.P->Symbols.lookup("$ret");
  EXPECT_EQ(R.Sigma[ExitVar].envValue().get(Ret), Interval::constant(8));
}

TEST(Intra, SrrAndSwAgree) {
  DenseRun Run = buildFromSource(R"(
    int main() {
      int acc = 0;
      for (int i = 0; i < 20; i = i + 1) {
        if (i % 2 == 0)
          acc = acc + 1;
      }
      return acc;
    }
  )");
  SolveResult<AbsValue> Srr = solveSRR(Run.IS.System, WarrowCombine{});
  SolveResult<AbsValue> Sw = solveSW(Run.IS.System, WarrowCombine{});
  ASSERT_TRUE(Srr.Stats.Converged && Sw.Stats.Converged);
  for (Var X = 0; X < Run.IS.System.size(); ++X)
    EXPECT_TRUE(Srr.Sigma[X] == Sw.Sigma[X]) << "var " << X;
}

TEST(Intra, OrderingAffectsWorkNotResult) {
  const char *Source = R"(
    int main() {
      int i = 0;
      int j = 0;
      while (i < 30) {
        j = 0;
        while (j < i)
          j = j + 1;
        i = i + 1;
      }
      return i + j;
    }
  )";
  DenseRun Rpo = buildFromSource(Source, /*UseRpo=*/true);
  DenseRun Natural = buildFromSource(Source, /*UseRpo=*/false);
  SolveResult<AbsValue> A = solveSW(Rpo.IS.System, WarrowCombine{});
  SolveResult<AbsValue> B = solveSW(Natural.IS.System, WarrowCombine{});
  ASSERT_TRUE(A.Stats.Converged && B.Stats.Converged);
  // Same analysis result per node (possibly different work).
  Symbol Ret = Rpo.P->Symbols.lookup("$ret");
  Var ExitA = Rpo.IS.VarOfNode[Cfg::ExitNode];
  Var ExitB = Natural.IS.VarOfNode[Cfg::ExitNode];
  EXPECT_TRUE(A.Sigma[ExitA].envValue().get(Ret) ==
              B.Sigma[ExitB].envValue().get(Ret));
}

TEST(Intra, TwoPhaseOnDenseSystem) {
  DenseRun Run = buildFromSource(
      "int main() { int i = 0; while (i < 9) i = i + 1; return i; }");
  SolveResult<AbsValue> R = solveTwoPhase(Run.IS.System);
  ASSERT_TRUE(R.Stats.Converged);
  Var ExitVar = Run.IS.VarOfNode[Cfg::ExitNode];
  Symbol Ret = Run.P->Symbols.lookup("$ret");
  EXPECT_EQ(R.Sigma[ExitVar].envValue().get(Ret), Interval::constant(9));
}

TEST(Intra, GuardsPruneBranches) {
  DenseRun Run = buildFromSource(R"(
    int main() {
      int x = unknown();
      int y = 0;
      if (x > 10) {
        if (x < 5)
          y = 99;
        else
          y = 1;
      } else {
        y = 2;
      }
      return y;
    }
  )");
  SolveResult<AbsValue> R = solveSW(Run.IS.System, WarrowCombine{});
  ASSERT_TRUE(R.Stats.Converged);
  Var ExitVar = Run.IS.VarOfNode[Cfg::ExitNode];
  Symbol Ret = Run.P->Symbols.lookup("$ret");
  EXPECT_EQ(R.Sigma[ExitVar].envValue().get(Ret), Iv(1, 2))
      << "y = 99 is dead (x > 10 contradicts x < 5)";
}

} // namespace
