//===- tests/trace_determinism_test.cpp - Replay-mode determinism --------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// With timestamps disabled (`BufferedTraceRecorder(false)`), the event
// stream of a single-threaded solver run is a pure function of the
// solver's decision sequence: two runs on the same system serialize to
// byte-identical text. Pinned here for every sequential solver.
//
// The parallel solver interleaves nondeterministically, so byte identity
// is out — but its *update* behaviour is not schedule-dependent: each
// component runs verbatim SW after its predecessors finalized, so the
// multiset of (unknown, regime, direction) updates matches sequential SW
// under a condensation-consistent order exactly.
//
//===----------------------------------------------------------------------===//

#include "graph/order.h"
#include "lattice/combine.h"
#include "solvers/lrr.h"
#include "solvers/parallel_sw.h"
#include "solvers/rld.h"
#include "solvers/rr.h"
#include "solvers/slr.h"
#include "solvers/slr_plus.h"
#include "solvers/srr.h"
#include "solvers/sw.h"
#include "solvers/two_phase.h"
#include "solvers/two_phase_local.h"
#include "solvers/wl.h"
#include "trace/recorder.h"
#include "trace/serialize.h"
#include "workloads/eq_generators.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <vector>

using namespace warrow;

namespace {

using IntSys = LocalSystem<int, Interval>;
using SideSys = SideEffectingSystem<int, Interval>;

IntSys localView(const DenseSystem<Interval> &Dense) {
  return IntSys([&Dense](int X) -> IntSys::Rhs {
    return [&Dense, X](const IntSys::Get &Get) {
      return Dense.eval(static_cast<Var>(X),
                        [&Get](Var Y) { return Get(static_cast<int>(Y)); });
    };
  });
}

SideSys sideView(const DenseSystem<Interval> &Dense) {
  return SideSys([&Dense](int X) -> SideSys::Rhs {
    return [&Dense, X](const SideSys::Get &Get, const SideSys::Side &) {
      return Dense.eval(static_cast<Var>(X),
                        [&Get](Var Y) { return Get(static_cast<int>(Y)); });
    };
  });
}

/// Records one run in replay mode and sanity-checks the recorder's
/// stamping contract: timestamps all zero, sequence numbers dense from
/// zero, a single thread.
template <typename SolveFn>
std::vector<TraceEvent> recordReplay(SolveFn &&Solve) {
  BufferedTraceRecorder Recorder(/*CaptureTimestamps=*/false);
  SolverOptions Options;
  Options.Trace = &Recorder;
  Solve(Options);
  EXPECT_EQ(Recorder.threadCount(), 1u);
  std::vector<TraceEvent> Events = Recorder.events();
  for (size_t I = 0; I < Events.size(); ++I) {
    EXPECT_EQ(Events[I].TimeNs, 0u) << "timestamp captured in replay mode";
    EXPECT_EQ(Events[I].Seq, I) << "sequence numbers not dense";
  }
  return Events;
}

/// Two fresh runs must serialize byte-identically.
template <typename SolveFn>
void expectDeterministic(const char *What, SolveFn &&Solve) {
  std::vector<TraceEvent> First = recordReplay(Solve);
  std::vector<TraceEvent> Second = recordReplay(Solve);
  EXPECT_FALSE(First.empty()) << What << ": solver emitted no events";
  EXPECT_EQ(serializeEvents(First), serializeEvents(Second))
      << What << ": event streams differ between identical runs";
}

TEST(TraceDeterminism, DenseSolversReplayByteIdentical) {
  DenseSystem<Interval> S = randomMonotoneSystem(20, 3, 90, 7);
  expectDeterministic("RR", [&](const SolverOptions &O) {
    ASSERT_TRUE(solveRR(S, WarrowCombine{}, O).Stats.Converged);
  });
  expectDeterministic("W/lifo", [&](const SolverOptions &O) {
    ASSERT_TRUE(solveW(S, JoinCombine{}, O).Stats.Converged);
  });
  expectDeterministic("W/fifo", [&](const SolverOptions &O) {
    ASSERT_TRUE(solveW(S, JoinCombine{}, O, WorklistDiscipline::Fifo)
                    .Stats.Converged);
  });
  expectDeterministic("SRR", [&](const SolverOptions &O) {
    ASSERT_TRUE(solveSRR(S, WarrowCombine{}, O).Stats.Converged);
  });
  expectDeterministic("SW", [&](const SolverOptions &O) {
    ASSERT_TRUE(solveSW(S, WarrowCombine{}, O).Stats.Converged);
  });
  const Condensation Cond = condense(extractDependencyGraph(S));
  std::vector<uint32_t> Rank = topologicalRank(Cond);
  expectDeterministic("SW/ordered", [&](const SolverOptions &O) {
    ASSERT_TRUE(
        solveOrderedSW(S, WarrowCombine{}, Rank, O).Stats.Converged);
  });
  expectDeterministic("two-phase", [&](const SolverOptions &O) {
    ASSERT_TRUE(solveTwoPhase(S, O).Stats.Converged);
  });
}

TEST(TraceDeterminism, LocalSolversReplayByteIdentical) {
  DenseSystem<Interval> Dense = randomMonotoneSystem(18, 3, 70, 11);
  IntSys Local = localView(Dense);
  SideSys Side = sideView(Dense);
  expectDeterministic("LRR", [&](const SolverOptions &O) {
    ASSERT_TRUE(solveLRR(Local, 0, WarrowCombine{}, O).Stats.Converged);
  });
  expectDeterministic("RLD", [&](const SolverOptions &O) {
    ASSERT_TRUE(solveRLD(Local, 0, WarrowCombine{}, O).Stats.Converged);
  });
  expectDeterministic("SLR", [&](const SolverOptions &O) {
    ASSERT_TRUE(solveSLR(Local, 0, WarrowCombine{}, O).Stats.Converged);
  });
  expectDeterministic("SLR+", [&](const SolverOptions &O) {
    ASSERT_TRUE(solveSLRPlus(Side, 0, WarrowCombine{}, O).Stats.Converged);
  });
  expectDeterministic("two-phase-local", [&](const SolverOptions &O) {
    ASSERT_TRUE(solveTwoPhaseLocal(Local, 0, O).Stats.Converged);
  });
}

/// The schedule-independent projection of an update event.
using UpdateKey = std::tuple<uint64_t, UpdateKind, bool, bool>;

std::map<UpdateKey, unsigned>
updateMultiset(const std::vector<TraceEvent> &Events) {
  std::map<UpdateKey, unsigned> M;
  for (const TraceEvent &E : Events)
    if (E.Kind == TraceEventKind::Update)
      ++M[{E.Unknown, E.UKind, E.Grew, E.Shrank}];
  return M;
}

TEST(TraceDeterminism, ParallelSWUpdatesMatchSequentialOrderedSW) {
  DenseSystem<Interval> S = manyComponentSystem(12, 8, 64, 2, 9);
  const Condensation Cond = condense(extractDependencyGraph(S));
  std::vector<uint32_t> Rank = topologicalRank(Cond);
  std::vector<TraceEvent> SeqEvents = recordReplay([&](const SolverOptions &O) {
    ASSERT_TRUE(
        solveOrderedSW(S, WarrowCombine{}, Rank, O).Stats.Converged);
  });
  std::map<UpdateKey, unsigned> Expected = updateMultiset(SeqEvents);
  ASSERT_FALSE(Expected.empty());

  for (unsigned Threads : {1u, 2u, 4u}) {
    BufferedTraceRecorder Recorder(/*CaptureTimestamps=*/false);
    SolverOptions Options;
    Options.Trace = &Recorder;
    ParallelOptions POpts;
    POpts.Threads = Threads;
    SolveResult<Interval> R =
        solveParallelSW(S, WarrowCombine{}, POpts, Options);
    ASSERT_TRUE(R.Stats.Converged) << "threads=" << Threads;
    EXPECT_EQ(updateMultiset(Recorder.events()), Expected)
        << "threads=" << Threads
        << ": parallel update multiset diverges from sequential SW";
  }
}

} // namespace
