//===- tests/precision_test.cpp - Precision comparison tests -------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The Figure 7 claims, as tests: the ⊟-solver is never less precise than
// the two-phase baseline; it strictly improves a substantial fraction of
// points on most WCET benchmarks; and `qsort_exam` shows no improvement.
//
//===----------------------------------------------------------------------===//

#include "analysis/interproc.h"
#include "analysis/precision.h"
#include "lang/parser.h"
#include "workloads/wcet_suite.h"

#include <gtest/gtest.h>

using namespace warrow;

namespace {

struct ComparedRun {
  std::unique_ptr<Program> P;
  ProgramCfg Cfgs;
  AnalysisResult Warrow;
  AnalysisResult Classic;
  PrecisionComparison Cmp;
};

ComparedRun compareOn(const std::string &BenchName) {
  const WcetBenchmark *B = findWcetBenchmark(BenchName);
  EXPECT_TRUE(B != nullptr) << BenchName;
  ComparedRun Run;
  DiagnosticEngine Diags;
  Run.P = parseProgram(B->Source, Diags);
  EXPECT_TRUE(Run.P != nullptr) << Diags.str();
  Run.Cfgs = buildProgramCfg(*Run.P);
  InterprocAnalysis Analysis(*Run.P, Run.Cfgs, AnalysisOptions{});
  Run.Warrow = Analysis.run(SolverChoice::Warrow);
  Run.Classic = Analysis.run(SolverChoice::TwoPhase);
  EXPECT_TRUE(Run.Warrow.Stats.Converged);
  EXPECT_TRUE(Run.Classic.Stats.Converged);
  Run.Cmp = comparePrecision(Run.Warrow.Solution, Run.Classic.Solution);
  return Run;
}

class WarrowNeverWorse : public ::testing::TestWithParam<std::string> {};

TEST_P(WarrowNeverWorse, OnWcetBenchmark) {
  ComparedRun Run = compareOn(GetParam());
  EXPECT_EQ(Run.Cmp.Worse, 0u)
      << "⊟ must never lose to two-phase: " << Run.Cmp.str();
  EXPECT_EQ(Run.Cmp.Incomparable, 0u) << Run.Cmp.str();
  EXPECT_GT(Run.Cmp.ComparablePoints, 0u);
}

std::vector<std::string> allBenchmarkNames() {
  std::vector<std::string> Names;
  for (const WcetBenchmark &B : wcetSuite())
    Names.push_back(B.Name);
  return Names;
}

INSTANTIATE_TEST_SUITE_P(WcetSuite, WarrowNeverWorse,
                         ::testing::ValuesIn(allBenchmarkNames()));

TEST(Precision, QsortExamShowsNoImprovement) {
  // The paper's Figure 7 has exactly one benchmark with 0% improvement.
  ComparedRun Run = compareOn("qsort_exam");
  EXPECT_EQ(Run.Cmp.Improved, 0u) << Run.Cmp.str();
}

TEST(Precision, GlobalHeavyBenchmarksImprove) {
  // Benchmarks writing bounded locals into globals must improve.
  for (const char *Name : {"bs", "cnt", "matmult"}) {
    ComparedRun Run = compareOn(Name);
    EXPECT_GT(Run.Cmp.Improved, 0u)
        << Name << " should improve: " << Run.Cmp.str();
    EXPECT_GT(Run.Cmp.GlobalsImproved, 0u)
        << Name << " should narrow at least one global";
  }
}

TEST(Precision, SuiteWideImprovementIsSubstantial) {
  // Aggregate over the whole suite (the paper reports a weighted average
  // of 39%; we assert a solid two-digit improvement, shape not numbers).
  uint64_t Improved = 0, Comparable = 0;
  for (const WcetBenchmark &B : wcetSuite()) {
    ComparedRun Run = compareOn(B.Name);
    Improved += Run.Cmp.Improved;
    Comparable += Run.Cmp.ComparablePoints;
  }
  ASSERT_GT(Comparable, 0u);
  double Percent = 100.0 * static_cast<double>(Improved) /
                   static_cast<double>(Comparable);
  EXPECT_GE(Percent, 10.0) << "suite-wide improvement too small";
  EXPECT_LE(Percent, 90.0) << "suspiciously large improvement";
}

TEST(Precision, WarrowRefinesWidenOnlyEverywhere) {
  for (const char *Name : {"fac", "expint", "janne_complex"}) {
    const WcetBenchmark *B = findWcetBenchmark(Name);
    ASSERT_TRUE(B != nullptr);
    DiagnosticEngine Diags;
    auto P = parseProgram(B->Source, Diags);
    ASSERT_TRUE(P != nullptr);
    ProgramCfg Cfgs = buildProgramCfg(*P);
    InterprocAnalysis Analysis(*P, Cfgs, AnalysisOptions{});
    AnalysisResult Warrow = Analysis.run(SolverChoice::Warrow);
    AnalysisResult Widen = Analysis.run(SolverChoice::WidenOnly);
    PrecisionComparison Cmp =
        comparePrecision(Warrow.Solution, Widen.Solution);
    EXPECT_EQ(Cmp.Worse, 0u) << Name << ": " << Cmp.str();
    EXPECT_EQ(Cmp.Incomparable, 0u) << Name << ": " << Cmp.str();
  }
}

TEST(Precision, ComparisonCountsAreConsistent) {
  ComparedRun Run = compareOn("insertsort");
  EXPECT_EQ(Run.Cmp.ComparablePoints,
            Run.Cmp.Improved + Run.Cmp.Equal + Run.Cmp.Worse +
                Run.Cmp.Incomparable);
}

} // namespace
