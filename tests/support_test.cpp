//===- tests/support_test.cpp - Support library tests ------------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/casting.h"
#include "support/interner.h"
#include "support/rng.h"
#include "support/saturating.h"
#include "support/table.h"
#include "support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <set>

using namespace warrow;

namespace {

// --- casting ---------------------------------------------------------------

struct Base {
  enum class Kind { A, B } K;
  explicit Base(Kind K) : K(K) {}
};
struct DerivedA : Base {
  DerivedA() : Base(Kind::A) {}
  static bool classof(const Base *B) { return B->K == Base::Kind::A; }
};
struct DerivedB : Base {
  DerivedB() : Base(Kind::B) {}
  static bool classof(const Base *B) { return B->K == Base::Kind::B; }
};

TEST(Casting, IsaCastDynCast) {
  DerivedA A;
  Base *B = &A;
  EXPECT_TRUE(isa<DerivedA>(B));
  EXPECT_FALSE(isa<DerivedB>(B));
  EXPECT_TRUE((isa<DerivedB, DerivedA>(B))) << "variadic isa";
  EXPECT_EQ(cast<DerivedA>(B), &A);
  EXPECT_EQ(dyn_cast<DerivedB>(B), nullptr);
  EXPECT_EQ(dyn_cast<DerivedA>(B), &A);
  Base *Null = nullptr;
  EXPECT_EQ(dyn_cast_if_present<DerivedA>(Null), nullptr);
}

// --- interner ----------------------------------------------------------------

TEST(Interner, InternAndLookup) {
  Interner I;
  Symbol Foo = I.intern("foo");
  Symbol Bar = I.intern("bar");
  EXPECT_NE(Foo, Bar);
  EXPECT_EQ(I.intern("foo"), Foo);
  EXPECT_EQ(I.spelling(Foo), "foo");
  EXPECT_EQ(I.lookup("bar"), Bar);
  EXPECT_EQ(I.lookup("baz"), 0u);
  EXPECT_EQ(I.intern(""), 0u) << "empty string is symbol 0";
}

TEST(Interner, StableUnderGrowth) {
  // Many short strings: SSO buffers must not invalidate map keys.
  Interner I;
  std::vector<Symbol> Syms;
  for (int K = 0; K < 2000; ++K)
    Syms.push_back(I.intern("v" + std::to_string(K)));
  for (int K = 0; K < 2000; ++K) {
    EXPECT_EQ(I.spelling(Syms[K]), "v" + std::to_string(K));
    EXPECT_EQ(I.intern("v" + std::to_string(K)), Syms[K]);
  }
}

// --- saturating arithmetic -----------------------------------------------------

TEST(Saturating, RawHelpers) {
  constexpr int64_t Max = std::numeric_limits<int64_t>::max();
  constexpr int64_t Min = std::numeric_limits<int64_t>::min();
  EXPECT_EQ(satAdd64(Max, 1), Max);
  EXPECT_EQ(satAdd64(Min, -1), Min);
  EXPECT_EQ(satAdd64(1, 2), 3);
  EXPECT_EQ(satSub64(Min, 1), Min);
  EXPECT_EQ(satSub64(Max, -1), Max);
  EXPECT_EQ(satMul64(Max / 2, 3), Max);
  EXPECT_EQ(satMul64(Min / 2, 3), Min);
  EXPECT_EQ(satMul64(-4, 5), -20);
  EXPECT_EQ(satNeg64(Min), Max);
}

TEST(Saturating, BoundOrderingAndArithmetic) {
  Bound NegInf = Bound::negInf();
  Bound PosInf = Bound::posInf();
  Bound Five(5);
  EXPECT_TRUE(NegInf < Five);
  EXPECT_TRUE(Five < PosInf);
  EXPECT_TRUE(NegInf < PosInf);
  EXPECT_EQ(Five + Bound(3), Bound(8));
  EXPECT_EQ(PosInf + Five, PosInf);
  EXPECT_EQ(NegInf + Five, NegInf);
  EXPECT_EQ(Five - PosInf, NegInf);
  EXPECT_EQ(-PosInf, NegInf);
  EXPECT_EQ(-Five, Bound(-5));
  EXPECT_EQ(Five * NegInf, NegInf);
  EXPECT_EQ(Bound(-2) * PosInf, NegInf);
  EXPECT_EQ(Bound(0) * PosInf, Bound(0)) << "0 * inf = 0 by convention";
  EXPECT_EQ(Bound(7) / Bound(2), Bound(3));
  EXPECT_EQ(Bound(-7) / Bound(2), Bound(-3)) << "C-style truncation";
  EXPECT_EQ(PosInf / Bound(-1), NegInf);
  EXPECT_EQ(Bound(7) / PosInf, Bound(0));
  EXPECT_EQ(PosInf.succ(), PosInf);
  EXPECT_EQ(Five.succ(), Bound(6));
  EXPECT_EQ(Five.pred(), Bound(4));
  EXPECT_EQ(Five.str(), "5");
  EXPECT_EQ(PosInf.str(), "+inf");
  EXPECT_EQ(NegInf.str(), "-inf");
}

// --- rng -------------------------------------------------------------------

TEST(Rng, DeterministicAndInRange) {
  Rng A(42), B(42);
  for (int K = 0; K < 100; ++K)
    EXPECT_EQ(A.next(), B.next());
  Rng R(7);
  for (int K = 0; K < 1000; ++K) {
    uint64_t V = R.below(10);
    EXPECT_LT(V, 10u);
    int64_t W = R.range(-5, 5);
    EXPECT_GE(W, -5);
    EXPECT_LE(W, 5);
  }
}

TEST(Rng, RangeCoversEndpoints) {
  Rng R(3);
  std::set<int64_t> Seen;
  for (int K = 0; K < 200; ++K)
    Seen.insert(R.range(0, 3));
  EXPECT_EQ(Seen.size(), 4u);
}

// --- table -------------------------------------------------------------------

TEST(Table, RendersAligned) {
  Table T({"Program", "Time(s)", "Unknowns"});
  T.addRow({"bzip2", "3.3", "6 565"});
  T.addRow({"mcf", "0.4", "1 245"});
  std::string Out = T.str();
  EXPECT_NE(Out.find("Program"), std::string::npos);
  EXPECT_NE(Out.find("bzip2"), std::string::npos);
  // Numeric columns right-aligned: "3.3" and "0.4" end at same offset.
  EXPECT_NE(Out.find("6 565"), std::string::npos);
}

TEST(Table, Formatting) {
  EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
  EXPECT_EQ(formatThousands(97785), "97 785");
  EXPECT_EQ(formatThousands(784), "784");
  EXPECT_EQ(formatThousands(1234567), "1 234 567");
}

// --- thread_pool -----------------------------------------------------------

// Regression for the submit/waitIdle accounting race: submit used to
// publish the task before incrementing Pending, so a worker could
// finish the task in between and underflow the counter (waitIdle then
// hangs) or waitIdle could return with a task still running. TSan
// cannot see the bug — every access is mutex-guarded — so this stress
// test checks the invariant directly: after waitIdle, every task
// submitted so far (including tasks submitted from inside workers)
// must have run to completion.
TEST(WorkStealingPool, WaitIdleSeesAllTasks) {
  WorkStealingPool Pool(4);
  std::atomic<unsigned> Ran{0};
  unsigned Expected = 0;
  for (unsigned Round = 0; Round < 200; ++Round) {
    // Tiny tasks maximize the window where a worker finishes the task
    // before the old code got around to counting it.
    for (unsigned I = 0; I < 8; ++I) {
      Pool.submit([&Pool, &Ran] {
        Pool.submit([&Ran] { Ran.fetch_add(1, std::memory_order_relaxed); });
        Ran.fetch_add(1, std::memory_order_relaxed);
      });
      Expected += 2;
    }
    Pool.waitIdle();
    ASSERT_EQ(Ran.load(std::memory_order_relaxed), Expected)
        << "waitIdle returned with tasks still pending (round " << Round
        << ")";
  }
}

TEST(WorkStealingPool, InlinePoolRunsInSubmit) {
  WorkStealingPool Pool(0);
  unsigned Ran = 0;
  Pool.submit([&Pool, &Ran] {
    Pool.submit([&Ran] { ++Ran; });
    ++Ran;
  });
  EXPECT_EQ(Ran, 2u);
  Pool.waitIdle(); // Nothing pending; must not block.
  EXPECT_EQ(Pool.shardCount(), 1u);
  EXPECT_EQ(Pool.workerIndex(), 0u);
}

} // namespace
