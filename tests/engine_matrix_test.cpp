//===- tests/engine_matrix_test.cpp - Registry cross-product matrix ------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The engine refactor's contract, checked as a cross product:
//
//  1. The solver registry is exactly the expected set — a solver added
//     without registration (or registered without a test) fails here, and
//     CI diffs `warrow-analyze --list-solvers` against the same list.
//  2. Every dense/local/side-effecting registry entry solves the random
//     generator workloads and the result verifies (post / partial-post /
//     side-effecting checks from eqsys/verify.h).
//  3. Registry-name dispatch is byte-equivalent to the eleven legacy
//     `solve*` entry points it replaces.
//  4. Every analysis-capable entry runs the WCET suite through the
//     interprocedural analysis and passes the independent soundness
//     check — including the engine-new `two-phase-localized`.
//
//===----------------------------------------------------------------------===//

#include "analysis/interproc.h"
#include "engine/solve.h"
#include "eqsys/verify.h"
#include "graph/order.h"
#include "lattice/combine.h"
#include "solvers/lrr.h"
#include "solvers/parallel_sw.h"
#include "solvers/rld.h"
#include "solvers/rr.h"
#include "solvers/slr.h"
#include "solvers/slr_plus.h"
#include "solvers/srr.h"
#include "solvers/sw.h"
#include "solvers/two_phase.h"
#include "solvers/two_phase_local.h"
#include "solvers/wl.h"
#include "lang/parser.h"
#include "workloads/eq_generators.h"
#include "workloads/wcet_suite.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace warrow;

namespace {

using IntSys = LocalSystem<int, Interval>;
using SideSys = SideEffectingSystem<int, Interval>;

/// The full registry, in listing order. CI asserts that
/// `warrow-analyze --list-solvers` prints exactly these names; keep the
/// three lists in sync (engine/registry.cpp, here, .github/workflows).
const std::vector<std::string> &expectedSolverNames() {
  static const std::vector<std::string> Names = {
      "rr",        "srr",          "w",
      "w-fifo",    "sw",           "sw-ordered",
      "sw-parallel", "two-phase-dense", "two-phase-rr",
      "lrr",       "rld",          "slr",
      "slr-plus",  "parallel-slr-plus", "parallel-two-phase",
      "warrow",    "widen",        "two-phase",
      "two-phase-localized", "parallel-warrow",
  };
  return Names;
}

IntSys localView(const DenseSystem<Interval> &Dense) {
  return IntSys([&Dense](int X) -> IntSys::Rhs {
    return [&Dense, X](const IntSys::Get &Get) {
      return Dense.eval(static_cast<Var>(X),
                        [&Get](Var Y) { return Get(static_cast<int>(Y)); });
    };
  });
}

/// Dense system wrapped as side-effecting, plus one genuine side effect:
/// every unknown contributes its index interval to a global (id 1000)
/// whose direct right-hand side is [0,0], exercising the contribution
/// cells of every side-capable solver.
SideSys sideViewWithGlobal(const DenseSystem<Interval> &Dense) {
  const int Global = 1000;
  return SideSys([&Dense, Global](int X) -> SideSys::Rhs {
    if (X == Global)
      return [](const SideSys::Get &, const SideSys::Side &) {
        return Interval::constant(0);
      };
    return [&Dense, X, Global](const SideSys::Get &Get,
                               const SideSys::Side &Side) {
      Side(Global, Interval::make(0, X % 7));
      Interval Direct = Dense.eval(
          static_cast<Var>(X),
          [&Get](Var Y) { return Get(static_cast<int>(Y)); });
      return Direct.join(Get(Global).meet(Interval::make(0, 6)));
    };
  });
}

TEST(EngineRegistry, MatchesExpectedSolverSet) {
  std::vector<std::string> Names = engine::solverNames();
  EXPECT_EQ(Names, expectedSolverNames())
      << "registry drifted from the pinned solver set — update the matrix "
         "tests AND the CI --list-solvers assertion together";
}

TEST(EngineRegistry, LookupIsCaseInsensitive) {
  // Historical bench labels resolve to the canonical entries.
  for (const char *Label : {"RR", "W", "SRR", "SW"})
    EXPECT_NE(engine::findSolver(Label), nullptr) << Label;
  EXPECT_EQ(engine::findSolver("RR"), engine::findSolver("rr"));
  EXPECT_EQ(engine::findSolver("Two-Phase"), engine::findSolver("two-phase"));
  EXPECT_EQ(engine::findSolver("no-such-solver"), nullptr);
  EXPECT_EQ(engine::findSolver(""), nullptr);
}

TEST(EngineRegistry, ListingCoversEveryEntryWithTags) {
  std::string Listing = engine::solverListing();
  for (const engine::SolverInfo &Info : engine::solverRegistry()) {
    EXPECT_NE(Listing.find(Info.Name), std::string::npos) << Info.Name;
    EXPECT_NE(Listing.find(Info.Description), std::string::npos)
        << Info.Name;
  }
  // Exactly the engine-new combinations carry the [new] tag.
  size_t NewCount = 0;
  for (const engine::SolverInfo &Info : engine::solverRegistry())
    if (Info.hasCap(engine::CapNew))
      ++NewCount;
  EXPECT_EQ(NewCount, 5u) << "two-phase-rr, two-phase-localized, and the "
                             "three parallel strategies";
  EXPECT_TRUE(engine::findSolver("two-phase-rr")->hasCap(engine::CapNew));
  EXPECT_TRUE(
      engine::findSolver("two-phase-localized")->hasCap(engine::CapNew));
  EXPECT_TRUE(
      engine::findSolver("parallel-slr-plus")->hasCap(engine::CapNew));
  EXPECT_TRUE(
      engine::findSolver("parallel-two-phase")->hasCap(engine::CapNew));
  EXPECT_TRUE(engine::findSolver("parallel-warrow")->hasCap(engine::CapNew));
}

TEST(EngineRegistry, CapabilityFlagsPartitionTheSystems) {
  for (const engine::SolverInfo &Info : engine::solverRegistry()) {
    bool Dense = Info.hasCap(engine::CapDense);
    bool LocalOrSide = Info.hasCap(engine::CapLocal) ||
                       Info.hasCap(engine::CapSideEffecting);
    EXPECT_TRUE(Dense || LocalOrSide) << Info.Name << ": no system cap";
    EXPECT_FALSE(Dense && LocalOrSide)
        << Info.Name << ": dense and local in one entry";
    EXPECT_EQ(Info.hasCap(engine::CapFixedOperator),
              Info.Operator != engine::OperatorKind::Parametric)
        << Info.Name;
  }
}

// Every dense registry entry, over a monotone and a non-monotone random
// system: converges (monotone case) and verifies as a post solution.
TEST(EngineMatrix, DenseStrategiesSolveAndVerify) {
  struct Workload {
    const char *Name;
    DenseSystem<Interval> System;
    bool Monotone;
  };
  std::vector<Workload> Workloads;
  Workloads.push_back({"random-monotone", randomMonotoneSystem(24, 3, 90, 7),
                       true});
  Workloads.push_back({"ring", ringSystem(16, 40), true});
  Workloads.push_back(
      {"random-non-monotone", randomNonMonotoneSystem(24, 3, 90, 7), false});

  SolverOptions Options;
  Options.MaxRhsEvals = 2'000'000;
  for (const engine::SolverInfo &Info : engine::solverRegistry()) {
    if (!Info.hasCap(engine::CapDense))
      continue;
    for (const Workload &W : Workloads) {
      // A degrading ⊟ terminates on the non-monotone generator too
      // (plain ⊟ may oscillate); fixed-operator entries ignore it.
      SolveResult<Interval> R = engine::solveDenseByName(
          Info.Name, W.System, DegradingWarrowCombine<Var>(8), Options);
      std::string Tag = std::string(Info.Name) + " on " + W.Name;
      if (W.Monotone)
        EXPECT_TRUE(R.Stats.Converged) << Tag;
      // Fact 1: the ▽-then-△ drivers are only sound for monotonic
      // systems — on the non-monotone workload their stabilized result
      // legitimately need not be a post solution (the gap ⊟ closes).
      if (!W.Monotone &&
          Info.Operator == engine::OperatorKind::WidenNarrowPhases)
        continue;
      if (R.Stats.Converged) {
        VerifyResult V = verifyPostSolution(W.System, R.Sigma);
        EXPECT_TRUE(V.Ok) << Tag << ": " << V.str();
        EXPECT_GT(R.Stats.RhsEvals, 0u) << Tag;
      }
    }
  }
}

// Registry dispatch must be byte-equivalent to the legacy dense entry
// points it replaced (same shims, pinned against future drift).
TEST(EngineMatrix, DenseDispatchMatchesLegacyEntryPoints) {
  DenseSystem<Interval> S = randomMonotoneSystem(30, 3, 120, 5);
  SolverOptions Options;

  auto ExpectSame = [](const SolveResult<Interval> &A,
                       const SolveResult<Interval> &B, const char *What) {
    EXPECT_EQ(A.Sigma, B.Sigma) << What;
    EXPECT_EQ(A.Stats.RhsEvals, B.Stats.RhsEvals) << What;
    EXPECT_EQ(A.Stats.Updates, B.Stats.Updates) << What;
    EXPECT_EQ(A.Stats.QueueMax, B.Stats.QueueMax) << What;
  };

  WarrowCombine Op;
  ExpectSame(engine::solveDenseByName("rr", S, Op, Options),
             solveRR(S, Op, Options), "rr");
  ExpectSame(engine::solveDenseByName("srr", S, Op, Options),
             solveSRR(S, Op, Options), "srr");
  ExpectSame(engine::solveDenseByName("w", S, Op, Options),
             solveW(S, Op, Options, WorklistDiscipline::Lifo), "w");
  ExpectSame(engine::solveDenseByName("w-fifo", S, Op, Options),
             solveW(S, Op, Options, WorklistDiscipline::Fifo), "w-fifo");
  ExpectSame(engine::solveDenseByName("sw", S, Op, Options),
             solveSW(S, Op, Options), "sw");
  const std::vector<uint32_t> Rank =
      topologicalRank(condense(extractDependencyGraph(S)));
  ExpectSame(engine::solveDenseByName("sw-ordered", S, Op, Options),
             solveOrderedSW(S, Op, Rank, Options), "sw-ordered");
  ExpectSame(engine::solveDenseByName("two-phase-dense", S, Op, Options),
             solveTwoPhase(S, Options), "two-phase-dense");
  // Parallel scheduling is nondeterministic in timing but deterministic
  // in result: compare assignments only.
  EXPECT_EQ(engine::solveDenseByName("sw-parallel", S, Op, Options).Sigma,
            solveParallelSW(S, Op, ParallelOptions{}, Options).Sigma)
      << "sw-parallel";
}

// The engine-new dense combination: widen-then-narrow over round-robin.
TEST(EngineMatrix, TwoPhaseRRIsSoundAndNew) {
  DenseSystem<Interval> S = randomMonotoneSystem(24, 3, 90, 7);
  SolveResult<Interval> R = engine::solveDenseByName("two-phase-rr", S,
                                                     JoinCombine{});
  ASSERT_TRUE(R.Stats.Converged);
  VerifyResult V = verifyPostSolution(S, R.Sigma);
  EXPECT_TRUE(V.Ok) << V.str();
  // Its descending phase narrows below the pure ascending solution.
  SolveResult<Interval> Up = solveRR(S, WidenCombine{});
  ASSERT_EQ(R.Sigma.size(), Up.Sigma.size());
  for (Var X = 0; X < S.size(); ++X)
    EXPECT_TRUE(R.Sigma[X].leq(Up.Sigma[X])) << S.name(X);
}

// Every local registry entry over the local view of a random system.
TEST(EngineMatrix, LocalStrategiesSolveAndVerify) {
  DenseSystem<Interval> Dense = randomMonotoneSystem(20, 3, 60, 4);
  IntSys Local = localView(Dense);
  for (const engine::SolverInfo &Info : engine::solverRegistry()) {
    if (!Info.hasCap(engine::CapLocal))
      continue;
    PartialSolution<int, Interval> R =
        engine::solveLocalByName(Info.Name, Local, 0, WarrowCombine{});
    ASSERT_TRUE(R.Stats.Converged) << Info.Name;
    VerifyResult V = verifyPartialPostSolution(Local, R);
    EXPECT_TRUE(V.Ok) << Info.Name << ": " << V.str();
    EXPECT_TRUE(R.inDomain(0)) << Info.Name;
  }
}

TEST(EngineMatrix, LocalDispatchMatchesLegacyEntryPoints) {
  DenseSystem<Interval> Dense = randomMonotoneSystem(20, 3, 60, 4);
  IntSys Local = localView(Dense);
  WarrowCombine Op;

  auto ExpectSame = [](const PartialSolution<int, Interval> &A,
                       const PartialSolution<int, Interval> &B,
                       const char *What) {
    EXPECT_EQ(A.Sigma, B.Sigma) << What;
    EXPECT_EQ(A.Stats.RhsEvals, B.Stats.RhsEvals) << What;
    EXPECT_EQ(A.Stats.Updates, B.Stats.Updates) << What;
    EXPECT_EQ(A.Stats.QueueMax, B.Stats.QueueMax) << What;
  };
  ExpectSame(engine::solveLocalByName("lrr", Local, 0, Op),
             solveLRR(Local, 0, Op), "lrr");
  ExpectSame(engine::solveLocalByName("rld", Local, 0, Op),
             solveRLD(Local, 0, Op), "rld");
  ExpectSame(engine::solveLocalByName("slr", Local, 0, Op),
             solveSLR(Local, 0, Op), "slr");
  ExpectSame(engine::solveLocalByName("two-phase", Local, 0, Op),
             solveTwoPhaseLocal(Local, 0), "two-phase");
}

// Every side-effecting registry entry over a system with a genuinely
// side-effected global; the full no-cooperation soundness check must
// pass for each.
TEST(EngineMatrix, SideEffectingStrategiesSolveAndVerify) {
  DenseSystem<Interval> Dense = randomMonotoneSystem(18, 3, 50, 9);
  SideSys Side = sideViewWithGlobal(Dense);
  for (const engine::SolverInfo &Info : engine::solverRegistry()) {
    if (!Info.hasCap(engine::CapSideEffecting))
      continue;
    PartialSolution<int, Interval> R =
        engine::solveSideByName(Info.Name, Side, 0, WarrowCombine{});
    ASSERT_TRUE(R.Stats.Converged) << Info.Name;
    VerifyResult V = verifySideEffectingSolution(Side, R);
    EXPECT_TRUE(V.Ok) << Info.Name << ": " << V.str();
    EXPECT_TRUE(R.inDomain(1000)) << Info.Name << ": global not discovered";
  }
}

TEST(EngineMatrix, SideDispatchMatchesLegacyEntryPoints) {
  DenseSystem<Interval> Dense = randomMonotoneSystem(18, 3, 50, 9);
  SideSys Side = sideViewWithGlobal(Dense);
  WarrowCombine Op;
  PartialSolution<int, Interval> ByName =
      engine::solveSideByName("slr-plus", Side, 0, Op);
  PartialSolution<int, Interval> Legacy = solveSLRPlus(Side, 0, Op);
  EXPECT_EQ(ByName.Sigma, Legacy.Sigma);
  EXPECT_EQ(ByName.Stats.RhsEvals, Legacy.Stats.RhsEvals);

  PartialSolution<int, Interval> TwoByName =
      engine::solveSideByName("two-phase", Side, 0, Op);
  PartialSolution<int, Interval> TwoLegacy = solveTwoPhaseSide(Side, 0);
  EXPECT_EQ(TwoByName.Sigma, TwoLegacy.Sigma);
  EXPECT_EQ(TwoByName.Stats.RhsEvals, TwoLegacy.Stats.RhsEvals);
}

// Analysis-capable entries resolve through solverChoiceForName; the rest
// do not.
TEST(EngineMatrix, SolverChoiceMappingFollowsRegistryCaps) {
  EXPECT_EQ(solverChoiceForName("warrow"), SolverChoice::Warrow);
  EXPECT_EQ(solverChoiceForName("WARROW"), SolverChoice::Warrow);
  EXPECT_EQ(solverChoiceForName("widen"), SolverChoice::WidenOnly);
  EXPECT_EQ(solverChoiceForName("two-phase"), SolverChoice::TwoPhase);
  EXPECT_EQ(solverChoiceForName("two-phase-localized"),
            SolverChoice::TwoPhaseLocalized);
  EXPECT_EQ(solverChoiceForName("parallel-warrow"),
            SolverChoice::ParallelWarrow);
  for (const char *NonAnalysis : {"rr", "sw", "slr", "rld", "bogus"})
    EXPECT_FALSE(solverChoiceForName(NonAnalysis).has_value())
        << NonAnalysis;
  // Exactly the CapAnalysis entries resolve.
  for (const engine::SolverInfo &Info : engine::solverRegistry())
    EXPECT_EQ(solverChoiceForName(Info.Name).has_value(),
              Info.hasCap(engine::CapAnalysis))
        << Info.Name;
}

// Every analysis backend over the WCET suite: converges and passes the
// independent side-effecting soundness check — including the engine-new
// two-phase-localized combination.
TEST(EngineMatrix, AnalysisBackendsVerifyOnWcetSuite) {
  for (const WcetBenchmark &B : wcetSuite()) {
    DiagnosticEngine Diags;
    auto P = parseProgram(B.Source, Diags);
    ASSERT_TRUE(P) << B.Name << ":\n" << Diags.str();
    ProgramCfg Cfgs = buildProgramCfg(*P);
    for (const engine::SolverInfo &Info : engine::solverRegistry()) {
      if (!Info.hasCap(engine::CapAnalysis))
        continue;
      std::optional<SolverChoice> Choice = solverChoiceForName(Info.Name);
      ASSERT_TRUE(Choice.has_value()) << Info.Name;
      InterprocAnalysis Analysis(*P, Cfgs, AnalysisOptions{});
      AnalysisResult Result = Analysis.run(*Choice);
      std::string Tag = std::string(Info.Name) + " on " + B.Name;
      ASSERT_TRUE(Result.Stats.Converged) << Tag;
      VerifyResult V = Analysis.verifySolution(Result);
      EXPECT_TRUE(V.Ok) << Tag << ": " << V.str();
    }
  }
}

// The localized ascending phase must not lose soundness and must keep the
// two-phase shape: side-effected globals stay frozen at widened values.
TEST(EngineMatrix, TwoPhaseLocalizedKeepsBaselineShape) {
  DenseSystem<Interval> Dense = randomMonotoneSystem(18, 3, 50, 9);
  SideSys Side = sideViewWithGlobal(Dense);
  PartialSolution<int, Interval> Localized =
      engine::runTwoPhaseSide(Side, 0, SolverOptions{}, 8,
                              /*LocalizedAscending=*/true);
  ASSERT_TRUE(Localized.Stats.Converged);
  VerifyResult V = verifySideEffectingSolution(Side, Localized);
  EXPECT_TRUE(V.Ok) << V.str();
}

} // namespace
