//===- tests/solver_state_test.cpp - Snapshot/restore layer tests --------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The externalized solver state (engine/solver_state.h): snapshot and
// restore on the sequential and parallel SLR+ engines, warm resumption
// semantics (a restored quiescent state re-solves for free; an edited
// state repairs only the destabilized region), contribution retraction
// soundness under ⊟, and the text serialization round trip
// (engine/state_io.h).
//
//===----------------------------------------------------------------------===//

#include "engine/state_io.h"
#include "engine/strategies/parallel_slr.h"
#include "lattice/combine.h"
#include "lattice/interval.h"
#include "solvers/slr_plus.h"
#include "workloads/eq_generators.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>

using namespace warrow;
using namespace warrow::engine;

namespace {

using Sys = SideEffectingSystem<int, Interval>;
using State = SolverState<int, Interval>;

Interval Iv(int64_t Lo, int64_t Hi) { return Interval::make(Lo, Hi); }

/// The paper's Example 7/9 structure (see slr_plus_test.cpp): unknown 100
/// is the global g, 1 and 2 contribute to it, 0 reads everything.
/// \p WithSecondCall toggles whether unknown 2 still contributes — the
/// "program edit" the retraction tests exercise.
Sys exampleSystem(bool WithSecondCall = true) {
  return Sys([WithSecondCall](int X) -> Sys::Rhs {
    switch (X) {
    case 100:
      return [](const Sys::Get &, const Sys::Side &) {
        return Interval::constant(0);
      };
    case 1:
      return [](const Sys::Get &, const Sys::Side &Side) {
        Side(100, Interval::constant(2));
        return Interval::constant(1);
      };
    case 2:
      return [WithSecondCall](const Sys::Get &, const Sys::Side &Side) {
        if (WithSecondCall)
          Side(100, Interval::constant(3));
        return Interval::constant(2);
      };
    default:
      return [](const Sys::Get &Get, const Sys::Side &) {
        Interval A = Get(1);
        Interval B = Get(2);
        return Get(100).join(A).join(B);
      };
    }
  });
}

std::string encodeInt(const int &X) { return std::to_string(X); }

std::optional<int> decodeInt(const std::string &S) {
  if (S.empty())
    return std::nullopt;
  return std::atoi(S.c_str());
}

std::string encodeItv(const Interval &I) {
  if (I.isBot())
    return "b";
  std::ostringstream Out;
  Out << I.lo().raw() << ' ' << I.hi().raw();
  return Out.str();
}

std::optional<Interval> decodeItv(const std::string &S) {
  if (S == "b")
    return Interval::bot();
  std::istringstream In(S);
  int64_t Lo = 0, Hi = 0;
  if (!(In >> Lo >> Hi))
    return std::nullopt;
  return Interval::make(Bound(Lo), Bound(Hi));
}

std::string encodeU64(const uint64_t &X) { return std::to_string(X); }

std::optional<uint64_t> decodeU64(const std::string &S) {
  if (S.empty())
    return std::nullopt;
  return std::strtoull(S.c_str(), nullptr, 10);
}

TEST(SolverState, SnapshotRestoreIsIdentity) {
  Sys S = exampleSystem();
  SlrPlusSolver<int, Interval, WarrowCombine> Solver(S, WarrowCombine{});
  PartialSolution<int, Interval> Cold = Solver.solveFor(0);
  ASSERT_TRUE(Cold.Stats.Converged);

  State Snap = Solver.snapshot();
  ASSERT_EQ(Snap.size(), Cold.Sigma.size());
  // Quiescence: everything stable, every influence row self-containing.
  for (size_t I = 0; I < Snap.size(); ++I) {
    EXPECT_TRUE(Snap.Stable[I]) << "slot " << I;
    EXPECT_NE(std::find(Snap.Infl[I].begin(), Snap.Infl[I].end(),
                        static_cast<uint32_t>(I)),
              Snap.Infl[I].end())
        << "infl[" << I << "] must contain " << I;
  }

  SlrPlusSolver<int, Interval, WarrowCombine> Restored(S, WarrowCombine{});
  Restored.restore(Snap);
  EXPECT_EQ(Restored.snapshot(), Snap) << "restore must be lossless";

  // A quiescent snapshot re-solves for free: no evaluations at all.
  PartialSolution<int, Interval> Warm = Restored.solveFor(0);
  ASSERT_TRUE(Warm.Stats.Converged);
  EXPECT_EQ(Warm.Stats.RhsEvals, 0u);
  EXPECT_EQ(Warm.Sigma, Cold.Sigma);
}

TEST(SolverState, WarmResumeRepairsDestabilizedRegion) {
  Sys S = exampleSystem();
  SlrPlusSolver<int, Interval, WarrowCombine> Solver(S, WarrowCombine{});
  PartialSolution<int, Interval> Cold = Solver.solveFor(0);
  State Snap = Solver.snapshot();

  SlrPlusSolver<int, Interval, WarrowCombine> Restored(S, WarrowCombine{});
  Restored.restore(Snap);
  Restored.invalidateCache(0);
  Restored.destabilize(0);
  PartialSolution<int, Interval> Warm = Restored.solveFor(0);
  ASSERT_TRUE(Warm.Stats.Converged);
  EXPECT_EQ(Warm.Sigma, Cold.Sigma);
  EXPECT_GE(Warm.Stats.RhsEvals, 1u);
  EXPECT_LT(Warm.Stats.RhsEvals, Cold.Stats.RhsEvals)
      << "repairing one unknown must not redo the cold solve";
}

TEST(SolverState, RetractedContributionResetsToEditedColdFixpoint) {
  // Solve with both contributors, then "edit the program": unknown 2 no
  // longer contributes. Retract its cell and *restart* the transitively
  // affected unknowns (2, its target 100, and their reader 0): reset to
  // the initial assignment, destabilize, drop the caches. Plain
  // destabilization is not enough — the standard △ only refines
  // infinite bounds, so a finite stale bound like [0,3] would survive;
  // restarting from ⊥ is what makes ⊟ sound under retraction (the
  // Schulze Frielinghaus/Seidl/Vogler restart policy the incremental
  // driver implements).
  Sys Before = exampleSystem(true);
  SlrPlusSolver<int, Interval, WarrowCombine> Solver(Before, WarrowCombine{});
  ASSERT_TRUE(Solver.solveFor(0).Stats.Converged);
  State Snap = Solver.snapshot();

  State Edited = Snap;
  Edited.Cells.clear();
  for (const State::ContribCell &Cell : Snap.Cells)
    if (Cell.Contributor != 2)
      Edited.Cells.push_back(Cell);
  ASSERT_EQ(Edited.Cells.size() + 1, Snap.Cells.size());
  for (size_t I = 0; I < Edited.size(); ++I)
    if (Edited.Vars[I] == 2 || Edited.Vars[I] == 100 ||
        Edited.Vars[I] == 0) {
      Edited.Stable[I] = 0;
      Edited.Sigma[I] = Interval::bot(); // Restart from the initial value.
      Edited.Cache[I].Valid = false;     // The edited RHS may differ.
    }

  Sys After = exampleSystem(false);
  SlrPlusSolver<int, Interval, WarrowCombine> Warm(After, WarrowCombine{});
  Warm.restore(Edited);
  PartialSolution<int, Interval> WarmR = Warm.solveFor(0);
  ASSERT_TRUE(WarmR.Stats.Converged);

  PartialSolution<int, Interval> ColdR =
      solveSLRPlus(After, 0, WarrowCombine{});
  ASSERT_TRUE(ColdR.Stats.Converged);
  EXPECT_EQ(ColdR.value(100), Iv(0, 2));
  EXPECT_EQ(WarmR.Sigma, ColdR.Sigma)
      << "warm resume after retraction must match the edited cold solve";
}

TEST(SolverState, CellForUnknownTargetMarksSideEffectedOnReintern) {
  // A state may carry a cell whose target is outside the slot table (a
  // dropped-then-readopted unknown). On re-interning, the engine must
  // adopt the mark so the localized policy still treats the target as
  // side-effected, and the cell must join into its value.
  Sys S = exampleSystem();
  SlrPlusSolver<int, Interval, WarrowCombine> Solver(S, WarrowCombine{});
  ASSERT_TRUE(Solver.solveFor(0).Stats.Converged);
  State Snap = Solver.snapshot();

  // Drop the global's slot entirely (keep the cells); re-pack the state
  // by filtering every per-slot structure and destabilizing readers.
  uint32_t GSlot = UINT32_MAX;
  for (uint32_t I = 0; I < Snap.size(); ++I)
    if (Snap.Vars[I] == 100)
      GSlot = I;
  ASSERT_NE(GSlot, UINT32_MAX);
  State Dropped;
  std::vector<uint32_t> OldToNew(Snap.size(), UINT32_MAX);
  for (uint32_t I = 0; I < Snap.size(); ++I) {
    if (I == GSlot)
      continue;
    OldToNew[I] = static_cast<uint32_t>(Dropped.Vars.size());
    Dropped.Vars.push_back(Snap.Vars[I]);
    Dropped.Sigma.push_back(Snap.Sigma[I]);
    Dropped.Stable.push_back(Snap.Stable[I]);
    Dropped.WideningPoint.push_back(Snap.WideningPoint[I]);
    Dropped.SideEffected.push_back(Snap.SideEffected[I]);
    Dropped.Infl.emplace_back();
    Dropped.Cache.emplace_back();
  }
  for (uint32_t I = 0; I < Snap.size(); ++I) {
    if (OldToNew[I] == UINT32_MAX)
      continue;
    for (uint32_t R : Snap.Infl[I])
      if (OldToNew[R] != UINT32_MAX)
        Dropped.Infl[OldToNew[I]].push_back(OldToNew[R]);
    bool ReadsDropped = false;
    for (const auto &Read : Snap.Cache[I].Reads)
      if (OldToNew[Read.first] == UINT32_MAX)
        ReadsDropped = true;
    if (ReadsDropped || !Snap.Cache[I].Valid) {
      Dropped.Stable[OldToNew[I]] = 0;
    } else {
      auto &Entry = Dropped.Cache[OldToNew[I]];
      Entry.Valid = true;
      Entry.Value = Snap.Cache[I].Value;
      for (const auto &Read : Snap.Cache[I].Reads)
        Entry.Reads.emplace_back(OldToNew[Read.first], Read.second);
    }
  }
  Dropped.Cells = Snap.Cells; // Targets 100: now outside the table.

  SlrPlusSolver<int, Interval, WarrowCombine> Warm(S, WarrowCombine{});
  Warm.restore(Dropped);
  PartialSolution<int, Interval> WarmR = Warm.solveFor(0);
  ASSERT_TRUE(WarmR.Stats.Converged);
  EXPECT_EQ(WarmR.value(100), Iv(0, 3))
      << "re-interned target must re-adopt its contribution cells";
  EXPECT_TRUE(Warm.isSideEffected(100));
}

TEST(SolverState, SerializationRoundTrips) {
  Sys S = exampleSystem();
  SlrPlusSolver<int, Interval, WarrowCombine> Solver(S, WarrowCombine{});
  ASSERT_TRUE(Solver.solveFor(0).Stats.Converged);
  State Snap = Solver.snapshot();
  ASSERT_FALSE(Snap.Cells.empty());

  std::string Text = serializeSolverState(Snap, encodeInt, encodeItv);
  std::optional<State> Back =
      parseSolverState<int, Interval>(Text, decodeInt, decodeItv);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(*Back, Snap);

  // Serialization is deterministic (canonical cell order).
  EXPECT_EQ(serializeSolverState(*Back, encodeInt, encodeItv), Text);
}

TEST(SolverState, SerializationRejectsMalformedInput) {
  Sys S = exampleSystem();
  SlrPlusSolver<int, Interval, WarrowCombine> Solver(S, WarrowCombine{});
  ASSERT_TRUE(Solver.solveFor(0).Stats.Converged);
  std::string Text =
      serializeSolverState(Solver.snapshot(), encodeInt, encodeItv);

  auto Parse = [](const std::string &T) {
    return parseSolverState<int, Interval>(T, decodeInt, decodeItv);
  };
  EXPECT_FALSE(Parse(""));
  EXPECT_FALSE(Parse("warrow-solver-state v2\nvars 0\n"));
  EXPECT_FALSE(Parse(Text.substr(0, Text.size() / 2))) << "truncation";
  EXPECT_FALSE(Parse(Text + "trailing"));
  std::string BadSlot = Text;
  size_t P = BadSlot.find("i 1 ");
  ASSERT_NE(P, std::string::npos);
  BadSlot.replace(P, 4, "i 1 9999 "); // Influence slot out of range...
  EXPECT_FALSE(Parse(BadSlot));
}

TEST(SolverState, ParallelSnapshotMergesComponents) {
  // A multi-component side-effecting workload solved on two workers; the
  // merged snapshot must restore into a sequential engine that (a) agrees
  // with the parallel σ without doing any work, and (b) repairs external
  // destabilization to the same fixpoint.
  StressSystem Stress = stressSideSystem(/*NumRings=*/4, /*RingSize=*/8,
                                         /*Bound=*/16, /*CrossLinks=*/2,
                                         /*Seed=*/7);
  SolverOptions Options;
  Options.Threads = 2;
  ParallelSlrEngine<uint64_t, Interval, WarrowCombine> Par(
      Stress.System, WarrowCombine{}, Options);
  PartialSolution<uint64_t, Interval> ParR = Par.solveFor(Stress.Root);
  ASSERT_TRUE(ParR.Stats.Converged);
  ASSERT_EQ(ParR.Sigma.size(), Stress.NumUnknowns);

  SolverState<uint64_t, Interval> Snap = Par.snapshot();
  EXPECT_EQ(Snap.size(), Stress.NumUnknowns)
      << "proxy slots must not appear in the merged snapshot";
  for (size_t I = 0; I < Snap.size(); ++I)
    EXPECT_EQ(Snap.Sigma[I], ParR.value(Snap.Vars[I])) << "slot " << I;

  SlrPlusSolver<uint64_t, Interval, WarrowCombine> Seq(Stress.System,
                                                       WarrowCombine{});
  Seq.restore(Snap);
  PartialSolution<uint64_t, Interval> Warm = Seq.solveFor(Stress.Root);
  ASSERT_TRUE(Warm.Stats.Converged);
  EXPECT_EQ(Warm.Stats.RhsEvals, 0u)
      << "a quiescent merged snapshot must re-solve for free";
  EXPECT_EQ(Warm.Sigma, ParR.Sigma);

  // Round two: restore again, poke an arbitrary unknown, and re-run.
  SlrPlusSolver<uint64_t, Interval, WarrowCombine> Seq2(Stress.System,
                                                        WarrowCombine{});
  Seq2.restore(Snap);
  Seq2.invalidateCache(Snap.Vars[Snap.size() / 2]);
  Seq2.destabilize(Snap.Vars[Snap.size() / 2]);
  PartialSolution<uint64_t, Interval> Warm2 = Seq2.solveFor(Stress.Root);
  ASSERT_TRUE(Warm2.Stats.Converged);
  EXPECT_EQ(Warm2.Sigma, ParR.Sigma);
  EXPECT_LT(Warm2.Stats.RhsEvals, ParR.Stats.RhsEvals);

  // The merged snapshot serializes and round-trips like any other.
  std::string Text = serializeSolverState(Snap, encodeU64, encodeItv);
  std::optional<SolverState<uint64_t, Interval>> Back =
      parseSolverState<uint64_t, Interval>(Text, decodeU64, decodeItv);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(*Back, Snap);
}

TEST(SolverState, ParallelRestoreDelegatesToSequential) {
  Sys S = exampleSystem();
  SlrPlusSolver<int, Interval, WarrowCombine> Solver(S, WarrowCombine{});
  PartialSolution<int, Interval> Cold = Solver.solveFor(0);
  State Snap = Solver.snapshot();

  SolverOptions Options;
  Options.Threads = 4;
  ParallelSlrEngine<int, Interval, WarrowCombine> Par(S, WarrowCombine{},
                                                      Options);
  Par.restore(Snap);
  PartialSolution<int, Interval> Warm = Par.solveFor(0);
  ASSERT_TRUE(Warm.Stats.Converged);
  EXPECT_EQ(Warm.Stats.RhsEvals, 0u);
  EXPECT_EQ(Warm.Sigma, Cold.Sigma);
}

} // namespace
