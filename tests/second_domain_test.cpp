//===- tests/second_domain_test.cpp - Parity, const-prop, LRR -------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Tests for the genericity demonstrators: the parity domain, the
// constant-propagation analysis (a second client of the solver
// machinery), and the naive local round-robin solver from Section 5's
// prose.
//
//===----------------------------------------------------------------------===//

#include "analysis/constprop.h"
#include "lang/interp.h"
#include "lang/parser.h"
#include "lattice/combine.h"
#include "lattice/parity.h"
#include "lattice/product.h"
#include "solvers/lrr.h"
#include "solvers/slr.h"
#include "solvers/sw.h"
#include "workloads/eq_generators.h"

#include <gtest/gtest.h>

using namespace warrow;

namespace {

// --- Parity -----------------------------------------------------------------

TEST(Parity, LatticeStructure) {
  EXPECT_TRUE(Parity::bot().leq(Parity::even()));
  EXPECT_TRUE(Parity::even().leq(Parity::top()));
  EXPECT_FALSE(Parity::even().leq(Parity::odd()));
  EXPECT_EQ(Parity::even().join(Parity::odd()), Parity::top());
  EXPECT_EQ(Parity::even().meet(Parity::top()), Parity::even());
  EXPECT_TRUE(Parity::even().meet(Parity::odd()).isBot());
  EXPECT_EQ(Parity::ofValue(4), Parity::even());
  EXPECT_EQ(Parity::ofValue(-3), Parity::odd());
  EXPECT_EQ(Parity::ofValue(0), Parity::even());
  EXPECT_EQ(Parity::odd().str(), "odd");
}

TEST(Parity, ArithmeticSoundnessExhaustive) {
  for (int64_t A = -6; A <= 6; ++A)
    for (int64_t B = -6; B <= 6; ++B) {
      Parity PA = Parity::ofValue(A), PB = Parity::ofValue(B);
      EXPECT_TRUE(Parity::ofValue(A + B).leq(PA.add(PB))) << A << "+" << B;
      EXPECT_TRUE(Parity::ofValue(A - B).leq(PA.sub(PB))) << A << "-" << B;
      EXPECT_TRUE(Parity::ofValue(A * B).leq(PA.mul(PB))) << A << "*" << B;
      EXPECT_TRUE(Parity::ofValue(-A).leq(PA.neg()));
    }
  // Exactness spot checks.
  EXPECT_EQ(Parity::even().add(Parity::even()), Parity::even());
  EXPECT_EQ(Parity::odd().add(Parity::odd()), Parity::even());
  EXPECT_EQ(Parity::odd().add(Parity::even()), Parity::odd());
  EXPECT_EQ(Parity::odd().mul(Parity::odd()), Parity::odd());
  EXPECT_EQ(Parity::even().mul(Parity::top()), Parity::even());
}

TEST(Parity, ProductWithIntervalRefines) {
  // The product carries information neither component has: an even value
  // in [3,5] must be 4 — the product proves evenness and the range.
  using PI = Product<Parity, Interval>;
  PI V(Parity::even(), Interval::make(3, 5));
  EXPECT_TRUE(V.first().mayBeEven());
  EXPECT_FALSE(V.first().mayBeOdd());
  EXPECT_TRUE(V.second().contains(4));
  // Component-wise solver round trip through SW.
  DenseSystem<PI> S;
  Var X = S.addVar("x");
  S.define(
      X,
      [](const DenseSystem<PI>::GetFn &Get) {
        PI Old = Get(0);
        Parity NextParity = Old.first().join(Parity::even());
        Interval NextItv =
            Old.second().join(Interval::make(0, 2)).meet(Interval::make(0, 8));
        return PI(NextParity, NextItv);
      },
      {X});
  SolveResult<PI> R = solveSW(S, WarrowCombine{});
  ASSERT_TRUE(R.Stats.Converged);
  EXPECT_EQ(R.Sigma[X].first(), Parity::even());
  EXPECT_TRUE(R.Sigma[X].second().leq(Interval::make(0, 8)));
}

// --- Constant propagation -----------------------------------------------------

struct CpRun {
  std::unique_ptr<Program> P;
  ProgramCfg Cfgs;
  ConstPropSystem CS;
  SolveResult<CpEnv> R;
};

CpRun runConstProp(std::string_view Source) {
  DiagnosticEngine Diags;
  CpRun Run;
  Run.P = parseProgram(Source, Diags);
  EXPECT_TRUE(Run.P != nullptr) << Diags.str();
  Run.Cfgs = buildProgramCfg(*Run.P);
  Run.CS = buildConstPropSystem(*Run.P, Run.Cfgs, 0);
  Run.R = solveSW(Run.CS.System, JoinCombine{});
  EXPECT_TRUE(Run.R.Stats.Converged);
  return Run;
}

TEST(ConstProp, FoldsStraightLineConstants) {
  CpRun Run = runConstProp(R"(
    int main() {
      int a = 6;
      int b = a * 7;
      int c = b - 2;
      return c;
    }
  )");
  Var ExitVar = Run.CS.VarOfNode[Cfg::ExitNode];
  CpEnv Exit = Run.R.Sigma[ExitVar];
  Symbol C = Run.P->Symbols.lookup("c");
  EXPECT_EQ(Exit.get(C), CpValue::constant(40));
  EXPECT_EQ(Exit.get(Run.P->Symbols.lookup("$ret")),
            CpValue::constant(40));
}

TEST(ConstProp, JoinsToTopAcrossBranches) {
  CpRun Run = runConstProp(R"(
    int main() {
      int x = unknown();
      int y = 0;
      int z = 5;
      if (x > 0)
        y = 1;
      else
        y = 2;
      return y + z;
    }
  )");
  Var ExitVar = Run.CS.VarOfNode[Cfg::ExitNode];
  CpEnv Exit = Run.R.Sigma[ExitVar];
  EXPECT_TRUE(Exit.get(Run.P->Symbols.lookup("y")).isTop())
      << "different constants per branch";
  EXPECT_EQ(Exit.get(Run.P->Symbols.lookup("z")), CpValue::constant(5));
}

TEST(ConstProp, ConstantGuardsKillBranches) {
  CpRun Run = runConstProp(R"(
    int main() {
      int flag = 0;
      int r = 1;
      if (flag)
        r = 99;
      return r;
    }
  )");
  Var ExitVar = Run.CS.VarOfNode[Cfg::ExitNode];
  EXPECT_EQ(Run.R.Sigma[ExitVar].get(Run.P->Symbols.lookup("r")),
            CpValue::constant(1))
      << "the then-branch folds away";
}

TEST(ConstProp, LoopsLoseInductionVariablesButKeepInvariants) {
  CpRun Run = runConstProp(R"(
    int main() {
      int k = 3;
      int i = 0;
      while (i < 10)
        i = i + k;
      return i;
    }
  )");
  Var ExitVar = Run.CS.VarOfNode[Cfg::ExitNode];
  CpEnv Exit = Run.R.Sigma[ExitVar];
  EXPECT_EQ(Exit.get(Run.P->Symbols.lookup("k")), CpValue::constant(3));
  EXPECT_TRUE(Exit.get(Run.P->Symbols.lookup("i")).isTop());
}

TEST(ConstProp, SoundAgainstConcreteExecution) {
  const char *Source = R"(
    int main() {
      int a = 4;
      int b = a * a;
      int c = unknown();
      int d = b + 0;
      if (c > 10)
        d = d + 16;
      int e = d / 8;
      return e;
    }
  )";
  CpRun Run = runConstProp(Source);
  // Concretely execute and check every frame value against the abstract.
  Interpreter Interp(*Run.P, Run.Cfgs, {42, -7});
  bool Violated = false;
  Interp.setObserver([&](uint32_t Func, uint32_t Node,
                         const ConcreteFrame &Frame, const ConcreteGlobals &) {
    if (Func != 0)
      return;
    const CpEnv &Abs = Run.R.Sigma[Run.CS.VarOfNode[Node]];
    if (Abs.isBot()) {
      Violated = true;
      return;
    }
    for (const auto &[Name, Value] : Frame.Scalars) {
      CpValue V = Abs.get(Name);
      if (V.isConstant() && V.constantValue() != Value)
        Violated = true;
    }
  });
  InterpResult Out = Interp.run();
  ASSERT_TRUE(Out.finished());
  EXPECT_FALSE(Violated);
}

// --- LRR (the paper's naive local solver) --------------------------------------

TEST(Lrr, SolvesLocallyAndLazily) {
  LocalSystem<uint64_t, NatInf> S = paperExampleFive();
  PartialSolution<uint64_t, NatInf> R =
      solveLRR(S, uint64_t{1}, JoinCombine{});
  ASSERT_TRUE(R.Stats.Converged);
  EXPECT_EQ(R.value(1), NatInf(2));
  EXPECT_EQ(R.Sigma.size(), 4u) << "dom = {y0, y1, y2, y4}, like SLR";
}

TEST(Lrr, AgreesWithSlrOnMonotoneSystems) {
  for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
    auto Dense = std::make_shared<DenseSystem<Interval>>(
        randomMonotoneSystem(20, 3, 80, Seed * 3 + 1));
    LocalSystem<int, Interval> Local(
        [Dense](int X) -> LocalSystem<int, Interval>::Rhs {
          return [Dense, X](const LocalSystem<int, Interval>::Get &Get) {
            return Dense->eval(static_cast<Var>(X), [&Get](Var Y) {
              return Get(static_cast<int>(Y));
            });
          };
        });
    PartialSolution<int, Interval> A = solveLRR(Local, 0, JoinCombine{});
    PartialSolution<int, Interval> B = solveSLR(Local, 0, JoinCombine{});
    ASSERT_TRUE(A.Stats.Converged && B.Stats.Converged);
    EXPECT_EQ(A.Sigma.size(), B.Sigma.size()) << "seed " << Seed;
    for (const auto &[X, Value] : B.Sigma)
      EXPECT_EQ(A.value(X), Value) << "unknown " << X;
  }
}

TEST(Lrr, InheritsRoundRobinDivergenceUnderWarrow) {
  // Example 1 as a local system: LRR diverges with ⊟ exactly like RR —
  // the weakness that motivates SLR (Section 5).
  auto Dense = std::make_shared<DenseSystem<NatInf>>(paperExampleOne());
  LocalSystem<int, NatInf> Local(
      [Dense](int X) -> LocalSystem<int, NatInf>::Rhs {
        return [Dense, X](const LocalSystem<int, NatInf>::Get &Get) {
          return Dense->eval(static_cast<Var>(X), [&Get](Var Y) {
            return Get(static_cast<int>(Y));
          });
        };
      });
  SolverOptions Options;
  Options.MaxRhsEvals = 3000;
  PartialSolution<int, NatInf> R =
      solveLRR(Local, 0, WarrowCombine{}, Options);
  EXPECT_FALSE(R.Stats.Converged);
  // SLR terminates on the same system (Theorem 3).
  PartialSolution<int, NatInf> S = solveSLR(Local, 0, WarrowCombine{});
  EXPECT_TRUE(S.Stats.Converged);
}

TEST(Lrr, WorkExceedsSlr) {
  // LRR re-evaluates the whole known set per round; SLR's priorities
  // focus the work. On a loop-heavy chain LRR does strictly more
  // evaluations.
  auto Dense = std::make_shared<DenseSystem<Interval>>(chainSystem(40, 100));
  LocalSystem<int, Interval> Local(
      [Dense](int X) -> LocalSystem<int, Interval>::Rhs {
        return [Dense, X](const LocalSystem<int, Interval>::Get &Get) {
          return Dense->eval(static_cast<Var>(X), [&Get](Var Y) {
            return Get(static_cast<int>(Y));
          });
        };
      });
  PartialSolution<int, Interval> A = solveLRR(Local, 39, JoinCombine{});
  PartialSolution<int, Interval> B = solveSLR(Local, 39, JoinCombine{});
  ASSERT_TRUE(A.Stats.Converged && B.Stats.Converged);
  EXPECT_GT(A.Stats.RhsEvals, B.Stats.RhsEvals);
}

} // namespace
