//===- tests/parallel_slr_test.cpp - Work-stealing parallel SLR+ ---------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The parallel SLR+ determinism contract, pinned against sequential SLR+:
//
//  - On side-effect-free systems whose dependency structure is value-
//    independent, the pre-pass discovers exactly the sequential domain,
//    each condensation component replays sequential SLR+ verbatim after
//    its predecessors finalized, and remote reads are snapshots of final
//    values — so the assignment, the per-unknown update multiset, and
//    even the rhs-eval count are identical at every thread count.
//  - On genuinely side-effecting systems the schedule is observable
//    (contributions race with reads), so only soundness is claimed:
//    every run passes the independent side-effecting verifier.
//
//===----------------------------------------------------------------------===//

#include "engine/solve.h"
#include "engine/strategies/parallel_slr.h"
#include "eqsys/verify.h"
#include "lattice/combine.h"
#include "solvers/slr_plus.h"
#include "solvers/two_phase_local.h"
#include "trace/recorder.h"
#include "workloads/eq_generators.h"

#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <vector>

using namespace warrow;

namespace {

using SideSys = SideEffectingSystem<int, Interval>;

/// Dense system wrapped as a side-effecting system with no actual side
/// effects — the static, value-independent case the determinism contract
/// covers.
SideSys sideView(const DenseSystem<Interval> &Dense) {
  return SideSys([&Dense](int X) -> SideSys::Rhs {
    return [&Dense, X](const SideSys::Get &Get, const SideSys::Side &) {
      return Dense.eval(static_cast<Var>(X),
                        [&Get](Var Y) { return Get(static_cast<int>(Y)); });
    };
  });
}

/// The root unknown local solving starts from: -1, joining the ring
/// entry of every component of a `manyComponentSystem`.
constexpr int Root = -1;

/// Side-effect-free view of a `manyComponentSystem(NumComps, CompSize,
/// ...)` with the extra Root unknown, so local solving discovers every
/// component and the condensation has genuine parallel slack.
SideSys rootedSideView(const DenseSystem<Interval> &Dense, unsigned NumComps,
                       unsigned CompSize) {
  return SideSys([&Dense, NumComps, CompSize](int X) -> SideSys::Rhs {
    if (X == Root)
      return [NumComps, CompSize](const SideSys::Get &Get,
                                  const SideSys::Side &) {
        Interval Acc = Interval::bot();
        for (unsigned C = 0; C < NumComps; ++C)
          Acc = Acc.join(Get(static_cast<int>(C * CompSize)));
        return Acc;
      };
    return [&Dense, X](const SideSys::Get &Get, const SideSys::Side &) {
      return Dense.eval(static_cast<Var>(X),
                        [&Get](Var Y) { return Get(static_cast<int>(Y)); });
    };
  });
}

/// Dense system plus one genuinely side-effected global (id 1000) with
/// contributions from every unknown — the multi-contributor set[z] shape
/// of the paper's Example 8.
SideSys sideViewWithGlobal(const DenseSystem<Interval> &Dense) {
  const int Global = 1000;
  return SideSys([&Dense, Global](int X) -> SideSys::Rhs {
    if (X == Global)
      return [](const SideSys::Get &, const SideSys::Side &) {
        return Interval::constant(0);
      };
    return [&Dense, X, Global](const SideSys::Get &Get,
                               const SideSys::Side &Side) {
      Side(Global, Interval::make(0, X % 7));
      Interval Direct = Dense.eval(
          static_cast<Var>(X),
          [&Get](Var Y) { return Get(static_cast<int>(Y)); });
      return Direct.join(Get(Global).meet(Interval::make(0, 6)));
    };
  });
}

/// The schedule-independent projection of an update event. Unknown ids
/// are comparable across solvers because the parallel pre-pass interns in
/// sequential discovery order and IdRemapSink restores global slots.
using UpdateKey = std::tuple<uint64_t, UpdateKind, bool, bool>;

std::map<UpdateKey, unsigned>
updateMultiset(const std::vector<TraceEvent> &Events) {
  std::map<UpdateKey, unsigned> M;
  for (const TraceEvent &E : Events)
    if (E.Kind == TraceEventKind::Update)
      ++M[{E.Unknown, E.UKind, E.Grew, E.Shrank}];
  return M;
}

const std::vector<unsigned> &threadSweep() {
  static const std::vector<unsigned> Threads = {1, 2, 4, 8};
  return Threads;
}

// On a static side-effect-free system, the parallel assignment and
// update multiset replay sequential SLR+ exactly at every thread count.
TEST(ParallelSlr, MatchesSequentialSlrPlusOnStaticSystem) {
  DenseSystem<Interval> Dense = manyComponentSystem(10, 6, 64, 2, 13);
  SideSys Side = rootedSideView(Dense, 10, 6);

  BufferedTraceRecorder SeqRecorder(/*CaptureTimestamps=*/false);
  SolverOptions SeqOptions;
  SeqOptions.Trace = &SeqRecorder;
  PartialSolution<int, Interval> Seq =
      solveSLRPlus(Side, Root, WarrowCombine{}, SeqOptions);
  ASSERT_TRUE(Seq.Stats.Converged);
  ASSERT_EQ(Seq.Sigma.size(), 10u * 6u + 1u) << "root must reach every ring";
  std::map<UpdateKey, unsigned> Expected = updateMultiset(SeqRecorder.events());
  ASSERT_FALSE(Expected.empty());

  for (unsigned Threads : threadSweep()) {
    BufferedTraceRecorder Recorder(/*CaptureTimestamps=*/false);
    SolverOptions Options;
    Options.Trace = &Recorder;
    Options.Threads = Threads;
    PartialSolution<int, Interval> Par =
        engine::runParallelSlrPlus(Side, Root, WarrowCombine{}, Options);
    ASSERT_TRUE(Par.Stats.Converged) << "threads=" << Threads;
    EXPECT_EQ(Par.Sigma, Seq.Sigma) << "threads=" << Threads;
    EXPECT_EQ(updateMultiset(Recorder.events()), Expected)
        << "threads=" << Threads
        << ": parallel update multiset diverges from sequential SLR+";
  }
}

// Evals on the static system are a pure function of the system, not the
// schedule. A single worker delegates to sequential SLR+ outright (no
// pre-pass, no proxies), so its count equals the sequential solver's;
// multi-worker counts agree with each other at pre-pass + per-component
// solves + one eval per cross-component proxy.
TEST(ParallelSlr, RhsEvalsIndependentOfThreadCount) {
  DenseSystem<Interval> Dense = manyComponentSystem(8, 5, 48, 2, 29);
  SideSys Side = rootedSideView(Dense, 8, 5);
  auto evalsAt = [&](unsigned Threads) {
    SolverOptions Options;
    Options.Threads = Threads;
    PartialSolution<int, Interval> R =
        engine::runParallelSlrPlus(Side, Root, WarrowCombine{}, Options);
    EXPECT_TRUE(R.Stats.Converged) << "threads=" << Threads;
    return R.Stats.RhsEvals;
  };
  PartialSolution<int, Interval> Seq = solveSLRPlus(Side, Root, WarrowCombine{});
  ASSERT_TRUE(Seq.Stats.Converged);
  EXPECT_EQ(evalsAt(1), Seq.Stats.RhsEvals)
      << "threads=1 must cost exactly what sequential SLR+ costs";
  uint64_t Two = evalsAt(2);
  for (unsigned Threads : {4u, 8u})
    EXPECT_EQ(evalsAt(Threads), Two) << "threads=" << Threads;
}

// Localized widening composes with the parallel engine: per-component
// widening points are detected in the local dependency structure.
TEST(ParallelSlr, LocalizedCombineMatchesSequential) {
  DenseSystem<Interval> Dense = manyComponentSystem(6, 6, 50, 2, 41);
  SideSys Side = rootedSideView(Dense, 6, 6);
  SlrPlusSolver<int, Interval, WarrowCombine> SeqSolver(
      Side, WarrowCombine{}, SolverOptions{}, /*LocalizedCombine=*/true);
  PartialSolution<int, Interval> Seq = SeqSolver.solveFor(Root);
  ASSERT_TRUE(Seq.Stats.Converged);
  for (unsigned Threads : {2u, 4u}) {
    SolverOptions Options;
    Options.Threads = Threads;
    PartialSolution<int, Interval> Par = engine::runParallelSlrPlus(
        Side, Root, WarrowCombine{}, Options, /*LocalizedCombine=*/true);
    ASSERT_TRUE(Par.Stats.Converged) << "threads=" << Threads;
    EXPECT_EQ(Par.Sigma, Seq.Sigma) << "threads=" << Threads;
  }
}

// A degrading ⊟ terminates on the non-monotone generator under the
// parallel engine too, and the result verifies.
TEST(ParallelSlr, NonMonotoneDegradingConvergesAndVerifies) {
  DenseSystem<Interval> Dense = randomNonMonotoneSystem(24, 3, 90, 7);
  SideSys Side = sideView(Dense);
  SolverOptions Options;
  Options.MaxRhsEvals = 2'000'000;
  for (unsigned Threads : {1u, 4u}) {
    Options.Threads = Threads;
    PartialSolution<int, Interval> R = engine::runParallelSlrPlus(
        Side, 0, DegradingWarrowCombine<int>(8), Options);
    ASSERT_TRUE(R.Stats.Converged) << "threads=" << Threads;
    VerifyResult V = verifySideEffectingSolution(Side, R);
    EXPECT_TRUE(V.Ok) << "threads=" << Threads << ": " << V.str();
  }
}

// Genuinely side-effecting system: soundness at every thread count via
// the independent verifier (the sharded accumulators must reproduce the
// per-contributor cells of sequential SLR+).
TEST(ParallelSlr, SideEffectedGlobalVerifiesAtEveryThreadCount) {
  DenseSystem<Interval> Dense = randomMonotoneSystem(18, 3, 50, 9);
  SideSys Side = sideViewWithGlobal(Dense);
  for (unsigned Threads : threadSweep()) {
    SolverOptions Options;
    Options.Threads = Threads;
    PartialSolution<int, Interval> R =
        engine::runParallelSlrPlus(Side, 0, WarrowCombine{}, Options);
    ASSERT_TRUE(R.Stats.Converged) << "threads=" << Threads;
    VerifyResult V = verifySideEffectingSolution(Side, R);
    EXPECT_TRUE(V.Ok) << "threads=" << Threads << ": " << V.str();
    EXPECT_TRUE(R.inDomain(1000))
        << "threads=" << Threads << ": global not discovered";
  }
}

// The parallel two-phase driver: parallel ▽-ascent, then the shared
// sequential △-sweeps with frozen globals — assignment matches the
// sequential two-phase baseline on static systems.
TEST(ParallelSlr, ParallelTwoPhaseMatchesSequentialBaseline) {
  DenseSystem<Interval> Dense = manyComponentSystem(8, 5, 60, 2, 17);
  SideSys Side = rootedSideView(Dense, 8, 5);
  PartialSolution<int, Interval> Seq = solveTwoPhaseSide(Side, Root);
  ASSERT_TRUE(Seq.Stats.Converged);
  for (unsigned Threads : {1u, 4u}) {
    SolverOptions Options;
    Options.Threads = Threads;
    PartialSolution<int, Interval> Par =
        engine::runParallelTwoPhaseSide(Side, Root, Options);
    ASSERT_TRUE(Par.Stats.Converged) << "threads=" << Threads;
    EXPECT_EQ(Par.Sigma, Seq.Sigma) << "threads=" << Threads;
    VerifyResult V = verifySideEffectingSolution(Side, Par);
    EXPECT_TRUE(V.Ok) << "threads=" << Threads << ": " << V.str();
  }
}

// Registry dispatch reaches the parallel strategies.
TEST(ParallelSlr, RegistryDispatchReachesParallelStrategies) {
  DenseSystem<Interval> Dense = randomMonotoneSystem(16, 3, 40, 5);
  SideSys Side = sideView(Dense);
  PartialSolution<int, Interval> Direct =
      engine::runParallelSlrPlus(Side, 0, WarrowCombine{});
  PartialSolution<int, Interval> ByName =
      engine::solveSideByName("parallel-slr-plus", Side, 0, WarrowCombine{});
  ASSERT_TRUE(ByName.Stats.Converged);
  EXPECT_EQ(ByName.Sigma, Direct.Sigma);
  PartialSolution<int, Interval> TwoByName =
      engine::solveSideByName("parallel-two-phase", Side, 0, WarrowCombine{});
  EXPECT_TRUE(TwoByName.Stats.Converged);
}

// The shared evaluation budget is respected across workers: a budget too
// small for the system reports non-convergence instead of running away.
TEST(ParallelSlr, RespectsEvalBudget) {
  DenseSystem<Interval> Dense = manyComponentSystem(12, 8, 400, 2, 3);
  SideSys Side = rootedSideView(Dense, 12, 8);
  SolverOptions Options;
  Options.MaxRhsEvals = 40;
  Options.Threads = 4;
  PartialSolution<int, Interval> R =
      engine::runParallelSlrPlus(Side, Root, WarrowCombine{}, Options);
  EXPECT_FALSE(R.Stats.Converged);
  EXPECT_LE(R.Stats.RhsEvals, 2 * Options.MaxRhsEvals)
      << "budget overshoot beyond the documented one-batch slack";
}

} // namespace
