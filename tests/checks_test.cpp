//===- tests/checks_test.cpp - Checker tests ------------------------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/checks.h"
#include "lang/parser.h"
#include "workloads/wcet_suite.h"

#include <gtest/gtest.h>

using namespace warrow;

namespace {

struct Checked {
  std::unique_ptr<Program> P;
  ProgramCfg Cfgs;
  std::vector<CheckFinding> Findings;
  CheckSummary Summary;
};

Checked check(std::string_view Source,
              SolverChoice Choice = SolverChoice::Warrow) {
  DiagnosticEngine Diags;
  Checked C;
  C.P = parseProgram(Source, Diags);
  EXPECT_TRUE(C.P != nullptr) << Diags.str();
  C.Cfgs = buildProgramCfg(*C.P);
  InterprocAnalysis Analysis(*C.P, C.Cfgs, AnalysisOptions{});
  AnalysisResult Result = Analysis.run(Choice);
  EXPECT_TRUE(Result.Stats.Converged);
  C.Findings = runChecks(*C.P, C.Cfgs, Result);
  C.Summary = summarize(C.Findings);
  return C;
}

bool hasKind(const Checked &C, CheckFinding::Kind K) {
  for (const CheckFinding &F : C.Findings)
    if (F.K == K)
      return true;
  return false;
}

TEST(Checks, CleanProgramHasNoAlarms) {
  Checked C = check(R"(
    int main() {
      int a[8];
      int i = 0;
      while (i < 8) {
        a[i] = i * 2;
        i = i + 1;
      }
      int d = i + 1;
      return a[3] / d;
    }
  )");
  EXPECT_EQ(C.Summary.DivAlarms, 0u) << C.Findings.size();
  EXPECT_EQ(C.Summary.BoundsAlarms, 0u);
  EXPECT_EQ(C.Summary.DeadLines, 0u);
}

TEST(Checks, DefiniteDivisionByZero) {
  Checked C = check(R"(
    int main() {
      int z = 0;
      return 10 / z;
    }
  )");
  ASSERT_EQ(C.Summary.DivAlarms, 1u);
  for (const CheckFinding &F : C.Findings)
    if (F.K == CheckFinding::Kind::DivByZero) {
      EXPECT_TRUE(F.Definite) << "divisor is exactly [0,0]";
    }
}

TEST(Checks, PossibleDivisionByZeroFromInput) {
  Checked C = check(R"(
    int main() {
      int d = unknown() % 5;
      return 10 / d;
    }
  )");
  ASSERT_EQ(C.Summary.DivAlarms, 1u);
  for (const CheckFinding &F : C.Findings)
    if (F.K == CheckFinding::Kind::DivByZero) {
      EXPECT_FALSE(F.Definite);
    }
}

TEST(Checks, GuardedDivisionIsClean) {
  Checked C = check(R"(
    int main() {
      int d = unknown() % 5;
      if (d < 1)
        d = 1;
      return 10 / d;
    }
  )");
  EXPECT_EQ(C.Summary.DivAlarms, 0u)
      << "the d >= 1 refinement removes the alarm";
  // Intervals cannot cut an interior zero: guarding with d != 0 keeps the
  // (spurious but sound) alarm.
  Checked Interior = check(R"(
    int main() {
      int d = unknown() % 5;
      if (d == 0)
        d = 1;
      return 10 / d;
    }
  )");
  EXPECT_EQ(Interior.Summary.DivAlarms, 1u)
      << "d = [-4,4] has 0 strictly inside; intervals cannot represent "
         "the hole";
}

TEST(Checks, ArrayBounds) {
  Checked Bad = check(R"(
    int buf[4];
    int main() {
      int i = unknown() % 10;
      if (i < 0)
        i = 0;
      return buf[i];
    }
  )");
  EXPECT_EQ(Bad.Summary.BoundsAlarms, 1u);

  Checked DefinitelyBad = check(R"(
    int buf[4];
    int main() {
      return buf[7];
    }
  )");
  ASSERT_EQ(DefinitelyBad.Summary.BoundsAlarms, 1u);
  for (const CheckFinding &F : DefinitelyBad.Findings)
    if (F.K == CheckFinding::Kind::ArrayOutOfBounds) {
      EXPECT_TRUE(F.Definite);
    }

  Checked Clean = check(R"(
    int buf[4];
    int main() {
      int i = unknown() % 10;
      if (i < 0)
        i = 0;
      if (i > 3)
        i = 3;
      return buf[i];
    }
  )");
  EXPECT_EQ(Clean.Summary.BoundsAlarms, 0u);
}

TEST(Checks, StoresAreCheckedToo) {
  Checked C = check(R"(
    int main() {
      int a[3];
      int i = 5;
      a[i] = 1;
      return a[0];
    }
  )");
  EXPECT_GE(C.Summary.BoundsAlarms, 1u);
}

TEST(Checks, DeadCodeDetected) {
  Checked C = check(R"(
    int main() {
      int x = 1;
      if (x > 10) {
        x = 99;
        x = x + 1;
      }
      return x;
    }
  )");
  EXPECT_GE(C.Summary.DeadLines, 2u);
  EXPECT_TRUE(hasKind(C, CheckFinding::Kind::UnreachableCode));
}

TEST(Checks, PrecisionReducesAlarms) {
  // A bounded global: ⊟ narrows it, so the division is safe; widening-only
  // leaves [0,+inf) joined with the -1 path... here the divisor derives
  // from a global counter that only ⊟ can bound away from zero.
  const char *Source = R"(
    int g = 1;
    int main() {
      int i = 1;
      while (i < 9) {
        g = i;
        i = i + 1;
      }
      int d = g;
      return 100 / d;
    }
  )";
  Checked Warrow = check(Source, SolverChoice::Warrow);
  Checked Widen = check(Source, SolverChoice::WidenOnly);
  EXPECT_EQ(Warrow.Summary.DivAlarms, 0u)
      << "⊟ narrows g to [1,8]: no alarm";
  EXPECT_EQ(Widen.Summary.DivAlarms, 0u)
      << "even widened, g stays >= 1 here";

  // Upper-bound variant: the array index is bounded only after narrowing.
  const char *Bounds = R"(
    int g = 0;
    int main() {
      int a[16];
      int i = 0;
      while (i < 10) {
        g = i;
        i = i + 1;
      }
      int k = g;
      return a[k];
    }
  )";
  Checked WarrowB = check(Bounds, SolverChoice::Warrow);
  Checked WidenB = check(Bounds, SolverChoice::WidenOnly);
  EXPECT_EQ(WarrowB.Summary.BoundsAlarms, 0u)
      << "⊟: g = [0,9], index in bounds";
  EXPECT_GE(WidenB.Summary.BoundsAlarms, 1u)
      << "▽-only: g = [0,+inf), alarm";
}

TEST(Checks, SuiteProgramsProduceStableFindings) {
  // The WCET suite is trap-free by construction; the checker may still
  // report *may* alarms (imprecision), but runs must not crash and
  // definite errors must not appear.
  for (const WcetBenchmark &B : wcetSuite()) {
    SCOPED_TRACE(B.Name);
    Checked C = check(B.Source);
    for (const CheckFinding &F : C.Findings) {
      if (F.K == CheckFinding::Kind::UnreachableCode)
        continue;
      EXPECT_FALSE(F.Definite)
          << B.Name << ": definite error reported in a trap-free program: "
          << F.str(*C.P);
    }
  }
}

} // namespace
