//===- tests/interproc_test.cpp - Interprocedural analysis tests ---------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// End-to-end tests of the side-effecting interprocedural interval
// analysis, including the paper's Example 7 program (global g = [0,3]).
//
//===----------------------------------------------------------------------===//

#include "analysis/interproc.h"
#include "lang/parser.h"

#include <gtest/gtest.h>

using namespace warrow;

namespace {

Interval Iv(int64_t Lo, int64_t Hi) { return Interval::make(Lo, Hi); }

struct Analyzed {
  std::unique_ptr<Program> P;
  ProgramCfg Cfgs;

  AnalysisResult run(SolverChoice Choice, AnalysisOptions Options = {}) {
    InterprocAnalysis A(*P, Cfgs, Options);
    return A.run(Choice);
  }
  Symbol sym(const char *Name) { return P->Symbols.lookup(Name); }
  uint32_t funcIndex(const char *Name) {
    return static_cast<uint32_t>(P->functionIndex(sym(Name)));
  }
};

Analyzed prepare(std::string_view Source) {
  DiagnosticEngine Diags;
  auto P = parseProgram(Source, Diags);
  EXPECT_TRUE(P != nullptr) << Diags.str();
  Analyzed A;
  A.Cfgs = buildProgramCfg(*P);
  A.P = std::move(P);
  return A;
}

// The paper's Example 7 program, verbatim (modulo syntax).
constexpr const char *ExampleSeven = R"(
  int g = 0;
  void f(int b) {
    if (b)
      g = b + 1;
    else
      g = -b - 1;
    return;
  }
  int main() {
    f(1);
    f(2);
    return 0;
  }
)";

TEST(Interproc, ExampleSevenWarrowGetsZeroToThree) {
  Analyzed A = prepare(ExampleSeven);
  AnalysisResult R = A.run(SolverChoice::Warrow);
  ASSERT_TRUE(R.Stats.Converged);
  EXPECT_EQ(R.globalValue(A.sym("g")), Iv(0, 3))
      << "the paper's Example 9 result";
}

TEST(Interproc, ExampleSevenContextSensitive) {
  Analyzed A = prepare(ExampleSeven);
  AnalysisOptions Options;
  Options.ContextSensitive = true;
  AnalysisResult R = A.run(SolverChoice::Warrow, Options);
  ASSERT_TRUE(R.Stats.Converged);
  EXPECT_EQ(R.globalValue(A.sym("g")), Iv(0, 3));
  // Two distinct constant contexts for f plus main's: more unknowns than
  // the insensitive run.
  AnalysisResult Insensitive = A.run(SolverChoice::Warrow);
  EXPECT_GT(R.NumUnknowns, Insensitive.NumUnknowns);
}

TEST(Interproc, ExampleSevenWidenOnlyIsCoarser) {
  Analyzed A = prepare(ExampleSeven);
  AnalysisResult R = A.run(SolverChoice::WidenOnly);
  ASSERT_TRUE(R.Stats.Converged);
  Interval G = R.globalValue(A.sym("g"));
  EXPECT_TRUE(Iv(0, 3).leq(G));
  EXPECT_TRUE(G.hi().isPosInf())
      << "pure widening cannot bound g, got " << G.str();
}

TEST(Interproc, LoopInvariant) {
  Analyzed A = prepare(R"(
    int main() {
      int i = 0;
      while (i < 42)
        i = i + 1;
      return i;
    }
  )");
  AnalysisResult R = A.run(SolverChoice::Warrow);
  ASSERT_TRUE(R.Stats.Converged);
  // At main's exit, $ret = i = exactly 42.
  AbsValue Exit = R.at(A.funcIndex("main"), Cfg::ExitNode);
  ASSERT_TRUE(Exit.isEnv());
  EXPECT_EQ(Exit.envValue().get(A.sym("$ret")), Interval::constant(42));
}

TEST(Interproc, NestedDependentLoops) {
  Analyzed A = prepare(R"(
    int main() {
      int total = 0;
      int i = 0;
      while (i < 10) {
        int j = 0;
        while (j < i)
          j = j + 1;
        total = j;
        i = i + 1;
      }
      return total;
    }
  )");
  AnalysisResult R = A.run(SolverChoice::Warrow);
  AnalysisResult C = A.run(SolverChoice::TwoPhase);
  ASSERT_TRUE(R.Stats.Converged && C.Stats.Converged);
  AbsValue Exit = R.at(A.funcIndex("main"), Cfg::ExitNode);
  ASSERT_TRUE(Exit.isEnv());
  Interval Ret = Exit.envValue().get(A.sym("$ret"));
  // The inner loop's back edge re-joins the unbounded i, so no interval
  // narrowing (neither ⊟ nor a separate phase) can recover the upper
  // bound — the classical "decreasing sequence fails" pattern
  // [Halbwachs & Henry, SAS'12] cited in the paper's related work.
  EXPECT_EQ(Ret.lo(), Bound(0));
  AbsValue CExit = C.at(A.funcIndex("main"), Cfg::ExitNode);
  EXPECT_TRUE(Ret == CExit.envValue().get(A.sym("$ret")))
      << "⊟ and two-phase agree here";
}

TEST(Interproc, ReturnValuesFlowBack) {
  Analyzed A = prepare(R"(
    int clamp(int v) {
      if (v < 0)
        return 0;
      if (v > 9)
        return 9;
      return v;
    }
    int main() {
      int x = unknown();
      int c = clamp(x);
      return c;
    }
  )");
  AnalysisResult R = A.run(SolverChoice::Warrow);
  ASSERT_TRUE(R.Stats.Converged);
  AbsValue Exit = R.at(A.funcIndex("main"), Cfg::ExitNode);
  ASSERT_TRUE(Exit.isEnv());
  EXPECT_EQ(Exit.envValue().get(A.sym("$ret")), Iv(0, 9));
}

TEST(Interproc, ContextSensitivityGainsPrecision) {
  Analyzed A = prepare(R"(
    int id(int v) { return v; }
    int main() {
      int a = id(3);
      int b = id(10);
      return a + b;
    }
  )");
  AnalysisOptions Sensitive;
  Sensitive.ContextSensitive = true;
  AnalysisResult RS = A.run(SolverChoice::Warrow, Sensitive);
  ASSERT_TRUE(RS.Stats.Converged);
  AbsValue ExitS = RS.at(A.funcIndex("main"), Cfg::ExitNode);
  EXPECT_EQ(ExitS.envValue().get(A.sym("$ret")), Interval::constant(13))
      << "constants kept apart per context";

  AnalysisResult RI = A.run(SolverChoice::Warrow);
  AbsValue ExitI = RI.at(A.funcIndex("main"), Cfg::ExitNode);
  Interval RetI = ExitI.envValue().get(A.sym("$ret"));
  EXPECT_TRUE(Interval::constant(13).leq(RetI));
  EXPECT_FALSE(RetI.isConstant()) << "insensitive analysis merges contexts";
}

TEST(Interproc, RecursionTerminates) {
  Analyzed A = prepare(R"(
    int down(int n) {
      if (n <= 0)
        return 0;
      int r = down(n - 1);
      return r + 1;
    }
    int main() {
      int r = down(17);
      return r;
    }
  )");
  for (bool Sensitive : {false, true}) {
    AnalysisOptions Options;
    Options.ContextSensitive = Sensitive;
    AnalysisResult R = A.run(SolverChoice::Warrow, Options);
    EXPECT_TRUE(R.Stats.Converged) << "sensitive=" << Sensitive;
  }
}

TEST(Interproc, UnreachableCodeStaysBottom) {
  Analyzed A = prepare(R"(
    int main() {
      int x = 1;
      if (x > 5)
        x = 100;
      return x;
    }
  )");
  AnalysisResult R = A.run(SolverChoice::Warrow);
  ASSERT_TRUE(R.Stats.Converged);
  AbsValue Exit = R.at(A.funcIndex("main"), Cfg::ExitNode);
  EXPECT_EQ(Exit.envValue().get(A.sym("$ret")), Interval::constant(1))
      << "the then-branch is infeasible";
}

TEST(Interproc, GlobalArraySmashing) {
  Analyzed A = prepare(R"(
    int buf[10];
    int main() {
      int i = 0;
      while (i < 10) {
        buf[i] = i;
        i = i + 1;
      }
      return buf[3];
    }
  )");
  AnalysisResult R = A.run(SolverChoice::Warrow);
  ASSERT_TRUE(R.Stats.Converged);
  Interval Buf = R.globalValue(A.sym("buf"));
  EXPECT_TRUE(Buf.contains(0));
  EXPECT_TRUE(Buf.contains(9));
  EXPECT_EQ(Buf, Iv(0, 9)) << "⊟ narrows the smashed array";
}

TEST(Interproc, TwoPhaseBaselineSoundButCoarserOnGlobals) {
  Analyzed A = prepare(ExampleSeven);
  AnalysisResult Classic = A.run(SolverChoice::TwoPhase);
  AnalysisResult Warrow = A.run(SolverChoice::Warrow);
  ASSERT_TRUE(Classic.Stats.Converged && Warrow.Stats.Converged);
  Interval GClassic = Classic.globalValue(A.sym("g"));
  Interval GWarrow = Warrow.globalValue(A.sym("g"));
  EXPECT_TRUE(GWarrow.leq(GClassic));
  EXPECT_TRUE(GClassic.hi().isPosInf()) << "frozen widened global";
}

TEST(Interproc, ContextGasCapsContexts) {
  // Recursion over constants would create unboundedly many contexts
  // without the gas; with a small cap the analysis still terminates.
  Analyzed A = prepare(R"(
    int chase(int n) {
      if (n >= 40)
        return n;
      int r = chase(n + 1);
      return r;
    }
    int main() {
      int r = chase(0);
      return r;
    }
  )");
  AnalysisOptions Options;
  Options.ContextSensitive = true;
  Options.MaxContextsPerFunction = 4;
  AnalysisResult R = A.run(SolverChoice::Warrow, Options);
  EXPECT_TRUE(R.Stats.Converged);
}

} // namespace
