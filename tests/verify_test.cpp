//===- tests/verify_test.cpp - Solution verification tests -----------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "eqsys/verify.h"
#include "lattice/combine.h"
#include "solvers/slr.h"
#include "solvers/slr_plus.h"
#include "solvers/sw.h"
#include "workloads/eq_generators.h"

#include <gtest/gtest.h>

using namespace warrow;

namespace {

TEST(Verify, AcceptsSolverOutputs) {
  for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
    DenseSystem<Interval> S = randomMonotoneSystem(25, 3, 200, Seed);
    SolveResult<Interval> R = solveSW(S, WarrowCombine{});
    ASSERT_TRUE(R.Stats.Converged);
    EXPECT_TRUE(verifyCombineSolution(S, R.Sigma, WarrowCombine{}))
        << "seed " << Seed;
    EXPECT_TRUE(verifyPostSolution(S, R.Sigma)) << "seed " << Seed;
  }
}

TEST(Verify, RejectsCorruptedAssignments) {
  DenseSystem<Interval> S = chainSystem(10, 50);
  SolveResult<Interval> R = solveSW(S, JoinCombine{});
  ASSERT_TRUE(R.Stats.Converged);
  ASSERT_TRUE(verifyPostSolution(S, R.Sigma));
  // Corrupt one unknown below its right-hand side.
  std::vector<Interval> Bad = R.Sigma;
  Bad[5] = Interval::bot();
  VerifyResult V = verifyPostSolution(S, Bad);
  EXPECT_FALSE(V);
  ASSERT_FALSE(V.Violations.empty());
  EXPECT_NE(V.Violations[0].find("c5"), std::string::npos)
      << V.Violations[0];
}

TEST(Verify, PartialSolutions) {
  LocalSystem<uint64_t, NatInf> S = paperExampleFive();
  PartialSolution<uint64_t, NatInf> R =
      solveSLR(S, uint64_t{1}, JoinCombine{});
  ASSERT_TRUE(R.Stats.Converged);
  EXPECT_TRUE(verifyPartialPostSolution(S, R));
  // Shrink the domain: no longer dependency-closed.
  PartialSolution<uint64_t, NatInf> Chopped = R;
  Chopped.Sigma.erase(4);
  EXPECT_FALSE(verifyPartialPostSolution(S, Chopped));
}

TEST(Verify, SideEffectingSolutions) {
  using Sys = SideEffectingSystem<int, Interval>;
  Sys S([](int X) -> Sys::Rhs {
    switch (X) {
    case 0:
      return [](const Sys::Get &Get, const Sys::Side &Side) {
        Side(7, Interval::make(2, 3));
        return Get(7);
      };
    default:
      return [](const Sys::Get &, const Sys::Side &) {
        return Interval::bot();
      };
    }
  });
  SlrPlusSolver<int, Interval, WarrowCombine> Solver(S, WarrowCombine{});
  PartialSolution<int, Interval> R = Solver.solveFor(0);
  ASSERT_TRUE(R.Stats.Converged);
  auto ContributionOf = [&Solver](int X) {
    Interval Acc = Interval::bot();
    auto It = Solver.contributions().find(X);
    if (It != Solver.contributions().end())
      for (const auto &[From, V] : It->second)
        Acc = Acc.join(V);
    return Acc;
  };
  EXPECT_TRUE(verifyPartialPostSolutionSide(S, R, ContributionOf));
}

// The self-contained side-effecting check re-runs every right-hand side
// and re-derives the contributions itself — no solver internals needed.
TEST(Verify, SideEffectingSelfContainedCheck) {
  using Sys = SideEffectingSystem<int, Interval>;
  Sys S([](int X) -> Sys::Rhs {
    switch (X) {
    case 0:
      return [](const Sys::Get &Get, const Sys::Side &Side) {
        Side(7, Interval::make(2, 3));
        // Contributions to targets outside the domain are tolerated iff
        // they are bottom (the always-contribute protocol emits those).
        Side(99, Interval::bot());
        return Get(7);
      };
    default:
      return [](const Sys::Get &, const Sys::Side &) {
        return Interval::bot();
      };
    }
  });
  SlrPlusSolver<int, Interval, WarrowCombine> Solver(S, WarrowCombine{});
  PartialSolution<int, Interval> R = Solver.solveFor(0);
  ASSERT_TRUE(R.Stats.Converged);
  EXPECT_TRUE(verifySideEffectingSolution(S, R));

  // Shrinking a side-effect target below the joined contributions must
  // be caught.
  PartialSolution<int, Interval> Bad = R;
  Bad.Sigma[7] = Interval::constant(2);
  VerifyResult V = verifySideEffectingSolution(S, Bad);
  ASSERT_FALSE(V.Ok);
  EXPECT_NE(V.str().find("side-effect contributions exceed sigma"),
            std::string::npos)
      << V.str();

  // Dropping a read dependency breaks domain closure.
  PartialSolution<int, Interval> Chopped = R;
  Chopped.Sigma.erase(7);
  EXPECT_FALSE(verifySideEffectingSolution(S, Chopped));
}

TEST(Verify, ViolationListTruncates) {
  VerifyResult R;
  for (int I = 0; I < 25; ++I)
    R.fail("violation " + std::to_string(I));
  EXPECT_FALSE(R.Ok);
  // 16 detailed entries plus one trailing summary.
  ASSERT_EQ(R.Violations.size(), 17u);
  EXPECT_EQ(R.Dropped, 9u);
  EXPECT_EQ(R.Violations.back(), "... and 9 more");
  EXPECT_EQ(R.Violations[15], "violation 15");
  EXPECT_NE(R.str().find("... and 9 more"), std::string::npos);
}

} // namespace
