//===- tests/cfg_test.cpp - CFG construction tests -----------------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/cfg.h"
#include "lang/parser.h"

#include <gtest/gtest.h>

using namespace warrow;

namespace {

struct Built {
  std::unique_ptr<Program> P;
  ProgramCfg Cfgs;
};

Built build(std::string_view Source) {
  DiagnosticEngine Diags;
  auto P = parseProgram(Source, Diags);
  EXPECT_TRUE(P != nullptr) << Diags.str();
  Built B;
  B.Cfgs = buildProgramCfg(*P);
  B.P = std::move(P);
  return B;
}

/// Counts edges of a given action kind.
size_t countEdges(const Cfg &G, Action::Kind K) {
  size_t N = 0;
  for (const CfgEdge &E : G.edges())
    if (E.Act.K == K)
      ++N;
  return N;
}

TEST(Cfg, StraightLine) {
  Built B = build("int main() { int x = 1; x = x + 1; return x; }");
  const Cfg &G = B.Cfgs.cfgOf(0);
  EXPECT_EQ(G.entry(), 0u);
  EXPECT_EQ(G.exit(), 1u);
  EXPECT_EQ(countEdges(G, Action::Kind::Assign), 3u)
      << "decl-with-init, assignment, and return";
  // Two edges into the exit: the return, plus the (unreachable)
  // fall-through from the dead island after the return statement.
  EXPECT_EQ(G.inEdges(G.exit()).size(), 2u);
}

TEST(Cfg, IfProducesComplementaryGuards) {
  Built B = build("int main() { int x = 0; if (x < 1) x = 1; return x; }");
  const Cfg &G = B.Cfgs.cfgOf(0);
  EXPECT_EQ(countEdges(G, Action::Kind::Guard), 2u);
  // Find the branch node: a node with two guard out-edges.
  bool FoundBranch = false;
  for (uint32_t N = 0; N < G.numNodes(); ++N) {
    const auto &Out = G.outEdges(N);
    if (Out.size() == 2 && G.edge(Out[0]).Act.K == Action::Kind::Guard &&
        G.edge(Out[1]).Act.K == Action::Kind::Guard) {
      FoundBranch = true;
      EXPECT_NE(G.edge(Out[0]).Act.Positive, G.edge(Out[1]).Act.Positive);
      EXPECT_EQ(G.edge(Out[0]).Act.Value, G.edge(Out[1]).Act.Value)
          << "same condition expression on both guards";
    }
  }
  EXPECT_TRUE(FoundBranch);
}

TEST(Cfg, WhileLoopHasBackEdge) {
  Built B = build(
      "int main() { int i = 0; while (i < 5) i = i + 1; return i; }");
  const Cfg &G = B.Cfgs.cfgOf(0);
  // There must be a cycle: some edge goes to an already-smaller node in
  // reverse post-order.
  std::vector<uint32_t> Rpo = G.reversePostOrder();
  std::vector<uint32_t> Position(G.numNodes());
  for (uint32_t I = 0; I < Rpo.size(); ++I)
    Position[Rpo[I]] = I;
  bool HasBackEdge = false;
  for (const CfgEdge &E : G.edges())
    if (Position[E.To] <= Position[E.From])
      HasBackEdge = true;
  EXPECT_TRUE(HasBackEdge);
}

TEST(Cfg, ForLoopContinueTargetsStep) {
  Built B = build(R"(
    int main() {
      int acc = 0;
      for (int i = 0; i < 10; i = i + 1) {
        if (i == 3)
          continue;
        acc = acc + i;
      }
      return acc;
    }
  )");
  const Cfg &G = B.Cfgs.cfgOf(0);
  // The loop must terminate concretely; structurally we check the step
  // assignment exists and the graph is connected to the exit.
  EXPECT_GE(countEdges(G, Action::Kind::Assign), 4u);
  EXPECT_FALSE(G.inEdges(G.exit()).empty());
}

TEST(Cfg, ReturnCreatesUnreachableIsland) {
  Built B = build("int main() { return 1; int y = 2; return y; }");
  const Cfg &G = B.Cfgs.cfgOf(0);
  // Some node has no incoming edges besides the entry (the dead decl).
  size_t Orphans = 0;
  for (uint32_t N = 0; N < G.numNodes(); ++N)
    if (N != G.entry() && G.inEdges(N).empty())
      ++Orphans;
  EXPECT_GE(Orphans, 1u);
}

TEST(Cfg, CallEdges) {
  Built B = build(R"(
    int g = 0;
    int f(int x) { return x + 1; }
    int main() {
      int r = f(3);
      g = f(4);
      f(5);
      return r;
    }
  )");
  const Cfg &Main = B.Cfgs.cfgOf(B.P->functionIndex(
      B.P->Symbols.lookup("main")));
  EXPECT_EQ(countEdges(Main, Action::Kind::Call), 3u);
  size_t WithResult = 0;
  for (const CfgEdge &E : Main.edges())
    if (E.Act.K == Action::Kind::Call && E.Act.Lhs != 0)
      ++WithResult;
  EXPECT_EQ(WithResult, 2u);
}

TEST(Cfg, InputAction) {
  Built B = build("int main() { int x = unknown(); unknown(); return x; }");
  const Cfg &G = B.Cfgs.cfgOf(0);
  EXPECT_EQ(countEdges(G, Action::Kind::Input), 1u)
      << "discarded unknown() is a no-op";
}

TEST(Cfg, DeclKinds) {
  Built B = build("int main() { int x; int a[5]; return 0; }");
  const Cfg &G = B.Cfgs.cfgOf(0);
  EXPECT_EQ(countEdges(G, Action::Kind::DeclScalar), 1u);
  EXPECT_EQ(countEdges(G, Action::Kind::DeclArray), 1u);
}

TEST(Cfg, ReversePostOrderCoversAllNodes) {
  Built B = build(R"(
    int main() {
      int i = 0;
      while (i < 3) {
        int j = 0;
        while (j < i)
          j = j + 1;
        i = i + 1;
      }
      return i;
    }
  )");
  const Cfg &G = B.Cfgs.cfgOf(0);
  std::vector<uint32_t> Rpo = G.reversePostOrder();
  EXPECT_EQ(Rpo.size(), G.numNodes());
  std::vector<char> Seen(G.numNodes(), 0);
  for (uint32_t N : Rpo) {
    EXPECT_LT(N, G.numNodes());
    EXPECT_FALSE(Seen[N]) << "duplicate node in RPO";
    Seen[N] = 1;
  }
  EXPECT_EQ(Rpo[0], G.entry()) << "RPO starts at the entry";
}

TEST(Cfg, ActionRendering) {
  Built B = build("int g = 0; int main() { g = 1 + 2; return g; }");
  const Cfg &G = B.Cfgs.cfgOf(0);
  bool Found = false;
  for (const CfgEdge &E : G.edges())
    if (E.Act.K == Action::Kind::Assign &&
        E.Act.str(B.P->Symbols) == "g = 1 + 2")
      Found = true;
  EXPECT_TRUE(Found);
}

} // namespace
