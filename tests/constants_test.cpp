//===- tests/constants_test.cpp - Threshold widening feature tests --------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/constants.h"
#include "analysis/interproc.h"
#include "analysis/precision.h"
#include "lang/parser.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace warrow;

namespace {

Interval Iv(int64_t Lo, int64_t Hi) { return Interval::make(Lo, Hi); }

std::unique_ptr<Program> parse(std::string_view Source) {
  DiagnosticEngine Diags;
  auto P = parseProgram(Source, Diags);
  EXPECT_TRUE(P != nullptr) << Diags.str();
  return P;
}

TEST(Constants, CollectsLiteralsAndNeighbours) {
  auto P = parse(R"(
    int g = 12;
    int buf[8];
    int main() {
      int x = 30;
      while (x > 5)
        x = x - 1;
      return x % 7;
    }
  )");
  ThresholdSet T = collectProgramConstants(*P);
  const std::vector<int64_t> &V = T.values();
  auto Has = [&V](int64_t X) {
    return std::binary_search(V.begin(), V.end(), X);
  };
  EXPECT_TRUE(Has(12)) << "global initializer";
  EXPECT_TRUE(Has(8)) << "array size";
  EXPECT_TRUE(Has(7)) << "array size - 1";
  EXPECT_TRUE(Has(30)) << "literal";
  EXPECT_TRUE(Has(29)) << "literal - 1";
  EXPECT_TRUE(Has(31)) << "literal + 1";
  EXPECT_TRUE(Has(5)) << "guard bound";
  EXPECT_TRUE(Has(-30)) << "negated literal";
  EXPECT_TRUE(Has(0)) << "always included";
}

TEST(Constants, ThresholdCombineSnapsBeforeInfinity) {
  auto Thresholds = std::make_shared<ThresholdSet>(
      ThresholdSet::of({10, 100}));
  ThresholdWarrowCombine Combine(Thresholds);
  int X = 0;
  AbsValue Old = AbsValue::itv(Iv(0, 3));
  AbsValue New = AbsValue::itv(Iv(0, 7));
  AbsValue Widened = Combine(X, Old, New);
  EXPECT_EQ(Widened.itvValue(), Iv(0, 10)) << "snapped to the threshold";
  // Narrowing path behaves like plain ⊟.
  AbsValue Back = Combine(X, AbsValue::itv(Interval::atLeast(Bound(0))),
                          AbsValue::itv(Iv(0, 5)));
  EXPECT_EQ(Back.itvValue(), Iv(0, 5));
}

TEST(Constants, NestedLoopInvariantRecoveredByThresholds) {
  // The pattern where *no* narrowing strategy helps (the inner loop's
  // back edge re-joins the widened invariant; cf. the NestedDependentLoops
  // interproc test): thresholds stop the overshoot at the guard constant,
  // so the invariant never becomes infinite in the first place.
  auto P = parse(R"(
    int main() {
      int total = 0;
      int i = 0;
      while (i < 10) {
        int j = 0;
        while (j < i)
          j = j + 1;
        total = j;
        i = i + 1;
      }
      return total;
    }
  )");
  ProgramCfg Cfgs = buildProgramCfg(*P);
  Symbol Ret = P->Symbols.lookup("$ret");
  uint32_t Main = 0;

  AnalysisOptions Plain;
  InterprocAnalysis PlainAnalysis(*P, Cfgs, Plain);
  AnalysisResult PlainResult = PlainAnalysis.run(SolverChoice::Warrow);

  AnalysisOptions WithT;
  WithT.ThresholdWidening = true;
  InterprocAnalysis ThresholdAnalysis(*P, Cfgs, WithT);
  AnalysisResult ThresholdResult =
      ThresholdAnalysis.run(SolverChoice::Warrow);

  ASSERT_TRUE(PlainResult.Stats.Converged &&
              ThresholdResult.Stats.Converged);
  Interval PlainRet =
      PlainResult.at(Main, Cfg::ExitNode).envValue().get(Ret);
  Interval ThresholdRet =
      ThresholdResult.at(Main, Cfg::ExitNode).envValue().get(Ret);
  EXPECT_TRUE(PlainRet.hi().isPosInf())
      << "plain ⊟ cannot bound the inner loop's invariant, got "
      << PlainRet.str();
  EXPECT_TRUE(ThresholdRet.hi().isFinite())
      << "threshold widening keeps the bound finite, got "
      << ThresholdRet.str();
  EXPECT_TRUE(ThresholdRet.leq(Iv(0, 11)))
      << "got " << ThresholdRet.str();
}

TEST(Constants, ThresholdRunStaysSoundOnSuitePrograms) {
  // Thresholded runs must still be post solutions: spot-check via the
  // precision comparison (never incomparable in a way that indicates a
  // broken lattice op) and via a concrete expectation.
  auto P = parse(R"(
    int g = 0;
    int main() {
      int i = 0;
      while (i < 12) {
        g = i;
        i = i + 1;
      }
      return i;
    }
  )");
  ProgramCfg Cfgs = buildProgramCfg(*P);
  AnalysisOptions WithT;
  WithT.ThresholdWidening = true;
  InterprocAnalysis Analysis(*P, Cfgs, WithT);
  AnalysisResult R = Analysis.run(SolverChoice::Warrow);
  ASSERT_TRUE(R.Stats.Converged);
  Interval G = R.globalValue(P->Symbols.lookup("g"));
  EXPECT_TRUE(G.contains(0));
  EXPECT_TRUE(G.contains(11));
  EXPECT_TRUE(G.leq(Iv(0, 12)));
  Interval Ret =
      R.at(0, Cfg::ExitNode).envValue().get(P->Symbols.lookup("$ret"));
  EXPECT_EQ(Ret, Interval::constant(12));
}

} // namespace
