//===- tests/hashcons_test.cpp - Hash-consing and RHS-cache tests --------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Coverage for the shared-value layer introduced for the analysis hot
// path: the generic hash-consing arena (canonicalization, collision
// fallback under a deliberately bad hash), the copy-on-write AbsEnv
// (aliasing safety, freeze semantics), property tests checking the
// consed environment operations against a straightforward map-based
// reference implementation of the same pointwise definitions, and
// end-to-end solver cross-checks asserting that the RHS evaluation
// cache changes nothing but the eval counts.
//
//===----------------------------------------------------------------------===//

#include "analysis/absvalue.h"
#include "analysis/env.h"
#include "analysis/interproc.h"
#include "lang/parser.h"
#include "lattice/combine.h"
#include "lattice/hashcons.h"
#include "solvers/slr.h"
#include "workloads/wcet_suite.h"

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <string>

using namespace warrow;

namespace {

Interval Iv(int64_t Lo, int64_t Hi) { return Interval::make(Lo, Hi); }

//===----------------------------------------------------------------------===//
// Arena basics
//===----------------------------------------------------------------------===//

TEST(HashConsArena, CanonicalizesEqualValues) {
  HashConsArena<std::string> Arena;
  ConsRef<std::string> A = Arena.intern(std::string("hello"));
  ConsRef<std::string> B = Arena.intern(std::string("hello"));
  ConsRef<std::string> C = Arena.intern(std::string("world"));
  EXPECT_EQ(A.get(), B.get()) << "equal values share one canonical node";
  EXPECT_NE(A.get(), C.get());
  EXPECT_TRUE(A.frozen());
  EXPECT_TRUE(C.frozen());
  EXPECT_EQ(Arena.size(), 2u);
  EXPECT_EQ(Arena.hits(), 1u);
  EXPECT_EQ(Arena.misses(), 2u);
}

TEST(HashConsArena, FrozenNodesPassThrough) {
  HashConsArena<std::string> Arena;
  ConsRef<std::string> A = Arena.intern(std::string("x"));
  ConsRef<std::string> Again = Arena.intern(A);
  EXPECT_EQ(A.get(), Again.get());
  EXPECT_EQ(Arena.hits(), 0u) << "re-interning frozen nodes is free";
}

/// A deliberately terrible hash: every value collides.
struct ConstantHash {
  size_t operator()(const std::string &) const { return 42; }
};

TEST(HashConsArena, CollisionFallbackIsStructural) {
  HashConsArena<std::string, ConstantHash> Arena;
  ConsRef<std::string> A = Arena.intern(std::string("aa"));
  ConsRef<std::string> B = Arena.intern(std::string("bb"));
  ConsRef<std::string> A2 = Arena.intern(std::string("aa"));
  EXPECT_NE(A.get(), B.get())
      << "colliding but distinct values must stay distinct";
  EXPECT_EQ(A.get(), A2.get())
      << "equal values canonicalize even when everything collides";
  EXPECT_EQ(A.get()->Hash, B.get()->Hash);
  EXPECT_EQ(Arena.size(), 2u);
}

//===----------------------------------------------------------------------===//
// Copy-on-write aliasing safety
//===----------------------------------------------------------------------===//

TEST(CowEnv, MutationAfterShareDoesNotLeak) {
  AbsEnv A;
  A.set(1, Iv(0, 3));
  AbsEnv B = A; // Shares the node.
  B.set(1, Iv(5, 5));
  B.set(2, Iv(7, 7));
  EXPECT_EQ(A.get(1), Iv(0, 3)) << "writes through B must not alias A";
  EXPECT_TRUE(A.get(2).isTop());
  EXPECT_EQ(B.get(1), Iv(5, 5));
}

TEST(CowEnv, MutationAfterFreezeClones) {
  AbsEnv A;
  A.set(1, Iv(0, 3));
  A.freeze();
  const void *FrozenId = A.nodeId();
  AbsEnv B = A;
  B.set(1, Iv(0, 4));
  EXPECT_EQ(A.nodeId(), FrozenId) << "frozen nodes are immutable";
  EXPECT_EQ(A.get(1), Iv(0, 3));
  EXPECT_EQ(B.get(1), Iv(0, 4));
  EXPECT_NE(B.nodeId(), FrozenId);
  // Re-freezing B's changed contents yields a different canonical node;
  // re-freezing the original value finds the same one again.
  B.freeze();
  EXPECT_NE(B.nodeId(), FrozenId);
  AbsEnv C;
  C.set(1, Iv(0, 3));
  C.freeze();
  EXPECT_EQ(C.nodeId(), FrozenId) << "interning is canonical";
}

TEST(CowEnv, FreezeMakesEqualityPointerBased) {
  AbsEnv A, B;
  A.set(3, Iv(1, 2));
  A.set(7, Iv(-1, 1));
  B.set(7, Iv(-1, 1));
  B.set(3, Iv(1, 2));
  EXPECT_TRUE(A == B) << "thawed structural equality";
  A.freeze();
  B.freeze();
  EXPECT_EQ(A.nodeId(), B.nodeId());
  EXPECT_TRUE(A == B);
  // Mixed frozen/thawed comparisons still work structurally.
  AbsEnv C;
  C.set(3, Iv(1, 2));
  C.set(7, Iv(-1, 1));
  EXPECT_TRUE(A == C);
  EXPECT_TRUE(C == A);
}

TEST(CowEnv, NoOpWritesKeepCanonicalNode) {
  AbsEnv A;
  A.set(1, Iv(0, 3));
  A.freeze();
  const void *Id = A.nodeId();
  A.set(1, Iv(0, 3));          // Rebinding the same value.
  A.set(9, Interval::top());   // Binding an absent symbol to top.
  EXPECT_EQ(A.nodeId(), Id) << "no-op writes must not clone";
}

//===----------------------------------------------------------------------===//
// Property tests against a map-based reference implementation
//===----------------------------------------------------------------------===//

/// Reference environment: a plain map with the documented pointwise
/// semantics (absent = top, never binds top or bottom).
using RefEnv = std::map<Symbol, Interval>;

constexpr Symbol MaxSym = 5;

RefEnv refOf(const AbsEnv &E) {
  RefEnv R;
  for (const EnvEntry &Entry : E.entries())
    R.emplace(Entry.first, Entry.second);
  return R;
}

Interval refGet(const RefEnv &E, Symbol S) {
  auto It = E.find(S);
  return It == E.end() ? Interval::top() : It->second;
}

void refBind(RefEnv &R, Symbol S, const Interval &V) {
  if (!V.isTop())
    R.emplace(S, V);
}

RefEnv refJoin(const RefEnv &A, const RefEnv &B) {
  RefEnv R;
  for (Symbol S = 0; S <= MaxSym; ++S)
    refBind(R, S, refGet(A, S).join(refGet(B, S)));
  return R;
}

RefEnv refWiden(const RefEnv &A, const RefEnv &B) {
  RefEnv R;
  for (Symbol S = 0; S <= MaxSym; ++S)
    refBind(R, S, refGet(A, S).widen(refGet(B, S)));
  return R;
}

RefEnv refNarrow(const RefEnv &A, const RefEnv &B) {
  RefEnv R;
  for (Symbol S = 0; S <= MaxSym; ++S) {
    // The env narrow adopts bindings present only in the other side
    // (top △ v = v via the adoption rule) and otherwise narrows pointwise.
    Interval AV = refGet(A, S), BV = refGet(B, S);
    refBind(R, S, AV.isTop() ? BV : AV.narrow(BV));
  }
  return R;
}

bool refMeet(RefEnv &A, const RefEnv &B) {
  RefEnv R;
  for (Symbol S = 0; S <= MaxSym; ++S) {
    Interval Met = refGet(A, S).meet(refGet(B, S));
    if (Met.isBot())
      return false;
    refBind(R, S, Met);
  }
  A = std::move(R);
  return true;
}

bool refLeq(const RefEnv &A, const RefEnv &B) {
  for (Symbol S = 0; S <= MaxSym; ++S)
    if (!refGet(A, S).leq(refGet(B, S)))
      return false;
  return true;
}

/// Deterministic random environment over symbols [0, MaxSym] with small
/// bounds so joins/meets/widenings hit top, bottom, and equal cases often.
AbsEnv randomEnv(std::mt19937 &Rng) {
  std::uniform_int_distribution<int> NumBindings(0, 4);
  std::uniform_int_distribution<Symbol> Sym(0, MaxSym);
  std::uniform_int_distribution<int64_t> BoundDist(-4, 4);
  AbsEnv E;
  int N = NumBindings(Rng);
  for (int I = 0; I < N; ++I) {
    int64_t Lo = BoundDist(Rng), Hi = BoundDist(Rng);
    if (Lo > Hi)
      std::swap(Lo, Hi);
    E.set(Sym(Rng), Iv(Lo, Hi));
  }
  if (Rng() % 2)
    E.freeze(); // Exercise frozen/thawed operand mixes.
  return E;
}

TEST(CowEnvProperty, OpsAgreeWithReferenceSemantics) {
  std::mt19937 Rng(20260806); // Deterministic.
  for (int Iter = 0; Iter < 2000; ++Iter) {
    AbsEnv A = randomEnv(Rng), B = randomEnv(Rng);
    RefEnv RA = refOf(A), RB = refOf(B);

    for (Symbol S = 0; S <= MaxSym; ++S)
      ASSERT_EQ(A.get(S), refGet(RA, S));

    ASSERT_EQ(refOf(A.join(B)), refJoin(RA, RB)) << "join iter " << Iter;
    ASSERT_EQ(refOf(A.widen(B)), refWiden(RA, RB)) << "widen iter " << Iter;
    ASSERT_EQ(refOf(A.narrow(B)), refNarrow(RA, RB)) << "narrow iter " << Iter;

    ASSERT_EQ(A.leq(B), refLeq(RA, RB)) << "leq iter " << Iter;
    ASSERT_EQ(A == B, RA == RB) << "eq iter " << Iter;
    ASSERT_EQ(A.hashValue() == B.hashValue() || !(A == B), true)
        << "equal envs must hash equal, iter " << Iter;

    AbsEnv M = A;
    RefEnv RM = RA;
    bool Feasible = M.meetWith(B);
    bool RefFeasible = refMeet(RM, RB);
    ASSERT_EQ(Feasible, RefFeasible) << "meet feasibility iter " << Iter;
    if (Feasible) {
      ASSERT_EQ(refOf(M), RM) << "meet iter " << Iter;
    }

    // Operands must be untouched by any of the above (aliasing safety).
    ASSERT_EQ(refOf(A), RA) << "A mutated, iter " << Iter;
    ASSERT_EQ(refOf(B), RB) << "B mutated, iter " << Iter;
  }
}

//===----------------------------------------------------------------------===//
// Solver cross-checks: RHS cache on vs. off
//===----------------------------------------------------------------------===//

using IntSys = LocalSystem<int, Interval>;

TEST(RhsCache, SlrAssignmentsIdenticalCacheOnOff) {
  // A loop-shaped system with enough re-evaluation traffic for hits.
  IntSys S([](int X) -> IntSys::Rhs {
    switch (X) {
    case 0:
      return [](const IntSys::Get &Get) {
        return Interval::constant(0).join(
            Get(1).add(Interval::constant(1)).meet(Iv(0, 40)));
      };
    case 1:
      return [](const IntSys::Get &Get) { return Get(0).join(Get(2)); };
    default:
      return [](const IntSys::Get &Get) { return Get(0); };
    }
  });
  SolverOptions On, Off;
  Off.RhsCache = false;
  PartialSolution<int, Interval> RON = solveSLR(S, 0, WarrowCombine{}, On);
  PartialSolution<int, Interval> ROFF = solveSLR(S, 0, WarrowCombine{}, Off);
  ASSERT_TRUE(RON.Stats.Converged);
  ASSERT_TRUE(ROFF.Stats.Converged);
  ASSERT_EQ(RON.Sigma.size(), ROFF.Sigma.size());
  for (const auto &[X, Value] : ROFF.Sigma)
    EXPECT_EQ(RON.value(X), Value) << "unknown " << X;
  EXPECT_EQ(RON.Stats.Updates, ROFF.Stats.Updates);
  // Hits replace evals one-for-one; the total work count is unchanged.
  EXPECT_EQ(RON.Stats.RhsEvals + RON.Stats.RhsCacheHits,
            ROFF.Stats.RhsEvals);
  EXPECT_EQ(ROFF.Stats.RhsCacheHits, 0u);
}

TEST(RhsCache, InterprocResultsIdenticalOnWcetSuite) {
  uint64_t TotalHits = 0;
  for (const WcetBenchmark &B : wcetSuite()) {
    DiagnosticEngine Diags;
    auto P = parseProgram(B.Source, Diags);
    ASSERT_TRUE(P) << B.Name << ": " << Diags.str();
    ProgramCfg Cfgs = buildProgramCfg(*P);
    AnalysisOptions On, Off;
    Off.Solver.RhsCache = false;
    for (SolverChoice Choice :
         {SolverChoice::Warrow, SolverChoice::TwoPhase}) {
      InterprocAnalysis CachedAnalysis(*P, Cfgs, On);
      InterprocAnalysis UncachedAnalysis(*P, Cfgs, Off);
      AnalysisResult Cached = CachedAnalysis.run(Choice);
      AnalysisResult Uncached = UncachedAnalysis.run(Choice);
      ASSERT_TRUE(Cached.Stats.Converged) << B.Name;
      ASSERT_TRUE(Uncached.Stats.Converged) << B.Name;
      ASSERT_EQ(Cached.NumUnknowns, Uncached.NumUnknowns) << B.Name;
      EXPECT_EQ(Cached.Stats.Updates, Uncached.Stats.Updates) << B.Name;
      EXPECT_EQ(Cached.Stats.RhsEvals + Cached.Stats.RhsCacheHits,
                Uncached.Stats.RhsEvals)
          << B.Name << ": hits must replace evals one-for-one";
      for (const auto &[X, Value] : Uncached.Solution.Sigma)
        ASSERT_EQ(Cached.Solution.value(X), Value)
            << B.Name << " at " << X.str(*P);
      TotalHits += Cached.Stats.RhsCacheHits;
    }
  }
  EXPECT_GT(TotalHits, 0u) << "the WCET suite must exercise the cache";
}

} // namespace
