//===- tests/dense_solvers_test.cpp - RR/W/SRR/SW/two-phase tests -------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Cross-checks of the dense solvers on synthetic monotone systems:
// every ⊕-solver returns a ⊕-solution; ⊟-solutions are post solutions
// (Lemma 1); SRR obeys Theorem 1's evaluation bound; all solvers agree
// on least fixpoints of short-chain systems.
//
//===----------------------------------------------------------------------===//

#include "lattice/combine.h"
#include "solvers/rr.h"
#include "solvers/srr.h"
#include "solvers/sw.h"
#include "solvers/two_phase.h"
#include "solvers/wl.h"
#include "workloads/eq_generators.h"

#include <gtest/gtest.h>

using namespace warrow;

namespace {

/// Checks sigma[x] = sigma[x] ⊕ f_x(sigma) for all x.
template <typename D, typename C>
void expectCombineSolution(const DenseSystem<D> &S,
                           const std::vector<D> &Sigma, C Combine) {
  auto Get = [&Sigma](Var Y) { return Sigma[Y]; };
  for (Var X = 0; X < S.size(); ++X) {
    D Rhs = S.eval(X, Get);
    D Combined = Combine(X, Sigma[X], Rhs);
    EXPECT_TRUE(Sigma[X] == Combined)
        << "not a ⊕-solution at " << S.name(X);
  }
}

/// Checks sigma is a post solution: f_x(sigma) ⊑ sigma[x].
template <typename D>
void expectPostSolution(const DenseSystem<D> &S, const std::vector<D> &Sigma) {
  auto Get = [&Sigma](Var Y) { return Sigma[Y]; };
  for (Var X = 0; X < S.size(); ++X)
    EXPECT_TRUE(S.eval(X, Get).leq(Sigma[X]))
        << "not a post solution at " << S.name(X);
}

TEST(DenseSolvers, ChainLeastFixpointAgreement) {
  DenseSystem<Interval> S = chainSystem(12, 100);
  SolveResult<Interval> RR = solveRR(S, JoinCombine{});
  SolveResult<Interval> W = solveW(S, JoinCombine{});
  SolveResult<Interval> SRR = solveSRR(S, JoinCombine{});
  SolveResult<Interval> SW = solveSW(S, JoinCombine{});
  ASSERT_TRUE(RR.Stats.Converged && W.Stats.Converged &&
              SRR.Stats.Converged && SW.Stats.Converged);
  for (Var X = 0; X < S.size(); ++X) {
    EXPECT_EQ(RR.Sigma[X], Interval::constant(static_cast<int64_t>(X)));
    EXPECT_EQ(W.Sigma[X], RR.Sigma[X]);
    EXPECT_EQ(SRR.Sigma[X], RR.Sigma[X]);
    EXPECT_EQ(SW.Sigma[X], RR.Sigma[X]);
  }
}

TEST(DenseSolvers, EverySolverReturnsACombineSolution) {
  DenseSystem<Interval> S = ringSystem(8, 50);
  expectCombineSolution(S, solveRR(S, JoinCombine{}).Sigma, JoinCombine{});
  expectCombineSolution(S, solveW(S, JoinCombine{}).Sigma, JoinCombine{});
  expectCombineSolution(S, solveSRR(S, WarrowCombine{}).Sigma,
                        WarrowCombine{});
  expectCombineSolution(S, solveSW(S, WarrowCombine{}).Sigma,
                        WarrowCombine{});
}

TEST(DenseSolvers, WarrowSolutionsArePostSolutions) {
  // Lemma 1 on a batch of random monotone systems.
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    DenseSystem<Interval> S = randomMonotoneSystem(30, 3, 1000, Seed);
    SolveResult<Interval> SRR = solveSRR(S, WarrowCombine{});
    SolveResult<Interval> SW = solveSW(S, WarrowCombine{});
    ASSERT_TRUE(SRR.Stats.Converged) << "Theorem 1 guarantee, seed " << Seed;
    ASSERT_TRUE(SW.Stats.Converged) << "Theorem 2 guarantee, seed " << Seed;
    expectPostSolution(S, SRR.Sigma);
    expectPostSolution(S, SW.Sigma);
  }
}

TEST(DenseSolvers, WarrowBeatsWidenOnlyInAggregate) {
  // Pointwise dominance of ⊟ over pure ▽ is *not* a theorem — interval
  // widening is not monotone in its left argument, so the two iterations
  // can land on incomparable post solutions. What holds (and what the
  // paper evaluates) is aggregate precision: count wins/losses.
  uint64_t Better = 0, Worse = 0, Total = 0;
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    DenseSystem<Interval> S = randomMonotoneSystem(25, 3, 500, Seed * 7);
    SolveResult<Interval> Warrow = solveSW(S, WarrowCombine{});
    SolveResult<Interval> Widen = solveSW(S, WidenCombine{});
    ASSERT_TRUE(Warrow.Stats.Converged && Widen.Stats.Converged);
    for (Var X = 0; X < S.size(); ++X) {
      ++Total;
      bool WLeq = Warrow.Sigma[X].leq(Widen.Sigma[X]);
      bool VLeq = Widen.Sigma[X].leq(Warrow.Sigma[X]);
      if (WLeq && !VLeq)
        ++Better;
      if (VLeq && !WLeq)
        ++Worse;
    }
  }
  EXPECT_GT(Better, Worse) << "of " << Total << " unknowns";
}

TEST(DenseSolvers, TwoPhaseRefinesWidening) {
  DenseSystem<Interval> S = ringSystem(10, 77);
  SolveResult<Interval> Widen = solveSW(S, WidenCombine{});
  SolveResult<Interval> TwoPhase = solveTwoPhase(S);
  ASSERT_TRUE(TwoPhase.Stats.Converged);
  expectPostSolution(S, TwoPhase.Sigma);
  for (Var X = 0; X < S.size(); ++X)
    EXPECT_TRUE(TwoPhase.Sigma[X].leq(Widen.Sigma[X]));
  // On this monotone system narrowing recovers the exact bound.
  EXPECT_TRUE(TwoPhase.Sigma[5].hi() <= Bound(77));
}

TEST(DenseSolvers, SrrEvaluationBoundTheorem1) {
  // Theorem 1: with ⊕ = ⊔ over a lattice of height h, SRR needs at most
  // n + (h/2) n (n+1) evaluations from the all-bottom assignment.
  for (unsigned N : {4u, 8u, 16u}) {
    int64_t Bound = 6; // Chain height ~ Bound + small constant.
    DenseSystem<Interval> S = chainSystem(N, Bound);
    SolveResult<Interval> R = solveSRR(S, JoinCombine{});
    ASSERT_TRUE(R.Stats.Converged);
    uint64_t H = static_cast<uint64_t>(Bound) + 2;
    uint64_t TheoremBound = N + (H * N * (N + 1)) / 2;
    EXPECT_LE(R.Stats.RhsEvals, TheoremBound)
        << "Theorem 1 bound violated for n=" << N;
  }
}

TEST(DenseSolvers, SwEvaluationBoundTheorem2) {
  // Theorem 2: with ⊕ = ⊔ from bottom, SW needs at most h * N
  // evaluations, N = sum over i of (2 + |dep_i|).
  for (unsigned N : {8u, 16u, 32u}) {
    int64_t Cap = 6;
    DenseSystem<Interval> S = chainSystem(N, Cap);
    SolveResult<Interval> R = solveSW(S, JoinCombine{});
    ASSERT_TRUE(R.Stats.Converged);
    uint64_t H = static_cast<uint64_t>(Cap) + 2;
    EXPECT_LE(R.Stats.RhsEvals, H * S.theoremTwoN())
        << "Theorem 2 bound violated for n=" << N;
  }
}

TEST(DenseSolvers, SwQueueStaysBounded) {
  DenseSystem<Interval> S = randomMonotoneSystem(50, 4, 200, 3);
  SolveResult<Interval> R = solveSW(S, WarrowCombine{});
  ASSERT_TRUE(R.Stats.Converged);
  EXPECT_LE(R.Stats.QueueMax, S.size());
}

TEST(DenseSolvers, NonIdempotentCombineStillSolves) {
  // An averaging-flavoured ⊕ (not idempotent): (a ⊕ b) keeps the max of
  // a and b but bumps constants; solvers must reschedule x itself and
  // still reach a ⊕-solution. We emulate with join followed by meet with
  // a cap so a fixpoint exists.
  DenseSystem<Interval> S = chainSystem(6, 9);
  auto Quirky = [](Var, const Interval &Old, const Interval &New) {
    return Old.join(New).meet(Interval::make(0, 9));
  };
  SolveResult<Interval> R = solveSW(S, Quirky);
  ASSERT_TRUE(R.Stats.Converged);
  expectCombineSolution(S, R.Sigma, Quirky);
}

TEST(DenseSolvers, DegradingWarrowTerminatesOnNonMonotone) {
  DenseSystem<Interval> S = oscillatingSystem(100);
  // Plain ⊟ diverges on this non-monotone system...
  SolverOptions Tight;
  Tight.MaxRhsEvals = 5000;
  SolveResult<Interval> Diverged = solveSW(S, WarrowCombine{}, Tight);
  EXPECT_FALSE(Diverged.Stats.Converged);
  // ...the degrading ⊟ₖ terminates (Section 4's closing remark).
  DegradingWarrowCombine<Var> Deg(2);
  SolveResult<Interval> R = solveSW(S, Deg, Tight);
  EXPECT_TRUE(R.Stats.Converged);
  // And the result is still a post solution (values got stuck high).
  expectPostSolution(S, R.Sigma);
}

TEST(DenseSolvers, EvalBudgetReportsDivergence) {
  DenseSystem<NatInf> S = paperExampleOne();
  SolverOptions Options;
  Options.MaxRhsEvals = 50;
  SolveResult<NatInf> R = solveRR(S, WarrowCombine{}, Options);
  EXPECT_FALSE(R.Stats.Converged);
  EXPECT_EQ(R.Stats.RhsEvals, 50u);
}

} // namespace
