//===- tests/containment.h - Shared soundness-check helper ------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The abstract-vs-concrete containment oracle shared by the WCET
// soundness tests and the fuzz tests: every concrete state observed at a
// program point must lie inside the (context-joined) abstract value the
// analysis computed for that point.
//
//===----------------------------------------------------------------------===//

#ifndef WARROW_TESTS_CONTAINMENT_H
#define WARROW_TESTS_CONTAINMENT_H

#include "analysis/interproc.h"
#include "lang/interp.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace warrow {

struct ContainmentViolation {
  std::string Where;
  std::string Detail;
};

struct ContainmentOutcome {
  std::vector<ContainmentViolation> Violations;
  InterpResult Run;
};

/// Runs the program concretely on \p Inputs and checks containment of
/// every observed state in \p Result.
inline ContainmentOutcome
checkContainment(const Program &P, const ProgramCfg &Cfgs,
                 const AnalysisResult &Result,
                 const std::vector<int64_t> &Inputs,
                 InterpOptions Options = {}) {
  ContainmentOutcome Outcome;
  auto &Violations = Outcome.Violations;

  // Group the solution by (func, node): join over contexts.
  std::unordered_map<uint64_t, AbsValue> ByPoint;
  std::unordered_map<Symbol, Interval> Globals;
  for (const auto &[X, Value] : Result.Solution.Sigma) {
    if (X.isGlobal()) {
      Globals[X.Glob] = Value.itvValue();
      continue;
    }
    uint64_t Key = (static_cast<uint64_t>(X.Func) << 32) | X.Node;
    AbsValue &Slot = ByPoint[Key];
    Slot = Slot.join(Value);
  }

  Interpreter Interp(P, Cfgs, Inputs, Options);
  Interp.setObserver([&](uint32_t Func, uint32_t Node,
                         const ConcreteFrame &Frame,
                         const ConcreteGlobals &ConcGlobals) {
    if (Violations.size() > 5)
      return; // Enough evidence.
    uint64_t Key = (static_cast<uint64_t>(Func) << 32) | Node;
    auto It = ByPoint.find(Key);
    std::string Where = P.Symbols.spelling(P.Functions[Func]->Name) + ":" +
                        std::to_string(Node);
    if (It == ByPoint.end() || It->second.isBot()) {
      Violations.push_back({Where, "point deemed unreachable but visited"});
      return;
    }
    const AbsEnv &Env = It->second.envValue();
    for (const auto &[Name, Value] : Frame.Scalars) {
      if (!Env.get(Name).contains(Value))
        Violations.push_back(
            {Where, P.Symbols.spelling(Name) + "=" + std::to_string(Value) +
                        " not in " + Env.get(Name).str()});
    }
    for (const auto &[Name, Contents] : Frame.Arrays) {
      Interval Abs = Env.get(Name);
      for (int64_t Element : Contents)
        if (!Abs.contains(Element))
          Violations.push_back(
              {Where, "array " + P.Symbols.spelling(Name) + " element " +
                          std::to_string(Element) + " not in " + Abs.str()});
    }
    for (const auto &[Name, Value] : ConcGlobals.Scalars) {
      auto GIt = Globals.find(Name);
      Interval Abs = GIt == Globals.end() ? Interval::top() : GIt->second;
      if (!Abs.contains(Value))
        Violations.push_back(
            {Where, "global " + P.Symbols.spelling(Name) + "=" +
                        std::to_string(Value) + " not in " + Abs.str()});
    }
    for (const auto &[Name, Contents] : ConcGlobals.Arrays) {
      auto GIt = Globals.find(Name);
      Interval Abs = GIt == Globals.end() ? Interval::top() : GIt->second;
      for (int64_t Element : Contents)
        if (!Abs.contains(Element))
          Violations.push_back(
              {Where, "global array " + P.Symbols.spelling(Name) +
                          " element " + std::to_string(Element) +
                          " not in " + Abs.str()});
    }
  });
  Outcome.Run = Interp.run();
  return Outcome;
}

} // namespace warrow

#endif // WARROW_TESTS_CONTAINMENT_H
