//===- tests/slr_plus_test.cpp - Side-effecting SLR+ tests ---------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Tests of the side-effecting solver of Section 6, including a direct
// encoding of the paper's Examples 7-9 (the global g receiving [0,3]).
//
//===----------------------------------------------------------------------===//

#include "lattice/combine.h"
#include "lattice/interval.h"
#include "solvers/slr_plus.h"
#include "solvers/two_phase_local.h"

#include <gtest/gtest.h>

using namespace warrow;

namespace {

using Sys = SideEffectingSystem<int, Interval>;

Interval Iv(int64_t Lo, int64_t Hi) { return Interval::make(Lo, Hi); }

/// Hand encoding of the paper's Example 7/9 constraint structure:
///   unknown 100 = the global g (rhs: its initializer [0,0])
///   unknown 1   = "f called with b=1": sides g += b+1 = [2,2]
///   unknown 2   = "f called with b=2": sides g += b+1 = [3,3]
///   unknown 0   = main: reads both call returns and g.
Sys exampleSevenSystem() {
  return Sys([](int X) -> Sys::Rhs {
    switch (X) {
    case 100:
      return [](const Sys::Get &, const Sys::Side &) {
        return Interval::constant(0); // int g = 0.
      };
    case 1:
      return [](const Sys::Get &, const Sys::Side &Side) {
        Side(100, Interval::constant(2)); // g = b+1 for b=1.
        return Interval::constant(1);
      };
    case 2:
      return [](const Sys::Get &, const Sys::Side &Side) {
        Side(100, Interval::constant(3)); // g = b+1 for b=2.
        return Interval::constant(2);
      };
    default:
      return [](const Sys::Get &Get, const Sys::Side &) {
        Interval A = Get(1);
        Interval B = Get(2);
        return Get(100).join(A).join(B);
      };
    }
  });
}

TEST(SlrPlus, ExampleSevenGlobalGetsZeroToThree) {
  Sys S = exampleSevenSystem();
  PartialSolution<int, Interval> R = solveSLRPlus(S, 0, WarrowCombine{});
  ASSERT_TRUE(R.Stats.Converged);
  // The paper's Example 9: sigma[g] first [0,0], widened to [0,inf] on
  // joining [0,3], then narrowed back to [0,3].
  EXPECT_EQ(R.value(100), Iv(0, 3));
}

TEST(SlrPlus, WidenOnlyKeepsGlobalWide) {
  Sys S = exampleSevenSystem();
  PartialSolution<int, Interval> R = solveSLRPlus(S, 0, WidenCombine{});
  ASSERT_TRUE(R.Stats.Converged);
  Interval G = R.value(100);
  EXPECT_TRUE(G.hi().isPosInf())
      << "pure widening cannot recover the [0,3] bound, got " << G.str();
  EXPECT_EQ(G.lo(), Bound(0));
}

TEST(SlrPlus, TwoPhaseBaselineFreezesGlobals) {
  Sys S = exampleSevenSystem();
  PartialSolution<int, Interval> R = solveTwoPhaseSide(S, 0);
  ASSERT_TRUE(R.Stats.Converged);
  // The classical baseline cannot narrow side-effected unknowns
  // (Example 8): g stays at its widened value.
  Interval G = R.value(100);
  EXPECT_TRUE(G.hi().isPosInf());
}

TEST(SlrPlus, ContributionsJoinNotOverwrite) {
  // Two contributors to one global; the global's value must cover both
  // even after the later one is recorded.
  Sys S = exampleSevenSystem();
  PartialSolution<int, Interval> R = solveSLRPlus(S, 0, WarrowCombine{});
  Interval G = R.value(100);
  EXPECT_TRUE(G.contains(0));
  EXPECT_TRUE(G.contains(2));
  EXPECT_TRUE(G.contains(3));
}

TEST(SlrPlus, PartialPostSolutionProperty) {
  // Theorem 4(1): on termination, re-evaluating every right-hand side
  // (joined with recorded contributions) stays below sigma.
  Sys S = exampleSevenSystem();
  SlrPlusSolver<int, Interval, WarrowCombine> Solver(S, WarrowCombine{});
  PartialSolution<int, Interval> R = Solver.solveFor(0);
  ASSERT_TRUE(R.Stats.Converged);
  for (const auto &[X, Value] : R.Sigma) {
    Sys::Get Get = [&R](const int &Y) { return R.value(Y); };
    Interval Contributions = Interval::bot();
    auto It = Solver.contributions().find(X);
    if (It != Solver.contributions().end())
      for (const auto &[Contributor, V] : It->second)
        Contributions = Contributions.join(V);
    Sys::Side Ignore = [](const int &, const Interval &) {};
    Interval Rhs = S.rhs(X)(Get, Ignore).join(Contributions);
    EXPECT_TRUE(Rhs.leq(Value)) << "unknown " << X;
  }
}

TEST(SlrPlus, FreshUnknownDiscoveredViaSideEffect) {
  // A side effect to a never-read unknown must still enter the domain.
  Sys S([](int X) -> Sys::Rhs {
    if (X == 0)
      return [](const Sys::Get &, const Sys::Side &Side) {
        Side(42, Interval::constant(7));
        return Interval::constant(0);
      };
    return [](const Sys::Get &, const Sys::Side &) {
      return Interval::bot();
    };
  });
  PartialSolution<int, Interval> R = solveSLRPlus(S, 0, WarrowCombine{});
  ASSERT_TRUE(R.Stats.Converged);
  EXPECT_TRUE(R.inDomain(42));
  EXPECT_EQ(R.value(42), Interval::constant(7));
}

TEST(SlrPlus, ChangingContributionsReconverge) {
  // A contributor whose contribution grows with its own value: the
  // target must end up covering the final contribution.
  Sys S([](int X) -> Sys::Rhs {
    switch (X) {
    case 0: // Driver: reads the counter and the sink.
      return [](const Sys::Get &Get, const Sys::Side &) {
        return Get(1).join(Get(50));
      };
    case 1: // Counter looping to 4, contributing its value to 50.
      return [](const Sys::Get &Get, const Sys::Side &Side) {
        Interval Self =
            Interval::constant(0).join(Get(1).add(Interval::constant(1)));
        Self = Self.meet(Iv(0, 4));
        if (!Self.isBot())
          Side(50, Self);
        return Self;
      };
    default:
      return [](const Sys::Get &, const Sys::Side &) {
        return Interval::bot();
      };
    }
  });
  PartialSolution<int, Interval> R = solveSLRPlus(S, 0, WarrowCombine{});
  ASSERT_TRUE(R.Stats.Converged);
  EXPECT_EQ(R.value(1), Iv(0, 4));
  EXPECT_TRUE(Iv(0, 4).leq(R.value(50)));
  EXPECT_EQ(R.value(50), Iv(0, 4)) << "⊟ narrows the sink back down";
}

} // namespace
