//===- tests/stats_audit_test.cpp - SolverStats population audit ---------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Every solver must populate every SolverStats field it can meaningfully
// report — the bench JSON emitters publish the whole struct, so a field
// silently left at zero reads as a measurement. This audit pins the
// per-solver semantics:
//
//   RhsEvals / Updates / VarsSeen    nonzero everywhere (on live systems)
//   QueueMax     the unified pending-work convention of stats.h:
//                queue/worklist solvers: largest queue size (> 0);
//                sweep solvers RR/SRR: the swept-set size == |system|;
//                LRR: |Known| (the growing known-set IS its worklist);
//                RLD: 0 by design (queueless recursion) — pinned so a
//                future queue doesn't land unreported;
//                two-phase: max over both phases (the descending phase
//                must not be dropped).
//   RhsCacheHits/Misses   local caching solvers report both.
//
//===----------------------------------------------------------------------===//

#include "graph/order.h"
#include "lattice/combine.h"
#include "solvers/lrr.h"
#include "solvers/parallel_sw.h"
#include "solvers/rld.h"
#include "solvers/rr.h"
#include "solvers/slr.h"
#include "solvers/slr_plus.h"
#include "solvers/srr.h"
#include "solvers/sw.h"
#include "solvers/two_phase.h"
#include "solvers/two_phase_local.h"
#include "solvers/wl.h"
#include "workloads/eq_generators.h"

#include <gtest/gtest.h>

using namespace warrow;

namespace {

using IntSys = LocalSystem<int, Interval>;
using SideSys = SideEffectingSystem<int, Interval>;

IntSys localView(const DenseSystem<Interval> &Dense) {
  return IntSys([&Dense](int X) -> IntSys::Rhs {
    return [&Dense, X](const IntSys::Get &Get) {
      return Dense.eval(static_cast<Var>(X),
                        [&Get](Var Y) { return Get(static_cast<int>(Y)); });
    };
  });
}

SideSys sideView(const DenseSystem<Interval> &Dense) {
  return SideSys([&Dense](int X) -> SideSys::Rhs {
    return [&Dense, X](const SideSys::Get &Get, const SideSys::Side &) {
      return Dense.eval(static_cast<Var>(X),
                        [&Get](Var Y) { return Get(static_cast<int>(Y)); });
    };
  });
}

void expectCoreStats(const SolverStats &S, const char *What) {
  EXPECT_TRUE(S.Converged) << What;
  EXPECT_GT(S.RhsEvals, 0u) << What << ": RhsEvals unpopulated";
  EXPECT_GT(S.Updates, 0u) << What << ": Updates unpopulated";
  EXPECT_GT(S.VarsSeen, 0u) << What << ": VarsSeen unpopulated";
}

TEST(StatsAudit, DenseSolversPopulateAllFields) {
  DenseSystem<Interval> S = ringSystem(24, 50);

  SolveResult<Interval> RR = solveRR(S, WarrowCombine{});
  expectCoreStats(RR.Stats, "RR");
  EXPECT_EQ(RR.Stats.VarsSeen, S.size());
  // Sweep strategy: the pending-work set is the full swept set.
  EXPECT_EQ(RR.Stats.QueueMax, S.size())
      << "RR: QueueMax must equal the swept-set size";

  SolveResult<Interval> W = solveW(S, JoinCombine{});
  expectCoreStats(W.Stats, "W");
  EXPECT_GT(W.Stats.QueueMax, 0u) << "W: QueueMax unpopulated";

  SolveResult<Interval> SRR = solveSRR(S, WarrowCombine{});
  expectCoreStats(SRR.Stats, "SRR");
  EXPECT_EQ(SRR.Stats.QueueMax, S.size())
      << "SRR: QueueMax must equal the swept-set size";

  SolveResult<Interval> SW = solveSW(S, WarrowCombine{});
  expectCoreStats(SW.Stats, "SW");
  EXPECT_GT(SW.Stats.QueueMax, 0u) << "SW: QueueMax unpopulated";

  const Condensation Cond = condense(extractDependencyGraph(S));
  SolveResult<Interval> Ordered =
      solveOrderedSW(S, WarrowCombine{}, topologicalRank(Cond));
  expectCoreStats(Ordered.Stats, "SW/ordered");
  EXPECT_GT(Ordered.Stats.QueueMax, 0u);

  SolveResult<Interval> Par = solveParallelSW(S, WarrowCombine{});
  expectCoreStats(Par.Stats, "parallel SW");
  EXPECT_GT(Par.Stats.QueueMax, 0u) << "parallel SW: QueueMax unpopulated";
}

TEST(StatsAudit, TwoPhaseMergesBothPhases) {
  DenseSystem<Interval> S = ringSystem(24, 50);
  SolveResult<Interval> R = solveTwoPhase(S);
  expectCoreStats(R.Stats, "two-phase");
  // The merged QueueMax covers both phases: it can never be smaller than
  // what the ascending phase alone observes.
  SolveResult<Interval> Up = solveSW(S, WidenCombine{});
  EXPECT_GE(R.Stats.QueueMax, Up.Stats.QueueMax)
      << "two-phase dropped a phase's QueueMax";
  EXPECT_GT(R.Stats.QueueMax, 0u);
}

TEST(StatsAudit, LocalSolversPopulateAllFields) {
  DenseSystem<Interval> Dense = randomMonotoneSystem(20, 3, 60, 4);
  IntSys Local = localView(Dense);
  SideSys Side = sideView(Dense);

  PartialSolution<int, Interval> Lrr = solveLRR(Local, 0, WarrowCombine{});
  expectCoreStats(Lrr.Stats, "LRR");
  // LRR's worklist IS the growing known-set: every round sweeps it all.
  EXPECT_EQ(Lrr.Stats.QueueMax, Lrr.Sigma.size())
      << "LRR: QueueMax must equal |Known|";

  PartialSolution<int, Interval> Rld = solveRLD(Local, 0, WarrowCombine{});
  expectCoreStats(Rld.Stats, "RLD");
  // RLD recurses without any queue; pinned at 0 so a future worklist
  // cannot land unreported.
  EXPECT_EQ(Rld.Stats.QueueMax, 0u);

  PartialSolution<int, Interval> Slr = solveSLR(Local, 0, WarrowCombine{});
  expectCoreStats(Slr.Stats, "SLR");
  EXPECT_GT(Slr.Stats.QueueMax, 0u) << "SLR: QueueMax unpopulated";
  EXPECT_GT(Slr.Stats.RhsCacheHits + Slr.Stats.RhsCacheMisses, 0u)
      << "SLR: cache counters unpopulated";

  PartialSolution<int, Interval> SlrPlus =
      solveSLRPlus(Side, 0, WarrowCombine{});
  expectCoreStats(SlrPlus.Stats, "SLR+");
  EXPECT_GT(SlrPlus.Stats.QueueMax, 0u) << "SLR+: QueueMax unpopulated";
  EXPECT_GT(SlrPlus.Stats.RhsCacheHits + SlrPlus.Stats.RhsCacheMisses, 0u)
      << "SLR+: cache counters unpopulated";

  PartialSolution<int, Interval> TwoPhase = solveTwoPhaseLocal(Local, 0);
  expectCoreStats(TwoPhase.Stats, "two-phase-local");
  EXPECT_GT(TwoPhase.Stats.QueueMax, 0u)
      << "two-phase-local: QueueMax unpopulated";
}

} // namespace
