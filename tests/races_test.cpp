//===- tests/races_test.cpp - Lockset race detector tests ----------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Known-answer tests for the lockset-based race detector: each program in
// the race suite carries the set of genuinely racy globals. The ⊟-solver
// must report exactly that set; the widening-only and two-phase baselines
// must report a superset (soundness), and on the two precision programs
// the two-phase baseline must report strictly more (the frozen-accumulator
// gap). Every SLR+-based solution is additionally re-checked with the
// independent side-effecting verifier.
//
//===----------------------------------------------------------------------===//

#include "analysis/races.h"
#include "lang/interp.h"
#include "lang/parser.h"
#include "workloads/race_suite.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>

using namespace warrow;

namespace {

struct ParsedBench {
  std::unique_ptr<Program> P;
  ProgramCfg Cfgs;
};

ParsedBench parseBench(const RaceBenchmark &B) {
  DiagnosticEngine Diags;
  auto P = parseProgram(B.Source, Diags);
  EXPECT_TRUE(P != nullptr) << B.Name << ": " << Diags.str();
  ProgramCfg Cfgs = P ? buildProgramCfg(*P) : ProgramCfg();
  return {std::move(P), std::move(Cfgs)};
}

std::set<std::string> racyGlobals(const Program &P,
                                  const RaceAnalysisResult &Result) {
  std::set<std::string> Names;
  for (const RaceFinding &F : Result.Races)
    Names.insert(P.Symbols.spelling(F.Glob));
  return Names;
}

std::set<std::string> expectedGlobals(const RaceBenchmark &B) {
  return std::set<std::string>(B.RacyGlobals.begin(), B.RacyGlobals.end());
}

std::string describeRaces(const Program &P,
                          const RaceAnalysisResult &Result) {
  std::string S;
  for (const RaceFinding &F : Result.Races)
    S += F.str(P) + "\n";
  return S;
}

std::string caseName(const ::testing::TestParamInfo<std::string> &Info) {
  std::string Name = Info.param;
  for (char &C : Name)
    if (!isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return Name;
}

std::vector<std::string> suiteNames() {
  std::vector<std::string> Names;
  for (const RaceBenchmark &B : raceSuite())
    Names.push_back(B.Name);
  return Names;
}

class RaceSuite : public ::testing::TestWithParam<std::string> {};

// The ⊟-solver reports exactly the known racy globals: no missed race,
// no false alarm, and the independent verifier accepts the solution.
TEST_P(RaceSuite, WarrowMatchesKnownAnswer) {
  const RaceBenchmark *B = findRaceBenchmark(GetParam());
  ASSERT_TRUE(B != nullptr);
  ParsedBench PB = parseBench(*B);
  ASSERT_TRUE(PB.P != nullptr);

  RaceAnalysis Analysis(*PB.P, PB.Cfgs, AnalysisOptions{});
  RaceAnalysisResult Result = Analysis.run(SolverChoice::Warrow);
  ASSERT_TRUE(Result.Stats.Converged) << Result.Stats.str();

  EXPECT_EQ(racyGlobals(*PB.P, Result), expectedGlobals(*B))
      << describeRaces(*PB.P, Result);

  VerifyResult V = Analysis.verify(Result);
  EXPECT_TRUE(V.Ok) << V.str();
}

// Widening-only is sound (reports at least the known races) and its
// SLR+ solution also passes the verifier.
TEST_P(RaceSuite, WidenOnlyIsSoundAndVerifies) {
  const RaceBenchmark *B = findRaceBenchmark(GetParam());
  ASSERT_TRUE(B != nullptr);
  ParsedBench PB = parseBench(*B);
  ASSERT_TRUE(PB.P != nullptr);

  RaceAnalysis Analysis(*PB.P, PB.Cfgs, AnalysisOptions{});
  RaceAnalysisResult Result = Analysis.run(SolverChoice::WidenOnly);
  ASSERT_TRUE(Result.Stats.Converged) << Result.Stats.str();

  std::set<std::string> Racy = racyGlobals(*PB.P, Result);
  for (const std::string &G : B->RacyGlobals)
    EXPECT_TRUE(Racy.count(G)) << "missed race on " << G;

  VerifyResult V = Analysis.verify(Result);
  EXPECT_TRUE(V.Ok) << V.str();
}

// The two-phase baseline is sound, never beats ⊟, and on the two
// precision programs reports strictly more alarms (its narrowing phase
// freezes the access accumulators, so spurious accesses recorded under
// widened loop bounds are never retracted).
TEST_P(RaceSuite, TwoPhaseSoundButNoMorePrecise) {
  const RaceBenchmark *B = findRaceBenchmark(GetParam());
  ASSERT_TRUE(B != nullptr);
  ParsedBench PB = parseBench(*B);
  ASSERT_TRUE(PB.P != nullptr);

  RaceAnalysis WarrowAnalysis(*PB.P, PB.Cfgs, AnalysisOptions{});
  RaceAnalysisResult Warrow = WarrowAnalysis.run(SolverChoice::Warrow);
  ASSERT_TRUE(Warrow.Stats.Converged);

  RaceAnalysis TwoPhaseAnalysis(*PB.P, PB.Cfgs, AnalysisOptions{});
  RaceAnalysisResult TwoPhase = TwoPhaseAnalysis.run(SolverChoice::TwoPhase);
  ASSERT_TRUE(TwoPhase.Stats.Converged);

  std::set<std::string> TwoPhaseRacy = racyGlobals(*PB.P, TwoPhase);
  for (const std::string &G : B->RacyGlobals)
    EXPECT_TRUE(TwoPhaseRacy.count(G)) << "two-phase missed race on " << G;

  // ⊟ alarms ⊆ two-phase alarms on every program.
  for (const std::string &G : racyGlobals(*PB.P, Warrow))
    EXPECT_TRUE(TwoPhaseRacy.count(G))
        << "warrow alarm on " << G << " absent from two-phase";

  if (B->WarrowBeatsTwoPhase) {
    EXPECT_GT(TwoPhase.Races.size(), Warrow.Races.size())
        << "expected the frozen-accumulator gap on " << B->Name << "\n"
        << "two-phase:\n"
        << describeRaces(*PB.P, TwoPhase) << "warrow:\n"
        << describeRaces(*PB.P, Warrow);
  }
}

// The work-stealing parallel SLR+ backend reports exactly the same racy
// set as sequential ⊟ at every thread count, and each run's solution is
// re-checked with the independent side-effecting verifier — the sharded
// set[z] accumulators must reproduce the sequential contribution cells.
TEST_P(RaceSuite, ParallelWarrowMatchesKnownAnswerAndVerifies) {
  const RaceBenchmark *B = findRaceBenchmark(GetParam());
  ASSERT_TRUE(B != nullptr);
  ParsedBench PB = parseBench(*B);
  ASSERT_TRUE(PB.P != nullptr);

  for (unsigned Threads : {1u, 2u, 4u}) {
    AnalysisOptions Options;
    Options.Solver.Threads = Threads;
    RaceAnalysis Analysis(*PB.P, PB.Cfgs, Options);
    RaceAnalysisResult Result = Analysis.run(SolverChoice::ParallelWarrow);
    ASSERT_TRUE(Result.Stats.Converged)
        << "threads=" << Threads << ": " << Result.Stats.str();

    EXPECT_EQ(racyGlobals(*PB.P, Result), expectedGlobals(*B))
        << "threads=" << Threads << "\n"
        << describeRaces(*PB.P, Result);

    VerifyResult V = Analysis.verify(Result);
    EXPECT_TRUE(V.Ok) << "threads=" << Threads << ": " << V.str();
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, RaceSuite,
                         ::testing::ValuesIn(suiteNames()), caseName);

// --- lattice unit tests ---------------------------------------------------

Symbol sym(Interner &I, const char *S) { return I.intern(S); }

TEST(LockSetTest, MustOrderingAndJoin) {
  Interner I;
  Symbol A = sym(I, "a"), B = sym(I, "b"), C = sym(I, "c");
  LockSet AB = LockSet::of({A, B});
  LockSet BC = LockSet::of({B, C});
  LockSet None = LockSet::none();

  // More locks held = lower in the must-ordering.
  EXPECT_TRUE(AB.leq(LockSet::of({A})));
  EXPECT_TRUE(AB.leq(None));
  EXPECT_FALSE(None.leq(AB));
  EXPECT_FALSE(AB.leq(BC));

  // Join is intersection.
  EXPECT_EQ(AB.join(BC), LockSet::of({B}));
  EXPECT_EQ(AB.join(None), None);
  EXPECT_EQ(AB.join(AB), AB);

  // Disjointness is the race condition on a pair.
  EXPECT_FALSE(AB.disjointWith(BC));
  EXPECT_TRUE(LockSet::of({A}).disjointWith(LockSet::of({C})));
  EXPECT_TRUE(None.disjointWith(AB));
  EXPECT_TRUE(None.disjointWith(None));

  // add/remove keep the set canonical.
  LockSet S = None;
  S.add(B);
  S.add(A);
  S.add(B);
  EXPECT_EQ(S, AB);
  EXPECT_TRUE(S.contains(A));
  S.remove(A);
  EXPECT_EQ(S, LockSet::of({B}));
  S.remove(C);
  EXPECT_EQ(S, LockSet::of({B}));
  EXPECT_EQ(AB.str(I), "{a,b}");
}

TEST(AccessSetTest, UnionDedupAndSubset) {
  Interner I;
  Symbol G = sym(I, "g");
  RaceAccess W{G, true, true, 0, 10, LockSet::none()};
  RaceAccess R{G, false, true, 0, 12, LockSet::of({sym(I, "m")})};

  AccessSet S;
  S.insert(W);
  S.insert(W);
  EXPECT_EQ(S.size(), 1u);
  AccessSet T = S;
  T.insert(R);
  EXPECT_TRUE(S.leq(T));
  EXPECT_FALSE(T.leq(S));
  EXPECT_EQ(S.join(T), T);

  AccessSet U;
  U.insert(R);
  U.unionWith(S);
  EXPECT_EQ(U, T);
}

TEST(RaceValueTest, LatticeOperations) {
  Interner I;
  Symbol X = sym(I, "x");
  Symbol M = sym(I, "m");

  // Point: env joins, lockset intersects, MT flag ors.
  AbsEnv E1 = AbsEnv::top();
  E1.set(X, Interval::constant(1));
  AbsEnv E2 = AbsEnv::top();
  E2.set(X, Interval::constant(5));
  RaceValue P1 = RaceValue::point(E1, LockSet::of({M}), false);
  RaceValue P2 = RaceValue::point(E2, LockSet::none(), true);
  RaceValue J = P1.join(P2);
  ASSERT_TRUE(J.isPoint());
  EXPECT_EQ(J.env().get(X), Interval::make(1, 5));
  EXPECT_TRUE(J.locks().empty());
  EXPECT_TRUE(J.multithreaded());
  EXPECT_TRUE(P1.leq(J));
  EXPECT_TRUE(P2.leq(J));
  EXPECT_FALSE(J.leq(P1));

  // Bot is the universal bottom across the payload kinds.
  RaceValue Bot = RaceValue::bot();
  EXPECT_TRUE(Bot.leq(P1));
  EXPECT_EQ(P1.join(Bot), P1);
  EXPECT_EQ(Bot.join(P2), P2);

  // Access sets: widen is join (finite lattice), narrow adopts the new
  // (smaller) set so stale accesses disappear.
  AccessSet Small, Big;
  RaceAccess A{X, true, true, 0, 3, LockSet::none()};
  RaceAccess B{X, false, true, 1, 7, LockSet::of({M})};
  Small.insert(A);
  Big.insert(A);
  Big.insert(B);
  RaceValue VSmall = RaceValue::acc(Small);
  RaceValue VBig = RaceValue::acc(Big);
  EXPECT_TRUE(VSmall.leq(VBig));
  EXPECT_EQ(VSmall.widen(VBig), VBig);
  EXPECT_EQ(VBig.narrow(VSmall), VSmall);

  // Intervals behave like the plain interval lattice.
  RaceValue I1 = RaceValue::itv(Interval::make(0, 3));
  RaceValue I2 = RaceValue::itv(Interval::make(2, 9));
  EXPECT_EQ(I1.join(I2).itvValue(), Interval::make(0, 9));
  EXPECT_TRUE(RaceValue::itv(Interval::bot()).isBot());
}

// --- access-record inspection ---------------------------------------------

TEST(RaceAccessRecords, PhaseFlagSeparatesInitWrite) {
  const RaceBenchmark *B = findRaceBenchmark("phase_protect");
  ASSERT_TRUE(B != nullptr);
  ParsedBench PB = parseBench(*B);
  ASSERT_TRUE(PB.P != nullptr);

  RaceAnalysis Analysis(*PB.P, PB.Cfgs, AnalysisOptions{});
  RaceAnalysisResult Result = Analysis.run(SolverChoice::Warrow);
  ASSERT_TRUE(Result.Stats.Converged);

  Symbol G = PB.P->Symbols.intern("g");
  const AccessSet &Accesses = Result.accessesOf(G);
  ASSERT_FALSE(Accesses.empty());

  // The `g = 42` initialization write is the only single-threaded access;
  // every multithreaded access must hold the mutex.
  size_t SingleThreaded = 0;
  for (const RaceAccess &A : Accesses.accesses()) {
    if (!A.Multithreaded) {
      ++SingleThreaded;
      EXPECT_TRUE(A.IsWrite);
      EXPECT_TRUE(A.Locks.empty());
    } else {
      EXPECT_EQ(A.Locks.size(), 1u) << A.str(*PB.P);
    }
  }
  EXPECT_EQ(SingleThreaded, 1u);
  EXPECT_TRUE(Result.Races.empty());
}

TEST(RaceAccessRecords, LocksetsRecordedPerSite) {
  const RaceBenchmark *B = findRaceBenchmark("lock_split");
  ASSERT_TRUE(B != nullptr);
  ParsedBench PB = parseBench(*B);
  ASSERT_TRUE(PB.P != nullptr);

  RaceAnalysis Analysis(*PB.P, PB.Cfgs, AnalysisOptions{});
  RaceAnalysisResult Result = Analysis.run(SolverChoice::Warrow);
  ASSERT_TRUE(Result.Stats.Converged);

  Symbol G = PB.P->Symbols.intern("g");
  Symbol M = PB.P->Symbols.intern("m");
  // Every access to g holds m (main's extra n is allowed on top).
  for (const RaceAccess &A : Result.accessesOf(G).accesses())
    EXPECT_TRUE(A.Locks.contains(M)) << A.str(*PB.P);

  // h races: its finding carries a bare multithreaded write.
  ASSERT_EQ(Result.Races.size(), 1u);
  Symbol H = PB.P->Symbols.intern("h");
  EXPECT_EQ(Result.Races[0].Glob, H);
  EXPECT_TRUE(Result.Races[0].Write.Multithreaded);
  EXPECT_TRUE(
      Result.Races[0].Write.Locks.disjointWith(Result.Races[0].Other.Locks));
}

TEST(RaceCheckIntegration, FindingsCountAsRaceAlarms) {
  const RaceBenchmark *B = findRaceBenchmark("two_counters");
  ASSERT_TRUE(B != nullptr);
  ParsedBench PB = parseBench(*B);
  ASSERT_TRUE(PB.P != nullptr);

  RaceAnalysis Analysis(*PB.P, PB.Cfgs, AnalysisOptions{});
  RaceAnalysisResult Result = Analysis.run(SolverChoice::Warrow);
  ASSERT_TRUE(Result.Stats.Converged);

  std::vector<CheckFinding> Findings =
      raceCheckFindings(*PB.P, Result.Races);
  ASSERT_EQ(Findings.size(), 1u);
  EXPECT_EQ(Findings[0].K, CheckFinding::Kind::DataRace);
  EXPECT_NE(Findings[0].str(*PB.P).find("unsafe"), std::string::npos);

  CheckSummary S = summarize(Findings);
  EXPECT_EQ(S.RaceAlarms, 1u);
  EXPECT_EQ(S.total(), 1u);
}

// The flow-insensitive interval of a shared global stays sound under the
// product domain (the worker and main contributions are joined).
TEST(RaceGlobalValues, IntervalTracksContributions) {
  const RaceBenchmark *B = findRaceBenchmark("reader_writer");
  ASSERT_TRUE(B != nullptr);
  ParsedBench PB = parseBench(*B);
  ASSERT_TRUE(PB.P != nullptr);

  RaceAnalysis Analysis(*PB.P, PB.Cfgs, AnalysisOptions{});
  RaceAnalysisResult Result = Analysis.run(SolverChoice::Warrow);
  ASSERT_TRUE(Result.Stats.Converged);

  Symbol G = PB.P->Symbols.intern("g");
  Interval V = Result.globalValue(G);
  // g starts at 0 and is assigned j with j in [0,7].
  EXPECT_TRUE(Interval::constant(0).leq(V));
  EXPECT_TRUE(Interval::constant(7).leq(V));
}

// Localized widening composes with the race system too.
TEST(RaceOptions, LocalizedWideningMatchesKnownAnswer) {
  const RaceBenchmark *B = findRaceBenchmark("narrow_guard");
  ASSERT_TRUE(B != nullptr);
  ParsedBench PB = parseBench(*B);
  ASSERT_TRUE(PB.P != nullptr);

  AnalysisOptions Options;
  Options.LocalizedWidening = true;
  RaceAnalysis Analysis(*PB.P, PB.Cfgs, Options);
  RaceAnalysisResult Result = Analysis.run(SolverChoice::Warrow);
  ASSERT_TRUE(Result.Stats.Converged);
  EXPECT_TRUE(Result.Races.empty())
      << describeRaces(*PB.P, Result);

  VerifyResult V = Analysis.verify(Result);
  EXPECT_TRUE(V.Ok) << V.str();
}

// The sequentialized interpreter executes the concurrent programs (spawn
// runs the thread body inline), so the suite is runnable end to end.
TEST(RaceInterp, CounterLockedSequentializes) {
  const RaceBenchmark *B = findRaceBenchmark("counter_locked");
  ASSERT_TRUE(B != nullptr);
  ParsedBench PB = parseBench(*B);
  ASSERT_TRUE(PB.P != nullptr);

  Interpreter I(*PB.P, PB.Cfgs);
  InterpResult R = I.run();
  ASSERT_TRUE(R.finished()) << R.TrapReason;
  // worker(5) adds 5, main's loop adds 10.
  EXPECT_EQ(R.ReturnValue, 15);
}

} // namespace
