//===- tests/domains_test.cpp - Secondary domain tests ------------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Tests for NatInf, Flat, Sign, PowerSet, Product, Lifted, and MapLattice,
// including generic law checks shared across all of them.
//
//===----------------------------------------------------------------------===//

#include "lattice/flat.h"
#include "lattice/lifted.h"
#include "lattice/mapdom.h"
#include "lattice/natinf.h"
#include "lattice/powerset.h"
#include "lattice/product.h"
#include "lattice/sign.h"
#include "lattice/thresholds.h"
#include "support/rng.h"

#include <gtest/gtest.h>

using namespace warrow;

namespace {

/// Generic lattice/acceleration law checks on a sample set.
template <typename D> void checkLaws(const std::vector<D> &Samples) {
  for (const D &A : Samples) {
    EXPECT_TRUE(A.leq(A));
    EXPECT_TRUE(D::bot().leq(A));
    for (const D &B : Samples) {
      EXPECT_TRUE(A.leq(A.join(B)));
      EXPECT_TRUE(B.leq(A.join(B)));
      EXPECT_TRUE(A.join(B) == B.join(A));
      // Widening covers the join.
      EXPECT_TRUE(A.join(B).leq(A.widen(B)));
      // Narrowing sandwich for comparable pairs.
      if (B.leq(A)) {
        EXPECT_TRUE(B.leq(A.narrow(B)));
        EXPECT_TRUE(A.narrow(B).leq(A));
      }
      // Antisymmetry.
      if (A.leq(B) && B.leq(A)) {
        EXPECT_TRUE(A == B);
      }
    }
  }
}

// --- NatInf -------------------------------------------------------------------

TEST(NatInf, PaperOperators) {
  NatInf Zero(0), Three(3), Five(5), Inf = NatInf::inf();
  EXPECT_EQ(Three.join(Five), Five);
  EXPECT_EQ(Three.meet(Five), Three);
  // a ▽ b = a if b <= a, else inf.
  EXPECT_EQ(Five.widen(Three), Five);
  EXPECT_EQ(Three.widen(Five), Inf);
  // a △ b = b if a = inf, else a.
  EXPECT_EQ(Inf.narrow(Three), Three);
  EXPECT_EQ(Five.narrow(Three), Five);
  EXPECT_EQ(Zero, NatInf::bot());
  EXPECT_EQ(Inf.plus(7), Inf);
  EXPECT_EQ(Three.plus(2), Five);
  EXPECT_EQ(Inf.str(), "inf");
  EXPECT_EQ(Three.str(), "3");
}

TEST(NatInf, Laws) {
  checkLaws<NatInf>({NatInf(0), NatInf(1), NatInf(2), NatInf(7),
                     NatInf(100), NatInf::inf()});
}

// --- Flat ----------------------------------------------------------------------

TEST(Flat, Structure) {
  using F = Flat<int64_t>;
  F Bot = F::bot(), Top = F::top(), Three = F::constant(3),
    Four = F::constant(4);
  EXPECT_TRUE(Bot.leq(Three));
  EXPECT_TRUE(Three.leq(Top));
  EXPECT_FALSE(Three.leq(Four));
  EXPECT_EQ(Three.join(Four), Top);
  EXPECT_EQ(Three.join(Three), Three);
  EXPECT_EQ(Three.meet(Four), Bot);
  EXPECT_EQ(Three.meet(Top), Three);
  EXPECT_EQ(Three.constantValue(), 3);
  checkLaws<F>({Bot, Top, Three, Four, F::constant(-1)});
}

// --- Sign -----------------------------------------------------------------------

TEST(Sign, AbstractionAndOps) {
  EXPECT_EQ(Sign::ofValue(-3), Sign::negative());
  EXPECT_EQ(Sign::ofValue(0), Sign::zero());
  EXPECT_EQ(Sign::ofValue(9), Sign::positive());
  EXPECT_EQ(Sign::positive().join(Sign::zero()), Sign::nonNegative());
  EXPECT_EQ(Sign::positive().add(Sign::positive()), Sign::positive());
  EXPECT_EQ(Sign::positive().add(Sign::zero()), Sign::positive());
  EXPECT_TRUE(Sign::positive().add(Sign::negative()).isTop());
  EXPECT_EQ(Sign::positive().mul(Sign::negative()), Sign::negative());
  EXPECT_EQ(Sign::negative().neg(), Sign::positive());
  EXPECT_EQ(Sign::nonNegative().neg(), Sign::nonPositive());
  EXPECT_EQ(Sign::positive().sub(Sign::positive()).str(), "top");
}

TEST(Sign, SoundnessExhaustive) {
  const int64_t Values[] = {-7, -1, 0, 1, 3};
  for (int64_t X : Values)
    for (int64_t Y : Values) {
      Sign SX = Sign::ofValue(X), SY = Sign::ofValue(Y);
      EXPECT_TRUE(Sign::ofValue(X + Y).leq(SX.add(SY)));
      EXPECT_TRUE(Sign::ofValue(X - Y).leq(SX.sub(SY)));
      EXPECT_TRUE(Sign::ofValue(X * Y).leq(SX.mul(SY)));
      EXPECT_TRUE(Sign::ofValue(-X).leq(SX.neg()));
    }
}

TEST(Sign, Laws) {
  checkLaws<Sign>({Sign::bot(), Sign::top(), Sign::negative(), Sign::zero(),
                   Sign::positive(), Sign::nonNegative(),
                   Sign::nonPositive(), Sign::nonZero()});
}

// --- PowerSet --------------------------------------------------------------------

TEST(PowerSet, SetOps) {
  using PS = PowerSet<int>;
  PS A = PS::of({1, 2, 3});
  PS B = PS::of({3, 4});
  EXPECT_EQ(A.join(B), PS::of({1, 2, 3, 4}));
  EXPECT_EQ(A.meet(B), PS::of({3}));
  EXPECT_TRUE(PS::singleton(2).leq(A));
  EXPECT_FALSE(A.leq(B));
  EXPECT_TRUE(A.contains(2));
  EXPECT_FALSE(A.contains(9));
  EXPECT_EQ(PS::of({2, 1, 2, 3}).str(), "{1,2,3}") << "sorted, deduped";
  checkLaws<PS>({PS::bot(), A, B, PS::singleton(1), PS::of({1, 4})});
}

// --- Product ---------------------------------------------------------------------

TEST(Product, Componentwise) {
  using P = Product<NatInf, Sign>;
  P A(NatInf(2), Sign::positive());
  P B(NatInf(5), Sign::zero());
  EXPECT_EQ(A.join(B).first(), NatInf(5));
  EXPECT_EQ(A.join(B).second(), Sign::nonNegative());
  EXPECT_TRUE(P::bot().leq(A));
  EXPECT_FALSE(A.leq(B));
  checkLaws<P>({P::bot(), A, B, P(NatInf::inf(), Sign::top())});
}

// --- Lifted ----------------------------------------------------------------------

TEST(Lifted, FreshBottom) {
  using L = Lifted<NatInf>;
  L Bot = L::bot();
  L Zero = L::of(NatInf(0));
  L Five = L::of(NatInf(5));
  EXPECT_TRUE(Bot.leq(Zero));
  EXPECT_FALSE(Zero.leq(Bot)) << "payload bottom sits above fresh bottom";
  EXPECT_EQ(Bot.join(Five), Five);
  EXPECT_EQ(Zero.join(Five), L::of(NatInf(5)));
  EXPECT_EQ(Five.meet(Bot), Bot);
  EXPECT_EQ(Bot.str(), "unreachable");
  checkLaws<L>({Bot, Zero, Five, L::of(NatInf::inf())});
}

// --- MapLattice -------------------------------------------------------------------

TEST(MapLattice, PointwiseOps) {
  using M = MapLattice<int, NatInf>;
  M A;
  A.set(1, NatInf(3));
  A.set(2, NatInf(5));
  M B;
  B.set(2, NatInf(7));
  B.set(3, NatInf(1));
  M J = A.join(B);
  EXPECT_EQ(J.get(1), NatInf(3));
  EXPECT_EQ(J.get(2), NatInf(7));
  EXPECT_EQ(J.get(3), NatInf(1));
  EXPECT_EQ(J.get(9), NatInf::bot());
  M Met = A.meet(B);
  EXPECT_EQ(Met.get(2), NatInf(5));
  EXPECT_EQ(Met.size(), 1u);
  EXPECT_TRUE(A.meet(M::bot()).isBot());
  // Setting bottom erases.
  M C = A;
  C.set(1, NatInf::bot());
  EXPECT_EQ(C.size(), 1u);
  checkLaws<M>({M::bot(), A, B, J, Met});
}

// --- ThresholdSet -----------------------------------------------------------------

TEST(Thresholds, SortedDeduped) {
  ThresholdSet T = ThresholdSet::of({100, 10, 100, 5});
  // Always includes -1, 0, 1.
  EXPECT_EQ(T.values(), (std::vector<int64_t>{-1, 0, 1, 5, 10, 100}));
  T.add(7);
  T.add(7);
  EXPECT_EQ(T.size(), 7u);
}

} // namespace
