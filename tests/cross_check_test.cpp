//===- tests/cross_check_test.cpp - Cross-solver validation ---------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Property tests validating the solver implementations against each
// other on families of random systems:
//  - with ⊕ = ⊔ on bounded monotone systems, every solver computes the
//    same least fixpoint (dense RR/W/SRR/SW and local RLD/SLR/SLR+);
//  - SLR+ restricted to systems without side effects agrees with SLR;
//  - SLR+ with ⊟ returns partial post solutions on random *side-effecting*
//    monotone systems, and the two-phase baseline is never more precise.
//
//===----------------------------------------------------------------------===//

#include "eqsys/verify.h"
#include "lattice/combine.h"
#include "solvers/rld.h"
#include "solvers/rr.h"
#include "solvers/slr.h"
#include "solvers/slr_plus.h"
#include "solvers/srr.h"
#include "solvers/sw.h"
#include "solvers/two_phase_local.h"
#include "solvers/wl.h"
#include "support/rng.h"
#include "workloads/eq_generators.h"

#include <gtest/gtest.h>

#include <memory>

using namespace warrow;

namespace {

using IntSys = LocalSystem<int, Interval>;
using SideSys = SideEffectingSystem<int, Interval>;

/// Wraps a dense system as a local one.
IntSys localView(std::shared_ptr<DenseSystem<Interval>> Dense) {
  return IntSys(
      [Dense](int X) -> IntSys::Rhs {
        return [Dense, X](const IntSys::Get &Get) {
          return Dense->eval(static_cast<Var>(X), [&Get](Var Y) {
            return Get(static_cast<int>(Y));
          });
        };
      });
}

class CrossCheck : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrossCheck, AllSolversAgreeOnLeastFixpoints) {
  // Bounded monotone systems: plain ⊔-iteration terminates, and every
  // generic solver must land on the same (least) fixpoint when started
  // from bottom.
  auto Dense = std::make_shared<DenseSystem<Interval>>(
      randomMonotoneSystem(24, 3, 60, GetParam()));
  SolveResult<Interval> RR = solveRR(*Dense, JoinCombine{});
  SolveResult<Interval> W = solveW(*Dense, JoinCombine{});
  SolveResult<Interval> SRR = solveSRR(*Dense, JoinCombine{});
  SolveResult<Interval> SW = solveSW(*Dense, JoinCombine{});
  ASSERT_TRUE(RR.Stats.Converged && W.Stats.Converged &&
              SRR.Stats.Converged && SW.Stats.Converged);
  for (Var X = 0; X < Dense->size(); ++X) {
    EXPECT_EQ(RR.Sigma[X], W.Sigma[X]) << "var " << X;
    EXPECT_EQ(RR.Sigma[X], SRR.Sigma[X]) << "var " << X;
    EXPECT_EQ(RR.Sigma[X], SW.Sigma[X]) << "var " << X;
  }

  // Local solvers on the same system, solving for every unknown in turn
  // via unknown 0..n-1 as the root of interest.
  IntSys Local = localView(Dense);
  PartialSolution<int, Interval> Slr = solveSLR(Local, 0, JoinCombine{});
  PartialSolution<int, Interval> Rld = solveRLD(Local, 0, JoinCombine{});
  ASSERT_TRUE(Slr.Stats.Converged && Rld.Stats.Converged);
  for (const auto &[X, Value] : Slr.Sigma) {
    EXPECT_EQ(Value, RR.Sigma[static_cast<Var>(X)])
        << "SLR disagrees with the dense least fixpoint at " << X;
    EXPECT_EQ(Rld.value(X), Value) << "RLD disagrees with SLR at " << X;
  }
}

TEST_P(CrossCheck, SlrPlusEqualsSlrWithoutSideEffects) {
  auto Dense = std::make_shared<DenseSystem<Interval>>(
      randomMonotoneSystem(20, 3, 300, GetParam() * 13 + 1));
  IntSys Local = localView(Dense);
  SideSys NoSide(
      [Dense](int X) -> SideSys::Rhs {
        return [Dense, X](const SideSys::Get &Get, const SideSys::Side &) {
          return Dense->eval(static_cast<Var>(X), [&Get](Var Y) {
            return Get(static_cast<int>(Y));
          });
        };
      });
  PartialSolution<int, Interval> A = solveSLR(Local, 0, WarrowCombine{});
  PartialSolution<int, Interval> B = solveSLRPlus(NoSide, 0, WarrowCombine{});
  ASSERT_TRUE(A.Stats.Converged && B.Stats.Converged);
  EXPECT_EQ(A.Sigma.size(), B.Sigma.size());
  for (const auto &[X, Value] : A.Sigma)
    EXPECT_EQ(B.value(X), Value) << "unknown " << X;
}

/// A random monotone *side-effecting* system: unknowns 0..N-1 with join
/// rhs over random deps; some unknowns additionally contribute their
/// (capped) value to a random sink unknown in [N, N+Sinks).
SideSys randomSideSystem(unsigned N, unsigned Sinks, uint64_t Seed) {
  auto Plan = std::make_shared<std::vector<std::tuple<int, int, int64_t>>>();
  auto Deps = std::make_shared<std::vector<std::vector<int>>>();
  Rng R(Seed);
  Deps->resize(N);
  for (unsigned X = 0; X < N; ++X) {
    for (int D = 0; D < 3; ++D)
      (*Deps)[X].push_back(static_cast<int>(R.below(N)));
    if (R.chance(1, 3))
      Plan->push_back({static_cast<int>(X),
                       static_cast<int>(N + R.below(Sinks)),
                       R.range(0, 20)});
  }
  return SideSys([Plan, Deps, N](int X) -> SideSys::Rhs {
    if (X >= static_cast<int>(N)) // Sinks: contributions only.
      return [](const SideSys::Get &, const SideSys::Side &) {
        return Interval::bot();
      };
    return [Plan, Deps, X](const SideSys::Get &Get,
                           const SideSys::Side &Side) {
      Interval Acc = Interval::constant(0);
      for (int Y : (*Deps)[X])
        Acc = Acc.join(
            Get(Y).add(Interval::constant(1)).meet(Interval::make(0, 50)));
      for (const auto &[From, To, Offset] : *Plan)
        if (From == X)
          Side(To, Acc.add(Interval::constant(Offset)));
      return Acc;
    };
  });
}

TEST_P(CrossCheck, SlrPlusPostSolutionOnRandomSideSystems) {
  SideSys S = randomSideSystem(18, 4, GetParam() * 31 + 7);
  SlrPlusSolver<int, Interval, WarrowCombine> Solver(S, WarrowCombine{});
  PartialSolution<int, Interval> R = Solver.solveFor(0);
  ASSERT_TRUE(R.Stats.Converged);
  // Partial post solution: rhs (plus recorded contributions) below sigma.
  for (const auto &[X, Value] : R.Sigma) {
    SideSys::Get Get = [&R](const int &Y) { return R.value(Y); };
    SideSys::Side Ignore = [](const int &, const Interval &) {};
    Interval Rhs = S.rhs(X)(Get, Ignore);
    auto It = Solver.contributions().find(X);
    if (It != Solver.contributions().end())
      for (const auto &[From, V] : It->second)
        Rhs = Rhs.join(V);
    EXPECT_TRUE(Rhs.leq(Value)) << "unknown " << X;
  }
}

TEST_P(CrossCheck, TwoPhaseNeverBeatsWarrowOnSideSystems) {
  SideSys S = randomSideSystem(18, 4, GetParam() * 17 + 3);
  PartialSolution<int, Interval> Warrow = solveSLRPlus(S, 0, WarrowCombine{});
  PartialSolution<int, Interval> Classic = solveTwoPhaseSide(S, 0);
  ASSERT_TRUE(Warrow.Stats.Converged && Classic.Stats.Converged);
  for (const auto &[X, Value] : Warrow.Sigma) {
    if (!Classic.inDomain(X))
      continue;
    EXPECT_TRUE(Value.leq(Classic.value(X)))
        << "two-phase more precise than ⊟ at " << X << ": "
        << Value.str() << " vs " << Classic.value(X).str();
  }
}

TEST_P(CrossCheck, DegradingWarrowOnNonMonotoneSystems) {
  // Non-monotone right-hand sides: plain ⊟ may oscillate between the
  // regimes forever, but the degrading ⊟ₖ caps the narrow->widen
  // switches per unknown and must terminate — and by Lemma 1 (which
  // never assumed monotonicity) land on a post solution.
  DenseSystem<Interval> S = randomNonMonotoneSystem(22, 3, 100, GetParam());

  DegradingWarrowCombine<Var> SrrCombine(4);
  SolveResult<Interval> SRR = solveSRR(S, SrrCombine);
  ASSERT_TRUE(SRR.Stats.Converged);
  VerifyResult SrrCheck = verifyPostSolution(S, SRR.Sigma);
  EXPECT_TRUE(SrrCheck.Ok) << SrrCheck.str();

  DegradingWarrowCombine<Var> SwCombine(4);
  SolveResult<Interval> SW = solveSW(S, SwCombine);
  ASSERT_TRUE(SW.Stats.Converged);
  VerifyResult SwCheck = verifyPostSolution(S, SW.Sigma);
  EXPECT_TRUE(SwCheck.Ok) << SwCheck.str();

  IntSys Local = IntSys([&S](int X) -> IntSys::Rhs {
    return [&S, X](const IntSys::Get &Get) {
      return S.eval(static_cast<Var>(X),
                    [&Get](Var Y) { return Get(static_cast<int>(Y)); });
    };
  });
  DegradingWarrowCombine<int> SlrCombine(4);
  PartialSolution<int, Interval> Slr = solveSLR(Local, 0, SlrCombine);
  ASSERT_TRUE(Slr.Stats.Converged);
  VerifyResult SlrCheck = verifyPartialPostSolution(Local, Slr);
  EXPECT_TRUE(SlrCheck.Ok) << SlrCheck.str();
}

TEST_P(CrossCheck, PlainWarrowOnNonMonotoneSystemsIsHonest) {
  // Plain ⊟ may or may not converge on a non-monotone system within the
  // budget; either way the Converged flag must be truthful — a run that
  // claims convergence has actually reached a post solution.
  DenseSystem<Interval> S =
      randomNonMonotoneSystem(22, 3, 100, GetParam() * 29 + 11);
  SolverOptions Options;
  Options.MaxRhsEvals = 50'000;
  SolveResult<Interval> SW = solveSW(S, WarrowCombine{}, Options);
  if (SW.Stats.Converged) {
    VerifyResult Check = verifyPostSolution(S, SW.Sigma);
    EXPECT_TRUE(Check.Ok) << Check.str();
  } else {
    EXPECT_GE(SW.Stats.RhsEvals, Options.MaxRhsEvals);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossCheck,
                         ::testing::Values(1ull, 2ull, 3ull, 5ull, 8ull,
                                           13ull, 21ull, 34ull));

} // namespace
