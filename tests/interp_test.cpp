//===- tests/interp_test.cpp - Concrete interpreter tests ----------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/interp.h"
#include "lang/parser.h"

#include <gtest/gtest.h>

using namespace warrow;

namespace {

struct Runner {
  std::unique_ptr<Program> P;
  ProgramCfg Cfgs;

  InterpResult run(std::vector<int64_t> Inputs = {},
                   InterpOptions Options = {}) {
    Interpreter I(*P, Cfgs, std::move(Inputs), Options);
    return I.run();
  }
};

Runner prepare(std::string_view Source) {
  DiagnosticEngine Diags;
  auto P = parseProgram(Source, Diags);
  EXPECT_TRUE(P != nullptr) << Diags.str();
  Runner R;
  R.Cfgs = buildProgramCfg(*P);
  R.P = std::move(P);
  return R;
}

TEST(Interp, ArithmeticAndReturn) {
  Runner R = prepare("int main() { return 2 + 3 * 4 - 10 / 2; }");
  InterpResult Out = R.run();
  ASSERT_TRUE(Out.finished()) << Out.TrapReason;
  EXPECT_EQ(Out.ReturnValue, 9);
}

TEST(Interp, LoopsAndConditions) {
  Runner R = prepare(R"(
    int main() {
      int sum = 0;
      for (int i = 1; i <= 10; i = i + 1)
        if (i % 2 == 0)
          sum = sum + i;
      return sum;
    }
  )");
  InterpResult Out = R.run();
  ASSERT_TRUE(Out.finished());
  EXPECT_EQ(Out.ReturnValue, 30);
}

TEST(Interp, WhileBreakContinue) {
  Runner R = prepare(R"(
    int main() {
      int i = 0;
      int acc = 0;
      while (1) {
        i = i + 1;
        if (i > 10)
          break;
        if (i % 3 == 0)
          continue;
        acc = acc + i;
      }
      return acc;
    }
  )");
  InterpResult Out = R.run();
  ASSERT_TRUE(Out.finished());
  EXPECT_EQ(Out.ReturnValue, 1 + 2 + 4 + 5 + 7 + 8 + 10);
}

TEST(Interp, FunctionsAndRecursion) {
  Runner R = prepare(R"(
    int fib(int n) {
      if (n < 2)
        return n;
      int a = fib(n - 1);
      int b = fib(n - 2);
      return a + b;
    }
    int main() {
      int r = fib(10);
      return r;
    }
  )");
  InterpResult Out = R.run();
  ASSERT_TRUE(Out.finished());
  EXPECT_EQ(Out.ReturnValue, 55);
}

TEST(Interp, GlobalsPersistAcrossCalls) {
  Runner R = prepare(R"(
    int counter = 5;
    void bump() { counter = counter + 1; return; }
    int main() {
      bump();
      bump();
      bump();
      return counter;
    }
  )");
  InterpResult Out = R.run();
  ASSERT_TRUE(Out.finished());
  EXPECT_EQ(Out.ReturnValue, 8);
  Symbol G = R.P->Symbols.lookup("counter");
  Interpreter I(*R.P, R.Cfgs);
  I.run();
  EXPECT_EQ(I.globals().Scalars.at(G), 8);
}

TEST(Interp, ArraysZeroInitialized) {
  Runner R = prepare(R"(
    int garr[4];
    int main() {
      int larr[3];
      int acc = garr[0] + garr[3] + larr[0] + larr[2];
      larr[1] = 7;
      acc = acc + larr[1];
      return acc;
    }
  )");
  InterpResult Out = R.run();
  ASSERT_TRUE(Out.finished());
  EXPECT_EQ(Out.ReturnValue, 7);
}

TEST(Interp, InputTape) {
  Runner R = prepare(R"(
    int main() {
      int a = unknown();
      int b = unknown();
      int c = unknown();
      return a * 100 + b * 10 + c;
    }
  )");
  InterpResult Out = R.run({1, 2});
  ASSERT_TRUE(Out.finished());
  EXPECT_EQ(Out.ReturnValue, 121) << "tape wraps around";
  InterpResult Empty = R.run({});
  EXPECT_EQ(Empty.ReturnValue, 0) << "empty tape yields zeros";
}

TEST(Interp, ShortCircuitProtectsDivision) {
  Runner R = prepare(R"(
    int main() {
      int x = 0;
      int ok = 0;
      if (x != 0 && 10 / x > 1)
        ok = 1;
      if (x == 0 || 10 / x > 1)
        ok = ok + 2;
      return ok;
    }
  )");
  InterpResult Out = R.run();
  ASSERT_TRUE(Out.finished()) << Out.TrapReason;
  EXPECT_EQ(Out.ReturnValue, 2);
}

TEST(Interp, Traps) {
  EXPECT_EQ(prepare("int main() { int x = 0; return 1 / x; }").run().St,
            InterpResult::Status::Trapped);
  EXPECT_EQ(prepare("int main() { int x = 0; return 1 % x; }").run().St,
            InterpResult::Status::Trapped);
  EXPECT_EQ(
      prepare("int main() { int a[3]; a[5] = 1; return 0; }").run().St,
      InterpResult::Status::Trapped);
  EXPECT_EQ(
      prepare("int main() { int a[3]; int i = -1; return a[i]; }").run().St,
      InterpResult::Status::Trapped);
}

TEST(Interp, FuelLimit) {
  Runner R = prepare("int main() { while (1) { } return 0; }");
  InterpOptions Options;
  Options.MaxSteps = 1000;
  InterpResult Out = R.run({}, Options);
  EXPECT_EQ(Out.St, InterpResult::Status::OutOfFuel);
}

TEST(Interp, CallDepthLimit) {
  Runner R = prepare(R"(
    int spin(int n) {
      int r = spin(n + 1);
      return r;
    }
    int main() {
      int r = spin(0);
      return r;
    }
  )");
  InterpResult Out = R.run();
  EXPECT_EQ(Out.St, InterpResult::Status::Trapped);
}

TEST(Interp, ObserverSeesProgramPoints) {
  Runner R = prepare(
      "int main() { int i = 0; while (i < 3) i = i + 1; return i; }");
  size_t Visits = 0;
  bool SawExit = false;
  Interpreter I(*R.P, R.Cfgs);
  I.setObserver([&](uint32_t Func, uint32_t Node, const ConcreteFrame &,
                    const ConcreteGlobals &) {
    EXPECT_EQ(Func, 0u);
    ++Visits;
    if (Node == Cfg::ExitNode)
      SawExit = true;
  });
  InterpResult Out = I.run();
  ASSERT_TRUE(Out.finished());
  EXPECT_GT(Visits, 10u);
  EXPECT_TRUE(SawExit);
}

TEST(Interp, ReadBeforeAssignIsZero) {
  Runner R = prepare("int main() { int x; return x + 1; }");
  InterpResult Out = R.run();
  ASSERT_TRUE(Out.finished());
  EXPECT_EQ(Out.ReturnValue, 1);
}

TEST(Interp, SpawnSequentializesThreadBody) {
  // The sequentialized semantics runs the spawned body to completion at
  // the spawn point, so its global effects are visible afterwards.
  Runner R = prepare(R"(
    int g = 0;
    mutex m;
    void worker(int n) {
      lock(m);
      g = g + n;
      unlock(m);
    }
    int main() {
      spawn worker(7);
      lock(m);
      int v = g;
      unlock(m);
      return v;
    }
  )");
  InterpResult Out = R.run();
  ASSERT_TRUE(Out.finished()) << Out.TrapReason;
  EXPECT_EQ(Out.ReturnValue, 7);
}

TEST(Interp, LockUnlockAreNoOpsOnState) {
  Runner R = prepare(R"(
    mutex m;
    int main() {
      int x = 3;
      lock(m);
      x = x * 2;
      unlock(m);
      return x;
    }
  )");
  InterpResult Out = R.run();
  ASSERT_TRUE(Out.finished()) << Out.TrapReason;
  EXPECT_EQ(Out.ReturnValue, 6);
}

} // namespace
