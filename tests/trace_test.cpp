//===- tests/trace_test.cpp - Trace-backed solver property tests ---------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Property tests over the solver observability layer (src/trace/): the
// event streams the instrumented solvers emit are checked against the
// paper's iteration discipline rather than against hand-picked values:
//
//  (a) Lemma 1 discipline: ⊟-updates in the narrowing regime never grow
//      the value, and an unknown that narrowed only grows again after an
//      intervening destabilization;
//  (b) localized SLR+ marks widening points only at unknowns whose
//      evaluation (or freshly updated value) is live at the mark, marks
//      each unknown at most once, and never marks in non-localized mode;
//  (c) every Destabilize event is justified — by a previously recorded
//      dynamic dependency (local solvers), the static influence relation
//      (dense solvers), a side-effect contribution, or self-rescheduling.
//
// Plus the exporter contracts: serialize/parse is a bijection, the
// aggregation is stable under the round trip, and the Chrome trace JSON
// of a real WCET benchmark run validates.
//
//===----------------------------------------------------------------------===//

#include "analysis/interproc.h"
#include "lang/parser.h"
#include "lattice/combine.h"
#include "solvers/rr.h"
#include "solvers/slr.h"
#include "solvers/slr_plus.h"
#include "solvers/srr.h"
#include "solvers/sw.h"
#include "solvers/wl.h"
#include "trace/chrome_export.h"
#include "trace/metrics.h"
#include "trace/recorder.h"
#include "trace/serialize.h"
#include "workloads/bounds_suite.h"
#include "workloads/eq_generators.h"
#include "workloads/wcet_suite.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <utility>
#include <vector>

using namespace warrow;

namespace {

// --- Stream well-formedness ------------------------------------------------

/// Every Update's regime classification must be consistent with its
/// growth flags: △ results stay below the old value, ▽ results grow, and
/// incomparable movement is only ever tagged Join.
void checkUpdateClassification(const std::vector<TraceEvent> &Events) {
  for (const TraceEvent &E : Events) {
    if (E.Kind != TraceEventKind::Update)
      continue;
    switch (E.UKind) {
    case UpdateKind::Narrow:
      EXPECT_TRUE(E.Shrank) << "narrowing grew the value at seq " << E.Seq;
      break;
    case UpdateKind::Widen:
      EXPECT_TRUE(E.Grew) << "widening shrank the value at seq " << E.Seq;
      break;
    case UpdateKind::Join:
      EXPECT_FALSE(E.Grew)
          << "growing update misclassified as join at seq " << E.Seq;
      break;
    case UpdateKind::None:
      ADD_FAILURE() << "update without a regime at seq " << E.Seq;
      break;
    }
  }
}

/// Single-threaded streams must nest RhsEvalBegin/End like parentheses
/// (local solvers recurse into sub-evaluations; dense solvers nest
/// trivially).
void checkEvalNesting(const std::vector<TraceEvent> &Events) {
  std::vector<uint64_t> Stack;
  for (const TraceEvent &E : Events) {
    if (E.Kind == TraceEventKind::RhsEvalBegin) {
      Stack.push_back(E.Unknown);
    } else if (E.Kind == TraceEventKind::RhsEvalEnd) {
      ASSERT_FALSE(Stack.empty()) << "end without begin at seq " << E.Seq;
      EXPECT_EQ(Stack.back(), E.Unknown)
          << "mismatched eval nesting at seq " << E.Seq;
      Stack.pop_back();
    }
  }
  EXPECT_TRUE(Stack.empty()) << "unclosed evaluations at stream end";
}

// --- Property (a): Lemma 1 discipline --------------------------------------

/// Stream-level Lemma 1 discipline, on any system: △-regime updates
/// never strictly grow the value, and once an unknown narrowed, further
/// growth requires an intervening Destabilize of that unknown — a stable
/// unknown is never re-evaluated, let alone grown. (The destabilize leg
/// only applies to solvers that reschedule through destabilize events;
/// round-robin sweeps re-evaluate everything unconditionally.) The
/// aggregator's regime-switch counters must agree with a direct scan.
///
/// Deliberately NOT claimed: that on monotone systems each unknown runs
/// one widening phase followed by one narrowing phase. That is false
/// under ⊟ — an unknown whose rhs momentarily shrinks (its deps still
/// ascending) takes a △-step and is later pushed back up. Lemma 1
/// speaks about the *final* state (every ⊟-solution is a post
/// solution), which cross_check_test pins via verifyPostSolution; the
/// stream-level residue of the lemma is exactly the discipline above.
void checkLemmaOneDiscipline(const std::vector<TraceEvent> &Events) {
  checkUpdateClassification(Events);
  const bool HasDestab =
      std::any_of(Events.begin(), Events.end(), [](const TraceEvent &E) {
        return E.Kind == TraceEventKind::Destabilize;
      });
  std::map<uint64_t, bool> Narrowed;
  std::map<uint64_t, uint64_t> LastNarrowSeq, LastDestabSeq;
  std::map<uint64_t, UpdateKind> LastRegime;
  std::map<uint64_t, std::pair<uint64_t, uint64_t>> Switches; // (w→n, n→w)
  for (const TraceEvent &E : Events) {
    if (E.Kind == TraceEventKind::Destabilize) {
      LastDestabSeq[E.Unknown] = E.Seq;
      continue;
    }
    if (E.Kind != TraceEventKind::Update)
      continue;
    bool &N = Narrowed[E.Unknown];
    if (N && E.Grew && !E.Shrank && HasDestab) {
      EXPECT_GT(LastDestabSeq[E.Unknown], LastNarrowSeq[E.Unknown])
          << "unknown " << E.Unknown << " grew at seq " << E.Seq
          << " without being destabilized since its last narrow";
    }
    if (E.UKind == UpdateKind::Narrow) {
      N = true;
      LastNarrowSeq[E.Unknown] = E.Seq;
    }
    auto [It, Fresh] = LastRegime.emplace(E.Unknown, E.UKind);
    if (!Fresh) {
      if (It->second == UpdateKind::Widen && E.UKind == UpdateKind::Narrow)
        ++Switches[E.Unknown].first;
      else if (It->second == UpdateKind::Narrow &&
               E.UKind == UpdateKind::Widen)
        ++Switches[E.Unknown].second;
      It->second = E.UKind;
    }
  }
  TraceMetrics Metrics = aggregateTrace(Events);
  for (const auto &[X, M] : Metrics.PerUnknown) {
    EXPECT_EQ(M.WidenToNarrow, Switches[X].first)
        << "aggregator miscounts widen→narrow switches at unknown " << X;
    EXPECT_EQ(M.NarrowToWiden, Switches[X].second)
        << "aggregator miscounts narrow→widen switches at unknown " << X;
  }
}

template <typename SolveFn>
std::vector<TraceEvent> recordRun(SolveFn &&Solve) {
  BufferedTraceRecorder Recorder(/*CaptureTimestamps=*/false);
  SolverOptions Options;
  Options.Trace = &Recorder;
  Solve(Options);
  return Recorder.events();
}

class TraceSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TraceSeeds, LemmaOneDisciplineOnMonotoneSystems) {
  // The structured solvers terminate with ⊟ on monotone systems (plain
  // worklist iteration need not — Example 2), but even here per-unknown
  // regimes interleave: narrowing at one unknown can momentarily shrink
  // a neighbour's rhs before the ascent resumes. The stream-level
  // discipline is what must hold.
  DenseSystem<Interval> S = randomMonotoneSystem(24, 3, 120, GetParam());
  for (int Which = 0; Which < 2; ++Which) {
    std::vector<TraceEvent> Events = recordRun([&](const SolverOptions &O) {
      if (Which == 0)
        ASSERT_TRUE(solveSRR(S, WarrowCombine{}, O).Stats.Converged);
      else
        ASSERT_TRUE(solveSW(S, WarrowCombine{}, O).Stats.Converged);
    });
    ASSERT_FALSE(Events.empty());
    checkEvalNesting(Events);
    checkLemmaOneDiscipline(Events);
  }
}

TEST(TraceTest, LemmaOneDisciplineOnStructuredSystems) {
  // Chains and rings iterate in dependency order: here the widen-then-
  // narrow phasing IS clean per unknown — no unknown ever switches back
  // from narrowing to widening. Pinned as a regression guard for the
  // structured evaluation order.
  for (const DenseSystem<Interval> &S :
       {chainSystem(64, 40), ringSystem(48, 32)}) {
    std::vector<TraceEvent> Events = recordRun([&](const SolverOptions &O) {
      ASSERT_TRUE(solveSW(S, WarrowCombine{}, O).Stats.Converged);
    });
    checkLemmaOneDiscipline(Events);
    TraceMetrics Metrics = aggregateTrace(Events);
    for (const auto &[X, M] : Metrics.PerUnknown)
      EXPECT_EQ(M.NarrowToWiden, 0u)
          << "unknown " << X << " re-widened on a structured system";
  }
}

/// Runs one traced interprocedural analysis of a WCET benchmark.
std::vector<TraceEvent> recordWcetRun(const WcetBenchmark &B,
                                      bool Localized = false,
                                      bool Timestamps = false) {
  DiagnosticEngine Diags;
  auto P = parseProgram(B.Source, Diags);
  EXPECT_TRUE(P) << B.Name << ":\n" << Diags.str();
  if (!P)
    return {};
  ProgramCfg Cfgs = buildProgramCfg(*P);
  BufferedTraceRecorder Recorder(Timestamps);
  AnalysisOptions Options;
  Options.LocalizedWidening = Localized;
  Options.Solver.Trace = &Recorder;
  InterprocAnalysis Analysis(*P, Cfgs, Options);
  AnalysisResult Result = Analysis.run(SolverChoice::Warrow);
  EXPECT_TRUE(Result.Stats.Converged) << B.Name;
  return Recorder.events();
}

TEST(TraceTest, LemmaOneDisciplineOnWcetSuite) {
  // The interprocedural system is side-effecting, hence effectively
  // non-monotonic: re-widening after narrowing is permitted, but only
  // for unknowns destabilized in between, and △ never grows a value.
  for (const WcetBenchmark &B : wcetSuite()) {
    std::vector<TraceEvent> Events = recordWcetRun(B);
    ASSERT_FALSE(Events.empty()) << B.Name;
    checkEvalNesting(Events);
    checkLemmaOneDiscipline(Events);
  }
}

TEST(TraceTest, LemmaOneDisciplineOnZonesRuns) {
  // The Lemma 1 discipline is domain-agnostic: a ⊟-run over the zones
  // backend must obey exactly the same regime rules as intervals — DBM
  // narrowing never grows a value, and re-widening is justified only by
  // interleaved destabilization. Runs the bounds suite, whose programs
  // exercise the relational transfer and the global-retraction shapes.
  for (const BoundsBenchmark &B : boundsSuite()) {
    DiagnosticEngine Diags;
    auto P = parseProgram(B.Source, Diags);
    ASSERT_TRUE(P) << B.Name << ":\n" << Diags.str();
    ProgramCfg Cfgs = buildProgramCfg(*P);
    BufferedTraceRecorder Recorder(/*CaptureTimestamps=*/false);
    AnalysisOptions Options;
    Options.Domain = AnalysisDomain::Zones;
    Options.Solver.Trace = &Recorder;
    InterprocAnalysis Analysis(*P, Cfgs, Options);
    AnalysisResult Result = Analysis.run(SolverChoice::Warrow);
    ASSERT_TRUE(Result.Stats.Converged) << B.Name;
    std::vector<TraceEvent> Events = Recorder.events();
    ASSERT_FALSE(Events.empty()) << B.Name;
    checkUpdateClassification(Events);
    checkEvalNesting(Events);
    checkLemmaOneDiscipline(Events);
  }
}

// --- Property (b): widening-point marks ------------------------------------

using SideSys = SideEffectingSystem<int, Interval>;

/// A small cyclic side-effecting system: a ring of N unknowns (each reads
/// its predecessor, capped), where unknown 0 additionally contributes its
/// value to a sink unknown N.
SideSys cyclicSideSystem(unsigned N, int64_t Bound) {
  return SideSys([N, Bound](int X) -> SideSys::Rhs {
    if (X >= static_cast<int>(N))
      return [](const SideSys::Get &, const SideSys::Side &) {
        return Interval::bot();
      };
    return [X, N, Bound](const SideSys::Get &Get, const SideSys::Side &Side) {
      int Prev = X == 0 ? static_cast<int>(N) - 1 : X - 1;
      Interval Acc = Get(Prev)
                         .add(Interval::constant(1))
                         .meet(Interval::make(0, Bound));
      if (X == 0) {
        Acc = Acc.join(Interval::constant(0));
        Side(static_cast<int>(N), Acc);
      }
      return Acc;
    };
  });
}

/// Checks the mark discipline: at every WideningPointMark(Y), Y's
/// evaluation is either in progress (Begin without matching End — Y sits
/// on the call stack, closing a dependency cycle) or Y's value was
/// updated after its last evaluation finished (the drain-loop case where
/// a nested evaluation re-reads the still-on-stack Y). Each unknown is
/// marked at most once.
void checkWideningPointMarks(const std::vector<TraceEvent> &Events) {
  std::map<uint64_t, int> OpenEvals;
  std::map<uint64_t, uint64_t> LastEndSeq, LastUpdateSeq;
  std::set<uint64_t> Marked;
  for (const TraceEvent &E : Events) {
    switch (E.Kind) {
    case TraceEventKind::RhsEvalBegin:
      ++OpenEvals[E.Unknown];
      break;
    case TraceEventKind::RhsEvalEnd:
      --OpenEvals[E.Unknown];
      LastEndSeq[E.Unknown] = E.Seq;
      break;
    case TraceEventKind::Update:
      LastUpdateSeq[E.Unknown] = E.Seq;
      break;
    case TraceEventKind::WideningPointMark: {
      EXPECT_TRUE(Marked.insert(E.Unknown).second)
          << "unknown " << E.Unknown << " marked twice at seq " << E.Seq;
      bool EvalOpen = OpenEvals[E.Unknown] > 0;
      bool UpdatedSinceEnd =
          LastUpdateSeq.count(E.Unknown) &&
          LastUpdateSeq[E.Unknown] > LastEndSeq[E.Unknown];
      EXPECT_TRUE(EvalOpen || UpdatedSinceEnd)
          << "unknown " << E.Unknown << " marked at seq " << E.Seq
          << " while neither under evaluation nor freshly updated";
      break;
    }
    default:
      break;
    }
  }
}

TEST(TraceTest, LocalizedSlrPlusMarksWideningPointsOnCycles) {
  SideSys S = cyclicSideSystem(6, 40);
  BufferedTraceRecorder Recorder(/*CaptureTimestamps=*/false);
  SolverOptions Options;
  Options.Trace = &Recorder;
  SlrPlusSolver<int, Interval, WarrowCombine> Solver(
      S, WarrowCombine{}, Options, /*LocalizedCombine=*/true);
  PartialSolution<int, Interval> R = Solver.solveFor(0);
  ASSERT_TRUE(R.Stats.Converged);
  std::vector<TraceEvent> Events = Recorder.events();
  TraceMetrics Metrics = aggregateTrace(Events);
  // The ring is one dependency cycle: at least one mark must fire, and
  // the mark events must agree with the solver's own account.
  EXPECT_GE(Metrics.WideningPoints, 1u);
  EXPECT_EQ(Metrics.WideningPoints, Solver.wideningPoints().size());
  checkWideningPointMarks(Events);
}

TEST(TraceTest, NonLocalizedSlrPlusNeverMarks) {
  SideSys S = cyclicSideSystem(6, 40);
  std::vector<TraceEvent> Events = recordRun([&](const SolverOptions &O) {
    ASSERT_TRUE(solveSLRPlus(S, 0, WarrowCombine{}, O).Stats.Converged);
  });
  for (const TraceEvent &E : Events)
    EXPECT_NE(E.Kind, TraceEventKind::WideningPointMark)
        << "mark emitted outside localized mode at seq " << E.Seq;
}

TEST(TraceTest, WideningPointMarksOnWcetSuite) {
  for (const WcetBenchmark &B : wcetSuite()) {
    std::vector<TraceEvent> Events = recordWcetRun(B, /*Localized=*/true);
    ASSERT_FALSE(Events.empty()) << B.Name;
    checkWideningPointMarks(Events);
  }
}

// --- Property (c): destabilization is justified ----------------------------

/// Local-solver streams: a Destabilize(Y, cause X) must be explainable
/// from the stream itself — Y == X (self-rescheduling), Y read X earlier
/// (a DependencyRecord with reader Y), or X contributed to Y by side
/// effect (a SideContribution onto Y from X, emitted with the
/// destabilization).
void checkDestabilizeJustifiedDynamic(const std::vector<TraceEvent> &Events) {
  std::set<std::pair<uint64_t, uint64_t>> Reads;    // (reader, read)
  std::set<std::pair<uint64_t, uint64_t>> Contribs; // (target, from)
  for (const TraceEvent &E : Events) {
    switch (E.Kind) {
    case TraceEventKind::DependencyRecord:
      Reads.insert({E.Unknown, E.Aux});
      break;
    case TraceEventKind::SideContribution:
      Contribs.insert({E.Unknown, E.Aux});
      break;
    case TraceEventKind::Destabilize:
      EXPECT_TRUE(E.Unknown == E.Aux || Reads.count({E.Unknown, E.Aux}) ||
                  Contribs.count({E.Unknown, E.Aux}))
          << "destabilize of " << E.Unknown << " by " << E.Aux
          << " at seq " << E.Seq << " has no recorded justification";
      break;
    default:
      break;
    }
  }
}

/// Dense-solver streams destabilize along the static influence relation.
void checkDestabilizeJustifiedStatic(const std::vector<TraceEvent> &Events,
                                     const DenseSystem<Interval> &S) {
  for (const TraceEvent &E : Events) {
    if (E.Kind != TraceEventKind::Destabilize || E.Unknown == E.Aux)
      continue;
    const std::vector<Var> &Infl = S.influenced(static_cast<Var>(E.Aux));
    EXPECT_TRUE(std::find(Infl.begin(), Infl.end(),
                          static_cast<Var>(E.Unknown)) != Infl.end())
        << "destabilize of " << E.Unknown << " by " << E.Aux
        << " outside the influence relation, seq " << E.Seq;
  }
}

using IntSys = LocalSystem<int, Interval>;

IntSys localView(const DenseSystem<Interval> &Dense) {
  return IntSys([&Dense](int X) -> IntSys::Rhs {
    return [&Dense, X](const IntSys::Get &Get) {
      return Dense.eval(static_cast<Var>(X),
                        [&Get](Var Y) { return Get(static_cast<int>(Y)); });
    };
  });
}

TEST_P(TraceSeeds, DestabilizationIsJustified) {
  DenseSystem<Interval> S = randomMonotoneSystem(20, 3, 80, GetParam());
  for (int Which = 0; Which < 2; ++Which) {
    std::vector<TraceEvent> Events = recordRun([&](const SolverOptions &O) {
      if (Which == 0)
        ASSERT_TRUE(solveSW(S, WarrowCombine{}, O).Stats.Converged);
      else
        ASSERT_TRUE(solveW(S, WarrowCombine{}, O).Stats.Converged);
    });
    checkDestabilizeJustifiedStatic(Events, S);
  }

  IntSys Local = localView(S);
  std::vector<TraceEvent> SlrEvents = recordRun([&](const SolverOptions &O) {
    ASSERT_TRUE(solveSLR(Local, 0, WarrowCombine{}, O).Stats.Converged);
  });
  checkDestabilizeJustifiedDynamic(SlrEvents);
}

TEST(TraceTest, DestabilizationJustifiedOnWcetSuite) {
  for (const WcetBenchmark &B : wcetSuite()) {
    std::vector<TraceEvent> Events = recordWcetRun(B);
    checkDestabilizeJustifiedDynamic(Events);
  }
}

// --- Serialization, aggregation, and the Chrome exporter -------------------

TEST(TraceTest, SerializationRoundTripsRealStream) {
  DenseSystem<Interval> S = randomMonotoneSystem(16, 3, 60, 42);
  std::vector<TraceEvent> Events = recordRun([&](const SolverOptions &O) {
    ASSERT_TRUE(solveSW(S, WarrowCombine{}, O).Stats.Converged);
  });
  ASSERT_FALSE(Events.empty());
  std::string Text = serializeEvents(Events);
  std::optional<std::vector<TraceEvent>> Parsed = parseEvents(Text);
  ASSERT_TRUE(Parsed.has_value());
  EXPECT_EQ(*Parsed, Events);
  // Aggregation is a pure function of the stream: identical before and
  // after the round trip.
  EXPECT_EQ(aggregateTrace(*Parsed), aggregateTrace(Events));
}

TEST(TraceTest, ParseRejectsMalformedStreams) {
  EXPECT_FALSE(parseEvents("not an event\n").has_value());
  EXPECT_FALSE(parseEvents("0 0 0 bogus - 1 0 000\n").has_value());
  EXPECT_TRUE(parseEvents("").has_value()); // Empty stream is valid.
}

TEST(TraceTest, ChromeTraceOfWcetBenchmarkValidates) {
  const WcetBenchmark *B = !wcetSuite().empty() ? &wcetSuite().front()
                                                : nullptr;
  ASSERT_NE(B, nullptr);
  std::vector<TraceEvent> Events =
      recordWcetRun(*B, /*Localized=*/false, /*Timestamps=*/true);
  ASSERT_FALSE(Events.empty());
  std::string Json = chromeTraceJson(Events, [](uint64_t Id) {
    return "unknown#" + std::to_string(Id);
  });
  EXPECT_TRUE(validateJsonSyntax(Json)) << "exporter emitted invalid JSON";
  // The aggregator consumes the same stream the exporter renders, and
  // the serialized form round-trips back to it: one pipeline, one truth.
  std::optional<std::vector<TraceEvent>> Parsed =
      parseEvents(serializeEvents(Events));
  ASSERT_TRUE(Parsed.has_value());
  TraceMetrics Metrics = aggregateTrace(*Parsed);
  EXPECT_EQ(Metrics, aggregateTrace(Events));
  EXPECT_EQ(Metrics.TotalEvents, Events.size());
  EXPECT_GT(Metrics.TotalEvals, 0u);
  EXPECT_GT(Metrics.TotalUpdates, 0u);
  // Names flow through the exporter output.
  EXPECT_NE(Json.find("unknown#0"), std::string::npos);
}

TEST(TraceTest, ConvergenceReportAndHottestUnknowns) {
  DenseSystem<Interval> S = ringSystem(12, 30);
  std::vector<TraceEvent> Events = recordRun([&](const SolverOptions &O) {
    ASSERT_TRUE(solveSW(S, WarrowCombine{}, O).Stats.Converged);
  });
  TraceMetrics Metrics = aggregateTrace(Events);
  std::vector<std::pair<uint64_t, UnknownMetrics>> Hot =
      hottestUnknowns(Metrics, 5);
  ASSERT_LE(Hot.size(), 5u);
  for (size_t I = 1; I < Hot.size(); ++I)
    EXPECT_GE(Hot[I - 1].second.Evals, Hot[I].second.Evals);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceSeeds,
                         ::testing::Values(1ull, 2ull, 3ull, 5ull, 8ull,
                                           13ull, 21ull, 34ull));

} // namespace
