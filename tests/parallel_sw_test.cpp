//===- tests/parallel_sw_test.cpp - Parallel SW == sequential SW ---------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The SCC-parallel structured worklist solver must produce bit-identical
// assignments to sequential SW for every thread count — that is the
// whole contract (see solvers/parallel_sw.h). Checked on the paper's
// examples, the structured generators, and 100+ fuzzed random monotone
// systems at 1, 2, 4 and 8 threads.
//
//===----------------------------------------------------------------------===//

#include "graph/order.h"
#include "lattice/combine.h"
#include "solvers/parallel_sw.h"
#include "solvers/sw.h"
#include "workloads/eq_generators.h"

#include <gtest/gtest.h>

using namespace warrow;

namespace {

const unsigned kThreadCounts[] = {1, 2, 4, 8};

template <typename D, typename C>
void expectMatchesSequential(const DenseSystem<D> &System, C Combine,
                             const char *What) {
  SolveResult<D> Seq = solveSW(System, Combine);
  ASSERT_TRUE(Seq.Stats.Converged) << What;
  for (unsigned Threads : kThreadCounts) {
    ParallelOptions POpts;
    POpts.Threads = Threads;
    SolveResult<D> Par = solveParallelSW(System, Combine, POpts);
    EXPECT_TRUE(Par.Stats.Converged) << What << " threads=" << Threads;
    ASSERT_EQ(Par.Sigma.size(), Seq.Sigma.size());
    for (Var X = 0; X < System.size(); ++X)
      EXPECT_EQ(Par.Sigma[X], Seq.Sigma[X])
          << What << " threads=" << Threads << " x" << X;
    // Total work is the same too: each component runs verbatim SW.
    EXPECT_EQ(Par.Stats.RhsEvals, Seq.Stats.RhsEvals)
        << What << " threads=" << Threads;
    EXPECT_EQ(Par.Stats.Updates, Seq.Stats.Updates)
        << What << " threads=" << Threads;
  }
}

TEST(ParallelSW, PaperExamples) {
  expectMatchesSequential(paperExampleOne(), WarrowCombine{}, "example1");
  expectMatchesSequential(paperExampleTwo(), WarrowCombine{}, "example2");
}

TEST(ParallelSW, StructuredSystems) {
  expectMatchesSequential(chainSystem(500, 100), WarrowCombine{}, "chain");
  expectMatchesSequential(ringSystem(300, 64), WarrowCombine{}, "ring");
  expectMatchesSequential(manyComponentSystem(32, 16, 256, 0, 5),
                          WarrowCombine{}, "independent comps");
  expectMatchesSequential(manyComponentSystem(32, 16, 256, 3, 6),
                          WarrowCombine{}, "linked comps");
}

TEST(ParallelSW, EmptyAndSingleton) {
  DenseSystem<Interval> Empty;
  SolveResult<Interval> R = solveParallelSW(Empty, WarrowCombine{});
  EXPECT_TRUE(R.Sigma.empty());
  EXPECT_TRUE(R.Stats.Converged);

  expectMatchesSequential(chainSystem(1, 10), WarrowCombine{}, "singleton");
}

TEST(ParallelSW, OtherCombineOperators) {
  DenseSystem<Interval> S = manyComponentSystem(16, 8, 64, 2, 11);
  expectMatchesSequential(S, JoinCombine{}, "join");
  expectMatchesSequential(S, WidenCombine{}, "widen");
}

// The headline fuzz check required by the issue: >= 100 seeded random
// systems, each compared at 1..8 threads. The sequential reference is SW
// under the canonical condensation-consistent order — for arbitrary
// variable numbering that is the order parallel SW provably reproduces
// (see solvers/parallel_sw.h); plain id-ordered SW may interleave
// components and settle elsewhere.
TEST(ParallelSW, FuzzedRandomSystemsMatchSequential) {
  for (uint64_t Seed = 0; Seed < 100; ++Seed) {
    unsigned Size = 20 + static_cast<unsigned>(Seed % 7) * 30;
    unsigned Degree = 2 + static_cast<unsigned>(Seed % 4);
    int64_t Bound = 16 + static_cast<int64_t>(Seed % 5) * 100;
    DenseSystem<Interval> S = randomMonotoneSystem(Size, Degree, Bound, Seed);
    std::vector<uint32_t> Rank =
        topologicalRank(condense(extractDependencyGraph(S)));
    SolveResult<Interval> Seq = solveOrderedSW(S, WarrowCombine{}, Rank);
    ASSERT_TRUE(Seq.Stats.Converged) << "seed " << Seed;
    for (unsigned Threads : kThreadCounts) {
      ParallelOptions POpts;
      POpts.Threads = Threads;
      SolveResult<Interval> Par = solveParallelSW(S, WarrowCombine{}, POpts);
      ASSERT_TRUE(Par.Stats.Converged)
          << "seed " << Seed << " threads " << Threads;
      ASSERT_EQ(Par.Stats.RhsEvals, Seq.Stats.RhsEvals)
          << "seed " << Seed << " threads " << Threads;
      for (Var X = 0; X < S.size(); ++X)
        ASSERT_EQ(Par.Sigma[X], Seq.Sigma[X])
            << "seed " << Seed << " threads " << Threads << " x" << X;
    }
  }
}

// Thread-count independence holds unconditionally — any two thread
// counts must agree bit-for-bit even where plain solveSW would not.
TEST(ParallelSW, ThreadCountNeverChangesTheAnswer) {
  for (uint64_t Seed = 100; Seed < 140; ++Seed) {
    DenseSystem<Interval> S = randomMonotoneSystem(120, 3, 512, Seed);
    ParallelOptions One;
    One.Threads = 1;
    SolveResult<Interval> Ref = solveParallelSW(S, WarrowCombine{}, One);
    ASSERT_TRUE(Ref.Stats.Converged) << "seed " << Seed;
    for (unsigned Threads : {2u, 4u, 8u}) {
      ParallelOptions POpts;
      POpts.Threads = Threads;
      SolveResult<Interval> Par = solveParallelSW(S, WarrowCombine{}, POpts);
      ASSERT_EQ(Par.Stats.RhsEvals, Ref.Stats.RhsEvals)
          << "seed " << Seed << " threads " << Threads;
      for (Var X = 0; X < S.size(); ++X)
        ASSERT_EQ(Par.Sigma[X], Ref.Sigma[X])
            << "seed " << Seed << " threads " << Threads << " x" << X;
    }
  }
}

// On systems whose variable ids already respect the condensation (the
// identity is itself condensation-consistent), plain solveSW coincides
// with the canonical ordered reference — two condensation-consistent
// orders solve each component from the same inputs in the same
// within-component order, so they agree bit-for-bit.
TEST(ParallelSW, OrderedSWEqualsPlainSWOnToposortedIds) {
  DenseSystem<Interval> S = manyComponentSystem(24, 12, 128, 2, 17);
  std::vector<uint32_t> Rank =
      topologicalRank(condense(extractDependencyGraph(S)));
  SolveResult<Interval> Plain = solveSW(S, WarrowCombine{});
  SolveResult<Interval> Ordered = solveOrderedSW(S, WarrowCombine{}, Rank);
  EXPECT_EQ(Plain.Stats.RhsEvals, Ordered.Stats.RhsEvals);
  for (Var X = 0; X < S.size(); ++X)
    EXPECT_EQ(Plain.Sigma[X], Ordered.Sigma[X]) << "x" << X;
}

// The eval budget must trip in parallel too and report non-convergence.
TEST(ParallelSW, RespectsEvalBudget) {
  DenseSystem<Interval> S = manyComponentSystem(8, 8, 1 << 20, 0, 3);
  SolverOptions Tight;
  Tight.MaxRhsEvals = 10;
  ParallelOptions POpts;
  POpts.Threads = 4;
  SolveResult<Interval> R = solveParallelSW(S, WidenCombine{}, POpts, Tight);
  EXPECT_FALSE(R.Stats.Converged);
}

} // namespace
