//===- tests/sema_test.cpp - Semantic checker tests ----------------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/parser.h"
#include "lang/sema.h"

#include <gtest/gtest.h>

using namespace warrow;

namespace {

bool accepts(std::string_view Source) {
  DiagnosticEngine Diags;
  return parseProgram(Source, Diags) != nullptr;
}

TEST(Sema, RequiresMain) {
  EXPECT_FALSE(accepts("int f() { return 0; }"));
  EXPECT_FALSE(accepts("int main(int x) { return x; }"));
  EXPECT_FALSE(accepts("void main() { }"));
  EXPECT_TRUE(accepts("int main() { return 0; }"));
}

TEST(Sema, DuplicateNames) {
  EXPECT_FALSE(accepts("int g = 0; int g = 1; int main() { return 0; }"));
  EXPECT_FALSE(
      accepts("int f() { return 0; } int f() { return 1; } "
              "int main() { return 0; }"));
  EXPECT_FALSE(accepts("int main() { int x = 0; int x = 1; return x; }"));
  EXPECT_FALSE(accepts(
      "int main() { if (1) { int x = 0; x = x; } else { int x = 1; x = x; } "
      "return 0; }"))
      << "sibling-scope duplicates are rejected (flat function scope)";
}

TEST(Sema, ShadowingRejected) {
  EXPECT_FALSE(accepts("int g = 0; int main() { int g = 1; return g; }"));
  EXPECT_FALSE(
      accepts("int g = 0; int f(int g) { return g; } "
              "int main() { int r = f(1); return r; }"));
}

TEST(Sema, UndeclaredVariables) {
  EXPECT_FALSE(accepts("int main() { return x; }"));
  EXPECT_FALSE(accepts("int main() { y = 3; return 0; }"));
  EXPECT_TRUE(accepts("int g = 1; int main() { return g; }"));
}

TEST(Sema, ArrayVsScalarUsage) {
  EXPECT_FALSE(accepts("int main() { int a[3]; return a; }"));
  EXPECT_FALSE(accepts("int main() { int x = 0; return x[0]; }"));
  EXPECT_FALSE(accepts("int main() { int x = 0; x[1] = 2; return 0; }"));
  EXPECT_TRUE(accepts("int main() { int a[3]; a[0] = 1; return a[0]; }"));
  EXPECT_FALSE(accepts("int main() { int a[0]; return 0; }"))
      << "non-positive array sizes rejected";
}

TEST(Sema, CallRules) {
  EXPECT_FALSE(accepts("int main() { int r = nosuch(1); return r; }"));
  EXPECT_FALSE(accepts(
      "int f(int x) { return x; } int main() { int r = f(); return r; }"));
  EXPECT_FALSE(accepts(
      "int f(int x) { return x; } int main() { int r = f(1, 2); return r; }"));
  // Nested calls are rejected (analysis-friendly call form).
  EXPECT_FALSE(accepts(
      "int f(int x) { return x; } int main() { int r = f(1) + 1; return r; }"));
  EXPECT_FALSE(accepts(
      "int f(int x) { return x; } int main() { int r = f(f(1)); return r; }"));
  // Root-position calls are fine.
  EXPECT_TRUE(accepts(
      "int f(int x) { return x; } int main() { int r = f(1); return r; }"));
  EXPECT_TRUE(accepts(
      "int f(int x) { return x; } int main() { f(1); return 0; }"));
}

TEST(Sema, VoidFunctionRules) {
  EXPECT_FALSE(accepts("int g = 0; void f() { return 1; } "
                       "int main() { f(); return g; }"));
  EXPECT_FALSE(accepts("int g = 0; void f() { g = 1; } "
                       "int main() { int r = f(); return r; }"));
  EXPECT_TRUE(accepts("int g = 0; void f() { g = 1; return; } "
                      "int main() { f(); return g; }"));
}

TEST(Sema, UnknownBuiltin) {
  EXPECT_TRUE(accepts("int main() { int x = unknown(); return x; }"));
  EXPECT_FALSE(accepts("int main() { int x = unknown(3); return x; }"));
}

TEST(Sema, BreakContinueOutsideLoop) {
  EXPECT_FALSE(accepts("int main() { break; return 0; }"));
  EXPECT_FALSE(accepts("int main() { continue; return 0; }"));
  EXPECT_TRUE(accepts(
      "int main() { while (1) { break; } return 0; }"));
}

TEST(Sema, CollectFunctionVars) {
  DiagnosticEngine Diags;
  auto P = parseProgram(R"(
    int f(int p, int q) {
      int a = 0;
      int buf[7];
      while (p < q) {
        int inner = p;
        p = p + inner;
      }
      return a;
    }
    int main() { int r = f(1, 2); return r; }
  )",
                        Diags);
  ASSERT_TRUE(P != nullptr) << Diags.str();
  FuncVars Vars = collectFunctionVars(*P->Functions[0]);
  EXPECT_EQ(Vars.Scalars.size(), 4u) << "p, q, a, inner";
  EXPECT_EQ(Vars.Arrays.size(), 1u);
  EXPECT_EQ(Vars.Arrays.begin()->second, 7);
}

std::string errorsFor(std::string_view Source) {
  DiagnosticEngine Diags;
  parseProgram(Source, Diags);
  return Diags.str();
}

TEST(Sema, ConcurrencyWellFormed) {
  EXPECT_TRUE(accepts(R"(
    int g = 0;
    mutex m;
    void worker(int n) { lock(m); g = g + n; unlock(m); }
    int main() { spawn worker(3); lock(m); int v = g; unlock(m); return v; }
  )"));
}

TEST(Sema, SpawnErrors) {
  EXPECT_NE(errorsFor("int main() { spawn nope(); return 0; }")
                .find("spawn of undefined function 'nope'"),
            std::string::npos);
  EXPECT_NE(errorsFor("void w(int a) { a = a; } "
                      "int main() { spawn w(); return 0; }")
                .find("wrong number of arguments to spawned 'w'"),
            std::string::npos);
  EXPECT_FALSE(accepts("int main() { spawn unknown(); return 0; }"))
      << "the input builtin is not spawnable";
}

TEST(Sema, LockUnlockErrors) {
  EXPECT_NE(errorsFor("int main() { lock(m); return 0; }")
                .find("lock of undeclared mutex 'm'"),
            std::string::npos);
  EXPECT_NE(errorsFor("int main() { unlock(q); return 0; }")
                .find("unlock of undeclared mutex 'q'"),
            std::string::npos);
  EXPECT_NE(
      errorsFor("mutex m; int main() { unlock(m); return 0; }")
          .find("unlock of mutex 'm' that is never locked in this function"),
      std::string::npos);
  EXPECT_TRUE(accepts("mutex m; int main() { lock(m); if (1) { unlock(m); } "
                      "return 0; }"))
      << "unlock checks are per function, not path-sensitive";
}

TEST(Sema, MutexNamespace) {
  EXPECT_FALSE(accepts("mutex m; mutex m; int main() { return 0; }"))
      << "duplicate mutex declaration";
  EXPECT_FALSE(accepts("mutex m; int main() { return m; }"))
      << "a mutex is not a value";
  EXPECT_FALSE(accepts("mutex m; int main() { m = 3; return 0; }"))
      << "a mutex is not assignable";
}

} // namespace
