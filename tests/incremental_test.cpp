//===- tests/incremental_test.cpp - Incremental re-solving ----------------====//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The incremental tentpole contract (DESIGN §6i): after any program edit,
// resuming from a snapshot must (a) pass the independent verifier on the
// edited program and (b) compute the same canonical assignment as a cold
// solve of the edited program — fuzzed over generated edit sequences, in
// the interval and zones domains, sequential and parallel, chained across
// multiple edits (each warm solve's capture feeds the next resume).
//
//===----------------------------------------------------------------------===//

#include "analysis/snapshot.h"
#include "lang/parser.h"
#include "workloads/edit_generator.h"
#include "workloads/spec_generator.h"

#include <gtest/gtest.h>

using namespace warrow;

namespace {

struct Version {
  std::unique_ptr<Program> P;
  ProgramCfg Cfgs;
};

Version parseVersion(const std::string &Source) {
  Version V;
  DiagnosticEngine Diags;
  V.P = parseProgram(Source, Diags);
  EXPECT_TRUE(V.P != nullptr) << Diags.str() << "\n" << Source;
  if (V.P)
    V.Cfgs = buildProgramCfg(*V.P);
  return V;
}

/// Cold-solves \p V and returns (result, capture) for σ comparison.
struct ColdRun {
  AnalysisResult Result;
  AnalysisSnapshot Snap;
};

ColdRun coldSolve(const Version &V, SolverChoice Choice,
                  const AnalysisOptions &Options) {
  ColdRun Out;
  InterprocAnalysis A(*V.P, V.Cfgs, Options);
  Out.Result = A.run(Choice, &Out.Snap);
  EXPECT_TRUE(Out.Result.Stats.Converged);
  VerifyResult Verify = A.verifySolution(Out.Result);
  EXPECT_TRUE(Verify.Ok) << Verify.str();
  return Out;
}

/// Warm-solves \p V from \p Snap (whose ids refer to \p OldP), checks the
/// verifier and σ-equality against a cold solve of \p V, and returns the
/// new capture for chaining.
AnalysisSnapshot warmMatchesCold(const Version &V, const Program &OldP,
                                 const AnalysisSnapshot &Snap,
                                 SolverChoice Choice,
                                 const AnalysisOptions &Options,
                                 IncrementalStats *IncOut = nullptr) {
  AnalysisSnapshot WarmCap;
  IncrementalStats Inc;
  InterprocAnalysis Warm(*V.P, V.Cfgs, Options);
  AnalysisResult WarmResult = Warm.runIncremental(Choice, Snap, OldP, &WarmCap, &Inc);
  EXPECT_TRUE(WarmResult.Stats.Converged);
  VerifyResult Verify = Warm.verifySolution(WarmResult);
  EXPECT_TRUE(Verify.Ok) << Verify.str();

  ColdRun Cold = coldSolve(V, Choice, Options);
  EXPECT_EQ(canonicalSigma(WarmResult.Solution, *V.P, WarmCap.Contexts),
            canonicalSigma(Cold.Result.Solution, *V.P, Cold.Snap.Contexts))
      << "warm σ diverged from cold σ";
  if (IncOut)
    *IncOut = Inc;
  return WarmCap;
}

SpecProfile smallSpec(int EditFunction, int64_t EditDelta) {
  SpecProfile P;
  P.Name = "inc-test";
  P.NumFunctions = 24;
  P.LoopsPerFunction = 2;
  P.CallsPerFunction = 2;
  P.NumGlobals = 4;
  P.ContextVariants = 2;
  P.MaxCallDepth = 4;
  P.Seed = 99;
  P.EditFunction = EditFunction;
  P.EditDelta = EditDelta;
  return P;
}

TEST(Incremental, SpecEditWarmMatchesColdInterval) {
  Version Base = parseVersion(generateSpecProgram(smallSpec(-1, 0)));
  Version Edited = parseVersion(generateSpecProgram(smallSpec(10, 5)));
  ASSERT_TRUE(Base.P && Edited.P);

  AnalysisOptions Options;
  ColdRun BaseCold = coldSolve(Base, SolverChoice::Warrow, Options);

  IncrementalStats Inc;
  warmMatchesCold(Edited, *Base.P, BaseCold.Snap, SolverChoice::Warrow,
                  Options, &Inc);
  EXPECT_FALSE(Inc.ColdFallback);
  EXPECT_GT(Inc.DroppedUnknowns, 0u) << "the edited function's unknowns";
  EXPECT_LT(Inc.DroppedUnknowns + Inc.RestartedUnknowns, Inc.SnapshotUnknowns)
      << "a single-function edit must not restart the whole program";
}

TEST(Incremental, SpecEditWarmIsCheaperThanCold) {
  Version Base = parseVersion(generateSpecProgram(smallSpec(-1, 0)));
  Version Edited = parseVersion(generateSpecProgram(smallSpec(10, 5)));
  ASSERT_TRUE(Base.P && Edited.P);

  AnalysisOptions Options;
  ColdRun BaseCold = coldSolve(Base, SolverChoice::Warrow, Options);
  ColdRun EditedCold = coldSolve(Edited, SolverChoice::Warrow, Options);

  AnalysisSnapshot WarmCap;
  IncrementalStats Inc;
  InterprocAnalysis Warm(*Edited.P, Edited.Cfgs, Options);
  AnalysisResult WarmResult =
      Warm.runIncremental(SolverChoice::Warrow, BaseCold.Snap, *Base.P,
                          &WarmCap, &Inc);
  ASSERT_TRUE(WarmResult.Stats.Converged);
  EXPECT_FALSE(Inc.ColdFallback);
  EXPECT_LT(WarmResult.Stats.RhsEvals, EditedCold.Result.Stats.RhsEvals)
      << "resuming must beat cold-solving on rhs evaluations";
}

TEST(Incremental, SpecEditWarmMatchesColdZones) {
  SpecProfile Prof = smallSpec(-1, 0);
  Prof.NumFunctions = 12; // Zones transfer is costlier; keep it snappy.
  Version Base = parseVersion(generateSpecProgram(Prof));
  Prof.EditFunction = 5;
  Prof.EditDelta = 3;
  Version Edited = parseVersion(generateSpecProgram(Prof));
  ASSERT_TRUE(Base.P && Edited.P);

  AnalysisOptions Options;
  Options.Domain = AnalysisDomain::Zones;
  ColdRun BaseCold = coldSolve(Base, SolverChoice::Warrow, Options);
  IncrementalStats Inc;
  warmMatchesCold(Edited, *Base.P, BaseCold.Snap, SolverChoice::Warrow,
                  Options, &Inc);
  EXPECT_FALSE(Inc.ColdFallback);
}

TEST(Incremental, SpecEditWarmMatchesColdParallel) {
  Version Base = parseVersion(generateSpecProgram(smallSpec(-1, 0)));
  Version Edited = parseVersion(generateSpecProgram(smallSpec(7, -4)));
  ASSERT_TRUE(Base.P && Edited.P);

  AnalysisOptions Options;
  Options.Solver.Threads = 4;
  ColdRun BaseCold = coldSolve(Base, SolverChoice::ParallelWarrow, Options);
  IncrementalStats Inc;
  warmMatchesCold(Edited, *Base.P, BaseCold.Snap, SolverChoice::ParallelWarrow,
                  Options, &Inc);
  EXPECT_FALSE(Inc.ColdFallback);
}

TEST(Incremental, SpecEditWarmMatchesColdContextSensitive) {
  Version Base = parseVersion(generateSpecProgram(smallSpec(-1, 0)));
  Version Edited = parseVersion(generateSpecProgram(smallSpec(10, 5)));
  ASSERT_TRUE(Base.P && Edited.P);

  AnalysisOptions Options;
  Options.ContextSensitive = true;
  ColdRun BaseCold = coldSolve(Base, SolverChoice::Warrow, Options);
  IncrementalStats Inc;
  warmMatchesCold(Edited, *Base.P, BaseCold.Snap, SolverChoice::Warrow,
                  Options, &Inc);
  EXPECT_FALSE(Inc.ColdFallback);
}

/// Fuzzed edit chains: cold-solve the base once, then resume across every
/// scripted edit, re-capturing after each warm solve. σ must match a cold
/// solve at every version.
class IncrementalFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IncrementalFuzz, EditChainWarmMatchesColdInterval) {
  EditProgramSpec Spec;
  Spec.Seed = GetParam();
  Spec.NumFunctions = 6;
  Spec.NumGlobals = 3;
  Spec.MaxCallDepth = 3;

  EditProgramState State = initialEditState(Spec);
  // Versions own their programs: each snapshot's ids refer to the version
  // it was captured against, which must outlive the next resume.
  std::vector<Version> Versions;
  Versions.push_back(parseVersion(renderEditProgram(Spec, State)));
  ASSERT_TRUE(Versions.back().P != nullptr);

  AnalysisOptions Options;
  ColdRun Cold = coldSolve(Versions.back(), SolverChoice::Warrow, Options);
  AnalysisSnapshot Snap = std::move(Cold.Snap);

  for (const EditStep &Step : generateEditScript(Spec, 4)) {
    applyEdit(Spec, State, Step);
    Versions.push_back(parseVersion(renderEditProgram(Spec, State)));
    ASSERT_TRUE(Versions.back().P != nullptr);
    const Version &Prev = Versions[Versions.size() - 2];
    IncrementalStats Inc;
    Snap = warmMatchesCold(Versions.back(), *Prev.P, Snap,
                           SolverChoice::Warrow, Options, &Inc);
    EXPECT_FALSE(Inc.ColdFallback);
  }
}

TEST_P(IncrementalFuzz, EditChainWarmMatchesColdZones) {
  EditProgramSpec Spec;
  Spec.Seed = GetParam() ^ 0xd0b5;
  Spec.NumFunctions = 5;
  Spec.NumGlobals = 2;
  Spec.MaxCallDepth = 2;

  EditProgramState State = initialEditState(Spec);
  std::vector<Version> Versions;
  Versions.push_back(parseVersion(renderEditProgram(Spec, State)));
  ASSERT_TRUE(Versions.back().P != nullptr);

  AnalysisOptions Options;
  Options.Domain = AnalysisDomain::Zones;
  ColdRun Cold = coldSolve(Versions.back(), SolverChoice::Warrow, Options);
  AnalysisSnapshot Snap = std::move(Cold.Snap);

  for (const EditStep &Step : generateEditScript(Spec, 3)) {
    applyEdit(Spec, State, Step);
    Versions.push_back(parseVersion(renderEditProgram(Spec, State)));
    ASSERT_TRUE(Versions.back().P != nullptr);
    const Version &Prev = Versions[Versions.size() - 2];
    Snap = warmMatchesCold(Versions.back(), *Prev.P, Snap,
                           SolverChoice::Warrow, Options);
  }
}

TEST_P(IncrementalFuzz, EditChainWarmMatchesColdContextSensitive) {
  EditProgramSpec Spec;
  Spec.Seed = GetParam() ^ 0xc0117e87;
  Spec.NumFunctions = 6;
  Spec.NumGlobals = 2;
  Spec.MaxCallDepth = 3;

  EditProgramState State = initialEditState(Spec);
  std::vector<Version> Versions;
  Versions.push_back(parseVersion(renderEditProgram(Spec, State)));
  ASSERT_TRUE(Versions.back().P != nullptr);

  AnalysisOptions Options;
  Options.ContextSensitive = true;
  ColdRun Cold = coldSolve(Versions.back(), SolverChoice::Warrow, Options);
  AnalysisSnapshot Snap = std::move(Cold.Snap);

  for (const EditStep &Step : generateEditScript(Spec, 3)) {
    applyEdit(Spec, State, Step);
    Versions.push_back(parseVersion(renderEditProgram(Spec, State)));
    ASSERT_TRUE(Versions.back().P != nullptr);
    const Version &Prev = Versions[Versions.size() - 2];
    Snap = warmMatchesCold(Versions.back(), *Prev.P, Snap,
                           SolverChoice::Warrow, Options);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalFuzz,
                         ::testing::Values(11, 23, 47, 81));

TEST(Incremental, SerializedSnapshotRoundTrips) {
  Version Base = parseVersion(generateSpecProgram(smallSpec(-1, 0)));
  ASSERT_TRUE(Base.P != nullptr);

  AnalysisOptions Options;
  ColdRun Cold = coldSolve(Base, SolverChoice::Warrow, Options);
  std::string Text = serializeAnalysisSnapshot(Cold.Snap, *Base.P);

  // A fresh parse of the same source: ids may differ; names must carry.
  Version Fresh = parseVersion(generateSpecProgram(smallSpec(-1, 0)));
  ASSERT_TRUE(Fresh.P != nullptr);
  std::optional<AnalysisSnapshot> Loaded =
      parseAnalysisSnapshot(Text, *Fresh.P);
  ASSERT_TRUE(Loaded.has_value());
  EXPECT_EQ(Loaded->State.size(), Cold.Snap.State.size());

  // Byte-exact re-serialization against the program it was parsed into.
  EXPECT_EQ(serializeAnalysisSnapshot(*Loaded, *Fresh.P), Text);

  // Resuming from the loaded snapshot on the unchanged program drops
  // nothing and reproduces σ.
  InterprocAnalysis Warm(*Fresh.P, Fresh.Cfgs, Options);
  IncrementalStats Inc;
  AnalysisSnapshot WarmCap;
  AnalysisResult WarmResult = Warm.runIncremental(
      SolverChoice::Warrow, *Loaded, *Fresh.P, &WarmCap, &Inc);
  ASSERT_TRUE(WarmResult.Stats.Converged);
  EXPECT_FALSE(Inc.ColdFallback);
  EXPECT_EQ(Inc.DroppedUnknowns, 0u);
  EXPECT_EQ(Inc.RestartedUnknowns, 0u);
  VerifyResult Verify = Warm.verifySolution(WarmResult);
  EXPECT_TRUE(Verify.Ok) << Verify.str();
  EXPECT_EQ(canonicalSigma(WarmResult.Solution, *Fresh.P, WarmCap.Contexts),
            canonicalSigma(Cold.Result.Solution, *Base.P, Cold.Snap.Contexts));
}

TEST(Incremental, SerializedSnapshotRoundTripsZones) {
  SpecProfile Prof = smallSpec(-1, 0);
  Prof.NumFunctions = 10;
  Version Base = parseVersion(generateSpecProgram(Prof));
  ASSERT_TRUE(Base.P != nullptr);

  AnalysisOptions Options;
  Options.Domain = AnalysisDomain::Zones;
  ColdRun Cold = coldSolve(Base, SolverChoice::Warrow, Options);
  std::string Text = serializeAnalysisSnapshot(Cold.Snap, *Base.P);

  Version Fresh = parseVersion(generateSpecProgram(Prof));
  ASSERT_TRUE(Fresh.P != nullptr);
  std::optional<AnalysisSnapshot> Loaded =
      parseAnalysisSnapshot(Text, *Fresh.P);
  ASSERT_TRUE(Loaded.has_value());
  EXPECT_EQ(serializeAnalysisSnapshot(*Loaded, *Fresh.P), Text);
}

TEST(Incremental, MalformedSnapshotTextIsRejected) {
  Version Base = parseVersion(generateSpecProgram(smallSpec(-1, 0)));
  ASSERT_TRUE(Base.P != nullptr);
  EXPECT_FALSE(parseAnalysisSnapshot("", *Base.P).has_value());
  EXPECT_FALSE(parseAnalysisSnapshot("bogus", *Base.P).has_value());

  AnalysisOptions Options;
  ColdRun Cold = coldSolve(Base, SolverChoice::Warrow, Options);
  std::string Text = serializeAnalysisSnapshot(Cold.Snap, *Base.P);
  // Truncations must fail cleanly, never crash.
  for (size_t Cut : {Text.size() / 4, Text.size() / 2, Text.size() - 2})
    EXPECT_FALSE(
        parseAnalysisSnapshot(std::string_view(Text).substr(0, Cut), *Base.P)
            .has_value())
        << "cut at " << Cut;
}

TEST(Incremental, EmptySnapshotFallsBackToCold) {
  Version Base = parseVersion(generateSpecProgram(smallSpec(-1, 0)));
  ASSERT_TRUE(Base.P != nullptr);

  AnalysisOptions Options;
  AnalysisSnapshot Empty;
  IncrementalStats Inc;
  InterprocAnalysis A(*Base.P, Base.Cfgs, Options);
  AnalysisResult R =
      A.runIncremental(SolverChoice::Warrow, Empty, *Base.P, nullptr, &Inc);
  EXPECT_TRUE(Inc.ColdFallback);
  ASSERT_TRUE(R.Stats.Converged);
  VerifyResult Verify = A.verifySolution(R);
  EXPECT_TRUE(Verify.Ok) << Verify.str();
}

TEST(Incremental, DomainMismatchFallsBackToCold) {
  Version Base = parseVersion(generateSpecProgram(smallSpec(-1, 0)));
  ASSERT_TRUE(Base.P != nullptr);

  AnalysisOptions IntervalOpts;
  ColdRun Cold = coldSolve(Base, SolverChoice::Warrow, IntervalOpts);

  AnalysisOptions ZoneOpts;
  ZoneOpts.Domain = AnalysisDomain::Zones;
  IncrementalStats Inc;
  InterprocAnalysis A(*Base.P, Base.Cfgs, ZoneOpts);
  AnalysisResult R = A.runIncremental(SolverChoice::Warrow, Cold.Snap,
                                      *Base.P, nullptr, &Inc);
  EXPECT_TRUE(Inc.ColdFallback) << "an interval snapshot cannot seed zones";
  ASSERT_TRUE(R.Stats.Converged);
}

TEST(Incremental, TwoPhaseChoiceFallsBackToCold) {
  Version Base = parseVersion(generateSpecProgram(smallSpec(-1, 0)));
  ASSERT_TRUE(Base.P != nullptr);

  AnalysisOptions Options;
  ColdRun Cold = coldSolve(Base, SolverChoice::Warrow, Options);
  IncrementalStats Inc;
  InterprocAnalysis A(*Base.P, Base.Cfgs, Options);
  AnalysisResult R = A.runIncremental(SolverChoice::TwoPhase, Cold.Snap,
                                      *Base.P, nullptr, &Inc);
  EXPECT_TRUE(Inc.ColdFallback) << "two-phase has no resumable state";
  ASSERT_TRUE(R.Stats.Converged);
}

} // namespace
