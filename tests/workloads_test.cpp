//===- tests/workloads_test.cpp - Workload sanity tests ------------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/strategies/parallel_slr.h"
#include "lang/interp.h"
#include "lang/parser.h"
#include "lattice/combine.h"
#include "solvers/slr_plus.h"
#include "workloads/eq_generators.h"
#include "workloads/spec_generator.h"
#include "workloads/wcet_suite.h"

#include <gtest/gtest.h>

using namespace warrow;

namespace {

TEST(WcetSuite, HasTwentyNineBenchmarks) {
  EXPECT_EQ(wcetSuite().size(), 29u);
  EXPECT_TRUE(findWcetBenchmark("qsort_exam") != nullptr);
  EXPECT_TRUE(findWcetBenchmark("janne_complex") != nullptr);
  EXPECT_TRUE(findWcetBenchmark("nope") == nullptr);
}

TEST(WcetSuite, AllBenchmarksParseAndRun) {
  for (const WcetBenchmark &B : wcetSuite()) {
    SCOPED_TRACE(B.Name);
    DiagnosticEngine Diags;
    auto P = parseProgram(B.Source, Diags);
    ASSERT_TRUE(P != nullptr) << Diags.str();
    ProgramCfg Cfgs = buildProgramCfg(*P);
    Interpreter I(*P, Cfgs, B.Inputs);
    InterpResult R = I.run();
    EXPECT_TRUE(R.finished())
        << "status " << static_cast<int>(R.St) << " " << R.TrapReason
        << " after " << R.Steps << " steps";
  }
}

TEST(WcetSuite, SizesVaryLikeTheOriginalSuite) {
  int MinLines = 1 << 30, MaxLines = 0;
  for (const WcetBenchmark &B : wcetSuite()) {
    MinLines = std::min(MinLines, B.lineCount());
    MaxLines = std::max(MaxLines, B.lineCount());
  }
  EXPECT_LT(MinLines, 40);
  EXPECT_GT(MaxLines, 40) << "the suite spans a size range";
}

TEST(SpecGenerator, Deterministic) {
  SpecProfile Profile;
  Profile.Name = "det";
  Profile.NumFunctions = 10;
  Profile.Seed = 7;
  EXPECT_EQ(generateSpecProgram(Profile), generateSpecProgram(Profile));
  SpecProfile Other = Profile;
  Other.Seed = 8;
  EXPECT_NE(generateSpecProgram(Profile), generateSpecProgram(Other));
}

TEST(SpecGenerator, AllProfilesParse) {
  for (const SpecProfile &Profile : specSuite()) {
    SCOPED_TRACE(Profile.Name);
    std::string Source = generateSpecProgram(Profile);
    DiagnosticEngine Diags;
    auto P = parseProgram(Source, Diags);
    ASSERT_TRUE(P != nullptr) << Diags.str();
    EXPECT_GE(P->Functions.size(), Profile.NumFunctions);
  }
}

TEST(SpecGenerator, SmallProfileRunsConcretely) {
  const SpecProfile *Lbm = findSpecProfile("470.lbm");
  ASSERT_TRUE(Lbm != nullptr);
  std::string Source = generateSpecProgram(*Lbm);
  DiagnosticEngine Diags;
  auto P = parseProgram(Source, Diags);
  ASSERT_TRUE(P != nullptr) << Diags.str();
  ProgramCfg Cfgs = buildProgramCfg(*P);
  InterpOptions Options;
  Options.MaxSteps = 5'000'000;
  Interpreter I(*P, Cfgs, {3, 1, 4}, Options);
  InterpResult R = I.run();
  EXPECT_TRUE(R.finished()) << R.TrapReason;
}

TEST(SpecGenerator, SuiteHasSevenPrograms) {
  EXPECT_EQ(specSuite().size(), 7u);
  for (const char *Name :
       {"401.bzip2", "429.mcf", "433.milc", "456.hmmer", "458.sjeng",
        "470.lbm", "482.sphinx"})
    EXPECT_TRUE(findSpecProfile(Name) != nullptr) << Name;
}

// Tiny instance of the stress-tier generator (bench_stress runs it at
// 10^6+ unknowns): local solving from the root must discover exactly
// the predicted unknown count, converge, and the parallel engine must
// reproduce the sequential sigma bit for bit.
TEST(StressSystemTest, TinyInstanceSolvesAndMatchesParallel) {
  StressSystem Stress = stressSideSystem(/*NumRings=*/32, /*RingSize=*/8,
                                         /*Bound=*/16, /*CrossLinks=*/2,
                                         /*Seed=*/1234);
  EXPECT_EQ(Stress.NumUnknowns, 32u * 8 + 1 + 64 + 1);

  PartialSolution<uint64_t, Interval> Seq =
      solveSLRPlus(Stress.System, Stress.Root, WarrowCombine{});
  EXPECT_TRUE(Seq.Stats.Converged);
  EXPECT_EQ(Seq.Sigma.size(), Stress.NumUnknowns);
  EXPECT_FALSE(Seq.value(Stress.Root).isBot());

  SolverOptions Options;
  Options.Threads = 2;
  PartialSolution<uint64_t, Interval> Par = engine::runParallelSlrPlus(
      Stress.System, Stress.Root, WarrowCombine{}, Options);
  EXPECT_TRUE(Par.Stats.Converged);
  ASSERT_EQ(Par.Sigma.size(), Seq.Sigma.size());
  for (const auto &[X, Value] : Seq.Sigma)
    EXPECT_TRUE(Par.value(X) == Value) << "unknown " << X;
}

} // namespace
