//===- tests/workloads_test.cpp - Workload sanity tests ------------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/interp.h"
#include "lang/parser.h"
#include "workloads/spec_generator.h"
#include "workloads/wcet_suite.h"

#include <gtest/gtest.h>

using namespace warrow;

namespace {

TEST(WcetSuite, HasTwentyNineBenchmarks) {
  EXPECT_EQ(wcetSuite().size(), 29u);
  EXPECT_TRUE(findWcetBenchmark("qsort_exam") != nullptr);
  EXPECT_TRUE(findWcetBenchmark("janne_complex") != nullptr);
  EXPECT_TRUE(findWcetBenchmark("nope") == nullptr);
}

TEST(WcetSuite, AllBenchmarksParseAndRun) {
  for (const WcetBenchmark &B : wcetSuite()) {
    SCOPED_TRACE(B.Name);
    DiagnosticEngine Diags;
    auto P = parseProgram(B.Source, Diags);
    ASSERT_TRUE(P != nullptr) << Diags.str();
    ProgramCfg Cfgs = buildProgramCfg(*P);
    Interpreter I(*P, Cfgs, B.Inputs);
    InterpResult R = I.run();
    EXPECT_TRUE(R.finished())
        << "status " << static_cast<int>(R.St) << " " << R.TrapReason
        << " after " << R.Steps << " steps";
  }
}

TEST(WcetSuite, SizesVaryLikeTheOriginalSuite) {
  int MinLines = 1 << 30, MaxLines = 0;
  for (const WcetBenchmark &B : wcetSuite()) {
    MinLines = std::min(MinLines, B.lineCount());
    MaxLines = std::max(MaxLines, B.lineCount());
  }
  EXPECT_LT(MinLines, 40);
  EXPECT_GT(MaxLines, 40) << "the suite spans a size range";
}

TEST(SpecGenerator, Deterministic) {
  SpecProfile Profile;
  Profile.Name = "det";
  Profile.NumFunctions = 10;
  Profile.Seed = 7;
  EXPECT_EQ(generateSpecProgram(Profile), generateSpecProgram(Profile));
  SpecProfile Other = Profile;
  Other.Seed = 8;
  EXPECT_NE(generateSpecProgram(Profile), generateSpecProgram(Other));
}

TEST(SpecGenerator, AllProfilesParse) {
  for (const SpecProfile &Profile : specSuite()) {
    SCOPED_TRACE(Profile.Name);
    std::string Source = generateSpecProgram(Profile);
    DiagnosticEngine Diags;
    auto P = parseProgram(Source, Diags);
    ASSERT_TRUE(P != nullptr) << Diags.str();
    EXPECT_GE(P->Functions.size(), Profile.NumFunctions);
  }
}

TEST(SpecGenerator, SmallProfileRunsConcretely) {
  const SpecProfile *Lbm = findSpecProfile("470.lbm");
  ASSERT_TRUE(Lbm != nullptr);
  std::string Source = generateSpecProgram(*Lbm);
  DiagnosticEngine Diags;
  auto P = parseProgram(Source, Diags);
  ASSERT_TRUE(P != nullptr) << Diags.str();
  ProgramCfg Cfgs = buildProgramCfg(*P);
  InterpOptions Options;
  Options.MaxSteps = 5'000'000;
  Interpreter I(*P, Cfgs, {3, 1, 4}, Options);
  InterpResult R = I.run();
  EXPECT_TRUE(R.finished()) << R.TrapReason;
}

TEST(SpecGenerator, SuiteHasSevenPrograms) {
  EXPECT_EQ(specSuite().size(), 7u);
  for (const char *Name :
       {"401.bzip2", "429.mcf", "433.milc", "456.hmmer", "458.sjeng",
        "470.lbm", "482.sphinx"})
    EXPECT_TRUE(findSpecProfile(Name) != nullptr) << Name;
}

} // namespace
