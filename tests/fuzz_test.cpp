//===- tests/fuzz_test.cpp - Randomized end-to-end soundness ---------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Property-based fuzzing of the whole pipeline: random programs must
// parse, pretty-print round-trip, execute without trapping, and — the
// core property — every concrete execution must be contained in the
// abstract results of all solver strategies.
//
//===----------------------------------------------------------------------===//

#include "analysis/interproc.h"
#include "containment.h"
#include "lang/parser.h"
#include "lang/pretty.h"
#include "support/rng.h"
#include "workloads/fuzz_generator.h"

#include <gtest/gtest.h>

using namespace warrow;

namespace {

class Fuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Fuzz, GeneratedProgramIsWellFormed) {
  std::string Source = generateFuzzProgram(GetParam());
  DiagnosticEngine Diags;
  auto P = parseProgram(Source, Diags);
  ASSERT_TRUE(P != nullptr) << "seed " << GetParam() << ":\n"
                            << Diags.str() << Source;
  // Pretty-printer round trip.
  std::string Printed = printProgram(*P);
  DiagnosticEngine Diags2;
  auto P2 = parseProgram(Printed, Diags2);
  ASSERT_TRUE(P2 != nullptr) << Diags2.str();
  EXPECT_EQ(printProgram(*P2), Printed);
}

TEST_P(Fuzz, ConcreteExecutionNeverTraps) {
  std::string Source = generateFuzzProgram(GetParam());
  DiagnosticEngine Diags;
  auto P = parseProgram(Source, Diags);
  ASSERT_TRUE(P != nullptr) << Diags.str();
  ProgramCfg Cfgs = buildProgramCfg(*P);
  InterpOptions Options;
  Options.MaxSteps = 2'000'000;
  for (uint64_t TapeSeed = 0; TapeSeed < 3; ++TapeSeed) {
    std::vector<int64_t> Tape;
    Rng R(GetParam() * 1000 + TapeSeed);
    for (int I = 0; I < 16; ++I)
      Tape.push_back(R.range(-1000, 1000));
    Interpreter Interp(*P, Cfgs, Tape, Options);
    InterpResult Out = Interp.run();
    EXPECT_NE(Out.St, InterpResult::Status::Trapped)
        << "seed " << GetParam() << " tape " << TapeSeed << ": "
        << Out.TrapReason << "\n"
        << Source;
  }
}

TEST_P(Fuzz, AbstractContainsConcrete) {
  std::string Source = generateFuzzProgram(GetParam());
  DiagnosticEngine Diags;
  auto P = parseProgram(Source, Diags);
  ASSERT_TRUE(P != nullptr) << Diags.str();
  ProgramCfg Cfgs = buildProgramCfg(*P);

  struct Config {
    const char *Name;
    SolverChoice Choice;
    bool Context;
    bool Thresholds;
    bool Localized;
  };
  const Config Configs[] = {
      {"warrow", SolverChoice::Warrow, false, false, false},
      {"warrow-ctx", SolverChoice::Warrow, true, false, false},
      {"warrow-thresholds", SolverChoice::Warrow, false, true, false},
      {"warrow-localized", SolverChoice::Warrow, false, false, true},
      {"two-phase", SolverChoice::TwoPhase, false, false, false},
      {"widen-only", SolverChoice::WidenOnly, false, false, false},
  };

  for (const Config &Cfg : Configs) {
    AnalysisOptions Options;
    Options.ContextSensitive = Cfg.Context;
    Options.ThresholdWidening = Cfg.Thresholds;
    Options.LocalizedWidening = Cfg.Localized;
    InterprocAnalysis Analysis(*P, Cfgs, Options);
    AnalysisResult Result = Analysis.run(Cfg.Choice);
    ASSERT_TRUE(Result.Stats.Converged)
        << Cfg.Name << " diverged on seed " << GetParam() << "\n"
        << Source;

    std::vector<int64_t> Tape;
    Rng R(GetParam() * 77 + 5);
    for (int I = 0; I < 16; ++I)
      Tape.push_back(R.range(-300, 300));
    InterpOptions InterpOpts;
    InterpOpts.MaxSteps = 2'000'000;
    ContainmentOutcome Outcome =
        checkContainment(*P, Cfgs, Result, Tape, InterpOpts);
    for (const ContainmentViolation &V : Outcome.Violations)
      ADD_FAILURE() << Cfg.Name << " seed " << GetParam() << " at "
                    << V.Where << ": " << V.Detail << "\n"
                    << Source;
    if (!Outcome.Violations.empty())
      break;
  }
}

std::vector<uint64_t> fuzzSeeds() {
  std::vector<uint64_t> Seeds;
  for (uint64_t S = 1; S <= 40; ++S)
    Seeds.push_back(S);
  return Seeds;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz, ::testing::ValuesIn(fuzzSeeds()));

} // namespace
