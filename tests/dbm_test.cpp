//===- tests/dbm_test.cpp - DBM lattice laws ------------------------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Randomized lattice-law tests for the zones domain (lattice/dbm.h),
// mirroring the interval domain's property suite:
//
//   - semantic inclusion is a partial order (reflexive, antisymmetric on
//     closed forms, transitive),
//   - pointwise max of closed operands is an upper bound,
//   - the Bagnara widening covers the join and stabilizes every
//     ascending chain within #entries steps,
//   - the narrowing is sound (keeps the smaller operand included) and
//     decreasing,
//   - Floyd–Warshall closure is idempotent, and the incremental
//     `closeAfterTighten` agrees with the full closure.
//
// The closure discipline under test is the termination-critical one from
// the header: widening applies to the *stored* form and its result stays
// unclosed; the semantic inclusion test `closed(X) pointwise<= Y` is
// valid for Y in any representation.
//
//===----------------------------------------------------------------------===//

#include "lattice/dbm.h"
#include "support/rng.h"

#include <gtest/gtest.h>

using namespace warrow;

namespace {

constexpr size_t NumVars = 3;

/// A random feasible zone in closed form: a handful of tightenings on
/// top, then a full closure (resampled when infeasible).
Dbm sampleClosed(Rng &R) {
  for (;;) {
    Dbm D(NumVars);
    size_t Tightens = R.below(2 * NumVars + 2);
    for (size_t T = 0; T < Tightens; ++T) {
      size_t I = R.below(NumVars + 1);
      size_t J = R.below(NumVars + 1);
      if (I == J)
        continue;
      int64_t C = static_cast<int64_t>(R.below(21)) - 10;
      D.tighten(I, J, Bound(C));
    }
    if (D.close())
      return D;
  }
}

/// Semantic zone inclusion: every constraint of \p B is entailed by
/// \p A. Valid for B in any representation as long as A is closed.
bool includes(const Dbm &A, const Dbm &B) { return A.pointwiseLeq(B); }

class DbmLaws : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(DbmLaws, LeqIsPartialOrder) {
  Rng R(GetParam());
  for (int Round = 0; Round < 50; ++Round) {
    Dbm A = sampleClosed(R), B = sampleClosed(R), C = sampleClosed(R);
    EXPECT_TRUE(includes(A, A)) << A.str();
    // Antisymmetry: closed forms are canonical.
    if (includes(A, B) && includes(B, A))
      EXPECT_EQ(A, B) << A.str() << " vs " << B.str();
    // Transitivity.
    if (includes(A, B) && includes(B, C))
      EXPECT_TRUE(includes(A, C))
          << A.str() << " <= " << B.str() << " <= " << C.str();
  }
}

TEST_P(DbmLaws, JoinIsUpperBoundAndCommutes) {
  Rng R(GetParam() + 1000);
  for (int Round = 0; Round < 50; ++Round) {
    Dbm A = sampleClosed(R), B = sampleClosed(R);
    Dbm J = Dbm::pointwiseMax(A, B);
    EXPECT_TRUE(includes(A, J));
    EXPECT_TRUE(includes(B, J));
    EXPECT_EQ(J, Dbm::pointwiseMax(B, A));
    EXPECT_EQ(Dbm::pointwiseMax(A, A), A) << "join must be idempotent";
  }
}

TEST_P(DbmLaws, WideningCoversJoin) {
  Rng R(GetParam() + 2000);
  for (int Round = 0; Round < 50; ++Round) {
    Dbm A = sampleClosed(R), B = sampleClosed(R);
    Dbm J = Dbm::pointwiseMax(A, B);
    // The ascending-iteration shape: widen the stored value with the
    // joined next value (closed). The result is deliberately unclosed;
    // inclusion of the closed J against it is still the semantic test.
    Dbm W = A.widen(J);
    EXPECT_TRUE(includes(A, W)) << A.str() << " !<= " << W.str();
    EXPECT_TRUE(includes(J, W)) << J.str() << " !<= " << W.str();
  }
}

TEST_P(DbmLaws, WideningStabilizes) {
  Rng R(GetParam() + 3000);
  for (int Round = 0; Round < 20; ++Round) {
    // Ascending chain: keep widening the stored (unclosed) accumulator
    // with fresh samples joined in. Every unstable step drops at least
    // one finite entry to +inf, so the chain settles within #entries
    // changes regardless of the samples.
    Dbm X = sampleClosed(R);
    size_t Changes = 0;
    const size_t MaxChanges = (NumVars + 1) * (NumVars + 1) + 1;
    for (int Step = 0; Step < 200; ++Step) {
      // Join the fresh sample with X's closed form, as a solver rhs
      // would before handing the target to ▽.
      Dbm XC = X;
      ASSERT_TRUE(XC.close());
      Dbm Target = Dbm::pointwiseMax(XC, sampleClosed(R));
      Dbm W = X.widen(Target);
      if (!(W == X)) {
        ++Changes;
        X = W;
      }
    }
    EXPECT_LE(Changes, MaxChanges) << "widening chain failed to settle";
  }
}

TEST_P(DbmLaws, NarrowingIsSoundAndDecreasing) {
  Rng R(GetParam() + 4000);
  for (int Round = 0; Round < 50; ++Round) {
    Dbm A = sampleClosed(R), B = sampleClosed(R);
    Dbm J = Dbm::pointwiseMax(A, B);
    Dbm W = A.widen(J); // unclosed, includes J.
    Dbm N = W.narrow(J);
    ASSERT_TRUE(N.close()) << "narrowing an included operand stays feasible";
    // Decreasing: N <= W.
    EXPECT_TRUE(includes(N, W)) << N.str() << " !<= " << W.str();
    // Sound: the smaller operand stays included.
    EXPECT_TRUE(includes(J, N)) << J.str() << " !<= " << N.str();
    // Stabilizing shape: only +inf entries of W were refined.
    for (size_t I = 0; I <= NumVars; ++I)
      for (size_t K = 0; K <= NumVars; ++K)
        if (W.at(I, K).isFinite())
          EXPECT_EQ(N.at(I, K), W.at(I, K))
              << "narrowing touched a finite entry (" << I << "," << K
              << ")";
  }
}

TEST_P(DbmLaws, ClosureIsIdempotent) {
  Rng R(GetParam() + 5000);
  for (int Round = 0; Round < 50; ++Round) {
    Dbm A = sampleClosed(R);
    Dbm Twice = A;
    ASSERT_TRUE(Twice.close());
    EXPECT_EQ(Twice, A) << "closure must be idempotent";
  }
}

TEST_P(DbmLaws, IncrementalClosureMatchesFull) {
  Rng R(GetParam() + 6000);
  for (int Round = 0; Round < 50; ++Round) {
    Dbm A = sampleClosed(R);
    size_t I = R.below(NumVars + 1), J = R.below(NumVars + 1);
    if (I == J)
      continue;
    int64_t C = static_cast<int64_t>(R.below(11)) - 5;
    Dbm Incremental = A;
    bool Changed = Incremental.tighten(I, J, Bound(C));
    bool IncFeasible = !Changed || Incremental.closeAfterTighten(I, J);
    Dbm Full = A;
    Full.set(I, J, std::min(A.at(I, J), Bound(C)));
    bool FullFeasible = Full.close();
    ASSERT_EQ(IncFeasible, FullFeasible);
    if (IncFeasible)
      EXPECT_EQ(Incremental, Full)
          << "closeAfterTighten(" << I << "," << J << ") diverges";
  }
}

TEST_P(DbmLaws, ThresholdWideningBetweenPlainAndJoin) {
  Rng R(GetParam() + 7000);
  const std::vector<int64_t> Thresholds = {-8, -4, -2, 0, 2, 4, 8};
  for (int Round = 0; Round < 50; ++Round) {
    Dbm A = sampleClosed(R), B = sampleClosed(R);
    Dbm J = Dbm::pointwiseMax(A, B);
    Dbm Plain = A.widen(J);
    Dbm Snapped = A.widenWithThresholds(J, Thresholds);
    // Still a widening: covers both operands...
    EXPECT_TRUE(includes(A, Snapped));
    EXPECT_TRUE(includes(J, Snapped));
    // ...and at least as precise as the plain one, entry-wise.
    for (size_t I = 0; I <= NumVars; ++I)
      for (size_t K = 0; K <= NumVars; ++K)
        EXPECT_LE(Snapped.at(I, K), Plain.at(I, K));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DbmLaws,
                         ::testing::Values(1u, 7u, 42u, 1337u));
