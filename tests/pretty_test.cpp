//===- tests/pretty_test.cpp - Pretty printer round-trip tests ----------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/parser.h"
#include "lang/pretty.h"
#include "workloads/race_suite.h"
#include "workloads/spec_generator.h"
#include "workloads/wcet_suite.h"

#include <gtest/gtest.h>

using namespace warrow;

namespace {

/// print(parse(S)) must be a fixpoint of print∘parse.
void expectRoundTrip(std::string_view Source) {
  DiagnosticEngine Diags1;
  auto P1 = parseProgram(Source, Diags1);
  ASSERT_TRUE(P1 != nullptr) << Diags1.str();
  std::string Printed1 = printProgram(*P1);
  DiagnosticEngine Diags2;
  auto P2 = parseProgram(Printed1, Diags2);
  ASSERT_TRUE(P2 != nullptr) << "reparse failed:\n"
                             << Printed1 << "\n"
                             << Diags2.str();
  EXPECT_EQ(printProgram(*P2), Printed1) << "printer not idempotent";
}

TEST(Pretty, SimpleProgram) {
  expectRoundTrip("int main() { int x = 1 + 2 * 3; return x; }");
}

TEST(Pretty, PrecedencePreserved) {
  expectRoundTrip(
      "int main() { int x = (1 + 2) * 3 - 4 / (5 % 2); return x; }");
}

TEST(Pretty, NestedControlFlow) {
  expectRoundTrip(R"(
    int g = 3;
    int helper(int a, int b) {
      if (a < b && a > 0 || b == 7)
        return a;
      else
        return b;
    }
    int main() {
      int acc = 0;
      for (int i = 0; i < 10; i = i + 1) {
        if (i % 2 == 0)
          continue;
        acc = acc + i;
        while (acc > 10)
          acc = acc - g;
      }
      int r = helper(acc, 3);
      return r;
    }
  )");
}

TEST(Pretty, ArraysAndUnary) {
  expectRoundTrip(R"(
    int buf[8];
    int main() {
      int i = -3;
      int j = !i;
      buf[i + 3] = -i * 2;
      int v = buf[0];
      int w = unknown();
      return v + j + w;
    }
  )");
}

TEST(Pretty, AllWcetBenchmarksRoundTrip) {
  for (const WcetBenchmark &B : wcetSuite()) {
    SCOPED_TRACE(B.Name);
    expectRoundTrip(B.Source);
  }
}

TEST(Pretty, GeneratedSpecProgramsRoundTrip) {
  SpecProfile Small;
  Small.Name = "tiny";
  Small.NumFunctions = 6;
  Small.Seed = 99;
  expectRoundTrip(generateSpecProgram(Small));
}

TEST(Pretty, ConcurrencyRoundTrip) {
  expectRoundTrip(R"(
    int g = 0;
    mutex m;
    mutex n;
    void worker(int k) {
      lock(m);
      g = g + k;
      unlock(m);
    }
    int main() {
      spawn worker(2);
      lock(n);
      lock(m);
      int v = g;
      unlock(m);
      unlock(n);
      return v;
    }
  )");
}

TEST(Pretty, AllRaceBenchmarksRoundTrip) {
  for (const RaceBenchmark &B : raceSuite()) {
    SCOPED_TRACE(B.Name);
    expectRoundTrip(B.Source);
  }
}

TEST(Pretty, ExprPrinting) {
  DiagnosticEngine Diags;
  auto P = parseProgram("int main() { int x = 1 - (2 - 3); return x; }",
                        Diags);
  ASSERT_TRUE(P != nullptr);
  std::string Out = printProgram(*P);
  EXPECT_NE(Out.find("1 - (2 - 3)"), std::string::npos)
      << "right-associated subtraction keeps parentheses:\n"
      << Out;
}

} // namespace
