//===- tests/soundness_test.cpp - Abstract-vs-concrete soundness ---------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The central property test: for every workload program, every concrete
// state observed by the interpreter at a program point must be contained
// in the abstract environment the analysis computed for that point —
// for all three solver strategies and both context modes.
//
//===----------------------------------------------------------------------===//

#include "analysis/interproc.h"
#include "containment.h"
#include "lang/parser.h"
#include "workloads/wcet_suite.h"

#include <gtest/gtest.h>

using namespace warrow;

namespace {

struct SoundnessCase {
  std::string Benchmark;
  SolverChoice Choice;
  bool ContextSensitive;
};

std::string caseName(const ::testing::TestParamInfo<SoundnessCase> &Info) {
  std::string Name = Info.param.Benchmark;
  for (char &C : Name)
    if (!isalnum(static_cast<unsigned char>(C)))
      C = '_';
  switch (Info.param.Choice) {
  case SolverChoice::Warrow:
    Name += "_warrow";
    break;
  case SolverChoice::WidenOnly:
    Name += "_widen";
    break;
  case SolverChoice::TwoPhase:
    Name += "_twophase";
    break;
  }
  Name += Info.param.ContextSensitive ? "_ctx" : "_noctx";
  return Name;
}

class Soundness : public ::testing::TestWithParam<SoundnessCase> {};

TEST_P(Soundness, ConcreteStatesContained) {
  const SoundnessCase &Case = GetParam();
  const WcetBenchmark *B = findWcetBenchmark(Case.Benchmark);
  ASSERT_TRUE(B != nullptr);
  DiagnosticEngine Diags;
  auto P = parseProgram(B->Source, Diags);
  ASSERT_TRUE(P != nullptr) << Diags.str();
  ProgramCfg Cfgs = buildProgramCfg(*P);

  AnalysisOptions Options;
  Options.ContextSensitive = Case.ContextSensitive;
  InterprocAnalysis Analysis(*P, Cfgs, Options);
  AnalysisResult Result = Analysis.run(Case.Choice);
  ASSERT_TRUE(Result.Stats.Converged);

  // Independent re-evaluation check of the solved assignment. Only the
  // SLR+-based strategies promise a post-solution per unknown; the
  // two-phase baseline's frozen globals are checked by containment only.
  if (Case.Choice != SolverChoice::TwoPhase) {
    VerifyResult Verified = Analysis.verifySolution(Result);
    EXPECT_TRUE(Verified.Ok) << Verified.str();
  }

  // Several input tapes: the benchmark's own plus derived variations.
  std::vector<std::vector<int64_t>> Tapes;
  Tapes.push_back(B->Inputs);
  std::vector<int64_t> Alt;
  for (int64_t V : B->Inputs)
    Alt.push_back(-V + 3);
  Tapes.push_back(Alt);
  Tapes.push_back({0});
  Tapes.push_back({987654321, -987654321, 1, -1});

  for (const auto &Tape : Tapes) {
    ContainmentOutcome Outcome = checkContainment(*P, Cfgs, Result, Tape);
    EXPECT_NE(Outcome.Run.St, InterpResult::Status::Trapped)
        << "workload trapped: " << Outcome.Run.TrapReason;
    for (const ContainmentViolation &V : Outcome.Violations)
      ADD_FAILURE() << B->Name << " at " << V.Where << ": " << V.Detail;
    if (!Outcome.Violations.empty())
      break;
  }
}

std::vector<SoundnessCase> allCases() {
  std::vector<SoundnessCase> Cases;
  for (const WcetBenchmark &B : wcetSuite()) {
    Cases.push_back({B.Name, SolverChoice::Warrow, false});
    Cases.push_back({B.Name, SolverChoice::Warrow, true});
    Cases.push_back({B.Name, SolverChoice::TwoPhase, false});
    Cases.push_back({B.Name, SolverChoice::WidenOnly, false});
  }
  return Cases;
}

INSTANTIATE_TEST_SUITE_P(WcetSuite, Soundness,
                         ::testing::ValuesIn(allCases()), caseName);

} // namespace
