//===- tests/transfer_test.cpp - Transfer function tests ------------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/transfer.h"
#include "lang/parser.h"
#include "support/casting.h"

#include <gtest/gtest.h>

using namespace warrow;

namespace {

Interval Iv(int64_t Lo, int64_t Hi) { return Interval::make(Lo, Hi); }

/// Fixture providing a program whose expressions we can pick apart.
class TransferTest : public ::testing::Test {
protected:
  /// Parses a program whose main contains `int r = <expr>;` as the first
  /// statement and returns that expression.
  const Expr &parseExpr(const std::string &ExprText) {
    std::string Source = "int g = 7;\nint main() { int x; int y; int a[4]; "
                         "int r = " +
                         ExprText + "; return r; }";
    DiagnosticEngine Diags;
    P = parseProgram(Source, Diags);
    EXPECT_TRUE(P != nullptr) << Diags.str();
    const auto *Body = cast<BlockStmt>(P->Functions[0]->Body.get());
    const auto *Decl = cast<DeclStmt>(Body->stmts()[3].get());
    Ctx.Prog = P.get();
    Ctx.ReadGlobal = [](Symbol) { return Iv(7, 7); };
    return *Decl->init();
  }

  Symbol sym(const char *Name) { return P->Symbols.lookup(Name); }

  std::unique_ptr<Program> P;
  EvalContext Ctx;
};

TEST_F(TransferTest, EvalArithmetic) {
  const Expr &E = parseExpr("x * 2 + y");
  AbsEnv Env;
  Env.set(sym("x"), Iv(1, 3));
  Env.set(sym("y"), Iv(10, 10));
  EXPECT_EQ(evalExpr(E, Env, Ctx), Iv(12, 16));
}

TEST_F(TransferTest, EvalGlobalsThroughReader) {
  const Expr &E = parseExpr("g + 1");
  AbsEnv Env;
  EXPECT_EQ(evalExpr(E, Env, Ctx), Iv(8, 8));
}

TEST_F(TransferTest, EvalComparisons) {
  const Expr &E = parseExpr("x < y");
  AbsEnv Env;
  Env.set(sym("x"), Iv(0, 1));
  Env.set(sym("y"), Iv(5, 9));
  EXPECT_EQ(evalExpr(E, Env, Ctx), Interval::constant(1));
  Env.set(sym("y"), Iv(-9, -5));
  EXPECT_EQ(evalExpr(E, Env, Ctx), Interval::constant(0));
  Env.set(sym("y"), Iv(0, 9));
  EXPECT_EQ(evalExpr(E, Env, Ctx), Iv(0, 1));
}

TEST_F(TransferTest, EvalLogic) {
  const Expr &E = parseExpr("x && !y");
  AbsEnv Env;
  Env.set(sym("x"), Iv(1, 5));
  Env.set(sym("y"), Interval::constant(0));
  EXPECT_EQ(evalExpr(E, Env, Ctx), Interval::constant(1));
  Env.set(sym("y"), Iv(2, 3));
  EXPECT_EQ(evalExpr(E, Env, Ctx), Interval::constant(0));
}

TEST_F(TransferTest, EvalArraySmashed) {
  const Expr &E = parseExpr("a[x]");
  AbsEnv Env;
  Env.set(sym("a"), Iv(0, 42)); // Smashed contents.
  Env.set(sym("x"), Iv(0, 3));
  EXPECT_EQ(evalExpr(E, Env, Ctx), Iv(0, 42));
}

TEST_F(TransferTest, RefineSimpleComparison) {
  const Expr &E = parseExpr("x < 10");
  AbsEnv Env;
  Env.set(sym("x"), Iv(0, 100));
  AbsEnv Pos = Env;
  ASSERT_TRUE(refineByCond(Pos, E, true, Ctx));
  EXPECT_EQ(Pos.get(sym("x")), Iv(0, 9));
  AbsEnv Neg = Env;
  ASSERT_TRUE(refineByCond(Neg, E, false, Ctx));
  EXPECT_EQ(Neg.get(sym("x")), Iv(10, 100));
}

TEST_F(TransferTest, RefineBothSides) {
  const Expr &E = parseExpr("x <= y");
  AbsEnv Env;
  Env.set(sym("x"), Iv(0, 100));
  Env.set(sym("y"), Iv(20, 30));
  ASSERT_TRUE(refineByCond(Env, E, true, Ctx));
  EXPECT_EQ(Env.get(sym("x")), Iv(0, 30));
  EXPECT_EQ(Env.get(sym("y")), Iv(20, 30));
}

TEST_F(TransferTest, RefineDetectsInfeasible) {
  const Expr &E = parseExpr("x > 50");
  AbsEnv Env;
  Env.set(sym("x"), Iv(0, 10));
  EXPECT_FALSE(refineByCond(Env, E, true, Ctx));
  AbsEnv Env2;
  Env2.set(sym("x"), Iv(60, 70));
  EXPECT_FALSE(refineByCond(Env2, E, false, Ctx));
}

TEST_F(TransferTest, RefineConjunctionAndDisjunction) {
  const Expr &E = parseExpr("x >= 2 && x <= 8");
  AbsEnv Env;
  Env.set(sym("x"), Iv(0, 100));
  ASSERT_TRUE(refineByCond(Env, E, true, Ctx));
  EXPECT_EQ(Env.get(sym("x")), Iv(2, 8));
  // Negation: x < 2 || x > 8 — join of the two branches.
  AbsEnv Neg;
  Neg.set(sym("x"), Iv(0, 100));
  ASSERT_TRUE(refineByCond(Neg, E, false, Ctx));
  EXPECT_EQ(Neg.get(sym("x")), Iv(0, 100))
      << "disjunctive refinement joins back to the hull";
}

TEST_F(TransferTest, RefineDisjunctionPositive) {
  const Expr &E = parseExpr("x < 2 || x > 90");
  AbsEnv Env;
  Env.set(sym("x"), Iv(0, 100));
  ASSERT_TRUE(refineByCond(Env, E, true, Ctx));
  EXPECT_EQ(Env.get(sym("x")), Iv(0, 100)) << "hull of [0,1] and [91,100]";
  AbsEnv Neg;
  Neg.set(sym("x"), Iv(0, 100));
  ASSERT_TRUE(refineByCond(Neg, E, false, Ctx));
  EXPECT_EQ(Neg.get(sym("x")), Iv(2, 90));
}

TEST_F(TransferTest, RefineTruthiness) {
  const Expr &E = parseExpr("x");
  AbsEnv Env;
  Env.set(sym("x"), Iv(0, 5));
  AbsEnv Pos = Env;
  ASSERT_TRUE(refineByCond(Pos, E, true, Ctx));
  EXPECT_EQ(Pos.get(sym("x")), Iv(1, 5));
  AbsEnv Neg = Env;
  ASSERT_TRUE(refineByCond(Neg, E, false, Ctx));
  EXPECT_EQ(Neg.get(sym("x")), Interval::constant(0));
}

TEST_F(TransferTest, RefineEquality) {
  const Expr &E = parseExpr("x == 7");
  AbsEnv Env;
  Env.set(sym("x"), Iv(0, 100));
  AbsEnv Pos = Env;
  ASSERT_TRUE(refineByCond(Pos, E, true, Ctx));
  EXPECT_EQ(Pos.get(sym("x")), Interval::constant(7));
  AbsEnv Bad;
  Bad.set(sym("x"), Iv(20, 30));
  EXPECT_FALSE(refineByCond(Bad, E, true, Ctx));
  AbsEnv NotEq;
  NotEq.set(sym("x"), Iv(7, 30));
  ASSERT_TRUE(refineByCond(NotEq, E, false, Ctx));
  EXPECT_EQ(NotEq.get(sym("x")), Iv(8, 30));
}

TEST_F(TransferTest, BasicActionsViaProgram) {
  // Exercise applyBasicAction through a small CFG-free setup: build the
  // actions by hand from parsed expressions.
  const Expr &E = parseExpr("x + 1");
  Action Assign;
  Assign.K = Action::Kind::Assign;
  Assign.Lhs = sym("y");
  Assign.Value = &E;
  AbsEnv Pre;
  Pre.set(sym("x"), Iv(0, 4));
  BasicEffect Eff = applyBasicAction(Assign, Pre, Ctx);
  ASSERT_TRUE(Eff.Post.has_value());
  EXPECT_EQ(Eff.Post->get(sym("y")), Iv(1, 5));
  EXPECT_TRUE(Eff.GlobalWrites.empty());

  // Assigning to the global instead routes the value to GlobalWrites.
  Action GlobalAssign = Assign;
  GlobalAssign.Lhs = sym("g");
  BasicEffect GEff = applyBasicAction(GlobalAssign, Pre, Ctx);
  ASSERT_TRUE(GEff.Post.has_value());
  ASSERT_EQ(GEff.GlobalWrites.size(), 1u);
  EXPECT_EQ(GEff.GlobalWrites[0].first, sym("g"));
  EXPECT_EQ(GEff.GlobalWrites[0].second, Iv(1, 5));
  EXPECT_TRUE(GEff.Post->get(sym("g")).isTop())
      << "globals never enter the local environment";
}

TEST_F(TransferTest, StoreIsWeakUpdate) {
  const Expr &E = parseExpr("5");
  Action Store;
  Store.K = Action::Kind::Store;
  Store.Lhs = sym("a");
  Store.Index = &E; // Arbitrary in-range expression.
  Store.Value = &E;
  AbsEnv Pre;
  Pre.set(sym("a"), Interval::constant(0));
  BasicEffect Eff = applyBasicAction(Store, Pre, Ctx);
  ASSERT_TRUE(Eff.Post.has_value());
  EXPECT_EQ(Eff.Post->get(sym("a")), Iv(0, 5))
      << "smashed arrays join stores into the old contents";
}

} // namespace
