//===- tests/local_solvers_test.cpp - RLD and SLR tests ------------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lattice/combine.h"
#include "lattice/interval.h"
#include "solvers/rld.h"
#include "solvers/slr.h"
#include "solvers/two_phase_local.h"
#include "workloads/eq_generators.h"

#include <gtest/gtest.h>

using namespace warrow;

namespace {

using IntSys = LocalSystem<int, Interval>;

Interval Iv(int64_t Lo, int64_t Hi) { return Interval::make(Lo, Hi); }

/// A small loop-shaped local system:
///   0 (head) = [0,0] ⊔ (get(1) + [1,1]) ⊓ [0,Cap]
///   1 (body) = get(0)
///   2 (exit) = get(0) restricted >= Cap
IntSys loopSystem(int64_t Cap) {
  return IntSys([Cap](int X) -> IntSys::Rhs {
    switch (X) {
    case 0:
      return [Cap](const IntSys::Get &Get) {
        return Interval::constant(0).join(
            Get(1).add(Interval::constant(1)).meet(Iv(0, Cap)));
      };
    case 1:
      return [](const IntSys::Get &Get) { return Get(0); };
    default:
      return [Cap](const IntSys::Get &Get) {
        return Get(0).restrictGreaterEq(Interval::constant(Cap));
      };
    }
  });
}

TEST(Slr, SolvesLoopSystemExactly) {
  IntSys S = loopSystem(10);
  PartialSolution<int, Interval> R = solveSLR(S, 2, WarrowCombine{});
  ASSERT_TRUE(R.Stats.Converged);
  EXPECT_EQ(R.value(0), Iv(0, 10));
  EXPECT_EQ(R.value(1), Iv(0, 10));
  EXPECT_EQ(R.value(2), Iv(10, 10));
}

TEST(Slr, ExploresOnlyReachableUnknowns) {
  // Solving unknown 1 does not need unknown 2.
  IntSys S = loopSystem(5);
  PartialSolution<int, Interval> R = solveSLR(S, 1, WarrowCombine{});
  ASSERT_TRUE(R.Stats.Converged);
  EXPECT_TRUE(R.inDomain(0));
  EXPECT_TRUE(R.inDomain(1));
  EXPECT_FALSE(R.inDomain(2)) << "local solving must stay local";
}

TEST(Slr, PartialSolutionProperty) {
  // Theorem 3(1): upon termination the result is a partial ⊟-solution:
  // sigma[x] = sigma[x] ⊟ f_x(sigma) over dom, and dom is closed under
  // dependencies.
  IntSys S = loopSystem(25);
  PartialSolution<int, Interval> R = solveSLR(S, 2, WarrowCombine{});
  ASSERT_TRUE(R.Stats.Converged);
  WarrowCombine Warrow;
  for (const auto &[X, Value] : R.Sigma) {
    std::vector<int> Accessed;
    IntSys::Get Get = [&R, &Accessed](const int &Y) {
      Accessed.push_back(Y);
      return R.value(Y);
    };
    Interval Rhs = S.rhs(X)(Get);
    EXPECT_EQ(Value, Warrow(X, Value, Rhs)) << "unknown " << X;
    for (int Y : Accessed)
      EXPECT_TRUE(R.inDomain(Y)) << "dep " << Y << " of " << X;
  }
}

TEST(Rld, SolvesMonotoneSystems) {
  IntSys S = loopSystem(7);
  PartialSolution<int, Interval> R = solveRLD(S, 2, WarrowCombine{});
  ASSERT_TRUE(R.Stats.Converged);
  // RLD does terminate here and the result is a post solution.
  IntSys::Get Get = [&R](const int &Y) { return R.value(Y); };
  for (const auto &[X, Value] : R.Sigma)
    EXPECT_TRUE(S.rhs(X)(Get).leq(Value));
}

TEST(Rld, NotAGenericSolverNestedEvaluations) {
  // Section 5: RLD evaluates right-hand sides non-atomically — a nested
  // `solve` inside `eval` can update unknowns mid-evaluation. We detect
  // the non-atomicity directly: a right-hand side that reads y twice can
  // observe two *different* values within one evaluation under RLD,
  // never under SLR.
  auto MakeSystem = [](bool *SawTornRead) {
    return IntSys([SawTornRead](int X) -> IntSys::Rhs {
      switch (X) {
      case 0:
        // x0 reads x1, then x2 (whose solving bumps x1), then x1 again.
        return [SawTornRead](const IntSys::Get &Get) {
          Interval First = Get(1);
          Interval Middle = Get(2);
          Interval Second = Get(1);
          if (!(First == Second))
            *SawTornRead = true;
          return First.join(Middle).join(Second);
        };
      case 1:
        return [](const IntSys::Get &Get) {
          return Interval::constant(0).join(Get(2));
        };
      default: // x2 depends on x1 and grows it.
        return [](const IntSys::Get &Get) {
          return Get(1).add(Interval::constant(1)).meet(Iv(0, 3));
        };
      }
    });
  };

  bool RldTorn = false;
  solveRLD(MakeSystem(&RldTorn), 0, JoinCombine{});
  bool SlrTorn = false;
  solveSLR(MakeSystem(&SlrTorn), 0, JoinCombine{});
  EXPECT_FALSE(SlrTorn) << "SLR evaluates right-hand sides atomically";
  // (RLD may or may not exhibit the tear depending on evaluation order;
  // we only assert SLR's guarantee, which is the paper's point.)
}

TEST(Slr, TerminatesOnRandomMonotoneLocalSystems) {
  // Theorem 3(2) over a family of systems: finitely many unknowns, all
  // monotone.
  for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
    const unsigned Size = 40;
    // Build a local view of a random dense monotone system.
    auto Dense = std::make_shared<DenseSystem<Interval>>(
        randomMonotoneSystem(Size, 3, 400, Seed));
    IntSys S(
        [Dense](int X) -> IntSys::Rhs {
          return [Dense, X](const IntSys::Get &Get) {
            return Dense->eval(static_cast<Var>(X),
                               [&Get](Var Y) {
                                 return Get(static_cast<int>(Y));
                               });
          };
        });
    PartialSolution<int, Interval> R = solveSLR(S, 0, WarrowCombine{});
    ASSERT_TRUE(R.Stats.Converged) << "seed " << Seed;
    // Post-solution on the explored domain.
    IntSys::Get Get = [&R](const int &Y) { return R.value(Y); };
    for (const auto &[X, Value] : R.Sigma)
      EXPECT_TRUE(S.rhs(X)(Get).leq(Value));
  }
}

TEST(TwoPhaseLocal, MatchesWarrowOnSimpleLoops) {
  IntSys S = loopSystem(9);
  PartialSolution<int, Interval> Warrow = solveSLR(S, 2, WarrowCombine{});
  PartialSolution<int, Interval> Classic = solveTwoPhaseLocal(S, 2);
  ASSERT_TRUE(Warrow.Stats.Converged && Classic.Stats.Converged);
  EXPECT_EQ(Warrow.value(0), Classic.value(0));
  EXPECT_EQ(Warrow.value(2), Classic.value(2));
}

TEST(Slr, BudgetExhaustionReported) {
  IntSys S = loopSystem(1000000);
  SolverOptions Tight;
  Tight.MaxRhsEvals = 3;
  PartialSolution<int, Interval> R = solveSLR(S, 2, WarrowCombine{}, Tight);
  EXPECT_FALSE(R.Stats.Converged);
}

} // namespace
