//===- tests/paper_examples_test.cpp - The paper's worked examples ----------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Step-exact reproductions of the paper's Examples 1-6. These pin the
// solver implementations to the published iteration sequences.
//
//===----------------------------------------------------------------------===//

#include "lattice/combine.h"
#include "solvers/rr.h"
#include "solvers/slr.h"
#include "solvers/srr.h"
#include "solvers/sw.h"
#include "solvers/wl.h"
#include "workloads/eq_generators.h"

#include <gtest/gtest.h>

using namespace warrow;

namespace {

NatInf Fin(uint64_t V) { return NatInf(V); }
NatInf Inf() { return NatInf::inf(); }

/// Asserts that the recorded update trace starts with the given
/// (variable, value) prefix.
void expectTracePrefix(const SolveResult<NatInf> &Result,
                       const std::vector<std::pair<Var, NatInf>> &Prefix) {
  ASSERT_GE(Result.Trace.size(), Prefix.size())
      << "trace shorter than the expected prefix";
  for (size_t I = 0; I < Prefix.size(); ++I) {
    EXPECT_EQ(Result.Trace[I].X, Prefix[I].first) << "step " << I;
    EXPECT_EQ(Result.Trace[I].Value, Prefix[I].second)
        << "step " << I << ": got " << Result.Trace[I].Value.str()
        << ", want " << Prefix[I].second.str();
  }
}

// --- Example 1: round-robin with ⊟ diverges ------------------------------

TEST(PaperExample1, RoundRobinWithWarrowDiverges) {
  DenseSystem<NatInf> S = paperExampleOne();
  SolverOptions Options;
  Options.MaxRhsEvals = 2000;
  Options.RecordTrace = true;
  SolveResult<NatInf> R = solveRR(S, WarrowCombine{}, Options);
  EXPECT_FALSE(R.Stats.Converged) << "Example 1 must diverge under RR+⊟";

  // The paper's table: sigma_1..sigma_5 after each round-robin sweep are
  //   x1: 0 8 1 8 2 ...   x2: 8 1 8 2 8 ...   x3: 0 8 1 8 2 ...
  // Updates in evaluation order x1,x2,x3 per sweep:
  expectTracePrefix(R, {
                           {1, Inf()},    // sweep 1: x2 -> inf
                           {0, Inf()},    // sweep 2: x1 -> inf
                           {1, Fin(1)},   //          x2 -> 1
                           {2, Inf()},    //          x3 -> inf
                           {0, Fin(1)},   // sweep 3: x1 -> 1
                           {1, Inf()},    //          x2 -> inf
                           {2, Fin(1)},   //          x3 -> 1
                           {0, Inf()},    // sweep 4
                           {1, Fin(2)},
                           {2, Inf()},
                       });
}

TEST(PaperExample1, RoundRobinWithJoinConvergesToInf) {
  // With plain join the system's least fixpoint is all-infinite; ordinary
  // Kleene iteration does not terminate, but widening does.
  DenseSystem<NatInf> S = paperExampleOne();
  SolveResult<NatInf> R = solveRR(S, WidenCombine{});
  ASSERT_TRUE(R.Stats.Converged);
  EXPECT_EQ(R.Sigma[0], Inf());
  EXPECT_EQ(R.Sigma[1], Inf());
  EXPECT_EQ(R.Sigma[2], Inf());
}

// --- Example 3: structured round-robin terminates on Example 1 -----------

TEST(PaperExample3, StructuredRoundRobinTerminates) {
  DenseSystem<NatInf> S = paperExampleOne();
  SolverOptions Options;
  Options.RecordTrace = true;
  SolveResult<NatInf> R = solveSRR(S, WarrowCombine{}, Options);
  ASSERT_TRUE(R.Stats.Converged) << "Theorem 1: SRR must terminate";

  // The paper's Example 3 update sequence:
  //   x2->inf, x1->inf, x2->1, x1->1, x3->inf, x2->inf, x1->inf.
  expectTracePrefix(R, {
                           {1, Inf()},
                           {0, Inf()},
                           {1, Fin(1)},
                           {0, Fin(1)},
                           {2, Inf()},
                           {1, Inf()},
                           {0, Inf()},
                       });
  EXPECT_EQ(R.Trace.size(), 7u) << "no further updates after the trace";
  EXPECT_EQ(R.Sigma[0], Inf());
  EXPECT_EQ(R.Sigma[1], Inf());
  EXPECT_EQ(R.Sigma[2], Inf());
}

// --- Example 2: LIFO worklist with ⊟ diverges -----------------------------

TEST(PaperExample2, WorklistWithWarrowDiverges) {
  DenseSystem<NatInf> S = paperExampleTwo();
  SolverOptions Options;
  Options.MaxRhsEvals = 2000;
  Options.RecordTrace = true;
  SolveResult<NatInf> R = solveW(S, WarrowCombine{}, Options);
  EXPECT_FALSE(R.Stats.Converged) << "Example 2 must diverge under W+⊟";

  // Paper iteration: x1: 0 8 1 1 | 1 1 1 8 ...; x2: 0 0 0 0 | 8 2 2 2 ...
  expectTracePrefix(R, {
                           {0, Inf()},  // x1 -> inf
                           {0, Fin(1)}, // x1 -> 1
                           {1, Inf()},  // x2 -> inf
                           {1, Fin(2)}, // x2 -> 2
                           {0, Inf()},  // x1 -> inf (the cycle continues)
                       });
}

// --- Example 4: structured worklist terminates on Example 2 ---------------

TEST(PaperExample4, StructuredWorklistTerminates) {
  DenseSystem<NatInf> S = paperExampleTwo();
  SolverOptions Options;
  Options.RecordTrace = true;
  SolveResult<NatInf> R = solveSW(S, WarrowCombine{}, Options);
  ASSERT_TRUE(R.Stats.Converged) << "Theorem 2: SW must terminate";

  // Paper iteration: updates x1->inf, x1->1, x2->inf, x1->inf; final
  // values are both infinite.
  expectTracePrefix(R, {
                           {0, Inf()},
                           {0, Fin(1)},
                           {1, Inf()},
                           {0, Inf()},
                       });
  EXPECT_EQ(R.Sigma[0], Inf());
  EXPECT_EQ(R.Sigma[1], Inf());
}

// --- Examples 5 and 6: local solving of an infinite system ----------------

TEST(PaperExample5, SlrComputesThePartialSolution) {
  LocalSystem<uint64_t, NatInf> S = paperExampleFive();
  // ⊕ = join (= max): the partial max-solution of Example 5/6.
  PartialSolution<uint64_t, NatInf> R = solveSLR(S, uint64_t{1}, JoinCombine{});
  ASSERT_TRUE(R.Stats.Converged);
  // dom = {y0, y1, y2, y4} with y1=y2=y4=2 (paper Example 6).
  EXPECT_EQ(R.Sigma.size(), 4u);
  EXPECT_TRUE(R.inDomain(0));
  EXPECT_EQ(R.value(1), Fin(2));
  EXPECT_EQ(R.value(2), Fin(2));
  EXPECT_EQ(R.value(4), Fin(2));
  EXPECT_EQ(R.value(0), Fin(0));
}

TEST(PaperExample5, SlrWithWarrowAlsoTerminates) {
  LocalSystem<uint64_t, NatInf> S = paperExampleFive();
  PartialSolution<uint64_t, NatInf> R = solveSLR(S, uint64_t{1}, WarrowCombine{});
  ASSERT_TRUE(R.Stats.Converged) << "Theorem 3: SLR with ⊟ terminates";
  // The NatInf widening jumps straight to infinity, and the rhs of y4 at
  // infinity stays infinite, so ⊟ cannot recover Example 6's exact value;
  // Theorem 3 promises termination and a sound post solution only.
  EXPECT_TRUE(Fin(2).leq(R.value(1)));
}

} // namespace
