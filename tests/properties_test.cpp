//===- tests/properties_test.cpp - Extra property tests --------------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Additional randomized property tests: environment lattice laws, guard
// refinement soundness against concrete filtering, and the delayed-⊟
// operator.
//
//===----------------------------------------------------------------------===//

#include "analysis/env.h"
#include "lattice/combine.h"
#include "lattice/interval.h"
#include "solvers/sw.h"
#include "support/rng.h"
#include "workloads/eq_generators.h"

#include <gtest/gtest.h>

using namespace warrow;

namespace {

Interval Iv(int64_t Lo, int64_t Hi) { return Interval::make(Lo, Hi); }

class EnvLaws : public ::testing::TestWithParam<uint64_t> {
protected:
  AbsEnv sample(Rng &R) {
    AbsEnv E;
    unsigned Vars = static_cast<unsigned>(R.below(5));
    for (unsigned K = 0; K < Vars; ++K) {
      Symbol S = static_cast<Symbol>(1 + R.below(6));
      int64_t Lo = R.range(-20, 20);
      switch (R.below(4)) {
      case 0:
        E.set(S, Interval::atLeast(Bound(Lo)));
        break;
      case 1:
        E.set(S, Interval::atMost(Bound(Lo)));
        break;
      default:
        E.set(S, Iv(Lo, Lo + static_cast<int64_t>(R.below(15))));
        break;
      }
    }
    return E;
  }
};

TEST_P(EnvLaws, PartialOrderAndJoin) {
  Rng R(GetParam());
  for (int K = 0; K < 300; ++K) {
    AbsEnv A = sample(R), B = sample(R), C = sample(R);
    EXPECT_TRUE(A.leq(A));
    EXPECT_TRUE(A.leq(AbsEnv::top()));
    // Join is an upper bound and least among sampled upper bounds.
    AbsEnv J = A.join(B);
    EXPECT_TRUE(A.leq(J));
    EXPECT_TRUE(B.leq(J));
    if (A.leq(C) && B.leq(C)) {
      EXPECT_TRUE(J.leq(C));
    }
    // Widening covers the join.
    EXPECT_TRUE(J.leq(A.widen(B)));
    // Antisymmetry up to normalization.
    if (A.leq(B) && B.leq(A)) {
      EXPECT_TRUE(A == B);
    }
  }
}

TEST_P(EnvLaws, WidenThenNarrowSandwich) {
  Rng R(GetParam() + 500);
  for (int K = 0; K < 300; ++K) {
    AbsEnv A = sample(R), B = sample(R);
    AbsEnv W = A.widen(B);
    // Narrowing the widened value with something below it stays between.
    AbsEnv Lower = A.join(B); // Lower ⊑ W by the widening law.
    ASSERT_TRUE(Lower.leq(W));
    AbsEnv N = W.narrow(Lower);
    EXPECT_TRUE(Lower.leq(N));
    // (N ⊑ W need not hold pointwise for adopted bindings' *keys*, but
    // the lattice order must still sandwich.)
    EXPECT_TRUE(N.leq(W));
  }
}

TEST_P(EnvLaws, WideningStabilizes) {
  Rng R(GetParam() + 900);
  for (int K = 0; K < 40; ++K) {
    AbsEnv Acc = sample(R);
    int Changes = 0;
    for (int Step = 0; Step < 60; ++Step) {
      AbsEnv Next = Acc.widen(Acc.join(sample(R)));
      if (!(Next == Acc))
        ++Changes;
      Acc = Next;
    }
    // Each variable can change at most ~3 times (two bounds to infinity,
    // then the binding drops); six variables max.
    EXPECT_LE(Changes, 18);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnvLaws,
                         ::testing::Values(11ull, 22ull, 33ull));

// --- Guard refinement soundness ---------------------------------------------

TEST(RefinementProperties, RestrictMatchesConcreteFiltering) {
  Rng R(77);
  for (int K = 0; K < 400; ++K) {
    int64_t ALo = R.range(-15, 15);
    Interval A = Iv(ALo, ALo + static_cast<int64_t>(R.below(8)));
    int64_t BLo = R.range(-15, 15);
    Interval B = Iv(BLo, BLo + static_cast<int64_t>(R.below(8)));
    for (int64_t X = A.lo().finite(); X <= A.hi().finite(); ++X)
      for (int64_t Y = B.lo().finite(); Y <= B.hi().finite(); ++Y) {
        if (X < Y) {
          EXPECT_TRUE(A.restrictLess(B).contains(X))
              << X << "<" << Y << " for " << A.str() << " " << B.str();
        }
        if (X <= Y) {
          EXPECT_TRUE(A.restrictLessEq(B).contains(X));
        }
        if (X > Y) {
          EXPECT_TRUE(A.restrictGreater(B).contains(X));
        }
        if (X >= Y) {
          EXPECT_TRUE(A.restrictGreaterEq(B).contains(X));
        }
        if (X == Y) {
          EXPECT_TRUE(A.restrictEqual(B).contains(X));
        }
        if (X != Y) {
          EXPECT_TRUE(A.restrictNotEqual(B).contains(X));
        }
      }
  }
}

// --- Delayed widening ---------------------------------------------------------

TEST(DelayedWarrow, ShortChainsStayExact) {
  // A counter capped at 3: with delay >= 3 the chain stabilizes exactly
  // without ever widening; with delay 0 it overshoots and narrows back.
  DenseSystem<Interval> S = chainSystem(6, 3);
  DelayedWarrowCombine<Var> Delayed(8);
  SolveResult<Interval> R = solveSW(S, Delayed);
  ASSERT_TRUE(R.Stats.Converged);
  for (Var X = 0; X < S.size(); ++X) {
    // isBot first: bottom intervals have no hi() (asserts in debug builds).
    EXPECT_TRUE(R.Sigma[X].isBot() || R.Sigma[X].hi().isFinite())
        << "no widening should have fired at " << S.name(X);
  }
}

TEST(DelayedWarrow, LongChainsStillTerminate) {
  DenseSystem<Interval> S = ringSystem(10, 100000);
  DelayedWarrowCombine<Var> Delayed(3);
  SolverOptions Options;
  Options.MaxRhsEvals = 50'000;
  SolveResult<Interval> R = solveSW(S, Delayed, Options);
  EXPECT_TRUE(R.Stats.Converged)
      << "after the delay, widening must still enforce termination";
  // Post solution property.
  auto Get = [&R](Var Y) { return R.Sigma[Y]; };
  for (Var X = 0; X < S.size(); ++X) {
    EXPECT_TRUE(S.eval(X, Get).leq(R.Sigma[X]));
  }
}

TEST(DelayedWarrow, MoreDelayIsNeverLessPrecise) {
  DenseSystem<Interval> S = randomMonotoneSystem(20, 3, 40, 9);
  DelayedWarrowCombine<Var> NoDelay(0);
  SolveResult<Interval> R0 = solveSW(S, NoDelay);
  DelayedWarrowCombine<Var> SomeDelay(50);
  SolveResult<Interval> R1 = solveSW(S, SomeDelay);
  ASSERT_TRUE(R0.Stats.Converged && R1.Stats.Converged);
  // With enough delay to exhaust the (bounded) chains, the result is the
  // least fixpoint — no other post solution can be below it.
  SolveResult<Interval> Lfp = solveSW(S, JoinCombine{});
  for (Var X = 0; X < S.size(); ++X) {
    EXPECT_EQ(R1.Sigma[X], Lfp.Sigma[X]) << "var " << X;
    EXPECT_TRUE(Lfp.Sigma[X].leq(R0.Sigma[X])) << "var " << X;
  }
}

} // namespace
