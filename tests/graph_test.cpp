//===- tests/graph_test.cpp - SCC / condensation / WTO tests -------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The graph layer under the parallel solvers: dependency-graph
// extraction, iterative Tarjan + condensation (topologically numbered
// components, ready counts), and the Bourdoncle-style weak topological
// ordering — on self-loops, nested loops, cross edges, and the graphs of
// the paper's Examples 1 and 2.
//
//===----------------------------------------------------------------------===//

#include "graph/dependency_graph.h"
#include "graph/scc.h"
#include "graph/wto.h"
#include "workloads/eq_generators.h"

#include <gtest/gtest.h>

#include <set>

using namespace warrow;

namespace {

DepGraph graphOf(size_t N, std::initializer_list<std::pair<int, int>> Edges) {
  DepGraph G;
  G.Succ.resize(N);
  for (auto [From, To] : Edges)
    G.addEdge(static_cast<uint32_t>(From), static_cast<uint32_t>(To));
  G.finalize();
  return G;
}

/// Every condensation invariant the scheduler relies on.
void expectWellFormed(const DepGraph &G, const Condensation &C) {
  ASSERT_EQ(C.CompOf.size(), G.size());
  size_t TotalMembers = 0;
  for (CompId Id = 0; Id < C.numComponents(); ++Id) {
    TotalMembers += C.Members[Id].size();
    for (uint32_t V : C.Members[Id])
      EXPECT_EQ(C.CompOf[V], Id);
    for (CompId To : C.CompSucc[Id])
      EXPECT_GT(To, Id) << "condensation edge must respect topo numbering";
  }
  EXPECT_EQ(TotalMembers, G.size());
  // Ready counts = in-degrees of the condensation DAG.
  std::vector<uint32_t> InDegree(C.numComponents(), 0);
  for (CompId Id = 0; Id < C.numComponents(); ++Id)
    for (CompId To : C.CompSucc[Id])
      ++InDegree[To];
  EXPECT_EQ(InDegree, C.PredCount);
}

TEST(Scc, ChainIsAllTrivial) {
  // 0 -> 1 -> 2 -> 3: four trivial components in topological order.
  DepGraph G = graphOf(4, {{0, 1}, {1, 2}, {2, 3}});
  Condensation C = condense(G);
  expectWellFormed(G, C);
  ASSERT_EQ(C.numComponents(), 4u);
  for (uint32_t V = 0; V < 4; ++V) {
    EXPECT_EQ(C.CompOf[V], V);
    EXPECT_FALSE(C.Cyclic[V]);
  }
  EXPECT_EQ(C.PredCount[0], 0u);
  EXPECT_EQ(C.PredCount[3], 1u);
}

TEST(Scc, SelfLoopIsCyclic) {
  DepGraph G = graphOf(2, {{0, 0}, {0, 1}});
  Condensation C = condense(G);
  expectWellFormed(G, C);
  ASSERT_EQ(C.numComponents(), 2u);
  EXPECT_TRUE(C.Cyclic[C.CompOf[0]]) << "self-loop must mark the component";
  EXPECT_FALSE(C.Cyclic[C.CompOf[1]]);
}

TEST(Scc, PaperExampleOneIsOneComponent) {
  // x1 = x2; x2 = x3 + 1; x3 = x1: a single 3-cycle.
  DepGraph G = extractDependencyGraph(paperExampleOne());
  Condensation C = condense(G);
  expectWellFormed(G, C);
  ASSERT_EQ(C.numComponents(), 1u);
  EXPECT_TRUE(C.Cyclic[0]);
  EXPECT_EQ(C.Members[0], (std::vector<uint32_t>{0, 1, 2}));
}

TEST(Scc, PaperExampleTwoIsOneComponent) {
  // x1 and x2 read each other and themselves.
  DepGraph G = extractDependencyGraph(paperExampleTwo());
  EXPECT_TRUE(G.hasEdge(0, 0));
  EXPECT_TRUE(G.hasEdge(1, 0));
  Condensation C = condense(G);
  expectWellFormed(G, C);
  ASSERT_EQ(C.numComponents(), 1u);
  EXPECT_TRUE(C.Cyclic[0]);
}

TEST(Scc, CrossEdgesBetweenComponents) {
  // Two 2-cycles {0,1} and {2,3}, cross edges 1->2 and 0->3.
  DepGraph G =
      graphOf(4, {{0, 1}, {1, 0}, {2, 3}, {3, 2}, {1, 2}, {0, 3}});
  Condensation C = condense(G);
  expectWellFormed(G, C);
  ASSERT_EQ(C.numComponents(), 2u);
  EXPECT_TRUE(C.Cyclic[0] && C.Cyclic[1]);
  EXPECT_EQ(C.CompOf[0], C.CompOf[1]);
  EXPECT_EQ(C.CompOf[2], C.CompOf[3]);
  EXPECT_LT(C.CompOf[0], C.CompOf[2]) << "reader must come later";
  // Both cross edges collapse into one condensation edge.
  EXPECT_EQ(C.CompSucc[C.CompOf[0]],
            (std::vector<CompId>{C.CompOf[2]}));
  EXPECT_EQ(C.PredCount[C.CompOf[2]], 1u);
}

TEST(Scc, ManyComponentSystemShape) {
  DenseSystem<Interval> S = manyComponentSystem(16, 8, 64, 0, 7);
  Condensation C = condense(extractDependencyGraph(S));
  ASSERT_EQ(C.numComponents(), 16u);
  for (CompId Id = 0; Id < 16; ++Id) {
    EXPECT_TRUE(C.Cyclic[Id]);
    EXPECT_EQ(C.Members[Id].size(), 8u);
    EXPECT_EQ(C.PredCount[Id], 0u) << "CrossLinks=0 must be independent";
  }
  // With cross links, later components acquire predecessors.
  DenseSystem<Interval> Linked = manyComponentSystem(16, 8, 64, 2, 7);
  Condensation CL = condense(extractDependencyGraph(Linked));
  ASSERT_EQ(CL.numComponents(), 16u);
  uint32_t WithPreds = 0;
  for (CompId Id = 0; Id < 16; ++Id)
    WithPreds += CL.PredCount[Id] > 0;
  EXPECT_GE(WithPreds, 15u - 1u);
}

TEST(Wto, AcyclicIsTopologicalAtDepthZero) {
  // Diamond with a cross edge: 0 -> {1,2} -> 3, 1 -> 2.
  DepGraph G = graphOf(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {1, 2}});
  std::vector<WtoEntry> W = weakTopologicalOrder(G);
  ASSERT_EQ(W.size(), 4u);
  for (const WtoEntry &E : W) {
    EXPECT_EQ(E.Depth, 0u);
    EXPECT_FALSE(E.IsHead);
  }
  EXPECT_EQ(wtoToString(W), "0 1 2 3");
}

TEST(Wto, SimpleLoop) {
  // 0 -> (1 <-> 2) -> 3.
  DepGraph G = graphOf(4, {{0, 1}, {1, 2}, {2, 1}, {2, 3}});
  EXPECT_EQ(wtoToString(weakTopologicalOrder(G)), "0 (1 2) 3");
}

TEST(Wto, NestedLoops) {
  // Outer cycle 0 -> 1 -> 2 -> 3 -> 0 with inner cycle 1 <-> 2.
  DepGraph G = graphOf(4, {{0, 1}, {1, 2}, {2, 1}, {2, 3}, {3, 0}});
  EXPECT_EQ(wtoToString(weakTopologicalOrder(G)), "(0 (1 2) 3)");
}

TEST(Wto, SelfLoopBecomesSingletonComponent) {
  DepGraph G = graphOf(3, {{0, 1}, {1, 1}, {1, 2}});
  EXPECT_EQ(wtoToString(weakTopologicalOrder(G)), "0 (1) 2");
}

TEST(Wto, PaperExampleGraphs) {
  EXPECT_EQ(
      wtoToString(weakTopologicalOrder(
          extractDependencyGraph(paperExampleOne()))),
      "(0 2 1)"); // x1 reads x2 reads x3 reads x1: head 0, then 2 -> 1.
  EXPECT_EQ(wtoToString(weakTopologicalOrder(
                extractDependencyGraph(paperExampleTwo()))),
            "(0 (1))");
}

TEST(Wto, EveryNodeExactlyOnce) {
  DenseSystem<Interval> S = randomMonotoneSystem(200, 4, 64, 99);
  DepGraph G = extractDependencyGraph(S);
  std::vector<WtoEntry> W = weakTopologicalOrder(G);
  ASSERT_EQ(W.size(), G.size());
  std::set<uint32_t> Seen;
  for (const WtoEntry &E : W)
    Seen.insert(E.Node);
  EXPECT_EQ(Seen.size(), G.size());
}

} // namespace
