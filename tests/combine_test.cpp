//===- tests/combine_test.cpp - Combine operator (⊕/⊟) tests ------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lattice/combine.h"
#include "lattice/interval.h"
#include "lattice/natinf.h"
#include "support/rng.h"

#include <gtest/gtest.h>

using namespace warrow;

namespace {

Interval Iv(int64_t Lo, int64_t Hi) { return Interval::make(Lo, Hi); }

TEST(Combine, BasicOperators) {
  int X = 0;
  EXPECT_EQ(AssignCombine{}(X, Iv(0, 1), Iv(5, 6)), Iv(5, 6));
  EXPECT_EQ(JoinCombine{}(X, Iv(0, 1), Iv(5, 6)), Iv(0, 6));
  EXPECT_EQ(MeetCombine{}(X, Iv(0, 5), Iv(3, 9)), Iv(3, 5));
  Interval W = WidenCombine{}(X, Iv(0, 1), Iv(0, 6));
  EXPECT_TRUE(W.hi().isPosInf());
  EXPECT_EQ(NarrowCombine{}(X, Interval::atLeast(Bound(0)), Iv(0, 6)),
            Iv(0, 6));
}

TEST(Combine, WarrowDefinition) {
  // a ⊟ b = a △ b if b ⊑ a, else a ▽ b (Section 3).
  int X = 0;
  WarrowCombine Warrow;
  // Growing: widening.
  Interval Grew = Warrow(X, Iv(0, 1), Iv(0, 5));
  EXPECT_TRUE(Grew.hi().isPosInf());
  // Shrinking: narrowing (improves only infinite bounds; the finite
  // lower bound 0 stays).
  EXPECT_EQ(Warrow(X, Interval::atLeast(Bound(0)), Iv(2, 7)), Iv(0, 7));
  EXPECT_EQ(Warrow(X, Iv(0, 100), Iv(2, 7)), Iv(0, 100));
  // Incomparable: widening.
  Interval Mixed = Warrow(X, Iv(0, 5), Iv(3, 9));
  EXPECT_TRUE(Mixed.hi().isPosInf());
  EXPECT_EQ(Mixed.lo(), Bound(0));
}

TEST(Combine, WarrowOnNatInfMatchesPaper) {
  // Example 1's operators: a ▽ b = (b<=a ? a : inf), a △ b = (a=inf ? b : a).
  int X = 0;
  WarrowCombine Warrow;
  EXPECT_EQ(Warrow(X, NatInf(0), NatInf(1)), NatInf::inf());
  EXPECT_EQ(Warrow(X, NatInf::inf(), NatInf(1)), NatInf(1));
  EXPECT_EQ(Warrow(X, NatInf(5), NatInf(3)), NatInf(5));
  EXPECT_EQ(Warrow(X, NatInf(5), NatInf(5)), NatInf(5));
}

TEST(Combine, WarrowResultIsUpperBoundOfNewWhenGrowing) {
  // If b ⋢ a then b ⊑ a ▽ b (widening covers); if b ⊑ a then the result
  // stays between b and a. Either way the ⊟-update never loses b entirely
  // — the key to Lemma 1.
  Rng R(11);
  WarrowCombine Warrow;
  for (int K = 0; K < 500; ++K) {
    int64_t ALo = R.range(-20, 20);
    Interval A = Iv(ALo, ALo + static_cast<int64_t>(R.below(10)));
    int64_t BLo = R.range(-20, 20);
    Interval B = Iv(BLo, BLo + static_cast<int64_t>(R.below(10)));
    Interval Out = Warrow(0, A, B);
    if (B.leq(A)) {
      EXPECT_TRUE(B.leq(Out));
      EXPECT_TRUE(Out.leq(A));
    } else {
      EXPECT_TRUE(B.leq(Out));
      EXPECT_TRUE(A.leq(Out));
    }
  }
}

TEST(Combine, DegradingWarrowCountsSwitches) {
  DegradingWarrowCombine<int> Deg(/*MaxSwitches=*/1);
  int X = 0;
  // Grow: widen to [0, inf).
  Interval V = Deg(X, Iv(0, 0), Iv(0, 5));
  EXPECT_TRUE(V.hi().isPosInf());
  // Shrink: narrowing still allowed (0 switches so far).
  V = Deg(X, V, Iv(0, 5));
  EXPECT_EQ(V, Iv(0, 5));
  // Grow again: switch #1 recorded.
  V = Deg(X, V, Iv(0, 9));
  EXPECT_TRUE(V.hi().isPosInf());
  EXPECT_EQ(Deg.totalSwitches(), 1u);
  // Shrink attempt: budget exhausted -> frozen at the old value.
  Interval Frozen = Deg(X, V, Iv(0, 9));
  EXPECT_EQ(Frozen, V) << "narrowing disabled after MaxSwitches";
}

TEST(Combine, DegradingWarrowIsPerUnknown) {
  DegradingWarrowCombine<int> Deg(/*MaxSwitches=*/0);
  // Unknown 0 exhausts immediately; unknown 1 still narrows from scratch.
  Interval V0 = Deg(0, Interval::atLeast(Bound(0)), Iv(0, 5));
  EXPECT_EQ(V0, Interval::atLeast(Bound(0))) << "0-budget freezes at once";
  Interval V1 = Deg(1, Interval::atLeast(Bound(0)), Iv(0, 5));
  EXPECT_EQ(V1, Interval::atLeast(Bound(0)));
}

} // namespace
