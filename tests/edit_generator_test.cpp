//===- tests/edit_generator_test.cpp - Edit-sequence well-formedness ------====//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Solver-independent properties of the edit-sequence generator: every
// version parses and is sema-clean, the CFG diff between consecutive
// versions matches the generator's own prediction exactly, and the
// unknown-set delta is confined to the predicted declarations (unchanged
// functions keep identical fingerprints and node counts).
//
//===----------------------------------------------------------------------===//

#include "analysis/snapshot.h"
#include "lang/parser.h"
#include "workloads/edit_generator.h"

#include <gtest/gtest.h>

using namespace warrow;

namespace {

struct Version {
  std::string Source;
  std::unique_ptr<Program> P;
  ProgramCfg Cfgs;
};

Version parseVersion(const std::string &Source) {
  Version V;
  V.Source = Source;
  DiagnosticEngine Diags;
  V.P = parseProgram(Source, Diags);
  EXPECT_TRUE(V.P != nullptr) << Diags.str() << "\n" << Source;
  if (V.P)
    V.Cfgs = buildProgramCfg(*V.P);
  return V;
}

/// Shapes-only snapshot of a version (no solver involved).
AnalysisSnapshot shapesOf(const Version &V) {
  AnalysisSnapshot Snap;
  snapshotShapes(*V.P, V.Cfgs, Snap);
  return Snap;
}

class EditGen : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EditGen, EveryVersionParsesAndDiffMatchesPrediction) {
  EditProgramSpec Spec;
  Spec.Seed = GetParam();
  Spec.NumFunctions = 5 + static_cast<unsigned>(GetParam() % 4);
  Spec.NumGlobals = 2 + static_cast<unsigned>(GetParam() % 3);
  Spec.MaxCallDepth = 2 + static_cast<unsigned>(GetParam() % 3);

  EditProgramState State = initialEditState(Spec);
  Version Before = parseVersion(renderEditProgram(Spec, State));
  ASSERT_TRUE(Before.P != nullptr);

  std::vector<EditStep> Script = generateEditScript(Spec, 6);
  ASSERT_EQ(Script.size(), 6u);

  for (size_t I = 0; I < Script.size(); ++I) {
    const EditStep &Step = Script[I];
    EditPrediction Want = predictEdit(Spec, State, Step);

    AnalysisSnapshot Snap = shapesOf(Before);
    applyEdit(Spec, State, Step);
    Version After = parseVersion(renderEditProgram(Spec, State));
    ASSERT_TRUE(After.P != nullptr) << "step " << I;

    // The CFG diff applies cleanly and reports exactly the prediction.
    ProgramDiff Diff = diffSnapshot(Snap, *After.P, After.Cfgs);
    EXPECT_EQ(Diff.ChangedFuncs, Want.ChangedFuncs) << "step " << I;
    EXPECT_EQ(Diff.ChangedGlobals, Want.ChangedGlobals) << "step " << I;
    std::unordered_set<std::string> Added(Diff.AddedFuncs.begin(),
                                          Diff.AddedFuncs.end());
    EXPECT_EQ(Added, Want.AddedFuncs) << "step " << I;

    // Unknown-set delta: every unchanged function keeps its fingerprint
    // and node count, so its point unknowns are untouched by the edit.
    for (const FuncShape &F : Snap.Funcs) {
      if (Want.ChangedFuncs.count(F.Name))
        continue;
      Symbol S = After.P->Symbols.lookup(F.Name);
      ASSERT_NE(S, 0u) << F.Name << " vanished at step " << I;
      size_t Idx = After.P->functionIndex(S);
      ASSERT_LT(Idx, After.P->Functions.size()) << F.Name;
      EXPECT_EQ(functionFingerprint(*After.P, After.Cfgs.cfgOf(Idx),
                                    *After.P->Functions[Idx]),
                F.Fingerprint)
          << F.Name << " changed unpredictedly at step " << I;
    }

    Before = std::move(After);
  }
}

TEST(EditGen, RenderingIsDeterministic) {
  EditProgramSpec Spec;
  Spec.Seed = 42;
  EditProgramState State = initialEditState(Spec);
  std::string A = renderEditProgram(Spec, State);
  std::string B = renderEditProgram(Spec, State);
  EXPECT_EQ(A, B);

  // An edit makes the source differ; the prediction is never empty.
  EditStep Step{EditKind::ChangeBody, 2};
  EditPrediction P = predictEdit(Spec, State, Step);
  EXPECT_FALSE(P.ChangedFuncs.empty());
  applyEdit(Spec, State, Step);
  EXPECT_NE(renderEditProgram(Spec, State), A);
}

TEST(EditGen, AddFunctionGrowsTheProgram) {
  EditProgramSpec Spec;
  Spec.Seed = 7;
  EditProgramState State = initialEditState(Spec);
  Version Base = parseVersion(renderEditProgram(Spec, State));
  ASSERT_TRUE(Base.P != nullptr);
  size_t BaseFuncs = Base.P->Functions.size();

  applyEdit(Spec, State, EditStep{EditKind::AddFunction, 0});
  Version Bigger = parseVersion(renderEditProgram(Spec, State));
  ASSERT_TRUE(Bigger.P != nullptr);
  EXPECT_EQ(Bigger.P->Functions.size(), BaseFuncs + 1);
  // The new function is reachable: main calls it.
  EXPECT_NE(Bigger.Source.find("f" + std::to_string(Spec.NumFunctions) + "("),
            std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EditGen,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

} // namespace
