//===- tests/parser_test.cpp - Parser tests ------------------------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/parser.h"

#include "support/casting.h"

#include <gtest/gtest.h>

using namespace warrow;

namespace {

std::unique_ptr<Program> parseOk(std::string_view Source) {
  DiagnosticEngine Diags;
  auto P = parseProgram(Source, Diags);
  EXPECT_TRUE(P != nullptr) << Diags.str();
  return P;
}

void parseFails(std::string_view Source) {
  DiagnosticEngine Diags;
  auto P = parseProgram(Source, Diags);
  EXPECT_TRUE(P == nullptr || Diags.hasErrors())
      << "expected a diagnostic for:\n"
      << Source;
}

TEST(Parser, MinimalProgram) {
  auto P = parseOk("int main() { return 0; }");
  ASSERT_EQ(P->Functions.size(), 1u);
  EXPECT_EQ(P->Symbols.spelling(P->Functions[0]->Name), "main");
  EXPECT_FALSE(P->Functions[0]->ReturnsVoid);
}

TEST(Parser, GlobalsWithInitializers) {
  auto P = parseOk("int g = 5;\nint h = -3;\nint arr[10];\nint z;\n"
                   "int main() { return g; }");
  ASSERT_EQ(P->Globals.size(), 4u);
  EXPECT_EQ(P->Globals[0].Init, 5);
  EXPECT_EQ(P->Globals[1].Init, -3);
  EXPECT_TRUE(P->Globals[2].isArray());
  EXPECT_EQ(P->Globals[2].ArraySize, 10);
  EXPECT_EQ(P->Globals[3].Init, 0);
}

TEST(Parser, ExpressionPrecedence) {
  auto P = parseOk("int main() { int x = 1 + 2 * 3; return x; }");
  const auto *Body = cast<BlockStmt>(P->Functions[0]->Body.get());
  const auto *Decl = cast<DeclStmt>(Body->stmts()[0].get());
  const auto *Add = cast<BinaryExpr>(Decl->init());
  EXPECT_EQ(Add->op(), BinaryOp::Add);
  const auto *Mul = cast<BinaryExpr>(&Add->rhs());
  EXPECT_EQ(Mul->op(), BinaryOp::Mul);
}

TEST(Parser, ParenthesesOverridePrecedence) {
  auto P = parseOk("int main() { int x = (1 + 2) * 3; return x; }");
  const auto *Body = cast<BlockStmt>(P->Functions[0]->Body.get());
  const auto *Decl = cast<DeclStmt>(Body->stmts()[0].get());
  const auto *Mul = cast<BinaryExpr>(Decl->init());
  EXPECT_EQ(Mul->op(), BinaryOp::Mul);
  EXPECT_EQ(cast<BinaryExpr>(&Mul->lhs())->op(), BinaryOp::Add);
}

TEST(Parser, LogicalOperatorsLowerThanComparison) {
  auto P = parseOk(
      "int main() { int x = 1; if (x < 2 && x > 0 || x == 5) x = 0; "
      "return x; }");
  const auto *Body = cast<BlockStmt>(P->Functions[0]->Body.get());
  const auto *If = cast<IfStmt>(Body->stmts()[1].get());
  const auto *Or = cast<BinaryExpr>(&If->cond());
  EXPECT_EQ(Or->op(), BinaryOp::LOr);
  EXPECT_EQ(cast<BinaryExpr>(&Or->lhs())->op(), BinaryOp::LAnd);
}

TEST(Parser, ControlFlowForms) {
  auto P = parseOk(R"(
    int main() {
      int i = 0;
      int acc = 0;
      while (i < 10) {
        i = i + 1;
        if (i == 5)
          continue;
        acc = acc + i;
        if (acc > 100)
          break;
      }
      for (int j = 0; j < 4; j = j + 1)
        acc = acc + j;
      return acc;
    }
  )");
  ASSERT_TRUE(P != nullptr);
}

TEST(Parser, ForWithEmptyParts) {
  parseOk("int main() { int i = 0; for (;;) { i = i + 1; if (i > 3) break; }"
          " return i; }");
  parseOk("int main() { int i = 0; for (; i < 3;) i = i + 1; return i; }");
}

TEST(Parser, ArraysAndCalls) {
  auto P = parseOk(R"(
    int a[4];
    int f(int x) { return x + 1; }
    int main() {
      a[0] = 1;
      a[1] = a[0] + 2;
      int r = f(a[1]);
      f(3);
      return r;
    }
  )");
  ASSERT_EQ(P->Functions.size(), 2u);
}

TEST(Parser, VoidFunction) {
  auto P = parseOk("int g = 0;\nvoid f() { g = 1; return; }\n"
                   "int main() { f(); return g; }");
  EXPECT_TRUE(P->Functions[0]->ReturnsVoid);
}

TEST(Parser, SyntaxErrors) {
  parseFails("int main() { return 0 }");          // Missing ';'.
  parseFails("int main() { int = 3; }");          // Missing name.
  parseFails("int main() { x = ; }");             // Missing expr.
  parseFails("int main() { if x { } }");          // Missing parens.
  parseFails("int main() { while (1 { } }");      // Unbalanced.
  parseFails("int main() { int a[x]; }");         // Non-constant size.
  parseFails("float main() { }");                 // Unknown type.
  parseFails("int main() { return 0; } trailing"); // Garbage at end.
}

TEST(Parser, ErrorRecoveryFindsMultipleErrors) {
  DiagnosticEngine Diags;
  parseProgram("int main() { x = ; y = ; return 0; }", Diags);
  EXPECT_GE(Diags.all().size(), 2u) << Diags.str();
}

TEST(Parser, ConcurrencyForms) {
  auto P = parseOk(R"(
    int g = 0;
    mutex m;
    void w(int a) { lock(m); g = a; unlock(m); }
    int main() { spawn w(1); return 0; }
  )");
  ASSERT_TRUE(P != nullptr);
  ASSERT_EQ(P->Mutexes.size(), 1u);
  EXPECT_EQ(P->Symbols.spelling(P->Mutexes[0].Name), "m");
  EXPECT_TRUE(P->isMutex(P->Mutexes[0].Name));
}

TEST(Parser, ConcurrencySyntaxErrors) {
  parseFails("mutex; int main() { return 0; }");           // Missing name.
  parseFails("mutex m = 3; int main() { return 0; }");     // No initializer.
  parseFails("int main() { spawn 3; return 0; }");         // Not a call.
  parseFails("void w() { } int main() { spawn w; return 0; }"); // No parens.
  parseFails("int main() { mutex m; return 0; }");         // Top level only.
  parseFails("mutex m; int main() { lock(); return 0; }"); // Missing name.
  parseFails("mutex m; int main() { lock(m) return 0; }"); // Missing ';'.
  parseFails("mutex m; int main() { lock m; return 0; }"); // Missing parens.
}

TEST(Parser, NegativeNumbersAndUnaryOps) {
  auto P = parseOk("int main() { int x = -5; int y = !x; int z = - - 3; "
                   "return x + y + z; }");
  ASSERT_TRUE(P != nullptr);
}

} // namespace
