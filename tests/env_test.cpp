//===- tests/env_test.cpp - Abstract environment tests -------------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/absvalue.h"
#include "analysis/env.h"

#include <gtest/gtest.h>

using namespace warrow;

namespace {

Interval Iv(int64_t Lo, int64_t Hi) { return Interval::make(Lo, Hi); }

TEST(AbsEnv, MissingMeansTop) {
  AbsEnv E;
  EXPECT_TRUE(E.isTop());
  EXPECT_TRUE(E.get(3).isTop());
  E.set(3, Iv(0, 5));
  EXPECT_EQ(E.get(3), Iv(0, 5));
  E.set(3, Interval::top());
  EXPECT_TRUE(E.isTop()) << "binding to top erases";
}

TEST(AbsEnv, OrderIsPointwise) {
  AbsEnv A;
  A.set(1, Iv(0, 3));
  A.set(2, Iv(5, 5));
  AbsEnv B;
  B.set(1, Iv(0, 10));
  EXPECT_TRUE(A.leq(B));
  EXPECT_FALSE(B.leq(A));
  EXPECT_TRUE(A.leq(AbsEnv::top()));
  EXPECT_FALSE(AbsEnv::top().leq(A));
}

TEST(AbsEnv, JoinKeepsCommonKeysOnly) {
  AbsEnv A;
  A.set(1, Iv(0, 3));
  A.set(2, Iv(1, 1));
  AbsEnv B;
  B.set(1, Iv(5, 9));
  AbsEnv J = A.join(B);
  EXPECT_EQ(J.get(1), Iv(0, 9));
  EXPECT_TRUE(J.get(2).isTop()) << "keys absent on one side join to top";
}

TEST(AbsEnv, WidenNarrowPointwise) {
  AbsEnv A;
  A.set(1, Iv(0, 3));
  AbsEnv B;
  B.set(1, Iv(0, 7));
  AbsEnv W = A.widen(B);
  EXPECT_TRUE(W.get(1).hi().isPosInf());
  AbsEnv Smaller;
  Smaller.set(1, Iv(0, 5));
  AbsEnv N = W.narrow(Smaller);
  EXPECT_EQ(N.get(1), Iv(0, 5));
  // Narrowing adopts bindings present only in the smaller side (legal:
  // top △ v ⊒ v; alternation with binding-dropping widenings is bounded
  // by the degrading ⊟ the analysis drivers use).
  AbsEnv Extra;
  Extra.set(1, Iv(0, 5));
  Extra.set(9, Iv(2, 2));
  AbsEnv N2 = W.narrow(Extra);
  EXPECT_EQ(N2.get(9), Iv(2, 2));
}

TEST(AbsEnv, MeetDetectsInfeasibility) {
  AbsEnv A;
  A.set(1, Iv(0, 3));
  AbsEnv B;
  B.set(1, Iv(10, 20));
  AbsEnv C = A;
  EXPECT_FALSE(C.meetWith(B));
  AbsEnv D;
  D.set(1, Iv(2, 8));
  AbsEnv E = A;
  EXPECT_TRUE(E.meetWith(D));
  EXPECT_EQ(E.get(1), Iv(2, 3));
}

TEST(AbsEnv, NarrowingLawHolds) {
  AbsEnv A;
  A.set(1, Interval::atLeast(Bound(0)));
  A.set(2, Iv(0, 9));
  AbsEnv B;
  B.set(1, Iv(0, 4));
  B.set(2, Iv(1, 3));
  ASSERT_TRUE(B.leq(A));
  AbsEnv N = A.narrow(B);
  EXPECT_TRUE(B.leq(N));
  EXPECT_TRUE(N.leq(A));
}

TEST(AbsValue, KindsAndBottom) {
  AbsValue Bot = AbsValue::bot();
  AbsEnv E;
  E.set(1, Iv(0, 1));
  AbsValue Env = AbsValue::env(E);
  AbsValue Itv = AbsValue::itv(Iv(2, 3));
  EXPECT_TRUE(Bot.isBot());
  EXPECT_TRUE(Bot.leq(Env));
  EXPECT_TRUE(Bot.leq(Itv));
  EXPECT_FALSE(Env.leq(Bot));
  EXPECT_EQ(Bot.join(Itv), Itv);
  EXPECT_EQ(Itv.join(Bot), Itv);
  EXPECT_TRUE(AbsValue::itv(Interval::bot()).isBot())
      << "empty interval normalizes to bottom";
  EXPECT_EQ(Bot.itvValue(), Interval::bot());
}

TEST(AbsValue, EnvOps) {
  AbsEnv E1;
  E1.set(1, Iv(0, 1));
  AbsEnv E2;
  E2.set(1, Iv(0, 5));
  AbsValue A = AbsValue::env(E1), B = AbsValue::env(E2);
  EXPECT_TRUE(A.leq(B));
  EXPECT_EQ(A.join(B), B);
  AbsValue W = A.widen(B);
  EXPECT_TRUE(W.envValue().get(1).hi().isPosInf());
  AbsValue N = W.narrow(B);
  EXPECT_EQ(N.envValue().get(1), Iv(0, 5));
  EXPECT_EQ(W.narrow(AbsValue::bot()), AbsValue::bot())
      << "narrowing to unreachable is legal";
}

} // namespace
