//===- tests/table1_shape_test.cpp - Table 1 shape guards -------------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Regression guards for the qualitative claims `bench_table1` reproduces:
// context growth, and the ⊟-vs-▽ divergence of encountered unknowns in
// both directions. Uses scaled-down profiles so the test stays fast.
//
//===----------------------------------------------------------------------===//

#include "analysis/interproc.h"
#include "lang/parser.h"
#include "workloads/spec_generator.h"

#include <gtest/gtest.h>

using namespace warrow;

namespace {

struct Measured {
  uint64_t Unknowns = 0;
  bool Converged = false;
};

struct Workload {
  std::unique_ptr<Program> P;
  ProgramCfg Cfgs;
};

Workload buildWorkload(SpecProfile Profile) {
  std::string Source = generateSpecProgram(Profile);
  DiagnosticEngine Diags;
  Workload W;
  W.P = parseProgram(Source, Diags);
  EXPECT_TRUE(W.P != nullptr) << Diags.str();
  W.Cfgs = buildProgramCfg(*W.P);
  return W;
}

Measured measure(const Workload &W, bool Context, SolverChoice Choice) {
  AnalysisOptions Options;
  Options.ContextSensitive = Context;
  InterprocAnalysis Analysis(*W.P, W.Cfgs, Options);
  AnalysisResult R = Analysis.run(Choice);
  return {R.NumUnknowns, R.Stats.Converged};
}

SpecProfile smallProfile(int Drift) {
  SpecProfile P;
  P.Name = "shape-test";
  P.NumFunctions = 40;
  P.LoopsPerFunction = 2;
  P.CallsPerFunction = 3;
  P.NumGlobals = 8;
  P.ContextVariants = 5;
  P.MaxCallDepth = 6;
  P.ContextDrift = Drift;
  P.Seed = 4242;
  return P;
}

TEST(TableOneShape, ContextMultipliesUnknowns) {
  Workload W = buildWorkload(smallProfile(0));
  Measured NoCtx = measure(W, false, SolverChoice::Warrow);
  Measured Ctx = measure(W, true, SolverChoice::Warrow);
  ASSERT_TRUE(NoCtx.Converged && Ctx.Converged);
  EXPECT_GT(Ctx.Unknowns, NoCtx.Unknowns);
  EXPECT_GT(Ctx.Unknowns, NoCtx.Unknowns * 3 / 2)
      << "five constant variants should multiply contexts noticeably";
}

TEST(TableOneShape, PositiveDriftGivesWarrowMoreUnknowns) {
  // Post-loop counters become constants only under ⊟ (the ▽-solver keeps
  // them unbounded), so ⊟ spawns extra constant contexts.
  Workload W = buildWorkload(smallProfile(+1));
  Measured Widen = measure(W, true, SolverChoice::WidenOnly);
  Measured Warrow = measure(W, true, SolverChoice::Warrow);
  ASSERT_TRUE(Widen.Converged && Warrow.Converged);
  EXPECT_GT(Warrow.Unknowns, Widen.Unknowns)
      << "the 456.hmmer/458.sjeng direction";
}

TEST(TableOneShape, NegativeDriftGivesWarrowFewerUnknowns) {
  // Calls guarded by narrowable globals are dead under ⊟ but reachable
  // under ▽.
  Workload W = buildWorkload(smallProfile(-1));
  Measured Widen = measure(W, true, SolverChoice::WidenOnly);
  Measured Warrow = measure(W, true, SolverChoice::Warrow);
  ASSERT_TRUE(Widen.Converged && Warrow.Converged);
  EXPECT_LT(Warrow.Unknowns, Widen.Unknowns) << "the 470.lbm direction";
}

TEST(TableOneShape, InsensitiveUnknownCountsMatchCfgSize) {
  // Context-insensitive: every backward-reachable program point appears
  // exactly once, plus the globals — the unknown count is bounded by
  // total CFG nodes + globals.
  Workload W = buildWorkload(smallProfile(0));
  Measured NoCtx = measure(W, false, SolverChoice::Warrow);
  ASSERT_TRUE(NoCtx.Converged);
  uint64_t UpperBound =
      W.Cfgs.totalNodes() + W.P->Globals.size();
  EXPECT_LE(NoCtx.Unknowns, UpperBound);
  EXPECT_GT(NoCtx.Unknowns, UpperBound / 2)
      << "most points should be explored";
}

} // namespace
