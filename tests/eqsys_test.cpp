//===- tests/eqsys_test.cpp - Equation-system layer tests -----------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "eqsys/dense_system.h"
#include "eqsys/local_system.h"
#include "lattice/interval.h"
#include "lattice/natinf.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace warrow;

namespace {

TEST(DenseSystemShape, VariablesAndNames) {
  DenseSystem<Interval> S;
  Var A = S.addVar("a");
  Var B = S.addVar("b", Interval::constant(7));
  EXPECT_EQ(S.size(), 2u);
  EXPECT_EQ(S.name(A), "a");
  EXPECT_EQ(S.name(B), "b");
  EXPECT_EQ(S.initial(A), Interval::bot());
  EXPECT_EQ(S.initial(B), Interval::constant(7));
  std::vector<Interval> Sigma = S.initialAssignment();
  EXPECT_EQ(Sigma[0], Interval::bot());
  EXPECT_EQ(Sigma[1], Interval::constant(7));
}

TEST(DenseSystemShape, InfluenceSetsIncludeSelf) {
  DenseSystem<Interval> S;
  Var A = S.addVar("a"), B = S.addVar("b"), C = S.addVar("c");
  auto Const = [](const DenseSystem<Interval>::GetFn &) {
    return Interval::constant(0);
  };
  S.define(A, Const, {B});     // A depends on B.
  S.define(B, Const, {B, C});  // B depends on itself and C.
  S.define(C, Const, {});
  // infl(B) = {A (reads B), B (self per the paper's precaution)}.
  std::vector<Var> InflB = S.influenced(B);
  EXPECT_TRUE(std::count(InflB.begin(), InflB.end(), A));
  EXPECT_TRUE(std::count(InflB.begin(), InflB.end(), B));
  EXPECT_FALSE(std::count(InflB.begin(), InflB.end(), C));
  // infl(C) = {B, C}.
  std::vector<Var> InflC = S.influenced(C);
  EXPECT_TRUE(std::count(InflC.begin(), InflC.end(), B));
  EXPECT_TRUE(std::count(InflC.begin(), InflC.end(), C));
  // Influence sets are sorted and duplicate-free.
  EXPECT_TRUE(std::is_sorted(InflB.begin(), InflB.end()));
  EXPECT_TRUE(std::adjacent_find(InflB.begin(), InflB.end()) ==
              InflB.end());
}

TEST(DenseSystemShape, InfluenceRebuildsAfterRedefinition) {
  DenseSystem<Interval> S;
  Var A = S.addVar("a"), B = S.addVar("b");
  auto Const = [](const DenseSystem<Interval>::GetFn &) {
    return Interval::constant(0);
  };
  S.define(A, Const, {B});
  S.define(B, Const, {});
  EXPECT_EQ(S.influenced(B).size(), 2u); // {A, B}.
  S.define(A, Const, {}); // A no longer reads B.
  std::vector<Var> InflB = S.influenced(B);
  EXPECT_EQ(InflB.size(), 1u);
  EXPECT_EQ(InflB[0], B);
}

TEST(DenseSystemShape, TheoremTwoN) {
  DenseSystem<Interval> S;
  Var A = S.addVar("a"), B = S.addVar("b");
  auto Const = [](const DenseSystem<Interval>::GetFn &) {
    return Interval::constant(0);
  };
  S.define(A, Const, {A, B});
  S.define(B, Const, {A});
  // N = sum over i of (2 + |dep_i|) = (2+2) + (2+1).
  EXPECT_EQ(S.theoremTwoN(), 7u);
}

TEST(LocalSystemShape, InitialDefaultsToBottom) {
  LocalSystem<int, NatInf> NoInit(
      [](int) -> LocalSystem<int, NatInf>::Rhs {
        return [](const LocalSystem<int, NatInf>::Get &) {
          return NatInf(1);
        };
      });
  EXPECT_EQ(NoInit.initial(42), NatInf::bot());

  LocalSystem<int, NatInf> WithInit(
      [](int) -> LocalSystem<int, NatInf>::Rhs {
        return [](const LocalSystem<int, NatInf>::Get &) {
          return NatInf(1);
        };
      },
      [](int X) { return NatInf(static_cast<uint64_t>(X)); });
  EXPECT_EQ(WithInit.initial(5), NatInf(5));
}

TEST(LocalSystemShape, PartialSolutionAccessors) {
  PartialSolution<int, NatInf> R;
  R.Sigma.emplace(1, NatInf(9));
  EXPECT_TRUE(R.inDomain(1));
  EXPECT_FALSE(R.inDomain(2));
  EXPECT_EQ(R.value(1), NatInf(9));
  EXPECT_EQ(R.value(2), NatInf::bot());
  EXPECT_EQ(R.value(2, NatInf::inf()), NatInf::inf());
}

TEST(SideEffectingShape, RhsReceivesBothCallbacks) {
  using Sys = SideEffectingSystem<int, NatInf>;
  Sys S([](int X) -> Sys::Rhs {
    return [X](const Sys::Get &Get, const Sys::Side &Side) {
      if (X == 0) {
        Side(1, NatInf(3));
        return Get(1);
      }
      return NatInf::bot();
    };
  });
  // Drive the rhs by hand: collect the side effect, feed a fixed get.
  int SideTarget = -1;
  NatInf SideValue;
  NatInf Out = S.rhs(0)(
      [](const int &) { return NatInf(7); },
      [&](const int &Y, const NatInf &V) {
        SideTarget = Y;
        SideValue = V;
      });
  EXPECT_EQ(Out, NatInf(7));
  EXPECT_EQ(SideTarget, 1);
  EXPECT_EQ(SideValue, NatInf(3));
}

} // namespace
