//===- tests/bounds_test.cpp - Bounds checker & zones backend ------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Known-answer tests for the bounds/assert checker over the directive-
// driven bounds suite, across the full configuration matrix
// {interval, zones} x {warrow, widen, two-phase, two-phase-localized,
// parallel-warrow}:
//
//  - every configuration reproduces the alarm count embedded in the
//    program's own `// EXPECT-ALARMS:` directives and passes the
//    independent side-effecting verifier,
//  - ⊟ never alarms more than the two-phase baseline, and on the
//    Fig.-7-style programs strictly less — per domain,
//  - the zones domain proves the difference-invariant programs that
//    intervals cannot, under every solver,
//  - parallel ⊟ over zones matches sequential alarms at every thread
//    count, with update-multiset equality on the side-effect-free
//    programs.
//
// Plus unit tests for the RelEnv transfer layer and the directive
// parser.
//
//===----------------------------------------------------------------------===//

#include "analysis/bounds.h"
#include "analysis/rel_env.h"
#include "lang/parser.h"
#include "trace/recorder.h"
#include "workloads/bounds_suite.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <tuple>

using namespace warrow;

namespace {

struct ParsedBench {
  std::unique_ptr<Program> P;
  ProgramCfg Cfgs;
  BoundsDirectives Directives;
};

ParsedBench parseBench(const BoundsBenchmark &B) {
  DiagnosticEngine Diags;
  ParsedBench PB;
  PB.P = parseProgram(B.Source, Diags);
  EXPECT_TRUE(PB.P != nullptr) << B.Name << ":\n" << Diags.str();
  if (PB.P)
    PB.Cfgs = buildProgramCfg(*PB.P);
  PB.Directives = parseBoundsDirectives(B.Source);
  return PB;
}

struct RunOutcome {
  std::unique_ptr<InterprocAnalysis> Analysis;
  AnalysisResult Result;
  BoundsReport Report;
};

RunOutcome runConfig(const Program &P, const ProgramCfg &Cfgs,
                     AnalysisDomain Domain, SolverChoice Choice,
                     unsigned Threads = 0, TraceSink *Trace = nullptr) {
  AnalysisOptions Options;
  Options.Domain = Domain;
  Options.Solver.Threads = Threads;
  Options.Solver.Trace = Trace;
  RunOutcome O;
  O.Analysis = std::make_unique<InterprocAnalysis>(P, Cfgs, Options);
  O.Result = O.Analysis->run(Choice);
  O.Report = runBoundsChecker(P, Cfgs, O.Result);
  return O;
}

/// The full analysis-capable solver set, by registry name.
const std::vector<std::string> &allSolvers() {
  static const std::vector<std::string> Solvers = {
      "warrow", "widen", "two-phase", "two-phase-localized",
      "parallel-warrow"};
  return Solvers;
}

const std::vector<AnalysisDomain> &bothDomains() {
  static const std::vector<AnalysisDomain> Domains = {
      AnalysisDomain::Interval, AnalysisDomain::Zones};
  return Domains;
}

std::vector<std::string> suiteNames() {
  std::vector<std::string> Names;
  for (const BoundsBenchmark &B : boundsSuite())
    Names.push_back(B.Name);
  return Names;
}

std::string caseName(const ::testing::TestParamInfo<std::string> &Info) {
  return Info.param;
}

/// Programs with no globals and no calls: their constraint systems are
/// side-effect free, so the parallel determinism contract extends to the
/// per-unknown update multiset.
bool isSideEffectFree(const std::string &Name) {
  return Name == "loop_exact" || Name == "off_by_one" ||
         Name == "diff_invariant" || Name == "diff_assert" ||
         Name == "assert_refines";
}

using UpdateKey = std::tuple<uint64_t, UpdateKind, bool, bool>;

std::map<UpdateKey, unsigned>
updateMultiset(const std::vector<TraceEvent> &Events) {
  std::map<UpdateKey, unsigned> M;
  for (const TraceEvent &E : Events)
    if (E.Kind == TraceEventKind::Update)
      ++M[{E.Unknown, E.UKind, E.Grew, E.Shrank}];
  return M;
}

class BoundsSuite : public ::testing::TestWithParam<std::string> {};

} // namespace

// Every configuration with a directive-known answer reproduces it
// exactly and passes the independent side-effecting verifier.
TEST_P(BoundsSuite, KnownAnswersAcrossConfigurations) {
  const BoundsBenchmark *B = findBoundsBenchmark(GetParam());
  ASSERT_TRUE(B != nullptr);
  ParsedBench PB = parseBench(*B);
  ASSERT_TRUE(PB.P != nullptr);
  ASSERT_FALSE(PB.Directives.ExpectedAlarms.empty())
      << B->Name << " has no EXPECT-ALARMS directives";

  const std::vector<std::string> &Solvers =
      PB.Directives.Solvers.empty() ? allSolvers() : PB.Directives.Solvers;
  for (AnalysisDomain Domain : bothDomains()) {
    for (const std::string &Solver : Solvers) {
      std::optional<uint64_t> Expected =
          PB.Directives.expectedFor(domainName(Domain), Solver);
      if (!Expected)
        continue;
      std::optional<SolverChoice> Choice = solverChoiceForName(Solver);
      ASSERT_TRUE(Choice.has_value()) << Solver;
      RunOutcome O = runConfig(*PB.P, PB.Cfgs, Domain, *Choice);
      std::string Tag = B->Name + " [" +
                        std::string(domainName(Domain)) + "/" + Solver +
                        "]";
      ASSERT_TRUE(O.Result.Stats.Converged) << Tag;
      EXPECT_EQ(O.Report.alarms(), *Expected) << Tag << "\nfindings:\n"
                                              << [&] {
                                                   std::string S;
                                                   for (const auto &F :
                                                        O.Report.Findings)
                                                     S += F.str(*PB.P) + "\n";
                                                   return S;
                                                 }();
      VerifyResult V = O.Analysis->verifySolution(O.Result);
      EXPECT_TRUE(V.Ok) << Tag << ": " << V.str();
    }
  }
}

// Per domain: ⊟ alarms <= two-phase alarms on every program, with the
// strict Fig.-7 gap on at least two programs.
TEST(BoundsPrecision, WarrowNeverWorseThanTwoPhaseAndStrictlyBetterTwice) {
  for (AnalysisDomain Domain : bothDomains()) {
    unsigned StrictlyFewer = 0;
    for (const BoundsBenchmark &B : boundsSuite()) {
      ParsedBench PB = parseBench(B);
      ASSERT_TRUE(PB.P != nullptr);
      RunOutcome Warrow =
          runConfig(*PB.P, PB.Cfgs, Domain, SolverChoice::Warrow);
      RunOutcome TwoPhase =
          runConfig(*PB.P, PB.Cfgs, Domain, SolverChoice::TwoPhase);
      ASSERT_TRUE(Warrow.Result.Stats.Converged) << B.Name;
      ASSERT_TRUE(TwoPhase.Result.Stats.Converged) << B.Name;
      EXPECT_LE(Warrow.Report.alarms(), TwoPhase.Report.alarms())
          << B.Name << " under " << domainName(Domain)
          << ": ⊟ must never alarm more than two-phase";
      if (Warrow.Report.alarms() < TwoPhase.Report.alarms())
        ++StrictlyFewer;
    }
    EXPECT_GE(StrictlyFewer, 2u)
        << domainName(Domain)
        << ": expected the frozen-globals gap on at least two programs";
  }
}

// The zones backend dominates intervals alarm-wise on this suite (its
// fallback evaluation is the interval one), and proves the difference-
// invariant programs intervals cannot, under every solver.
TEST(BoundsPrecision, ZonesDominateIntervalsOnSuite) {
  for (const BoundsBenchmark &B : boundsSuite()) {
    ParsedBench PB = parseBench(B);
    ASSERT_TRUE(PB.P != nullptr);
    for (const std::string &Solver : allSolvers()) {
      std::optional<SolverChoice> Choice = solverChoiceForName(Solver);
      ASSERT_TRUE(Choice.has_value());
      RunOutcome Itv =
          runConfig(*PB.P, PB.Cfgs, AnalysisDomain::Interval, *Choice);
      RunOutcome Zon =
          runConfig(*PB.P, PB.Cfgs, AnalysisDomain::Zones, *Choice);
      ASSERT_TRUE(Itv.Result.Stats.Converged) << B.Name << "/" << Solver;
      ASSERT_TRUE(Zon.Result.Stats.Converged) << B.Name << "/" << Solver;
      EXPECT_LE(Zon.Report.alarms(), Itv.Report.alarms())
          << B.Name << "/" << Solver;
    }
  }
}

// Parallel ⊟ over zones: alarms match sequential at every thread count,
// every run verifies, and on side-effect-free programs the per-unknown
// update multiset replays sequential SLR+ exactly.
TEST_P(BoundsSuite, ParallelWarrowZonesMatchesSequential) {
  const BoundsBenchmark *B = findBoundsBenchmark(GetParam());
  ASSERT_TRUE(B != nullptr);
  ParsedBench PB = parseBench(*B);
  ASSERT_TRUE(PB.P != nullptr);

  BufferedTraceRecorder SeqRecorder(/*CaptureTimestamps=*/false);
  RunOutcome Seq = runConfig(*PB.P, PB.Cfgs, AnalysisDomain::Zones,
                             SolverChoice::Warrow, 0, &SeqRecorder);
  ASSERT_TRUE(Seq.Result.Stats.Converged);
  std::map<UpdateKey, unsigned> Expected =
      updateMultiset(SeqRecorder.events());

  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    BufferedTraceRecorder Recorder(/*CaptureTimestamps=*/false);
    RunOutcome Par =
        runConfig(*PB.P, PB.Cfgs, AnalysisDomain::Zones,
                  SolverChoice::ParallelWarrow, Threads, &Recorder);
    ASSERT_TRUE(Par.Result.Stats.Converged) << "threads=" << Threads;
    EXPECT_EQ(Par.Report.alarms(), Seq.Report.alarms())
        << "threads=" << Threads;
    VerifyResult V = Par.Analysis->verifySolution(Par.Result);
    EXPECT_TRUE(V.Ok) << "threads=" << Threads << ": " << V.str();
    if (isSideEffectFree(B->Name))
      EXPECT_EQ(updateMultiset(Recorder.events()), Expected)
          << "threads=" << Threads
          << ": zones update multiset diverges from sequential SLR+";
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BoundsSuite,
                         ::testing::ValuesIn(suiteNames()), caseName);

// --- directive parser -----------------------------------------------------

TEST(BoundsDirectivesTest, ParsesKeysAndSolvers) {
  BoundsDirectives D = parseBoundsDirectives(
      "// EXPECT-ALARMS: * 3\n"
      "// EXPECT-ALARMS: zones/* 1\n"
      "// EXPECT-ALARMS: zones/warrow 0\n"
      "// EXPECT-ALARMS: */two-phase 2\n"
      "// SOLVER: warrow\n"
      "// SOLVER: two-phase\n"
      "int main() { return 0; }\n");
  ASSERT_EQ(D.ExpectedAlarms.size(), 4u);
  ASSERT_EQ(D.Solvers.size(), 2u);
  EXPECT_EQ(D.Solvers[0], "warrow");
  // Most specific key wins.
  EXPECT_EQ(D.expectedFor("zones", "warrow"), 0u);
  EXPECT_EQ(D.expectedFor("zones", "widen"), 1u);
  EXPECT_EQ(D.expectedFor("interval", "two-phase"), 2u);
  EXPECT_EQ(D.expectedFor("interval", "widen"), 3u);
}

TEST(BoundsDirectivesTest, RejectsMalformedAsHardErrors) {
  // Malformed directive lines used to be silently dropped, so a typoed
  // key could make an expectation pass vacuously. They are hard parse
  // errors now, each carrying the offending line number.
  BoundsDirectives D = parseBoundsDirectives(
      "// EXPECT-ALARMS: zones/warrow\n" // missing count
      "// EXPECT-ALARMS:\n"
      "// SOLVER:\n"
      "int main() { return 0; }\n");
  EXPECT_TRUE(D.ExpectedAlarms.empty());
  EXPECT_TRUE(D.Solvers.empty());
  EXPECT_EQ(D.expectedFor("zones", "warrow"), std::nullopt);
  ASSERT_EQ(D.Errors.size(), 3u);
  EXPECT_NE(D.Errors[0].find("line 1"), std::string::npos) << D.Errors[0];
  EXPECT_NE(D.Errors[1].find("line 2"), std::string::npos) << D.Errors[1];
  EXPECT_NE(D.Errors[2].find("line 3"), std::string::npos) << D.Errors[2];
}

TEST(BoundsDirectivesTest, RejectsUnknownDirectiveKeys) {
  // An unrecognized EXPECT-*/SOLVER-flavored key is a typo, not prose.
  BoundsDirectives D = parseBoundsDirectives(
      "// EXPECT-ALARM: * 1\n" // singular: typo of EXPECT-ALARMS
      "// SOLVERS: warrow\n"
      "int main() { return 0; }\n");
  EXPECT_TRUE(D.ExpectedAlarms.empty());
  ASSERT_EQ(D.Errors.size(), 2u);
  EXPECT_NE(D.Errors[0].find("EXPECT-ALARM"), std::string::npos)
      << D.Errors[0];
  EXPECT_NE(D.Errors[1].find("SOLVERS"), std::string::npos) << D.Errors[1];
}

TEST(BoundsDirectivesTest, SuiteProgramsAllParseClean) {
  // Every on-disk suite program carries at least one directive, and its
  // header survives the strict parser without diagnostics.
  for (const BoundsBenchmark &B : boundsSuite()) {
    BoundsDirectives D = parseBoundsDirectives(B.Source);
    EXPECT_FALSE(D.ExpectedAlarms.empty()) << B.Name;
    EXPECT_TRUE(D.Errors.empty())
        << B.Name << ": " << (D.Errors.empty() ? "" : D.Errors.front());
  }
}

// --- RelEnv transfer layer ------------------------------------------------

namespace {

struct RelFixture {
  Interner Symbols;
  Symbol X, Y, Z;
  RelFixture()
      : X(Symbols.intern("x")), Y(Symbols.intern("y")),
        Z(Symbols.intern("z")) {}
};

} // namespace

TEST(RelEnvTest, SetGetForgetRoundTrip) {
  RelFixture F;
  RelEnv E;
  EXPECT_TRUE(E.isTop());
  EXPECT_TRUE(E.get(F.X).isTop());
  E.set(F.X, Interval::make(1, 5));
  EXPECT_EQ(E.get(F.X), Interval::make(1, 5));
  EXPECT_TRUE(E.get(F.Y).isTop());
  E.forget(F.X);
  EXPECT_TRUE(E.get(F.X).isTop());
}

TEST(RelEnvTest, AssignDiffTracksRelationThroughShift) {
  RelFixture F;
  RelEnv E;
  E.set(F.X, Interval::make(0, 10));
  E.assignDiff(F.Y, F.X, 3); // y = x + 3
  EXPECT_EQ(E.diffBounds(F.Y, F.X), Interval::constant(3));
  EXPECT_EQ(E.get(F.Y), Interval::make(3, 13));
  E.assignShift(F.X, 1); // x = x + 1
  EXPECT_EQ(E.diffBounds(F.Y, F.X), Interval::constant(2));
  E.assignShift(F.Y, 1); // y = y + 1
  EXPECT_EQ(E.diffBounds(F.Y, F.X), Interval::constant(3));
  // Reassigning y breaks the exact relation; what remains is only the
  // difference the closure derives from the unary bounds.
  E.set(F.Y, Interval::make(0, 1));
  EXPECT_EQ(E.diffBounds(F.Y, F.X), Interval::make(-11, 0));
}

TEST(RelEnvTest, ConstrainDiffPropagatesToUnaryBounds) {
  RelFixture F;
  RelEnv E;
  E.set(F.X, Interval::make(0, 4));
  ASSERT_TRUE(E.constrainDiff(F.Y, F.X, Bound(0)));  // y - x <= 0
  ASSERT_TRUE(E.constrainDiff(F.Z, F.Y, Bound(-1))); // z - y <= -1
  ASSERT_TRUE(E.constrainVar(F.Z, Interval::make(0, 100)));
  // z <= y - 1 <= x - 1 <= 3, via the closure.
  EXPECT_TRUE(E.get(F.Z).leq(Interval::make(0, 3)));
  // Infeasible tightening reports false. (x = 1 forces z = 0, y = 1.)
  RelEnv G = E;
  ASSERT_TRUE(G.constrainVar(F.X, Interval::constant(1)));
  EXPECT_FALSE(G.constrainDiff(F.X, F.Z, Bound(-1))); // x <= z - 1 = -1
}

TEST(RelEnvTest, LatticeOpsOverDifferingVarSets) {
  RelFixture F;
  RelEnv A;
  A.set(F.X, Interval::make(0, 5));
  RelEnv B;
  B.set(F.Y, Interval::make(1, 2));
  // A constrains x only, B constrains y only; both embed into {x, y}.
  EXPECT_FALSE(A.leq(B));
  EXPECT_FALSE(B.leq(A));
  RelEnv J = A.join(B);
  EXPECT_TRUE(A.leq(J));
  EXPECT_TRUE(B.leq(J));
  EXPECT_TRUE(J.get(F.X).isTop()) << "x unconstrained in B";
  EXPECT_TRUE(J.get(F.Y).isTop()) << "y unconstrained in A";
  EXPECT_TRUE(J.isTop());
  RelEnv Top;
  EXPECT_TRUE(A.leq(Top));
  EXPECT_FALSE(Top.leq(A));
}

TEST(RelEnvTest, WidenDropsUnstableKeepsStable) {
  RelFixture F;
  RelEnv A;
  A.set(F.X, Interval::make(0, 0));
  A.assignDiff(F.Y, F.X, 3);
  RelEnv B;
  B.set(F.X, Interval::make(0, 1));
  B.assignDiff(F.Y, F.X, 3);
  RelEnv W = A.widen(A.join(B));
  EXPECT_EQ(W.diffBounds(F.Y, F.X), Interval::constant(3))
      << "stable difference must survive widening";
  EXPECT_TRUE(W.get(F.X).hi().isPosInf())
      << "unstable upper bound must widen: " << W.str(F.Symbols);
  EXPECT_EQ(W.get(F.X).lo(), Bound(0));
  // Narrowing recovers the dropped bound from the (smaller) refinement.
  RelEnv N = W.narrow(B);
  EXPECT_EQ(N.get(F.X), Interval::make(0, 1));
  EXPECT_EQ(N.diffBounds(F.Y, F.X), Interval::constant(3));
}

TEST(RelEnvTest, FreezeInternsStructurally) {
  RelFixture F;
  RelEnv A;
  A.set(F.X, Interval::make(0, 5));
  A.assignDiff(F.Y, F.X, 1);
  RelEnv B;
  B.set(F.X, Interval::make(0, 5));
  B.assignDiff(F.Y, F.X, 1);
  A.freeze();
  B.freeze();
  EXPECT_TRUE(A.isFrozen());
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.nodeId(), B.nodeId())
      << "equal environments must intern to one node";
  // Frozen handles are COW: mutating B leaves A untouched.
  B.set(F.X, Interval::make(1, 2));
  EXPECT_EQ(A.get(F.X), Interval::make(0, 5));
}

TEST(RelEnvTest, StrNamesConstraints) {
  RelFixture F;
  RelEnv E;
  E.set(F.X, Interval::make(0, 5));
  std::string S = E.str(F.Symbols);
  EXPECT_NE(S.find("x"), std::string::npos) << S;
  EXPECT_EQ(RelEnv().str(F.Symbols), "{}");
}
