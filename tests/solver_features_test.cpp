//===- tests/solver_features_test.cpp - Newer solver feature tests --------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Tests for the solver-layer extensions: worklist extraction disciplines,
// localized widening in SLR+, and local-solver trace recording.
//
//===----------------------------------------------------------------------===//

#include "analysis/interproc.h"
#include "analysis/precision.h"
#include "lang/parser.h"
#include "lattice/combine.h"
#include "solvers/slr_plus.h"
#include "solvers/wl.h"
#include "workloads/eq_generators.h"
#include "workloads/wcet_suite.h"

#include <gtest/gtest.h>

using namespace warrow;

namespace {

Interval Iv(int64_t Lo, int64_t Hi) { return Interval::make(Lo, Hi); }

TEST(WorklistDisciplines, BothReachTheSameLeastFixpoint) {
  DenseSystem<Interval> S = randomMonotoneSystem(30, 3, 100, 5);
  SolveResult<Interval> Lifo =
      solveW(S, JoinCombine{}, {}, WorklistDiscipline::Lifo);
  SolveResult<Interval> Fifo =
      solveW(S, JoinCombine{}, {}, WorklistDiscipline::Fifo);
  ASSERT_TRUE(Lifo.Stats.Converged && Fifo.Stats.Converged);
  for (Var X = 0; X < S.size(); ++X)
    EXPECT_EQ(Lifo.Sigma[X], Fifo.Sigma[X]) << "var " << X;
}

TEST(WorklistDisciplines, WorkDiffersBetweenDisciplines) {
  DenseSystem<Interval> S = chainSystem(64, 64);
  SolveResult<Interval> Lifo =
      solveW(S, JoinCombine{}, {}, WorklistDiscipline::Lifo);
  SolveResult<Interval> Fifo =
      solveW(S, JoinCombine{}, {}, WorklistDiscipline::Fifo);
  ASSERT_TRUE(Lifo.Stats.Converged && Fifo.Stats.Converged);
  // On a forward chain initialized front-first, FIFO propagates in one
  // sweep; LIFO (which pops variable 0 first, then re-pushes) does too —
  // the counts need not be equal, but both must be linear-ish.
  EXPECT_LE(Lifo.Stats.RhsEvals, 64u * 8u);
  EXPECT_LE(Fifo.Stats.RhsEvals, 64u * 8u);
}

TEST(WorklistDisciplines, TerminationUnderWarrowIsDisciplineDependent) {
  // The paper's Example 2 diverges under the LIFO discipline; the FIFO
  // discipline happens to terminate on this system. That fragility is
  // Section 4's motivation: plain worklist termination under ⊟ depends on
  // scheduling accidents, whereas the structured solvers are guaranteed.
  DenseSystem<NatInf> S = paperExampleTwo();
  SolverOptions Options;
  Options.MaxRhsEvals = 5000;
  SolveResult<NatInf> Lifo =
      solveW(S, WarrowCombine{}, Options, WorklistDiscipline::Lifo);
  EXPECT_FALSE(Lifo.Stats.Converged) << "the paper's divergence";
  SolveResult<NatInf> Fifo =
      solveW(S, WarrowCombine{}, Options, WorklistDiscipline::Fifo);
  EXPECT_TRUE(Fifo.Stats.Converged)
      << "FIFO happens to terminate on this system";
  // Whatever terminates must still be a post solution (Lemma 1).
  auto Get = [&Fifo](Var Y) { return Fifo.Sigma[Y]; };
  for (Var X = 0; X < S.size(); ++X)
    EXPECT_TRUE(S.eval(X, Get).leq(Fifo.Sigma[X]));
}

TEST(LocalizedWidening, DetectsWideningPointsOnCycles) {
  // A three-unknown chain with one cycle: only the cycle unknowns become
  // widening points.
  using Sys = SideEffectingSystem<int, Interval>;
  Sys S([](int X) -> Sys::Rhs {
    switch (X) {
    case 0: // Root, reads the loop head.
      return [](const Sys::Get &Get, const Sys::Side &) { return Get(1); };
    case 1: // Loop head: cycle through 2.
      return [](const Sys::Get &Get, const Sys::Side &) {
        return Interval::constant(0).join(
            Get(2).add(Interval::constant(1)).meet(Iv(0, 9)));
      };
    default: // Loop body.
      return [](const Sys::Get &Get, const Sys::Side &) { return Get(1); };
    }
  });
  SlrPlusSolver<int, Interval, WarrowCombine> Solver(
      S, WarrowCombine{}, {}, /*LocalizedCombine=*/true);
  PartialSolution<int, Interval> R = Solver.solveFor(0);
  ASSERT_TRUE(R.Stats.Converged);
  EXPECT_EQ(R.value(0), Iv(0, 9));
  EXPECT_EQ(R.value(1), Iv(0, 9));
  EXPECT_FALSE(Solver.wideningPoints().count(0))
      << "the acyclic root is not a widening point";
  EXPECT_TRUE(Solver.wideningPoints().count(1) ||
              Solver.wideningPoints().count(2))
      << "some unknown on the cycle is a widening point";
}

TEST(LocalizedWidening, NeverLosesToEverywhereOnSuitePrograms) {
  for (const char *Name : {"bs", "expint", "select"}) {
    DiagnosticEngine Diags;
    auto P = parseProgram(findWcetBenchmark(Name)->Source, Diags);
    ASSERT_TRUE(P != nullptr) << Diags.str();
    ProgramCfg Cfgs = buildProgramCfg(*P);

    AnalysisOptions Everywhere;
    InterprocAnalysis A1(*P, Cfgs, Everywhere);
    AnalysisResult Every = A1.run(SolverChoice::Warrow);

    AnalysisOptions Loc;
    Loc.LocalizedWidening = true;
    InterprocAnalysis A2(*P, Cfgs, Loc);
    AnalysisResult Localized = A2.run(SolverChoice::Warrow);

    ASSERT_TRUE(Every.Stats.Converged && Localized.Stats.Converged);
    PrecisionComparison Cmp =
        comparePrecision(Localized.Solution, Every.Solution);
    EXPECT_EQ(Cmp.Worse, 0u) << Name << ": " << Cmp.str();
  }
}

TEST(Traces, SlrPlusRecordsUpdates) {
  using Sys = SideEffectingSystem<int, Interval>;
  Sys S([](int X) -> Sys::Rhs {
    if (X == 0)
      return [](const Sys::Get &Get, const Sys::Side &) {
        return Interval::constant(0).join(
            Get(0).add(Interval::constant(1)).meet(Iv(0, 5)));
      };
    return [](const Sys::Get &, const Sys::Side &) {
      return Interval::bot();
    };
  });
  SolverOptions Options;
  Options.RecordTrace = true;
  PartialSolution<int, Interval> R =
      solveSLRPlus(S, 0, WarrowCombine{}, Options);
  ASSERT_TRUE(R.Stats.Converged);
  ASSERT_FALSE(R.Trace.empty());
  EXPECT_EQ(R.Trace.size(), R.Stats.Updates);
  // The last recorded update carries the final value.
  EXPECT_EQ(R.Trace.back().second, R.value(0));
}

TEST(Degrading, AnalysisTerminatesOnSelfFeedingGlobal) {
  // A global whose contribution depends on itself through an offset — the
  // pattern that makes pure ⊟ alternate forever on side-effecting systems
  // (contributions are stale samples, so the effective system is
  // non-monotonic). The analysis's degrading ⊟ must terminate.
  DiagnosticEngine Diags;
  auto P = parseProgram(R"(
    int g = 0;
    int main() {
      int turns = 0;
      while (turns < 100) {
        int cur = g;
        if (cur < 50)
          g = cur + 7;
        turns = turns + 1;
      }
      return g;
    }
  )",
                        Diags);
  ASSERT_TRUE(P != nullptr) << Diags.str();
  ProgramCfg Cfgs = buildProgramCfg(*P);
  AnalysisOptions Options;
  Options.Solver.MaxRhsEvals = 2'000'000;
  InterprocAnalysis Analysis(*P, Cfgs, Options);
  AnalysisResult R = Analysis.run(SolverChoice::Warrow);
  EXPECT_TRUE(R.Stats.Converged);
  Interval G = R.globalValue(P->Symbols.lookup("g"));
  EXPECT_TRUE(G.contains(0));
  EXPECT_TRUE(G.contains(56)) << "g reaches at least 49+7, got " << G.str();
}

} // namespace
