//===- tests/corpus_test.cpp - Corpus runner & directive tests -----------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the directive-driven corpus stack (corpus/directives.h,
/// corpus/corpus.h):
///
///  - strictness of the directive parser: every malformed-header shape
///    (unknown key, bad interval syntax, duplicate EXPECT-ALARMS cell,
///    directive after the first non-comment line, ...) is a hard error
///    with a file:line diagnostic;
///  - the on-disk corpus loader (discovery, duplicate-stem rejection,
///    cross-directive validation);
///  - the differential precision test: every corpus program, solved by
///    every sequential narrowing strategy, yields a σ pointwise ≤ the
///    two-phase baseline's, while the widening-only solver (no
///    narrowing phase at all) stays pointwise ≥ it — and every
///    sequential solver's alarm count matches the file's directives.
///    Failures name the offending file and matrix cell so a single
///    `warrow-corpus --only=<file> --cell=<cell>` reproduces them.
///
//===----------------------------------------------------------------------===//

#include "corpus/corpus.h"

#include "analysis/bounds.h"
#include "analysis/interproc.h"
#include "analysis/races.h"
#include "engine/registry.h"
#include "lang/parser.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

using namespace warrow;
using namespace warrow::corpus;

namespace {

ParsedDirectives parse(const std::string &Source) {
  return parseCorpusDirectives(Source);
}

/// All diagnostics of \p P joined into one string (for substring
/// assertions on failure messages).
std::string diagsOf(const ParsedDirectives &P) { return P.str("<mem>"); }

// --- parser: the full grammar round-trips ---------------------------------

TEST(CorpusDirectivesTest, ParsesFullGrammar) {
  ParsedDirectives P = parse(
      "// KIND: bounds\n"
      "// DOMAIN: interval\n"
      "// DOMAIN: zones\n"
      "// SOLVER: warrow\n"
      "// SOLVER: two-phase\n"
      "// EXPECT-ALARMS: * 2\n"
      "// EXPECT-ALARMS: zones/warrow 0\n"
      "// EXPECT-INV: */warrow main:exit i [10,10]\n"
      "// EXPECT-INV: main:7 g [-inf,5]\n"
      "// EXPECT-REL: zones/* loop:exit j-i<=3\n"
      "// EXPECT-EXIT: 9\n"
      "// MAX-RHS-EVALS: 1000\n"
      "// INPUT: 1 -2 3\n"
      "int main() { return 9; }\n");
  ASSERT_TRUE(P.ok()) << diagsOf(P);
  const CorpusDirectives &D = P.D;
  EXPECT_EQ(D.Kind, CorpusKind::Bounds);
  EXPECT_EQ(D.Domains, (std::vector<std::string>{"interval", "zones"}));
  EXPECT_EQ(D.Solvers, (std::vector<std::string>{"warrow", "two-phase"}));
  EXPECT_EQ(D.expectedAlarmsFor("zones", "warrow"), 0u);
  EXPECT_EQ(D.expectedAlarmsFor("interval", "widen"), 2u);

  ASSERT_EQ(D.Invariants.size(), 2u);
  EXPECT_EQ(D.Invariants[0].Cell, "*/warrow");
  EXPECT_EQ(D.Invariants[0].Func, "main");
  EXPECT_TRUE(D.Invariants[0].AtExit);
  EXPECT_EQ(D.Invariants[0].Var, "i");
  EXPECT_EQ(D.Invariants[0].Box, Interval::make(10, 10));
  EXPECT_EQ(D.Invariants[1].Cell, "*/*"); // No cell prefix: all cells.
  EXPECT_EQ(D.Invariants[1].LabelLine, 7u);
  EXPECT_EQ(D.Invariants[1].Box,
            Interval::make(Bound::negInf(), Bound(5)));

  ASSERT_EQ(D.Relations.size(), 1u);
  EXPECT_EQ(D.Relations[0].Func, "loop");
  EXPECT_EQ(D.Relations[0].Lhs, "j");
  EXPECT_EQ(D.Relations[0].Rhs, "i");
  EXPECT_EQ(D.Relations[0].C, 3);

  EXPECT_EQ(D.ExpectedExit, 9);
  EXPECT_EQ(D.MaxRhsEvals, 1000u);
  EXPECT_EQ(D.Inputs, (std::vector<int64_t>{1, -2, 3}));
}

TEST(CorpusDirectivesTest, ProseCommentsAreNotDirectives) {
  // Ordinary header prose — no UPPERCASE-KEY: shape — parses clean.
  ParsedDirectives P = parse(
      "// the loop narrows i back to [10,10] after widening overshoots.\n"
      "// EXPECT-ALARMS: * 0\n"
      "int main() { return 0; }\n");
  EXPECT_TRUE(P.ok()) << diagsOf(P);
  EXPECT_EQ(P.D.ExpectedAlarms.size(), 1u);
}

// --- parser: every malformed shape is a hard error ------------------------

TEST(CorpusDirectivesTest, RejectsUnknownDirectiveKey) {
  ParsedDirectives P = parse(
      "// EXPECT-ALARM: * 1\n" // Singular: a typo of EXPECT-ALARMS.
      "int main() { return 0; }\n");
  ASSERT_EQ(P.Errors.size(), 1u);
  EXPECT_EQ(P.Errors[0].Line, 1u);
  EXPECT_NE(P.Errors[0].Message.find("EXPECT-ALARM"), std::string::npos)
      << P.Errors[0].Message;
  EXPECT_TRUE(P.D.ExpectedAlarms.empty());
}

TEST(CorpusDirectivesTest, RejectsBadIntervalSyntax) {
  for (const char *Bad : {"[5,2]",   // Empty interval (lo > hi).
                          "[a,b]",   // Non-numeric bounds.
                          "10,10",   // Missing brackets.
                          "[10,10",  // Unclosed.
                          "[+inf,3]" // lo = +inf is empty.
       }) {
    ParsedDirectives P = parse(std::string("// EXPECT-INV: main:exit i ") +
                               Bad + "\nint main() { return 0; }\n");
    EXPECT_FALSE(P.ok()) << "accepted bad interval: " << Bad;
    EXPECT_TRUE(P.D.Invariants.empty()) << Bad;
  }
}

TEST(CorpusDirectivesTest, RejectsDuplicateAlarmsCell) {
  ParsedDirectives P = parse(
      "// EXPECT-ALARMS: zones/warrow 0\n"
      "// EXPECT-ALARMS: zones/warrow 1\n"
      "int main() { return 0; }\n");
  ASSERT_EQ(P.Errors.size(), 1u);
  EXPECT_EQ(P.Errors[0].Line, 2u);
  EXPECT_NE(P.Errors[0].Message.find("zones/warrow"), std::string::npos)
      << P.Errors[0].Message;
}

TEST(CorpusDirectivesTest, RejectsDirectiveAfterCode) {
  ParsedDirectives P = parse(
      "// EXPECT-ALARMS: * 0\n"
      "int main() {\n"
      "  // EXPECT-EXIT: 0\n"
      "  return 0;\n"
      "}\n");
  ASSERT_EQ(P.Errors.size(), 1u);
  EXPECT_EQ(P.Errors[0].Line, 3u);
  EXPECT_NE(P.Errors[0].Message.find("non-comment"), std::string::npos)
      << P.Errors[0].Message;
}

TEST(CorpusDirectivesTest, RejectsDuplicateSingletonDirectives) {
  for (const char *Dup :
       {"// KIND: bounds\n// KIND: races\n",
        "// EXPECT-EXIT: 1\n// EXPECT-EXIT: 2\n",
        "// MAX-RHS-EVALS: 10\n// MAX-RHS-EVALS: 20\n",
        "// DOMAIN: zones\n// DOMAIN: zones\n",
        "// SOLVER: warrow\n// SOLVER: warrow\n",
        "// EXPECT-RACES: none\n// EXPECT-RACES: g\n"}) {
    ParsedDirectives P =
        parse(std::string(Dup) + "int main() { return 0; }\n");
    ASSERT_EQ(P.Errors.size(), 1u) << Dup << diagsOf(P);
    EXPECT_EQ(P.Errors[0].Line, 2u) << Dup;
  }
}

TEST(CorpusDirectivesTest, RejectsArityAndValueErrors) {
  for (const char *Bad : {
           "// EXPECT-ALARMS: zones/warrow\n",     // Missing count.
           "// EXPECT-ALARMS: * 1 trailing\n",     // Trailing token.
           "// EXPECT-ALARMS: * -1\n",             // Negative count.
           "// EXPECT-ALARMS: dbm/warrow 1\n",     // Unknown domain.
           "// KIND: typestate\n",                 // Unknown kind.
           "// SOLVER:\n",                         // Empty value.
           "// EXPECT-EXIT: soon\n",               // Non-numeric.
           "// INPUT: 1 two 3\n",                  // Non-numeric item.
           "// EXPECT-INV: main:exit [1,2]\n",     // Missing variable.
           "// EXPECT-REL: main:exit j-i<3\n",     // Not <=.
           "// EXPECT-INV: nowhere i [1,2]\n",     // Label without ':'.
       }) {
    ParsedDirectives P =
        parse(std::string(Bad) + "int main() { return 0; }\n");
    EXPECT_FALSE(P.ok()) << "accepted: " << Bad;
  }
}

TEST(CorpusDirectivesTest, DiagnosticsNameFileAndLine) {
  ParsedDirectives P = parse(
      "// EXPECT-ALARMS: * 0\n"
      "// EXPECT-BOGUS: 1\n"
      "int main() { return 0; }\n");
  ASSERT_FALSE(P.ok());
  EXPECT_NE(P.str("tests/corpus/x.mc").find("tests/corpus/x.mc:2: "),
            std::string::npos)
      << P.str("tests/corpus/x.mc");
}

TEST(CorpusDirectivesTest, CellMatchingAndSpecificity) {
  EXPECT_TRUE(CorpusDirectives::cellMatches("*/*", "zones", "warrow"));
  EXPECT_TRUE(CorpusDirectives::cellMatches("zones/*", "zones", "widen"));
  EXPECT_FALSE(
      CorpusDirectives::cellMatches("zones/*", "interval", "widen"));
  EXPECT_TRUE(CorpusDirectives::cellMatches("*/warrow", "zones", "warrow"));
  EXPECT_FALSE(
      CorpusDirectives::cellMatches("*/warrow", "zones", "two-phase"));

  CorpusDirectives D;
  D.ExpectedAlarms = {{"*/*", 3}, {"zones/*", 1}, {"zones/warrow", 0}};
  EXPECT_EQ(D.expectedAlarmsFor("zones", "warrow"), 0u);
  EXPECT_EQ(D.expectedAlarmsFor("zones", "widen"), 1u);
  EXPECT_EQ(D.expectedAlarmsFor("interval", "warrow"), 3u);
}

// --- loader ---------------------------------------------------------------

TEST(CorpusLoaderTest, LoadsTheFullCorpus) {
  std::string Err;
  std::vector<CorpusFile> Files = loadCorpus(corpusRoot(), Err);
  EXPECT_TRUE(Err.empty()) << Err;
  // The migrated seed: 8 bounds + 9 races programs, and growing.
  EXPECT_GE(Files.size(), 17u);
  // Sorted, unique names; every file has an expectation to check.
  for (size_t I = 0; I < Files.size(); ++I) {
    if (I)
      EXPECT_LT(Files[I - 1].Name, Files[I].Name);
    EXPECT_FALSE(Files[I].D.ExpectedAlarms.empty()) << Files[I].Name;
  }
}

TEST(CorpusLoaderTest, RejectsMalformedFilesAtLoadTime) {
  std::filesystem::path Dir =
      std::filesystem::path(::testing::TempDir()) / "warrow_bad_corpus";
  std::filesystem::create_directories(Dir);
  {
    std::ofstream Out(Dir / "typo.mc");
    Out << "// EXPECT-ALARM: * 1\nint main() { return 0; }\n";
  }
  std::string Err;
  std::vector<CorpusFile> Files = loadCorpus(Dir.string(), Err);
  EXPECT_TRUE(Files.empty());
  EXPECT_NE(Err.find("typo.mc:1"), std::string::npos) << Err;
  std::filesystem::remove_all(Dir);
}

TEST(CorpusLoaderTest, RejectsDuplicateProgramNames) {
  std::filesystem::path Dir =
      std::filesystem::path(::testing::TempDir()) / "warrow_dup_corpus";
  std::filesystem::create_directories(Dir / "a");
  std::filesystem::create_directories(Dir / "b");
  for (const char *Sub : {"a", "b"}) {
    std::ofstream Out(Dir / Sub / "same.mc");
    Out << "// EXPECT-ALARMS: * 0\nint main() { return 0; }\n";
  }
  std::string Err;
  loadCorpus(Dir.string(), Err);
  EXPECT_NE(Err.find("duplicate corpus program name 'same'"),
            std::string::npos)
      << Err;
  std::filesystem::remove_all(Dir);
}

TEST(CorpusLoaderTest, RejectsUnknownSolverAndRacesZones) {
  std::filesystem::path Dir =
      std::filesystem::path(::testing::TempDir()) / "warrow_xval_corpus";
  std::filesystem::create_directories(Dir);
  {
    std::ofstream Out(Dir / "badsolver.mc");
    Out << "// SOLVER: kleene\n// EXPECT-ALARMS: * 0\n"
           "int main() { return 0; }\n";
  }
  {
    std::ofstream Out(Dir / "raceszones.mc");
    Out << "// KIND: races\n// DOMAIN: zones\n// EXPECT-ALARMS: * 0\n"
           "int main() { return 0; }\n";
  }
  std::string Err;
  std::vector<CorpusFile> Files = loadCorpus(Dir.string(), Err);
  EXPECT_TRUE(Files.empty());
  EXPECT_NE(Err.find("'kleene'"), std::string::npos) << Err;
  EXPECT_NE(Err.find("interval domain only"), std::string::npos) << Err;
  std::filesystem::remove_all(Dir);
}

// --- the runner's own guard rails -----------------------------------------

TEST(CorpusRunnerTest, EveryCaseOfEveryShardIsGreen) {
  std::string Err;
  std::vector<CorpusFile> Files = loadCorpus(corpusRoot(), Err);
  ASSERT_TRUE(Err.empty()) << Err;
  ASSERT_FALSE(Files.empty());
  // One shard covering everything — the ctest registration fans the same
  // case list out over N shards, so this also pins the shard math: N=1
  // must equal the union of any N-way split.
  ShardReport All = runCorpusShard(Files, 0, 1, false, {});
  uint64_t Split = 0;
  for (unsigned S = 0; S < 4; ++S) {
    ShardReport R = runCorpusShard(Files, S, 4, false, {});
    EXPECT_EQ(R.Failed, 0u)
        << (R.Failures.empty() ? "" : R.Failures.front());
    Split += R.Cases;
  }
  EXPECT_EQ(All.Failed, 0u)
      << (All.Failures.empty() ? "" : All.Failures.front());
  EXPECT_EQ(All.Cases, Split);
}

TEST(CorpusRunnerTest, FailuresNameFileAndCell) {
  // A deliberately wrong expectation must fail with the one-command
  // repro (file + matrix cell) in the message.
  CorpusFile F;
  F.Name = "wrong";
  F.Source = "// EXPECT-ALARMS: * 7\nint main() { return 0; }\n";
  ParsedDirectives P = parseCorpusDirectives(F.Source);
  ASSERT_TRUE(P.ok()) << diagsOf(P);
  F.D = P.D;
  CaseResult R = runCorpusCase(F, {"interval", "warrow"});
  ASSERT_FALSE(R.Ok);
  ASSERT_FALSE(R.Failures.empty());
  EXPECT_NE(R.Failures[0].find("wrong [interval/warrow]"),
            std::string::npos)
      << R.Failures[0];
  EXPECT_NE(R.Failures[0].find(
                "repro: warrow-corpus --only=wrong --cell=interval/warrow"),
            std::string::npos)
      << R.Failures[0];
}

// --- differential precision test ------------------------------------------

std::string varStr(const AnalysisVar &X, const Program &P) {
  return X.str(P);
}
std::string varStr(const RaceVar &X, const Program &P) { return X.str(P); }
std::string valueStr(const AbsValue &V, const Program &P) {
  return V.str(P.Symbols);
}
std::string valueStr(const RaceValue &V, const Program &P) {
  return V.str(P.Symbols);
}

/// σ(candidate) pointwise ≤ σ(baseline)? Unknowns outside a domain are
/// ⊥ (PartialSolution is partial), so the comparison ranges over the
/// candidate's domain with the baseline defaulting to ⊥.
template <typename Result>
std::string pointwiseLeq(const Result &Cand, const Result &Base,
                         const Program &P) {
  for (const auto &[X, Value] : Cand.Solution.Sigma)
    if (!Value.leq(Base.Solution.value(X)))
      return "sigma(" + varStr(X, P) + ") = " + valueStr(Value, P) +
             " exceeds the baseline's " +
             valueStr(Base.Solution.value(X), P);
  return "";
}

/// The registered sequential analysis strategies (the parallel solver is
/// exercised by the corpus shards and the dedicated parallel tests).
const std::vector<std::string> &sequentialSolvers() {
  static const std::vector<std::string> Names = [] {
    std::vector<std::string> Out;
    for (const engine::SolverInfo &Info : engine::solverRegistry())
      if (Info.hasCap(engine::CapAnalysis) &&
          std::string_view(Info.Name) != "parallel-warrow")
        Out.push_back(Info.Name);
    return Out;
  }();
  return Names;
}

/// Differential corpus sweep: for every file × domain, solve with every
/// sequential strategy and compare against the two-phase baseline.
/// Narrowing strategies (⊟, localized two-phase) must be pointwise ≤ the
/// baseline; the widening-only solver — two-phase *without* its
/// narrowing phase — must be pointwise ≥ it. Alarm counts must match the
/// file's own directives for every cell.
TEST(CorpusDifferentialTest, SequentialStrategiesBracketTwoPhase) {
  std::string Err;
  std::vector<CorpusFile> Files = loadCorpus(corpusRoot(), Err);
  ASSERT_TRUE(Err.empty()) << Err;

  for (const CorpusFile &File : Files) {
    DiagnosticEngine Diags;
    auto P = parseProgram(File.Source, Diags);
    ASSERT_TRUE(P) << File.Name << ": " << Diags.str();
    ProgramCfg Cfgs = buildProgramCfg(*P);

    std::vector<std::string> Domains;
    for (const MatrixCell &Cell : matrixFor(File.D))
      if (std::find(Domains.begin(), Domains.end(), Cell.Domain) ==
          Domains.end())
        Domains.push_back(Cell.Domain);

    for (const std::string &Dom : Domains) {
      auto Repro = [&](const std::string &Solver) {
        return File.Name + " [" + Dom + "/" + Solver +
               "] (repro: warrow-corpus --only=" + File.Name +
               " --cell=" + Dom + "/" + Solver + ")";
      };

      AnalysisOptions Options;
      Options.Domain = *domainForName(Dom);
      if (File.D.MaxRhsEvals)
        Options.Solver.MaxRhsEvals = *File.D.MaxRhsEvals;

      if (File.D.Kind == CorpusKind::Races) {
        RaceAnalysis Analysis(*P, Cfgs, Options);
        RaceAnalysisResult Base = Analysis.run(SolverChoice::TwoPhase);
        for (const std::string &Solver : sequentialSolvers()) {
          RaceAnalysisResult R =
              Analysis.run(*solverChoiceForName(Solver));
          ASSERT_TRUE(R.Stats.Converged) << Repro(Solver);
          if (std::optional<uint64_t> Want =
                  File.D.expectedAlarmsFor(Dom, Solver))
            EXPECT_EQ(R.Races.size(), *Want) << Repro(Solver);
          if (Solver == "widen")
            EXPECT_EQ(pointwiseLeq(Base, R, *P), "") << Repro(Solver);
          else
            EXPECT_EQ(pointwiseLeq(R, Base, *P), "") << Repro(Solver);
        }
      } else {
        InterprocAnalysis Analysis(*P, Cfgs, Options);
        AnalysisResult Base = Analysis.run(SolverChoice::TwoPhase);
        for (const std::string &Solver : sequentialSolvers()) {
          AnalysisResult R = Analysis.run(*solverChoiceForName(Solver));
          ASSERT_TRUE(R.Stats.Converged) << Repro(Solver);
          if (std::optional<uint64_t> Want =
                  File.D.expectedAlarmsFor(Dom, Solver)) {
            BoundsReport Report = runBoundsChecker(*P, Cfgs, R);
            EXPECT_EQ(Report.alarms(), *Want) << Repro(Solver);
          }
          if (Solver == "widen")
            EXPECT_EQ(pointwiseLeq(Base, R, *P), "") << Repro(Solver);
          else
            EXPECT_EQ(pointwiseLeq(R, Base, *P), "") << Repro(Solver);
        }
      }
    }
  }
}

} // namespace
