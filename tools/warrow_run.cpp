//===- tools/warrow_run.cpp - Command-line mini-C runner --------------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `warrow-run` — executes a mini-C program with the concrete
/// interpreter. `unknown()` values are taken from the command line.
///
///   warrow-run [--trace] [--max-steps=N] file.mc [input values...]
///
/// Exits with the program's return value (clamped to 0..125), or 126 on a
/// trap and 127 on fuel exhaustion; prints the result and statistics.
///
//===----------------------------------------------------------------------===//

#include "lang/interp.h"
#include "lang/parser.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace warrow;

int main(int Argc, char **Argv) {
  bool Trace = false;
  InterpOptions Options;
  const char *Path = nullptr;
  std::vector<int64_t> Inputs;

  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strcmp(Arg, "--trace") == 0) {
      Trace = true;
    } else if (std::strncmp(Arg, "--max-steps=", 12) == 0) {
      Options.MaxSteps = std::strtoull(Arg + 12, nullptr, 10);
    } else if (!Path && (Arg[0] != '-' || Arg[1] == '\0')) {
      Path = Arg;
    } else {
      // Remaining arguments are input-tape values (possibly negative).
      Inputs.push_back(std::strtoll(Arg, nullptr, 10));
    }
  }
  if (!Path) {
    std::fprintf(stderr,
                 "usage: %s [--trace] [--max-steps=N] file.mc [inputs...]\n",
                 Argv[0]);
    return 2;
  }

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path);
    return 2;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  DiagnosticEngine Diags;
  auto P = parseProgram(Buffer.str(), Diags);
  if (!P) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 2;
  }
  ProgramCfg Cfgs = buildProgramCfg(*P);

  Interpreter Interp(*P, Cfgs, Inputs, Options);
  if (Trace) {
    Interp.setObserver([&P](uint32_t Func, uint32_t Node,
                            const ConcreteFrame &Frame,
                            const ConcreteGlobals &) {
      std::string Vars;
      for (const auto &[Name, Value] : Frame.Scalars) {
        if (!Vars.empty())
          Vars += " ";
        Vars += P->Symbols.spelling(Name) + "=" + std::to_string(Value);
      }
      std::printf("  %s:n%u  %s\n",
                  P->Symbols.spelling(P->Functions[Func]->Name).c_str(),
                  Node, Vars.c_str());
    });
  }
  InterpResult R = Interp.run();

  switch (R.St) {
  case InterpResult::Status::Finished:
    std::printf("%s: returned %lld after %llu steps\n", Path,
                static_cast<long long>(R.ReturnValue),
                static_cast<unsigned long long>(R.Steps));
    if (R.ReturnValue >= 0 && R.ReturnValue <= 125)
      return static_cast<int>(R.ReturnValue);
    return 0;
  case InterpResult::Status::Trapped:
    std::fprintf(stderr, "%s: trap after %llu steps: %s\n", Path,
                 static_cast<unsigned long long>(R.Steps),
                 R.TrapReason.c_str());
    return 126;
  case InterpResult::Status::OutOfFuel:
    std::fprintf(stderr, "%s: out of fuel after %llu steps\n", Path,
                 static_cast<unsigned long long>(R.Steps));
    return 127;
  }
  return 2;
}
