//===- tools/warrow_corpus.cpp - Directive-corpus runner ------------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `warrow-corpus` — discovers the on-disk regression corpus
/// (`tests/corpus/**/*.mc`, directive headers per corpus/directives.h)
/// and executes every file across its solver × domain matrix, verifying
/// each run with the independent solution checkers and every embedded
/// expectation (alarm counts, invariant boxes, difference bounds,
/// concrete exit codes).
///
///   warrow-corpus [options]
///     --dir=DIR          corpus root (default: compiled-in tests/corpus,
///                        overridable via $WARROW_CORPUS_DIR)
///     --shard=I/N        run the I-th of N round-robin shards (0-based);
///                        the ctest registration fans the corpus out this
///                        way so shards run in parallel
///     --only=NAME        run a single program (the repro knob printed by
///                        failures)
///     --cell=DOM/SOLVER  run a single matrix cell
///     --list             print the case list (file × cell) and exit
///     --quiet            only print the summary line
///
/// Exit codes: 0 all green, 1 expectation/verification failures,
/// 2 usage or corpus-load errors.
///
//===----------------------------------------------------------------------===//

#include "corpus/corpus.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace warrow;

namespace {

void printUsage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--dir=DIR] [--shard=I/N] [--only=NAME] "
               "[--cell=DOM/SOLVER] [--list] [--quiet]\n",
               Argv0);
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Dir;
  unsigned Shard = 0;
  unsigned NumShards = 1;
  bool List = false;
  bool Quiet = false;
  corpus::CorpusFilter Filter;

  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, "--dir=", 6) == 0) {
      Dir = Arg + 6;
    } else if (std::strncmp(Arg, "--shard=", 8) == 0) {
      char *End = nullptr;
      unsigned long S = std::strtoul(Arg + 8, &End, 10);
      unsigned long N = 0;
      if (End && *End == '/')
        N = std::strtoul(End + 1, &End, 10);
      if (!End || *End != '\0' || N == 0 || S >= N) {
        std::fprintf(stderr, "error: bad --shard '%s' (want I/N, I < N)\n",
                     Arg + 8);
        return 2;
      }
      Shard = static_cast<unsigned>(S);
      NumShards = static_cast<unsigned>(N);
    } else if (std::strncmp(Arg, "--only=", 7) == 0) {
      Filter.Only = Arg + 7;
    } else if (std::strncmp(Arg, "--cell=", 7) == 0) {
      Filter.Cell = Arg + 7;
    } else if (std::strcmp(Arg, "--list") == 0) {
      List = true;
    } else if (std::strcmp(Arg, "--quiet") == 0) {
      Quiet = true;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg);
      printUsage(Argv[0]);
      return 2;
    }
  }

  if (Dir.empty())
    Dir = corpus::corpusRoot();
  if (Dir.empty()) {
    std::fprintf(stderr,
                 "error: no corpus directory (pass --dir=DIR or set "
                 "WARROW_CORPUS_DIR)\n");
    return 2;
  }

  std::string Err;
  std::vector<corpus::CorpusFile> Files = corpus::loadCorpus(Dir, Err);
  if (!Err.empty()) {
    std::fprintf(stderr, "%s", Err.c_str());
    return 2;
  }
  if (Files.empty()) {
    std::fprintf(stderr, "error: no .mc files under '%s'\n", Dir.c_str());
    return 2;
  }

  if (List) {
    for (const corpus::CorpusFile &F : Files) {
      for (const corpus::MatrixCell &Cell : corpus::matrixFor(F.D))
        std::printf("%s %s/%s\n", F.Name.c_str(), Cell.Domain.c_str(),
                    Cell.Solver.c_str());
      if (F.D.ExpectedExit)
        std::printf("%s concrete\n", F.Name.c_str());
    }
    return 0;
  }

  corpus::ShardReport Report =
      corpus::runCorpusShard(Files, Shard, NumShards, !Quiet, Filter);
  for (const std::string &F : Report.Failures)
    std::fprintf(stderr, "FAIL: %s\n", F.c_str());
  std::printf("warrow-corpus: %zu program(s), shard %u/%u: %llu case(s), "
              "%llu failed\n",
              Files.size(), Shard, NumShards,
              static_cast<unsigned long long>(Report.Cases),
              static_cast<unsigned long long>(Report.Failed));
  return Report.Failed == 0 ? 0 : 1;
}
