#!/usr/bin/env python3
"""Compare a bench JSON report against a checked-in baseline.

Gating policy (CI): the deterministic work counter ``rhs_evals`` must not
regress — any record whose eval count exceeds the baseline's fails the
run (exact integer compare; eval counts are reproducible across hosts).
Improvements are reported and tolerated. Wall times are reported as
ratios but never gate, since CI hardware varies.

Records are keyed by ``name`` when present (google-benchmark style
reports where one workload/solver pair may appear under several
benchmark instances), else by ``(workload, solver)``. Metadata records
(``"meta": true``) are skipped. A record present in the baseline but
missing from the new report fails the run — silently dropping a
benchmark must not read as "no regression".

Additional exact gates can be requested with a repeatable
``--exact-field NAME``: the named integer field must match the baseline
*exactly* in both directions (a drop is as suspicious as a rise — e.g. a
sound race detector losing alarms means it lost accesses). Fields absent
from a baseline record are not checked for that record.

Ratio floors are requested with a repeatable ``--min-ratio NAME=MIN``:
any record whose *baseline* value of the named field meets MIN must keep
meeting it in the new report (BENCH_incremental.json gates the >=10x
``speedup_rhs_evals`` of the pure-helper edits this way). Records whose
baseline value is below the floor — like the deliberately-hard edit-mid
records — are exempt, so one schema serves both the gated and the
informational rows.

Metadata fields are optional everywhere: records missing ``hw_threads``
or ``traced`` (table-regenerator reports like BENCH_races.json and
BENCH_zones.json carry neither) compare fine against records that have
them, so every baseline shares this one gate. When both sides do carry
the metadata it is honoured: a new record from a traced run fails (trace
overhead must never become a perf baseline), and wall-time warnings are
suppressed when the two records ran with different ``hw_threads`` (the
times are incomparable, and eval counts still gate).

Usage:
    bench_compare.py BASELINE.json NEW.json [--wall-warn RATIO]
                     [--exact-field NAME]...
"""

import argparse
import json
import sys


def load_records(path):
    with open(path) as fp:
        data = json.load(fp)
    if not isinstance(data, list):
        raise SystemExit(f"error: {path}: expected a JSON array of records")
    return [r for r in data if isinstance(r, dict) and not r.get("meta")]


def key_of(record):
    if "name" in record:
        return record["name"]
    return (record.get("workload"), record.get("solver"))


def index(records, path):
    table = {}
    for r in records:
        k = key_of(r)
        if k in table:
            raise SystemExit(f"error: {path}: duplicate record key {k!r}")
        table[k] = r
    return table


def fmt_key(k):
    return k if isinstance(k, str) else f"{k[0]}/{k[1]}"


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("new")
    ap.add_argument(
        "--wall-warn",
        type=float,
        default=2.0,
        metavar="RATIO",
        help="warn (non-gating) when wall_ns exceeds baseline by RATIO",
    )
    ap.add_argument(
        "--exact-field",
        action="append",
        default=[],
        metavar="NAME",
        help="gate on exact equality of this integer field (repeatable)",
    )
    ap.add_argument(
        "--min-ratio",
        action="append",
        default=[],
        metavar="NAME=MIN",
        help="records whose baseline NAME >= MIN must keep NAME >= MIN "
        "(repeatable)",
    )
    args = ap.parse_args()

    ratio_floors = []
    for spec in args.min_ratio:
        name, sep, minimum = spec.partition("=")
        if not sep or not name:
            raise SystemExit(f"error: --min-ratio expects NAME=MIN, got {spec!r}")
        try:
            ratio_floors.append((name, float(minimum)))
        except ValueError:
            raise SystemExit(f"error: --min-ratio {spec!r}: MIN must be a number")

    base = index(load_records(args.baseline), args.baseline)
    new = index(load_records(args.new), args.new)

    failures = []
    improvements = 0
    wall_warnings = []

    for k, b in sorted(base.items(), key=lambda kv: fmt_key(kv[0])):
        n = new.get(k)
        if n is None:
            failures.append(f"{fmt_key(k)}: missing from new report")
            continue
        if n.get("traced"):
            failures.append(f"{fmt_key(k)}: new record comes from a traced run")
        be, ne = b.get("rhs_evals"), n.get("rhs_evals")
        if be is not None:
            if ne is None:
                failures.append(f"{fmt_key(k)}: rhs_evals missing from new report")
            elif ne > be:
                failures.append(f"{fmt_key(k)}: rhs_evals {be} -> {ne} (REGRESSION)")
            elif ne < be:
                improvements += 1
        for field in args.exact_field:
            bf, nf = b.get(field), n.get(field)
            if bf is None:
                continue
            if nf is None:
                failures.append(f"{fmt_key(k)}: {field} missing from new report")
            elif nf != bf:
                failures.append(f"{fmt_key(k)}: {field} {bf} -> {nf} (MISMATCH)")
        for field, floor in ratio_floors:
            bf, nf = b.get(field), n.get(field)
            if bf is None or bf < floor:
                continue
            if nf is None:
                failures.append(f"{fmt_key(k)}: {field} missing from new report")
            elif nf < floor:
                failures.append(
                    f"{fmt_key(k)}: {field} {nf} below the required floor "
                    f"{floor} (baseline {bf})"
                )
        bt, nt = b.get("hw_threads"), n.get("hw_threads")
        comparable_walls = bt is None or nt is None or bt == nt
        bw, nw = b.get("wall_ns"), n.get("wall_ns")
        if bw and nw and comparable_walls and nw > bw * args.wall_warn:
            wall_warnings.append(f"{fmt_key(k)}: wall {bw:.0f}ns -> {nw:.0f}ns " f"({nw / bw:.2f}x, non-gating)")

    extra = sorted(set(new) - set(base), key=fmt_key)
    print(f"bench_compare: {len(base)} baseline records, {len(new)} new, " f"{improvements} improved rhs_evals, {len(extra)} new-only")
    for w in wall_warnings:
        print(f"warning: {w}")
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("bench_compare: OK (no rhs_evals regressions)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
