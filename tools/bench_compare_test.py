#!/usr/bin/env python3
"""Unit tests for bench_compare.py — the CI gate for bench regressions.

The gate's failure modes are what matter: a comparison that silently
passes on a regressed report, a dropped record, or a missing field is a
broken CI gate. Each test drives the real CLI through a subprocess so
argument parsing and exit codes are covered too.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "bench_compare.py")


def run_compare(baseline, new, *extra_args):
    """Writes both record lists to temp files and runs bench_compare.py."""
    with tempfile.TemporaryDirectory() as tmp:
        bpath = os.path.join(tmp, "baseline.json")
        npath = os.path.join(tmp, "new.json")
        with open(bpath, "w") as fp:
            json.dump(baseline, fp)
        with open(npath, "w") as fp:
            json.dump(new, fp)
        return subprocess.run(
            [sys.executable, SCRIPT, bpath, npath, *extra_args],
            capture_output=True,
            text=True,
        )


def record(name, **fields):
    return {"name": name, **fields}


class RhsEvalsGate(unittest.TestCase):
    def test_identical_reports_pass(self):
        recs = [record("a", rhs_evals=100), record("b", rhs_evals=7)]
        r = run_compare(recs, recs)
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("OK", r.stdout)

    def test_regression_fails(self):
        base = [record("a", rhs_evals=100)]
        new = [record("a", rhs_evals=101)]
        r = run_compare(base, new)
        self.assertEqual(r.returncode, 1)
        self.assertIn("REGRESSION", r.stderr)

    def test_improvement_passes_and_is_reported(self):
        base = [record("a", rhs_evals=100)]
        new = [record("a", rhs_evals=60)]
        r = run_compare(base, new)
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("1 improved", r.stdout)

    def test_missing_record_fails(self):
        base = [record("a", rhs_evals=100), record("b", rhs_evals=7)]
        new = [record("a", rhs_evals=100)]
        r = run_compare(base, new)
        self.assertEqual(r.returncode, 1)
        self.assertIn("missing from new report", r.stderr)

    def test_missing_field_fails(self):
        # A record that stops reporting rhs_evals must not read as "no
        # regression".
        base = [record("a", rhs_evals=100)]
        new = [record("a")]
        r = run_compare(base, new)
        self.assertEqual(r.returncode, 1)
        self.assertIn("rhs_evals missing", r.stderr)

    def test_new_only_records_and_fields_are_safe(self):
        # Reports may grow fields (e.g. "traced") and records without
        # invalidating old baselines.
        base = [record("a", rhs_evals=100)]
        new = [record("a", rhs_evals=100, traced=False), record("b", rhs_evals=5)]
        r = run_compare(base, new)
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("1 new-only", r.stdout)

    def test_meta_records_are_skipped(self):
        # Metadata records never gate, even when they carry counters.
        base = [{"meta": True, "rhs_evals": 1}, record("a", rhs_evals=3)]
        new = [{"meta": True, "rhs_evals": 999}, record("a", rhs_evals=3)]
        r = run_compare(base, new)
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_workload_solver_keying(self):
        # Without "name", records are keyed by (workload, solver).
        base = [{"workload": "w", "solver": "slr", "rhs_evals": 9}]
        new = [{"workload": "w", "solver": "slr", "rhs_evals": 10}]
        r = run_compare(base, new)
        self.assertEqual(r.returncode, 1)
        self.assertIn("w/slr", r.stderr)

    def test_duplicate_key_is_an_error(self):
        recs = [record("a", rhs_evals=1), record("a", rhs_evals=2)]
        r = run_compare(recs, recs)
        self.assertNotEqual(r.returncode, 0)
        self.assertIn("duplicate record key", r.stderr)


class ExactFieldGate(unittest.TestCase):
    def test_exact_field_gates_both_directions(self):
        base = [record("a", rhs_evals=5, race_alarms=3)]
        for bad in (2, 4):
            new = [record("a", rhs_evals=5, race_alarms=bad)]
            r = run_compare(base, new, "--exact-field", "race_alarms")
            self.assertEqual(r.returncode, 1, f"race_alarms={bad} passed")
            self.assertIn("MISMATCH", r.stderr)
        good = [record("a", rhs_evals=5, race_alarms=3)]
        r = run_compare(base, good, "--exact-field", "race_alarms")
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_exact_field_missing_from_new_fails(self):
        base = [record("a", race_alarms=3)]
        new = [record("a")]
        r = run_compare(base, new, "--exact-field", "race_alarms")
        self.assertEqual(r.returncode, 1)
        self.assertIn("race_alarms missing", r.stderr)

    def test_exact_field_absent_from_baseline_is_unchecked(self):
        # Old baselines predating a field must keep passing.
        base = [record("a", rhs_evals=5)]
        new = [record("a", rhs_evals=5, race_alarms=17)]
        r = run_compare(base, new, "--exact-field", "race_alarms")
        self.assertEqual(r.returncode, 0, r.stderr)


class MinRatioGate(unittest.TestCase):
    def test_ratio_below_floor_fails(self):
        # The incremental tier's >=10x acceptance: a gated record whose
        # warm/cold speedup collapses must fail the run.
        base = [record("a", rhs_evals=5, speedup_rhs_evals=111.9)]
        new = [record("a", rhs_evals=5, speedup_rhs_evals=3.2)]
        r = run_compare(base, new, "--min-ratio", "speedup_rhs_evals=10")
        self.assertEqual(r.returncode, 1)
        self.assertIn("below the required floor", r.stderr)

    def test_ratio_at_or_above_floor_passes(self):
        base = [record("a", rhs_evals=5, speedup_rhs_evals=111.9)]
        for ok in (10.0, 80.0, 500.0):
            new = [record("a", rhs_evals=5, speedup_rhs_evals=ok)]
            r = run_compare(base, new, "--min-ratio", "speedup_rhs_evals=10")
            self.assertEqual(r.returncode, 0, r.stderr)

    def test_informational_records_are_exempt(self):
        # edit-mid rows carry the same field but their baseline sits below
        # the floor — they document the hard case and must never gate.
        base = [record("mid", rhs_evals=5, speedup_rhs_evals=1.01)]
        new = [record("mid", rhs_evals=5, speedup_rhs_evals=0.9)]
        r = run_compare(base, new, "--min-ratio", "speedup_rhs_evals=10")
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_gated_record_losing_the_field_fails(self):
        base = [record("a", rhs_evals=5, speedup_rhs_evals=111.9)]
        new = [record("a", rhs_evals=5)]
        r = run_compare(base, new, "--min-ratio", "speedup_rhs_evals=10")
        self.assertEqual(r.returncode, 1)
        self.assertIn("speedup_rhs_evals missing", r.stderr)

    def test_malformed_spec_is_an_error(self):
        base = [record("a", rhs_evals=5)]
        r = run_compare(base, base, "--min-ratio", "speedup_rhs_evals")
        self.assertNotEqual(r.returncode, 0)
        self.assertIn("NAME=MIN", r.stderr)
        r = run_compare(base, base, "--min-ratio", "speedup_rhs_evals=ten")
        self.assertNotEqual(r.returncode, 0)
        self.assertIn("must be a number", r.stderr)


class MemoryFields(unittest.TestCase):
    def test_peak_rss_is_metadata_tolerant_and_never_gates(self):
        # The stress tier (BENCH_stress.json) records peak_rss_kb; RSS
        # varies with allocator and host, so it must never gate — in
        # either direction — and baselines without it must compare fine.
        base = [record("a", rhs_evals=5, peak_rss_kb=700000)]
        for rss in (1, 700000, 9999999):
            new = [record("a", rhs_evals=5, peak_rss_kb=rss)]
            r = run_compare(base, new, "--exact-field", "rhs_evals")
            self.assertEqual(r.returncode, 0, r.stderr)
        r = run_compare(base, [record("a", rhs_evals=5)])
        self.assertEqual(r.returncode, 0, r.stderr)
        r = run_compare(
            [record("a", rhs_evals=5)],
            [record("a", rhs_evals=5, peak_rss_kb=123)],
        )
        self.assertEqual(r.returncode, 0, r.stderr)


class WallTimeWarnings(unittest.TestCase):
    def test_wall_blowup_warns_but_does_not_gate(self):
        base = [record("a", rhs_evals=5, wall_ns=100.0)]
        new = [record("a", rhs_evals=5, wall_ns=1000.0)]
        r = run_compare(base, new)
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("warning:", r.stdout)
        self.assertIn("non-gating", r.stdout)

    def test_wall_warn_threshold_is_respected(self):
        base = [record("a", rhs_evals=5, wall_ns=100.0)]
        new = [record("a", rhs_evals=5, wall_ns=1000.0)]
        r = run_compare(base, new, "--wall-warn", "20")
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertNotIn("warning:", r.stdout)


class OptionalMetadata(unittest.TestCase):
    def test_records_missing_hw_threads_and_traced_are_tolerated(self):
        # Table-regenerator reports (BENCH_races.json, BENCH_zones.json)
        # carry neither field; comparing them against a gbench baseline
        # that has both must not KeyError or gate.
        base = [record("a", rhs_evals=5, wall_ns=100.0, hw_threads=4, traced=False)]
        new = [record("a", rhs_evals=5, wall_ns=110.0)]
        r = run_compare(base, new)
        self.assertEqual(r.returncode, 0, r.stderr)
        r = run_compare(new, base)
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_traced_new_record_fails(self):
        # Trace overhead must never be compared as a perf number.
        base = [record("a", rhs_evals=5)]
        new = [record("a", rhs_evals=5, traced=True)]
        r = run_compare(base, new)
        self.assertEqual(r.returncode, 1)
        self.assertIn("traced run", r.stderr)

    def test_hw_threads_mismatch_suppresses_wall_warning(self):
        # Wall times from different thread counts are incomparable;
        # rhs_evals still gate.
        base = [record("a", rhs_evals=5, wall_ns=100.0, hw_threads=1)]
        new = [record("a", rhs_evals=5, wall_ns=1000.0, hw_threads=8)]
        r = run_compare(base, new)
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertNotIn("warning:", r.stdout)
        new_regressed = [record("a", rhs_evals=6, wall_ns=1000.0, hw_threads=8)]
        r = run_compare(base, new_regressed)
        self.assertEqual(r.returncode, 1)


class MalformedInput(unittest.TestCase):
    def test_non_array_report_is_an_error(self):
        r = run_compare({"not": "an array"}, [])
        self.assertNotEqual(r.returncode, 0)
        self.assertIn("expected a JSON array", r.stderr)


if __name__ == "__main__":
    unittest.main()
