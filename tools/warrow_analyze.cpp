//===- tools/warrow_analyze.cpp - Command-line analyzer -------------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `warrow-analyze` — command-line front door to the library: parses a
/// mini-C file, runs the interval analysis with a chosen solver, and
/// prints per-line invariants, global values, and solver statistics.
///
///   warrow-analyze [options] file.mc
///     --solver=NAME                     solver strategy by registry name
///                                       (default warrow; any analysis-
///                                       capable entry of --list-solvers)
///     --domain={interval,zones}         value domain of program points
///                                       (default interval; zones runs the
///                                       DBM relational backend)
///     --list-solvers                    print the solver registry and exit
///     --threads=N                       worker threads for the parallel
///                                       solvers (default: hardware
///                                       concurrency; ignored elsewhere)
///     --context                         context-sensitive analysis
///     --thresholds                      program-constant threshold widening
///     --check                           report potential run-time errors
///     --bounds                          array-bounds / assert checker
///                                       (domain-aware alarm counts)
///     --races                           lockset data-race detection
///     --dump-cfg                        print CFG edges instead of analyzing
///     --dump-dot                        print CFGs as Graphviz dot
///     --trace                           record solver events; print the
///                                       convergence report after the run
///     --trace-out=FILE                  additionally write a Chrome
///                                       trace_event JSON to FILE
///     --snapshot-out=FILE               write the solver state after the
///                                       run (text serialization) so a
///                                       later --snapshot-in resumes it
///     --snapshot-in=FILE                incremental mode: diff against
///                                       the snapshot and re-solve warm
///                                       instead of cold (SLR+ solvers;
///                                       falls back to cold otherwise)
///     --quiet                           only print the summary line
///
//===----------------------------------------------------------------------===//

#include "analysis/bounds.h"
#include "analysis/checks.h"
#include "analysis/interproc.h"
#include "analysis/races.h"
#include "analysis/snapshot.h"
#include "engine/registry.h"
#include "lang/parser.h"
#include "lang/pretty.h"
#include "trace/chrome_export.h"
#include "trace/metrics.h"
#include "trace/recorder.h"
#include "trace/report.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

using namespace warrow;

namespace {

void printUsage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--solver=NAME] [--domain=NAME] [--list-solvers] "
               "[--threads=N] [--context] [--thresholds] [--check] "
               "[--bounds] [--races] [--dump-cfg] [--trace] "
               "[--trace-out=FILE] [--quiet] file.mc\n",
               Argv0);
}

/// Emits the convergence report (and optionally the Chrome trace) for a
/// finished traced run. \p NameOf maps trace unknown ids to names.
int emitTrace(const BufferedTraceRecorder &Recorder, const char *TraceOut,
              const UnknownNameFn &NameOf) {
  std::vector<TraceEvent> Events = Recorder.events();
  TraceMetrics Metrics = aggregateTrace(Events);
  std::printf("%s", convergenceReport(Metrics, 10, NameOf).c_str());
  if (!TraceOut)
    return 0;
  std::ofstream Out(TraceOut);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", TraceOut);
    return 2;
  }
  Out << chromeTraceJson(Events, NameOf);
  std::printf("trace: %zu events -> %s\n", Events.size(), TraceOut);
  return 0;
}

/// Escapes a label for dot output.
std::string dotEscape(const std::string &Text) {
  std::string Out;
  for (char C : Text) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

int dumpDot(const Program &P, const ProgramCfg &Cfgs) {
  std::printf("digraph cfg {\n  node [shape=circle, fontsize=10];\n");
  for (size_t F = 0; F < P.Functions.size(); ++F) {
    const Cfg &G = Cfgs.cfgOf(F);
    std::string Name = P.Symbols.spelling(P.Functions[F]->Name);
    std::printf("  subgraph cluster_%zu {\n    label=\"%s\";\n", F,
                dotEscape(Name).c_str());
    for (uint32_t N = 0; N < G.numNodes(); ++N)
      std::printf("    %s%u [label=\"%u\"%s];\n", Name.c_str(), N, N,
                  N == G.entry()   ? ", shape=doublecircle"
                  : N == G.exit()  ? ", shape=square"
                                   : "");
    for (const CfgEdge &E : G.edges())
      std::printf("    %s%u -> %s%u [label=\"%s\", fontsize=9];\n",
                  Name.c_str(), E.From, Name.c_str(), E.To,
                  dotEscape(E.Act.str(P.Symbols)).c_str());
    std::printf("  }\n");
  }
  std::printf("}\n");
  return 0;
}

int dumpCfg(const Program &P, const ProgramCfg &Cfgs) {
  for (size_t F = 0; F < P.Functions.size(); ++F) {
    const Cfg &G = Cfgs.cfgOf(F);
    std::printf("function %s: %zu nodes, %zu edges\n",
                P.Symbols.spelling(P.Functions[F]->Name).c_str(),
                G.numNodes(), G.numEdges());
    for (const CfgEdge &E : G.edges())
      std::printf("  n%u -> n%u: %s\n", E.From, E.To,
                  E.Act.str(P.Symbols).c_str());
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  SolverChoice Choice = SolverChoice::Warrow;
  AnalysisOptions Options;
  bool DumpCfg = false;
  bool DumpDot = false;
  bool Quiet = false;
  bool Check = false;
  bool Bounds = false;
  bool Races = false;
  bool Trace = false;
  const char *TraceOut = nullptr;
  const char *SnapshotOut = nullptr;
  const char *SnapshotIn = nullptr;
  const char *Path = nullptr;

  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, "--solver=", 9) == 0) {
      const char *Name = Arg + 9;
      std::optional<SolverChoice> Resolved = solverChoiceForName(Name);
      if (!Resolved) {
        std::fprintf(stderr, "error: unknown or non-analysis solver '%s'\n",
                     Name);
        std::fprintf(stderr, "analysis-capable solvers:\n");
        for (const engine::SolverInfo &Info : engine::solverRegistry())
          if (Info.hasCap(engine::CapAnalysis))
            std::fprintf(stderr, "  %s\n", Info.Name);
        return 2;
      }
      Choice = *Resolved;
    } else if (std::strncmp(Arg, "--domain=", 9) == 0) {
      const char *Name = Arg + 9;
      std::optional<AnalysisDomain> Domain = domainForName(Name);
      if (!Domain) {
        std::fprintf(stderr,
                     "error: unknown domain '%s' (interval, zones)\n", Name);
        return 2;
      }
      Options.Domain = *Domain;
    } else if (std::strcmp(Arg, "--list-solvers") == 0) {
      std::printf("%s", engine::solverListing().c_str());
      return 0;
    } else if (std::strncmp(Arg, "--threads=", 10) == 0) {
      char *End = nullptr;
      unsigned long N = std::strtoul(Arg + 10, &End, 10);
      if (End == Arg + 10 || *End != '\0') {
        std::fprintf(stderr, "error: invalid thread count '%s'\n", Arg + 10);
        return 2;
      }
      Options.Solver.Threads = static_cast<unsigned>(N);
    } else if (std::strcmp(Arg, "--context") == 0) {
      Options.ContextSensitive = true;
    } else if (std::strcmp(Arg, "--thresholds") == 0) {
      Options.ThresholdWidening = true;
    } else if (std::strcmp(Arg, "--check") == 0) {
      Check = true;
    } else if (std::strcmp(Arg, "--bounds") == 0) {
      Bounds = true;
    } else if (std::strcmp(Arg, "--races") == 0) {
      Races = true;
    } else if (std::strcmp(Arg, "--dump-cfg") == 0) {
      DumpCfg = true;
    } else if (std::strcmp(Arg, "--dump-dot") == 0) {
      DumpDot = true;
    } else if (std::strcmp(Arg, "--trace") == 0) {
      Trace = true;
    } else if (std::strncmp(Arg, "--trace-out=", 12) == 0) {
      Trace = true;
      TraceOut = Arg + 12;
    } else if (std::strncmp(Arg, "--snapshot-out=", 15) == 0) {
      SnapshotOut = Arg + 15;
    } else if (std::strncmp(Arg, "--snapshot-in=", 14) == 0) {
      SnapshotIn = Arg + 14;
    } else if (std::strcmp(Arg, "--quiet") == 0) {
      Quiet = true;
    } else if (Arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg);
      printUsage(Argv[0]);
      return 2;
    } else if (Path) {
      std::fprintf(stderr, "error: multiple input files\n");
      return 2;
    } else {
      Path = Arg;
    }
  }
  if (!Path) {
    printUsage(Argv[0]);
    return 2;
  }

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path);
    return 2;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  std::string Source = Buffer.str();

  DiagnosticEngine Diags;
  auto P = parseProgram(Source, Diags);
  if (!P) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  ProgramCfg Cfgs = buildProgramCfg(*P);
  if (DumpDot)
    return dumpDot(*P, Cfgs);
  if (DumpCfg)
    return dumpCfg(*P, Cfgs);

  BufferedTraceRecorder Recorder;
  if (Trace)
    Options.Solver.Trace = &Recorder;

  if (Races && (SnapshotOut || SnapshotIn)) {
    std::fprintf(stderr,
                 "error: --snapshot-out/--snapshot-in do not apply to the "
                 "race analysis\n");
    return 2;
  }

  if (Races) {
    RaceAnalysis Analysis(*P, Cfgs, Options);
    RaceAnalysisResult Result = Analysis.run(Choice);
    if (!Result.Stats.Converged) {
      std::fprintf(stderr, "error: solver hit the evaluation budget (%s)\n",
                   Result.Stats.str().c_str());
      return 1;
    }
    std::vector<CheckFinding> Findings = raceCheckFindings(*P, Result.Races);
    for (const CheckFinding &F : Findings)
      std::printf("%s\n", F.str(*P).c_str());
    if (!Quiet) {
      for (const GlobalDecl &G : P->Globals) {
        const AccessSet &Accesses = Result.accessesOf(G.Name);
        if (Accesses.empty())
          continue;
        std::printf("accesses of %s:\n",
                    P->Symbols.spelling(G.Name).c_str());
        for (const RaceAccess &A : Accesses.accesses())
          std::printf("  %s\n", A.str(*P).c_str());
      }
    }
    std::printf("%s: %zu racy global(s) out of %zu, %llu unknowns, %s, "
                "%.1f ms\n",
                Path, Result.Races.size(), P->Globals.size(),
                static_cast<unsigned long long>(Result.NumUnknowns),
                Result.Stats.str().c_str(), Result.Seconds * 1e3);
    if (Trace) {
      const std::vector<RaceVar> &Order = Result.Solution.DiscoveryOrder;
      int Ret = emitTrace(Recorder, TraceOut, [&](uint64_t Id) {
        return Id < Order.size() ? Order[Id].str(*P)
                                 : "u" + std::to_string(Id);
      });
      if (Ret != 0)
        return Ret;
    }
    return Result.Races.empty() ? 0 : 3;
  }

  InterprocAnalysis Analysis(*P, Cfgs, Options);
  AnalysisSnapshot Capture;
  AnalysisSnapshot *CapturePtr = SnapshotOut ? &Capture : nullptr;
  AnalysisResult Result;
  if (SnapshotIn) {
    std::ifstream SnapStream(SnapshotIn);
    if (!SnapStream) {
      std::fprintf(stderr, "error: cannot open '%s'\n", SnapshotIn);
      return 2;
    }
    std::stringstream SnapBuffer;
    SnapBuffer << SnapStream.rdbuf();
    std::optional<AnalysisSnapshot> Snap =
        parseAnalysisSnapshot(SnapBuffer.str(), *P);
    if (!Snap) {
      std::fprintf(stderr, "error: '%s' is not a valid analysis snapshot\n",
                   SnapshotIn);
      return 2;
    }
    IncrementalStats Inc;
    Result = Analysis.runIncremental(Choice, *Snap, *P, CapturePtr, &Inc);
    std::printf("incremental: %llu snapshot unknowns, %llu dropped, "
                "%llu restarted, %llu cells retracted, %llu kept%s\n",
                static_cast<unsigned long long>(Inc.SnapshotUnknowns),
                static_cast<unsigned long long>(Inc.DroppedUnknowns),
                static_cast<unsigned long long>(Inc.RestartedUnknowns),
                static_cast<unsigned long long>(Inc.RetractedCells),
                static_cast<unsigned long long>(Inc.KeptCells),
                Inc.ColdFallback ? " (cold fallback)" : "");
  } else {
    Result = Analysis.run(Choice, CapturePtr);
  }
  if (!Result.Stats.Converged) {
    std::fprintf(stderr,
                 "error: solver hit the evaluation budget (%s)\n",
                 Result.Stats.str().c_str());
    return 1;
  }
  if (SnapshotOut) {
    if (Capture.empty())
      std::fprintf(stderr, "warning: the chosen solver does not produce "
                           "snapshots; writing an empty one\n");
    std::ofstream SnapOut(SnapshotOut);
    if (!SnapOut) {
      std::fprintf(stderr, "error: cannot write '%s'\n", SnapshotOut);
      return 2;
    }
    SnapOut << serializeAnalysisSnapshot(Capture, *P);
    if (!Quiet)
      std::printf("snapshot: %zu unknowns -> %s\n",
                  Capture.State.Vars.size(), SnapshotOut);
  }

  if (Bounds) {
    BoundsReport Report = runBoundsChecker(*P, Cfgs, Result);
    for (const BoundsFinding &F : Report.Findings)
      std::printf("%s\n", F.str(*P).c_str());
    std::printf("%s [%s]: %llu bounds alarm(s), %llu assert alarm(s)\n",
                Path, std::string(domainName(Options.Domain)).c_str(),
                static_cast<unsigned long long>(Report.ArrayAlarms),
                static_cast<unsigned long long>(Report.AssertAlarms));
    return Report.alarms() > 0 ? 3 : 0;
  }

  if (Check) {
    std::vector<CheckFinding> Findings = runChecks(*P, Cfgs, Result);
    for (const CheckFinding &F : Findings)
      std::printf("%s\n", F.str(*P).c_str());
    CheckSummary S = summarize(Findings);
    std::printf("%s: %llu potential division(s) by zero, %llu potential "
                "out-of-bounds access(es), %llu dead line(s)\n",
                Path, static_cast<unsigned long long>(S.DivAlarms),
                static_cast<unsigned long long>(S.BoundsAlarms),
                static_cast<unsigned long long>(S.DeadLines));
    return S.DivAlarms + S.BoundsAlarms > 0 ? 3 : 0;
  }

  if (!Quiet) {
    // Invariants per function and line, joined over contexts and nodes.
    for (size_t F = 0; F < P->Functions.size(); ++F) {
      const Cfg &G = Cfgs.cfgOf(F);
      std::map<uint32_t, AbsValue> PerLine;
      for (const auto &[X, Value] : Result.Solution.Sigma) {
        if (!X.isPoint() || X.Func != F)
          continue;
        uint32_t Line = G.lineOf(X.Node);
        if (Line == 0)
          continue;
        AbsValue &Slot = PerLine[Line];
        Slot = Slot.join(Value);
      }
      std::printf("function %s:\n",
                  P->Symbols.spelling(P->Functions[F]->Name).c_str());
      for (const auto &[Line, Value] : PerLine)
        std::printf("  line %3u: %s\n", Line,
                    Value.str(P->Symbols).c_str());
    }
    if (!P->Globals.empty()) {
      std::printf("globals (flow-insensitive):\n");
      for (const GlobalDecl &G : P->Globals)
        std::printf("  %s = %s\n", P->Symbols.spelling(G.Name).c_str(),
                    Result.globalValue(G.Name).str().c_str());
    }
  }
  std::printf("%s: %llu unknowns, %s, %.1f ms\n", Path,
              static_cast<unsigned long long>(Result.NumUnknowns),
              Result.Stats.str().c_str(), Result.Seconds * 1e3);
  if (Trace) {
    const std::vector<AnalysisVar> &Order = Result.Solution.DiscoveryOrder;
    return emitTrace(Recorder, TraceOut, [&](uint64_t Id) {
      return Id < Order.size() ? Order[Id].str(*P)
                               : "u" + std::to_string(Id);
    });
  }
  return 0;
}
