//===- bench/bench_zones.cpp - Intervals vs zones on the bounds suite ----------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-domain Fig.-7 experiment: every bounds-suite program is solved
/// under both value domains (interval environments and DBM zones) and
/// both narrowing strategies (⊟ and the two-phase baseline), and the
/// bounds/assert checker counts the alarms that survive. Two orthogonal
/// precision axes become visible in one table:
///
///   * per strategy: ⊟ ≤ two-phase alarms in *both* domains — retracting
///     stale side effects is domain-independent;
///   * per domain: zones ≤ interval alarms under *every* strategy — the
///     difference invariants survive widening that destroys the
///     endpoints.
///
/// The closure cost shows up in the timing columns: zones pay O(n³)
/// closures per transfer, so wall time and per-domain rhs_evals are both
/// reported. Alarm counts and eval counts are deterministic; CI gates on
/// them exactly via the checked-in BENCH_zones.json. Each record is
/// keyed (workload, "<domain>/<solver>") so the compare tool's
/// (workload, solver) keying stays unique, and every run is re-checked
/// with the independent side-effecting verifier plus the suite's
/// EXPECT-ALARMS directives.
///
//===----------------------------------------------------------------------===//

#include "analysis/bounds.h"
#include "bench/bench_json.h"
#include "lang/parser.h"
#include "support/table.h"
#include "workloads/bounds_suite.h"

#include <cstdio>

using namespace warrow;

namespace {

struct ZonesRun {
  uint64_t Alarms = 0;
  double Seconds = 0;
  uint64_t RhsEvals = 0;
  bool Verified = true;
};

ZonesRun boundsFor(const Program &P, const ProgramCfg &Cfgs,
                   AnalysisDomain Domain, SolverChoice Choice) {
  AnalysisOptions Options;
  Options.Domain = Domain;
  InterprocAnalysis Analysis(P, Cfgs, Options);
  AnalysisResult Result = Analysis.run(Choice);
  BoundsReport Report = runBoundsChecker(P, Cfgs, Result);
  return ZonesRun{Report.alarms(), Result.Seconds, Result.Stats.RhsEvals,
                  static_cast<bool>(Analysis.verifySolution(Result))};
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = warrow::bench::consumeJsonFlag(argc, argv);
  warrow::bench::JsonReport Report;
  std::printf("=== Bounds/assert alarms: interval vs zones x {⊟, two-phase} "
              "===\n\n");

  struct Cfg {
    AnalysisDomain Domain;
    SolverChoice Choice;
    const char *Solver;
  };
  const Cfg Configs[] = {
      {AnalysisDomain::Interval, SolverChoice::Warrow, "warrow"},
      {AnalysisDomain::Interval, SolverChoice::TwoPhase, "two-phase"},
      {AnalysisDomain::Zones, SolverChoice::Warrow, "warrow"},
      {AnalysisDomain::Zones, SolverChoice::TwoPhase, "two-phase"},
  };

  Table T({"Program", "itv ⊟", "itv 2ph", "zones ⊟", "zones 2ph",
           "zones ⊟ us", "zones evals"});
  bool AllVerified = true;
  bool DirectivesHold = true;
  uint64_t Totals[4] = {0, 0, 0, 0};
  for (const BoundsBenchmark &B : boundsSuite()) {
    DiagnosticEngine Diags;
    auto P = parseProgram(B.Source, Diags);
    if (!P) {
      std::fprintf(stderr, "error: %s: %s", B.Name.c_str(),
                   Diags.str().c_str());
      return 1;
    }
    ProgramCfg Cfgs = buildProgramCfg(*P);
    BoundsDirectives D = parseBoundsDirectives(B.Source);
    ZonesRun Runs[4];
    for (size_t I = 0; I < 4; ++I) {
      const Cfg &C = Configs[I];
      Runs[I] = boundsFor(*P, Cfgs, C.Domain, C.Choice);
      AllVerified &= Runs[I].Verified;
      Totals[I] += Runs[I].Alarms;
      if (auto Expected = D.expectedFor(domainName(C.Domain), C.Solver);
          Expected && *Expected != Runs[I].Alarms) {
        std::fprintf(stderr,
                     "error: %s [%s/%s]: %llu alarms, directives expect "
                     "%llu\n",
                     B.Name.c_str(), std::string(domainName(C.Domain)).c_str(),
                     C.Solver, static_cast<unsigned long long>(Runs[I].Alarms),
                     static_cast<unsigned long long>(*Expected));
        DirectivesHold = false;
      }
      Report
          .addRecord(B.Name,
                     std::string(domainName(C.Domain)) + "/" + C.Solver,
                     Runs[I].Seconds * 1e9, 1, Runs[I].RhsEvals)
          .set("bounds_alarms", Runs[I].Alarms);
    }
    char ZonesUs[32];
    std::snprintf(ZonesUs, sizeof(ZonesUs), "%.1f", Runs[2].Seconds * 1e6);
    T.addRow({B.Name, std::to_string(Runs[0].Alarms),
              std::to_string(Runs[1].Alarms), std::to_string(Runs[2].Alarms),
              std::to_string(Runs[3].Alarms), ZonesUs,
              std::to_string(Runs[2].RhsEvals)});
  }
  std::fputs(T.str().c_str(), stdout);
  std::printf("\nTotal alarms: interval ⊟ %llu / 2ph %llu, zones ⊟ %llu / "
              "2ph %llu (expected: ⊟ ≤ two-phase per domain, zones ≤ "
              "interval per strategy).\n",
              static_cast<unsigned long long>(Totals[0]),
              static_cast<unsigned long long>(Totals[1]),
              static_cast<unsigned long long>(Totals[2]),
              static_cast<unsigned long long>(Totals[3]));
  if (!AllVerified) {
    std::fprintf(stderr, "error: a solution failed the independent "
                         "side-effecting verifier\n");
    return 1;
  }
  if (!DirectivesHold)
    return 1;
  if (Totals[0] > Totals[1] || Totals[2] > Totals[3] ||
      Totals[2] > Totals[0] || Totals[3] > Totals[1]) {
    std::fprintf(stderr, "error: precision ordering violated\n");
    return 1;
  }
  if (!JsonPath.empty() && !Report.writeFile(JsonPath))
    return 1;
  return 0;
}
