//===- bench/bench_alarms.cpp - Alarm counts per solver strategy ----------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-user consequence of the paper's precision results: running the
/// division-by-zero and array-bounds checkers over the WCET suite, the
/// ⊟-solver's tighter invariants suppress alarms that the widening-only
/// and two-phase results cannot rule out. All three are sound, so alarm
/// counts order the strategies by precision: ⊟ ≤ two-phase ≤ ▽-only.
///
//===----------------------------------------------------------------------===//

#include "analysis/checks.h"
#include "analysis/interproc.h"
#include "bench/bench_json.h"
#include "lang/parser.h"
#include "support/table.h"
#include "workloads/wcet_suite.h"

#include <cstdio>

using namespace warrow;

namespace {

struct AlarmRun {
  CheckSummary Summary;
  double Seconds = 0;
  uint64_t RhsEvals = 0;
};

AlarmRun alarmsFor(const Program &P, const ProgramCfg &Cfgs,
                   SolverChoice Choice) {
  InterprocAnalysis Analysis(P, Cfgs, AnalysisOptions{});
  AnalysisResult Result = Analysis.run(Choice);
  return {summarize(runChecks(P, Cfgs, Result)), Result.Seconds,
          Result.Stats.RhsEvals};
}

std::string cell(const CheckSummary &S) {
  return std::to_string(S.DivAlarms) + "/" + std::to_string(S.BoundsAlarms);
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = warrow::bench::consumeJsonFlag(argc, argv);
  warrow::bench::JsonReport Report;
  std::printf("=== Alarms (division-by-zero / out-of-bounds) per solver "
              "strategy ===\n\n");

  Table T({"Program", "⊟ alarms", "two-phase", "▽-only"});
  uint64_t WarrowTotal = 0, TwoPhaseTotal = 0, WidenTotal = 0;
  for (const WcetBenchmark &B : wcetSuite()) {
    DiagnosticEngine Diags;
    auto P = parseProgram(B.Source, Diags);
    if (!P) {
      std::fprintf(stderr, "error: %s: %s", B.Name.c_str(),
                   Diags.str().c_str());
      return 1;
    }
    ProgramCfg Cfgs = buildProgramCfg(*P);
    AlarmRun Warrow = alarmsFor(*P, Cfgs, SolverChoice::Warrow);
    AlarmRun TwoPhase = alarmsFor(*P, Cfgs, SolverChoice::TwoPhase);
    AlarmRun Widen = alarmsFor(*P, Cfgs, SolverChoice::WidenOnly);
    WarrowTotal += Warrow.Summary.DivAlarms + Warrow.Summary.BoundsAlarms;
    TwoPhaseTotal +=
        TwoPhase.Summary.DivAlarms + TwoPhase.Summary.BoundsAlarms;
    WidenTotal += Widen.Summary.DivAlarms + Widen.Summary.BoundsAlarms;
    T.addRow({B.Name, cell(Warrow.Summary), cell(TwoPhase.Summary),
              cell(Widen.Summary)});
    struct Cfg {
      const char *Solver;
      const AlarmRun *R;
    };
    for (Cfg C : {Cfg{"slr+warrow", &Warrow}, Cfg{"two-phase", &TwoPhase},
                  Cfg{"slr+widen", &Widen}})
      Report.addRecord(B.Name, C.Solver, C.R->Seconds * 1e9, 1,
                       C.R->RhsEvals)
          .set("div_alarms", static_cast<uint64_t>(C.R->Summary.DivAlarms))
          .set("bounds_alarms",
               static_cast<uint64_t>(C.R->Summary.BoundsAlarms));
  }
  std::fputs(T.str().c_str(), stdout);
  std::printf("\nTotal alarms: ⊟ %llu, two-phase %llu, ▽-only %llu "
              "(expected ordering: ⊟ ≤ two-phase ≤ ▽-only).\n",
              static_cast<unsigned long long>(WarrowTotal),
              static_cast<unsigned long long>(TwoPhaseTotal),
              static_cast<unsigned long long>(WidenTotal));
  if (!JsonPath.empty() && !Report.writeFile(JsonPath))
    return 1;
  return 0;
}
