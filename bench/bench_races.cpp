//===- bench/bench_races.cpp - Race alarms per solver strategy -----------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The race-detection consequence of the paper's precision results: the
/// lockset detector runs as a side-effecting constraint system, and the
/// solver strategy decides how many alarms survive. All strategies are
/// sound, so alarm counts order them by precision: ⊟ ≤ two-phase ≤
/// ▽-only, with strict gaps on the programs whose only bare access sits
/// in code reachable only under widened loop bounds (the two-phase
/// baseline freezes the access accumulators in its narrowing phase and
/// cannot retract them).
///
/// Every run is re-checked with the independent side-effecting verifier;
/// alarm counts and eval counts are emitted to the JSON report so CI can
/// gate on them exactly (both are deterministic).
///
//===----------------------------------------------------------------------===//

#include "analysis/races.h"
#include "bench/bench_json.h"
#include "lang/parser.h"
#include "support/table.h"
#include "workloads/race_suite.h"

#include <cstdio>

using namespace warrow;

namespace {

struct RaceRun {
  size_t Alarms = 0;
  double Seconds = 0;
  uint64_t RhsEvals = 0;
  bool Verified = true;
};

RaceRun racesFor(const Program &P, const ProgramCfg &Cfgs,
                 SolverChoice Choice) {
  RaceAnalysis Analysis(P, Cfgs, AnalysisOptions{});
  RaceAnalysisResult Result = Analysis.run(Choice);
  RaceRun Run{Result.Races.size(), Result.Seconds, Result.Stats.RhsEvals,
              true};
  // The verifier covers the SLR+-based strategies only; the two-phase
  // baseline's frozen accumulators do not form a post-solution.
  if (Choice != SolverChoice::TwoPhase)
    Run.Verified = static_cast<bool>(Analysis.verify(Result));
  return Run;
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = warrow::bench::consumeJsonFlag(argc, argv);
  warrow::bench::JsonReport Report;
  std::printf("=== Race alarms per solver strategy (lockset detector on "
              "side-effecting constraints) ===\n\n");

  Table T({"Program", "known races", "⊟ alarms", "two-phase", "▽-only"});
  uint64_t WarrowTotal = 0, TwoPhaseTotal = 0, WidenTotal = 0;
  bool AllVerified = true;
  for (const RaceBenchmark &B : raceSuite()) {
    DiagnosticEngine Diags;
    auto P = parseProgram(B.Source, Diags);
    if (!P) {
      std::fprintf(stderr, "error: %s: %s", B.Name.c_str(),
                   Diags.str().c_str());
      return 1;
    }
    ProgramCfg Cfgs = buildProgramCfg(*P);
    RaceRun Warrow = racesFor(*P, Cfgs, SolverChoice::Warrow);
    RaceRun TwoPhase = racesFor(*P, Cfgs, SolverChoice::TwoPhase);
    RaceRun Widen = racesFor(*P, Cfgs, SolverChoice::WidenOnly);
    AllVerified &= Warrow.Verified && Widen.Verified;
    WarrowTotal += Warrow.Alarms;
    TwoPhaseTotal += TwoPhase.Alarms;
    WidenTotal += Widen.Alarms;
    T.addRow({B.Name, std::to_string(B.RacyGlobals.size()),
              std::to_string(Warrow.Alarms), std::to_string(TwoPhase.Alarms),
              std::to_string(Widen.Alarms)});
    struct Cfg {
      const char *Solver;
      const RaceRun *R;
    };
    for (Cfg C : {Cfg{"slr+warrow", &Warrow}, Cfg{"two-phase", &TwoPhase},
                  Cfg{"slr+widen", &Widen}})
      Report.addRecord(B.Name, C.Solver, C.R->Seconds * 1e9, 1,
                       C.R->RhsEvals)
          .set("race_alarms", static_cast<uint64_t>(C.R->Alarms))
          .set("known_races", static_cast<uint64_t>(B.RacyGlobals.size()));
  }
  std::fputs(T.str().c_str(), stdout);
  std::printf("\nTotal alarms: ⊟ %llu, two-phase %llu, ▽-only %llu "
              "(expected ordering: ⊟ ≤ two-phase ≤ ▽-only).\n",
              static_cast<unsigned long long>(WarrowTotal),
              static_cast<unsigned long long>(TwoPhaseTotal),
              static_cast<unsigned long long>(WidenTotal));
  if (!AllVerified) {
    std::fprintf(stderr, "error: a solution failed the independent "
                         "side-effecting verifier\n");
    return 1;
  }
  if (WarrowTotal > TwoPhaseTotal || TwoPhaseTotal > WidenTotal) {
    std::fprintf(stderr, "error: precision ordering violated\n");
    return 1;
  }
  if (!JsonPath.empty() && !Report.writeFile(JsonPath))
    return 1;
  return 0;
}
