//===- bench/bench_ablation_localized.cpp - Localized-widening ablation ---------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation: applying ⊟ at *every* unknown (the paper's baseline design)
/// versus only at dynamically detected widening points — unknowns on
/// dependency cycles plus side-effected unknowns — with plain join
/// elsewhere (the localized refinement explored in the follow-up journal
/// work on SLR). Localization can only help precision (acyclic unknowns
/// never widen) at the cost of the detection bookkeeping.
///
//===----------------------------------------------------------------------===//

#include "analysis/interproc.h"
#include "analysis/precision.h"
#include "bench/bench_json.h"
#include "lang/parser.h"
#include "support/table.h"
#include "workloads/wcet_suite.h"

#include <cstdio>

using namespace warrow;

int main(int argc, char **argv) {
  std::string JsonPath = warrow::bench::consumeJsonFlag(argc, argv);
  warrow::bench::JsonReport Report;
  std::printf("=== Ablation: ⊟ everywhere vs. ⊟ at widening points only "
              "===\n\n");

  Table T({"Program", "Points", "Localized wins", "Everywhere wins", "Equal",
           "Evals loc", "Evals all"});
  uint64_t Wins = 0, Losses = 0;
  for (const WcetBenchmark &B : wcetSuite()) {
    DiagnosticEngine Diags;
    auto P = parseProgram(B.Source, Diags);
    if (!P) {
      std::fprintf(stderr, "error: %s: %s", B.Name.c_str(),
                   Diags.str().c_str());
      return 1;
    }
    ProgramCfg Cfgs = buildProgramCfg(*P);

    AnalysisOptions Everywhere;
    InterprocAnalysis EverywhereAnalysis(*P, Cfgs, Everywhere);
    AnalysisResult EverywhereResult =
        EverywhereAnalysis.run(SolverChoice::Warrow);

    AnalysisOptions Localized;
    Localized.LocalizedWidening = true;
    InterprocAnalysis LocalizedAnalysis(*P, Cfgs, Localized);
    AnalysisResult LocalizedResult =
        LocalizedAnalysis.run(SolverChoice::Warrow);

    if (!EverywhereResult.Stats.Converged ||
        !LocalizedResult.Stats.Converged) {
      std::fprintf(stderr, "error: %s did not converge\n", B.Name.c_str());
      return 1;
    }
    PrecisionComparison Cmp = comparePrecision(LocalizedResult.Solution,
                                               EverywhereResult.Solution);
    Report.addRecord(B.Name, "slr+warrow-localized",
                     LocalizedResult.Seconds * 1e9, 1,
                     LocalizedResult.Stats.RhsEvals)
        .set("improved", static_cast<uint64_t>(Cmp.Improved))
        .set("worse", static_cast<uint64_t>(Cmp.Worse));
    Report.addRecord(B.Name, "slr+warrow", EverywhereResult.Seconds * 1e9, 1,
                     EverywhereResult.Stats.RhsEvals);
    Wins += Cmp.Improved;
    Losses += Cmp.Worse;
    T.addRow({B.Name, std::to_string(Cmp.ComparablePoints),
              std::to_string(Cmp.Improved), std::to_string(Cmp.Worse),
              std::to_string(Cmp.Equal),
              std::to_string(LocalizedResult.Stats.RhsEvals),
              std::to_string(EverywhereResult.Stats.RhsEvals)});
  }
  std::fputs(T.str().c_str(), stdout);
  std::printf("\nLocalized widening improves %llu points and loses %llu "
              "across the suite (expected: wins at acyclic unknowns that "
              "the everywhere-⊟ run widened in passing).\n",
              static_cast<unsigned long long>(Wins),
              static_cast<unsigned long long>(Losses));
  if (!JsonPath.empty() && !Report.writeFile(JsonPath))
    return 1;
  return 0;
}
