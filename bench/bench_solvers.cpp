//===- bench/bench_solvers.cpp - Solver micro-benchmarks -----------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Google-benchmark micro-benchmarks for the dense solvers, covering the
/// complexity claims of Section 4:
///  - Theorem 1: SRR's evaluation count is O(h n^2) and at most
///    n + (h/2)n(n+1) on monotone systems;
///  - Theorem 2: SW behaves like ordinary worklist iteration up to the
///    priority-queue log factor (evaluations ~ h * N);
///  - ⊟ vs ⊔/▽ overhead per solver on the same systems.
///
//===----------------------------------------------------------------------===//

#include "bench/gbench_json.h"
#include "engine/solve.h"
#include "lattice/combine.h"
#include "solvers/sw.h"
#include "solvers/srr.h"
#include "solvers/two_phase.h"
#include "workloads/eq_generators.h"

#include <benchmark/benchmark.h>

using namespace warrow;

namespace {

void BM_ChainSW_Join(benchmark::State &State) {
  DenseSystem<Interval> S =
      chainSystem(static_cast<unsigned>(State.range(0)), 64);
  for (auto _ : State) {
    SolveResult<Interval> R = solveSW(S, JoinCombine{});
    benchmark::DoNotOptimize(R.Sigma.data());
    State.counters["evals"] = static_cast<double>(R.Stats.RhsEvals);
  }
  warrow::bench::setBenchMeta(
      State, "chain/" + std::to_string(State.range(0)), "SW+join");
}
BENCHMARK(BM_ChainSW_Join)->Arg(64)->Arg(256)->Arg(1024);

void BM_ChainSW_Warrow(benchmark::State &State) {
  DenseSystem<Interval> S =
      chainSystem(static_cast<unsigned>(State.range(0)), 64);
  for (auto _ : State) {
    SolveResult<Interval> R = solveSW(S, WarrowCombine{});
    benchmark::DoNotOptimize(R.Sigma.data());
    State.counters["evals"] = static_cast<double>(R.Stats.RhsEvals);
  }
  warrow::bench::setBenchMeta(
      State, "chain/" + std::to_string(State.range(0)), "SW+warrow");
}
BENCHMARK(BM_ChainSW_Warrow)->Arg(64)->Arg(256)->Arg(1024);

void BM_RingSolvers(benchmark::State &State) {
  unsigned Size = static_cast<unsigned>(State.range(0));
  int Which = static_cast<int>(State.range(1));
  DenseSystem<Interval> S = ringSystem(Size, 1000);
  // RR and W may legitimately diverge under ⊟ (Examples 1-2); cap their
  // work and report convergence as a counter instead of hanging.
  SolverOptions Options;
  Options.MaxRhsEvals = 300'000;
  // Historical labels; the registry's case-insensitive lookup resolves
  // them, replacing the hard-coded solver switch.
  static const char *SolverNames[] = {"RR", "W", "SRR", "SW"};
  for (auto _ : State) {
    SolveResult<Interval> R = engine::solveDenseByName(
        SolverNames[Which], S, WarrowCombine{}, Options);
    benchmark::DoNotOptimize(R.Stats.RhsEvals);
    State.counters["evals"] = static_cast<double>(R.Stats.RhsEvals);
    State.counters["converged"] = R.Stats.Converged ? 1 : 0;
  }
  warrow::bench::setBenchMeta(State, "ring/" + std::to_string(Size),
                              std::string(SolverNames[Which]) + "+warrow");
}
// SRR/SW terminate under ⊟ on monotone systems (Theorems 1-2); RR and W
// are capped (they can diverge, which the counters make visible).
BENCHMARK(BM_RingSolvers)
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({128, 2})
    ->Args({128, 3})
    ->Args({512, 2})
    ->Args({512, 3});

void BM_RandomSystem_SW(benchmark::State &State) {
  DenseSystem<Interval> S = randomMonotoneSystem(
      static_cast<unsigned>(State.range(0)), 4, 512, 42);
  for (auto _ : State) {
    SolveResult<Interval> R = solveSW(S, WarrowCombine{});
    benchmark::DoNotOptimize(R.Stats.RhsEvals);
    State.counters["evals"] = static_cast<double>(R.Stats.RhsEvals);
  }
  warrow::bench::setBenchMeta(
      State, "random/" + std::to_string(State.range(0)), "SW+warrow");
}
BENCHMARK(BM_RandomSystem_SW)->Arg(100)->Arg(400)->Arg(1600);

void BM_RandomSystem_SRR(benchmark::State &State) {
  DenseSystem<Interval> S = randomMonotoneSystem(
      static_cast<unsigned>(State.range(0)), 4, 512, 42);
  for (auto _ : State) {
    SolveResult<Interval> R = solveSRR(S, WarrowCombine{});
    benchmark::DoNotOptimize(R.Stats.RhsEvals);
    State.counters["evals"] = static_cast<double>(R.Stats.RhsEvals);
  }
  warrow::bench::setBenchMeta(
      State, "random/" + std::to_string(State.range(0)), "SRR+warrow");
}
BENCHMARK(BM_RandomSystem_SRR)->Arg(100)->Arg(400);

void BM_TwoPhase(benchmark::State &State) {
  DenseSystem<Interval> S = randomMonotoneSystem(
      static_cast<unsigned>(State.range(0)), 4, 512, 42);
  for (auto _ : State) {
    SolveResult<Interval> R = solveTwoPhase(S);
    benchmark::DoNotOptimize(R.Stats.RhsEvals);
    State.counters["evals"] = static_cast<double>(R.Stats.RhsEvals);
  }
  warrow::bench::setBenchMeta(
      State, "random/" + std::to_string(State.range(0)), "two-phase");
}
BENCHMARK(BM_TwoPhase)->Arg(100)->Arg(400);

} // namespace

WARROW_GBENCH_JSON_MAIN
