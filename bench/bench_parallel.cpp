//===- bench/bench_parallel.cpp - SCC-parallel solver scaling ------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scaling sweep of the SCC-scheduled parallel SW solver against
/// sequential SW, on condensations with many independent components
/// (the shape the scheduler exploits) and with cross-linked components
/// (a deeper DAG with less parallel slack). Thread counts 1/2/4/8 are
/// measured so the speedup is *measured, not asserted*; on a 1-core
/// machine the sweep degenerates to an overhead measurement of the
/// scheduling layer, which is itself worth tracking.
///
//===----------------------------------------------------------------------===//

#include "bench/gbench_json.h"
#include "lattice/combine.h"
#include "solvers/parallel_sw.h"
#include "solvers/sw.h"
#include "workloads/eq_generators.h"

#include <benchmark/benchmark.h>

using namespace warrow;

namespace {

// 128 independent ring SCCs of 256 unknowns: ≥ 64-way parallel slack.
const DenseSystem<Interval> &independentWorkload() {
  static DenseSystem<Interval> S = manyComponentSystem(128, 256, 2048, 0, 42);
  return S;
}

// Same shape, but every ring entry reads two earlier rings: a DAG with
// real dependency edges for the ready-count scheduler to respect.
const DenseSystem<Interval> &linkedWorkload() {
  static DenseSystem<Interval> S = manyComponentSystem(128, 256, 2048, 2, 43);
  return S;
}

void runParallel(benchmark::State &State, const DenseSystem<Interval> &S,
                 const std::string &Workload) {
  ParallelOptions P;
  P.Threads = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    SolveResult<Interval> R = solveParallelSW(S, WarrowCombine{}, P);
    benchmark::DoNotOptimize(R.Sigma.data());
    State.counters["evals"] = static_cast<double>(R.Stats.RhsEvals);
    State.counters["converged"] = R.Stats.Converged ? 1 : 0;
  }
  State.counters["threads"] = static_cast<double>(P.Threads);
  warrow::bench::setBenchMeta(State, Workload,
                              "parallel-sw/" +
                                  std::to_string(State.range(0)) + "t");
}

void BM_ParallelSW_Independent(benchmark::State &State) {
  runParallel(State, independentWorkload(), "many-components/128x256");
}
BENCHMARK(BM_ParallelSW_Independent)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_ParallelSW_Linked(benchmark::State &State) {
  runParallel(State, linkedWorkload(), "linked-components/128x256x2");
}
BENCHMARK(BM_ParallelSW_Linked)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_SequentialSW_Independent(benchmark::State &State) {
  const DenseSystem<Interval> &S = independentWorkload();
  for (auto _ : State) {
    SolveResult<Interval> R = solveSW(S, WarrowCombine{});
    benchmark::DoNotOptimize(R.Sigma.data());
    State.counters["evals"] = static_cast<double>(R.Stats.RhsEvals);
    State.counters["converged"] = R.Stats.Converged ? 1 : 0;
  }
  warrow::bench::setBenchMeta(State, "many-components/128x256", "SW");
}
BENCHMARK(BM_SequentialSW_Independent)->Unit(benchmark::kMillisecond);

void BM_SequentialSW_Linked(benchmark::State &State) {
  const DenseSystem<Interval> &S = linkedWorkload();
  for (auto _ : State) {
    SolveResult<Interval> R = solveSW(S, WarrowCombine{});
    benchmark::DoNotOptimize(R.Sigma.data());
    State.counters["evals"] = static_cast<double>(R.Stats.RhsEvals);
    State.counters["converged"] = R.Stats.Converged ? 1 : 0;
  }
  warrow::bench::setBenchMeta(State, "linked-components/128x256x2", "SW");
}
BENCHMARK(BM_SequentialSW_Linked)->Unit(benchmark::kMillisecond);

} // namespace

WARROW_GBENCH_JSON_MAIN
