//===- bench/bench_parallel.cpp - SCC-parallel solver scaling ------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scaling sweeps of the parallel solvers against their sequential
/// baselines, on condensations with many independent components (the
/// shape the schedulers exploit) and with cross-linked components (a
/// deeper DAG with less parallel slack):
///
///  - the SCC-scheduled parallel SW solver vs sequential SW (dense), and
///  - the work-stealing parallel SLR+ engine vs sequential SLR+ (local,
///    side-effecting interface over the same dense workloads).
///
/// Thread counts 1/2/4/8 are measured so the speedup is *measured, not
/// asserted*; on a 1-core machine the sweep degenerates to an overhead
/// measurement of the scheduling layer, which is itself worth tracking —
/// every record carries `hw_threads` (hardware_concurrency) so readers
/// can tell the two regimes apart. The SLR+ records gate on exact
/// `rhs_evals`: on these static systems the eval count is a pure
/// function of the system (pre-pass + per-component solves + one eval
/// per cross-component proxy), independent of the schedule.
///
//===----------------------------------------------------------------------===//

#include "bench/gbench_json.h"
#include "engine/strategies/parallel_slr.h"
#include "lattice/combine.h"
#include "solvers/parallel_sw.h"
#include "solvers/slr_plus.h"
#include "solvers/sw.h"
#include "workloads/eq_generators.h"

#include <benchmark/benchmark.h>

#include <thread>

using namespace warrow;

namespace {

// 128 independent ring SCCs of 256 unknowns: ≥ 64-way parallel slack.
const DenseSystem<Interval> &independentWorkload() {
  static DenseSystem<Interval> S = manyComponentSystem(128, 256, 2048, 0, 42);
  return S;
}

// Same shape, but every ring entry reads two earlier rings: a DAG with
// real dependency edges for the ready-count scheduler to respect.
const DenseSystem<Interval> &linkedWorkload() {
  static DenseSystem<Interval> S = manyComponentSystem(128, 256, 2048, 2, 43);
  return S;
}

void runParallel(benchmark::State &State, const DenseSystem<Interval> &S,
                 const std::string &Workload) {
  ParallelOptions P;
  P.Threads = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    SolveResult<Interval> R = solveParallelSW(S, WarrowCombine{}, P);
    benchmark::DoNotOptimize(R.Sigma.data());
    State.counters["evals"] = static_cast<double>(R.Stats.RhsEvals);
    State.counters["converged"] = R.Stats.Converged ? 1 : 0;
  }
  State.counters["threads"] = static_cast<double>(P.Threads);
  warrow::bench::setBenchMeta(State, Workload,
                              "parallel-sw/" +
                                  std::to_string(State.range(0)) + "t");
}

void BM_ParallelSW_Independent(benchmark::State &State) {
  runParallel(State, independentWorkload(), "many-components/128x256");
}
BENCHMARK(BM_ParallelSW_Independent)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_ParallelSW_Linked(benchmark::State &State) {
  runParallel(State, linkedWorkload(), "linked-components/128x256x2");
}
BENCHMARK(BM_ParallelSW_Linked)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_SequentialSW_Independent(benchmark::State &State) {
  const DenseSystem<Interval> &S = independentWorkload();
  for (auto _ : State) {
    SolveResult<Interval> R = solveSW(S, WarrowCombine{});
    benchmark::DoNotOptimize(R.Sigma.data());
    State.counters["evals"] = static_cast<double>(R.Stats.RhsEvals);
    State.counters["converged"] = R.Stats.Converged ? 1 : 0;
  }
  warrow::bench::setBenchMeta(State, "many-components/128x256", "SW");
}
BENCHMARK(BM_SequentialSW_Independent)->Unit(benchmark::kMillisecond);

void BM_SequentialSW_Linked(benchmark::State &State) {
  const DenseSystem<Interval> &S = linkedWorkload();
  for (auto _ : State) {
    SolveResult<Interval> R = solveSW(S, WarrowCombine{});
    benchmark::DoNotOptimize(R.Sigma.data());
    State.counters["evals"] = static_cast<double>(R.Stats.RhsEvals);
    State.counters["converged"] = R.Stats.Converged ? 1 : 0;
  }
  warrow::bench::setBenchMeta(State, "linked-components/128x256x2", "SW");
}
BENCHMARK(BM_SequentialSW_Linked)->Unit(benchmark::kMillisecond);

// --- work-stealing parallel SLR+ -------------------------------------------

using SideSys = SideEffectingSystem<int, Interval>;

/// Local solving only visits what the root reaches, so the sweep starts
/// from a synthetic root (-1) joining every ring entry — all components
/// become reachable and the condensation has the full parallel slack.
/// No actual side effects: the static case whose eval count is
/// schedule-free, so `rhs_evals` can gate exactly across hosts and
/// thread counts.
constexpr int SlrRoot = -1;

SideSys slrView(const DenseSystem<Interval> &Dense, unsigned NumComps,
                unsigned CompSize) {
  return SideSys([&Dense, NumComps, CompSize](int X) -> SideSys::Rhs {
    if (X == SlrRoot)
      return [NumComps, CompSize](const SideSys::Get &Get,
                                  const SideSys::Side &) {
        Interval Acc = Interval::bot();
        for (unsigned C = 0; C < NumComps; ++C)
          Acc = Acc.join(Get(static_cast<int>(C * CompSize)));
        return Acc;
      };
    return [&Dense, X](const SideSys::Get &Get, const SideSys::Side &) {
      return Dense.eval(static_cast<Var>(X),
                        [&Get](Var Y) { return Get(static_cast<int>(Y)); });
    };
  });
}

// Smaller than the SW workloads: local solving tracks per-unknown state
// the dense solver does not, and the sweep runs 4 thread counts twice.
constexpr unsigned SlrComps = 64;
constexpr unsigned SlrCompSize = 64;

const DenseSystem<Interval> &slrIndependentWorkload() {
  static DenseSystem<Interval> S =
      manyComponentSystem(SlrComps, SlrCompSize, 512, 0, 44);
  return S;
}

const DenseSystem<Interval> &slrLinkedWorkload() {
  static DenseSystem<Interval> S =
      manyComponentSystem(SlrComps, SlrCompSize, 512, 2, 45);
  return S;
}

void recordCommon(benchmark::State &State, const SolverStats &Stats) {
  State.counters["evals"] = static_cast<double>(Stats.RhsEvals);
  State.counters["converged"] = Stats.Converged ? 1 : 0;
  State.counters["hw_threads"] =
      static_cast<double>(std::thread::hardware_concurrency());
}

void runParallelSlr(benchmark::State &State, const DenseSystem<Interval> &Dense,
                    const std::string &Workload) {
  SideSys Side = slrView(Dense, SlrComps, SlrCompSize);
  SolverOptions Options;
  Options.Threads = static_cast<unsigned>(State.range(0));
  SolverStats Stats;
  for (auto _ : State) {
    PartialSolution<int, Interval> R =
        engine::runParallelSlrPlus(Side, SlrRoot, WarrowCombine{}, Options);
    benchmark::DoNotOptimize(&R.Sigma);
    Stats = R.Stats;
  }
  recordCommon(State, Stats);
  warrow::bench::setBenchMeta(State, Workload,
                              "parallel-slr-plus/" +
                                  std::to_string(State.range(0)) + "t");
}

void BM_ParallelSlrPlus_Independent(benchmark::State &State) {
  runParallelSlr(State, slrIndependentWorkload(), "many-components/64x64");
}
BENCHMARK(BM_ParallelSlrPlus_Independent)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_ParallelSlrPlus_Linked(benchmark::State &State) {
  runParallelSlr(State, slrLinkedWorkload(), "linked-components/64x64x2");
}
BENCHMARK(BM_ParallelSlrPlus_Linked)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void runSequentialSlr(benchmark::State &State,
                      const DenseSystem<Interval> &Dense,
                      const std::string &Workload) {
  SideSys Side = slrView(Dense, SlrComps, SlrCompSize);
  SolverStats Stats;
  for (auto _ : State) {
    PartialSolution<int, Interval> R =
        solveSLRPlus(Side, SlrRoot, WarrowCombine{});
    benchmark::DoNotOptimize(&R.Sigma);
    Stats = R.Stats;
  }
  recordCommon(State, Stats);
  warrow::bench::setBenchMeta(State, Workload, "slr-plus");
}

void BM_SequentialSlrPlus_Independent(benchmark::State &State) {
  runSequentialSlr(State, slrIndependentWorkload(), "many-components/64x64");
}
BENCHMARK(BM_SequentialSlrPlus_Independent)->Unit(benchmark::kMillisecond);

void BM_SequentialSlrPlus_Linked(benchmark::State &State) {
  runSequentialSlr(State, slrLinkedWorkload(), "linked-components/64x64x2");
}
BENCHMARK(BM_SequentialSlrPlus_Linked)->Unit(benchmark::kMillisecond);

} // namespace

WARROW_GBENCH_JSON_MAIN
