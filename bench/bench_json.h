//===- bench/bench_json.h - Machine-readable bench output -------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared `--json out.json` support for every bench binary, so that perf
/// trajectories are tracked by tooling instead of eyeballed from tables.
/// The schema is one JSON array of flat record objects; every record
/// carries at least
///
///     workload    string  what was solved (program / generator / size)
///     solver      string  which solver or configuration ran
///     wall_ns     number  wall-clock nanoseconds (per iteration)
///     iterations  number  timing-loop iterations behind wall_ns
///     rhs_evals   number  right-hand-side evaluations (0 if untimed)
///
/// plus free-form extra fields per bench. Table regenerators append
/// records explicitly; google-benchmark binaries use the reporter in
/// gbench_json.h which derives the records from labeled benchmark runs.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_BENCH_BENCH_JSON_H
#define WARROW_BENCH_BENCH_JSON_H

#include "solvers/stats.h"

#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

namespace warrow {
namespace bench {

/// Escapes \p S for inclusion in a JSON string literal.
inline std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

/// One flat JSON object, fields kept in insertion order.
class JsonRecord {
public:
  JsonRecord &set(const std::string &Key, const std::string &Value) {
    return raw(Key, "\"" + jsonEscape(Value) + "\"");
  }
  JsonRecord &set(const std::string &Key, const char *Value) {
    return set(Key, std::string(Value));
  }
  JsonRecord &set(const std::string &Key, uint64_t Value) {
    return raw(Key, std::to_string(Value));
  }
  JsonRecord &set(const std::string &Key, int64_t Value) {
    return raw(Key, std::to_string(Value));
  }
  JsonRecord &set(const std::string &Key, double Value) {
    if (!std::isfinite(Value))
      return raw(Key, "null");
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.6g", Value);
    return raw(Key, Buf);
  }
  JsonRecord &set(const std::string &Key, bool Value) {
    return raw(Key, Value ? "true" : "false");
  }

  std::string render() const {
    std::string S = "{";
    for (size_t I = 0; I < Fields.size(); ++I) {
      if (I)
        S += ", ";
      S += "\"" + jsonEscape(Fields[I].first) + "\": " + Fields[I].second;
    }
    return S + "}";
  }

private:
  JsonRecord &raw(const std::string &Key, std::string Rendered) {
    Fields.emplace_back(Key, std::move(Rendered));
    return *this;
  }
  std::vector<std::pair<std::string, std::string>> Fields;
};

/// Host/build metadata record (`"meta": true`), prepended to every
/// report so cross-host numbers are interpretable: CI hardware varies,
/// and a wall_ns from a 1-thread container is not comparable to a
/// 16-thread workstation. Tools must skip records carrying "meta".
inline JsonRecord makeMetaRecord() {
  JsonRecord R;
  R.set("meta", true);
  R.set("hardware_concurrency",
        static_cast<uint64_t>(std::thread::hardware_concurrency()));
#ifdef __VERSION__
  R.set("compiler", std::string(__VERSION__));
#endif
#ifdef WARROW_BUILD_TYPE
  R.set("build_type", std::string(WARROW_BUILD_TYPE));
#endif
#ifdef WARROW_CXX_FLAGS
  R.set("cxx_flags", std::string(WARROW_CXX_FLAGS));
#endif
  return R;
}

/// Adds the full SolverStats of a run plus the tracing configuration to
/// \p R. `traced` records whether a TraceSink was attached — published
/// numbers must come from untraced runs, and the compare tooling can
/// refuse mixed reports.
inline JsonRecord &setSolverStats(JsonRecord &R, const SolverStats &S,
                                  const SolverOptions &Options = {}) {
  R.set("updates", S.Updates)
      .set("vars_seen", S.VarsSeen)
      .set("queue_max", S.QueueMax)
      .set("rhs_cache_hits", S.RhsCacheHits)
      .set("rhs_cache_misses", S.RhsCacheMisses)
      .set("converged", S.Converged)
      .set("traced", Options.Trace != nullptr);
  return R;
}

/// Collects records and writes them as a JSON array.
class JsonReport {
public:
  JsonRecord &addRecord() {
    Records.emplace_back();
    return Records.back();
  }

  /// Convenience for the required schema fields.
  JsonRecord &addRecord(const std::string &Workload, const std::string &Solver,
                        double WallNs, uint64_t Iterations,
                        uint64_t RhsEvals) {
    JsonRecord &R = addRecord();
    R.set("workload", Workload)
        .set("solver", Solver)
        .set("wall_ns", WallNs)
        .set("iterations", Iterations)
        .set("rhs_evals", RhsEvals);
    return R;
  }

  bool empty() const { return Records.empty(); }

  std::string render() const {
    std::string S = "[\n";
    S += "  " + makeMetaRecord().render();
    S += Records.empty() ? "\n" : ",\n";
    for (size_t I = 0; I < Records.size(); ++I) {
      S += "  " + Records[I].render();
      if (I + 1 < Records.size())
        S += ",";
      S += "\n";
    }
    return S + "]\n";
  }

  /// Writes the report; returns false (with a message on stderr) on I/O
  /// failure.
  bool writeFile(const std::string &Path) const {
    std::FILE *F = std::fopen(Path.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "error: cannot open %s for writing\n",
                   Path.c_str());
      return false;
    }
    std::string S = render();
    bool Ok = std::fwrite(S.data(), 1, S.size(), F) == S.size();
    Ok &= std::fclose(F) == 0;
    if (!Ok)
      std::fprintf(stderr, "error: short write to %s\n", Path.c_str());
    return Ok;
  }

private:
  std::vector<JsonRecord> Records;
};

/// Extracts `--json PATH` or `--json=PATH` from the argument vector,
/// compacting argv in place. Returns the path, or "" if absent.
inline std::string consumeJsonFlag(int &Argc, char **Argv) {
  std::string Path;
  int Out = 1;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0 && I + 1 < Argc) {
      Path = Argv[++I];
      continue;
    }
    if (std::strncmp(Argv[I], "--json=", 7) == 0) {
      Path = Argv[I] + 7;
      continue;
    }
    Argv[Out++] = Argv[I];
  }
  Argc = Out;
  Argv[Argc] = nullptr;
  return Path;
}

} // namespace bench
} // namespace warrow

#endif // WARROW_BENCH_BENCH_JSON_H
