//===- bench/bench_operator.cpp - Combine operator micro-costs ------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-update cost of the combine operators on interval and environment
/// values: the ⊟ operator adds one order check over plain ▽ (Section 3).
///
//===----------------------------------------------------------------------===//

#include "analysis/env.h"
#include "bench/gbench_json.h"
#include "lattice/combine.h"
#include "lattice/interval.h"
#include "support/rng.h"

#include <benchmark/benchmark.h>

using namespace warrow;

namespace {

std::vector<Interval> sampleIntervals(size_t Count, uint64_t Seed) {
  Rng R(Seed);
  std::vector<Interval> Out;
  Out.reserve(Count);
  for (size_t I = 0; I < Count; ++I) {
    int64_t Lo = R.range(-1000, 1000);
    Out.push_back(
        Interval::make(Lo, Lo + static_cast<int64_t>(R.below(100))));
  }
  return Out;
}

template <typename C>
void runIntervalCombine(benchmark::State &State, const char *Name) {
  warrow::bench::setBenchMeta(State, "interval-combine/1024", Name);
  C Combine{};
  auto Values = sampleIntervals(1024, 7);
  for (auto _ : State) {
    Interval Acc = Interval::constant(0);
    for (const Interval &V : Values)
      Acc = Combine(0, Acc, V);
    benchmark::DoNotOptimize(Acc);
  }
}

void BM_Interval_Join(benchmark::State &State) {
  runIntervalCombine<JoinCombine>(State, "join");
}
void BM_Interval_Widen(benchmark::State &State) {
  runIntervalCombine<WidenCombine>(State, "widen");
}
void BM_Interval_Warrow(benchmark::State &State) {
  runIntervalCombine<WarrowCombine>(State, "warrow");
}
BENCHMARK(BM_Interval_Join);
BENCHMARK(BM_Interval_Widen);
BENCHMARK(BM_Interval_Warrow);

void BM_Env_Warrow(benchmark::State &State) {
  size_t Vars = static_cast<size_t>(State.range(0));
  Rng R(11);
  std::vector<AbsEnv> Envs;
  for (int K = 0; K < 64; ++K) {
    AbsEnv E;
    for (size_t V = 1; V <= Vars; ++V) {
      int64_t Lo = R.range(-100, 100);
      E.set(static_cast<Symbol>(V),
            Interval::make(Lo, Lo + static_cast<int64_t>(R.below(50))));
    }
    Envs.push_back(std::move(E));
  }
  warrow::bench::setBenchMeta(
      State, "env-combine/" + std::to_string(Vars) + "vars", "warrow");
  WarrowCombine Combine;
  for (auto _ : State) {
    AbsEnv Acc = Envs[0];
    for (const AbsEnv &E : Envs)
      Acc = Combine(0, Acc, E);
    benchmark::DoNotOptimize(Acc.size());
  }
}
BENCHMARK(BM_Env_Warrow)->Arg(4)->Arg(16)->Arg(64);

void BM_DegradingWarrow(benchmark::State &State) {
  warrow::bench::setBenchMeta(State, "interval-combine/1024", "warrow-k4");
  auto Values = sampleIntervals(1024, 9);
  for (auto _ : State) {
    DegradingWarrowCombine<int> Combine(4);
    Interval Acc = Interval::constant(0);
    int Unknown = 0;
    for (const Interval &V : Values) {
      Acc = Combine(Unknown, Acc, V);
      Unknown = (Unknown + 1) % 8;
    }
    benchmark::DoNotOptimize(Acc);
  }
}
BENCHMARK(BM_DegradingWarrow);

} // namespace

WARROW_GBENCH_JSON_MAIN
