//===- bench/bench_incremental.cpp - Cold vs warm re-solving -------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The incremental re-solving tier: analyze a SpecCpu-scale program cold
/// (capturing the solver snapshot), apply a single-function edit, then
/// re-solve warm from the snapshot and compare against a cold solve of
/// the edited program. Every warm record hard-fails the run unless
///
///   - `verifySolution` passes on the warm result, and
///   - the warm σ equals the cold σ of the edited program pointwise
///     (canonicalized over contexts),
///
/// so a fast-but-wrong warm solve can never produce a plausible baseline.
/// Two edit shapes are measured per profile:
///
///   edit-h<K>   a *pure helper* function (no global reads/writes, called
///               once from main after the driver loop): the smallest
///               possible cone, where incremental re-solving shines. The
///               `speedup_rhs_evals` of these records carries the >=10x
///               acceptance gate (bench_compare.py --min-ratio).
///   edit-mid    a mid-level function inside the global side-effect
///               fan-out: retraction of its restarted callers' cells
///               restarts the globals and transitively most readers, so
///               the warm solve approaches cold cost. Recorded
///               informationally (exact eval gates, no ratio gate) to
///               keep the tier honest about the hard case.
///
/// Schema (per record, on top of the bench_json.h basics):
///
///     rhs_evals           warm re-solve evals (exact-gated in CI)
///     cold_rhs_evals      cold solve of the *edited* program (exact-gated)
///     speedup_rhs_evals   cold_rhs_evals / rhs_evals (ratio-gated for
///                         edit-h records, never for edit-mid)
///     cold_wall_ns        wall time of the cold solve (never gated)
///     unknowns, restarted_unknowns, dropped_unknowns, kept_cells,
///     retracted_cells     cone-size accounting (informational)
///
//===----------------------------------------------------------------------===//

#include "analysis/snapshot.h"
#include "bench/bench_json.h"
#include "lang/parser.h"
#include "workloads/spec_generator.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

using namespace warrow;

namespace {

struct Version {
  std::unique_ptr<Program> P;
  ProgramCfg Cfgs;
};

Version parseVersion(const std::string &Source) {
  Version V;
  DiagnosticEngine Diags;
  V.P = parseProgram(Source, Diags);
  if (!V.P) {
    std::fprintf(stderr, "error: generated program does not parse:\n%s",
                 Diags.str().c_str());
    std::exit(1);
  }
  V.Cfgs = buildProgramCfg(*V.P);
  return V;
}

double wallNsSince(std::chrono::steady_clock::time_point Start) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Start)
          .count());
}

/// Runs one edit of \p Base: warm re-solve from \p Snap vs cold solve of
/// the edited program, σ-equality checked, one JSON record appended.
void runEdit(bench::JsonReport &Report, const SpecProfile &Base,
             const AnalysisSnapshot &Snap, const Program &BaseP,
             int EditFunction, const std::string &EditLabel) {
  SpecProfile Edited = Base;
  Edited.EditFunction = EditFunction;
  Edited.EditDelta = 5;
  Version V = parseVersion(generateSpecProgram(Edited));

  AnalysisOptions Options;
  IncrementalStats Inc;
  AnalysisSnapshot WarmCap;
  InterprocAnalysis Warm(*V.P, V.Cfgs, Options);
  auto WarmStart = std::chrono::steady_clock::now();
  AnalysisResult WarmR =
      Warm.runIncremental(SolverChoice::Warrow, Snap, BaseP, &WarmCap, &Inc);
  double WarmNs = wallNsSince(WarmStart);

  AnalysisSnapshot ColdCap;
  InterprocAnalysis Cold(*V.P, V.Cfgs, Options);
  auto ColdStart = std::chrono::steady_clock::now();
  AnalysisResult ColdR = Cold.run(SolverChoice::Warrow, &ColdCap);
  double ColdNs = wallNsSince(ColdStart);

  std::string Workload = Base.Name + "+h" +
                         std::to_string(Base.PureHelpers) + "/" + EditLabel;
  if (!WarmR.Stats.Converged || !ColdR.Stats.Converged) {
    std::fprintf(stderr, "error: %s: solver did not converge\n",
                 Workload.c_str());
    std::exit(1);
  }
  if (Inc.ColdFallback) {
    std::fprintf(stderr, "error: %s: incremental solve fell back to cold\n",
                 Workload.c_str());
    std::exit(1);
  }
  VerifyResult Verify = Warm.verifySolution(WarmR);
  if (!Verify.Ok) {
    std::fprintf(stderr, "error: %s: warm solution fails verification:\n%s",
                 Workload.c_str(), Verify.str().c_str());
    std::exit(1);
  }
  auto WarmSigma = canonicalSigma(WarmR.Solution, *V.P, WarmCap.Contexts);
  auto ColdSigma = canonicalSigma(ColdR.Solution, *V.P, ColdCap.Contexts);
  if (WarmSigma != ColdSigma) {
    std::fprintf(stderr,
                 "error: %s: warm sigma diverges from cold (%zu vs %zu "
                 "non-bottom entries)\n",
                 Workload.c_str(), WarmSigma.size(), ColdSigma.size());
    std::exit(1);
  }

  double Ratio = WarmR.Stats.RhsEvals
                     ? static_cast<double>(ColdR.Stats.RhsEvals) /
                           static_cast<double>(WarmR.Stats.RhsEvals)
                     : 0.0;
  bench::JsonRecord &R = Report.addRecord(Workload, "warrow-incremental",
                                          WarmNs, /*Iterations=*/1,
                                          WarmR.Stats.RhsEvals);
  R.set("cold_rhs_evals", ColdR.Stats.RhsEvals)
      .set("speedup_rhs_evals", Ratio)
      .set("cold_wall_ns", ColdNs)
      .set("unknowns", ColdR.NumUnknowns)
      .set("restarted_unknowns", Inc.RestartedUnknowns)
      .set("dropped_unknowns", Inc.DroppedUnknowns)
      .set("kept_cells", Inc.KeptCells)
      .set("retracted_cells", Inc.RetractedCells)
      .set("sigma_equal", true);
  std::printf("%-28s warm=%8llu cold=%8llu ratio=%7.1fx restarted=%llu\n",
              Workload.c_str(),
              static_cast<unsigned long long>(WarmR.Stats.RhsEvals),
              static_cast<unsigned long long>(ColdR.Stats.RhsEvals), Ratio,
              static_cast<unsigned long long>(Inc.RestartedUnknowns));
}

void runProfile(bench::JsonReport &Report, const char *ProfileName) {
  const SpecProfile *Found = findSpecProfile(ProfileName);
  if (!Found) {
    std::fprintf(stderr, "error: unknown spec profile '%s'\n", ProfileName);
    std::exit(1);
  }
  SpecProfile Base = *Found;
  Base.PureHelpers = 4;
  Version V = parseVersion(generateSpecProgram(Base));

  AnalysisOptions Options;
  AnalysisSnapshot Snap;
  InterprocAnalysis Cold(*V.P, V.Cfgs, Options);
  auto Start = std::chrono::steady_clock::now();
  AnalysisResult BaseR = Cold.run(SolverChoice::Warrow, &Snap);
  double BaseNs = wallNsSince(Start);
  if (!BaseR.Stats.Converged) {
    std::fprintf(stderr, "error: %s: base cold solve did not converge\n",
                 ProfileName);
    std::exit(1);
  }
  bench::JsonRecord &R = Report.addRecord(
      Base.Name + "+h" + std::to_string(Base.PureHelpers) + "/base",
      "warrow", BaseNs, /*Iterations=*/1, BaseR.Stats.RhsEvals);
  R.set("unknowns", BaseR.NumUnknowns);
  std::printf("%-28s cold base evals=%llu unknowns=%llu\n", Base.Name.c_str(),
              static_cast<unsigned long long>(BaseR.Stats.RhsEvals),
              static_cast<unsigned long long>(BaseR.NumUnknowns));

  // The acceptance case: edit the first pure helper (smallest cone).
  runEdit(Report, Base, Snap, *V.P, static_cast<int>(Base.NumFunctions),
          "edit-h0");
  // The honest hard case: a mid-level function inside the global fan-out.
  runEdit(Report, Base, Snap, *V.P, static_cast<int>(Base.NumFunctions / 2),
          "edit-mid");
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath = bench::consumeJsonFlag(Argc, Argv);
  if (Argc != 1) {
    std::fprintf(stderr, "usage: %s [--json out.json]\n", Argv[0]);
    return 2;
  }
  bench::JsonReport Report;
  runProfile(Report, "401.bzip2");
  runProfile(Report, "482.sphinx");
  if (!JsonPath.empty() && !Report.writeFile(JsonPath))
    return 1;
  return 0;
}
