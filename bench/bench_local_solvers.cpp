//===- bench/bench_local_solvers.cpp - Local solver micro-benchmarks ------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Google-benchmark comparison of the local solvers (RLD, SLR, SLR+,
/// SLR+ with localized ⊟) on interprocedural analysis workloads — the
/// setting of the paper's Section 7, measured per solver rather than per
/// program.
///
//===----------------------------------------------------------------------===//

#include "analysis/interproc.h"
#include "bench/gbench_json.h"
#include "lang/parser.h"
#include "workloads/spec_generator.h"
#include "workloads/wcet_suite.h"

#include <benchmark/benchmark.h>

using namespace warrow;

namespace {

struct Prepared {
  std::unique_ptr<Program> P;
  ProgramCfg Cfgs;
};

Prepared prepareSpec(const char *Name) {
  const SpecProfile *Profile = findSpecProfile(Name);
  std::string Source = generateSpecProgram(*Profile);
  DiagnosticEngine Diags;
  Prepared R;
  R.P = parseProgram(Source, Diags);
  R.Cfgs = buildProgramCfg(*R.P);
  return R;
}

Prepared prepareWcet(const char *Name) {
  const WcetBenchmark *B = findWcetBenchmark(Name);
  DiagnosticEngine Diags;
  Prepared R;
  R.P = parseProgram(B->Source, Diags);
  R.Cfgs = buildProgramCfg(*R.P);
  return R;
}

const char *solverName(SolverChoice Choice, bool Context, bool Localized) {
  switch (Choice) {
  case SolverChoice::Warrow:
    return Localized ? (Context ? "slr+warrow-localized-ctx"
                                : "slr+warrow-localized")
                     : (Context ? "slr+warrow-ctx" : "slr+warrow");
  case SolverChoice::WidenOnly:
    return Context ? "slr+widen-ctx" : "slr+widen";
  default:
    return Context ? "two-phase-ctx" : "two-phase";
  }
}

void runAnalysis(benchmark::State &State, const Prepared &Ready,
                 const char *Workload, SolverChoice Choice, bool Context,
                 bool Localized) {
  warrow::bench::setBenchMeta(State, Workload,
                              solverName(Choice, Context, Localized));
  for (auto _ : State) {
    AnalysisOptions Options;
    Options.ContextSensitive = Context;
    Options.LocalizedWidening = Localized;
    InterprocAnalysis Analysis(*Ready.P, Ready.Cfgs, Options);
    AnalysisResult R = Analysis.run(Choice);
    benchmark::DoNotOptimize(R.NumUnknowns);
    State.counters["unknowns"] = static_cast<double>(R.NumUnknowns);
    State.counters["evals"] = static_cast<double>(R.Stats.RhsEvals);
    State.counters["converged"] = R.Stats.Converged ? 1 : 0;
  }
}

void BM_Mcf_Warrow(benchmark::State &State) {
  static Prepared Ready = prepareSpec("429.mcf");
  runAnalysis(State, Ready, "429.mcf", SolverChoice::Warrow, false, false);
}
BENCHMARK(BM_Mcf_Warrow);

void BM_Mcf_WarrowLocalized(benchmark::State &State) {
  static Prepared Ready = prepareSpec("429.mcf");
  runAnalysis(State, Ready, "429.mcf", SolverChoice::Warrow, false, true);
}
BENCHMARK(BM_Mcf_WarrowLocalized);

void BM_Mcf_WidenOnly(benchmark::State &State) {
  static Prepared Ready = prepareSpec("429.mcf");
  runAnalysis(State, Ready, "429.mcf", SolverChoice::WidenOnly, false, false);
}
BENCHMARK(BM_Mcf_WidenOnly);

void BM_Mcf_TwoPhase(benchmark::State &State) {
  static Prepared Ready = prepareSpec("429.mcf");
  runAnalysis(State, Ready, "429.mcf", SolverChoice::TwoPhase, false, false);
}
BENCHMARK(BM_Mcf_TwoPhase);

void BM_Mcf_WarrowContext(benchmark::State &State) {
  static Prepared Ready = prepareSpec("429.mcf");
  runAnalysis(State, Ready, "429.mcf", SolverChoice::Warrow, true, false);
}
BENCHMARK(BM_Mcf_WarrowContext);

void BM_Lbm_WarrowContext(benchmark::State &State) {
  static Prepared Ready = prepareSpec("470.lbm");
  runAnalysis(State, Ready, "470.lbm", SolverChoice::Warrow, true, false);
}
BENCHMARK(BM_Lbm_WarrowContext);

void BM_Ndes_Warrow(benchmark::State &State) {
  static Prepared Ready = prepareWcet("ndes");
  runAnalysis(State, Ready, "ndes", SolverChoice::Warrow, false, false);
}
BENCHMARK(BM_Ndes_Warrow);

void BM_Ndes_WarrowContext(benchmark::State &State) {
  static Prepared Ready = prepareWcet("ndes");
  runAnalysis(State, Ready, "ndes", SolverChoice::Warrow, true, false);
}
BENCHMARK(BM_Ndes_WarrowContext);

} // namespace

WARROW_GBENCH_JSON_MAIN
