//===- bench/bench_ablation_thresholds.cpp - Threshold-widening ablation --------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation: the paper positions ⊟ as *complementary* to operator-level
/// refinements such as widening with thresholds/landmarks [Cortesi &
/// Zanioli; Simon & King]. This bench composes both: it compares the
/// plain ⊟-solver against ⊟ with program-constant threshold widening on
/// the WCET suite, counting program points that improve further. The
/// composition particularly repairs widened loop-invariants that cross
/// later loops — values that *no* narrowing strategy can recover once
/// the back edge re-joins them.
///
//===----------------------------------------------------------------------===//

#include "analysis/interproc.h"
#include "analysis/precision.h"
#include "bench/bench_json.h"
#include "lang/parser.h"
#include "support/table.h"
#include "workloads/wcet_suite.h"

#include <cstdio>

using namespace warrow;

int main(int argc, char **argv) {
  std::string JsonPath = warrow::bench::consumeJsonFlag(argc, argv);
  warrow::bench::JsonReport Report;
  std::printf("=== Ablation: ⊟ composed with threshold widening "
              "(program constants) ===\n\n");

  Table T({"Program", "Points", "Thresholds win", "Plain ⊟ win", "Equal",
           "⊟+T time (ms)", "⊟ time (ms)"});
  uint64_t TotalImproved = 0, TotalPoints = 0;
  for (const WcetBenchmark &B : wcetSuite()) {
    DiagnosticEngine Diags;
    auto P = parseProgram(B.Source, Diags);
    if (!P) {
      std::fprintf(stderr, "error: %s: %s", B.Name.c_str(),
                   Diags.str().c_str());
      return 1;
    }
    ProgramCfg Cfgs = buildProgramCfg(*P);

    AnalysisOptions Plain;
    AnalysisOptions WithThresholds;
    WithThresholds.ThresholdWidening = true;

    InterprocAnalysis PlainAnalysis(*P, Cfgs, Plain);
    AnalysisResult PlainResult = PlainAnalysis.run(SolverChoice::Warrow);
    InterprocAnalysis ThresholdAnalysis(*P, Cfgs, WithThresholds);
    AnalysisResult ThresholdResult =
        ThresholdAnalysis.run(SolverChoice::Warrow);
    if (!PlainResult.Stats.Converged || !ThresholdResult.Stats.Converged) {
      std::fprintf(stderr, "error: %s did not converge\n", B.Name.c_str());
      return 1;
    }

    PrecisionComparison Cmp =
        comparePrecision(ThresholdResult.Solution, PlainResult.Solution);
    Report.addRecord(B.Name, "slr+warrow+thresholds",
                     ThresholdResult.Seconds * 1e9, 1,
                     ThresholdResult.Stats.RhsEvals)
        .set("improved", static_cast<uint64_t>(Cmp.Improved))
        .set("points", static_cast<uint64_t>(Cmp.ComparablePoints));
    Report.addRecord(B.Name, "slr+warrow", PlainResult.Seconds * 1e9, 1,
                     PlainResult.Stats.RhsEvals);
    TotalImproved += Cmp.Improved;
    TotalPoints += Cmp.ComparablePoints;
    T.addRow({B.Name, std::to_string(Cmp.ComparablePoints),
              std::to_string(Cmp.Improved), std::to_string(Cmp.Worse),
              std::to_string(Cmp.Equal),
              formatFixed(ThresholdResult.Seconds * 1e3, 1),
              formatFixed(PlainResult.Seconds * 1e3, 1)});
  }
  std::fputs(T.str().c_str(), stdout);
  std::printf("\n%llu of %llu points improve further with thresholds — "
              "the refinements compose, as the paper's related-work "
              "discussion predicts.\n",
              static_cast<unsigned long long>(TotalImproved),
              static_cast<unsigned long long>(TotalPoints));
  if (!JsonPath.empty() && !Report.writeFile(JsonPath))
    return 1;
  return 0;
}
