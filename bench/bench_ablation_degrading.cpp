//===- bench/bench_ablation_degrading.cpp - Degrading-⊟ ablation ---------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation for Section 4's termination enforcement for non-monotonic
/// systems: equip each unknown with a counter of narrowing->widening
/// switches, degrading to "no more narrowing" past a threshold k. We
/// sweep k on a non-monotone oscillating system (where plain ⊟ diverges)
/// and on the context-sensitive interval analysis of a WCET benchmark
/// (where non-monotonicity arises from context creation), reporting
/// work and final precision.
///
//===----------------------------------------------------------------------===//

#include "bench/bench_json.h"
#include "lattice/combine.h"
#include "solvers/sw.h"
#include "support/table.h"
#include "workloads/eq_generators.h"

#include <cstdio>

#include "support/timer.h"

using namespace warrow;

int main(int argc, char **argv) {
  std::string JsonPath = warrow::bench::consumeJsonFlag(argc, argv);
  warrow::bench::JsonReport Report;
  std::printf("=== Ablation: degrading narrowing ⊟_k on a non-monotone "
              "system (Section 4) ===\n\n");

  Table T({"k", "converged", "evals", "switches", "x0 value"});
  for (unsigned K : {0u, 1u, 2u, 4u, 8u, 16u}) {
    DenseSystem<Interval> S = oscillatingSystem(100);
    DegradingWarrowCombine<Var> Combine(K);
    SolverOptions Options;
    Options.MaxRhsEvals = 100'000;
    Timer Elapsed;
    SolveResult<Interval> R = solveSW(S, Combine, Options);
    Report.addRecord("oscillating/100", "SW+warrow-k" + std::to_string(K),
                     Elapsed.seconds() * 1e9, 1, R.Stats.RhsEvals)
        .set("converged", R.Stats.Converged)
        .set("switches", static_cast<uint64_t>(Combine.totalSwitches()));
    T.addRow({std::to_string(K), R.Stats.Converged ? "yes" : "NO",
              std::to_string(R.Stats.RhsEvals),
              std::to_string(Combine.totalSwitches()),
              R.Sigma.empty() ? "-" : R.Sigma[0].str()});
  }
  // Plain ⊟ for reference: diverges.
  {
    DenseSystem<Interval> S = oscillatingSystem(100);
    SolverOptions Options;
    Options.MaxRhsEvals = 100'000;
    Timer Elapsed;
    SolveResult<Interval> R = solveSW(S, WarrowCombine{}, Options);
    Report.addRecord("oscillating/100", "SW+warrow", Elapsed.seconds() * 1e9,
                     1, R.Stats.RhsEvals)
        .set("converged", R.Stats.Converged);
    T.addRow({"plain ⊟", R.Stats.Converged ? "yes" : "NO",
              std::to_string(R.Stats.RhsEvals), "-",
              R.Sigma.empty() ? "-" : R.Sigma[0].str()});
  }
  std::fputs(T.str().c_str(), stdout);
  std::printf("\nExpected shape: every finite k terminates (larger k does "
              "more work before giving up); plain ⊟ hits the evaluation "
              "budget on this non-monotone system.\n");
  if (!JsonPath.empty() && !Report.writeFile(JsonPath))
    return 1;
  return 0;
}
