//===- bench/bench_fig7.cpp - Regenerates the paper's Figure 7 ----------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 7 of the paper: "the percentage of program points with
/// improvement", comparing the ⊟-solver (SLR+ with the combined
/// widening/narrowing operator) against the classical two-phase
/// widening-then-narrowing solver, on the WCET benchmark suite, with
/// interval analysis of context-insensitive locals and flow-insensitive
/// globals. Benchmarks are listed sorted by program size, as in the
/// paper; the weighted average is reported at the end (the paper: 39%,
/// with exactly one benchmark — qsort-exam — showing no improvement).
///
//===----------------------------------------------------------------------===//

#include "analysis/interproc.h"
#include "analysis/precision.h"
#include "bench/bench_json.h"
#include "lang/parser.h"
#include "support/table.h"
#include "workloads/wcet_suite.h"

#include <algorithm>
#include <cstdio>

using namespace warrow;

int main(int argc, char **argv) {
  std::string JsonPath = warrow::bench::consumeJsonFlag(argc, argv);
  std::printf("=== Figure 7: program points improved by the ⊟-solver over "
              "two-phase widening/narrowing ===\n\n");

  struct Row {
    std::string Name;
    int Lines;
    PrecisionComparison Cmp;
    double WarrowSeconds;
    double ClassicSeconds;
    uint64_t WarrowEvals;
    uint64_t ClassicEvals;
    uint64_t WarrowCacheHits;
    uint64_t ClassicCacheHits;
    SolverStats WarrowStats;
    SolverStats ClassicStats;
  };
  std::vector<Row> Rows;

  for (const WcetBenchmark &B : wcetSuite()) {
    DiagnosticEngine Diags;
    auto P = parseProgram(B.Source, Diags);
    if (!P) {
      std::fprintf(stderr, "error: %s failed to parse:\n%s", B.Name.c_str(),
                   Diags.str().c_str());
      return 1;
    }
    ProgramCfg Cfgs = buildProgramCfg(*P);
    InterprocAnalysis Analysis(*P, Cfgs, AnalysisOptions{});
    AnalysisResult Warrow = Analysis.run(SolverChoice::Warrow);
    AnalysisResult Classic = Analysis.run(SolverChoice::TwoPhase);
    if (!Warrow.Stats.Converged || !Classic.Stats.Converged) {
      std::fprintf(stderr, "error: %s did not converge\n", B.Name.c_str());
      return 1;
    }
    Rows.push_back({B.Name, B.lineCount(),
                    comparePrecision(Warrow.Solution, Classic.Solution),
                    Warrow.Seconds, Classic.Seconds, Warrow.Stats.RhsEvals,
                    Classic.Stats.RhsEvals, Warrow.Stats.RhsCacheHits,
                    Classic.Stats.RhsCacheHits, Warrow.Stats,
                    Classic.Stats});
  }

  // Sorted by program size, as in the paper's figure.
  std::sort(Rows.begin(), Rows.end(),
            [](const Row &A, const Row &B) { return A.Lines < B.Lines; });

  Table T({"Program", "Lines", "Points", "Improved", "Improved%", "Globals+",
           "Time ⊟ (ms)", "Time WN (ms)"});
  uint64_t TotalImproved = 0, TotalPoints = 0;
  for (const Row &R : Rows) {
    TotalImproved += R.Cmp.Improved;
    TotalPoints += R.Cmp.ComparablePoints;
    T.addRow({R.Name, std::to_string(R.Lines),
              std::to_string(R.Cmp.ComparablePoints),
              std::to_string(R.Cmp.Improved),
              formatFixed(R.Cmp.improvedPercent(), 1),
              std::to_string(R.Cmp.GlobalsImproved) + "/" +
                  std::to_string(R.Cmp.GlobalsTotal),
              formatFixed(R.WarrowSeconds * 1e3, 1),
              formatFixed(R.ClassicSeconds * 1e3, 1)});
  }
  std::fputs(T.str().c_str(), stdout);

  double Weighted = TotalPoints == 0
                        ? 0.0
                        : 100.0 * static_cast<double>(TotalImproved) /
                              static_cast<double>(TotalPoints);
  std::printf("\nWeighted average improvement: %.1f%% of %llu program "
              "points (paper: 39%%)\n",
              Weighted, static_cast<unsigned long long>(TotalPoints));
  size_t ZeroCount = 0;
  for (const Row &R : Rows)
    if (R.Cmp.Improved == 0)
      ++ZeroCount;
  std::printf("Benchmarks with no improvement: %zu (paper: 1, "
              "qsort-exam)\n",
              ZeroCount);

  if (!JsonPath.empty()) {
    warrow::bench::JsonReport Report;
    for (const Row &R : Rows) {
      warrow::bench::setSolverStats(
          Report.addRecord(R.Name, "slr+warrow", R.WarrowSeconds * 1e9, 1,
                           R.WarrowEvals),
          R.WarrowStats)
          .set("points", static_cast<uint64_t>(R.Cmp.ComparablePoints))
          .set("improved", static_cast<uint64_t>(R.Cmp.Improved))
          .set("cache_hits", R.WarrowCacheHits);
      warrow::bench::setSolverStats(
          Report.addRecord(R.Name, "two-phase", R.ClassicSeconds * 1e9, 1,
                           R.ClassicEvals),
          R.ClassicStats)
          .set("cache_hits", R.ClassicCacheHits);
    }
    if (!Report.writeFile(JsonPath))
      return 1;
  }
  return 0;
}
