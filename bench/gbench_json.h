//===- bench/gbench_json.h - JSON main for google-benchmark -----*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `--json out.json` support for the google-benchmark binaries. Each
/// benchmark tags itself via `setBenchMeta(State, workload, solver)`;
/// the custom file reporter turns every timed run into one record of the
/// schema documented in bench_json.h. Binaries replace
/// `benchmark::benchmark_main` with the `WARROW_GBENCH_JSON_MAIN` macro.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_BENCH_GBENCH_JSON_H
#define WARROW_BENCH_GBENCH_JSON_H

#include "bench/bench_json.h"

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

namespace warrow {
namespace bench {

/// Tags a benchmark run with its workload/solver pair (rendered into the
/// run label, which google-benchmark carries through to reporters).
inline void setBenchMeta(benchmark::State &State, const std::string &Workload,
                         const std::string &Solver) {
  State.SetLabel("workload=" + Workload + ";solver=" + Solver);
}

/// Reads `key=value` out of a `k1=v1;k2=v2` label; "" if absent.
inline std::string labelField(const std::string &Label,
                              const std::string &Key) {
  size_t Pos = 0;
  while (Pos < Label.size()) {
    size_t End = Label.find(';', Pos);
    if (End == std::string::npos)
      End = Label.size();
    size_t Eq = Label.find('=', Pos);
    if (Eq != std::string::npos && Eq < End &&
        Label.compare(Pos, Eq - Pos, Key) == 0)
      return Label.substr(Eq + 1, End - Eq - 1);
    Pos = End + 1;
  }
  return "";
}

/// File reporter accumulating one JSON record per timed run.
class JsonFileReporter : public benchmark::BenchmarkReporter {
public:
  explicit JsonFileReporter(std::string Path) : Path(std::move(Path)) {}

  bool ReportContext(const Context &) override { return true; }

  void ReportRuns(const std::vector<Run> &Runs) override {
    for (const Run &R : Runs) {
      if (R.run_type != Run::RT_Iteration || R.error_occurred)
        continue;
      double WallNs = R.iterations == 0
                          ? R.real_accumulated_time * 1e9
                          : R.real_accumulated_time * 1e9 /
                                static_cast<double>(R.iterations);
      std::string Workload = labelField(R.report_label, "workload");
      std::string Solver = labelField(R.report_label, "solver");
      uint64_t Evals = 0;
      if (auto It = R.counters.find("evals"); It != R.counters.end())
        Evals = static_cast<uint64_t>(It->second.value);
      JsonRecord &Rec = Report.addRecord(
          Workload.empty() ? R.benchmark_name() : Workload,
          Solver.empty() ? "unknown" : Solver, WallNs,
          static_cast<uint64_t>(R.iterations), Evals);
      Rec.set("name", R.benchmark_name());
      // Benchmark loops never attach a TraceSink — mark the records so
      // the compare tooling can refuse accidentally-traced numbers.
      Rec.set("traced", false);
      // "evals" already landed in the schema's rhs_evals field; drop
      // both spellings here so no record carries a duplicate key.
      for (const auto &[Name, Counter] : R.counters)
        if (Name != "evals" && Name != "rhs_evals")
          Rec.set(Name, Counter.value);
    }
  }

  void Finalize() override { WriteOk = Report.writeFile(Path); }

  bool ok() const { return WriteOk; }

private:
  std::string Path;
  JsonReport Report;
  bool WriteOk = true;
};

/// Shared main: `--json out.json` plus the usual benchmark flags. The
/// library insists on --benchmark_out whenever a file reporter is
/// installed; our reporter writes the file itself, so the mandatory
/// stream is sunk to /dev/null.
inline int gbenchJsonMain(int argc, char **argv) {
  std::string JsonPath = consumeJsonFlag(argc, argv);
  std::vector<char *> Args(argv, argv + argc);
  std::string OutFlag = "--benchmark_out=/dev/null";
  if (!JsonPath.empty())
    Args.push_back(OutFlag.data());
  int EffArgc = static_cast<int>(Args.size());
  Args.push_back(nullptr);
  benchmark::Initialize(&EffArgc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(EffArgc, Args.data()))
    return 1;
  if (JsonPath.empty()) {
    benchmark::RunSpecifiedBenchmarks();
  } else {
    JsonFileReporter FileReporter(JsonPath);
    benchmark::RunSpecifiedBenchmarks(nullptr, &FileReporter);
    if (!FileReporter.ok()) {
      benchmark::Shutdown();
      return 1;
    }
  }
  benchmark::Shutdown();
  return 0;
}

} // namespace bench
} // namespace warrow

/// Drop-in replacement for benchmark_main that understands `--json`.
#define WARROW_GBENCH_JSON_MAIN                                              \
  int main(int argc, char **argv) {                                          \
    return warrow::bench::gbenchJsonMain(argc, argv);                        \
  }

#endif // WARROW_BENCH_GBENCH_JSON_H
