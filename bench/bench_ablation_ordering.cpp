//===- bench/bench_ablation_ordering.cpp - Variable-ordering ablation ----------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation for Section 4's remark that the linear ordering on unknowns
/// ("innermost loops first", Bourdoncle) has a significant impact on the
/// structured solvers. We solve the same intraprocedural systems under
/// three orderings — reverse post-order, construction order, and a
/// deterministic shuffle — and report evaluation counts for SRR and SW.
///
//===----------------------------------------------------------------------===//

#include "analysis/intra.h"
#include "bench/bench_json.h"
#include "lang/parser.h"
#include "lattice/combine.h"
#include "solvers/srr.h"
#include "solvers/sw.h"
#include "support/rng.h"
#include "support/table.h"
#include "workloads/wcet_suite.h"

#include <cstdio>
#include <numeric>

#include "support/timer.h"

using namespace warrow;

namespace {

std::vector<uint32_t> orderingFor(const Cfg &G, int Kind) {
  if (Kind == 0)
    return G.reversePostOrder();
  std::vector<uint32_t> Order(G.numNodes());
  std::iota(Order.begin(), Order.end(), 0u);
  if (Kind == 2) {
    Rng R(12345);
    R.shuffle(Order);
  }
  return Order;
}

const char *orderingName(int Kind) {
  switch (Kind) {
  case 0:
    return "rpo";
  case 1:
    return "natural";
  default:
    return "shuffled";
  }
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = warrow::bench::consumeJsonFlag(argc, argv);
  warrow::bench::JsonReport Report;
  std::printf("=== Ablation: variable ordering vs. solver work "
              "(Bourdoncle's remark, Section 4) ===\n\n");

  // Call-free single-function benchmarks suit the dense formulation.
  const char *Names[] = {"qsort_exam", "insertsort", "bsort100",
                         "janne_complex"};

  Table T({"Program", "Ordering", "SRR evals", "SW evals", "SW queue max"});
  for (const char *Name : Names) {
    const WcetBenchmark *B = findWcetBenchmark(Name);
    if (!B)
      continue;
    DiagnosticEngine Diags;
    auto P = parseProgram(B->Source, Diags);
    if (!P) {
      std::fprintf(stderr, "error: %s: %s", Name, Diags.str().c_str());
      return 1;
    }
    ProgramCfg Cfgs = buildProgramCfg(*P);
    size_t MainIdx = P->functionIndex(P->Symbols.lookup("main"));
    // Only analyze main (the dense fragment is call-free): skip programs
    // whose main contains calls.
    bool HasCalls = false;
    for (const CfgEdge &E : Cfgs.cfgOf(MainIdx).edges())
      if (E.Act.K == Action::Kind::Call)
        HasCalls = true;
    if (HasCalls)
      continue;

    for (int Kind = 0; Kind < 3; ++Kind) {
      IntraSystem IS = buildIntraSystem(
          *P, Cfgs, MainIdx, orderingFor(Cfgs.cfgOf(MainIdx), Kind));
      SolverOptions Options;
      Options.MaxRhsEvals = 10'000'000;
      Timer SrrTimer;
      SolveResult<AbsValue> Srr =
          solveSRR(IS.System, WarrowCombine{}, Options);
      double SrrNs = SrrTimer.seconds() * 1e9;
      Timer SwTimer;
      SolveResult<AbsValue> Sw = solveSW(IS.System, WarrowCombine{}, Options);
      double SwNs = SwTimer.seconds() * 1e9;
      std::string Workload = std::string(Name) + "/" + orderingName(Kind);
      Report.addRecord(Workload, "SRR+warrow", SrrNs, 1, Srr.Stats.RhsEvals)
          .set("converged", Srr.Stats.Converged);
      Report.addRecord(Workload, "SW+warrow", SwNs, 1, Sw.Stats.RhsEvals)
          .set("converged", Sw.Stats.Converged)
          .set("queue_max", Sw.Stats.QueueMax);
      T.addRow({Name, orderingName(Kind),
                Srr.Stats.Converged ? std::to_string(Srr.Stats.RhsEvals)
                                    : "diverged",
                Sw.Stats.Converged ? std::to_string(Sw.Stats.RhsEvals)
                                   : "diverged",
                std::to_string(Sw.Stats.QueueMax)});
    }
  }
  std::fputs(T.str().c_str(), stdout);
  std::printf("\nExpected shape: the ordering changes the work by double-"
              "digit percentages while leaving results identical — the "
              "effect Section 4 attributes to Bourdoncle. Which ordering "
              "wins depends on the loop structure; none dominates.\n");
  if (!JsonPath.empty() && !Report.writeFile(JsonPath))
    return 1;
  return 0;
}
