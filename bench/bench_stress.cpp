//===- bench/bench_stress.cpp - Million-unknown stress tier --------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stress tier: solves the implicit (storage-free) side-effecting
/// system of `stressSideSystem` at 10⁶+ unknowns under the work-stealing
/// parallel SLR+ engine and the sequential SLR+ baseline, tracking what
/// the regular benches cannot: peak memory. Every record carries
///
///     unknowns      |dom σ| actually discovered (checked against the
///                   generator's expected count — a partial exploration
///                   must fail loudly, not report a fast solve)
///     rhs_evals     the deterministic work counter (CI gates exact)
///     wall_ns       one solve, wall clock
///     peak_rss_kb   getrusage peak RSS. Monotone per process: the
///                   second run's value includes the first's footprint,
///                   so the run order (parallel first) is part of the
///                   schema. Metadata-tolerant: never gated, absent
///                   records compare fine (bench_compare.py).
///     hw_threads    hardware_concurrency of the host
///
///     bench_stress [--json out.json] [--size small|nightly] [--rings N]
///                  [--ring-size N] [--threads N] [--check]
///
/// Defaults give 16384 rings × 64 = 1,048,576 ring unknowns (1,048,897
/// total with the aggregator/accumulator layers). `--check` additionally
/// verifies the parallel σ equals the sequential σ pointwise (slow-ish:
/// one extra comparison pass over a million entries).
///
/// `--size` selects a preset tier: `small` is the default above (the
/// blocking CI job), `nightly` is 156250 rings × 64 = 10,000,000 ring
/// unknowns for the scheduled non-blocking job. Explicit `--rings` /
/// `--ring-size` override whichever preset came before them.
///
//===----------------------------------------------------------------------===//

#include "bench/bench_json.h"
#include "engine/strategies/parallel_slr.h"
#include "lattice/combine.h"
#include "solvers/slr_plus.h"
#include "workloads/eq_generators.h"

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

using namespace warrow;

namespace {

/// Peak resident set size in KiB (ru_maxrss is KiB on Linux).
uint64_t peakRssKb() {
  struct rusage Usage;
  if (getrusage(RUSAGE_SELF, &Usage) != 0)
    return 0;
  return static_cast<uint64_t>(Usage.ru_maxrss);
}

struct RunOutcome {
  PartialSolution<uint64_t, Interval> Solution;
  double WallNs = 0;
  uint64_t PeakRssKb = 0;
};

template <typename Solve> RunOutcome timedRun(Solve &&DoSolve) {
  RunOutcome Out;
  auto Start = std::chrono::steady_clock::now();
  Out.Solution = DoSolve();
  auto End = std::chrono::steady_clock::now();
  Out.WallNs = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(End - Start)
          .count());
  Out.PeakRssKb = peakRssKb();
  return Out;
}

/// One record of the schema documented above; exits on any failed
/// invariant so a broken stress run can never produce a plausible
/// baseline.
void record(bench::JsonReport &Report, const std::string &Workload,
            const std::string &Solver, const RunOutcome &Run,
            uint64_t ExpectedUnknowns) {
  const SolverStats &Stats = Run.Solution.Stats;
  if (!Stats.Converged) {
    std::fprintf(stderr, "error: %s did not converge (%s)\n",
                 Solver.c_str(), Stats.str().c_str());
    std::exit(1);
  }
  if (Run.Solution.Sigma.size() != ExpectedUnknowns) {
    std::fprintf(stderr,
                 "error: %s explored %zu unknowns, expected %llu\n",
                 Solver.c_str(), Run.Solution.Sigma.size(),
                 static_cast<unsigned long long>(ExpectedUnknowns));
    std::exit(1);
  }
  bench::JsonRecord &R = Report.addRecord(Workload, Solver, Run.WallNs,
                                          /*Iterations=*/1, Stats.RhsEvals);
  R.set("unknowns", static_cast<uint64_t>(Run.Solution.Sigma.size()))
      .set("peak_rss_kb", Run.PeakRssKb)
      .set("converged", Stats.Converged)
      .set("hw_threads",
           static_cast<uint64_t>(std::thread::hardware_concurrency()));
  std::printf("%-28s %-20s unknowns=%zu evals=%llu wall=%.2fs rss=%lluMiB\n",
              Workload.c_str(), Solver.c_str(), Run.Solution.Sigma.size(),
              static_cast<unsigned long long>(Stats.RhsEvals),
              Run.WallNs / 1e9,
              static_cast<unsigned long long>(Run.PeakRssKb / 1024));
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath;
  uint64_t NumRings = 16384;
  unsigned RingSize = 64;
  unsigned Threads = 2;
  bool Check = false;

  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strcmp(Arg, "--json") == 0 && I + 1 < Argc) {
      JsonPath = Argv[++I];
    } else if (std::strcmp(Arg, "--size") == 0 && I + 1 < Argc) {
      const char *Size = Argv[++I];
      if (std::strcmp(Size, "small") == 0) {
        NumRings = 16384;
        RingSize = 64;
      } else if (std::strcmp(Size, "nightly") == 0) {
        NumRings = 156250;
        RingSize = 64;
      } else {
        std::fprintf(stderr, "error: unknown size tier '%s' "
                             "(small, nightly)\n",
                     Size);
        return 2;
      }
    } else if (std::strcmp(Arg, "--rings") == 0 && I + 1 < Argc) {
      NumRings = std::strtoull(Argv[++I], nullptr, 10);
    } else if (std::strcmp(Arg, "--ring-size") == 0 && I + 1 < Argc) {
      RingSize = static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 10));
    } else if (std::strcmp(Arg, "--threads") == 0 && I + 1 < Argc) {
      Threads = static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 10));
    } else if (std::strcmp(Arg, "--check") == 0) {
      Check = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json out.json] [--size small|nightly] "
                   "[--rings N] [--ring-size N] [--threads N] [--check]\n",
                   Argv[0]);
      return 2;
    }
  }

  StressSystem Stress =
      stressSideSystem(NumRings, RingSize, /*Bound=*/32,
                       /*CrossLinks=*/2, /*Seed=*/1234);
  std::string Workload = "stress-rings/" + std::to_string(NumRings) + "x" +
                         std::to_string(RingSize);

  SolverOptions Options;
  Options.MaxRhsEvals = 2'000'000'000ull;
  Options.Threads = Threads;

  bench::JsonReport Report;

  // Parallel first: its peak_rss_kb is then a true measurement instead
  // of inheriting the sequential run's footprint.
  RunOutcome Par = timedRun([&] {
    return engine::runParallelSlrPlus(Stress.System, Stress.Root,
                                      WarrowCombine{}, Options);
  });
  record(Report, Workload, "parallel-warrow/" + std::to_string(Threads) + "t",
         Par, Stress.NumUnknowns);

  RunOutcome Seq = timedRun([&] {
    return solveSLRPlus(Stress.System, Stress.Root, WarrowCombine{}, Options);
  });
  record(Report, Workload, "warrow", Seq, Stress.NumUnknowns);

  if (Check) {
    uint64_t Mismatches = 0;
    for (const auto &[X, Value] : Seq.Solution.Sigma)
      if (!(Par.Solution.value(X) == Value))
        ++Mismatches;
    if (Mismatches != 0 ||
        Par.Solution.Sigma.size() != Seq.Solution.Sigma.size()) {
      std::fprintf(stderr,
                   "error: parallel sigma diverges from sequential "
                   "(%llu mismatched values)\n",
                   static_cast<unsigned long long>(Mismatches));
      return 1;
    }
    std::printf("check: parallel sigma == sequential sigma (%zu unknowns)\n",
                Seq.Solution.Sigma.size());
  }

  if (!JsonPath.empty() && !Report.writeFile(JsonPath))
    return 1;
  return 0;
}
