//===- bench/bench_table1.cpp - Regenerates the paper's Table 1 ----------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 1 of the paper: solver efficiency on SpecCpu2006-scale programs.
/// For each benchmark, four configurations are measured:
///
///     {context-insensitive, context-sensitive} x {▽-solver, ⊟-solver}
///
/// reporting wall-clock time and the number of unknowns encountered. The
/// reproduction targets the paper's *shape*: ⊟ only marginally slower
/// than ▽ without context; with context, the number of unknowns may grow
/// or shrink under ⊟ relative to ▽ as the computed intervals change which
/// contexts arise. (Real SpecCpu sources are not redistributable — the
/// workloads are synthetic programs reproducing the structural drivers;
/// see DESIGN.md.)
///
//===----------------------------------------------------------------------===//

#include "analysis/interproc.h"
#include "bench/bench_json.h"
#include "lang/parser.h"
#include "support/table.h"
#include "support/timer.h"
#include "workloads/spec_generator.h"

#include <cstdio>

using namespace warrow;

namespace {

struct Measurement {
  double Seconds = 0;
  uint64_t Unknowns = 0;
  uint64_t RhsEvals = 0;
  bool Converged = false;
  SolverStats Stats;
};

Measurement measure(const Program &P, const ProgramCfg &Cfgs,
                    bool ContextSensitive, SolverChoice Choice) {
  AnalysisOptions Options;
  Options.ContextSensitive = ContextSensitive;
  Options.Solver.MaxRhsEvals = 500'000'000;
  InterprocAnalysis Analysis(P, Cfgs, Options);
  AnalysisResult R = Analysis.run(Choice);
  return {R.Seconds, R.NumUnknowns, R.Stats.RhsEvals, R.Stats.Converged,
          R.Stats};
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = warrow::bench::consumeJsonFlag(argc, argv);
  warrow::bench::JsonReport Report;
  std::printf("=== Table 1: SpecCpu2006-scale programs — time and number "
              "of unknowns ===\n");
  std::printf("(▽ = widening-only SLR+, ⊟ = combined-operator SLR+; "
              "synthetic workloads, see DESIGN.md)\n\n");

  Table T({"Program", "noctx ▽ t(s)", "noctx ▽ unk", "noctx ⊟ t(s)",
           "noctx ⊟ unk", "ctx ▽ t(s)", "ctx ▽ unk", "ctx ⊟ t(s)",
           "ctx ⊟ unk"});

  for (const SpecProfile &Profile : specSuite()) {
    std::string Source = generateSpecProgram(Profile);
    DiagnosticEngine Diags;
    auto P = parseProgram(Source, Diags);
    if (!P) {
      std::fprintf(stderr, "error: %s failed to parse:\n%s",
                   Profile.Name.c_str(), Diags.str().c_str());
      return 1;
    }
    ProgramCfg Cfgs = buildProgramCfg(*P);

    Measurement NoCtxWiden =
        measure(*P, Cfgs, false, SolverChoice::WidenOnly);
    Measurement NoCtxWarrow = measure(*P, Cfgs, false, SolverChoice::Warrow);
    Measurement CtxWiden = measure(*P, Cfgs, true, SolverChoice::WidenOnly);
    Measurement CtxWarrow = measure(*P, Cfgs, true, SolverChoice::Warrow);
    for (const Measurement *M :
         {&NoCtxWiden, &NoCtxWarrow, &CtxWiden, &CtxWarrow})
      if (!M->Converged)
        std::fprintf(stderr, "warning: %s: a configuration hit the "
                             "evaluation budget\n",
                     Profile.Name.c_str());

    struct Cfg {
      const char *Solver;
      const Measurement *M;
    };
    for (Cfg C : {Cfg{"slr+widen", &NoCtxWiden}, Cfg{"slr+warrow", &NoCtxWarrow},
                  Cfg{"slr+widen-ctx", &CtxWiden},
                  Cfg{"slr+warrow-ctx", &CtxWarrow}})
      warrow::bench::setSolverStats(
          Report.addRecord(Profile.Name, C.Solver, C.M->Seconds * 1e9, 1,
                           C.M->RhsEvals),
          C.M->Stats)
          .set("unknowns", C.M->Unknowns);

    T.addRow({Profile.Name, formatFixed(NoCtxWiden.Seconds, 2),
              formatThousands(NoCtxWiden.Unknowns),
              formatFixed(NoCtxWarrow.Seconds, 2),
              formatThousands(NoCtxWarrow.Unknowns),
              formatFixed(CtxWiden.Seconds, 2),
              formatThousands(CtxWiden.Unknowns),
              formatFixed(CtxWarrow.Seconds, 2),
              formatThousands(CtxWarrow.Unknowns)});
  }
  std::fputs(T.str().c_str(), stdout);
  std::printf(
      "\nPaper shape checks: (1) without context, ⊟ is at most marginally "
      "slower than ▽;\n(2) with context, unknown counts grow relative to "
      "no-context, by a program-dependent factor;\n(3) ⊟ may change the "
      "number of encountered contexts in either direction.\n");
  if (!JsonPath.empty() && !Report.writeFile(JsonPath))
    return 1;
  return 0;
}
