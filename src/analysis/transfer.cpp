//===- analysis/transfer.cpp - Interval transfer functions --------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/transfer.h"

#include "lang/sema.h"
#include "support/casting.h"

#include <cassert>

using namespace warrow;

AbsTruth warrow::truthOf(const Interval &I) {
  if (I.isBot())
    return {false, false};
  bool HasZero = I.contains(0);
  bool HasNonZero = !(I.isConstant() && I.constantValue() == 0);
  return {HasZero, HasNonZero};
}

Interval warrow::truthInterval(AbsTruth T) {
  if (!T.CanBeFalse && !T.CanBeTrue)
    return Interval::bot();
  if (!T.CanBeFalse)
    return Interval::constant(1);
  if (!T.CanBeTrue)
    return Interval::constant(0);
  return Interval::make(0, 1);
}

Interval warrow::compareIntervals(BinaryOp Op, const Interval &L,
                                  const Interval &R) {
  if (L.isBot() || R.isBot())
    return Interval::bot();
  auto Definite = [](bool True, bool False) {
    if (True)
      return Interval::constant(1);
    if (False)
      return Interval::constant(0);
    return Interval::make(0, 1);
  };
  switch (Op) {
  case BinaryOp::Lt:
    return Definite(L.hi() < R.lo(), L.lo() >= R.hi());
  case BinaryOp::Le:
    return Definite(L.hi() <= R.lo(), L.lo() > R.hi());
  case BinaryOp::Gt:
    return Definite(L.lo() > R.hi(), L.hi() <= R.lo());
  case BinaryOp::Ge:
    return Definite(L.lo() >= R.hi(), L.hi() < R.lo());
  case BinaryOp::Eq:
    return Definite(L.isConstant() && R.isConstant() &&
                        L.constantValue() == R.constantValue(),
                    L.meet(R).isBot());
  case BinaryOp::Ne:
    return Definite(L.meet(R).isBot(),
                    L.isConstant() && R.isConstant() &&
                        L.constantValue() == R.constantValue());
  default:
    assert(false && "not a comparison");
    return Interval::top();
  }
}

BinaryOp warrow::negateComparison(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Lt:
    return BinaryOp::Ge;
  case BinaryOp::Le:
    return BinaryOp::Gt;
  case BinaryOp::Gt:
    return BinaryOp::Le;
  case BinaryOp::Ge:
    return BinaryOp::Lt;
  case BinaryOp::Eq:
    return BinaryOp::Ne;
  case BinaryOp::Ne:
    return BinaryOp::Eq;
  default:
    assert(false && "not a comparison");
    return Op;
  }
}

Interval warrow::restrictByComparison(BinaryOp Op, const Interval &A,
                                      const Interval &B) {
  switch (Op) {
  case BinaryOp::Lt:
    return A.restrictLess(B);
  case BinaryOp::Le:
    return A.restrictLessEq(B);
  case BinaryOp::Gt:
    return A.restrictGreater(B);
  case BinaryOp::Ge:
    return A.restrictGreaterEq(B);
  case BinaryOp::Eq:
    return A.restrictEqual(B);
  case BinaryOp::Ne:
    return A.restrictNotEqual(B);
  default:
    assert(false && "not a comparison");
    return A;
  }
}

BinaryOp warrow::mirrorComparison(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Lt:
    return BinaryOp::Gt;
  case BinaryOp::Le:
    return BinaryOp::Ge;
  case BinaryOp::Gt:
    return BinaryOp::Lt;
  case BinaryOp::Ge:
    return BinaryOp::Le;
  default:
    return Op; // Eq/Ne are symmetric.
  }
}

EvalContext EvalContext::forProgram(const Program &P, GlobalReader Reader) {
  EvalContext Ctx;
  Ctx.Prog = &P;
  Ctx.ReadGlobal = std::move(Reader);
  Ctx.UnknownSym = P.Symbols.lookup(UnknownBuiltinName);
  return Ctx;
}

Interval warrow::evalExpr(const Expr &E, const AbsEnv &Env,
                          const EvalContext &Ctx) {
  switch (E.kind()) {
  case Expr::Kind::IntLit:
    return Interval::constant(cast<IntLit>(&E)->value());
  case Expr::Kind::VarRef: {
    Symbol Name = cast<VarRef>(&E)->name();
    if (Ctx.isGlobal(Name))
      return Ctx.ReadGlobal(Name);
    return Env.get(Name);
  }
  case Expr::Kind::ArrayRef: {
    const auto *A = cast<ArrayRef>(&E);
    // Smashed array read: the index only matters for feasibility.
    Interval Index = evalExpr(A->index(), Env, Ctx);
    if (Index.isBot())
      return Interval::bot();
    if (Ctx.isGlobal(A->name()))
      return Ctx.ReadGlobal(A->name());
    return Env.get(A->name());
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(&E);
    Interval V = evalExpr(U->operand(), Env, Ctx);
    if (U->op() == UnaryOp::Neg)
      return V.neg();
    AbsTruth T = truthOf(V);
    return truthInterval({T.CanBeTrue, T.CanBeFalse}); // !: swap roles.
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(&E);
    Interval L = evalExpr(B->lhs(), Env, Ctx);
    Interval R = evalExpr(B->rhs(), Env, Ctx);
    switch (B->op()) {
    case BinaryOp::Add:
      return L.add(R);
    case BinaryOp::Sub:
      return L.sub(R);
    case BinaryOp::Mul:
      return L.mul(R);
    case BinaryOp::Div:
      return L.div(R);
    case BinaryOp::Rem:
      return L.rem(R);
    case BinaryOp::LAnd: {
      AbsTruth TL = truthOf(L), TR = truthOf(R);
      return truthInterval(
          {TL.CanBeFalse || (TL.CanBeTrue && TR.CanBeFalse),
           TL.CanBeTrue && TR.CanBeTrue});
    }
    case BinaryOp::LOr: {
      AbsTruth TL = truthOf(L), TR = truthOf(R);
      return truthInterval(
          {TL.CanBeFalse && TR.CanBeFalse,
           TL.CanBeTrue || (TL.CanBeFalse && TR.CanBeTrue)});
    }
    default:
      return compareIntervals(B->op(), L, R);
    }
  }
  case Expr::Kind::Call: {
    const auto *Call = cast<CallExpr>(&E);
    if (Ctx.UnknownSym && Call->callee() == Ctx.UnknownSym)
      return Interval::top(); // unknown(): any integer.
    assert(false && "function calls are handled by the driver");
    return Interval::top();
  }
  }
  return Interval::top();
}

bool warrow::refineByCond(AbsEnv &Env, const Expr &Cond, bool Positive,
                          const EvalContext &Ctx) {
  // Logical connectives first.
  if (const auto *U = dyn_cast<UnaryExpr>(&Cond)) {
    if (U->op() == UnaryOp::Not)
      return refineByCond(Env, U->operand(), !Positive, Ctx);
  }
  if (const auto *B = dyn_cast<BinaryExpr>(&Cond)) {
    // a && b (positive) and !(a || b) are conjunctions; refine in sequence.
    bool IsConjunction = (B->op() == BinaryOp::LAnd && Positive) ||
                         (B->op() == BinaryOp::LOr && !Positive);
    bool IsDisjunction = (B->op() == BinaryOp::LOr && Positive) ||
                         (B->op() == BinaryOp::LAnd && !Positive);
    // The polarity each operand carries inside the connective.
    bool OperandPolarity = Positive;
    if (IsConjunction && B->op() == BinaryOp::LOr)
      OperandPolarity = false; // !(a||b) = !a && !b.
    if (IsDisjunction && B->op() == BinaryOp::LAnd)
      OperandPolarity = false; // !(a&&b) = !a || !b.
    if (IsConjunction) {
      return refineByCond(Env, B->lhs(), OperandPolarity, Ctx) &&
             refineByCond(Env, B->rhs(), OperandPolarity, Ctx);
    }
    if (IsDisjunction) {
      // Join of the two refined branches.
      AbsEnv Left = Env;
      AbsEnv Right = Env;
      bool LeftOk = refineByCond(Left, B->lhs(), OperandPolarity, Ctx);
      bool RightOk = refineByCond(Right, B->rhs(), OperandPolarity, Ctx);
      if (!LeftOk && !RightOk)
        return false;
      Env = LeftOk && RightOk ? Left.join(Right) : (LeftOk ? Left : Right);
      return true;
    }
    if (isComparison(B->op())) {
      BinaryOp Op = Positive ? B->op() : negateComparison(B->op());
      Interval L = evalExpr(B->lhs(), Env, Ctx);
      Interval R = evalExpr(B->rhs(), Env, Ctx);
      if (L.isBot() || R.isBot())
        return false;
      // Infeasible outright?
      Interval Outcome = compareIntervals(Op, L, R);
      if (Outcome.isConstant() && Outcome.constantValue() == 0)
        return false;
      // Refine a variable operand on either side (locals only; globals
      // are flow-insensitive and cannot be constrained per-path).
      if (const auto *LV = dyn_cast<VarRef>(&B->lhs())) {
        if (!Ctx.isGlobal(LV->name())) {
          Interval Refined = restrictByComparison(Op, L, R);
          if (Refined.isBot())
            return false;
          Env.set(LV->name(), Refined);
        }
      }
      if (const auto *RV = dyn_cast<VarRef>(&B->rhs())) {
        if (!Ctx.isGlobal(RV->name())) {
          Interval Refined = restrictByComparison(mirrorComparison(Op), R, L);
          if (Refined.isBot())
            return false;
          Env.set(RV->name(), Refined);
        }
      }
      return true;
    }
    // Fall through: arithmetic used as a truth value.
  }

  // Generic condition: an expression tested against zero.
  Interval V = evalExpr(Cond, Env, Ctx);
  AbsTruth T = truthOf(V);
  if (Positive) {
    if (!T.CanBeTrue)
      return false;
    if (const auto *Var = dyn_cast<VarRef>(&Cond)) {
      if (!Ctx.isGlobal(Var->name())) {
        Interval Refined = V.restrictNotEqual(Interval::constant(0));
        if (Refined.isBot())
          return false;
        Env.set(Var->name(), Refined);
      }
    }
    return true;
  }
  if (!T.CanBeFalse)
    return false;
  if (const auto *Var = dyn_cast<VarRef>(&Cond)) {
    if (!Ctx.isGlobal(Var->name()))
      Env.set(Var->name(), Interval::constant(0));
  }
  return true;
}

BasicEffect warrow::applyBasicAction(const Action &Act, const AbsEnv &Pre,
                                     const EvalContext &Ctx) {
  BasicEffect Effect;
  switch (Act.K) {
  case Action::Kind::Skip:
    Effect.Post = Pre;
    return Effect;
  case Action::Kind::DeclScalar: {
    AbsEnv Post = Pre;
    Post.set(Act.Lhs, Interval::constant(0)); // Declarations zero-init.
    Effect.Post = std::move(Post);
    return Effect;
  }
  case Action::Kind::DeclArray: {
    AbsEnv Post = Pre;
    Post.set(Act.Lhs, Interval::constant(0)); // Smashed zero contents.
    Effect.Post = std::move(Post);
    return Effect;
  }
  case Action::Kind::Assign: {
    Interval Value = evalExpr(*Act.Value, Pre, Ctx);
    if (Value.isBot())
      return Effect; // Unreachable (reads a still-bottom global).
    if (Ctx.isGlobal(Act.Lhs)) {
      Effect.GlobalWrites.push_back({Act.Lhs, Value});
      Effect.Post = Pre;
      return Effect;
    }
    AbsEnv Post = Pre;
    Post.set(Act.Lhs, Value);
    Effect.Post = std::move(Post);
    return Effect;
  }
  case Action::Kind::Store: {
    Interval Index = evalExpr(*Act.Index, Pre, Ctx);
    Interval Value = evalExpr(*Act.Value, Pre, Ctx);
    if (Index.isBot() || Value.isBot())
      return Effect;
    if (Ctx.isGlobal(Act.Lhs)) {
      Effect.GlobalWrites.push_back({Act.Lhs, Value});
      Effect.Post = Pre;
      return Effect;
    }
    // Weak update into the smashed local array.
    AbsEnv Post = Pre;
    Post.set(Act.Lhs, Pre.get(Act.Lhs).join(Value));
    Effect.Post = std::move(Post);
    return Effect;
  }
  case Action::Kind::Guard:
  case Action::Kind::Assert: {
    // Asserts refine like positive guards: the checker reports the alarm
    // (bounds.cpp); downstream code assumes the asserted fact.
    AbsEnv Post = Pre;
    if (refineByCond(Post, *Act.Value, Act.Positive, Ctx))
      Effect.Post = std::move(Post);
    return Effect;
  }
  case Action::Kind::Input: {
    if (Ctx.isGlobal(Act.Lhs)) {
      Effect.GlobalWrites.push_back({Act.Lhs, Interval::top()});
      Effect.Post = Pre;
      return Effect;
    }
    AbsEnv Post = Pre;
    Post.set(Act.Lhs, Interval::top());
    Effect.Post = std::move(Post);
    return Effect;
  }
  case Action::Kind::Lock:
  case Action::Kind::Unlock:
    // Mutex operations do not touch integer state; the lockset component
    // (races.cpp) tracks them in its own product layer.
    Effect.Post = Pre;
    return Effect;
  case Action::Kind::Call:
  case Action::Kind::Spawn:
    assert(false && "call/spawn actions are handled by the driver");
    return Effect;
  }
  return Effect;
}
