//===- analysis/bounds.cpp - Bounds / assert checker ---------------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/bounds.h"

#include "analysis/rel_env.h"
#include "analysis/transfer.h"
#include "lang/sema.h"
#include "support/casting.h"

#include <algorithm>
#include <unordered_map>

using namespace warrow;

std::string BoundsFinding::str(const Program &P) const {
  std::string Out = P.Symbols.spelling(P.Functions[Func]->Name);
  Out += ":" + std::to_string(Line) + ": ";
  Out += Definite ? "error: " : "warning: ";
  Out += Message;
  return Out;
}

namespace {

/// Per-edge hazard walker, generic over the environment domain: `EnvT` is
/// `AbsEnv` or `RelEnv`, and `evalExpr` resolves to the matching overload
/// (transfer.h / rel_env.h).
template <typename EnvT> class EdgeChecker {
public:
  EdgeChecker(const Program &P, const FuncVars &Vars, uint32_t Func,
              const EvalContext &Ctx, std::vector<BoundsFinding> &Out)
      : P(P), Vars(Vars), Func(Func), Ctx(Ctx), Out(Out) {}

  void checkEdge(const Action &A, const EnvT &Env, uint32_t Line) {
    if (A.Value)
      walk(*A.Value, Env, Line);
    if (A.Index) {
      walk(*A.Index, Env, Line);
      if (A.K == Action::Kind::Store)
        checkIndex(A.Lhs, *A.Index, Env, Line);
    }
    for (const Expr *Arg : A.Args)
      walk(*Arg, Env, Line);
    if (A.K == Action::Kind::Assert)
      checkAssert(*A.Value, Env, Line);
  }

private:
  void walk(const Expr &E, const EnvT &Env, uint32_t Line) {
    switch (E.kind()) {
    case Expr::Kind::IntLit:
    case Expr::Kind::VarRef:
      return;
    case Expr::Kind::ArrayRef: {
      const auto *A = cast<ArrayRef>(&E);
      walk(A->index(), Env, Line);
      checkIndex(A->name(), A->index(), Env, Line);
      return;
    }
    case Expr::Kind::Unary:
      walk(cast<UnaryExpr>(&E)->operand(), Env, Line);
      return;
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(&E);
      walk(B->lhs(), Env, Line);
      walk(B->rhs(), Env, Line);
      return;
    }
    case Expr::Kind::Call:
      for (const ExprPtr &Arg : cast<CallExpr>(&E)->args())
        walk(*Arg, Env, Line);
      return;
    }
  }

  void checkIndex(Symbol Array, const Expr &Index, const EnvT &Env,
                  uint32_t Line) {
    int64_t Size = -1;
    if (const GlobalDecl *G = P.global(Array)) {
      Size = G->ArraySize;
    } else {
      auto It = Vars.Arrays.find(Array);
      if (It != Vars.Arrays.end())
        Size = It->second;
    }
    if (Size < 0)
      return;
    Interval Idx = evalExpr(Index, Env, Ctx);
    if (Idx.isBot())
      return; // Index infeasible: nothing executes here.
    Interval InBounds = Interval::make(0, Size - 1);
    if (Idx.leq(InBounds))
      return;
    bool Definite = Idx.meet(InBounds).isBot();
    Out.push_back({BoundsFinding::Kind::ArrayOutOfBounds, Func, Line,
                   Definite,
                   "index " + Idx.str() + " may leave " +
                       P.Symbols.spelling(Array) + "[0.." +
                       std::to_string(Size - 1) + "]"});
  }

  void checkAssert(const Expr &Cond, const EnvT &Env, uint32_t Line) {
    Interval V = evalExpr(Cond, Env, Ctx);
    if (V.isBot())
      return; // Condition infeasible: the assert never executes.
    if (!V.contains(0))
      return; // Proven to hold.
    bool Definite = V.leq(Interval::constant(0));
    Out.push_back({BoundsFinding::Kind::AssertMayFail, Func, Line, Definite,
                   std::string("assertion may fail: condition value ") +
                       V.str()});
  }

  const Program &P;
  const FuncVars &Vars;
  uint32_t Func;
  const EvalContext &Ctx;
  std::vector<BoundsFinding> &Out;
};

} // namespace

BoundsReport warrow::runBoundsChecker(const Program &P,
                                      const ProgramCfg &Cfgs,
                                      const AnalysisResult &Result) {
  BoundsReport Report;

  // Join point values over contexts once.
  std::unordered_map<uint64_t, AbsValue> ByPoint;
  for (const auto &[X, Value] : Result.Solution.Sigma) {
    if (!X.isPoint())
      continue;
    uint64_t Key = (static_cast<uint64_t>(X.Func) << 32) | X.Node;
    AbsValue &Slot = ByPoint[Key];
    Slot = Slot.join(Value);
  }

  EvalContext Ctx = EvalContext::forProgram(P, [&Result](Symbol G) {
    return Result.globalValue(G);
  });

  for (uint32_t Func = 0; Func < P.Functions.size(); ++Func) {
    const Cfg &G = Cfgs.cfgOf(Func);
    FuncVars Vars = collectFunctionVars(*P.Functions[Func]);
    EdgeChecker<AbsEnv> ItvChecker(P, Vars, Func, Ctx, Report.Findings);
    EdgeChecker<RelEnv> RelChecker(P, Vars, Func, Ctx, Report.Findings);

    for (const CfgEdge &E : G.edges()) {
      uint64_t Key = (static_cast<uint64_t>(Func) << 32) | E.From;
      auto It = ByPoint.find(Key);
      if (It == ByPoint.end() || It->second.isBot())
        continue; // Unreachable: execution never evaluates this edge.
      uint32_t Line = G.lineOf(E.From);
      if (It->second.isRel())
        RelChecker.checkEdge(E.Act, It->second.relValue().closedForm(),
                             Line);
      else
        ItvChecker.checkEdge(E.Act, It->second.envValueOrTop(), Line);
    }
  }

  std::sort(Report.Findings.begin(), Report.Findings.end(),
            [](const BoundsFinding &A, const BoundsFinding &B) {
              if (A.Func != B.Func)
                return A.Func < B.Func;
              if (A.Line != B.Line)
                return A.Line < B.Line;
              if (A.K != B.K)
                return static_cast<int>(A.K) < static_cast<int>(B.K);
              return A.Message < B.Message;
            });
  // Deduplicate: the same hazard surfaces once per CFG edge that
  // evaluates it (e.g. both polarities of a guard).
  Report.Findings.erase(
      std::unique(Report.Findings.begin(), Report.Findings.end(),
                  [](const BoundsFinding &A, const BoundsFinding &B) {
                    return A.Func == B.Func && A.Line == B.Line &&
                           A.K == B.K && A.Message == B.Message;
                  }),
      Report.Findings.end());

  for (const BoundsFinding &F : Report.Findings) {
    if (F.K == BoundsFinding::Kind::ArrayOutOfBounds)
      ++Report.ArrayAlarms;
    else
      ++Report.AssertAlarms;
  }
  return Report;
}
