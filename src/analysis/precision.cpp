//===- analysis/precision.cpp - Precision comparison ---------------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/precision.h"

#include "lattice/lattice.h"

using namespace warrow;

std::string PrecisionComparison::str() const {
  std::string Out;
  Out += "points=" + std::to_string(ComparablePoints);
  Out += " improved=" + std::to_string(Improved);
  Out += " equal=" + std::to_string(Equal);
  Out += " worse=" + std::to_string(Worse);
  Out += " incomparable=" + std::to_string(Incomparable);
  Out += " globals_improved=" + std::to_string(GlobalsImproved) + "/" +
         std::to_string(GlobalsTotal);
  return Out;
}

PrecisionComparison warrow::comparePrecision(
    const PartialSolution<AnalysisVar, AbsValue> &Candidate,
    const PartialSolution<AnalysisVar, AbsValue> &Baseline) {
  PrecisionComparison C;
  for (const auto &[X, CandidateValue] : Candidate.Sigma) {
    auto It = Baseline.Sigma.find(X);
    if (It == Baseline.Sigma.end())
      continue;
    const AbsValue &BaselineValue = It->second;
    if (X.isGlobal()) {
      ++C.GlobalsTotal;
      if (strictlyLess(CandidateValue, BaselineValue))
        ++C.GlobalsImproved;
      continue;
    }
    ++C.ComparablePoints;
    bool CandLeq = CandidateValue.leq(BaselineValue);
    bool BaseLeq = BaselineValue.leq(CandidateValue);
    if (CandLeq && BaseLeq)
      ++C.Equal;
    else if (CandLeq)
      ++C.Improved;
    else if (BaseLeq)
      ++C.Worse;
    else
      ++C.Incomparable;
  }
  return C;
}
