//===- analysis/interproc.cpp - Interprocedural analysis -----------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/interproc.h"

#include "analysis/constants.h"
#include "analysis/rel_env.h"
#include "analysis/snapshot.h"
#include "analysis/transfer.h"
#include "engine/registry.h"
#include "engine/strategies/parallel_slr.h"
#include "lattice/combine.h"
#include "solvers/slr_plus.h"
#include "solvers/two_phase_local.h"
#include "support/timer.h"

#include <cassert>
#include <cctype>

using namespace warrow;

std::optional<SolverChoice>
warrow::solverChoiceForName(std::string_view Name) {
  const engine::SolverInfo *Info = engine::findSolver(Name);
  if (!Info || !Info->hasCap(engine::CapAnalysis))
    return std::nullopt;
  switch (Info->Strategy) {
  case engine::StrategyKind::SlrPlus:
    return Info->Operator == engine::OperatorKind::Widen
               ? SolverChoice::WidenOnly
               : SolverChoice::Warrow;
  case engine::StrategyKind::ParallelSlrPlus:
    return SolverChoice::ParallelWarrow;
  case engine::StrategyKind::TwoPhaseLocal:
    return SolverChoice::TwoPhase;
  case engine::StrategyKind::TwoPhaseLocalized:
    return SolverChoice::TwoPhaseLocalized;
  default:
    return std::nullopt;
  }
}

std::optional<AnalysisDomain> warrow::domainForName(std::string_view Name) {
  auto Matches = [Name](std::string_view Canonical) {
    if (Name.size() != Canonical.size())
      return false;
    for (size_t I = 0; I < Name.size(); ++I)
      if (std::tolower(static_cast<unsigned char>(Name[I])) != Canonical[I])
        return false;
    return true;
  };
  if (Matches("interval"))
    return AnalysisDomain::Interval;
  if (Matches("zones"))
    return AnalysisDomain::Zones;
  return std::nullopt;
}

std::string_view warrow::domainName(AnalysisDomain D) {
  return D == AnalysisDomain::Zones ? "zones" : "interval";
}

std::string AnalysisVar::str(const Program &P) const {
  if (isGlobal())
    return "global:" + P.Symbols.spelling(Glob);
  std::string Out = P.Symbols.spelling(P.Functions[Func]->Name);
  Out += ":" + std::to_string(Node);
  Out += "@" + std::to_string(Ctx);
  return Out;
}

uint32_t ContextTable::intern(const ContextValues &Values) {
  // Encode to a canonical string key (Flat<> lacks operator<).
  std::string Key;
  for (const Flat<int64_t> &V : Values) {
    if (V.isTop())
      Key += "T;";
    else if (V.isBot())
      Key += "B;";
    else
      Key += "C" + std::to_string(V.constantValue()) + ";";
  }
  std::lock_guard<std::mutex> Lock(M);
  auto It = Ids.find(Key);
  if (It != Ids.end())
    return It->second;
  uint32_t Id = static_cast<uint32_t>(Contexts.size());
  Contexts.push_back(Values);
  Ids.emplace(std::move(Key), Id);
  return Id;
}

std::vector<ContextValues> ContextTable::exportAll() const {
  std::lock_guard<std::mutex> Lock(M);
  return {Contexts.begin(), Contexts.end()};
}

bool ContextTable::importAll(const std::vector<ContextValues> &All) {
  clear();
  for (size_t I = 0; I < All.size(); ++I)
    if (intern(All[I]) != I) {
      clear(); // Duplicate entry: ids would shift.
      return false;
    }
  return true;
}

namespace warrow {

namespace {

/// Maps an environment type to its AbsValue wrapping/unwrapping. The
/// driver below is templated over EnvT; the overloaded transfer names
/// (evalExpr, applyBasicAction) resolve per domain.
template <typename EnvT> struct DomainOps;

template <> struct DomainOps<AbsEnv> {
  static AbsValue wrap(AbsEnv E) { return AbsValue::env(std::move(E)); }
  static const AbsEnv &unwrap(const AbsValue &V) { return V.envValue(); }
};

template <> struct DomainOps<RelEnv> {
  static AbsValue wrap(RelEnv E) { return AbsValue::rel(std::move(E)); }
  static const RelEnv &unwrap(const AbsValue &V) { return V.relValue(); }
};

} // namespace

/// Builds the right-hand sides of the constraint system. Kept out of the
/// header; owns no state beyond references into the analysis object.
class InterprocRhs {
public:
  InterprocRhs(InterprocAnalysis &A, const Program &P, const ProgramCfg &Cfgs)
      : A(A), P(P), Cfgs(Cfgs) {}

  using Get = SideEffectingSystem<AnalysisVar, AbsValue>::Get;
  using Side = SideEffectingSystem<AnalysisVar, AbsValue>::Side;

  AbsValue evalRhs(const AnalysisVar &X, const Get &GetFn,
                   const Side &SideFn) {
    if (A.Options.Domain == AnalysisDomain::Zones)
      return evalRhsIn<RelEnv>(X, GetFn, SideFn);
    return evalRhsIn<AbsEnv>(X, GetFn, SideFn);
  }

private:
  template <typename EnvT>
  AbsValue evalRhsIn(const AnalysisVar &X, const Get &GetFn,
                     const Side &SideFn) {
    if (X.isGlobal())
      return globalBase(X.Glob);

    const Cfg &G = Cfgs.cfgOf(X.Func);
    // Contributions are joined per target across this evaluation (several
    // in-edges may write the same global / call the same callee context)
    // and forwarded *immediately* with the running join, so that reading
    // a callee's exit after contributing its entry environment sees the
    // parameters. Repeated `side` calls per target carry monotonically
    // growing values, so the recorded contribution sigma(x,z) ends at the
    // full join — equivalent to Section 6's one-side-effect contract.
    std::unordered_map<AnalysisVar, AbsValue> Pending;
    auto Contribute = [&Pending, &SideFn](const AnalysisVar &Target,
                                          const AbsValue &Value) {
      AbsValue &Slot = Pending[Target];
      AbsValue Joined = Slot.join(Value);
      if (Joined == Slot)
        return;
      Slot = std::move(Joined);
      SideFn(Target, Slot);
    };

    EvalContext Ctx =
        EvalContext::forProgram(P, [&GetFn](Symbol Name) {
          return GetFn(AnalysisVar::global(Name)).itvValue();
        });

    AbsValue Acc = AbsValue::bot();
    if (X.Node == G.entry()) {
      if (X.Func == A.MainIdx && X.Ctx == A.InitialCtx)
        Acc = DomainOps<EnvT>::wrap(EnvT()); // Program start: top.
      // Other entries receive only side-effected parameter environments.
    } else {
      for (uint32_t EdgeId : G.inEdges(X.Node)) {
        const CfgEdge &E = G.edge(EdgeId);
        AbsValue Pre =
            GetFn(AnalysisVar::point(X.Func, E.From, X.Ctx));
        if (Pre.isBot())
          continue;
        const EnvT &PreEnv = DomainOps<EnvT>::unwrap(Pre);
        if (E.Act.K == Action::Kind::Call) {
          applyCall(E.Act, PreEnv, Ctx, GetFn, Contribute, Acc);
          continue;
        }
        if (E.Act.K == Action::Kind::Spawn) {
          applySpawn(E.Act, PreEnv, Ctx, GetFn, Contribute, Acc);
          continue;
        }
        auto Eff = applyBasicAction(E.Act, PreEnv, Ctx);
        for (auto &[GlobalSym, Value] : Eff.GlobalWrites)
          Contribute(AnalysisVar::global(GlobalSym), AbsValue::itv(Value));
        if (Eff.Post)
          Acc = Acc.join(DomainOps<EnvT>::wrap(std::move(*Eff.Post)));
      }
    }

    return Acc;
  }
  /// The base value of a global: its declared initializer (arrays start
  /// zeroed). Contributions are joined in by the solver.
  AbsValue globalBase(Symbol G) const {
    const GlobalDecl *Decl = P.global(G);
    assert(Decl && "global unknown for undeclared symbol");
    if (Decl->isArray())
      return AbsValue::itv(Interval::constant(0));
    return AbsValue::itv(Interval::constant(Decl->Init));
  }

  /// Context for a call with the given argument values.
  uint32_t contextFor(uint32_t CalleeIdx, const std::vector<Interval> &Args) {
    if (!A.Options.ContextSensitive)
      return A.InitialCtx;
    ContextValues Values;
    Values.reserve(Args.size());
    for (const Interval &Arg : Args) {
      if (Arg.isConstant())
        Values.push_back(Flat<int64_t>::constant(Arg.constantValue()));
      else
        Values.push_back(Flat<int64_t>::top());
    }
    uint32_t Ctx = A.Contexts.intern(Values);
    // The gas transaction below must be atomic across workers.
    std::lock_guard<std::mutex> Lock(A.CtxGasMutex);
    auto &Seen = A.CtxPerFunc[CalleeIdx];
    if (Seen.count(Ctx))
      return Ctx;
    if (Seen.size() >= A.Options.MaxContextsPerFunction) {
      // Context gas exhausted: collapse onto the all-top context.
      ContextValues Tops(Args.size(), Flat<int64_t>::top());
      uint32_t TopCtx = A.Contexts.intern(Tops);
      Seen.insert(TopCtx);
      return TopCtx;
    }
    Seen.insert(Ctx);
    return Ctx;
  }

  template <typename EnvT, typename ContributeFn>
  void applyCall(const Action &Act, const EnvT &PreEnv,
                 const EvalContext &Ctx, const Get &GetFn,
                 ContributeFn &Contribute, AbsValue &Acc) {
    size_t CalleeIdx = P.functionIndex(Act.Callee);
    assert(CalleeIdx < P.Functions.size() && "sema checked callee");
    const FuncDecl &Callee = *P.Functions[CalleeIdx];

    std::vector<Interval> Args;
    Args.reserve(Act.Args.size());
    for (const Expr *Arg : Act.Args) {
      Interval V = evalExpr(*Arg, PreEnv, Ctx);
      if (V.isBot())
        return; // Unreachable call.
      Args.push_back(V);
    }

    uint32_t CalleeCtx =
        contextFor(static_cast<uint32_t>(CalleeIdx), Args);

    // Side-effect the parameter binding to the callee's entry. Argument
    // values cross the call boundary as intervals in both domains (the
    // zones backend re-relates parameters inside the callee).
    EnvT ParamEnv;
    for (size_t I = 0; I < Args.size(); ++I) {
      // In context-sensitive mode the context constants refine the
      // parameter (relevant once contexts collapse onto all-top).
      Interval Bound = Args[I];
      if (A.Options.ContextSensitive) {
        const Flat<int64_t> &CtxVal = A.Contexts.values(CalleeCtx)[I];
        if (CtxVal.isConstant())
          Bound = Bound.meet(Interval::constant(CtxVal.constantValue()));
      }
      if (Bound.isBot())
        return; // Contradictory binding: unreachable.
      if (!Bound.isTop())
        ParamEnv.set(Callee.Params[I], Bound);
    }
    Contribute(
        AnalysisVar::point(static_cast<uint32_t>(CalleeIdx),
                           Cfg::EntryNode, CalleeCtx),
        DomainOps<EnvT>::wrap(std::move(ParamEnv)));

    // Read the callee's exit and bind the return value.
    AbsValue ExitVal = GetFn(AnalysisVar::point(
        static_cast<uint32_t>(CalleeIdx), Cfg::ExitNode, CalleeCtx));
    if (ExitVal.isBot())
      return; // Callee (in this context) never returns.
    Interval RetValue = DomainOps<EnvT>::unwrap(ExitVal).get(A.RetSym);

    EnvT Post = PreEnv;
    if (Act.Lhs) {
      if (P.isGlobal(Act.Lhs))
        Contribute(AnalysisVar::global(Act.Lhs), AbsValue::itv(RetValue));
      else if (RetValue.isBot())
        return; // Exit binds no return value: treat as non-returning.
      else
        Post.set(Act.Lhs, RetValue);
    }
    Acc = Acc.join(DomainOps<EnvT>::wrap(std::move(Post)));
  }

  /// `spawn f(args)`: bind the arguments into the spawned function's
  /// entry (side effect) and continue with the spawner's state unchanged.
  /// The spawned body's global writes must still be accounted for, and
  /// SLR+ is demand-driven — nothing else reads the spawned function's
  /// unknowns — so the exit is read (and discarded) purely to force
  /// exploration of the body.
  template <typename EnvT, typename ContributeFn>
  void applySpawn(const Action &Act, const EnvT &PreEnv,
                  const EvalContext &Ctx, const Get &GetFn,
                  ContributeFn &Contribute, AbsValue &Acc) {
    size_t CalleeIdx = P.functionIndex(Act.Callee);
    assert(CalleeIdx < P.Functions.size() && "sema checked spawn callee");
    const FuncDecl &Callee = *P.Functions[CalleeIdx];

    std::vector<Interval> Args;
    Args.reserve(Act.Args.size());
    for (const Expr *Arg : Act.Args) {
      Interval V = evalExpr(*Arg, PreEnv, Ctx);
      if (V.isBot())
        return; // Unreachable spawn.
      Args.push_back(V);
    }

    uint32_t CalleeCtx = contextFor(static_cast<uint32_t>(CalleeIdx), Args);

    EnvT ParamEnv;
    for (size_t I = 0; I < Args.size(); ++I) {
      Interval Bound = Args[I];
      if (A.Options.ContextSensitive) {
        const Flat<int64_t> &CtxVal = A.Contexts.values(CalleeCtx)[I];
        if (CtxVal.isConstant())
          Bound = Bound.meet(Interval::constant(CtxVal.constantValue()));
      }
      if (Bound.isBot())
        return;
      if (!Bound.isTop())
        ParamEnv.set(Callee.Params[I], Bound);
    }
    Contribute(AnalysisVar::point(static_cast<uint32_t>(CalleeIdx),
                                  Cfg::EntryNode, CalleeCtx),
               DomainOps<EnvT>::wrap(std::move(ParamEnv)));

    (void)GetFn(AnalysisVar::point(static_cast<uint32_t>(CalleeIdx),
                                   Cfg::ExitNode, CalleeCtx));

    Acc = Acc.join(DomainOps<EnvT>::wrap(PreEnv));
  }

  InterprocAnalysis &A;
  const Program &P;
  const ProgramCfg &Cfgs;
};

} // namespace warrow

InterprocAnalysis::InterprocAnalysis(const Program &P, const ProgramCfg &Cfgs,
                                     AnalysisOptions Options)
    : P(P), Cfgs(Cfgs), Options(Options) {
  Symbol MainSym = P.Symbols.lookup("main");
  MainIdx = static_cast<uint32_t>(P.functionIndex(MainSym));
  assert(MainIdx < P.Functions.size() && "program has main (sema)");
  RetSym = P.Symbols.lookup(ReturnValueName);
  assert(RetSym != 0 && "CFGs built before analysis (interns $ret)");
}

AnalysisVar InterprocAnalysis::root() const {
  return AnalysisVar::point(MainIdx, Cfg::ExitNode, InitialCtx);
}

AnalysisResult InterprocAnalysis::run(SolverChoice Choice,
                                      AnalysisSnapshot *Capture) {
  // Reset per-run context state.
  Contexts.clear();
  CtxPerFunc.clear();
  InitialCtx = Contexts.intern({}); // Id 0: the empty tuple.

  InterprocRhs RhsBuilder(*this, P, Cfgs);
  SideEffectingSystem<AnalysisVar, AbsValue> System(
      [&RhsBuilder](const AnalysisVar &X)
          -> SideEffectingSystem<AnalysisVar, AbsValue>::Rhs {
        return [&RhsBuilder, X](const InterprocRhs::Get &GetFn,
                                const InterprocRhs::Side &SideFn) {
          return RhsBuilder.evalRhs(X, GetFn, SideFn);
        };
      });

  AnalysisResult Result;
  if (Capture)
    Capture->State = {}; // Two-phase choices leave it empty.
  // Solve, then (for the resumable SLR+ engines) capture the solver's
  // externalized state while the engine is still alive.
  auto SolveAndCapture = [&](auto &Solver) {
    Result.Solution = Solver.solveFor(root());
    if (Capture)
      Capture->State = Solver.snapshot();
  };
  Timer Clock;
  switch (Choice) {
  case SolverChoice::Warrow:
    if (Options.ThresholdWidening) {
      auto Thresholds =
          std::make_shared<ThresholdSet>(collectProgramConstants(P));
      SlrPlusSolver<AnalysisVar, AbsValue, ThresholdWarrowCombine> Solver(
          System,
          ThresholdWarrowCombine(std::move(Thresholds),
                                 Options.WarrowMaxSwitches),
          Options.Solver, Options.LocalizedWidening);
      SolveAndCapture(Solver);
    } else {
      SlrPlusSolver<AnalysisVar, AbsValue,
                    DegradingWarrowCombine<AnalysisVar>>
          Solver(System,
                 DegradingWarrowCombine<AnalysisVar>(
                     Options.WarrowMaxSwitches),
                 Options.Solver, Options.LocalizedWidening);
      SolveAndCapture(Solver);
    }
    break;
  case SolverChoice::WidenOnly: {
    SlrPlusSolver<AnalysisVar, AbsValue, WidenCombine> Solver(
        System, WidenCombine{}, Options.Solver);
    SolveAndCapture(Solver);
    break;
  }
  case SolverChoice::TwoPhase:
    Result.Solution = solveTwoPhaseSide(System, root(), Options.Solver,
                                        Options.TwoPhaseNarrowRounds);
    break;
  case SolverChoice::TwoPhaseLocalized:
    Result.Solution = engine::runTwoPhaseSide(
        System, root(), Options.Solver, Options.TwoPhaseNarrowRounds,
        /*LocalizedAscending=*/true);
    break;
  case SolverChoice::ParallelWarrow:
    if (Options.ThresholdWidening) {
      auto Thresholds =
          std::make_shared<ThresholdSet>(collectProgramConstants(P));
      engine::ParallelSlrEngine<AnalysisVar, AbsValue, ThresholdWarrowCombine>
          Solver(System,
                 ThresholdWarrowCombine(std::move(Thresholds),
                                        Options.WarrowMaxSwitches),
                 Options.Solver, Options.LocalizedWidening);
      SolveAndCapture(Solver);
    } else {
      engine::ParallelSlrEngine<AnalysisVar, AbsValue,
                                DegradingWarrowCombine<AnalysisVar>>
          Solver(System,
                 DegradingWarrowCombine<AnalysisVar>(Options.WarrowMaxSwitches),
                 Options.Solver, Options.LocalizedWidening);
      SolveAndCapture(Solver);
    }
    break;
  }
  Result.Seconds = Clock.seconds();
  Result.Stats = Result.Solution.Stats;
  Result.NumUnknowns = Result.Solution.Sigma.size();
  if (Capture) {
    Capture->Contexts = Contexts.exportAll();
    Capture->Domain = Options.Domain;
    Capture->ContextSensitive = Options.ContextSensitive;
    snapshotShapes(P, Cfgs, *Capture);
  }
  return Result;
}

AnalysisResult InterprocAnalysis::runIncremental(SolverChoice Choice,
                                                 const AnalysisSnapshot &Snap,
                                                 const Program &OldP,
                                                 AnalysisSnapshot *Capture,
                                                 IncrementalStats *IncOut) {
  IncrementalStats Inc;
  Inc.SnapshotUnknowns = Snap.State.size();
  auto Fallback = [&] {
    Inc.ColdFallback = true;
    if (IncOut)
      *IncOut = Inc;
    return run(Choice, Capture);
  };
  // Resume needs a resumable engine and a snapshot of the same analysis
  // configuration; anything else cold-solves.
  const bool Resumable = (Choice == SolverChoice::Warrow ||
                          Choice == SolverChoice::WidenOnly ||
                          Choice == SolverChoice::ParallelWarrow) &&
                         Snap.Domain == Options.Domain &&
                         Snap.ContextSensitive == Options.ContextSensitive &&
                         !Snap.empty() && !Snap.Contexts.empty() &&
                         Snap.Contexts.front().empty();
  if (!Resumable)
    return Fallback();

  Timer Clock; // Warm time includes the diff and the state surgery.
  ProgramDiff Diff = diffSnapshot(Snap, P, Cfgs);

  // --- Identity remaps: snapshot (OldP) ids -> this program's ids. -------
  // Functions match by name; a changed/removed fingerprint drops every
  // unknown of the function. Symbols match by spelling (lookup only —
  // kept functions are textually unchanged, so their locals exist here).
  std::unordered_map<std::string_view, uint32_t> NewFuncIdx;
  for (size_t I = 0; I < P.Functions.size(); ++I)
    NewFuncIdx.emplace(P.Symbols.spelling(P.Functions[I]->Name),
                       static_cast<uint32_t>(I));
  std::unordered_set<std::string_view> SnapFuncs;
  for (const FuncShape &F : Snap.Funcs)
    SnapFuncs.insert(F.Name);
  std::vector<int64_t> FuncMap(OldP.Functions.size(), -1);
  for (size_t I = 0; I < OldP.Functions.size(); ++I) {
    const std::string &Name = OldP.Symbols.spelling(OldP.Functions[I]->Name);
    if (Diff.ChangedFuncs.count(Name) || !SnapFuncs.count(Name))
      continue;
    auto It = NewFuncIdx.find(Name);
    if (It != NewFuncIdx.end())
      FuncMap[I] = It->second;
  }
  const bool SameProgram = &OldP == &P;
  auto MapSym = [&](Symbol S) -> Symbol {
    if (SameProgram)
      return S;
    return S ? P.Symbols.lookup(OldP.Symbols.spelling(S)) : 0;
  };
  auto MapVar = [&](const AnalysisVar &X) -> std::optional<AnalysisVar> {
    if (X.isGlobal()) {
      if (!X.Glob || Diff.ChangedGlobals.count(OldP.Symbols.spelling(X.Glob)))
        return std::nullopt;
      Symbol NS = MapSym(X.Glob);
      if (!NS || !P.isGlobal(NS))
        return std::nullopt;
      return AnalysisVar::global(NS);
    }
    if (X.Func >= FuncMap.size() || FuncMap[X.Func] < 0 ||
        X.Ctx >= Snap.Contexts.size())
      return std::nullopt;
    uint32_t NewFunc = static_cast<uint32_t>(FuncMap[X.Func]);
    if (X.Node >= Cfgs.cfgOf(NewFunc).numNodes())
      return std::nullopt;
    return AnalysisVar::point(NewFunc, X.Node, X.Ctx);
  };

  // --- Which snapshot slots survive, and with which identity? ------------
  const auto &S0 = Snap.State;
  const uint32_t N = static_cast<uint32_t>(S0.size());
  std::vector<uint8_t> Keep(N, 0);
  std::vector<AnalysisVar> NewVar(N);
  for (uint32_t I = 0; I < N; ++I)
    if (std::optional<AnalysisVar> X = MapVar(S0.Vars[I])) {
      NewVar[I] = *X;
      Keep[I] = 1;
    }
  std::unordered_map<AnalysisVar, uint32_t> OldSlotOf;
  OldSlotOf.reserve(N);
  for (uint32_t I = 0; I < N; ++I)
    OldSlotOf.emplace(S0.Vars[I], I);

  // Values re-expressed over this program's interner; a failed remap
  // restarts the slot instead of dropping it (topology must survive).
  std::vector<AbsValue> NewSigma(N);
  std::vector<uint8_t> SigmaOk(N, 0);
  for (uint32_t I = 0; I < N; ++I)
    if (Keep[I]) {
      if (std::optional<AbsValue> V = remapAbsValue(S0.Sigma[I], OldP, P)) {
        NewSigma[I] = std::move(*V);
        SigmaOk[I] = 1;
      }
    }

  // --- Seeds of the restart closure. --------------------------------------
  // A kept slot must restart when its last evaluation can no longer be
  // trusted: it read a dropped slot, its value failed to remap, or it was
  // unstable at capture time.
  std::vector<uint8_t> Seed(N, 0);
  for (uint32_t I = 0; I < N; ++I) {
    if (!Keep[I]) {
      // Readers of a dropped slot re-evaluate against its replacement.
      for (uint32_t R : S0.Infl[I])
        if (R != I && Keep[R])
          Seed[R] = 1;
      continue;
    }
    if (!SigmaOk[I] || !S0.Stable[I])
      Seed[I] = 1;
    for (const auto &[RS, RV] : S0.Cache[I].Reads)
      if (RS < N && !Keep[RS])
        Seed[I] = 1;
  }

  // --- Side-effect cells: classify, seed, and wire closure edges. ---------
  // A cell survives only when its contributor survives un-restarted (a
  // restarted contributor re-evaluates and re-announces; its recorded
  // contribution is a stale sample that must be retracted for ⊟ to stay
  // sound). A retracted cell seeds its target, which then restarts and
  // re-joins the remaining contributions from the initial value.
  struct PendingCell {
    uint32_t CSlot;
    AnalysisVar Target; // This-program identity (may be a dropped slot).
    std::optional<uint32_t> TSlot;
    AbsValue Value;
  };
  std::vector<PendingCell> Tentative;
  Tentative.reserve(S0.Cells.size());
  for (const auto &Cell : S0.Cells) {
    auto CIt = OldSlotOf.find(Cell.Contributor);
    auto TIt = OldSlotOf.find(Cell.Target);
    std::optional<uint32_t> TSlot;
    if (TIt != OldSlotOf.end())
      TSlot = TIt->second;
    std::optional<AnalysisVar> TV =
        TSlot && Keep[*TSlot] ? std::optional(NewVar[*TSlot])
                              : MapVar(Cell.Target);
    std::optional<AbsValue> Val = remapAbsValue(Cell.Value, OldP, P);
    if (CIt == OldSlotOf.end() || !Keep[CIt->second] || !TV || !Val) {
      ++Inc.RetractedCells;
      if (TSlot && Keep[*TSlot])
        Seed[*TSlot] = 1;
      // A kept contributor whose cell we cannot carry must re-announce.
      if (CIt != OldSlotOf.end() && Keep[CIt->second])
        Seed[CIt->second] = 1;
      continue;
    }
    Tentative.push_back({CIt->second, *TV, TSlot, std::move(*Val)});
  }

  // --- Transitive restart closure over influence + contribution edges. ----
  // Plain destabilization is not enough: the narrowing phase of ⊟ only
  // refines infinite bounds, so a stale finite bound would survive any
  // number of re-evaluations. Affected unknowns restart from the initial
  // assignment, exactly like a cold solve of the edited program.
  std::vector<std::vector<uint32_t>> Out(N);
  for (uint32_t I = 0; I < N; ++I)
    if (Keep[I])
      for (uint32_t R : S0.Infl[I])
        if (R != I && Keep[R])
          Out[I].push_back(R);
  for (const PendingCell &C : Tentative)
    if (C.TSlot && Keep[*C.TSlot])
      Out[C.CSlot].push_back(*C.TSlot);
  std::vector<uint8_t> Restart(N, 0);
  std::vector<uint32_t> Work;
  for (uint32_t I = 0; I < N; ++I)
    if (Keep[I] && Seed[I]) {
      Restart[I] = 1;
      Work.push_back(I);
    }
  while (!Work.empty()) {
    uint32_t I = Work.back();
    Work.pop_back();
    for (uint32_t J : Out[I])
      if (!Restart[J]) {
        Restart[J] = 1;
        Work.push_back(J);
      }
  }

  // --- Repack the *unaffected* slots densely into a fresh state. ----------
  // Restarted slots are dropped from the table entirely, not loaded at ⊥:
  // the warm solve re-interns them on demand, so the affected region is
  // re-discovered in exactly the recursive demand order a cold solve of
  // the edited program uses. Preloading them (old slot numbers, stale
  // influence rows, a pre-filled queue) was observably wrong for σ-
  // equality: a restarted unknown could be *first*-evaluated against an
  // input that had already overshot to an infinite bound, capping it into
  // a finite bound ⊟'s narrowing can never undo — where cold, first
  // evaluating it earlier against the still-small input, widens through
  // the infinite bound and narrows back precisely. Every slot that stays
  // in the table is stable with all of its (transitive) reads in the
  // table, so the kept region acts as already-final constants under the
  // warm solve, never re-evaluates, and never destabilizes anyone.
  engine::SolverState<AnalysisVar, AbsValue> W;
  std::vector<uint32_t> OldToNew(N, UINT32_MAX);
  for (uint32_t I = 0; I < N; ++I) {
    if (!Keep[I])
      continue;
    if (Restart[I]) {
      ++Inc.RestartedUnknowns;
      continue;
    }
    OldToNew[I] = static_cast<uint32_t>(W.Vars.size());
    W.Vars.push_back(NewVar[I]);
  }
  const size_t M = W.Vars.size();
  W.Sigma.resize(M);
  W.Infl.resize(M);
  W.Stable.assign(M, 1);
  W.WideningPoint.assign(M, 0);
  W.SideEffected.assign(M, 0);
  W.Cache.resize(M);
  for (uint32_t I = 0; I < N; ++I) {
    if (OldToNew[I] == UINT32_MAX)
      continue;
    uint32_t J = OldToNew[I];
    auto &Row = W.Infl[J];
    Row.push_back(J); // Self-influence invariant.
    for (uint32_t R : S0.Infl[I])
      if (R != I && R < N && OldToNew[R] != UINT32_MAX)
        Row.push_back(OldToNew[R]);
    W.Sigma[J] = std::move(NewSigma[I]);
    W.WideningPoint[J] = S0.WideningPoint[I];
    W.SideEffected[J] = S0.SideEffected[I];
    if (S0.Cache[I].Valid) {
      engine::SolverState<AnalysisVar, AbsValue>::CacheRecord Rec;
      Rec.Valid = true;
      if (std::optional<AbsValue> CV = remapAbsValue(S0.Cache[I].Value, OldP, P))
        Rec.Value = std::move(*CV);
      else
        Rec.Valid = false;
      for (const auto &[RS, RV] : S0.Cache[I].Reads) {
        if (!Rec.Valid)
          break;
        std::optional<AbsValue> RVal = remapAbsValue(RV, OldP, P);
        if (RS >= N || OldToNew[RS] == UINT32_MAX || !RVal) {
          Rec.Valid = false;
          break;
        }
        Rec.Reads.emplace_back(OldToNew[RS], std::move(*RVal));
      }
      if (Rec.Valid)
        W.Cache[J] = std::move(Rec);
    }
  }
  for (PendingCell &C : Tentative) {
    if (Restart[C.CSlot]) {
      ++Inc.RetractedCells; // Contributor restarts and re-announces.
      continue;
    }
    ++Inc.KeptCells;
    if (C.TSlot && OldToNew[*C.TSlot] != UINT32_MAX)
      W.SideEffected[OldToNew[*C.TSlot]] = 1;
    // A target outside the slot table (dropped or restarted, and
    // re-discovered later) is legal: restore() holds it as a pending
    // side-effect mark.
    W.Cells.push_back({C.Target, NewVar[C.CSlot], std::move(C.Value)});
  }
  Inc.DroppedUnknowns = N - Inc.RestartedUnknowns - static_cast<uint64_t>(M);

  // --- Re-attach analysis-level state and resume. --------------------------
  if (!Contexts.importAll(Snap.Contexts))
    return Fallback();
  InitialCtx = 0;
  CtxPerFunc.clear();
  for (uint32_t I = 0; I < N; ++I)
    if (Keep[I] && NewVar[I].isPoint())
      CtxPerFunc[NewVar[I].Func].insert(NewVar[I].Ctx);

  InterprocRhs RhsBuilder(*this, P, Cfgs);
  SideEffectingSystem<AnalysisVar, AbsValue> System(
      [&RhsBuilder](const AnalysisVar &X)
          -> SideEffectingSystem<AnalysisVar, AbsValue>::Rhs {
        return [&RhsBuilder, X](const InterprocRhs::Get &GetFn,
                                const InterprocRhs::Side &SideFn) {
          return RhsBuilder.evalRhs(X, GetFn, SideFn);
        };
      });

  AnalysisResult Result;
  auto WarmSolve = [&](auto &Solver) {
    Solver.restore(W);
    Result.Solution = Solver.solveFor(root());
    if (Capture)
      Capture->State = Solver.snapshot();
  };
  switch (Choice) {
  case SolverChoice::Warrow:
    if (Options.ThresholdWidening) {
      auto Thresholds =
          std::make_shared<ThresholdSet>(collectProgramConstants(P));
      SlrPlusSolver<AnalysisVar, AbsValue, ThresholdWarrowCombine> Solver(
          System,
          ThresholdWarrowCombine(std::move(Thresholds),
                                 Options.WarrowMaxSwitches),
          Options.Solver, Options.LocalizedWidening);
      WarmSolve(Solver);
    } else {
      SlrPlusSolver<AnalysisVar, AbsValue,
                    DegradingWarrowCombine<AnalysisVar>>
          Solver(System,
                 DegradingWarrowCombine<AnalysisVar>(
                     Options.WarrowMaxSwitches),
                 Options.Solver, Options.LocalizedWidening);
      WarmSolve(Solver);
    }
    break;
  case SolverChoice::WidenOnly: {
    SlrPlusSolver<AnalysisVar, AbsValue, WidenCombine> Solver(
        System, WidenCombine{}, Options.Solver);
    WarmSolve(Solver);
    break;
  }
  case SolverChoice::ParallelWarrow:
    if (Options.ThresholdWidening) {
      auto Thresholds =
          std::make_shared<ThresholdSet>(collectProgramConstants(P));
      engine::ParallelSlrEngine<AnalysisVar, AbsValue, ThresholdWarrowCombine>
          Solver(System,
                 ThresholdWarrowCombine(std::move(Thresholds),
                                        Options.WarrowMaxSwitches),
                 Options.Solver, Options.LocalizedWidening);
      WarmSolve(Solver);
    } else {
      engine::ParallelSlrEngine<AnalysisVar, AbsValue,
                                DegradingWarrowCombine<AnalysisVar>>
          Solver(System,
                 DegradingWarrowCombine<AnalysisVar>(Options.WarrowMaxSwitches),
                 Options.Solver, Options.LocalizedWidening);
      WarmSolve(Solver);
    }
    break;
  default:
    assert(false && "Resumable filtered non-SLR+ choices above");
    break;
  }
  Result.Seconds = Clock.seconds();
  Result.Stats = Result.Solution.Stats;
  Result.NumUnknowns = Result.Solution.Sigma.size();
  if (Capture) {
    Capture->Contexts = Contexts.exportAll();
    Capture->Domain = Options.Domain;
    Capture->ContextSensitive = Options.ContextSensitive;
    snapshotShapes(P, Cfgs, *Capture);
  }
  if (IncOut)
    *IncOut = Inc;
  return Result;
}

VerifyResult InterprocAnalysis::verifySolution(const AnalysisResult &Result) {
  InterprocRhs RhsBuilder(*this, P, Cfgs);
  SideEffectingSystem<AnalysisVar, AbsValue> System(
      [&RhsBuilder](const AnalysisVar &X)
          -> SideEffectingSystem<AnalysisVar, AbsValue>::Rhs {
        return [&RhsBuilder, X](const InterprocRhs::Get &GetFn,
                                const InterprocRhs::Side &SideFn) {
          return RhsBuilder.evalRhs(X, GetFn, SideFn);
        };
      });
  return verifySideEffectingSolution(System, Result.Solution);
}
