//===- analysis/interproc.cpp - Interprocedural analysis -----------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/interproc.h"

#include "analysis/constants.h"
#include "analysis/rel_env.h"
#include "analysis/transfer.h"
#include "engine/registry.h"
#include "engine/strategies/parallel_slr.h"
#include "lattice/combine.h"
#include "solvers/slr_plus.h"
#include "solvers/two_phase_local.h"
#include "support/timer.h"

#include <cassert>
#include <cctype>

using namespace warrow;

std::optional<SolverChoice>
warrow::solverChoiceForName(std::string_view Name) {
  const engine::SolverInfo *Info = engine::findSolver(Name);
  if (!Info || !Info->hasCap(engine::CapAnalysis))
    return std::nullopt;
  switch (Info->Strategy) {
  case engine::StrategyKind::SlrPlus:
    return Info->Operator == engine::OperatorKind::Widen
               ? SolverChoice::WidenOnly
               : SolverChoice::Warrow;
  case engine::StrategyKind::ParallelSlrPlus:
    return SolverChoice::ParallelWarrow;
  case engine::StrategyKind::TwoPhaseLocal:
    return SolverChoice::TwoPhase;
  case engine::StrategyKind::TwoPhaseLocalized:
    return SolverChoice::TwoPhaseLocalized;
  default:
    return std::nullopt;
  }
}

std::optional<AnalysisDomain> warrow::domainForName(std::string_view Name) {
  auto Matches = [Name](std::string_view Canonical) {
    if (Name.size() != Canonical.size())
      return false;
    for (size_t I = 0; I < Name.size(); ++I)
      if (std::tolower(static_cast<unsigned char>(Name[I])) != Canonical[I])
        return false;
    return true;
  };
  if (Matches("interval"))
    return AnalysisDomain::Interval;
  if (Matches("zones"))
    return AnalysisDomain::Zones;
  return std::nullopt;
}

std::string_view warrow::domainName(AnalysisDomain D) {
  return D == AnalysisDomain::Zones ? "zones" : "interval";
}

std::string AnalysisVar::str(const Program &P) const {
  if (isGlobal())
    return "global:" + P.Symbols.spelling(Glob);
  std::string Out = P.Symbols.spelling(P.Functions[Func]->Name);
  Out += ":" + std::to_string(Node);
  Out += "@" + std::to_string(Ctx);
  return Out;
}

uint32_t ContextTable::intern(const ContextValues &Values) {
  // Encode to a canonical string key (Flat<> lacks operator<).
  std::string Key;
  for (const Flat<int64_t> &V : Values) {
    if (V.isTop())
      Key += "T;";
    else if (V.isBot())
      Key += "B;";
    else
      Key += "C" + std::to_string(V.constantValue()) + ";";
  }
  std::lock_guard<std::mutex> Lock(M);
  auto It = Ids.find(Key);
  if (It != Ids.end())
    return It->second;
  uint32_t Id = static_cast<uint32_t>(Contexts.size());
  Contexts.push_back(Values);
  Ids.emplace(std::move(Key), Id);
  return Id;
}

namespace warrow {

namespace {

/// Maps an environment type to its AbsValue wrapping/unwrapping. The
/// driver below is templated over EnvT; the overloaded transfer names
/// (evalExpr, applyBasicAction) resolve per domain.
template <typename EnvT> struct DomainOps;

template <> struct DomainOps<AbsEnv> {
  static AbsValue wrap(AbsEnv E) { return AbsValue::env(std::move(E)); }
  static const AbsEnv &unwrap(const AbsValue &V) { return V.envValue(); }
};

template <> struct DomainOps<RelEnv> {
  static AbsValue wrap(RelEnv E) { return AbsValue::rel(std::move(E)); }
  static const RelEnv &unwrap(const AbsValue &V) { return V.relValue(); }
};

} // namespace

/// Builds the right-hand sides of the constraint system. Kept out of the
/// header; owns no state beyond references into the analysis object.
class InterprocRhs {
public:
  InterprocRhs(InterprocAnalysis &A, const Program &P, const ProgramCfg &Cfgs)
      : A(A), P(P), Cfgs(Cfgs) {}

  using Get = SideEffectingSystem<AnalysisVar, AbsValue>::Get;
  using Side = SideEffectingSystem<AnalysisVar, AbsValue>::Side;

  AbsValue evalRhs(const AnalysisVar &X, const Get &GetFn,
                   const Side &SideFn) {
    if (A.Options.Domain == AnalysisDomain::Zones)
      return evalRhsIn<RelEnv>(X, GetFn, SideFn);
    return evalRhsIn<AbsEnv>(X, GetFn, SideFn);
  }

private:
  template <typename EnvT>
  AbsValue evalRhsIn(const AnalysisVar &X, const Get &GetFn,
                     const Side &SideFn) {
    if (X.isGlobal())
      return globalBase(X.Glob);

    const Cfg &G = Cfgs.cfgOf(X.Func);
    // Contributions are joined per target across this evaluation (several
    // in-edges may write the same global / call the same callee context)
    // and forwarded *immediately* with the running join, so that reading
    // a callee's exit after contributing its entry environment sees the
    // parameters. Repeated `side` calls per target carry monotonically
    // growing values, so the recorded contribution sigma(x,z) ends at the
    // full join — equivalent to Section 6's one-side-effect contract.
    std::unordered_map<AnalysisVar, AbsValue> Pending;
    auto Contribute = [&Pending, &SideFn](const AnalysisVar &Target,
                                          const AbsValue &Value) {
      AbsValue &Slot = Pending[Target];
      AbsValue Joined = Slot.join(Value);
      if (Joined == Slot)
        return;
      Slot = std::move(Joined);
      SideFn(Target, Slot);
    };

    EvalContext Ctx =
        EvalContext::forProgram(P, [&GetFn](Symbol Name) {
          return GetFn(AnalysisVar::global(Name)).itvValue();
        });

    AbsValue Acc = AbsValue::bot();
    if (X.Node == G.entry()) {
      if (X.Func == A.MainIdx && X.Ctx == A.InitialCtx)
        Acc = DomainOps<EnvT>::wrap(EnvT()); // Program start: top.
      // Other entries receive only side-effected parameter environments.
    } else {
      for (uint32_t EdgeId : G.inEdges(X.Node)) {
        const CfgEdge &E = G.edge(EdgeId);
        AbsValue Pre =
            GetFn(AnalysisVar::point(X.Func, E.From, X.Ctx));
        if (Pre.isBot())
          continue;
        const EnvT &PreEnv = DomainOps<EnvT>::unwrap(Pre);
        if (E.Act.K == Action::Kind::Call) {
          applyCall(E.Act, PreEnv, Ctx, GetFn, Contribute, Acc);
          continue;
        }
        if (E.Act.K == Action::Kind::Spawn) {
          applySpawn(E.Act, PreEnv, Ctx, GetFn, Contribute, Acc);
          continue;
        }
        auto Eff = applyBasicAction(E.Act, PreEnv, Ctx);
        for (auto &[GlobalSym, Value] : Eff.GlobalWrites)
          Contribute(AnalysisVar::global(GlobalSym), AbsValue::itv(Value));
        if (Eff.Post)
          Acc = Acc.join(DomainOps<EnvT>::wrap(std::move(*Eff.Post)));
      }
    }

    return Acc;
  }
  /// The base value of a global: its declared initializer (arrays start
  /// zeroed). Contributions are joined in by the solver.
  AbsValue globalBase(Symbol G) const {
    const GlobalDecl *Decl = P.global(G);
    assert(Decl && "global unknown for undeclared symbol");
    if (Decl->isArray())
      return AbsValue::itv(Interval::constant(0));
    return AbsValue::itv(Interval::constant(Decl->Init));
  }

  /// Context for a call with the given argument values.
  uint32_t contextFor(uint32_t CalleeIdx, const std::vector<Interval> &Args) {
    if (!A.Options.ContextSensitive)
      return A.InitialCtx;
    ContextValues Values;
    Values.reserve(Args.size());
    for (const Interval &Arg : Args) {
      if (Arg.isConstant())
        Values.push_back(Flat<int64_t>::constant(Arg.constantValue()));
      else
        Values.push_back(Flat<int64_t>::top());
    }
    uint32_t Ctx = A.Contexts.intern(Values);
    // The gas transaction below must be atomic across workers.
    std::lock_guard<std::mutex> Lock(A.CtxGasMutex);
    auto &Seen = A.CtxPerFunc[CalleeIdx];
    if (Seen.count(Ctx))
      return Ctx;
    if (Seen.size() >= A.Options.MaxContextsPerFunction) {
      // Context gas exhausted: collapse onto the all-top context.
      ContextValues Tops(Args.size(), Flat<int64_t>::top());
      uint32_t TopCtx = A.Contexts.intern(Tops);
      Seen.insert(TopCtx);
      return TopCtx;
    }
    Seen.insert(Ctx);
    return Ctx;
  }

  template <typename EnvT, typename ContributeFn>
  void applyCall(const Action &Act, const EnvT &PreEnv,
                 const EvalContext &Ctx, const Get &GetFn,
                 ContributeFn &Contribute, AbsValue &Acc) {
    size_t CalleeIdx = P.functionIndex(Act.Callee);
    assert(CalleeIdx < P.Functions.size() && "sema checked callee");
    const FuncDecl &Callee = *P.Functions[CalleeIdx];

    std::vector<Interval> Args;
    Args.reserve(Act.Args.size());
    for (const Expr *Arg : Act.Args) {
      Interval V = evalExpr(*Arg, PreEnv, Ctx);
      if (V.isBot())
        return; // Unreachable call.
      Args.push_back(V);
    }

    uint32_t CalleeCtx =
        contextFor(static_cast<uint32_t>(CalleeIdx), Args);

    // Side-effect the parameter binding to the callee's entry. Argument
    // values cross the call boundary as intervals in both domains (the
    // zones backend re-relates parameters inside the callee).
    EnvT ParamEnv;
    for (size_t I = 0; I < Args.size(); ++I) {
      // In context-sensitive mode the context constants refine the
      // parameter (relevant once contexts collapse onto all-top).
      Interval Bound = Args[I];
      if (A.Options.ContextSensitive) {
        const Flat<int64_t> &CtxVal = A.Contexts.values(CalleeCtx)[I];
        if (CtxVal.isConstant())
          Bound = Bound.meet(Interval::constant(CtxVal.constantValue()));
      }
      if (Bound.isBot())
        return; // Contradictory binding: unreachable.
      if (!Bound.isTop())
        ParamEnv.set(Callee.Params[I], Bound);
    }
    Contribute(
        AnalysisVar::point(static_cast<uint32_t>(CalleeIdx),
                           Cfg::EntryNode, CalleeCtx),
        DomainOps<EnvT>::wrap(std::move(ParamEnv)));

    // Read the callee's exit and bind the return value.
    AbsValue ExitVal = GetFn(AnalysisVar::point(
        static_cast<uint32_t>(CalleeIdx), Cfg::ExitNode, CalleeCtx));
    if (ExitVal.isBot())
      return; // Callee (in this context) never returns.
    Interval RetValue = DomainOps<EnvT>::unwrap(ExitVal).get(A.RetSym);

    EnvT Post = PreEnv;
    if (Act.Lhs) {
      if (P.isGlobal(Act.Lhs))
        Contribute(AnalysisVar::global(Act.Lhs), AbsValue::itv(RetValue));
      else if (RetValue.isBot())
        return; // Exit binds no return value: treat as non-returning.
      else
        Post.set(Act.Lhs, RetValue);
    }
    Acc = Acc.join(DomainOps<EnvT>::wrap(std::move(Post)));
  }

  /// `spawn f(args)`: bind the arguments into the spawned function's
  /// entry (side effect) and continue with the spawner's state unchanged.
  /// The spawned body's global writes must still be accounted for, and
  /// SLR+ is demand-driven — nothing else reads the spawned function's
  /// unknowns — so the exit is read (and discarded) purely to force
  /// exploration of the body.
  template <typename EnvT, typename ContributeFn>
  void applySpawn(const Action &Act, const EnvT &PreEnv,
                  const EvalContext &Ctx, const Get &GetFn,
                  ContributeFn &Contribute, AbsValue &Acc) {
    size_t CalleeIdx = P.functionIndex(Act.Callee);
    assert(CalleeIdx < P.Functions.size() && "sema checked spawn callee");
    const FuncDecl &Callee = *P.Functions[CalleeIdx];

    std::vector<Interval> Args;
    Args.reserve(Act.Args.size());
    for (const Expr *Arg : Act.Args) {
      Interval V = evalExpr(*Arg, PreEnv, Ctx);
      if (V.isBot())
        return; // Unreachable spawn.
      Args.push_back(V);
    }

    uint32_t CalleeCtx = contextFor(static_cast<uint32_t>(CalleeIdx), Args);

    EnvT ParamEnv;
    for (size_t I = 0; I < Args.size(); ++I) {
      Interval Bound = Args[I];
      if (A.Options.ContextSensitive) {
        const Flat<int64_t> &CtxVal = A.Contexts.values(CalleeCtx)[I];
        if (CtxVal.isConstant())
          Bound = Bound.meet(Interval::constant(CtxVal.constantValue()));
      }
      if (Bound.isBot())
        return;
      if (!Bound.isTop())
        ParamEnv.set(Callee.Params[I], Bound);
    }
    Contribute(AnalysisVar::point(static_cast<uint32_t>(CalleeIdx),
                                  Cfg::EntryNode, CalleeCtx),
               DomainOps<EnvT>::wrap(std::move(ParamEnv)));

    (void)GetFn(AnalysisVar::point(static_cast<uint32_t>(CalleeIdx),
                                   Cfg::ExitNode, CalleeCtx));

    Acc = Acc.join(DomainOps<EnvT>::wrap(PreEnv));
  }

  InterprocAnalysis &A;
  const Program &P;
  const ProgramCfg &Cfgs;
};

} // namespace warrow

InterprocAnalysis::InterprocAnalysis(const Program &P, const ProgramCfg &Cfgs,
                                     AnalysisOptions Options)
    : P(P), Cfgs(Cfgs), Options(Options) {
  Symbol MainSym = P.Symbols.lookup("main");
  MainIdx = static_cast<uint32_t>(P.functionIndex(MainSym));
  assert(MainIdx < P.Functions.size() && "program has main (sema)");
  RetSym = P.Symbols.lookup(ReturnValueName);
  assert(RetSym != 0 && "CFGs built before analysis (interns $ret)");
}

AnalysisVar InterprocAnalysis::root() const {
  return AnalysisVar::point(MainIdx, Cfg::ExitNode, InitialCtx);
}

AnalysisResult InterprocAnalysis::run(SolverChoice Choice) {
  // Reset per-run context state.
  Contexts.clear();
  CtxPerFunc.clear();
  InitialCtx = Contexts.intern({}); // Id 0: the empty tuple.

  InterprocRhs RhsBuilder(*this, P, Cfgs);
  SideEffectingSystem<AnalysisVar, AbsValue> System(
      [&RhsBuilder](const AnalysisVar &X)
          -> SideEffectingSystem<AnalysisVar, AbsValue>::Rhs {
        return [&RhsBuilder, X](const InterprocRhs::Get &GetFn,
                                const InterprocRhs::Side &SideFn) {
          return RhsBuilder.evalRhs(X, GetFn, SideFn);
        };
      });

  AnalysisResult Result;
  Timer Clock;
  switch (Choice) {
  case SolverChoice::Warrow:
    if (Options.ThresholdWidening) {
      auto Thresholds =
          std::make_shared<ThresholdSet>(collectProgramConstants(P));
      SlrPlusSolver<AnalysisVar, AbsValue, ThresholdWarrowCombine> Solver(
          System,
          ThresholdWarrowCombine(std::move(Thresholds),
                                 Options.WarrowMaxSwitches),
          Options.Solver, Options.LocalizedWidening);
      Result.Solution = Solver.solveFor(root());
    } else {
      SlrPlusSolver<AnalysisVar, AbsValue,
                    DegradingWarrowCombine<AnalysisVar>>
          Solver(System,
                 DegradingWarrowCombine<AnalysisVar>(
                     Options.WarrowMaxSwitches),
                 Options.Solver, Options.LocalizedWidening);
      Result.Solution = Solver.solveFor(root());
    }
    break;
  case SolverChoice::WidenOnly:
    Result.Solution =
        solveSLRPlus(System, root(), WidenCombine{}, Options.Solver);
    break;
  case SolverChoice::TwoPhase:
    Result.Solution = solveTwoPhaseSide(System, root(), Options.Solver,
                                        Options.TwoPhaseNarrowRounds);
    break;
  case SolverChoice::TwoPhaseLocalized:
    Result.Solution = engine::runTwoPhaseSide(
        System, root(), Options.Solver, Options.TwoPhaseNarrowRounds,
        /*LocalizedAscending=*/true);
    break;
  case SolverChoice::ParallelWarrow:
    if (Options.ThresholdWidening) {
      auto Thresholds =
          std::make_shared<ThresholdSet>(collectProgramConstants(P));
      engine::ParallelSlrEngine<AnalysisVar, AbsValue, ThresholdWarrowCombine>
          Solver(System,
                 ThresholdWarrowCombine(std::move(Thresholds),
                                        Options.WarrowMaxSwitches),
                 Options.Solver, Options.LocalizedWidening);
      Result.Solution = Solver.solveFor(root());
    } else {
      engine::ParallelSlrEngine<AnalysisVar, AbsValue,
                                DegradingWarrowCombine<AnalysisVar>>
          Solver(System,
                 DegradingWarrowCombine<AnalysisVar>(Options.WarrowMaxSwitches),
                 Options.Solver, Options.LocalizedWidening);
      Result.Solution = Solver.solveFor(root());
    }
    break;
  }
  Result.Seconds = Clock.seconds();
  Result.Stats = Result.Solution.Stats;
  Result.NumUnknowns = Result.Solution.Sigma.size();
  return Result;
}

VerifyResult InterprocAnalysis::verifySolution(const AnalysisResult &Result) {
  InterprocRhs RhsBuilder(*this, P, Cfgs);
  SideEffectingSystem<AnalysisVar, AbsValue> System(
      [&RhsBuilder](const AnalysisVar &X)
          -> SideEffectingSystem<AnalysisVar, AbsValue>::Rhs {
        return [&RhsBuilder, X](const InterprocRhs::Get &GetFn,
                                const InterprocRhs::Side &SideFn) {
          return RhsBuilder.evalRhs(X, GetFn, SideFn);
        };
      });
  return verifySideEffectingSolution(System, Result.Solution);
}
