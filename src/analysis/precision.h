//===- analysis/precision.h - Precision comparison --------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Comparison of two analysis results, producing the metric of the
/// paper's Figure 7: the percentage of program points at which one
/// solver's result is *strictly more precise* than another's.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_ANALYSIS_PRECISION_H
#define WARROW_ANALYSIS_PRECISION_H

#include "analysis/interproc.h"

#include <cstdint>
#include <string>

namespace warrow {

/// Pointwise comparison statistics (A = candidate, B = baseline).
struct PrecisionComparison {
  uint64_t ComparablePoints = 0; ///< Point unknowns present in both doms.
  uint64_t Improved = 0;         ///< A strictly below B.
  uint64_t Equal = 0;
  uint64_t Worse = 0;        ///< B strictly below A.
  uint64_t Incomparable = 0; ///< Neither ordered (shouldn't happen for
                             ///< monotone context-insensitive runs).
  uint64_t GlobalsImproved = 0;
  uint64_t GlobalsTotal = 0;

  /// Figure 7's metric: improved points / comparable points.
  double improvedPercent() const {
    return ComparablePoints == 0
               ? 0.0
               : 100.0 * static_cast<double>(Improved) /
                     static_cast<double>(ComparablePoints);
  }

  std::string str() const;
};

/// Compares \p Candidate against \p Baseline over the intersection of
/// their domains.
PrecisionComparison
comparePrecision(const PartialSolution<AnalysisVar, AbsValue> &Candidate,
                 const PartialSolution<AnalysisVar, AbsValue> &Baseline);

} // namespace warrow

#endif // WARROW_ANALYSIS_PRECISION_H
