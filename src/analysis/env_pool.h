//===- analysis/env_pool.h - Interning pool for environments ----*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hash-consing pool behind `AbsEnv`: environment contents (sorted
/// symbol→interval entry vectors) are interned into immutable ref-counted
/// nodes, one canonical node per distinct environment *per thread*. All
/// environments flowing through the solvers are frozen (AbsValue::env
/// freezes at the choke point), so the `Sigma[x] == New` stability checks
/// that dominate SLR/SLR+ runs degenerate to pointer compares.
///
/// The pool is thread-local: interning needs no locks, and the arena's
/// strong references die with the thread. Frozen nodes themselves are
/// atomically ref-counted and may outlive their pool — the parallel
/// solvers copy values across workers — at the price that a cross-thread
/// equality of equal-valued nodes falls back to a structural compare
/// (AbsEnv::operator== handles this; same-thread comparisons stay O(1)).
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_ANALYSIS_ENV_POOL_H
#define WARROW_ANALYSIS_ENV_POOL_H

#include "lattice/hashcons.h"
#include "lattice/interval.h"
#include "support/hash.h"
#include "support/interner.h"

#include <utility>
#include <vector>

namespace warrow {

/// One environment binding; vectors of these, sorted by symbol, are the
/// interned representation (values never top, never bottom).
using EnvEntry = std::pair<Symbol, Interval>;
using EnvData = std::vector<EnvEntry>;
using EnvRef = ConsRef<EnvData>;

/// Hash of environment contents (matches the pre-consing AbsEnv hash, so
/// stored hashes stay stable across the representation change).
struct EnvDataHash {
  size_t operator()(const EnvData &Entries) const {
    size_t Seed = Entries.size();
    for (const EnvEntry &E : Entries) {
      hashCombine(Seed, E.first);
      hashCombine(Seed, E.second.hashValue());
    }
    return Seed;
  }
};

/// Thread-local interning arena for environment contents.
class EnvPool {
public:
  /// The calling thread's pool.
  static EnvPool &local() {
    static thread_local EnvPool Pool;
    return Pool;
  }

  EnvRef intern(EnvRef Node) { return Arena.intern(std::move(Node)); }
  EnvRef intern(EnvData &&Entries) {
    return Arena.intern(std::move(Entries));
  }

  /// Distinct environments interned by this thread (diagnostics/tests).
  size_t distinctEnvs() const { return Arena.size(); }
  uint64_t internHits() const { return Arena.hits(); }
  uint64_t internMisses() const { return Arena.misses(); }

private:
  HashConsArena<EnvData, EnvDataHash> Arena;
};

} // namespace warrow

#endif // WARROW_ANALYSIS_ENV_POOL_H
