//===- analysis/snapshot.cpp - Analysis snapshots & program diffs --------===//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/snapshot.h"

#include "engine/state_io.h"

#include <algorithm>
#include <cassert>
#include <numeric>

using namespace warrow;

//===----------------------------------------------------------------------===//
// Fingerprints and shapes
//===----------------------------------------------------------------------===//

std::string warrow::functionFingerprint(const Program &P, const Cfg &G,
                                        const FuncDecl &F) {
  // Everything the constraint system's right-hand sides can observe about
  // the function: node count, return kind, parameter spellings, and each
  // edge's action rendered with names (ids shift across parses, spellings
  // do not). Local array sizes are absent from actions but also absent
  // from the abstract transfer functions (arrays are smashed), so the
  // fingerprint stays faithful.
  std::string Out = "nodes " + std::to_string(G.numNodes());
  Out += " ret " + std::to_string(int(F.ReturnsVoid));
  Out += " params";
  for (Symbol S : F.Params) {
    Out += ' ';
    Out += P.Symbols.spelling(S);
  }
  Out += '\n';
  for (const CfgEdge &E : G.edges()) {
    Out += std::to_string(E.From) + ">" + std::to_string(E.To) + " ";
    Out += E.Act.str(P.Symbols);
    Out += '\n';
  }
  return Out;
}

void warrow::snapshotShapes(const Program &P, const ProgramCfg &Cfgs,
                            AnalysisSnapshot &Out) {
  Out.Funcs.clear();
  Out.Globals.clear();
  Out.Funcs.reserve(P.Functions.size());
  for (size_t I = 0; I < P.Functions.size(); ++I)
    Out.Funcs.push_back({P.Symbols.spelling(P.Functions[I]->Name),
                         functionFingerprint(P, Cfgs.cfgOf(I),
                                             *P.Functions[I])});
  Out.Globals.reserve(P.Globals.size());
  for (const GlobalDecl &G : P.Globals)
    Out.Globals.push_back({P.Symbols.spelling(G.Name), G.Init, G.ArraySize});
}

ProgramDiff warrow::diffSnapshot(const AnalysisSnapshot &Snap,
                                 const Program &P, const ProgramCfg &Cfgs) {
  ProgramDiff D;
  std::unordered_map<std::string, std::string> NewFp;
  for (size_t I = 0; I < P.Functions.size(); ++I)
    NewFp.emplace(P.Symbols.spelling(P.Functions[I]->Name),
                  functionFingerprint(P, Cfgs.cfgOf(I), *P.Functions[I]));
  std::unordered_set<std::string> Known;
  for (const FuncShape &F : Snap.Funcs) {
    Known.insert(F.Name);
    auto It = NewFp.find(F.Name);
    if (It == NewFp.end() || It->second != F.Fingerprint)
      D.ChangedFuncs.insert(F.Name);
  }
  for (const auto &[Name, Fp] : NewFp)
    if (!Known.count(Name))
      D.AddedFuncs.push_back(Name);

  std::unordered_map<std::string, const GlobalDecl *> NewGlobals;
  for (const GlobalDecl &G : P.Globals)
    NewGlobals.emplace(P.Symbols.spelling(G.Name), &G);
  for (const GlobalShape &G : Snap.Globals) {
    auto It = NewGlobals.find(G.Name);
    if (It == NewGlobals.end() || It->second->Init != G.Init ||
        It->second->ArraySize != G.ArraySize)
      D.ChangedGlobals.insert(G.Name);
  }
  return D;
}

//===----------------------------------------------------------------------===//
// Value remapping (old program ids -> new program ids, by spelling)
//===----------------------------------------------------------------------===//

namespace {

/// Rebuilds a relational environment whose variables were renumbered:
/// \p Vars holds the *new* symbols in the matrix's current order (matrix
/// index i+1 = Vars[i]); entries are permuted into new-symbol sorted
/// order. nullopt when two variables collapsed onto one symbol.
std::optional<RelEnv> relFromPermuted(const std::vector<Symbol> &Vars,
                                      const Dbm &M, bool Closed) {
  const size_t K = Vars.size();
  assert(M.dim() == K + 1 && "matrix/variable mismatch");
  std::vector<size_t> Order(K);
  std::iota(Order.begin(), Order.end(), size_t(0));
  std::sort(Order.begin(), Order.end(),
            [&Vars](size_t A, size_t B) { return Vars[A] < Vars[B]; });
  std::vector<Symbol> Sorted;
  Sorted.reserve(K);
  for (size_t I : Order) {
    if (!Sorted.empty() && Sorted.back() == Vars[I])
      return std::nullopt;
    Sorted.push_back(Vars[I]);
  }
  Dbm Out(K);
  // New matrix index i+1 takes old index Order[i]+1; index 0 (the zero
  // variable) is fixed. The permutation preserves closedness.
  std::vector<size_t> Src(K + 1);
  Src[0] = 0;
  for (size_t I = 0; I < K; ++I)
    Src[I + 1] = Order[I] + 1;
  for (size_t I = 0; I <= K; ++I)
    for (size_t J = 0; J <= K; ++J)
      Out.set(I, J, M.at(Src[I], Src[J]));
  if (Closed)
    Out.markClosed();
  return RelEnv::fromRaw(std::move(Sorted), std::move(Out));
}

} // namespace

std::optional<AbsValue> warrow::remapAbsValue(const AbsValue &V,
                                              const Program &OldP,
                                              const Program &NewP) {
  if (&OldP == &NewP)
    return V;
  auto MapSym = [&](Symbol S) -> Symbol {
    return S ? NewP.Symbols.lookup(OldP.Symbols.spelling(S)) : 0;
  };
  switch (V.kind()) {
  case AbsValue::Kind::Bot:
  case AbsValue::Kind::Itv:
    return V; // No symbols inside.
  case AbsValue::Kind::Env: {
    AbsEnv E;
    for (const auto &[S, I] : V.envValue().entries()) {
      Symbol NS = MapSym(S);
      if (!NS)
        return std::nullopt;
      E.set(NS, I);
    }
    return AbsValue::env(std::move(E));
  }
  case AbsValue::Kind::Rel: {
    const RelEnv &R = V.relValue();
    std::vector<Symbol> NewVars;
    NewVars.reserve(R.vars().size());
    for (Symbol S : R.vars()) {
      Symbol NS = MapSym(S);
      if (!NS)
        return std::nullopt;
      NewVars.push_back(NS);
    }
    std::optional<RelEnv> Rel =
        relFromPermuted(NewVars, R.matrix(), R.matrix().closed());
    if (!Rel)
      return std::nullopt;
    return AbsValue::rel(std::move(*Rel));
  }
  }
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Canonical comparison form
//===----------------------------------------------------------------------===//

std::map<std::string, std::string>
warrow::canonicalSigma(const PartialSolution<AnalysisVar, AbsValue> &Sol,
                       const Program &P,
                       const std::vector<ContextValues> &Contexts) {
  std::map<std::string, std::string> Out;
  for (const auto &[X, Value] : Sol.Sigma) {
    if (Value.isBot())
      continue;
    std::string Key;
    if (X.isGlobal()) {
      Key = "global:" + P.Symbols.spelling(X.Glob);
    } else {
      Key = P.Symbols.spelling(P.Functions[X.Func]->Name);
      Key += ":" + std::to_string(X.Node) + "@(";
      if (X.Ctx < Contexts.size()) {
        for (const Flat<int64_t> &V : Contexts[X.Ctx]) {
          if (V.isTop())
            Key += "T,";
          else if (V.isBot())
            Key += "B,";
          else
            Key += "C" + std::to_string(V.constantValue()) + ",";
        }
      } else {
        Key += "#" + std::to_string(X.Ctx); // No table: fall back to the id.
      }
      Key += ")";
    }
    Out[Key] = Value.str(P.Symbols);
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

namespace {

std::optional<int64_t> parseI64(std::string_view Tok) {
  if (Tok.empty())
    return std::nullopt;
  bool Neg = Tok[0] == '-';
  size_t I = Neg ? 1 : 0;
  if (I >= Tok.size())
    return std::nullopt;
  uint64_t Mag = 0;
  const uint64_t Limit =
      Neg ? uint64_t(INT64_MAX) + 1 : uint64_t(INT64_MAX);
  for (; I < Tok.size(); ++I) {
    char C = Tok[I];
    if (C < '0' || C > '9')
      return std::nullopt;
    if (Mag > (Limit - uint64_t(C - '0')) / 10)
      return std::nullopt;
    Mag = Mag * 10 + uint64_t(C - '0');
  }
  return Neg ? -int64_t(Mag - 1) - 1 : int64_t(Mag);
}

/// Splits a codec payload on '\n' (identifier spellings cannot contain
/// newlines, so this is unambiguous).
std::vector<std::string_view> splitFields(const std::string &S) {
  std::vector<std::string_view> Out;
  size_t Start = 0;
  while (Start <= S.size()) {
    size_t End = S.find('\n', Start);
    if (End == std::string::npos) {
      Out.push_back(std::string_view(S).substr(Start));
      break;
    }
    Out.push_back(std::string_view(S).substr(Start, End - Start));
    Start = End + 1;
  }
  return Out;
}

/// AnalysisVar codec: "g\n<name>", "p\n<func>\n<node>\n<ctx>", or a
/// tombstone "t\n<node>\n<ctx>" for unknowns of functions the target
/// program no longer has (the diff drops them).
std::string encodeVar(const AnalysisVar &X, const Program &P) {
  if (X.isGlobal())
    return "g\n" + P.Symbols.spelling(X.Glob);
  if (X.Func == UINT32_MAX)
    return "t\n" + std::to_string(X.Node) + "\n" + std::to_string(X.Ctx);
  return "p\n" + P.Symbols.spelling(P.Functions[X.Func]->Name) + "\n" +
         std::to_string(X.Node) + "\n" + std::to_string(X.Ctx);
}

std::optional<AnalysisVar> decodeVar(const std::string &Bytes, Program &P) {
  std::vector<std::string_view> F = splitFields(Bytes);
  if (F.empty())
    return std::nullopt;
  if (F[0] == "g") {
    if (F.size() != 2 || F[1].empty())
      return std::nullopt;
    return AnalysisVar::global(P.Symbols.intern(F[1]));
  }
  if (F[0] == "t") {
    if (F.size() != 3)
      return std::nullopt;
    auto Node = parseI64(F[1]), Ctx = parseI64(F[2]);
    if (!Node || !Ctx || *Node < 0 || *Ctx < 0 || *Node > UINT32_MAX ||
        *Ctx > UINT32_MAX)
      return std::nullopt;
    return AnalysisVar::point(UINT32_MAX, uint32_t(*Node), uint32_t(*Ctx));
  }
  if (F[0] != "p" || F.size() != 4 || F[1].empty())
    return std::nullopt;
  auto Node = parseI64(F[2]), Ctx = parseI64(F[3]);
  if (!Node || !Ctx || *Node < 0 || *Ctx < 0 || *Node > UINT32_MAX ||
      *Ctx > UINT32_MAX)
    return std::nullopt;
  Symbol FS = P.Symbols.lookup(F[1]);
  size_t Idx = FS ? P.functionIndex(FS) : P.Functions.size();
  if (Idx >= P.Functions.size()) // Function gone: tombstone.
    return AnalysisVar::point(UINT32_MAX, uint32_t(*Node), uint32_t(*Ctx));
  return AnalysisVar::point(uint32_t(Idx), uint32_t(*Node), uint32_t(*Ctx));
}

/// AbsValue codec: "b", "i\n<lo>\n<hi>" (raw bounds), "e\n<k>" followed
/// by k (name, lo, hi) triples, or "r\n<k>\n<closed>" followed by k
/// names and the full (k+1)² raw matrix.
std::string encodeValue(const AbsValue &V, const Program &P) {
  switch (V.kind()) {
  case AbsValue::Kind::Bot:
    return "b";
  case AbsValue::Kind::Itv: {
    Interval I = V.itvValue();
    return "i\n" + std::to_string(I.lo().raw()) + "\n" +
           std::to_string(I.hi().raw());
  }
  case AbsValue::Kind::Env: {
    const EnvData &E = V.envValue().entries();
    std::string Out = "e\n" + std::to_string(E.size());
    for (const auto &[S, I] : E)
      Out += "\n" + P.Symbols.spelling(S) + "\n" +
             std::to_string(I.lo().raw()) + "\n" +
             std::to_string(I.hi().raw());
    return Out;
  }
  case AbsValue::Kind::Rel: {
    const RelEnv &R = V.relValue();
    const Dbm &M = R.matrix();
    std::string Out = "r\n" + std::to_string(R.vars().size()) + "\n" +
                      std::to_string(int(M.closed()));
    for (Symbol S : R.vars())
      Out += "\n" + P.Symbols.spelling(S);
    for (size_t I = 0; I < M.dim(); ++I)
      for (size_t J = 0; J < M.dim(); ++J)
        Out += "\n" + std::to_string(M.at(I, J).raw());
    return Out;
  }
  }
  return "b";
}

std::optional<AbsValue> decodeValue(const std::string &Bytes, Program &P) {
  std::vector<std::string_view> F = splitFields(Bytes);
  if (F.empty())
    return std::nullopt;
  if (F[0] == "b")
    return F.size() == 1 ? std::optional<AbsValue>(AbsValue::bot())
                         : std::nullopt;
  if (F[0] == "i") {
    if (F.size() != 3)
      return std::nullopt;
    auto Lo = parseI64(F[1]), Hi = parseI64(F[2]);
    if (!Lo || !Hi || *Lo > *Hi)
      return std::nullopt;
    return AbsValue::itv(Interval::make(Bound(*Lo), Bound(*Hi)));
  }
  if (F[0] == "e") {
    if (F.size() < 2)
      return std::nullopt;
    auto K = parseI64(F[1]);
    if (!K || *K < 0 || F.size() != 2 + size_t(*K) * 3)
      return std::nullopt;
    AbsEnv E;
    for (int64_t I = 0; I < *K; ++I) {
      std::string_view Name = F[2 + size_t(I) * 3];
      auto Lo = parseI64(F[3 + size_t(I) * 3]);
      auto Hi = parseI64(F[4 + size_t(I) * 3]);
      // Entries are never top or empty in a well-formed environment.
      if (Name.empty() || !Lo || !Hi || *Lo > *Hi ||
          (Bound(*Lo).isNegInf() && Bound(*Hi).isPosInf()))
        return std::nullopt;
      E.set(P.Symbols.intern(Name), Interval::make(Bound(*Lo), Bound(*Hi)));
    }
    return AbsValue::env(std::move(E));
  }
  if (F[0] != "r" || F.size() < 3)
    return std::nullopt;
  auto K = parseI64(F[1]);
  auto ClosedFlag = parseI64(F[2]);
  if (!K || *K < 0 || !ClosedFlag || (*ClosedFlag != 0 && *ClosedFlag != 1))
    return std::nullopt;
  const size_t NV = size_t(*K), Dim = NV + 1;
  if (F.size() != 3 + NV + Dim * Dim)
    return std::nullopt;
  std::vector<Symbol> Vars;
  Vars.reserve(NV);
  for (size_t I = 0; I < NV; ++I) {
    if (F[3 + I].empty())
      return std::nullopt;
    Vars.push_back(P.Symbols.intern(F[3 + I]));
  }
  Dbm M(NV);
  for (size_t I = 0; I < Dim; ++I)
    for (size_t J = 0; J < Dim; ++J) {
      auto B = parseI64(F[3 + NV + I * Dim + J]);
      if (!B)
        return std::nullopt;
      M.set(I, J, Bound(*B));
    }
  if (*ClosedFlag)
    M.markClosed();
  std::optional<RelEnv> Rel = relFromPermuted(Vars, M, *ClosedFlag != 0);
  if (!Rel)
    return std::nullopt;
  return AbsValue::rel(std::move(*Rel));
}

} // namespace

std::string warrow::serializeAnalysisSnapshot(const AnalysisSnapshot &Snap,
                                              const Program &P) {
  using engine::state_io_detail::putNetstring;
  std::string Out = "warrow-analysis-snapshot v1\n";
  Out += "domain ";
  putNetstring(Out, std::string(domainName(Snap.Domain)));
  Out += "\nctxsens " + std::to_string(int(Snap.ContextSensitive)) + "\n";
  Out += "contexts " + std::to_string(Snap.Contexts.size()) + "\n";
  for (const ContextValues &C : Snap.Contexts) {
    Out += "k " + std::to_string(C.size());
    for (const Flat<int64_t> &V : C) {
      if (V.isTop())
        Out += " T";
      else if (V.isBot())
        Out += " B";
      else {
        Out += " C ";
        putNetstring(Out, std::to_string(V.constantValue()));
      }
    }
    Out += '\n';
  }
  Out += "funcs " + std::to_string(Snap.Funcs.size()) + "\n";
  for (const FuncShape &F : Snap.Funcs) {
    Out += "fn ";
    putNetstring(Out, F.Name);
    Out += ' ';
    putNetstring(Out, F.Fingerprint);
    Out += '\n';
  }
  Out += "globals " + std::to_string(Snap.Globals.size()) + "\n";
  for (const GlobalShape &G : Snap.Globals) {
    Out += "gl ";
    putNetstring(Out, G.Name);
    Out += ' ';
    putNetstring(Out, std::to_string(G.Init));
    Out += ' ';
    putNetstring(Out, std::to_string(G.ArraySize));
    Out += '\n';
  }
  Out += "state ";
  putNetstring(
      Out, engine::serializeSolverState(
               Snap.State,
               [&P](const AnalysisVar &X) { return encodeVar(X, P); },
               [&P](const AbsValue &V) { return encodeValue(V, P); }));
  Out += "\nend\n";
  return Out;
}

std::optional<AnalysisSnapshot>
warrow::parseAnalysisSnapshot(std::string_view Text, Program &P) {
  engine::state_io_detail::Cursor In(Text);
  AnalysisSnapshot Snap;
  In.keyword("warrow-analysis-snapshot");
  In.keyword("v1");
  In.keyword("domain");
  std::optional<AnalysisDomain> Domain = domainForName(In.netstring());
  if (!In.ok() || !Domain)
    return std::nullopt;
  Snap.Domain = *Domain;
  In.keyword("ctxsens");
  Snap.ContextSensitive = In.flag();
  In.keyword("contexts");
  uint64_t NumCtx = In.u64();
  if (!In.ok() || NumCtx > Text.size())
    return std::nullopt;
  Snap.Contexts.reserve(NumCtx);
  for (uint64_t I = 0; I < NumCtx; ++I) {
    In.keyword("k");
    uint64_t K = In.u64();
    if (!In.ok() || K > Text.size())
      return std::nullopt;
    ContextValues C;
    C.reserve(K);
    for (uint64_t J = 0; J < K; ++J) {
      std::string_view W = In.word();
      if (W == "T")
        C.push_back(Flat<int64_t>::top());
      else if (W == "B")
        C.push_back(Flat<int64_t>::bot());
      else if (W == "C") {
        auto Value = parseI64(In.netstring());
        if (!In.ok() || !Value)
          return std::nullopt;
        C.push_back(Flat<int64_t>::constant(*Value));
      } else
        return std::nullopt;
    }
    if (!In.ok())
      return std::nullopt;
    Snap.Contexts.push_back(std::move(C));
  }
  In.keyword("funcs");
  uint64_t NumFuncs = In.u64();
  if (!In.ok() || NumFuncs > Text.size())
    return std::nullopt;
  for (uint64_t I = 0; I < NumFuncs; ++I) {
    In.keyword("fn");
    std::string Name = In.netstring();
    std::string Fp = In.netstring();
    if (!In.ok() || Name.empty())
      return std::nullopt;
    Snap.Funcs.push_back({std::move(Name), std::move(Fp)});
  }
  In.keyword("globals");
  uint64_t NumGlobals = In.u64();
  if (!In.ok() || NumGlobals > Text.size())
    return std::nullopt;
  for (uint64_t I = 0; I < NumGlobals; ++I) {
    In.keyword("gl");
    std::string Name = In.netstring();
    auto Init = parseI64(In.netstring());
    auto ArraySize = parseI64(In.netstring());
    if (!In.ok() || Name.empty() || !Init || !ArraySize)
      return std::nullopt;
    Snap.Globals.push_back({std::move(Name), *Init, *ArraySize});
  }
  In.keyword("state");
  std::string StateText = In.netstring();
  In.keyword("end");
  if (!In.ok() || !In.atEnd())
    return std::nullopt;
  std::optional<engine::SolverState<AnalysisVar, AbsValue>> State =
      engine::parseSolverState<AnalysisVar, AbsValue>(
          StateText,
          [&P](const std::string &Bytes) { return decodeVar(Bytes, P); },
          [&P](const std::string &Bytes) { return decodeValue(Bytes, P); });
  if (!State)
    return std::nullopt;
  // Context ids must refer to the table above (capture only records
  // interned ids; anything else is malformed input).
  auto CtxOk = [&](const AnalysisVar &X) {
    return !X.isPoint() || X.Ctx < Snap.Contexts.size();
  };
  for (const AnalysisVar &X : State->Vars)
    if (!CtxOk(X))
      return std::nullopt;
  for (const auto &Cell : State->Cells)
    if (!CtxOk(Cell.Target) || !CtxOk(Cell.Contributor))
      return std::nullopt;
  Snap.State = std::move(*State);
  return Snap;
}
