//===- analysis/constants.h - Program constant collection -------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Collects the integer constants syntactically occurring in a program
/// (literals, global initializers, array sizes) into a widening
/// threshold set, plus the ⊟ variant that uses it. Threshold widening is
/// one of the *operator-level* precision refinements the paper cites as
/// complementary to its solver-level contribution; the ablation bench
/// measures how the two compose.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_ANALYSIS_CONSTANTS_H
#define WARROW_ANALYSIS_CONSTANTS_H

#include "analysis/absvalue.h"
#include "lang/ast.h"
#include "lattice/thresholds.h"

#include <functional>
#include <memory>
#include <unordered_map>

namespace warrow {

/// All integer literals of \p P (and each c-1/c+1 neighbour, so strict
/// and non-strict guard bounds both snap), global initializers, and
/// array sizes, as a sorted threshold set.
ThresholdSet collectProgramConstants(const Program &P);

/// ⊟ with threshold widening over AbsValue: like `WarrowCombine`, but
/// growing values pass through the thresholds before jumping to infinity.
///
/// The operator *degrades* (paper, end of Section 4): each unknown
/// carries a counter of narrowing->widening phase switches, and past
/// `MaxSwitches` the unknown stops narrowing. This matters specifically
/// for the threshold variant: side-effecting systems are effectively
/// non-monotonic (a recorded contribution is a stale sample of a monotone
/// function), and a self-feeding global can ping-pong forever between a
/// freshly narrowed finite bound and infinity — each round the thresholds
/// hand the narrowing a slightly larger finite target. Bounding the
/// switches restores termination at a bounded precision cost.
class ThresholdWarrowCombine {
public:
  explicit ThresholdWarrowCombine(std::shared_ptr<ThresholdSet> Thresholds,
                                  unsigned MaxSwitches = 6)
      : Thresholds(std::move(Thresholds)), MaxSwitches(MaxSwitches) {}

  template <typename V>
  AbsValue operator()(const V &X, const AbsValue &Old, const AbsValue &New) {
    // a ⊟ a = a with no state change (the seed path for equal values
    // neither armed Narrowing nor counted a switch); with hash-consed
    // environments this == is a pointer compare.
    if (New == Old)
      return Old;
    State &S = States[keyOf(X)];
    if (New.leq(Old)) {
      if (S.Switches >= MaxSwitches)
        return Old; // Narrowing budget exhausted: freeze.
      AbsValue Result = Old.narrow(New);
      if (!(Result == Old)) // Equal-value confirmations are not a phase.
        S.Narrowing = true;
      return Result;
    }
    if (S.Narrowing) {
      S.Narrowing = false;
      ++S.Switches;
    }
    return Old.widenWithThresholds(New, Thresholds->values());
  }

  static constexpr bool isIdempotent() { return false; }

private:
  struct State {
    bool Narrowing = false;
    unsigned Switches = 0;
  };
  template <typename V> static size_t keyOf(const V &X) {
    return std::hash<V>{}(X);
  }

  std::shared_ptr<ThresholdSet> Thresholds;
  unsigned MaxSwitches;
  std::unordered_map<size_t, State> States;
};

} // namespace warrow

#endif // WARROW_ANALYSIS_CONSTANTS_H
