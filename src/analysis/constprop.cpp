//===- analysis/constprop.cpp - Constant propagation ---------------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/constprop.h"

#include "lang/sema.h"
#include "support/casting.h"
#include "support/saturating.h"

#include <algorithm>
#include <cassert>

using namespace warrow;

CpValue CpEnv::get(Symbol Name) const {
  if (!Reachable)
    return CpValue::bot();
  auto It = std::lower_bound(
      Entries.begin(), Entries.end(), Name,
      [](const Entry &E, Symbol S) { return E.first < S; });
  if (It != Entries.end() && It->first == Name)
    return It->second;
  return CpValue::top();
}

void CpEnv::set(Symbol Name, const CpValue &Value) {
  if (!Reachable)
    return;
  auto It = std::lower_bound(
      Entries.begin(), Entries.end(), Name,
      [](const Entry &E, Symbol S) { return E.first < S; });
  bool Present = It != Entries.end() && It->first == Name;
  if (!Value.isConstant()) { // top (or bot, treated as unknown) erases.
    if (Present)
      Entries.erase(It);
    return;
  }
  if (Present)
    It->second = Value;
  else
    Entries.insert(It, {Name, Value});
}

bool CpEnv::leq(const CpEnv &O) const {
  if (!Reachable)
    return true;
  if (!O.Reachable)
    return false;
  for (const Entry &E : O.Entries)
    if (!get(E.first).leq(E.second))
      return false;
  return true;
}

CpEnv CpEnv::join(const CpEnv &O) const {
  if (!Reachable)
    return O;
  if (!O.Reachable)
    return *this;
  CpEnv R;
  for (const Entry &E : Entries) {
    CpValue Joined = E.second.join(O.get(E.first));
    if (Joined.isConstant())
      R.Entries.push_back({E.first, Joined});
  }
  return R;
}

bool CpEnv::operator==(const CpEnv &O) const {
  return Reachable == O.Reachable && Entries == O.Entries;
}

std::string CpEnv::str(const Interner &Symbols) const {
  if (!Reachable)
    return "unreachable";
  std::string Out = "{";
  for (size_t I = 0; I < Entries.size(); ++I) {
    if (I)
      Out += ", ";
    Out += Symbols.spelling(Entries[I].first) + "=" +
           std::to_string(Entries[I].second.constantValue());
  }
  return Out + "}";
}

CpValue warrow::evalConstExpr(const Expr &E, const CpEnv &Env,
                              const Program &P) {
  switch (E.kind()) {
  case Expr::Kind::IntLit:
    return CpValue::constant(cast<IntLit>(&E)->value());
  case Expr::Kind::VarRef: {
    Symbol Name = cast<VarRef>(&E)->name();
    if (P.isGlobal(Name))
      return CpValue::top(); // Globals are outside this fragment.
    return Env.get(Name);
  }
  case Expr::Kind::ArrayRef:
    return CpValue::top(); // Arrays are not tracked.
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(&E);
    CpValue V = evalConstExpr(U->operand(), Env, P);
    if (V.isBot())
      return V;
    if (!V.isConstant())
      return CpValue::top();
    int64_t C = V.constantValue();
    return CpValue::constant(U->op() == UnaryOp::Neg ? satNeg64(C)
                                                     : (C == 0 ? 1 : 0));
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(&E);
    CpValue L = evalConstExpr(B->lhs(), Env, P);
    CpValue R = evalConstExpr(B->rhs(), Env, P);
    if (L.isBot() || R.isBot())
      return CpValue::bot();
    // Short-circuit algebra that works with one constant side.
    if (B->op() == BinaryOp::Mul) {
      if ((L.isConstant() && L.constantValue() == 0) ||
          (R.isConstant() && R.constantValue() == 0))
        return CpValue::constant(0);
    }
    if (!L.isConstant() || !R.isConstant())
      return CpValue::top();
    int64_t A = L.constantValue(), C = R.constantValue();
    switch (B->op()) {
    case BinaryOp::Add:
      return CpValue::constant(satAdd64(A, C));
    case BinaryOp::Sub:
      return CpValue::constant(satSub64(A, C));
    case BinaryOp::Mul:
      return CpValue::constant(satMul64(A, C));
    case BinaryOp::Div:
      if (C == 0)
        return CpValue::bot(); // Division by zero: no value.
      return CpValue::constant(
          A == INT64_MIN && C == -1 ? INT64_MAX : A / C);
    case BinaryOp::Rem:
      if (C == 0)
        return CpValue::bot();
      return CpValue::constant(A == INT64_MIN && C == -1 ? 0 : A % C);
    case BinaryOp::Lt:
      return CpValue::constant(A < C);
    case BinaryOp::Le:
      return CpValue::constant(A <= C);
    case BinaryOp::Gt:
      return CpValue::constant(A > C);
    case BinaryOp::Ge:
      return CpValue::constant(A >= C);
    case BinaryOp::Eq:
      return CpValue::constant(A == C);
    case BinaryOp::Ne:
      return CpValue::constant(A != C);
    case BinaryOp::LAnd:
      return CpValue::constant(A != 0 && C != 0);
    case BinaryOp::LOr:
      return CpValue::constant(A != 0 || C != 0);
    }
    return CpValue::top();
  }
  case Expr::Kind::Call:
    return CpValue::top(); // unknown() — or a call, excluded by contract.
  }
  return CpValue::top();
}

namespace {

/// Post environment of executing \p Act on \p Pre; bottom when infeasible.
CpEnv applyConstAction(const Action &Act, const CpEnv &Pre,
                       const Program &P) {
  if (Pre.isBot())
    return Pre;
  switch (Act.K) {
  case Action::Kind::Skip:
    return Pre;
  case Action::Kind::DeclScalar: {
    CpEnv Post = Pre;
    Post.set(Act.Lhs, CpValue::constant(0));
    return Post;
  }
  case Action::Kind::DeclArray:
    return Pre; // Arrays untracked.
  case Action::Kind::Assign: {
    CpValue V = evalConstExpr(*Act.Value, Pre, P);
    if (V.isBot())
      return CpEnv::bot();
    CpEnv Post = Pre;
    if (!P.isGlobal(Act.Lhs))
      Post.set(Act.Lhs, V);
    return Post;
  }
  case Action::Kind::Store:
    return Pre;
  case Action::Kind::Guard:
  case Action::Kind::Assert: {
    CpValue Cond = evalConstExpr(*Act.Value, Pre, P);
    if (Cond.isBot())
      return CpEnv::bot();
    if (Cond.isConstant()) {
      bool Truth = Cond.constantValue() != 0;
      if (Truth != Act.Positive)
        return CpEnv::bot(); // Edge infeasible under constant folding.
    }
    return Pre;
  }
  case Action::Kind::Input: {
    CpEnv Post = Pre;
    if (!P.isGlobal(Act.Lhs))
      Post.set(Act.Lhs, CpValue::top());
    return Post;
  }
  case Action::Kind::Lock:
  case Action::Kind::Unlock:
    return Pre; // Mutex operations do not touch integer state.
  case Action::Kind::Call:
  case Action::Kind::Spawn:
    assert(false && "constant propagation fragment is call-free");
    return Pre;
  }
  return Pre;
}

} // namespace

ConstPropSystem warrow::buildConstPropSystem(const Program &P,
                                             const ProgramCfg &Cfgs,
                                             size_t FuncIndex) {
  const Cfg &G = Cfgs.cfgOf(FuncIndex);
  std::vector<uint32_t> Order = G.reversePostOrder();

  ConstPropSystem CS;
  CS.VarOfNode.assign(G.numNodes(), 0);
  for (uint32_t Node : Order)
    CS.VarOfNode[Node] = CS.System.addVar("n" + std::to_string(Node));

  for (uint32_t Node : Order) {
    Var X = CS.VarOfNode[Node];
    std::vector<Var> Deps;
    std::vector<std::pair<uint32_t, Var>> InEdgeVars;
    for (uint32_t EdgeId : G.inEdges(Node)) {
      Deps.push_back(CS.VarOfNode[G.edge(EdgeId).From]);
      InEdgeVars.push_back({EdgeId, CS.VarOfNode[G.edge(EdgeId).From]});
    }
    CS.System.define(
        X,
        [&P, &G, Node, InEdgeVars](const DenseSystem<CpEnv>::GetFn &Get)
            -> CpEnv {
          if (Node == G.entry())
            return CpEnv::reachableTop();
          CpEnv Acc = CpEnv::bot();
          for (const auto &[EdgeId, PreVar] : InEdgeVars) {
            const CfgEdge &E = G.edge(EdgeId);
            assert(E.Act.K != Action::Kind::Call &&
                   "constant propagation fragment is call-free");
            Acc = Acc.join(applyConstAction(E.Act, Get(PreVar), P));
          }
          return Acc;
        },
        std::move(Deps));
  }
  return CS;
}
