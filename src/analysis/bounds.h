//===- analysis/bounds.h - Bounds / assert checker --------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Array-bounds and `assert` reachability checker over interprocedural
/// analysis results — the precision yardstick for the domain comparison:
/// the same program analyzed with `--domain=interval` vs `--domain=zones`
/// and with ⊟ vs the two-phase baseline produces different alarm counts,
/// and those counts are what the Fig.-7-style experiments gate on.
///
/// Two alarm kinds:
///
///   - array accesses whose index may leave `[0, size)`,
///   - `assert(c)` points where c may evaluate to zero.
///
/// Unlike the general checker (analysis/checks.h), this one is *domain
/// aware*: under the zones domain it evaluates index and condition
/// expressions with the relational `evalExpr` overload, so an invariant
/// like `j - i == 3` proves `a[j - i]` in bounds even when both endpoint
/// intervals are unbounded. Alarms are may-warnings; `Definite` marks
/// errors that occur on every execution reaching the point.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_ANALYSIS_BOUNDS_H
#define WARROW_ANALYSIS_BOUNDS_H

#include "analysis/interproc.h"
#include "lang/cfg.h"

#include <cstdint>
#include <string>
#include <vector>

namespace warrow {

/// One bounds-checker finding.
struct BoundsFinding {
  enum class Kind { ArrayOutOfBounds, AssertMayFail };
  Kind K = Kind::ArrayOutOfBounds;
  uint32_t Func = 0;
  uint32_t Line = 0;
  /// True when the error occurs on every execution reaching the point.
  bool Definite = false;
  std::string Message;

  std::string str(const Program &P) const;
};

/// Alarm report; `alarms()` is the exact count the bench JSON gates on.
struct BoundsReport {
  std::vector<BoundsFinding> Findings;
  uint64_t ArrayAlarms = 0;
  uint64_t AssertAlarms = 0;

  uint64_t alarms() const { return ArrayAlarms + AssertAlarms; }
};

/// Runs the bounds/assert checker against \p Result (point environments
/// joined over contexts; the value kind selects the evaluation domain).
BoundsReport runBoundsChecker(const Program &P, const ProgramCfg &Cfgs,
                              const AnalysisResult &Result);

} // namespace warrow

#endif // WARROW_ANALYSIS_BOUNDS_H
