//===- analysis/transfer.h - Interval transfer functions --------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract transfer functions of the interval analysis: expression
/// evaluation, condition refinement (guards), and the effect of non-call
/// CFG actions on abstract environments. Global variables are read
/// through a callback (their values live in the flow-insensitive
/// unknowns of the constraint system) and written by returning pending
/// contributions — the caller routes them into `side`.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_ANALYSIS_TRANSFER_H
#define WARROW_ANALYSIS_TRANSFER_H

#include "analysis/env.h"
#include "lang/cfg.h"

#include <functional>
#include <optional>
#include <utility>
#include <vector>

namespace warrow {

/// Reads the current abstract value of a global (scalar or smashed array).
using GlobalReader = std::function<Interval(Symbol)>;

/// Static context needed by the transfer functions.
struct EvalContext {
  const Program *Prog = nullptr;
  GlobalReader ReadGlobal;
  /// Symbol of the `unknown()` builtin (0 if the program never uses it).
  Symbol UnknownSym = 0;

  /// Builds a context for \p P with the unknown-builtin symbol resolved.
  static EvalContext forProgram(const Program &P, GlobalReader Reader);

  bool isGlobal(Symbol Name) const { return Prog->isGlobal(Name); }
};

/// Abstract value of \p E under \p Env (calls are not allowed here —
/// call edges are handled by the interprocedural driver). May return the
/// empty interval when a read yields bottom (e.g. a global still at its
/// initial bottom during iteration).
Interval evalExpr(const Expr &E, const AbsEnv &Env, const EvalContext &Ctx);

// --- Shared interval condition/comparison machinery -----------------------
// Exposed so other value domains (the zones transfer in rel_env.cpp) reuse
// the exact interval semantics for truth tests and comparison refinement
// instead of re-deriving them.

/// Abstract truth value of an interval: can it be zero / nonzero?
struct AbsTruth {
  bool CanBeFalse;
  bool CanBeTrue;
};
AbsTruth truthOf(const Interval &I);
/// The {0,1}-interval encoding of an abstract truth value.
Interval truthInterval(AbsTruth T);
/// Result interval of `L op R` for a comparison operator.
Interval compareIntervals(BinaryOp Op, const Interval &L, const Interval &R);
/// The comparison holding when `a op b` is *false*.
BinaryOp negateComparison(BinaryOp Op);
/// The mirrored operator: `a op b` iff `b mirror(op) a`.
BinaryOp mirrorComparison(BinaryOp Op);
/// Value of `a` refined by `a op b`.
Interval restrictByComparison(BinaryOp Op, const Interval &A,
                              const Interval &B);

/// Refines \p Env under the assumption truth(Cond) == Positive. Returns
/// false when the condition is infeasible (environment unreachable).
bool refineByCond(AbsEnv &Env, const Expr &Cond, bool Positive,
                  const EvalContext &Ctx);

/// Result of a non-call action: the post environment (nullopt when the
/// edge is infeasible) plus pending global contributions.
struct BasicEffect {
  std::optional<AbsEnv> Post;
  std::vector<std::pair<Symbol, Interval>> GlobalWrites;
};

/// Applies a Skip/Decl*/Assign/Store/Guard/Input action. `Call` actions
/// are the interprocedural driver's job (asserted here).
BasicEffect applyBasicAction(const Action &Act, const AbsEnv &Pre,
                             const EvalContext &Ctx);

} // namespace warrow

#endif // WARROW_ANALYSIS_TRANSFER_H
