//===- analysis/absvalue.h - Solver value domain ----------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single value domain handed to the generic solvers by the
/// interprocedural analysis. Unknowns are heterogeneous — program points
/// carry abstract *environments*, flow-insensitive globals carry
/// *intervals* — so `AbsValue` is a tagged sum with a polymorphic bottom:
///
///     Bot  <  Env(e)         (program point: Bot = "unreachable")
///     Bot  <  Rel(r)         (program point under --domain=zones)
///     Bot  <  Itv(i)         (global: Bot = empty interval)
///
/// Values of different non-bottom kinds never meet in a well-formed
/// system (asserted). `Itv` of the empty interval normalizes to `Bot`.
/// Under the zones domain program points carry `Rel` values while globals
/// stay `Itv` (flow-insensitive globals are interval-valued in both
/// domains).
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_ANALYSIS_ABSVALUE_H
#define WARROW_ANALYSIS_ABSVALUE_H

#include "analysis/env.h"
#include "analysis/rel_env.h"
#include "lattice/interval.h"

#include <cassert>
#include <string>

namespace warrow {

/// Sum domain: bottom, reachable environment (interval or relational), or
/// interval.
class AbsValue {
public:
  enum class Kind : uint8_t { Bot, Env, Rel, Itv };

  /// Default: bottom.
  AbsValue() : K(Kind::Bot) {}

  static AbsValue bot() { return AbsValue(); }
  static AbsValue env(AbsEnv E) {
    // Choke point: every environment entering the solver-facing value
    // domain is interned, so stability checks downstream are pointer
    // compares and copies are ref-count bumps (see analysis/env_pool.h).
    E.freeze();
    AbsValue V;
    V.K = Kind::Env;
    V.EnvValue = std::move(E);
    return V;
  }
  static AbsValue rel(RelEnv R) {
    // Same choke point as env(): interned on entry to the value domain.
    R.freeze();
    AbsValue V;
    V.K = Kind::Rel;
    V.RelValue = std::move(R);
    return V;
  }
  static AbsValue itv(const Interval &I) {
    if (I.isBot())
      return bot();
    AbsValue V;
    V.K = Kind::Itv;
    V.ItvValue = I;
    return V;
  }

  Kind kind() const { return K; }
  bool isBot() const { return K == Kind::Bot; }
  bool isEnv() const { return K == Kind::Env; }
  bool isRel() const { return K == Kind::Rel; }
  bool isItv() const { return K == Kind::Itv; }

  const AbsEnv &envValue() const {
    assert(isEnv() && "not an environment value");
    return EnvValue;
  }
  const RelEnv &relValue() const {
    assert(isRel() && "not a relational value");
    return RelValue;
  }
  /// Interval payload; bottom maps to the empty interval.
  Interval itvValue() const {
    assert(!isEnv() && !isRel() && "not an interval value");
    return isBot() ? Interval::bot() : ItvValue;
  }
  /// Environment payload with bottom mapped "nowhere" — callers check
  /// isBot() first; provided for symmetry in generic code.
  const AbsEnv &envValueOrTop() const {
    static const AbsEnv Top;
    return isEnv() ? EnvValue : Top;
  }
  /// Relational counterpart of envValueOrTop().
  const RelEnv &relValueOrTop() const {
    static const RelEnv Top;
    return isRel() ? RelValue : Top;
  }

  bool leq(const AbsValue &Other) const;
  AbsValue join(const AbsValue &Other) const;
  AbsValue widen(const AbsValue &Other) const;
  AbsValue narrow(const AbsValue &Other) const;
  /// Widening with a sorted threshold set (see Interval/AbsEnv).
  AbsValue widenWithThresholds(const AbsValue &Other,
                               const std::vector<int64_t> &Thresholds) const;
  bool operator==(const AbsValue &Other) const;

  std::string str(const Interner &Symbols) const;
  /// str() without variable names (symbol numbers).
  std::string str() const;

  size_t hashValue() const;

private:
  Kind K;
  AbsEnv EnvValue;
  RelEnv RelValue;
  Interval ItvValue;
};

} // namespace warrow

#endif // WARROW_ANALYSIS_ABSVALUE_H
