//===- analysis/absvalue.h - Solver value domain ----------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single value domain handed to the generic solvers by the
/// interprocedural analysis. Unknowns are heterogeneous — program points
/// carry abstract *environments*, flow-insensitive globals carry
/// *intervals* — so `AbsValue` is a tagged sum with a polymorphic bottom:
///
///     Bot  <  Env(e)         (program point: Bot = "unreachable")
///     Bot  <  Itv(i)         (global: Bot = empty interval)
///
/// Values of different non-bottom kinds never meet in a well-formed
/// system (asserted). `Itv` of the empty interval normalizes to `Bot`.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_ANALYSIS_ABSVALUE_H
#define WARROW_ANALYSIS_ABSVALUE_H

#include "analysis/env.h"
#include "lattice/interval.h"

#include <cassert>
#include <string>

namespace warrow {

/// Sum domain: bottom, reachable environment, or interval.
class AbsValue {
public:
  enum class Kind : uint8_t { Bot, Env, Itv };

  /// Default: bottom.
  AbsValue() : K(Kind::Bot) {}

  static AbsValue bot() { return AbsValue(); }
  static AbsValue env(AbsEnv E) {
    // Choke point: every environment entering the solver-facing value
    // domain is interned, so stability checks downstream are pointer
    // compares and copies are ref-count bumps (see analysis/env_pool.h).
    E.freeze();
    AbsValue V;
    V.K = Kind::Env;
    V.EnvValue = std::move(E);
    return V;
  }
  static AbsValue itv(const Interval &I) {
    if (I.isBot())
      return bot();
    AbsValue V;
    V.K = Kind::Itv;
    V.ItvValue = I;
    return V;
  }

  Kind kind() const { return K; }
  bool isBot() const { return K == Kind::Bot; }
  bool isEnv() const { return K == Kind::Env; }
  bool isItv() const { return K == Kind::Itv; }

  const AbsEnv &envValue() const {
    assert(isEnv() && "not an environment value");
    return EnvValue;
  }
  /// Interval payload; bottom maps to the empty interval.
  Interval itvValue() const {
    assert(!isEnv() && "not an interval value");
    return isBot() ? Interval::bot() : ItvValue;
  }
  /// Environment payload with bottom mapped "nowhere" — callers check
  /// isBot() first; provided for symmetry in generic code.
  const AbsEnv &envValueOrTop() const {
    static const AbsEnv Top;
    return isEnv() ? EnvValue : Top;
  }

  bool leq(const AbsValue &Other) const;
  AbsValue join(const AbsValue &Other) const;
  AbsValue widen(const AbsValue &Other) const;
  AbsValue narrow(const AbsValue &Other) const;
  /// Widening with a sorted threshold set (see Interval/AbsEnv).
  AbsValue widenWithThresholds(const AbsValue &Other,
                               const std::vector<int64_t> &Thresholds) const;
  bool operator==(const AbsValue &Other) const;

  std::string str(const Interner &Symbols) const;
  /// str() without variable names (symbol numbers).
  std::string str() const;

  size_t hashValue() const;

private:
  Kind K;
  AbsEnv EnvValue;
  Interval ItvValue;
};

} // namespace warrow

#endif // WARROW_ANALYSIS_ABSVALUE_H
