//===- analysis/constants.cpp - Program constant collection --------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/constants.h"

#include "support/casting.h"
#include "support/saturating.h"

#include <functional>
#include <vector>

using namespace warrow;

namespace {

void collectFromExpr(const Expr &E, std::vector<int64_t> &Out) {
  switch (E.kind()) {
  case Expr::Kind::IntLit: {
    int64_t V = cast<IntLit>(&E)->value();
    Out.push_back(V);
    Out.push_back(satSub64(V, 1));
    Out.push_back(satAdd64(V, 1));
    Out.push_back(satNeg64(V));
    return;
  }
  case Expr::Kind::VarRef:
    return;
  case Expr::Kind::ArrayRef:
    collectFromExpr(cast<ArrayRef>(&E)->index(), Out);
    return;
  case Expr::Kind::Unary:
    collectFromExpr(cast<UnaryExpr>(&E)->operand(), Out);
    return;
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(&E);
    collectFromExpr(B->lhs(), Out);
    collectFromExpr(B->rhs(), Out);
    return;
  }
  case Expr::Kind::Call:
    for (const ExprPtr &Arg : cast<CallExpr>(&E)->args())
      collectFromExpr(*Arg, Out);
    return;
  }
}

void collectFromStmt(const Stmt &S, std::vector<int64_t> &Out) {
  switch (S.kind()) {
  case Stmt::Kind::Block:
    for (const StmtPtr &Child : cast<BlockStmt>(&S)->stmts())
      collectFromStmt(*Child, Out);
    return;
  case Stmt::Kind::Decl: {
    const auto *D = cast<DeclStmt>(&S);
    if (D->isArray()) {
      Out.push_back(D->arraySize());
      Out.push_back(D->arraySize() - 1);
    }
    if (D->init())
      collectFromExpr(*D->init(), Out);
    return;
  }
  case Stmt::Kind::Assign:
    collectFromExpr(cast<AssignStmt>(&S)->value(), Out);
    return;
  case Stmt::Kind::ArrayAssign: {
    const auto *A = cast<ArrayAssignStmt>(&S);
    collectFromExpr(A->index(), Out);
    collectFromExpr(A->value(), Out);
    return;
  }
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(&S);
    collectFromExpr(I->cond(), Out);
    collectFromStmt(I->thenStmt(), Out);
    if (I->elseStmt())
      collectFromStmt(*I->elseStmt(), Out);
    return;
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(&S);
    collectFromExpr(W->cond(), Out);
    collectFromStmt(W->body(), Out);
    return;
  }
  case Stmt::Kind::For: {
    const auto *F = cast<ForStmt>(&S);
    if (F->init())
      collectFromStmt(*F->init(), Out);
    if (F->cond())
      collectFromExpr(*F->cond(), Out);
    if (F->step())
      collectFromStmt(*F->step(), Out);
    collectFromStmt(F->body(), Out);
    return;
  }
  case Stmt::Kind::ExprCall:
    collectFromExpr(cast<ExprCallStmt>(&S)->call(), Out);
    return;
  case Stmt::Kind::Return:
    if (const Expr *Value = cast<ReturnStmt>(&S)->value())
      collectFromExpr(*Value, Out);
    return;
  case Stmt::Kind::Break:
  case Stmt::Kind::Continue:
  case Stmt::Kind::Empty:
    return;
  }
}

} // namespace

ThresholdSet warrow::collectProgramConstants(const Program &P) {
  std::vector<int64_t> Values;
  for (const GlobalDecl &G : P.Globals) {
    if (G.isArray()) {
      Values.push_back(G.ArraySize);
      Values.push_back(G.ArraySize - 1);
    } else {
      Values.push_back(G.Init);
    }
  }
  for (const auto &F : P.Functions)
    collectFromStmt(*F->Body, Values);
  return ThresholdSet::of(std::move(Values));
}
