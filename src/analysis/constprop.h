//===- analysis/constprop.h - Constant propagation --------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A second client of the generic solver machinery: intraprocedural
/// constant propagation over the flat lattice. Where the interval
/// analysis exercises ⊟'s narrowing (infinite descending chains), this
/// analysis demonstrates that the same solvers and equation-system
/// plumbing work unchanged for a finite-height domain where join already
/// is a widening and the two-phase/⊟ distinction collapses.
///
/// Restrictions mirror the dense interval fragment (`intra.h`): one
/// call-free function, globals read as top.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_ANALYSIS_CONSTPROP_H
#define WARROW_ANALYSIS_CONSTPROP_H

#include "eqsys/dense_system.h"
#include "lang/cfg.h"
#include "lattice/flat.h"
#include "support/hash.h"

#include <cstdint>
#include <string>
#include <vector>

namespace warrow {

/// A flat constant-propagation value.
using CpValue = Flat<int64_t>;

/// Environment for constant propagation: missing bindings are top (any
/// value); a dedicated flag distinguishes unreachable.
class CpEnv {
public:
  CpEnv() = default;

  static CpEnv bot() {
    CpEnv E;
    E.Reachable = false;
    return E;
  }
  static CpEnv reachableTop() { return CpEnv(); }

  bool isBot() const { return !Reachable; }

  /// Value of \p Name; top when unbound, bottom env yields bottom value.
  CpValue get(Symbol Name) const;
  /// Binds \p Name (top erases). No-op on the bottom environment.
  void set(Symbol Name, const CpValue &Value);

  bool leq(const CpEnv &O) const;
  CpEnv join(const CpEnv &O) const;
  bool operator==(const CpEnv &O) const;
  // Finite height: acceleration is trivial.
  CpEnv widen(const CpEnv &O) const { return join(O); }
  CpEnv narrow(const CpEnv &O) const { return O; }

  std::string str(const Interner &Symbols) const;
  size_t size() const { return Entries.size(); }

private:
  using Entry = std::pair<Symbol, CpValue>;
  bool Reachable = true;
  std::vector<Entry> Entries; // Sorted; only constant bindings stored.
};

/// A dense constant-propagation system for one call-free function.
struct ConstPropSystem {
  DenseSystem<CpEnv> System;
  std::vector<Var> VarOfNode;
};

/// Builds the system over the function's reverse post-order.
ConstPropSystem buildConstPropSystem(const Program &P, const ProgramCfg &Cfgs,
                                     size_t FuncIndex);

/// Abstract evaluation of \p E under \p Env (globals and unknown() are
/// top; calls are not allowed in this fragment).
CpValue evalConstExpr(const Expr &E, const CpEnv &Env, const Program &P);

} // namespace warrow

#endif // WARROW_ANALYSIS_CONSTPROP_H
