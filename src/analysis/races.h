//===- analysis/races.h - Lockset-based data-race detection -----*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Must-lockset data-race detection for multithreaded mini-C, formulated
/// as a side-effecting constraint system on SLR+ (the Goblint recipe on
/// top of the paper's Section 6 machinery):
///
///  - Program points carry a *product* of the interval environment, the
///    must-set of held mutexes, and a single-threaded/multithreaded flag.
///    Locksets join by intersection (must information); the flag joins by
///    "or" (multithreaded once any path spawned).
///  - Global reads and writes *side-effect* an access record
///    (global, read/write, lockset, threading phase, site) into one
///    accumulator unknown per global; the per-global value is the join
///    (set union) of all contributions.
///  - `spawn f(e)` contributes the bound parameter environment — with the
///    empty lockset and the multithreaded flag — to f's entry, marks the
///    spawner multithreaded, and forces exploration of f's body.
///  - After solving, a global is *racy* iff its accumulated accesses
///    contain a multithreaded write w and a multithreaded access a
///    (possibly w itself) whose locksets are disjoint — the Eraser
///    discipline on must-locksets.
///
/// The precision experiment mirrors the paper's alarm benches: right-hand
/// sides re-contribute the access set of every *syntactically* touched
/// global on every evaluation — an edge whose guard the ⊟-iteration
/// refutes contributes the empty set, *replacing* its stale per-
/// contributor cell sigma(x,z) so the spurious access disappears. The
/// two-phase baseline freezes side-effected unknowns in its narrowing
/// phase (Example 8), so accesses reached only under widened loop bounds
/// stay in the accumulator and surface as false race alarms.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_ANALYSIS_RACES_H
#define WARROW_ANALYSIS_RACES_H

#include "analysis/checks.h"
#include "analysis/interproc.h"
#include "eqsys/local_system.h"
#include "eqsys/verify.h"
#include "lang/cfg.h"
#include "solvers/stats.h"
#include "support/hash.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace warrow {

/// A must-set of held mutexes. Ordering is by *reverse* inclusion: more
/// locks held means more precise information, so `a.leq(b)` iff a holds
/// at least b's locks, the join is set intersection, and the top element
/// is the empty set ("nothing definitely held").
class LockSet {
public:
  LockSet() = default;

  /// The empty (top) lockset.
  static LockSet none() { return LockSet(); }
  static LockSet of(std::vector<Symbol> Mutexes);

  void add(Symbol M);
  void remove(Symbol M);
  bool contains(Symbol M) const;
  bool empty() const { return Locks.empty(); }
  size_t size() const { return Locks.size(); }
  const std::vector<Symbol> &mutexes() const { return Locks; }

  /// True when no mutex is held by both (the race condition on a pair).
  bool disjointWith(const LockSet &Other) const;

  /// Must-ordering: this ⊑ other iff this holds a superset of the locks.
  bool leq(const LockSet &Other) const;
  /// Must-join: intersection of the held sets.
  LockSet join(const LockSet &Other) const;
  bool operator==(const LockSet &Other) const { return Locks == Other.Locks; }

  /// "{m1,m2}" using the interner for names.
  std::string str(const Interner &Symbols) const;
  size_t hashValue() const;

private:
  /// Sorted, deduplicated.
  std::vector<Symbol> Locks;
};

/// One recorded access to a global: the syntactic site plus the must-
/// lockset and threading phase it executes under.
struct RaceAccess {
  Symbol Glob = 0;
  bool IsWrite = false;
  /// True when the access can happen after some thread was spawned —
  /// only such accesses participate in races.
  bool Multithreaded = false;
  uint32_t Func = 0;
  uint32_t Line = 0;
  LockSet Locks;

  bool operator==(const RaceAccess &Other) const {
    return Glob == Other.Glob && IsWrite == Other.IsWrite &&
           Multithreaded == Other.Multithreaded && Func == Other.Func &&
           Line == Other.Line && Locks == Other.Locks;
  }
  bool operator<(const RaceAccess &Other) const;

  /// "write of g at f:12 [MT] holding {m}".
  std::string str(const Program &P) const;
};

/// A finite set of access records; join is set union, so the accumulator
/// per global grows towards the full set of (site, lockset) pairs — and
/// shrinks again under ⊟ when contributions are replaced by smaller sets.
class AccessSet {
public:
  AccessSet() = default;

  void insert(RaceAccess A);
  void unionWith(const AccessSet &Other);
  bool empty() const { return Accesses.empty(); }
  size_t size() const { return Accesses.size(); }
  const std::vector<RaceAccess> &accesses() const { return Accesses; }

  /// Subset ordering.
  bool leq(const AccessSet &Other) const;
  AccessSet join(const AccessSet &Other) const;
  bool operator==(const AccessSet &Other) const {
    return Accesses == Other.Accesses;
  }

  std::string str(const Program &P) const;

private:
  /// Sorted by operator<, deduplicated.
  std::vector<RaceAccess> Accesses;
};

/// The heterogeneous value domain of the race system. Program points
/// carry `Point` products, flow-insensitive globals carry intervals, and
/// per-global access accumulators carry access sets; `Bot` is the shared
/// polymorphic bottom (unreachable / empty), as in `AbsValue`.
class RaceValue {
public:
  enum class Kind : uint8_t { Bot, Point, Itv, Acc };

  RaceValue() : K(Kind::Bot) {}

  static RaceValue bot() { return RaceValue(); }
  static RaceValue point(AbsEnv Env, LockSet Locks, bool Multithreaded) {
    // Same choke point as AbsValue::env: every environment entering the
    // solver is interned so equality is a pointer compare.
    Env.freeze();
    RaceValue V;
    V.K = Kind::Point;
    V.Env = std::move(Env);
    V.Locks = std::move(Locks);
    V.Multithreaded = Multithreaded;
    return V;
  }
  static RaceValue itv(const Interval &I) {
    if (I.isBot())
      return bot();
    RaceValue V;
    V.K = Kind::Itv;
    V.Itv = I;
    return V;
  }
  static RaceValue acc(AccessSet Accesses) {
    if (Accesses.empty())
      return bot();
    RaceValue V;
    V.K = Kind::Acc;
    V.Accesses = std::move(Accesses);
    return V;
  }

  Kind kind() const { return K; }
  bool isBot() const { return K == Kind::Bot; }
  bool isPoint() const { return K == Kind::Point; }
  bool isItv() const { return K == Kind::Itv; }
  bool isAcc() const { return K == Kind::Acc; }

  const AbsEnv &env() const {
    assert(isPoint() && "not a point value");
    return Env;
  }
  const LockSet &locks() const {
    assert(isPoint() && "not a point value");
    return Locks;
  }
  bool multithreaded() const {
    assert(isPoint() && "not a point value");
    return Multithreaded;
  }
  /// Interval payload; bottom maps to the empty interval.
  Interval itvValue() const {
    assert((isItv() || isBot()) && "not an interval value");
    return isBot() ? Interval::bot() : Itv;
  }
  /// Access-set payload; bottom maps to the empty set.
  const AccessSet &accValue() const {
    assert((isAcc() || isBot()) && "not an access-set value");
    static const AccessSet Empty;
    return isBot() ? Empty : Accesses;
  }

  bool leq(const RaceValue &Other) const;
  RaceValue join(const RaceValue &Other) const;
  RaceValue widen(const RaceValue &Other) const;
  RaceValue narrow(const RaceValue &Other) const;
  bool operator==(const RaceValue &Other) const;

  std::string str(const Interner &Symbols) const;

private:
  Kind K;
  AbsEnv Env;
  LockSet Locks;
  bool Multithreaded = false;
  Interval Itv;
  AccessSet Accesses;
};

/// An unknown of the race constraint system: a program point, a flow-
/// insensitive global value, or a per-global access accumulator.
struct RaceVar {
  enum class Kind : uint8_t { Point, Global, Access };

  Kind K = Kind::Point;
  uint32_t Func = 0; ///< Function index (Point).
  uint32_t Node = 0; ///< CFG node (Point).
  uint32_t Ctx = 0;  ///< Context id (Point).
  Symbol Glob = 0;   ///< Global symbol (Global / Access).

  static RaceVar point(uint32_t Func, uint32_t Node, uint32_t Ctx) {
    RaceVar V;
    V.K = Kind::Point;
    V.Func = Func;
    V.Node = Node;
    V.Ctx = Ctx;
    return V;
  }
  static RaceVar global(Symbol G) {
    RaceVar V;
    V.K = Kind::Global;
    V.Glob = G;
    return V;
  }
  static RaceVar access(Symbol G) {
    RaceVar V;
    V.K = Kind::Access;
    V.Glob = G;
    return V;
  }

  bool isPoint() const { return K == Kind::Point; }
  bool isGlobal() const { return K == Kind::Global; }
  bool isAccess() const { return K == Kind::Access; }

  bool operator==(const RaceVar &O) const {
    return K == O.K && Func == O.Func && Node == O.Node && Ctx == O.Ctx &&
           Glob == O.Glob;
  }

  size_t hashValue() const {
    return hashAll(static_cast<uint32_t>(K), Func, Node, Ctx, Glob);
  }

  std::string str(const Program &P) const;
};

} // namespace warrow

// The hash specialization must precede any instantiation of containers
// keyed by RaceVar (e.g. PartialSolution below).
template <> struct std::hash<warrow::RaceVar> {
  size_t operator()(const warrow::RaceVar &V) const { return V.hashValue(); }
};

namespace warrow {

/// One reported race: a global plus the witnessing pair of accesses (a
/// multithreaded write and a multithreaded access with disjoint locksets;
/// the two may coincide for a single unprotected write).
struct RaceFinding {
  Symbol Glob = 0;
  RaceAccess Write;
  RaceAccess Other;

  std::string str(const Program &P) const;
};

/// Result of one race-analysis run.
struct RaceAnalysisResult {
  PartialSolution<RaceVar, RaceValue> Solution;
  SolverStats Stats;
  double Seconds = 0;
  uint64_t NumUnknowns = 0;
  /// One finding per racy global, in declaration order.
  std::vector<RaceFinding> Races;

  /// Accumulated accesses of a global (empty if never accessed).
  const AccessSet &accessesOf(Symbol G) const {
    auto It = Solution.Sigma.find(RaceVar::access(G));
    static const AccessSet Empty;
    return It == Solution.Sigma.end() ? Empty : It->second.accValue();
  }
  /// Flow-insensitive interval of a global.
  Interval globalValue(Symbol G) const {
    return Solution.value(RaceVar::global(G)).itvValue();
  }
  RaceValue at(uint32_t Func, uint32_t Node, uint32_t Ctx = 0) const {
    return Solution.value(RaceVar::point(Func, Node, Ctx));
  }
};

/// Builds and solves the race constraint system.
class RaceAnalysis {
public:
  RaceAnalysis(const Program &P, const ProgramCfg &Cfgs,
               AnalysisOptions Options = {});

  /// Runs the chosen solver from scratch and extracts the races.
  RaceAnalysisResult run(SolverChoice Choice);

  /// Independent soundness check: re-evaluates every right-hand side over
  /// the solved assignment (verify.h's side-effecting solution check).
  /// Call directly after run() — the run's context table is reused.
  VerifyResult verify(const RaceAnalysisResult &Result);

  /// The interesting unknown: main's exit point in the initial context.
  RaceVar root() const;

  const AnalysisOptions &options() const { return Options; }

private:
  friend class RaceRhs;

  SideEffectingSystem<RaceVar, RaceValue> buildSystem(class RaceRhs &Builder);

  const Program &P;
  const ProgramCfg &Cfgs;
  AnalysisOptions Options;
  uint32_t MainIdx = 0;
  Symbol RetSym = 0;

  // Mutable context state shared across a run (reset per run()).
  ContextTable Contexts;
  uint32_t InitialCtx = 0;
  std::unordered_map<uint32_t, std::unordered_set<uint32_t>> CtxPerFunc;
  // Guards the CtxPerFunc context-gas transaction — the parallel solver
  // runs contextFor from several workers.
  std::mutex CtxGasMutex;
};

/// Extracts the racy globals from the accumulated access sets: one
/// finding per global with a multithreaded write and some multithreaded
/// access holding a disjoint lockset. Deterministic (declaration order;
/// lexicographically smallest witness pair).
std::vector<RaceFinding> findRaces(const Program &P,
                                   const RaceAnalysisResult &Result);

/// Converts race findings to checker findings (Kind::DataRace) so the
/// alarm accounting of checks.h covers races too.
std::vector<CheckFinding>
raceCheckFindings(const Program &P, const std::vector<RaceFinding> &Races);

} // namespace warrow

#endif // WARROW_ANALYSIS_RACES_H
