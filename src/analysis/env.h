//===- analysis/env.h - Abstract environments -------------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract environments mapping local scalars (and smashed local arrays)
/// to intervals. Missing bindings mean "any value" (top), so the empty
/// environment is the top element; unreachability is represented one
/// level up (`AbsValue::bot`). As an invariant, environments never bind a
/// variable to the empty interval — operations that would produce one
/// report unreachability instead.
///
/// Representation: a copy-on-write handle over hash-consed entry vectors
/// (env_pool.h). Copies bump a reference count; mutation clones only
/// shared or frozen nodes; `freeze()` interns the contents so that
/// structurally equal environments share one canonical node and equality
/// is a pointer compare. The public API is unchanged from the value-
/// semantics implementation — transfer functions and solvers compile
/// as before.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_ANALYSIS_ENV_H
#define WARROW_ANALYSIS_ENV_H

#include "analysis/env_pool.h"
#include "lattice/interval.h"
#include "support/interner.h"

#include <string>
#include <utility>
#include <vector>

namespace warrow {

/// Interval environment over interned symbols; absent symbols are top.
class AbsEnv {
public:
  AbsEnv() = default;

  /// The top environment (no constraints on any variable).
  static AbsEnv top() { return AbsEnv(); }

  /// Value of \p Name (top when unbound). Never returns bottom.
  Interval get(Symbol Name) const;

  /// Binds \p Name to \p Value. Binding to top erases the entry; binding
  /// to bottom is a caller bug (environments never go empty — assert).
  void set(Symbol Name, const Interval &Value);

  /// True if no variable is constrained.
  bool isTop() const { return !Node; }
  size_t size() const { return Node ? Node->size() : 0; }
  const EnvData &entries() const;

  bool leq(const AbsEnv &Other) const;
  bool operator==(const AbsEnv &Other) const;

  AbsEnv join(const AbsEnv &Other) const;
  AbsEnv widen(const AbsEnv &Other) const;
  AbsEnv narrow(const AbsEnv &Other) const;
  /// Pointwise threshold widening (unstable bounds snap to the closest
  /// enclosing threshold before falling to infinity).
  AbsEnv widenWithThresholds(const AbsEnv &Other,
                             const std::vector<int64_t> &Thresholds) const;

  /// Pointwise meet; returns false (leaving *this unspecified) when some
  /// variable's meet is empty, i.e. the environment became unreachable.
  bool meetWith(const AbsEnv &Other);

  /// Interns the contents into the thread-local pool: afterwards this
  /// handle points at the canonical node for its value and equality with
  /// other frozen environments is a pointer compare. Idempotent; called
  /// automatically at the solver choke point (AbsValue::env).
  void freeze();
  /// True when the contents are interned (top counts as frozen).
  bool isFrozen() const { return !Node || Node.frozen(); }
  /// Identity of the underlying representation (null for top). Two
  /// environments with equal ids are equal; the converse holds only for
  /// frozen environments from the same thread. Diagnostics/tests.
  const void *nodeId() const { return Node.get(); }

  /// "{x->[0,3], y->[1,1]}" using the interner for names.
  std::string str(const Interner &Symbols) const;

  size_t hashValue() const;

private:
  using Entry = EnvEntry;

  explicit AbsEnv(EnvRef N) : Node(std::move(N)) {}
  /// Normalizes (empty → top) and interns.
  static AbsEnv fromEntries(EnvData &&Entries);
  /// Copy-on-write access: clones the node when shared or frozen.
  EnvData &mutableEntries();

  /// Sorted by symbol; values never top (normalized away) and never
  /// bottom; null node iff empty (top).
  EnvRef Node;
};

} // namespace warrow

template <> struct std::hash<warrow::AbsEnv> {
  size_t operator()(const warrow::AbsEnv &E) const { return E.hashValue(); }
};

#endif // WARROW_ANALYSIS_ENV_H
