//===- analysis/env.h - Abstract environments -------------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract environments mapping local scalars (and smashed local arrays)
/// to intervals. Missing bindings mean "any value" (top), so the empty
/// environment is the top element; unreachability is represented one
/// level up (`AbsValue::bot`). As an invariant, environments never bind a
/// variable to the empty interval — operations that would produce one
/// report unreachability instead.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_ANALYSIS_ENV_H
#define WARROW_ANALYSIS_ENV_H

#include "lattice/interval.h"
#include "support/interner.h"

#include <string>
#include <utility>
#include <vector>

namespace warrow {

/// Interval environment over interned symbols; absent symbols are top.
class AbsEnv {
public:
  AbsEnv() = default;

  /// The top environment (no constraints on any variable).
  static AbsEnv top() { return AbsEnv(); }

  /// Value of \p Name (top when unbound). Never returns bottom.
  Interval get(Symbol Name) const;

  /// Binds \p Name to \p Value. Binding to top erases the entry; binding
  /// to bottom is a caller bug (environments never go empty — assert).
  void set(Symbol Name, const Interval &Value);

  /// True if no variable is constrained.
  bool isTop() const { return Entries.empty(); }
  size_t size() const { return Entries.size(); }
  const std::vector<std::pair<Symbol, Interval>> &entries() const {
    return Entries;
  }

  bool leq(const AbsEnv &Other) const;
  bool operator==(const AbsEnv &Other) const {
    return Entries == Other.Entries;
  }

  AbsEnv join(const AbsEnv &Other) const;
  AbsEnv widen(const AbsEnv &Other) const;
  AbsEnv narrow(const AbsEnv &Other) const;
  /// Pointwise threshold widening (unstable bounds snap to the closest
  /// enclosing threshold before falling to infinity).
  AbsEnv widenWithThresholds(const AbsEnv &Other,
                             const std::vector<int64_t> &Thresholds) const;

  /// Pointwise meet; returns false (leaving *this unspecified) when some
  /// variable's meet is empty, i.e. the environment became unreachable.
  bool meetWith(const AbsEnv &Other);

  /// "{x->[0,3], y->[1,1]}" using the interner for names.
  std::string str(const Interner &Symbols) const;

  size_t hashValue() const;

private:
  using Entry = std::pair<Symbol, Interval>;
  // Sorted by symbol; values never top (normalized away) and never bottom.
  std::vector<Entry> Entries;

  std::vector<Entry>::iterator lowerBound(Symbol Name);
  std::vector<Entry>::const_iterator lowerBound(Symbol Name) const;
};

} // namespace warrow

template <> struct std::hash<warrow::AbsEnv> {
  size_t operator()(const warrow::AbsEnv &E) const { return E.hashValue(); }
};

#endif // WARROW_ANALYSIS_ENV_H
