//===- analysis/rel_env.cpp - Relational (zones) environments -----------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/rel_env.h"

#include "support/casting.h"

#include <algorithm>
#include <cassert>

using namespace warrow;

namespace {

/// True when some tracked variable carries no constraint at all (its row
/// and column are entirely +inf) — the normalized form drops such vars.
bool needsCompaction(const RelData &D) {
  size_t Dim = D.Matrix.dim();
  for (size_t I = 1; I < Dim; ++I) {
    bool Constrained = false;
    for (size_t J = 0; J < Dim && !Constrained; ++J)
      if (J != I && (!D.Matrix.at(I, J).isPosInf() ||
                     !D.Matrix.at(J, I).isPosInf()))
        Constrained = true;
    if (!Constrained)
      return true;
  }
  return false;
}

} // namespace

const std::vector<Symbol> &RelEnv::vars() const {
  static const std::vector<Symbol> Empty;
  return Node ? Node->Vars : Empty;
}

RelEnv RelEnv::fromRaw(std::vector<Symbol> Vars, Dbm Matrix) {
  assert(Matrix.dim() == Vars.size() + 1 && "matrix/variable mismatch");
  assert(std::is_sorted(Vars.begin(), Vars.end()) && "vars must be sorted");
  RelData Data;
  Data.Vars = std::move(Vars);
  Data.Matrix = std::move(Matrix);
  return fromData(std::move(Data));
}

const Dbm &RelEnv::matrix() const {
  static const Dbm Top(0);
  return Node ? Node->Matrix : Top;
}

RelData &RelEnv::mutableData() {
  if (!Node)
    Node = RelRef::make(RelData{});
  else if (!Node.unique() || Node.frozen())
    Node = RelRef::make(RelData(*Node));
  return Node.mutableData();
}

size_t RelEnv::indexOf(Symbol Name) const {
  if (!Node)
    return 0;
  const std::vector<Symbol> &Vars = Node->Vars;
  auto It = std::lower_bound(Vars.begin(), Vars.end(), Name);
  if (It == Vars.end() || *It != Name)
    return 0;
  return static_cast<size_t>(It - Vars.begin()) + 1;
}

size_t RelEnv::ensureVar(Symbol Name) {
  if (size_t Idx = indexOf(Name))
    return Idx;
  RelData &D = mutableData();
  auto It = std::lower_bound(D.Vars.begin(), D.Vars.end(), Name);
  size_t Pos = static_cast<size_t>(It - D.Vars.begin());
  D.Vars.insert(It, Name);
  size_t OldDim = D.Matrix.dim();
  bool WasClosed = D.Matrix.closed();
  Dbm Grown(D.Vars.size());
  // Old matrix index i keeps its slot when i <= Pos (var positions below
  // the insertion point are unchanged); later indices shift up by one.
  auto Remap = [Pos](size_t I) { return I <= Pos ? I : I + 1; };
  for (size_t I = 0; I < OldDim; ++I)
    for (size_t J = 0; J < OldDim; ++J)
      if (I != J)
        Grown.set(Remap(I), Remap(J), D.Matrix.at(I, J));
  if (WasClosed)
    Grown.markClosed(); // An unconstrained fresh var preserves closure.
  D.Matrix = std::move(Grown);
  return Pos + 1;
}

RelEnv RelEnv::fromData(RelData &&Data) {
  if (Data.Vars.empty())
    return RelEnv();
  if (!needsCompaction(Data))
    return RelEnv(RelRef::make(std::move(Data)));
  size_t Dim = Data.Matrix.dim();
  std::vector<size_t> Keep; // Matrix indices (>= 1) of constrained vars.
  for (size_t I = 1; I < Dim; ++I) {
    for (size_t J = 0; J < Dim; ++J)
      if (J != I && (!Data.Matrix.at(I, J).isPosInf() ||
                     !Data.Matrix.at(J, I).isPosInf())) {
        Keep.push_back(I);
        break;
      }
  }
  if (Keep.empty())
    return RelEnv();
  RelData Out;
  Out.Vars.reserve(Keep.size());
  for (size_t I : Keep)
    Out.Vars.push_back(Data.Vars[I - 1]);
  bool WasClosed = Data.Matrix.closed();
  Dbm Compact(Keep.size());
  std::vector<size_t> Old;
  Old.reserve(Keep.size() + 1);
  Old.push_back(0);
  Old.insert(Old.end(), Keep.begin(), Keep.end());
  for (size_t I = 0; I < Old.size(); ++I)
    for (size_t J = 0; J < Old.size(); ++J)
      if (I != J)
        Compact.set(I, J, Data.Matrix.at(Old[I], Old[J]));
  if (WasClosed)
    Compact.markClosed(); // Projecting away unconstrained vars preserves it.
  Out.Matrix = std::move(Compact);
  return RelEnv(RelRef::make(std::move(Out)));
}

RelEnv RelEnv::closedForm() const {
  if (!Node || Node->Matrix.closed())
    return *this;
  RelEnv C = *this;
  bool Ok = C.mutableData().Matrix.close();
  assert(Ok && "stored environments are always feasible");
  (void)Ok;
  return C;
}

Interval RelEnv::get(Symbol Name) const {
  if (!Node)
    return Interval::top();
  size_t Idx = indexOf(Name);
  if (!Idx)
    return Interval::top();
  if (Node->Matrix.closed())
    return Node->Matrix.bounds(Idx);
  return closedForm().get(Name);
}

Interval RelEnv::diffBounds(Symbol X, Symbol Y) const {
  if (X == Y)
    return Interval::constant(0);
  RelEnv C = closedForm();
  size_t Ix = C.indexOf(X), Iy = C.indexOf(Y);
  if (!Ix || !Iy)
    return C.get(X).sub(C.get(Y));
  return C.Node->Matrix.diffBounds(Ix, Iy);
}

void RelEnv::set(Symbol Name, const Interval &Value) {
  assert(!Value.isBot() && "environments never bind bottom");
  if (Value.isTop()) {
    forget(Name);
    return;
  }
  *this = closedForm();
  size_t Idx = ensureVar(Name);
  RelData &D = mutableData();
  D.Matrix.forget(Idx);
  bool Ok = D.Matrix.constrainInterval(Idx, Value);
  assert(Ok && "fresh unary constraints cannot conflict");
  (void)Ok;
}

void RelEnv::forget(Symbol Name) {
  size_t Idx = indexOf(Name);
  if (!Idx)
    return;
  // Close first: on an unclosed matrix, dropping Name's row/column would
  // also lose constraints between other vars that route through it.
  *this = closedForm();
  RelData &D = mutableData();
  D.Matrix.forget(indexOf(Name));
}

void RelEnv::assignShift(Symbol X, int64_t C) {
  size_t Idx = indexOf(X);
  if (!Idx || C == 0)
    return;
  RelData &D = mutableData();
  Dbm &M = D.Matrix;
  bool WasClosed = M.closed();
  for (size_t J = 0; J < M.dim(); ++J) {
    if (J == Idx)
      continue;
    Bound Row = M.at(Idx, J);
    if (!Row.isPosInf())
      M.set(Idx, J, Row + Bound(C));
    Bound Col = M.at(J, Idx);
    if (!Col.isPosInf())
      M.set(J, Idx, Col - Bound(C));
  }
  if (WasClosed)
    M.markClosed(); // A uniform shift preserves all triangle inequalities.
}

void RelEnv::assignDiff(Symbol X, Symbol Y, int64_t C) {
  assert(X != Y && "use assignShift for self-assignments");
  *this = closedForm();
  ensureVar(X);
  ensureVar(Y);
  size_t Ix = indexOf(X), Iy = indexOf(Y);
  RelData &D = mutableData();
  D.Matrix.forget(Ix);
  bool Ok = true;
  if (D.Matrix.tighten(Ix, Iy, Bound(C)))
    Ok = D.Matrix.closeAfterTighten(Ix, Iy) && Ok;
  if (D.Matrix.tighten(Iy, Ix, Bound(satNeg64(C))))
    Ok = D.Matrix.closeAfterTighten(Iy, Ix) && Ok;
  assert(Ok && "a fresh equality on a forgotten var cannot conflict");
  (void)Ok;
}

bool RelEnv::constrainDiff(Symbol X, Symbol Y, Bound C) {
  if (C.isPosInf())
    return true;
  *this = closedForm();
  ensureVar(X);
  ensureVar(Y);
  size_t Ix = indexOf(X), Iy = indexOf(Y);
  RelData &D = mutableData();
  if (!D.Matrix.tighten(Ix, Iy, C))
    return true;
  return D.Matrix.closeAfterTighten(Ix, Iy);
}

bool RelEnv::constrainVar(Symbol Name, const Interval &Value) {
  assert(!Value.isBot() && "refinements check feasibility before applying");
  if (Value.isTop())
    return true;
  *this = closedForm();
  size_t Idx = ensureVar(Name);
  return mutableData().Matrix.constrainInterval(Idx, Value);
}

std::vector<Symbol> RelEnv::unionVars(const RelEnv &A, const RelEnv &B) {
  std::vector<Symbol> Out;
  const std::vector<Symbol> &Va = A.vars();
  const std::vector<Symbol> &Vb = B.vars();
  Out.reserve(Va.size() + Vb.size());
  std::set_union(Va.begin(), Va.end(), Vb.begin(), Vb.end(),
                 std::back_inserter(Out));
  return Out;
}

RelData RelEnv::embed(const std::vector<Symbol> &UnionVars) const {
  RelData Out;
  Out.Vars = UnionVars;
  Dbm M(UnionVars.size());
  if (Node) {
    const RelData &D = *Node;
    std::vector<size_t> Map(D.Vars.size() + 1, 0);
    for (size_t I = 0; I < D.Vars.size(); ++I) {
      auto It = std::lower_bound(UnionVars.begin(), UnionVars.end(),
                                 D.Vars[I]);
      assert(It != UnionVars.end() && *It == D.Vars[I] &&
             "embedding target must contain every tracked var");
      Map[I + 1] = static_cast<size_t>(It - UnionVars.begin()) + 1;
    }
    size_t Dim = D.Matrix.dim();
    for (size_t I = 0; I < Dim; ++I)
      for (size_t J = 0; J < Dim; ++J)
        if (I != J)
          M.set(Map[I], Map[J], D.Matrix.at(I, J));
    if (D.Matrix.closed())
      M.markClosed(); // Fresh vars are unconstrained: closure preserved.
  }
  Out.Matrix = std::move(M);
  return Out;
}

bool RelEnv::leq(const RelEnv &Other) const {
  if (Node == Other.Node)
    return true;
  if (!Other.Node)
    return true; // Everything is below top.
  // Zone inclusion: close(a) pointwise <= b. We close both sides so the
  // check is exact regardless of either operand's stored form.
  RelEnv A = closedForm();
  RelEnv B = Other.closedForm();
  std::vector<Symbol> U = unionVars(A, B);
  return A.embed(U).Matrix.pointwiseLeq(B.embed(U).Matrix);
}

bool RelEnv::operator==(const RelEnv &Other) const {
  if (Node == Other.Node)
    return true;
  if (!Node || !Other.Node)
    return false;
  // Same reasoning as AbsEnv: distinct frozen nodes from one pool differ,
  // but values cross threads, so unequal memoized hashes are the O(1)
  // negative answer and equal hashes fall back to the structural compare.
  if (Node.frozen() && Other.Node.frozen() &&
      Node.get()->Hash != Other.Node.get()->Hash)
    return false;
  return *Node == *Other.Node;
}

RelEnv RelEnv::join(const RelEnv &Other) const {
  if (Node == Other.Node)
    return *this; // e ⊔ e = e.
  if (!Node || !Other.Node)
    return RelEnv(); // Either side top.
  RelEnv A = closedForm();
  RelEnv B = Other.closedForm();
  std::vector<Symbol> U = unionVars(A, B);
  RelData Out;
  Out.Matrix = Dbm::pointwiseMax(A.embed(U).Matrix, B.embed(U).Matrix);
  Out.Vars = std::move(U);
  return fromData(std::move(Out));
}

RelEnv RelEnv::widen(const RelEnv &Other) const {
  if (Node == Other.Node)
    return *this; // e ▽ e = e.
  if (!Node || !Other.Node)
    return RelEnv();
  // Left operand in its *stored* form (see dbm.h: re-closing a widened
  // matrix would break termination); right operand closed for precision.
  RelEnv B = Other.closedForm();
  std::vector<Symbol> U = unionVars(*this, B);
  RelData Out;
  Out.Matrix = embed(U).Matrix.widen(B.embed(U).Matrix);
  Out.Vars = std::move(U);
  return fromData(std::move(Out));
}

RelEnv RelEnv::widenWithThresholds(
    const RelEnv &Other, const std::vector<int64_t> &Thresholds) const {
  if (Node == Other.Node)
    return *this;
  if (!Node || !Other.Node)
    return RelEnv();
  RelEnv B = Other.closedForm();
  std::vector<Symbol> U = unionVars(*this, B);
  RelData Out;
  Out.Matrix =
      embed(U).Matrix.widenWithThresholds(B.embed(U).Matrix, Thresholds);
  Out.Vars = std::move(U);
  return fromData(std::move(Out));
}

RelEnv RelEnv::narrow(const RelEnv &Other) const {
  // Precondition Other ⊑ *this. Only +inf entries adopt Other's bounds —
  // including whole vars the widening dropped (the zones analogue of
  // AbsEnv::narrow re-adopting Other-only bindings).
  if (Node == Other.Node)
    return *this; // e △ e = e.
  if (!Other.Node)
    return *this; // v △ top = v pointwise.
  RelEnv B = Other.closedForm();
  std::vector<Symbol> U = unionVars(*this, B);
  RelData Out;
  Out.Matrix = embed(U).Matrix.narrow(B.embed(U).Matrix);
  Out.Vars = std::move(U);
  bool Ok = Out.Matrix.close();
  assert(Ok && "narrowing keeps the (feasible) new value as a lower bound");
  (void)Ok;
  return fromData(std::move(Out));
}

void RelEnv::freeze() {
  if (!Node || Node.frozen())
    return;
  if (needsCompaction(*Node))
    *this = fromData(RelData(*Node));
  if (Node && !Node.frozen())
    Node = RelPool::local().intern(std::move(Node));
}

std::string RelEnv::str(const Interner &Symbols) const {
  RelEnv C = closedForm();
  if (!C.Node)
    return "{}";
  const RelData &D = *C.Node;
  size_t Dim = D.Matrix.dim();
  std::string Out = "{";
  bool First = true;
  auto Emit = [&Out, &First](const std::string &S) {
    if (!First)
      Out += ", ";
    First = false;
    Out += S;
  };
  for (size_t I = 1; I < Dim; ++I) {
    Interval B = D.Matrix.bounds(I);
    if (!B.isTop())
      Emit(Symbols.spelling(D.Vars[I - 1]) + "->" + B.str());
  }
  for (size_t I = 1; I < Dim; ++I)
    for (size_t J = 1; J < Dim; ++J)
      if (I != J && !D.Matrix.at(I, J).isPosInf())
        Emit(Symbols.spelling(D.Vars[I - 1]) + "-" +
             Symbols.spelling(D.Vars[J - 1]) + "<=" +
             D.Matrix.at(I, J).str());
  return Out + "}";
}

size_t RelEnv::hashValue() const {
  if (!Node)
    return 0; // RelDataHash of the empty contents.
  if (Node.frozen())
    return Node.get()->Hash;
  return RelDataHash{}(*Node);
}

//===----------------------------------------------------------------------===//
// Relational transfer functions
//===----------------------------------------------------------------------===//

namespace {

/// `y + c` / `c + y` / `y - c` / `y` over a *local* variable; the forms
/// the zones domain represents exactly.
struct AffineForm {
  Symbol Var;
  int64_t Offset;
};

std::optional<AffineForm> matchAffine(const Expr &E, const EvalContext &Ctx) {
  if (const auto *V = dyn_cast<VarRef>(&E)) {
    if (!Ctx.isGlobal(V->name()))
      return AffineForm{V->name(), 0};
    return std::nullopt;
  }
  const auto *B = dyn_cast<BinaryExpr>(&E);
  if (!B || (B->op() != BinaryOp::Add && B->op() != BinaryOp::Sub))
    return std::nullopt;
  const auto *LV = dyn_cast<VarRef>(&B->lhs());
  const auto *LC = dyn_cast<IntLit>(&B->lhs());
  const auto *RV = dyn_cast<VarRef>(&B->rhs());
  const auto *RC = dyn_cast<IntLit>(&B->rhs());
  if (LV && RC && !Ctx.isGlobal(LV->name()))
    return AffineForm{LV->name(), B->op() == BinaryOp::Add
                                      ? RC->value()
                                      : satNeg64(RC->value())};
  if (LC && RV && B->op() == BinaryOp::Add && !Ctx.isGlobal(RV->name()))
    return AffineForm{RV->name(), LC->value()};
  return std::nullopt;
}

/// The `x - y` difference of two local variables, if \p E has that shape.
struct DiffForm {
  Symbol X;
  Symbol Y;
};

std::optional<DiffForm> matchDiff(const Expr &E, const EvalContext &Ctx) {
  const auto *B = dyn_cast<BinaryExpr>(&E);
  if (!B || B->op() != BinaryOp::Sub)
    return std::nullopt;
  const auto *LV = dyn_cast<VarRef>(&B->lhs());
  const auto *RV = dyn_cast<VarRef>(&B->rhs());
  if (LV && RV && !Ctx.isGlobal(LV->name()) && !Ctx.isGlobal(RV->name()))
    return DiffForm{LV->name(), RV->name()};
  return std::nullopt;
}

/// Expression evaluation over a *closed* environment.
Interval evalRel(const Expr &E, const RelEnv &Env, const EvalContext &Ctx) {
  switch (E.kind()) {
  case Expr::Kind::IntLit:
    return Interval::constant(cast<IntLit>(&E)->value());
  case Expr::Kind::VarRef: {
    Symbol Name = cast<VarRef>(&E)->name();
    if (Ctx.isGlobal(Name))
      return Ctx.ReadGlobal(Name);
    return Env.get(Name);
  }
  case Expr::Kind::ArrayRef: {
    const auto *A = cast<ArrayRef>(&E);
    Interval Index = evalRel(A->index(), Env, Ctx);
    if (Index.isBot())
      return Interval::bot();
    if (Ctx.isGlobal(A->name()))
      return Ctx.ReadGlobal(A->name());
    return Env.get(A->name());
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(&E);
    Interval V = evalRel(U->operand(), Env, Ctx);
    if (U->op() == UnaryOp::Neg)
      return V.neg();
    AbsTruth T = truthOf(V);
    return truthInterval({T.CanBeTrue, T.CanBeFalse}); // !: swap roles.
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(&E);
    // The relational payoff: differences of tracked locals read the
    // closed matrix, which is at least as tight as interval arithmetic
    // over the unary bounds (and strictly tighter whenever a relation
    // survived widening that the endpoints did not).
    if (std::optional<DiffForm> D = matchDiff(E, Ctx))
      return Env.diffBounds(D->X, D->Y);
    Interval L = evalRel(B->lhs(), Env, Ctx);
    Interval R = evalRel(B->rhs(), Env, Ctx);
    switch (B->op()) {
    case BinaryOp::Add:
      return L.add(R);
    case BinaryOp::Sub:
      return L.sub(R);
    case BinaryOp::Mul:
      return L.mul(R);
    case BinaryOp::Div:
      return L.div(R);
    case BinaryOp::Rem:
      return L.rem(R);
    case BinaryOp::LAnd: {
      AbsTruth TL = truthOf(L), TR = truthOf(R);
      return truthInterval({TL.CanBeFalse || (TL.CanBeTrue && TR.CanBeFalse),
                            TL.CanBeTrue && TR.CanBeTrue});
    }
    case BinaryOp::LOr: {
      AbsTruth TL = truthOf(L), TR = truthOf(R);
      return truthInterval({TL.CanBeFalse && TR.CanBeFalse,
                            TL.CanBeTrue || (TL.CanBeFalse && TR.CanBeTrue)});
    }
    default: {
      // Comparisons of two locals resolve through the difference, so a
      // relation like i - j <= -1 decides i < j even with top endpoints.
      const auto *LV = dyn_cast<VarRef>(&B->lhs());
      const auto *RV = dyn_cast<VarRef>(&B->rhs());
      if (LV && RV && !Ctx.isGlobal(LV->name()) &&
          !Ctx.isGlobal(RV->name()))
        return compareIntervals(B->op(),
                                Env.diffBounds(LV->name(), RV->name()),
                                Interval::constant(0));
      return compareIntervals(B->op(), L, R);
    }
    }
  }
  case Expr::Kind::Call: {
    const auto *Call = cast<CallExpr>(&E);
    if (Ctx.UnknownSym && Call->callee() == Ctx.UnknownSym)
      return Interval::top(); // unknown(): any integer.
    assert(false && "function calls are handled by the driver");
    return Interval::top();
  }
  }
  return Interval::top();
}

/// Comparison refinement: `Lhs Op Rhs` assumed true. \p Env is closed on
/// entry and left closed on success.
bool refineCompareRel(RelEnv &Env, BinaryOp Op, const Expr &Lhs,
                      const Expr &Rhs, const EvalContext &Ctx) {
  Interval L = evalRel(Lhs, Env, Ctx);
  Interval R = evalRel(Rhs, Env, Ctx);
  if (L.isBot() || R.isBot())
    return false;

  const auto *LV = dyn_cast<VarRef>(&Lhs);
  const auto *RV = dyn_cast<VarRef>(&Rhs);
  bool LLocal = LV && !Ctx.isGlobal(LV->name());
  bool RLocal = RV && !Ctx.isGlobal(RV->name());

  // Two locals: the comparison is a difference constraint — exactly the
  // zones' native language. Feasibility and refinement both go through
  // the difference; incremental closure propagates to the unary bounds.
  if (LLocal && RLocal) {
    Interval Diff = Env.diffBounds(LV->name(), RV->name());
    Interval Outcome = compareIntervals(Op, Diff, Interval::constant(0));
    if (Outcome.isConstant() && Outcome.constantValue() == 0)
      return false;
    switch (Op) {
    case BinaryOp::Lt:
      return Env.constrainDiff(LV->name(), RV->name(), Bound(-1));
    case BinaryOp::Le:
      return Env.constrainDiff(LV->name(), RV->name(), Bound(0));
    case BinaryOp::Gt:
      return Env.constrainDiff(RV->name(), LV->name(), Bound(-1));
    case BinaryOp::Ge:
      return Env.constrainDiff(RV->name(), LV->name(), Bound(0));
    case BinaryOp::Eq:
      return Env.constrainDiff(LV->name(), RV->name(), Bound(0)) &&
             Env.constrainDiff(RV->name(), LV->name(), Bound(0));
    case BinaryOp::Ne:
      break; // No zone refinement; fall through to the unary restricts.
    default:
      break;
    }
  }

  // `x - y op e` (either side): restrict the difference interval and
  // feed the refined bounds back as difference constraints.
  auto ConstrainDiffTo = [&Env](const DiffForm &D, const Interval &Refined) {
    if (Refined.isBot())
      return false;
    if (!Env.constrainDiff(D.X, D.Y, Refined.hi()))
      return false;
    return Env.constrainDiff(D.Y, D.X, -Refined.lo());
  };
  if (std::optional<DiffForm> D = matchDiff(Lhs, Ctx)) {
    Interval Refined =
        restrictByComparison(Op, Env.diffBounds(D->X, D->Y), R);
    if (!ConstrainDiffTo(*D, Refined))
      return false;
  }
  if (std::optional<DiffForm> D = matchDiff(Rhs, Ctx)) {
    Interval Refined = restrictByComparison(
        mirrorComparison(Op), Env.diffBounds(D->X, D->Y), L);
    if (!ConstrainDiffTo(*D, Refined))
      return false;
  }

  // Infeasible outright at the interval level?
  Interval Outcome = compareIntervals(Op, L, R);
  if (Outcome.isConstant() && Outcome.constantValue() == 0)
    return false;

  // Unary refinement of variable operands (locals only), as in the
  // interval transfer.
  if (LLocal) {
    Interval Refined = restrictByComparison(Op, L, R);
    if (Refined.isBot() || !Env.constrainVar(LV->name(), Refined))
      return false;
  }
  if (RLocal) {
    Interval Refined = restrictByComparison(mirrorComparison(Op), R, L);
    if (Refined.isBot() || !Env.constrainVar(RV->name(), Refined))
      return false;
  }
  return true;
}

/// Condition refinement over a closed environment (kept closed).
bool refineRel(RelEnv &Env, const Expr &Cond, bool Positive,
               const EvalContext &Ctx) {
  if (const auto *U = dyn_cast<UnaryExpr>(&Cond)) {
    if (U->op() == UnaryOp::Not)
      return refineRel(Env, U->operand(), !Positive, Ctx);
  }
  if (const auto *B = dyn_cast<BinaryExpr>(&Cond)) {
    bool IsConjunction = (B->op() == BinaryOp::LAnd && Positive) ||
                         (B->op() == BinaryOp::LOr && !Positive);
    bool IsDisjunction = (B->op() == BinaryOp::LOr && Positive) ||
                         (B->op() == BinaryOp::LAnd && !Positive);
    bool OperandPolarity = Positive;
    if (IsConjunction && B->op() == BinaryOp::LOr)
      OperandPolarity = false; // !(a||b) = !a && !b.
    if (IsDisjunction && B->op() == BinaryOp::LAnd)
      OperandPolarity = false; // !(a&&b) = !a || !b.
    if (IsConjunction) {
      return refineRel(Env, B->lhs(), OperandPolarity, Ctx) &&
             refineRel(Env, B->rhs(), OperandPolarity, Ctx);
    }
    if (IsDisjunction) {
      RelEnv Left = Env;
      RelEnv Right = Env;
      bool LeftOk = refineRel(Left, B->lhs(), OperandPolarity, Ctx);
      bool RightOk = refineRel(Right, B->rhs(), OperandPolarity, Ctx);
      if (!LeftOk && !RightOk)
        return false;
      Env = LeftOk && RightOk ? Left.join(Right) : (LeftOk ? Left : Right);
      Env = Env.closedForm();
      return true;
    }
    if (isComparison(B->op())) {
      BinaryOp Op = Positive ? B->op() : negateComparison(B->op());
      return refineCompareRel(Env, Op, B->lhs(), B->rhs(), Ctx);
    }
    // Fall through: arithmetic used as a truth value.
  }

  Interval V = evalRel(Cond, Env, Ctx);
  AbsTruth T = truthOf(V);
  if (Positive) {
    if (!T.CanBeTrue)
      return false;
    if (const auto *Var = dyn_cast<VarRef>(&Cond)) {
      if (!Ctx.isGlobal(Var->name())) {
        Interval Refined = V.restrictNotEqual(Interval::constant(0));
        if (Refined.isBot() || !Env.constrainVar(Var->name(), Refined))
          return false;
      }
    }
    return true;
  }
  if (!T.CanBeFalse)
    return false;
  if (const auto *Var = dyn_cast<VarRef>(&Cond)) {
    if (!Ctx.isGlobal(Var->name()) &&
        !Env.constrainVar(Var->name(), Interval::constant(0)))
      return false;
  }
  return true;
}

} // namespace

Interval warrow::evalExpr(const Expr &E, const RelEnv &Env,
                          const EvalContext &Ctx) {
  return evalRel(E, Env.closedForm(), Ctx);
}

bool warrow::refineByCond(RelEnv &Env, const Expr &Cond, bool Positive,
                          const EvalContext &Ctx) {
  RelEnv Closed = Env.closedForm();
  if (!refineRel(Closed, Cond, Positive, Ctx))
    return false;
  Env = std::move(Closed);
  return true;
}

RelBasicEffect warrow::applyBasicAction(const Action &Act, const RelEnv &Pre,
                                        const EvalContext &Ctx) {
  RelBasicEffect Effect;
  RelEnv Env = Pre.closedForm();
  switch (Act.K) {
  case Action::Kind::Skip:
    Effect.Post = std::move(Env);
    return Effect;
  case Action::Kind::DeclScalar:
  case Action::Kind::DeclArray:
    Env.set(Act.Lhs, Interval::constant(0)); // Declarations zero-init.
    Effect.Post = std::move(Env);
    return Effect;
  case Action::Kind::Assign: {
    if (!Ctx.isGlobal(Act.Lhs)) {
      // Exactly representable assignments keep the relation: x = y + c.
      if (std::optional<AffineForm> Form = matchAffine(*Act.Value, Ctx)) {
        // A still-bottom global cannot occur here (locals only), so the
        // relational path never needs the bottom escape below.
        if (Form->Var == Act.Lhs)
          Env.assignShift(Act.Lhs, Form->Offset);
        else
          Env.assignDiff(Act.Lhs, Form->Var, Form->Offset);
        Effect.Post = std::move(Env);
        return Effect;
      }
    }
    Interval Value = evalRel(*Act.Value, Env, Ctx);
    if (Value.isBot())
      return Effect; // Unreachable (reads a still-bottom global).
    if (Ctx.isGlobal(Act.Lhs)) {
      Effect.GlobalWrites.push_back({Act.Lhs, Value});
      Effect.Post = std::move(Env);
      return Effect;
    }
    Env.set(Act.Lhs, Value); // Interval fallback: forget relations.
    Effect.Post = std::move(Env);
    return Effect;
  }
  case Action::Kind::Store: {
    Interval Index = evalRel(*Act.Index, Env, Ctx);
    Interval Value = evalRel(*Act.Value, Env, Ctx);
    if (Index.isBot() || Value.isBot())
      return Effect;
    if (Ctx.isGlobal(Act.Lhs)) {
      Effect.GlobalWrites.push_back({Act.Lhs, Value});
      Effect.Post = std::move(Env);
      return Effect;
    }
    // Weak update into the smashed local array (unary-only tracking).
    Env.set(Act.Lhs, Env.get(Act.Lhs).join(Value));
    Effect.Post = std::move(Env);
    return Effect;
  }
  case Action::Kind::Guard:
  case Action::Kind::Assert: {
    // Asserts refine like positive guards: the checker reports the alarm
    // (bounds.cpp); downstream code assumes the asserted fact.
    if (refineRel(Env, *Act.Value, Act.Positive, Ctx))
      Effect.Post = std::move(Env);
    return Effect;
  }
  case Action::Kind::Input: {
    if (Ctx.isGlobal(Act.Lhs)) {
      Effect.GlobalWrites.push_back({Act.Lhs, Interval::top()});
      Effect.Post = std::move(Env);
      return Effect;
    }
    Env.forget(Act.Lhs);
    Effect.Post = std::move(Env);
    return Effect;
  }
  case Action::Kind::Lock:
  case Action::Kind::Unlock:
    Effect.Post = std::move(Env);
    return Effect;
  case Action::Kind::Call:
  case Action::Kind::Spawn:
    assert(false && "call/spawn actions are handled by the driver");
    return Effect;
  }
  return Effect;
}
