//===- analysis/absvalue.cpp - Solver value domain ----------------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/absvalue.h"

#include "support/hash.h"

using namespace warrow;

bool AbsValue::leq(const AbsValue &Other) const {
  if (isBot())
    return true;
  if (Other.isBot())
    return false;
  assert(K == Other.K && "comparing values of different kinds");
  if (isEnv())
    return EnvValue.leq(Other.EnvValue);
  if (isRel())
    return RelValue.leq(Other.RelValue);
  return ItvValue.leq(Other.ItvValue);
}

AbsValue AbsValue::join(const AbsValue &Other) const {
  if (isBot())
    return Other;
  if (Other.isBot())
    return *this;
  assert(K == Other.K && "joining values of different kinds");
  if (isEnv())
    return env(EnvValue.join(Other.EnvValue));
  if (isRel())
    return rel(RelValue.join(Other.RelValue));
  return itv(ItvValue.join(Other.ItvValue));
}

AbsValue AbsValue::widen(const AbsValue &Other) const {
  if (isBot())
    return Other;
  if (Other.isBot())
    return *this;
  assert(K == Other.K && "widening values of different kinds");
  if (isEnv())
    return env(EnvValue.widen(Other.EnvValue));
  if (isRel())
    return rel(RelValue.widen(Other.RelValue));
  return itv(ItvValue.widen(Other.ItvValue));
}

AbsValue
AbsValue::widenWithThresholds(const AbsValue &Other,
                              const std::vector<int64_t> &Thresholds) const {
  if (isBot())
    return Other;
  if (Other.isBot())
    return *this;
  assert(K == Other.K && "widening values of different kinds");
  if (isEnv())
    return env(EnvValue.widenWithThresholds(Other.EnvValue, Thresholds));
  if (isRel())
    return rel(RelValue.widenWithThresholds(Other.RelValue, Thresholds));
  return itv(ItvValue.widenWithThresholds(Other.ItvValue, Thresholds));
}

AbsValue AbsValue::narrow(const AbsValue &Other) const {
  // Precondition Other ⊑ *this; narrowing to unreachable is legal.
  if (isBot() || Other.isBot())
    return Other;
  assert(K == Other.K && "narrowing values of different kinds");
  if (isEnv())
    return env(EnvValue.narrow(Other.EnvValue));
  if (isRel())
    return rel(RelValue.narrow(Other.RelValue));
  return itv(ItvValue.narrow(Other.ItvValue));
}

bool AbsValue::operator==(const AbsValue &Other) const {
  if (K != Other.K)
    return false;
  if (isEnv())
    return EnvValue == Other.EnvValue;
  if (isRel())
    return RelValue == Other.RelValue;
  if (isItv())
    return ItvValue == Other.ItvValue;
  return true; // Both bottom.
}

std::string AbsValue::str(const Interner &Symbols) const {
  if (isBot())
    return "unreachable";
  if (isEnv())
    return EnvValue.str(Symbols);
  if (isRel())
    return RelValue.str(Symbols);
  return ItvValue.str();
}

std::string AbsValue::str() const {
  if (isBot())
    return "unreachable";
  if (isItv())
    return ItvValue.str();
  if (isRel())
    return "rel(" + std::to_string(RelValue.size()) + " vars)";
  std::string Out = "env(" + std::to_string(EnvValue.size()) + " vars)";
  return Out;
}

size_t AbsValue::hashValue() const {
  if (isBot())
    return 0x0b;
  if (isEnv())
    return hashAll(static_cast<int>(K), EnvValue.hashValue());
  if (isRel())
    return hashAll(static_cast<int>(K), RelValue.hashValue());
  return hashAll(static_cast<int>(K), ItvValue.hashValue());
}
