//===- analysis/rel_env.h - Relational (zones) environments -----*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Relational abstract environments over the zones domain: a sorted set
/// of constrained local variables plus a difference-bound matrix
/// (lattice/dbm.h) over them. Unconstrained variables are absent — the
/// empty environment is top, exactly like `AbsEnv` — and the environment
/// is never infeasible (unreachability is `AbsValue::bot`, one level up).
///
/// Representation mirrors `AbsEnv`: a copy-on-write handle over
/// hash-consed nodes (`RelPool`, one arena per thread), frozen at the
/// solver choke point (`AbsValue::rel`), so σ-stability stays a pointer
/// compare even though elements are O(n²).
///
/// Closure discipline (see dbm.h): every environment entering the solver
/// is normalized, and every operation that needs canonical entries
/// (`leq`, `join`, reads) closes on demand; *widening results are stored
/// unclosed* — re-closing them would break the termination argument —
/// and lazily re-closed by the next consumer.
///
/// The relational transfer functions for the mini-C frontend live here
/// too, as overloads of the interval layer's names (`evalExpr`,
/// `refineByCond`, `applyBasicAction`) so the interprocedural driver can
/// be generic over the domain. Precisely representable forms
/// (`x = y + c`, `x - y <= c` guards) become DBM constraints; everything
/// else falls back to interval evaluation of the closed matrix's unary
/// bounds.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_ANALYSIS_REL_ENV_H
#define WARROW_ANALYSIS_REL_ENV_H

#include "analysis/transfer.h"
#include "lattice/dbm.h"
#include "lattice/hashcons.h"
#include "support/hash.h"
#include "support/interner.h"

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace warrow {

/// Interned contents of a relational environment: the sorted constrained
/// variables and the DBM over them (matrix index i+1 is Vars[i]; index 0
/// is the zero variable). The DBM's closed flag is a cached property of
/// the entries and deliberately excluded from equality (Dbm::operator==
/// compares entries only), so closed and not-yet-reclosed copies of the
/// same matrix intern to one node.
struct RelData {
  std::vector<Symbol> Vars;
  Dbm Matrix{0};

  bool operator==(const RelData &Other) const {
    return Vars == Other.Vars && Matrix == Other.Matrix;
  }
};

struct RelDataHash {
  size_t operator()(const RelData &D) const {
    size_t Seed = D.Vars.size();
    for (Symbol S : D.Vars)
      hashCombine(Seed, S);
    hashCombine(Seed, D.Matrix.hashValue());
    return Seed;
  }
};

using RelRef = ConsRef<RelData>;

/// Thread-local interning arena for relational environments (the zones
/// counterpart of EnvPool).
class RelPool {
public:
  static RelPool &local() {
    static thread_local RelPool Pool;
    return Pool;
  }

  RelRef intern(RelRef Node) { return Arena.intern(std::move(Node)); }
  RelRef intern(RelData &&Data) { return Arena.intern(std::move(Data)); }

  size_t distinctEnvs() const { return Arena.size(); }
  uint64_t internHits() const { return Arena.hits(); }
  uint64_t internMisses() const { return Arena.misses(); }

private:
  HashConsArena<RelData, RelDataHash> Arena;
};

/// Zones environment over interned symbols; absent symbols are top.
class RelEnv {
public:
  RelEnv() = default;

  /// The top environment (no constraints on any variable).
  static RelEnv top() { return RelEnv(); }

  /// Unary bounds of \p Name (top when untracked). Never bottom. Closes
  /// lazily when the stored matrix is unclosed.
  Interval get(Symbol Name) const;
  /// Bounds of `X - Y` ([-inf,+inf] when untracked; exact difference
  /// bounds from the closed matrix otherwise).
  Interval diffBounds(Symbol X, Symbol Y) const;

  /// Strong update: forgets \p Name's constraints, then bounds it to
  /// \p Value (top drops the variable). \p Value must be non-empty.
  void set(Symbol Name, const Interval &Value);
  /// Drops every constraint mentioning \p Name.
  void forget(Symbol Name);
  /// `X = X + C`: shifts every constraint on X by C (exact, relational).
  void assignShift(Symbol X, int64_t C);
  /// `X = Y + C` with X != Y: X's old constraints are forgotten and the
  /// exact relation X - Y = C is added (X inherits Y's relations via
  /// incremental closure).
  void assignDiff(Symbol X, Symbol Y, int64_t C);
  /// Adds the constraint `X - Y <= C`. Returns false when the result is
  /// infeasible (environment left unspecified).
  bool constrainDiff(Symbol X, Symbol Y, Bound C);
  /// Meets \p Name's unary bounds with \p Value; false when infeasible.
  bool constrainVar(Symbol Name, const Interval &Value);

  bool isTop() const { return !Node; }
  /// Number of constrained variables.
  size_t size() const { return Node ? Node->Vars.size() : 0; }
  const std::vector<Symbol> &vars() const;

  /// Rebuilds an environment from its raw representation (snapshot
  /// deserialization and cross-program symbol remapping): \p Vars sorted
  /// ascending with matrix index i+1 = Vars[i]. Normalizes exactly like
  /// the internal constructor, so `fromRaw(E.vars(), E.matrix()) == E`.
  static RelEnv fromRaw(std::vector<Symbol> Vars, Dbm Matrix);
  /// The stored matrix (possibly unclosed — see the closure discipline);
  /// a dimension-1 top matrix when the environment is top.
  const Dbm &matrix() const;

  /// A semantically equal environment whose matrix is in closed form
  /// (returns *this unchanged when already closed). Reads and precision-
  /// sensitive consumers go through this once, then use `get` freely.
  RelEnv closedForm() const;

  bool leq(const RelEnv &Other) const;
  bool operator==(const RelEnv &Other) const;

  RelEnv join(const RelEnv &Other) const;
  RelEnv widen(const RelEnv &Other) const;
  RelEnv narrow(const RelEnv &Other) const;
  RelEnv widenWithThresholds(const RelEnv &Other,
                             const std::vector<int64_t> &Thresholds) const;

  /// Normalizes (drops unconstrained variables) and interns into the
  /// thread-local pool. Idempotent; called at the solver choke point
  /// (AbsValue::rel).
  void freeze();
  bool isFrozen() const { return !Node || Node.frozen(); }
  const void *nodeId() const { return Node.get(); }

  /// "{x-y<=0, x<=7, ...}" using the interner for names.
  std::string str(const Interner &Symbols) const;

  size_t hashValue() const;

private:
  explicit RelEnv(RelRef N) : Node(std::move(N)) {}
  /// Normalizes (drops unconstrained vars; empty → top). Does not intern.
  static RelEnv fromData(RelData &&Data);
  /// Copy-on-write access: clones the node when shared or frozen.
  RelData &mutableData();
  /// Matrix index of \p Name (0 when untracked; tracked vars are >= 1).
  size_t indexOf(Symbol Name) const;
  /// Matrix index of \p Name, growing the matrix if needed (mutating).
  size_t ensureVar(Symbol Name);
  /// Embeds this environment over the union variable set \p UnionVars
  /// (sorted); preserves closedness.
  RelData embed(const std::vector<Symbol> &UnionVars) const;
  /// Sorted union of both sides' variable sets.
  static std::vector<Symbol> unionVars(const RelEnv &A, const RelEnv &B);

  /// Null iff top; otherwise Vars non-empty after normalization.
  RelRef Node;
};

// --- Relational transfer functions (zones mirror of transfer.h) ----------

/// Abstract value of \p E under \p Env. Difference expressions `x - y`
/// over tracked locals read the closed matrix directly; every other
/// operator uses interval arithmetic over unary bounds.
Interval evalExpr(const Expr &E, const RelEnv &Env, const EvalContext &Ctx);

/// Refines \p Env under truth(Cond) == Positive. Comparisons of the
/// forms `x op y`, `x op e`, and `x - y op e` become DBM constraints;
/// returns false when the condition is infeasible.
bool refineByCond(RelEnv &Env, const Expr &Cond, bool Positive,
                  const EvalContext &Ctx);

/// Result of a non-call action over zones (field names match BasicEffect
/// so the interprocedural driver templates over the domain).
struct RelBasicEffect {
  std::optional<RelEnv> Post;
  std::vector<std::pair<Symbol, Interval>> GlobalWrites;
};

/// Applies a Skip/Decl*/Assign/Store/Guard/Assert/Input action. `Call`
/// actions are the interprocedural driver's job (asserted here).
RelBasicEffect applyBasicAction(const Action &Act, const RelEnv &Pre,
                                const EvalContext &Ctx);

} // namespace warrow

template <> struct std::hash<warrow::RelEnv> {
  size_t operator()(const warrow::RelEnv &E) const { return E.hashValue(); }
};

#endif // WARROW_ANALYSIS_REL_ENV_H
