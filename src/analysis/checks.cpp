//===- analysis/checks.cpp - Program checkers over analysis results ------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/checks.h"

#include "analysis/transfer.h"
#include "lang/sema.h"
#include "support/casting.h"

#include <algorithm>
#include <set>
#include <unordered_map>

using namespace warrow;

std::string CheckFinding::str(const Program &P) const {
  std::string Out = P.Symbols.spelling(P.Functions[Func]->Name);
  Out += ":" + std::to_string(Line) + ": ";
  switch (K) {
  case Kind::DivByZero:
    Out += Definite ? "error: " : "warning: ";
    break;
  case Kind::ArrayOutOfBounds:
    Out += Definite ? "error: " : "warning: ";
    break;
  case Kind::UnreachableCode:
    Out += "note: ";
    break;
  case Kind::DataRace:
    Out += "warning: ";
    break;
  }
  Out += Message;
  return Out;
}

namespace {

/// Walks an expression tree and reports division/array hazards under the
/// given environment.
class ExprChecker {
public:
  ExprChecker(const Program &P, const FuncVars &Vars, uint32_t Func,
              const EvalContext &Ctx, std::vector<CheckFinding> &Out)
      : P(P), Vars(Vars), Func(Func), Ctx(Ctx), Out(Out) {}

  void check(const Expr &E, const AbsEnv &Env, uint32_t Line) {
    switch (E.kind()) {
    case Expr::Kind::IntLit:
    case Expr::Kind::VarRef:
      return;
    case Expr::Kind::ArrayRef: {
      const auto *A = cast<ArrayRef>(&E);
      check(A->index(), Env, Line);
      checkIndex(A->name(), A->index(), Env, Line);
      return;
    }
    case Expr::Kind::Unary:
      check(cast<UnaryExpr>(&E)->operand(), Env, Line);
      return;
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(&E);
      check(B->lhs(), Env, Line);
      check(B->rhs(), Env, Line);
      if (B->op() == BinaryOp::Div || B->op() == BinaryOp::Rem) {
        Interval Divisor = evalExpr(B->rhs(), Env, Ctx);
        if (Divisor.isBot())
          return; // Operand infeasible: nothing executes here.
        if (Divisor.contains(0)) {
          bool Definite = Divisor.isConstant();
          Out.push_back(
              {CheckFinding::Kind::DivByZero, Func, Line, Definite,
               std::string(B->op() == BinaryOp::Div ? "division"
                                                    : "modulo") +
                   " by zero: divisor may be " + Divisor.str()});
        }
      }
      return;
    }
    case Expr::Kind::Call:
      for (const ExprPtr &Arg : cast<CallExpr>(&E)->args())
        check(*Arg, Env, Line);
      return;
    }
  }

  void checkIndex(Symbol Array, const Expr &Index, const AbsEnv &Env,
                  uint32_t Line) {
    int64_t Size = -1;
    if (const GlobalDecl *G = P.global(Array)) {
      Size = G->ArraySize;
    } else {
      auto It = Vars.Arrays.find(Array);
      if (It != Vars.Arrays.end())
        Size = It->second;
    }
    if (Size < 0)
      return;
    Interval Idx = evalExpr(Index, Env, Ctx);
    if (Idx.isBot())
      return;
    Interval InBounds = Interval::make(0, Size - 1);
    if (Idx.leq(InBounds))
      return;
    bool Definite = Idx.meet(InBounds).isBot();
    Out.push_back({CheckFinding::Kind::ArrayOutOfBounds, Func, Line,
                   Definite,
                   "index " + Idx.str() + " may leave " +
                       P.Symbols.spelling(Array) + "[0.." +
                       std::to_string(Size - 1) + "]"});
  }

private:
  const Program &P;
  const FuncVars &Vars;
  uint32_t Func;
  const EvalContext &Ctx;
  std::vector<CheckFinding> &Out;
};

} // namespace

std::vector<CheckFinding> warrow::runChecks(const Program &P,
                                            const ProgramCfg &Cfgs,
                                            const AnalysisResult &Result) {
  std::vector<CheckFinding> Findings;

  // Join point values over contexts once.
  std::unordered_map<uint64_t, AbsValue> ByPoint;
  for (const auto &[X, Value] : Result.Solution.Sigma) {
    if (!X.isPoint())
      continue;
    uint64_t Key = (static_cast<uint64_t>(X.Func) << 32) | X.Node;
    AbsValue &Slot = ByPoint[Key];
    Slot = Slot.join(Value);
  }

  EvalContext Ctx = EvalContext::forProgram(P, [&Result](Symbol G) {
    return Result.globalValue(G);
  });

  for (uint32_t Func = 0; Func < P.Functions.size(); ++Func) {
    const Cfg &G = Cfgs.cfgOf(Func);
    FuncVars Vars = collectFunctionVars(*P.Functions[Func]);
    ExprChecker Checker(P, Vars, Func, Ctx, Findings);

    // Expression hazards on edges leaving reachable points.
    for (const CfgEdge &E : G.edges()) {
      uint64_t Key = (static_cast<uint64_t>(Func) << 32) | E.From;
      auto It = ByPoint.find(Key);
      if (It == ByPoint.end() || It->second.isBot())
        continue; // Unreachable: execution never evaluates this edge.
      const AbsEnv &Env = It->second.envValueOrTop();
      uint32_t Line = G.lineOf(E.From);
      const Action &A = E.Act;
      if (A.Value)
        Checker.check(*A.Value, Env, Line);
      if (A.Index) {
        Checker.check(*A.Index, Env, Line);
        if (A.K == Action::Kind::Store)
          Checker.checkIndex(A.Lhs, *A.Index, Env, Line);
      }
      for (const Expr *Arg : A.Args)
        Checker.check(*Arg, Env, Line);
    }

    // Dead code: source lines all of whose nodes are unreachable. Only
    // lines belonging to explored (in-dom) points count — points outside
    // the solved domain were never demanded, not proven dead.
    std::unordered_map<uint32_t, bool> LineReachable; // Line -> any alive.
    std::set<uint32_t> LinesInDom;
    for (uint32_t Node = 0; Node < G.numNodes(); ++Node) {
      uint32_t Line = G.lineOf(Node);
      if (Line == 0)
        continue;
      // Skip structural islands (no incoming edges, e.g. the node a
      // `return` leaves behind): they are artifacts of lowering, not
      // program points of their line.
      if (Node != G.entry() && G.inEdges(Node).empty())
        continue;
      uint64_t Key = (static_cast<uint64_t>(Func) << 32) | Node;
      auto It = ByPoint.find(Key);
      if (It == ByPoint.end())
        continue;
      LinesInDom.insert(Line);
      if (!It->second.isBot())
        LineReachable[Line] = true;
    }
    for (uint32_t Line : LinesInDom)
      if (!LineReachable.count(Line))
        Findings.push_back({CheckFinding::Kind::UnreachableCode, Func, Line,
                            true, "code on this line is unreachable"});
  }

  std::sort(Findings.begin(), Findings.end(),
            [](const CheckFinding &A, const CheckFinding &B) {
              if (A.Func != B.Func)
                return A.Func < B.Func;
              if (A.Line != B.Line)
                return A.Line < B.Line;
              if (A.K != B.K)
                return static_cast<int>(A.K) < static_cast<int>(B.K);
              return A.Message < B.Message;
            });
  // Deduplicate: the same hazard surfaces once per CFG edge that
  // evaluates it (e.g. both polarities of a guard).
  Findings.erase(std::unique(Findings.begin(), Findings.end(),
                             [](const CheckFinding &A,
                                const CheckFinding &B) {
                               return A.Func == B.Func && A.Line == B.Line &&
                                      A.K == B.K && A.Message == B.Message;
                             }),
                 Findings.end());
  return Findings;
}

CheckSummary warrow::summarize(const std::vector<CheckFinding> &Findings) {
  CheckSummary S;
  for (const CheckFinding &F : Findings) {
    switch (F.K) {
    case CheckFinding::Kind::DivByZero:
      ++S.DivAlarms;
      break;
    case CheckFinding::Kind::ArrayOutOfBounds:
      ++S.BoundsAlarms;
      break;
    case CheckFinding::Kind::UnreachableCode:
      ++S.DeadLines;
      break;
    case CheckFinding::Kind::DataRace:
      ++S.RaceAlarms;
      break;
    }
  }
  return S;
}
