//===- analysis/intra.h - Intraprocedural dense analysis --------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A *dense* (finite, declared-dependency) formulation of the interval
/// analysis for a single call-free function: one unknown per CFG node.
/// This is the bridge between the language substrate and the paper's
/// Section 4 solvers (RR, W, SRR, SW, two-phase), which operate on
/// `DenseSystem`. The interprocedural experiments use the local solvers
/// instead; the dense form exists to
///   - cross-check solver implementations against each other,
///   - run the variable-ordering ablation (Bourdoncle's remark), and
///   - feed the solver micro-benchmarks with realistic loop systems.
///
/// Restrictions (by design): no calls (asserted); globals are read as
/// their declared initializer joined with top — i.e. top — and writes to
/// globals are ignored (the intraprocedural fragment has no global
/// unknowns). Workload functions used with this analysis are call-free
/// and global-free.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_ANALYSIS_INTRA_H
#define WARROW_ANALYSIS_INTRA_H

#include "analysis/absvalue.h"
#include "eqsys/dense_system.h"
#include "lang/cfg.h"

#include <cstdint>
#include <vector>

namespace warrow {

/// A dense interval-analysis equation system for one function.
struct IntraSystem {
  DenseSystem<AbsValue> System;
  /// Node id of each variable (VarOfNode[Order[i]] == i).
  std::vector<uint32_t> NodeOfVar;
  std::vector<Var> VarOfNode;
};

/// Builds the dense system for function \p FuncIndex of \p P over the
/// node ordering \p Order (a permutation of all node ids; variables are
/// numbered in that order). Use `Cfg::reversePostOrder()` for the
/// recommended ordering.
IntraSystem buildIntraSystem(const Program &P, const ProgramCfg &Cfgs,
                             size_t FuncIndex,
                             const std::vector<uint32_t> &Order);

} // namespace warrow

#endif // WARROW_ANALYSIS_INTRA_H
