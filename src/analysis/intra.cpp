//===- analysis/intra.cpp - Intraprocedural dense analysis --------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/intra.h"

#include "analysis/transfer.h"

#include <cassert>

using namespace warrow;

IntraSystem warrow::buildIntraSystem(const Program &P, const ProgramCfg &Cfgs,
                                     size_t FuncIndex,
                                     const std::vector<uint32_t> &Order) {
  const Cfg &G = Cfgs.cfgOf(FuncIndex);
  assert(Order.size() == G.numNodes() && "ordering must cover all nodes");

  IntraSystem IS;
  IS.NodeOfVar = Order;
  IS.VarOfNode.assign(G.numNodes(), 0);

  for (uint32_t Node : Order) {
    Var X = IS.System.addVar("n" + std::to_string(Node));
    IS.VarOfNode[Node] = X;
  }

  for (size_t Position = 0; Position < Order.size(); ++Position) {
    uint32_t Node = Order[Position];
    Var X = IS.VarOfNode[Node];

    std::vector<Var> Deps;
    for (uint32_t EdgeId : G.inEdges(Node))
      Deps.push_back(IS.VarOfNode[G.edge(EdgeId).From]);

    // The right-hand side captures the program and CFG by reference (both
    // outlive the system) and a copy of the in-edge variable indices so
    // the system stays self-contained when IntraSystem is moved.
    std::vector<std::pair<uint32_t, Var>> InEdgeVars;
    for (uint32_t EdgeId : G.inEdges(Node))
      InEdgeVars.push_back({EdgeId, IS.VarOfNode[G.edge(EdgeId).From]});

    IS.System.define(
        X,
        [&P, &G, Node, InEdgeVars](const DenseSystem<AbsValue>::GetFn &Get)
            -> AbsValue {
          EvalContext Ctx = EvalContext::forProgram(
              P, [](Symbol) { return Interval::top(); });

          if (Node == G.entry())
            return AbsValue::env(AbsEnv::top());

          AbsValue Acc = AbsValue::bot();
          for (const auto &[EdgeId, PreVar] : InEdgeVars) {
            const CfgEdge &E = G.edge(EdgeId);
            assert(E.Act.K != Action::Kind::Call &&
                   E.Act.K != Action::Kind::Spawn &&
                   "intraprocedural systems are call/spawn-free");
            AbsValue Pre = Get(PreVar);
            if (Pre.isBot())
              continue;
            BasicEffect Eff = applyBasicAction(E.Act, Pre.envValue(), Ctx);
            // Global writes are dropped in the intraprocedural fragment.
            if (Eff.Post)
              Acc = Acc.join(AbsValue::env(std::move(*Eff.Post)));
          }
          return Acc;
        },
        std::move(Deps));
  }
  return IS;
}
