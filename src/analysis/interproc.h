//===- analysis/interproc.h - Interprocedural analysis ----------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Context-sensitive interprocedural interval analysis with flow-
/// insensitive globals, formulated as a side-effecting constraint system
/// (the Goblint setting of the paper's Sections 6 and 7):
///
///  - Unknowns are (function, CFG node, context) triples valued in
///    abstract environments, plus one interval-valued unknown per global.
///  - The right-hand side of a point joins the transformed environments
///    of its incoming edges. Call edges *side-effect* the callee entry
///    with the bound parameter environment and read the callee exit.
///  - Writes to globals are side effects onto the global's unknown;
///    reads query it. Flow-insensitivity and the multi-contributor
///    narrowing problem (Example 8) arise exactly as in the paper.
///  - A context is the tuple of *flat-constant* abstractions of the
///    actual parameters — the analysis-relevant analogue of Table 1's
///    "calling context includes all non-interval values of locals".
///    Context-insensitive mode uses a single shared context. Contexts are
///    capped per function (`MaxContextsPerFunction` "context gas"); past
///    the cap calls collapse onto the all-top context, keeping the
///    encountered unknowns finite even for adversarial programs.
///
/// The solvers compared in the experiments:
///    `Warrow`    SLR+ with the ⊟ operator (the paper's contribution),
///    `WidenOnly` SLR+ with plain ▽ (Table 1's baseline),
///    `TwoPhase`  ▽-phase then △-sweeps with frozen globals (Figure 7's
///                baseline; only sound for context-insensitive mode).
///    `TwoPhaseLocalized`  the same baseline with a localized-widening
///                ascending phase — a new strategy×operator combination
///                made expressible by the engine layering.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_ANALYSIS_INTERPROC_H
#define WARROW_ANALYSIS_INTERPROC_H

#include "analysis/absvalue.h"
#include "eqsys/local_system.h"
#include "eqsys/verify.h"
#include "lang/cfg.h"
#include "lattice/flat.h"
#include "solvers/stats.h"
#include "support/hash.h"

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace warrow {

/// An unknown of the interprocedural constraint system.
struct AnalysisVar {
  enum class Kind : uint8_t { Point, Global };

  Kind K = Kind::Point;
  uint32_t Func = 0; ///< Function index (Point).
  uint32_t Node = 0; ///< CFG node (Point).
  uint32_t Ctx = 0;  ///< Context id (Point).
  Symbol Glob = 0;   ///< Global symbol (Global).

  static AnalysisVar point(uint32_t Func, uint32_t Node, uint32_t Ctx) {
    AnalysisVar V;
    V.K = Kind::Point;
    V.Func = Func;
    V.Node = Node;
    V.Ctx = Ctx;
    return V;
  }
  static AnalysisVar global(Symbol G) {
    AnalysisVar V;
    V.K = Kind::Global;
    V.Glob = G;
    return V;
  }

  bool isPoint() const { return K == Kind::Point; }
  bool isGlobal() const { return K == Kind::Global; }

  bool operator==(const AnalysisVar &O) const {
    return K == O.K && Func == O.Func && Node == O.Node && Ctx == O.Ctx &&
           Glob == O.Glob;
  }

  size_t hashValue() const {
    return hashAll(static_cast<uint32_t>(K), Func, Node, Ctx, Glob);
  }

  std::string str(const Program &P) const;
};

} // namespace warrow

// The hash specialization must precede any instantiation of containers
// keyed by AnalysisVar (e.g. PartialSolution below).
template <> struct std::hash<warrow::AnalysisVar> {
  size_t operator()(const warrow::AnalysisVar &V) const {
    return V.hashValue();
  }
};

namespace warrow {

/// One calling context: flat-constant abstraction of the actuals.
using ContextValues = std::vector<Flat<int64_t>>;

/// Interns contexts to dense ids. Internally synchronized — the parallel
/// solver evaluates right-hand sides (which intern contexts) from worker
/// threads. References returned by `values` stay valid for the table's
/// lifetime: storage is a deque, which never relocates elements.
class ContextTable {
public:
  ContextTable() = default;

  uint32_t intern(const ContextValues &Values);
  const ContextValues &values(uint32_t Id) const {
    std::lock_guard<std::mutex> Lock(M);
    return Contexts[Id];
  }
  /// All interned contexts in id order (snapshot capture).
  std::vector<ContextValues> exportAll() const;
  /// Replaces the table's contents with \p All, assigning ids 0..n-1 in
  /// order (snapshot restore; the exported order preserves ids). False —
  /// leaving the table cleared — when \p All contains duplicates, which
  /// would shift ids.
  bool importAll(const std::vector<ContextValues> &All);
  size_t size() const {
    std::lock_guard<std::mutex> Lock(M);
    return Contexts.size();
  }
  void clear() {
    std::lock_guard<std::mutex> Lock(M);
    Contexts.clear();
    Ids.clear();
  }

private:
  mutable std::mutex M;
  std::deque<ContextValues> Contexts;
  // Keyed by a canonical string encoding (Flat<> has no operator<).
  std::unordered_map<std::string, uint32_t> Ids;
};

/// Value domain carried by program points. Globals are interval-valued in
/// both: the flow-insensitive global unknowns cannot usefully hold
/// relations between locals of different activation records, so the zones
/// backend projects to intervals at the global boundary (the documented
/// fallback).
enum class AnalysisDomain : uint8_t {
  Interval, ///< Non-relational interval environments (AbsEnv).
  Zones,    ///< Difference-bound-matrix environments (RelEnv).
};

/// Parses a `--domain=` name ("interval" / "zones", case-insensitive);
/// nullopt when unknown.
std::optional<AnalysisDomain> domainForName(std::string_view Name);
/// Canonical spelling of a domain.
std::string_view domainName(AnalysisDomain D);

/// Knobs of the analysis.
struct AnalysisOptions {
  /// Value domain of program points; every solver strategy runs unchanged
  /// over either.
  AnalysisDomain Domain = AnalysisDomain::Interval;
  bool ContextSensitive = false;
  /// Context gas: calls beyond this many distinct contexts per function
  /// collapse onto the all-top context.
  unsigned MaxContextsPerFunction = 4096;
  /// Descending sweeps for the two-phase baseline.
  unsigned TwoPhaseNarrowRounds = 8;
  /// Use threshold widening (program constants) in the ⊟-solver — the
  /// operator-level refinement the paper calls complementary to ⊟.
  bool ThresholdWidening = false;
  /// Apply ⊟ only at dynamically detected widening points (unknowns on
  /// dependency cycles and side-effected unknowns); plain join elsewhere.
  bool LocalizedWidening = false;
  /// Degrading budget of the ⊟ operator (paper, end of Section 4): per
  /// unknown, the number of narrowing->widening phase switches before the
  /// unknown stops narrowing. Side-effecting systems are effectively
  /// non-monotonic (recorded contributions are stale samples), so a
  /// self-feeding global can alternate forever under pure ⊟; the budget
  /// guarantees termination and is generous enough never to trigger on
  /// the monotonic benchmark suites.
  unsigned WarrowMaxSwitches = 16;
  SolverOptions Solver;
};

/// Which solver strategy to run. The analysis-capable subset of the
/// engine's solver registry (engine/registry.h, CapAnalysis entries);
/// `solverChoiceForName` maps registry names to choices.
enum class SolverChoice {
  Warrow,
  WidenOnly,
  TwoPhase,
  TwoPhaseLocalized,
  ParallelWarrow, // Work-stealing parallel SLR+ with ⊟.
};

/// Resolves a registry solver name (case-insensitive) to the analysis
/// backend it selects; null when the name is unknown or the registered
/// solver is not analysis-capable.
std::optional<SolverChoice> solverChoiceForName(std::string_view Name);

/// Result of one analysis run.
struct AnalysisResult {
  PartialSolution<AnalysisVar, AbsValue> Solution;
  SolverStats Stats;
  double Seconds = 0;
  /// Unknowns encountered (== Solution.Sigma.size()).
  uint64_t NumUnknowns = 0;

  /// Abstract environment at (Func, Node, Ctx); bottom if unreachable or
  /// outside the solved domain.
  AbsValue at(uint32_t Func, uint32_t Node, uint32_t Ctx = 0) const {
    return Solution.value(AnalysisVar::point(Func, Node, Ctx));
  }
  /// Flow-insensitive value of a global.
  Interval globalValue(Symbol G) const {
    return Solution.value(AnalysisVar::global(G)).itvValue();
  }
};

struct AnalysisSnapshot;
struct IncrementalStats;

/// Builds and solves the interprocedural constraint system.
class InterprocAnalysis {
public:
  InterprocAnalysis(const Program &P, const ProgramCfg &Cfgs,
                    AnalysisOptions Options = {});

  /// Runs the chosen solver from scratch. When \p Capture is non-null the
  /// externalized solver state is captured into it after the solve
  /// (SLR+-based choices only — Warrow / WidenOnly / ParallelWarrow; the
  /// two-phase baselines have no resumable state and leave the snapshot
  /// empty apart from the program shapes).
  AnalysisResult run(SolverChoice Choice, AnalysisSnapshot *Capture = nullptr);

  /// Resumes from \p Snap instead of cold-solving (DESIGN §6i): diffs the
  /// snapshot's recorded shapes against this analysis' program, drops the
  /// unknowns of changed functions/globals, retracts their side-effect
  /// contributions, transitively *restarts* (resets to the initial value)
  /// every kept unknown reachable from the change through influence or
  /// contribution edges — plain destabilization is not enough, ⊟'s
  /// narrowing phase cannot shrink stale finite bounds — and hands the
  /// repacked state to the solver via restore(). \p OldP is the program
  /// the snapshot's ids refer to (pass this analysis' own program for a
  /// snapshot produced by parseAnalysisSnapshot). Falls back to a cold
  /// run() when the snapshot is empty, the domain/context mode differs,
  /// or \p Choice is not SLR+-based; \p Inc (optional) reports what
  /// happened either way.
  AnalysisResult runIncremental(SolverChoice Choice,
                                const AnalysisSnapshot &Snap,
                                const Program &OldP,
                                AnalysisSnapshot *Capture = nullptr,
                                IncrementalStats *Inc = nullptr);

  /// Independent soundness check: re-evaluates every right-hand side over
  /// the solved assignment and compares direct results and side-effect
  /// contributions against sigma (verify.h's side-effecting check). Call
  /// directly after an SLR+-based run() — the run's context table is
  /// reused.
  VerifyResult verifySolution(const AnalysisResult &Result);

  /// The interesting unknown: main's exit point in the initial context.
  AnalysisVar root() const;

  const AnalysisOptions &options() const { return Options; }

private:
  friend class InterprocRhs;

  const Program &P;
  const ProgramCfg &Cfgs;
  AnalysisOptions Options;
  uint32_t MainIdx = 0;
  Symbol RetSym = 0;

  // Mutable context state shared across a run (reset per run()).
  ContextTable Contexts;
  uint32_t InitialCtx = 0;
  std::unordered_map<uint32_t, std::unordered_set<uint32_t>> CtxPerFunc;
  // Guards the CtxPerFunc context-gas transaction — the parallel solver
  // runs contextFor from several workers.
  std::mutex CtxGasMutex;
};

} // namespace warrow

#endif // WARROW_ANALYSIS_INTERPROC_H
