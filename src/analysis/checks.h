//===- analysis/checks.h - Program checkers over analysis results -*- C++ -*-=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checkers that consume the interval analysis results to report
/// potential run-time errors — the "so what" of solver precision: a more
/// precise post solution produces fewer false alarms. Three checks:
///
///   - division/modulo whose divisor interval contains 0,
///   - array accesses whose index interval leaves the array bounds,
///   - program points proven unreachable (dead code).
///
/// Alarms are *may* warnings: soundness means every real error is
/// reported; precision means fewer spurious ones. The alarm-count bench
/// compares the solver strategies on exactly this metric. A fourth kind,
/// data races, is produced by the lockset analysis (analysis/races.h)
/// and funneled through the same finding/summary types.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_ANALYSIS_CHECKS_H
#define WARROW_ANALYSIS_CHECKS_H

#include "analysis/interproc.h"
#include "lang/cfg.h"

#include <cstdint>
#include <string>
#include <vector>

namespace warrow {

/// One checker finding.
struct CheckFinding {
  enum class Kind { DivByZero, ArrayOutOfBounds, UnreachableCode, DataRace };
  Kind K = Kind::DivByZero;
  uint32_t Func = 0;
  uint32_t Line = 0;
  /// True when the error definitely occurs on every execution reaching
  /// the point (e.g. divisor exactly [0,0]).
  bool Definite = false;
  std::string Message;

  std::string str(const Program &P) const;
};

/// Summary counters per kind.
struct CheckSummary {
  uint64_t DivAlarms = 0;
  uint64_t BoundsAlarms = 0;
  uint64_t DeadLines = 0;
  uint64_t RaceAlarms = 0;

  uint64_t total() const {
    return DivAlarms + BoundsAlarms + DeadLines + RaceAlarms;
  }
};

/// Runs all checks against \p Result (environments joined over contexts).
std::vector<CheckFinding> runChecks(const Program &P, const ProgramCfg &Cfgs,
                                    const AnalysisResult &Result);

/// Tallies findings by kind.
CheckSummary summarize(const std::vector<CheckFinding> &Findings);

} // namespace warrow

#endif // WARROW_ANALYSIS_CHECKS_H
