//===- analysis/races.cpp - Lockset-based data-race detection -----------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/races.h"

#include "analysis/transfer.h"
#include "engine/strategies/parallel_slr.h"
#include "lattice/combine.h"
#include "solvers/slr_plus.h"
#include "solvers/two_phase_local.h"
#include "support/casting.h"
#include "support/timer.h"

#include <algorithm>
#include <cassert>

using namespace warrow;

//===----------------------------------------------------------------------===//
// LockSet
//===----------------------------------------------------------------------===//

LockSet LockSet::of(std::vector<Symbol> Mutexes) {
  LockSet L;
  std::sort(Mutexes.begin(), Mutexes.end());
  Mutexes.erase(std::unique(Mutexes.begin(), Mutexes.end()), Mutexes.end());
  L.Locks = std::move(Mutexes);
  return L;
}

void LockSet::add(Symbol M) {
  auto It = std::lower_bound(Locks.begin(), Locks.end(), M);
  if (It == Locks.end() || *It != M)
    Locks.insert(It, M);
}

void LockSet::remove(Symbol M) {
  auto It = std::lower_bound(Locks.begin(), Locks.end(), M);
  if (It != Locks.end() && *It == M)
    Locks.erase(It);
}

bool LockSet::contains(Symbol M) const {
  return std::binary_search(Locks.begin(), Locks.end(), M);
}

bool LockSet::disjointWith(const LockSet &Other) const {
  auto AIt = Locks.begin();
  auto BIt = Other.Locks.begin();
  while (AIt != Locks.end() && BIt != Other.Locks.end()) {
    if (*AIt < *BIt)
      ++AIt;
    else if (*BIt < *AIt)
      ++BIt;
    else
      return false;
  }
  return true;
}

bool LockSet::leq(const LockSet &Other) const {
  // Must-ordering: lower = more locks held.
  return std::includes(Locks.begin(), Locks.end(), Other.Locks.begin(),
                       Other.Locks.end());
}

LockSet LockSet::join(const LockSet &Other) const {
  LockSet R;
  std::set_intersection(Locks.begin(), Locks.end(), Other.Locks.begin(),
                        Other.Locks.end(), std::back_inserter(R.Locks));
  return R;
}

std::string LockSet::str(const Interner &Symbols) const {
  std::string Out = "{";
  for (size_t I = 0; I < Locks.size(); ++I) {
    if (I)
      Out += ",";
    Out += Symbols.spelling(Locks[I]);
  }
  return Out + "}";
}

size_t LockSet::hashValue() const {
  size_t H = 0x15;
  for (Symbol M : Locks)
    hashCombine(H, std::hash<Symbol>()(M));
  return H;
}

//===----------------------------------------------------------------------===//
// RaceAccess / AccessSet
//===----------------------------------------------------------------------===//

bool RaceAccess::operator<(const RaceAccess &Other) const {
  auto Key = [](const RaceAccess &A) {
    return std::make_tuple(A.Glob, A.Func, A.Line, A.IsWrite, A.Multithreaded);
  };
  if (Key(*this) != Key(Other))
    return Key(*this) < Key(Other);
  return Locks.mutexes() < Other.Locks.mutexes();
}

std::string RaceAccess::str(const Program &P) const {
  std::string Out = IsWrite ? "write of " : "read of ";
  Out += P.Symbols.spelling(Glob);
  Out += " at " + P.Symbols.spelling(P.Functions[Func]->Name) + ":" +
         std::to_string(Line);
  Out += Multithreaded ? " [MT]" : " [ST]";
  Out += " holding " + Locks.str(P.Symbols);
  return Out;
}

void AccessSet::insert(RaceAccess A) {
  auto It = std::lower_bound(Accesses.begin(), Accesses.end(), A);
  if (It == Accesses.end() || !(*It == A))
    Accesses.insert(It, std::move(A));
}

void AccessSet::unionWith(const AccessSet &Other) {
  if (Other.Accesses.empty())
    return;
  std::vector<RaceAccess> Merged;
  Merged.reserve(Accesses.size() + Other.Accesses.size());
  std::set_union(Accesses.begin(), Accesses.end(), Other.Accesses.begin(),
                 Other.Accesses.end(), std::back_inserter(Merged));
  Accesses = std::move(Merged);
}

bool AccessSet::leq(const AccessSet &Other) const {
  return std::includes(Other.Accesses.begin(), Other.Accesses.end(),
                       Accesses.begin(), Accesses.end());
}

AccessSet AccessSet::join(const AccessSet &Other) const {
  AccessSet R = *this;
  R.unionWith(Other);
  return R;
}

std::string AccessSet::str(const Program &P) const {
  std::string Out = "[";
  for (size_t I = 0; I < Accesses.size(); ++I) {
    if (I)
      Out += "; ";
    Out += Accesses[I].str(P);
  }
  return Out + "]";
}

//===----------------------------------------------------------------------===//
// RaceValue
//===----------------------------------------------------------------------===//

bool RaceValue::leq(const RaceValue &Other) const {
  if (isBot())
    return true;
  if (Other.isBot())
    return false;
  assert(K == Other.K && "comparing values of different kinds");
  switch (K) {
  case Kind::Point:
    return Env.leq(Other.Env) && Locks.leq(Other.Locks) &&
           (!Multithreaded || Other.Multithreaded);
  case Kind::Itv:
    return Itv.leq(Other.Itv);
  case Kind::Acc:
    return Accesses.leq(Other.Accesses);
  case Kind::Bot:
    break;
  }
  return true;
}

RaceValue RaceValue::join(const RaceValue &Other) const {
  if (isBot())
    return Other;
  if (Other.isBot())
    return *this;
  assert(K == Other.K && "joining values of different kinds");
  switch (K) {
  case Kind::Point:
    return point(Env.join(Other.Env), Locks.join(Other.Locks),
                 Multithreaded || Other.Multithreaded);
  case Kind::Itv:
    return itv(Itv.join(Other.Itv));
  case Kind::Acc:
    return acc(Accesses.join(Other.Accesses));
  case Kind::Bot:
    break;
  }
  return *this;
}

RaceValue RaceValue::widen(const RaceValue &Other) const {
  if (isBot())
    return Other;
  if (Other.isBot())
    return *this;
  assert(K == Other.K && "widening values of different kinds");
  switch (K) {
  case Kind::Point:
    // Locksets and the threading flag live in finite lattices (subsets of
    // the declared mutexes; a two-point flag), so their widening is the
    // plain join; only the environment needs the interval widening.
    return point(Env.widen(Other.Env), Locks.join(Other.Locks),
                 Multithreaded || Other.Multithreaded);
  case Kind::Itv:
    return itv(Itv.widen(Other.Itv));
  case Kind::Acc:
    // Access sets are finite (sites x encountered locksets), join suffices.
    return acc(Accesses.join(Other.Accesses));
  case Kind::Bot:
    break;
  }
  return *this;
}

RaceValue RaceValue::narrow(const RaceValue &Other) const {
  // Precondition Other ⊑ *this; narrowing to unreachable is legal.
  if (isBot() || Other.isBot())
    return Other;
  assert(K == Other.K && "narrowing values of different kinds");
  switch (K) {
  case Kind::Point:
    // The finite components simply adopt the (smaller) new value — this
    // is what lets ⊟ shed a spurious "multithreaded" bit or re-establish
    // a lockset once narrowed intervals refute a path.
    return point(Env.narrow(Other.Env), Other.Locks, Other.Multithreaded);
  case Kind::Itv:
    return itv(Itv.narrow(Other.Itv));
  case Kind::Acc:
    // Adopt the new (smaller) set: stale accesses disappear.
    return acc(Other.Accesses);
  case Kind::Bot:
    break;
  }
  return *this;
}

bool RaceValue::operator==(const RaceValue &Other) const {
  if (K != Other.K)
    return false;
  switch (K) {
  case Kind::Point:
    return Env == Other.Env && Locks == Other.Locks &&
           Multithreaded == Other.Multithreaded;
  case Kind::Itv:
    return Itv == Other.Itv;
  case Kind::Acc:
    return Accesses == Other.Accesses;
  case Kind::Bot:
    break;
  }
  return true; // Both bottom.
}

std::string RaceValue::str(const Interner &Symbols) const {
  switch (K) {
  case Kind::Bot:
    return "unreachable";
  case Kind::Point:
    return Env.str(Symbols) + " locks=" + Locks.str(Symbols) +
           (Multithreaded ? " MT" : " ST");
  case Kind::Itv:
    return Itv.str();
  case Kind::Acc:
    return "accesses(" + std::to_string(Accesses.size()) + ")";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// RaceVar
//===----------------------------------------------------------------------===//

std::string RaceVar::str(const Program &P) const {
  if (isGlobal())
    return "global:" + P.Symbols.spelling(Glob);
  if (isAccess())
    return "access:" + P.Symbols.spelling(Glob);
  std::string Out = P.Symbols.spelling(P.Functions[Func]->Name);
  Out += ":" + std::to_string(Node);
  Out += "@" + std::to_string(Ctx);
  return Out;
}

//===----------------------------------------------------------------------===//
// Right-hand sides
//===----------------------------------------------------------------------===//

namespace {

/// Collects the globals read by an expression (including smashed global
/// arrays; index expressions are recursed into).
void collectGlobalReads(const Expr &E, const Program &P,
                        std::vector<Symbol> &Out) {
  switch (E.kind()) {
  case Expr::Kind::IntLit:
    return;
  case Expr::Kind::VarRef: {
    Symbol Name = cast<VarRef>(&E)->name();
    if (P.isGlobal(Name))
      Out.push_back(Name);
    return;
  }
  case Expr::Kind::ArrayRef: {
    const auto *A = cast<ArrayRef>(&E);
    if (P.isGlobal(A->name()))
      Out.push_back(A->name());
    collectGlobalReads(A->index(), P, Out);
    return;
  }
  case Expr::Kind::Unary:
    collectGlobalReads(cast<UnaryExpr>(&E)->operand(), P, Out);
    return;
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(&E);
    collectGlobalReads(B->lhs(), P, Out);
    collectGlobalReads(B->rhs(), P, Out);
    return;
  }
  case Expr::Kind::Call:
    for (const ExprPtr &Arg : cast<CallExpr>(&E)->args())
      collectGlobalReads(*Arg, P, Out);
    return;
  }
}

/// The globals an action syntactically reads and writes. Guard edges
/// "read" their condition; call/spawn edges read their arguments; a call
/// binding its result to a global writes it.
struct ActionGlobals {
  std::vector<Symbol> Reads;
  std::vector<Symbol> Writes;
};

ActionGlobals globalsOf(const Action &Act, const Program &P) {
  ActionGlobals AG;
  if (Act.Value)
    collectGlobalReads(*Act.Value, P, AG.Reads);
  if (Act.Index)
    collectGlobalReads(*Act.Index, P, AG.Reads);
  for (const Expr *Arg : Act.Args)
    collectGlobalReads(*Arg, P, AG.Reads);
  switch (Act.K) {
  case Action::Kind::Assign:
  case Action::Kind::Store:
  case Action::Kind::Input:
  case Action::Kind::Call:
    if (Act.Lhs && P.isGlobal(Act.Lhs))
      AG.Writes.push_back(Act.Lhs);
    break;
  default:
    break;
  }
  return AG;
}

} // namespace

namespace warrow {

/// Builds the right-hand sides of the race constraint system. Mirrors
/// InterprocRhs with the lockset/threading product and the access-record
/// side effects layered on.
class RaceRhs {
public:
  RaceRhs(RaceAnalysis &A, const Program &P, const ProgramCfg &Cfgs)
      : A(A), P(P), Cfgs(Cfgs) {}

  using Get = SideEffectingSystem<RaceVar, RaceValue>::Get;
  using Side = SideEffectingSystem<RaceVar, RaceValue>::Side;

  RaceValue evalRhs(const RaceVar &X, const Get &GetFn, const Side &SideFn) {
    if (X.isGlobal())
      return globalBase(X.Glob);
    if (X.isAccess())
      return RaceValue::bot(); // Accumulator: value = join of contributions.

    const Cfg &G = Cfgs.cfgOf(X.Func);

    // Global-value and access contributions are accumulated over the
    // whole evaluation and flushed at the end — *including the bottom
    // values* of syntactically touched targets on edges that turned out
    // infeasible. Flushing bottom replaces this equation's stale per-
    // contributor cell sigma(x,z) in the solver, which is exactly how the
    // ⊟-iteration sheds accesses (and global writes) it first recorded
    // under widened bounds; a classical accumulate-only protocol would
    // keep them forever. Callee entries use the immediate running-join
    // protocol of interproc.cpp instead (the exit read must see the
    // freshly contributed parameters).
    std::unordered_map<RaceVar, RaceValue> Pending;
    auto Touch = [&Pending](const RaceVar &T) {
      Pending.try_emplace(T, RaceValue::bot());
    };
    auto Accumulate = [&Pending](const RaceVar &T, const RaceValue &V) {
      RaceValue &Slot = Pending[T];
      Slot = Slot.join(V);
    };
    std::unordered_map<RaceVar, RaceValue> EntryPending;
    auto ContributeEntry = [&EntryPending, &SideFn](const RaceVar &T,
                                                    const RaceValue &V) {
      RaceValue &Slot = EntryPending[T];
      RaceValue Joined = Slot.join(V);
      if (Joined == Slot)
        return;
      Slot = std::move(Joined);
      SideFn(T, Slot);
    };

    EvalContext Ctx = EvalContext::forProgram(P, [&GetFn](Symbol Name) {
      return GetFn(RaceVar::global(Name)).itvValue();
    });

    RaceValue Acc = RaceValue::bot();
    if (X.Node == G.entry()) {
      if (X.Func == A.MainIdx && X.Ctx == A.InitialCtx)
        // Program start: no locks held, single-threaded.
        Acc = RaceValue::point(AbsEnv::top(), LockSet::none(), false);
      // Other entries receive only side-effected parameter products.
    } else {
      for (uint32_t EdgeId : G.inEdges(X.Node)) {
        const CfgEdge &E = G.edge(EdgeId);
        ActionGlobals AG = globalsOf(E.Act, P);
        for (Symbol R : AG.Reads)
          Touch(RaceVar::access(R));
        for (Symbol W : AG.Writes) {
          Touch(RaceVar::access(W));
          Touch(RaceVar::global(W));
        }
        RaceValue Pre = GetFn(RaceVar::point(X.Func, E.From, X.Ctx));
        if (Pre.isBot())
          continue;
        processEdge(X, G, E, AG, Pre, Ctx, GetFn, ContributeEntry,
                    Accumulate, Acc);
      }
    }

    for (const auto &[T, V] : Pending)
      SideFn(T, V);
    return Acc;
  }

private:
  using EntryFn = std::function<void(const RaceVar &, const RaceValue &)>;
  using AccumulateFn = std::function<void(const RaceVar &, const RaceValue &)>;

  /// The base value of a global: its declared initializer.
  RaceValue globalBase(Symbol G) const {
    const GlobalDecl *Decl = P.global(G);
    assert(Decl && "global unknown for undeclared symbol");
    if (Decl->isArray())
      return RaceValue::itv(Interval::constant(0));
    return RaceValue::itv(Interval::constant(Decl->Init));
  }

  /// Context for a call with the given argument values (same policy as
  /// the interval analysis: flat-constant abstraction with context gas).
  uint32_t contextFor(uint32_t CalleeIdx, const std::vector<Interval> &Args) {
    if (!A.Options.ContextSensitive)
      return A.InitialCtx;
    ContextValues Values;
    Values.reserve(Args.size());
    for (const Interval &Arg : Args) {
      if (Arg.isConstant())
        Values.push_back(Flat<int64_t>::constant(Arg.constantValue()));
      else
        Values.push_back(Flat<int64_t>::top());
    }
    uint32_t Ctx = A.Contexts.intern(Values);
    // The gas transaction below must be atomic across workers.
    std::lock_guard<std::mutex> Lock(A.CtxGasMutex);
    auto &Seen = A.CtxPerFunc[CalleeIdx];
    if (Seen.count(Ctx))
      return Ctx;
    if (Seen.size() >= A.Options.MaxContextsPerFunction) {
      ContextValues Tops(Args.size(), Flat<int64_t>::top());
      uint32_t TopCtx = A.Contexts.intern(Tops);
      Seen.insert(TopCtx);
      return TopCtx;
    }
    Seen.insert(Ctx);
    return Ctx;
  }

  RaceAccess makeAccess(Symbol Glob, bool IsWrite, uint32_t Func,
                        uint32_t Line, const LockSet &Locks, bool MT) const {
    RaceAccess Rec;
    Rec.Glob = Glob;
    Rec.IsWrite = IsWrite;
    Rec.Multithreaded = MT;
    Rec.Func = Func;
    Rec.Line = Line;
    Rec.Locks = Locks;
    return Rec;
  }

  void recordAccess(const AccumulateFn &Accumulate, Symbol Glob, bool IsWrite,
                    uint32_t Func, uint32_t Line, const LockSet &Locks,
                    bool MT) {
    AccessSet S;
    S.insert(makeAccess(Glob, IsWrite, Func, Line, Locks, MT));
    Accumulate(RaceVar::access(Glob), RaceValue::acc(std::move(S)));
  }

  void processEdge(const RaceVar &X, const Cfg &G, const CfgEdge &E,
                   const ActionGlobals &AG, const RaceValue &Pre,
                   const EvalContext &Ctx, const Get &GetFn,
                   const EntryFn &ContributeEntry,
                   const AccumulateFn &Accumulate, RaceValue &Acc) {
    const AbsEnv &PreEnv = Pre.env();
    const LockSet &PreLocks = Pre.locks();
    bool MT = Pre.multithreaded();
    uint32_t Line = G.lineOf(E.From);

    // Operand evaluation happens before any transfer of control, so all
    // syntactic reads execute under the pre-state's lockset whenever the
    // source point is reachable.
    for (Symbol R : AG.Reads)
      recordAccess(Accumulate, R, /*IsWrite=*/false, X.Func, Line, PreLocks,
                   MT);

    switch (E.Act.K) {
    case Action::Kind::Lock: {
      LockSet Post = PreLocks;
      Post.add(E.Act.Lhs);
      Acc = Acc.join(RaceValue::point(PreEnv, std::move(Post), MT));
      return;
    }
    case Action::Kind::Unlock: {
      LockSet Post = PreLocks;
      Post.remove(E.Act.Lhs);
      Acc = Acc.join(RaceValue::point(PreEnv, std::move(Post), MT));
      return;
    }
    case Action::Kind::Call:
      applyCall(E.Act, PreEnv, PreLocks, MT, X.Func, Line, Ctx, GetFn,
                ContributeEntry, Accumulate, Acc);
      return;
    case Action::Kind::Spawn:
      applySpawn(E.Act, PreEnv, PreLocks, MT, Ctx, GetFn, ContributeEntry,
                 Acc);
      return;
    default:
      break;
    }

    // Plain write targets execute under the pre-state's lockset too
    // (lock/unlock are their own edges).
    for (Symbol W : AG.Writes)
      recordAccess(Accumulate, W, /*IsWrite=*/true, X.Func, Line, PreLocks,
                   MT);

    BasicEffect Eff = applyBasicAction(E.Act, PreEnv, Ctx);
    for (auto &[GlobalSym, Value] : Eff.GlobalWrites)
      Accumulate(RaceVar::global(GlobalSym), RaceValue::itv(Value));
    if (Eff.Post)
      Acc = Acc.join(
          RaceValue::point(std::move(*Eff.Post), PreLocks, MT));
  }

  void applyCall(const Action &Act, const AbsEnv &PreEnv,
                 const LockSet &PreLocks, bool MT, uint32_t CallerIdx,
                 uint32_t Line, const EvalContext &Ctx, const Get &GetFn,
                 const EntryFn &ContributeEntry,
                 const AccumulateFn &Accumulate, RaceValue &Acc) {
    size_t CalleeIdx = P.functionIndex(Act.Callee);
    assert(CalleeIdx < P.Functions.size() && "sema checked callee");
    const FuncDecl &Callee = *P.Functions[CalleeIdx];

    std::vector<Interval> Args;
    Args.reserve(Act.Args.size());
    for (const Expr *Arg : Act.Args) {
      Interval V = evalExpr(*Arg, PreEnv, Ctx);
      if (V.isBot())
        return; // Unreachable call.
      Args.push_back(V);
    }

    uint32_t CalleeCtx = contextFor(static_cast<uint32_t>(CalleeIdx), Args);

    AbsEnv ParamEnv;
    for (size_t I = 0; I < Args.size(); ++I) {
      Interval Bound = Args[I];
      if (A.Options.ContextSensitive) {
        const Flat<int64_t> &CtxVal = A.Contexts.values(CalleeCtx)[I];
        if (CtxVal.isConstant())
          Bound = Bound.meet(Interval::constant(CtxVal.constantValue()));
      }
      if (Bound.isBot())
        return; // Contradictory binding: unreachable.
      ParamEnv.set(Callee.Params[I], Bound);
    }
    // The callee inherits the caller's lockset and threading phase.
    ContributeEntry(RaceVar::point(static_cast<uint32_t>(CalleeIdx),
                                   Cfg::EntryNode, CalleeCtx),
                    RaceValue::point(std::move(ParamEnv), PreLocks, MT));

    RaceValue ExitVal = GetFn(RaceVar::point(
        static_cast<uint32_t>(CalleeIdx), Cfg::ExitNode, CalleeCtx));
    if (ExitVal.isBot())
      return; // Callee (in this context) never returns.
    Interval RetValue = ExitVal.env().get(A.RetSym);
    // The caller resumes under the callee's *exit* lockset and phase (the
    // callee may lock/unlock asymmetrically or spawn).
    const LockSet &PostLocks = ExitVal.locks();
    bool PostMT = ExitVal.multithreaded();

    AbsEnv Post = PreEnv;
    if (Act.Lhs) {
      if (P.isGlobal(Act.Lhs)) {
        Accumulate(RaceVar::global(Act.Lhs), RaceValue::itv(RetValue));
        // The result store happens after the call returns: record it
        // under the post-call lockset, not the one at the call site.
        recordAccess(Accumulate, Act.Lhs, /*IsWrite=*/true, CallerIdx, Line,
                     PostLocks, PostMT);
      } else {
        Post.set(Act.Lhs, RetValue);
      }
    }
    Acc = Acc.join(RaceValue::point(std::move(Post), PostLocks, PostMT));
  }

  /// `spawn f(args)`: contribute the bound parameters to f's entry with
  /// the empty lockset and the multithreaded flag set, force exploration
  /// of f's body (nothing else reads its unknowns under the demand-driven
  /// solver), and mark the spawner itself multithreaded from here on.
  void applySpawn(const Action &Act, const AbsEnv &PreEnv,
                  const LockSet &PreLocks, bool MT, const EvalContext &Ctx,
                  const Get &GetFn, const EntryFn &ContributeEntry,
                  RaceValue &Acc) {
    size_t CalleeIdx = P.functionIndex(Act.Callee);
    assert(CalleeIdx < P.Functions.size() && "sema checked spawn callee");
    const FuncDecl &Callee = *P.Functions[CalleeIdx];

    std::vector<Interval> Args;
    Args.reserve(Act.Args.size());
    for (const Expr *Arg : Act.Args) {
      Interval V = evalExpr(*Arg, PreEnv, Ctx);
      if (V.isBot())
        return; // Unreachable spawn.
      Args.push_back(V);
    }

    uint32_t CalleeCtx = contextFor(static_cast<uint32_t>(CalleeIdx), Args);

    AbsEnv ParamEnv;
    for (size_t I = 0; I < Args.size(); ++I) {
      Interval Bound = Args[I];
      if (A.Options.ContextSensitive) {
        const Flat<int64_t> &CtxVal = A.Contexts.values(CalleeCtx)[I];
        if (CtxVal.isConstant())
          Bound = Bound.meet(Interval::constant(CtxVal.constantValue()));
      }
      if (Bound.isBot())
        return;
      ParamEnv.set(Callee.Params[I], Bound);
    }
    // The new thread starts with no locks held and is multithreaded by
    // construction.
    ContributeEntry(RaceVar::point(static_cast<uint32_t>(CalleeIdx),
                                   Cfg::EntryNode, CalleeCtx),
                    RaceValue::point(std::move(ParamEnv), LockSet::none(),
                                     /*Multithreaded=*/true));

    (void)GetFn(RaceVar::point(static_cast<uint32_t>(CalleeIdx),
                               Cfg::ExitNode, CalleeCtx));

    // The spawner keeps its state but is multithreaded from now on.
    Acc = Acc.join(RaceValue::point(PreEnv, PreLocks, /*Multithreaded=*/true));
  }

  RaceAnalysis &A;
  const Program &P;
  const ProgramCfg &Cfgs;
};

} // namespace warrow

//===----------------------------------------------------------------------===//
// RaceAnalysis
//===----------------------------------------------------------------------===//

RaceAnalysis::RaceAnalysis(const Program &P, const ProgramCfg &Cfgs,
                           AnalysisOptions Options)
    : P(P), Cfgs(Cfgs), Options(Options) {
  Symbol MainSym = P.Symbols.lookup("main");
  MainIdx = static_cast<uint32_t>(P.functionIndex(MainSym));
  assert(MainIdx < P.Functions.size() && "program has main (sema)");
  RetSym = P.Symbols.lookup(ReturnValueName);
  assert(RetSym != 0 && "CFGs built before analysis (interns $ret)");
}

RaceVar RaceAnalysis::root() const {
  return RaceVar::point(MainIdx, Cfg::ExitNode, InitialCtx);
}

SideEffectingSystem<RaceVar, RaceValue>
RaceAnalysis::buildSystem(RaceRhs &Builder) {
  return SideEffectingSystem<RaceVar, RaceValue>(
      [&Builder](const RaceVar &X)
          -> SideEffectingSystem<RaceVar, RaceValue>::Rhs {
        return [&Builder, X](const RaceRhs::Get &GetFn,
                             const RaceRhs::Side &SideFn) {
          return Builder.evalRhs(X, GetFn, SideFn);
        };
      });
}

RaceAnalysisResult RaceAnalysis::run(SolverChoice Choice) {
  // Reset per-run context state.
  Contexts.clear();
  CtxPerFunc.clear();
  InitialCtx = Contexts.intern({}); // Id 0: the empty tuple.

  RaceRhs RhsBuilder(*this, P, Cfgs);
  SideEffectingSystem<RaceVar, RaceValue> System = buildSystem(RhsBuilder);

  RaceAnalysisResult Result;
  Timer Clock;
  switch (Choice) {
  case SolverChoice::Warrow: {
    // Threshold widening only refines the interval components; the plain
    // degrading ⊟ covers both configurations of the race product.
    SlrPlusSolver<RaceVar, RaceValue, DegradingWarrowCombine<RaceVar>> Solver(
        System, DegradingWarrowCombine<RaceVar>(Options.WarrowMaxSwitches),
        Options.Solver, Options.LocalizedWidening);
    Result.Solution = Solver.solveFor(root());
    break;
  }
  case SolverChoice::WidenOnly:
    Result.Solution =
        solveSLRPlus(System, root(), WidenCombine{}, Options.Solver);
    break;
  case SolverChoice::TwoPhase:
    Result.Solution = solveTwoPhaseSide(System, root(), Options.Solver,
                                        Options.TwoPhaseNarrowRounds);
    break;
  case SolverChoice::TwoPhaseLocalized:
    Result.Solution = engine::runTwoPhaseSide(
        System, root(), Options.Solver, Options.TwoPhaseNarrowRounds,
        /*LocalizedAscending=*/true);
    break;
  case SolverChoice::ParallelWarrow: {
    engine::ParallelSlrEngine<RaceVar, RaceValue,
                              DegradingWarrowCombine<RaceVar>>
        Solver(System,
               DegradingWarrowCombine<RaceVar>(Options.WarrowMaxSwitches),
               Options.Solver, Options.LocalizedWidening);
    Result.Solution = Solver.solveFor(root());
    break;
  }
  }
  Result.Seconds = Clock.seconds();
  Result.Stats = Result.Solution.Stats;
  Result.NumUnknowns = Result.Solution.Sigma.size();
  Result.Races = findRaces(P, Result);
  return Result;
}

VerifyResult RaceAnalysis::verify(const RaceAnalysisResult &Result) {
  RaceRhs RhsBuilder(*this, P, Cfgs);
  SideEffectingSystem<RaceVar, RaceValue> System = buildSystem(RhsBuilder);
  return verifySideEffectingSolution(System, Result.Solution);
}

//===----------------------------------------------------------------------===//
// Race extraction
//===----------------------------------------------------------------------===//

std::vector<RaceFinding> warrow::findRaces(const Program &P,
                                           const RaceAnalysisResult &Result) {
  std::vector<RaceFinding> Races;
  for (const GlobalDecl &G : P.Globals) {
    const AccessSet &S = Result.accessesOf(G.Name);
    const std::vector<RaceAccess> &All = S.accesses();
    // First witness in the set's deterministic (sorted) order: an MT
    // write paired with an MT access holding a disjoint lockset. The
    // pair may be a single unprotected write with itself.
    const RaceAccess *Write = nullptr;
    const RaceAccess *Other = nullptr;
    for (const RaceAccess &W : All) {
      if (!W.IsWrite || !W.Multithreaded)
        continue;
      for (const RaceAccess &O : All) {
        if (!O.Multithreaded)
          continue;
        if (!W.Locks.disjointWith(O.Locks))
          continue;
        Write = &W;
        Other = &O;
        break;
      }
      if (Write)
        break;
    }
    if (!Write)
      continue;
    RaceFinding F;
    F.Glob = G.Name;
    F.Write = *Write;
    F.Other = *Other;
    Races.push_back(std::move(F));
  }
  return Races;
}

std::string RaceFinding::str(const Program &P) const {
  std::string Out = "data race on " + P.Symbols.spelling(Glob) + ": ";
  Out += Write.str(P);
  if (Write == Other) {
    Out += " is unprotected";
  } else {
    Out += " vs " + Other.str(P);
  }
  return Out;
}

std::vector<CheckFinding>
warrow::raceCheckFindings(const Program &P,
                          const std::vector<RaceFinding> &Races) {
  std::vector<CheckFinding> Findings;
  Findings.reserve(Races.size());
  for (const RaceFinding &F : Races)
    Findings.push_back({CheckFinding::Kind::DataRace, F.Write.Func,
                        F.Write.Line, false, F.str(P)});
  return Findings;
}
