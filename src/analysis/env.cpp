//===- analysis/env.cpp - Abstract environments -------------------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/env.h"

#include "support/hash.h"

#include <algorithm>
#include <cassert>

using namespace warrow;

std::vector<AbsEnv::Entry>::iterator AbsEnv::lowerBound(Symbol Name) {
  return std::lower_bound(
      Entries.begin(), Entries.end(), Name,
      [](const Entry &E, Symbol S) { return E.first < S; });
}

std::vector<AbsEnv::Entry>::const_iterator
AbsEnv::lowerBound(Symbol Name) const {
  return std::lower_bound(
      Entries.begin(), Entries.end(), Name,
      [](const Entry &E, Symbol S) { return E.first < S; });
}

Interval AbsEnv::get(Symbol Name) const {
  auto It = lowerBound(Name);
  if (It != Entries.end() && It->first == Name)
    return It->second;
  return Interval::top();
}

void AbsEnv::set(Symbol Name, const Interval &Value) {
  assert(!Value.isBot() && "environments never bind bottom");
  auto It = lowerBound(Name);
  bool Present = It != Entries.end() && It->first == Name;
  if (Value.isTop()) {
    if (Present)
      Entries.erase(It);
    return;
  }
  if (Present)
    It->second = Value;
  else
    Entries.insert(It, {Name, Value});
}

bool AbsEnv::leq(const AbsEnv &Other) const {
  // A ⊑ B iff for all variables bound in B: A(x) ⊑ B(x).
  for (const Entry &E : Other.Entries)
    if (!get(E.first).leq(E.second))
      return false;
  return true;
}

AbsEnv AbsEnv::join(const AbsEnv &Other) const {
  // Only variables bound on both sides stay constrained.
  AbsEnv Result;
  for (const Entry &E : Entries) {
    auto It = Other.lowerBound(E.first);
    if (It == Other.Entries.end() || It->first != E.first)
      continue;
    Interval Joined = E.second.join(It->second);
    if (!Joined.isTop())
      Result.Entries.push_back({E.first, Joined});
  }
  return Result;
}

AbsEnv AbsEnv::widen(const AbsEnv &Other) const {
  AbsEnv Result;
  for (const Entry &E : Entries) {
    auto It = Other.lowerBound(E.first);
    if (It == Other.Entries.end() || It->first != E.first)
      continue; // Other side is top; widening to top drops the binding.
    Interval Widened = E.second.widen(It->second);
    if (!Widened.isTop())
      Result.Entries.push_back({E.first, Widened});
  }
  return Result;
}

AbsEnv AbsEnv::widenWithThresholds(
    const AbsEnv &Other, const std::vector<int64_t> &Thresholds) const {
  AbsEnv Result;
  for (const Entry &E : Entries) {
    auto It = Other.lowerBound(E.first);
    if (It == Other.Entries.end() || It->first != E.first)
      continue;
    Interval Widened = E.second.widenWithThresholds(It->second, Thresholds);
    if (!Widened.isTop())
      Result.Entries.push_back({E.first, Widened});
  }
  return Result;
}

AbsEnv AbsEnv::narrow(const AbsEnv &Other) const {
  // Precondition Other ⊑ *this. Narrow our bindings pointwise, and adopt
  // bindings present only in Other (legal: top △ v ⊒ v, and often where
  // the real precision is — a binding widened to top gets re-learned).
  // Note for ⊟ users: a widening that drops a binding followed by a
  // narrowing that re-adopts it can alternate; on non-monotonic systems
  // this must be bounded by a degrading ⊟ (per-unknown switch counters),
  // which the analysis drivers use.
  AbsEnv Result = *this;
  for (Entry &E : Result.Entries)
    E.second = E.second.narrow(Other.get(E.first));
  for (const Entry &E : Other.Entries) {
    auto It = Result.lowerBound(E.first);
    if (It == Result.Entries.end() || It->first != E.first)
      Result.Entries.insert(It, E);
  }
  // Normalize (narrowing cannot produce top from non-top, but be safe).
  Result.Entries.erase(
      std::remove_if(Result.Entries.begin(), Result.Entries.end(),
                     [](const Entry &E) { return E.second.isTop(); }),
      Result.Entries.end());
  return Result;
}

bool AbsEnv::meetWith(const AbsEnv &Other) {
  for (const Entry &E : Other.Entries) {
    Interval Met = get(E.first).meet(E.second);
    if (Met.isBot())
      return false;
    set(E.first, Met);
  }
  return true;
}

std::string AbsEnv::str(const Interner &Symbols) const {
  std::string Out = "{";
  for (size_t I = 0; I < Entries.size(); ++I) {
    if (I)
      Out += ", ";
    Out += Symbols.spelling(Entries[I].first) + "->" + Entries[I].second.str();
  }
  return Out + "}";
}

size_t AbsEnv::hashValue() const {
  size_t Seed = Entries.size();
  for (const Entry &E : Entries) {
    hashCombine(Seed, E.first);
    hashCombine(Seed, E.second.hashValue());
  }
  return Seed;
}
