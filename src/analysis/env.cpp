//===- analysis/env.cpp - Abstract environments -------------------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/env.h"

#include "support/hash.h"

#include <algorithm>
#include <cassert>

using namespace warrow;

namespace {

/// Sorted lookup helper over entry vectors.
EnvData::const_iterator lowerBound(const EnvData &Entries, Symbol Name) {
  return std::lower_bound(
      Entries.begin(), Entries.end(), Name,
      [](const EnvEntry &E, Symbol S) { return E.first < S; });
}

} // namespace

const EnvData &AbsEnv::entries() const {
  static const EnvData Empty;
  return Node ? *Node : Empty;
}

AbsEnv AbsEnv::fromEntries(EnvData &&Entries) {
  if (Entries.empty())
    return AbsEnv();
  return AbsEnv(EnvPool::local().intern(std::move(Entries)));
}

EnvData &AbsEnv::mutableEntries() {
  if (!Node)
    Node = EnvRef::make(EnvData{});
  else if (!Node.unique() || Node.frozen())
    Node = EnvRef::make(EnvData(*Node));
  return Node.mutableData();
}

void AbsEnv::freeze() {
  if (Node && !Node.frozen())
    Node = EnvPool::local().intern(std::move(Node));
}

Interval AbsEnv::get(Symbol Name) const {
  if (!Node)
    return Interval::top();
  auto It = lowerBound(*Node, Name);
  if (It != Node->end() && It->first == Name)
    return It->second;
  return Interval::top();
}

void AbsEnv::set(Symbol Name, const Interval &Value) {
  assert(!Value.isBot() && "environments never bind bottom");
  // No-op fast paths first, so shared/frozen nodes are not cloned for
  // writes that change nothing (common in straight-line transfer code).
  if (!Node) {
    if (Value.isTop())
      return;
  } else {
    auto It = lowerBound(*Node, Name);
    bool Present = It != Node->end() && It->first == Name;
    if (Value.isTop() && !Present)
      return;
    if (Present && It->second == Value)
      return;
  }
  EnvData &Entries = mutableEntries();
  auto It = std::lower_bound(
      Entries.begin(), Entries.end(), Name,
      [](const EnvEntry &E, Symbol S) { return E.first < S; });
  bool Present = It != Entries.end() && It->first == Name;
  if (Value.isTop()) {
    assert(Present && "non-present top handled above");
    Entries.erase(It);
    if (Entries.empty())
      Node.reset(); // Invariant: null node iff top.
    return;
  }
  if (Present)
    It->second = Value;
  else
    Entries.insert(It, {Name, Value});
}

bool AbsEnv::leq(const AbsEnv &Other) const {
  // A ⊑ B iff for all variables bound in B: A(x) ⊑ B(x).
  if (Node == Other.Node)
    return true;
  if (!Other.Node)
    return true;
  if (!Node)
    return false; // Other binds something non-top; top ⋢ it.
  auto It = Node->begin(), End = Node->end();
  for (const EnvEntry &E : *Other.Node) {
    while (It != End && It->first < E.first)
      ++It;
    if (It == End || It->first != E.first)
      return false; // Unbound here means top, never ⊑ a real binding.
    if (!It->second.leq(E.second))
      return false;
  }
  return true;
}

bool AbsEnv::operator==(const AbsEnv &Other) const {
  if (Node == Other.Node)
    return true;
  if (!Node || !Other.Node)
    return false;
  // Distinct frozen nodes from one pool differ by construction, but
  // values may cross threads (parallel solvers), so unequal memoized
  // hashes are the only O(1) negative answer; equal hashes fall back to
  // the structural compare (also covering genuine hash collisions).
  if (Node.frozen() && Other.Node.frozen() &&
      Node.get()->Hash != Other.Node.get()->Hash)
    return false;
  return *Node == *Other.Node;
}

AbsEnv AbsEnv::join(const AbsEnv &Other) const {
  if (Node == Other.Node)
    return *this; // e ⊔ e = e.
  // Only variables bound on both sides stay constrained.
  if (!Node || !Other.Node)
    return AbsEnv();
  EnvData Result;
  auto AIt = Node->begin(), AEnd = Node->end();
  auto BIt = Other.Node->begin(), BEnd = Other.Node->end();
  while (AIt != AEnd && BIt != BEnd) {
    if (AIt->first < BIt->first) {
      ++AIt;
    } else if (BIt->first < AIt->first) {
      ++BIt;
    } else {
      Interval Joined = AIt->second.join(BIt->second);
      if (!Joined.isTop())
        Result.push_back({AIt->first, Joined});
      ++AIt;
      ++BIt;
    }
  }
  return fromEntries(std::move(Result));
}

AbsEnv AbsEnv::widen(const AbsEnv &Other) const {
  if (Node == Other.Node)
    return *this; // e ▽ e = e.
  if (!Node || !Other.Node)
    return AbsEnv(); // Either side top; widening to top drops bindings.
  EnvData Result;
  auto AIt = Node->begin(), AEnd = Node->end();
  auto BIt = Other.Node->begin(), BEnd = Other.Node->end();
  while (AIt != AEnd && BIt != BEnd) {
    if (AIt->first < BIt->first) {
      ++AIt;
    } else if (BIt->first < AIt->first) {
      ++BIt;
    } else {
      Interval Widened = AIt->second.widen(BIt->second);
      if (!Widened.isTop())
        Result.push_back({AIt->first, Widened});
      ++AIt;
      ++BIt;
    }
  }
  return fromEntries(std::move(Result));
}

AbsEnv AbsEnv::widenWithThresholds(
    const AbsEnv &Other, const std::vector<int64_t> &Thresholds) const {
  if (Node == Other.Node)
    return *this;
  if (!Node || !Other.Node)
    return AbsEnv();
  EnvData Result;
  auto AIt = Node->begin(), AEnd = Node->end();
  auto BIt = Other.Node->begin(), BEnd = Other.Node->end();
  while (AIt != AEnd && BIt != BEnd) {
    if (AIt->first < BIt->first) {
      ++AIt;
    } else if (BIt->first < AIt->first) {
      ++BIt;
    } else {
      Interval Widened =
          AIt->second.widenWithThresholds(BIt->second, Thresholds);
      if (!Widened.isTop())
        Result.push_back({AIt->first, Widened});
      ++AIt;
      ++BIt;
    }
  }
  return fromEntries(std::move(Result));
}

AbsEnv AbsEnv::narrow(const AbsEnv &Other) const {
  // Precondition Other ⊑ *this. Narrow our bindings pointwise, and adopt
  // bindings present only in Other (legal: top △ v ⊒ v, and often where
  // the real precision is — a binding widened to top gets re-learned).
  // Note for ⊟ users: a widening that drops a binding followed by a
  // narrowing that re-adopts it can alternate; on non-monotonic systems
  // this must be bounded by a degrading ⊟ (per-unknown switch counters),
  // which the analysis drivers use.
  if (Node == Other.Node)
    return *this; // e △ e = e.
  if (!Other.Node)
    return *this; // v △ top = v pointwise.
  if (!Node)
    return Other; // Adopt every binding (top △ v).
  EnvData Result;
  auto AIt = Node->begin(), AEnd = Node->end();
  auto BIt = Other.Node->begin(), BEnd = Other.Node->end();
  while (AIt != AEnd || BIt != BEnd) {
    if (BIt == BEnd || (AIt != AEnd && AIt->first < BIt->first)) {
      Interval Narrowed = AIt->second.narrow(Interval::top());
      if (!Narrowed.isTop())
        Result.push_back({AIt->first, Narrowed});
      ++AIt;
    } else if (AIt == AEnd || BIt->first < AIt->first) {
      if (!BIt->second.isTop())
        Result.push_back(*BIt); // Other-only binding adopted.
      ++BIt;
    } else {
      Interval Narrowed = AIt->second.narrow(BIt->second);
      if (!Narrowed.isTop())
        Result.push_back({AIt->first, Narrowed});
      ++AIt;
      ++BIt;
    }
  }
  return fromEntries(std::move(Result));
}

bool AbsEnv::meetWith(const AbsEnv &Other) {
  if (Node == Other.Node)
    return true; // e ⊓ e = e, never empty (bindings are non-bottom).
  if (!Other.Node)
    return true;
  EnvData Result;
  auto AIt = Node ? Node->begin() : EnvData::const_iterator{};
  auto AEnd = Node ? Node->end() : AIt;
  auto BIt = Other.Node->begin(), BEnd = Other.Node->end();
  while (AIt != AEnd || BIt != BEnd) {
    if (BIt == BEnd || (AIt != AEnd && AIt->first < BIt->first)) {
      Result.push_back(*AIt);
      ++AIt;
    } else if (AIt == AEnd || BIt->first < AIt->first) {
      Result.push_back(*BIt); // Meet with our implicit top.
      ++BIt;
    } else {
      Interval Met = AIt->second.meet(BIt->second);
      if (Met.isBot())
        return false; // Unreachable; *this left unchanged.
      Result.push_back({AIt->first, Met});
      ++AIt;
      ++BIt;
    }
  }
  *this = fromEntries(std::move(Result));
  return true;
}

std::string AbsEnv::str(const Interner &Symbols) const {
  const EnvData &Entries = entries();
  std::string Out = "{";
  for (size_t I = 0; I < Entries.size(); ++I) {
    if (I)
      Out += ", ";
    Out += Symbols.spelling(Entries[I].first) + "->" + Entries[I].second.str();
  }
  return Out + "}";
}

size_t AbsEnv::hashValue() const {
  if (!Node)
    return 0; // EnvDataHash of the empty vector.
  if (Node.frozen())
    return Node.get()->Hash;
  return EnvDataHash{}(*Node);
}
