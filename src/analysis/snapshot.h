//===- analysis/snapshot.h - Analysis snapshots & program diffs -*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Externalized interprocedural-analysis state (DESIGN §6i): an
/// `AnalysisSnapshot` pairs the engine-level `SolverState` over
/// `AnalysisVar`/`AbsValue` with everything needed to re-attach that
/// state to a *different* parse of the program — the interned calling
/// contexts, the analysis domain, and per-function/per-global shape
/// fingerprints. `diffSnapshot` compares a snapshot's fingerprints
/// against a (possibly edited) program; `InterprocAnalysis::
/// runIncremental` consumes the diff to resume instead of cold-solving.
///
/// Serialization follows the trace serializer's contract: bijective
/// round trip, nullopt on malformed input. Unknowns and values travel by
/// *name* (function names, symbol spellings), never by numeric id, so a
/// snapshot written against one parse loads against a re-parse whose ids
/// shifted. Names absent from the target program are interned on demand
/// (harmless: the interner is just a string table); unknowns of functions
/// the target no longer has become tombstones (`Func == UINT32_MAX`) the
/// diff is guaranteed to drop.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_ANALYSIS_SNAPSHOT_H
#define WARROW_ANALYSIS_SNAPSHOT_H

#include "analysis/interproc.h"
#include "engine/solver_state.h"
#include "lang/cfg.h"

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace warrow {

/// Shape of one function as far as the constraint system is concerned:
/// re-running the analysis over a function with an identical fingerprint
/// yields identical right-hand sides for its program points.
struct FuncShape {
  std::string Name;
  std::string Fingerprint;
};

/// Shape of one global (its base value feeds the global unknown's RHS).
struct GlobalShape {
  std::string Name;
  int64_t Init = 0;
  int64_t ArraySize = -1;
};

/// A solved analysis, externalized. `State.Vars` are expressed in the ids
/// of the program the snapshot was captured against (or, after
/// `parseAnalysisSnapshot`, of the program it was parsed against).
struct AnalysisSnapshot {
  engine::SolverState<AnalysisVar, AbsValue> State;
  /// Context id -> values, in interning order (id 0 is the empty tuple).
  std::vector<ContextValues> Contexts;
  AnalysisDomain Domain = AnalysisDomain::Interval;
  bool ContextSensitive = false;
  std::vector<FuncShape> Funcs;
  std::vector<GlobalShape> Globals;

  /// True when there is no state to resume from (e.g. the run's solver
  /// does not support snapshots); runIncremental falls back to a cold
  /// solve on an empty snapshot.
  bool empty() const { return State.size() == 0; }
};

/// Canonical fingerprint of \p F's CFG under \p P's interner: node count,
/// parameter spellings, and every edge's action rendering. Two parses
/// with equal fingerprints induce identical right-hand sides for the
/// function's program points (modulo global/context state).
std::string functionFingerprint(const Program &P, const Cfg &G,
                                const FuncDecl &F);

/// Fills \p Out.Funcs / \p Out.Globals with \p P's shapes.
void snapshotShapes(const Program &P, const ProgramCfg &Cfgs,
                    AnalysisSnapshot &Out);

/// Which parts of a program no longer match a snapshot. Names rather than
/// indices: the diff is computed between two different parses.
struct ProgramDiff {
  /// Functions whose fingerprint changed or that the program dropped.
  std::unordered_set<std::string> ChangedFuncs;
  /// Globals whose declaration changed or that the program dropped.
  std::unordered_set<std::string> ChangedGlobals;
  /// Functions the snapshot has never seen (informational; their unknowns
  /// are discovered fresh by the warm solve).
  std::vector<std::string> AddedFuncs;

  bool anyChange() const {
    return !ChangedFuncs.empty() || !ChangedGlobals.empty() ||
           !AddedFuncs.empty();
  }
};

/// Compares \p Snap's recorded shapes against \p P.
ProgramDiff diffSnapshot(const AnalysisSnapshot &Snap, const Program &P,
                         const ProgramCfg &Cfgs);

/// Bookkeeping of one incremental resume (for benches and tests).
struct IncrementalStats {
  uint64_t SnapshotUnknowns = 0; ///< Slots in the incoming snapshot.
  uint64_t DroppedUnknowns = 0;  ///< Slots of changed/removed funcs+globals.
  uint64_t RestartedUnknowns = 0; ///< Kept slots reset to the initial value.
  uint64_t RetractedCells = 0;   ///< Side-effect cells withdrawn.
  uint64_t KeptCells = 0;        ///< Cells carried into the warm run.
  bool ColdFallback = false;     ///< True when resume was not possible.
};

/// Re-expresses \p V (an AbsValue whose symbols belong to \p OldP) over
/// \p NewP's interner, matching symbols by spelling. nullopt when some
/// symbol has no spelling in \p NewP — callers restart the affected slot.
std::optional<AbsValue> remapAbsValue(const AbsValue &V, const Program &OldP,
                                      const Program &NewP);

/// Canonical, context-id-independent rendering of a solution's non-bottom
/// part: keys name unknowns as "func:node@(ctx-values)" / "global:name",
/// values are the AbsValue renderings. Two runs over the same program
/// that interned contexts in different orders — a warm resume vs a cold
/// solve — compare equal exactly when they computed the same assignment
/// on the reachable (non-bottom) unknowns; bottom entries are dropped
/// because a warm run retains restarted-but-now-dead unknowns at bottom.
std::map<std::string, std::string>
canonicalSigma(const PartialSolution<AnalysisVar, AbsValue> &Sol,
               const Program &P, const std::vector<ContextValues> &Contexts);

/// Serializes \p Snap; unknowns and values are rendered with \p P's
/// spellings (the program the snapshot's ids refer to).
std::string serializeAnalysisSnapshot(const AnalysisSnapshot &Snap,
                                      const Program &P);

/// Parses a serialized snapshot *against* \p P: names resolve to \p P's
/// ids (missing spellings are interned; unknowns of missing functions
/// become tombstones the diff drops). nullopt on malformed input.
std::optional<AnalysisSnapshot> parseAnalysisSnapshot(std::string_view Text,
                                                      Program &P);

} // namespace warrow

#endif // WARROW_ANALYSIS_SNAPSHOT_H
