//===- eqsys/local_system.h - Infinite systems of pure equations -*- C++ -*-=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Systems of *pure* equations over an arbitrary (possibly infinite) set
/// of unknowns, as consumed by the local solvers of Sections 5 and 6.
///
/// A right-hand side is pure in the sense of Hofmann/Karbyshev/Seidl:
/// evaluating `f_x(get)` performs a finite sequence of value lookups
/// through `get` — where each next lookup may depend on values already
/// seen — and then returns a value. Local solvers discover dependencies by
/// instrumenting `get`; no static dependency declaration exists.
///
/// `SideEffectingSystem` extends right-hand sides with a `side` callback
/// (Section 6): evaluation may additionally contribute values to other
/// unknowns. Contract (as in the paper): a right-hand side never side-
/// effects its own left-hand side and contributes to each unknown at most
/// once per evaluation.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_EQSYS_LOCAL_SYSTEM_H
#define WARROW_EQSYS_LOCAL_SYSTEM_H

#include "solvers/stats.h"

#include <functional>
#include <unordered_map>
#include <vector>

namespace warrow {

/// A pure equation system: unknowns of hashable type V, values in D.
template <typename V, typename D> class LocalSystem {
public:
  /// Value lookup callback handed to right-hand sides.
  using Get = std::function<D(const V &)>;
  /// A pure right-hand side.
  using Rhs = std::function<D(const Get &)>;

  LocalSystem() = default;
  /// \p RhsOf yields the equation of any unknown on demand;
  /// \p InitialOf yields per-unknown initial values (sigma_0).
  explicit LocalSystem(std::function<Rhs(const V &)> RhsOf,
                       std::function<D(const V &)> InitialOf = nullptr)
      : RhsOf(std::move(RhsOf)), InitialOf(std::move(InitialOf)) {}

  Rhs rhs(const V &X) const { return RhsOf(X); }
  D initial(const V &X) const {
    return InitialOf ? InitialOf(X) : D::bot();
  }

private:
  std::function<Rhs(const V &)> RhsOf;
  std::function<D(const V &)> InitialOf;
};

/// A side-effecting equation system (Section 6).
template <typename V, typename D> class SideEffectingSystem {
public:
  using Get = std::function<D(const V &)>;
  /// Contribution callback: `side(z, d)` contributes d to unknown z.
  using Side = std::function<void(const V &, const D &)>;
  /// A pure right-hand side with side effects.
  using Rhs = std::function<D(const Get &, const Side &)>;

  SideEffectingSystem() = default;
  explicit SideEffectingSystem(std::function<Rhs(const V &)> RhsOf,
                               std::function<D(const V &)> InitialOf = nullptr)
      : RhsOf(std::move(RhsOf)), InitialOf(std::move(InitialOf)) {}

  Rhs rhs(const V &X) const { return RhsOf(X); }
  D initial(const V &X) const {
    return InitialOf ? InitialOf(X) : D::bot();
  }

private:
  std::function<Rhs(const V &)> RhsOf;
  std::function<D(const V &)> InitialOf;
};

/// Outcome of a local solver run: a *partial* ⊕-solution with domain
/// `dom = keys(Sigma)`.
template <typename V, typename D> struct PartialSolution {
  std::unordered_map<V, D> Sigma;
  SolverStats Stats;
  /// Update sequence (unknown, new value); filled iff
  /// SolverOptions::RecordTrace was set.
  std::vector<std::pair<V, D>> Trace;
  /// Unknowns in discovery order; filled iff SolverOptions::Trace was
  /// set. Position == the dense unknown id used in trace events (the
  /// negated priority `key` of Fig. 6), so tools can map event ids back
  /// to variable names.
  std::vector<V> DiscoveryOrder;

  /// Value of \p X, or the supplied default for unknowns outside dom.
  D value(const V &X, D Default = D::bot()) const {
    auto It = Sigma.find(X);
    return It == Sigma.end() ? Default : It->second;
  }
  bool inDomain(const V &X) const { return Sigma.count(X) != 0; }
};

} // namespace warrow

#endif // WARROW_EQSYS_LOCAL_SYSTEM_H
