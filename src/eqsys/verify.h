//===- eqsys/verify.h - Solution verification -------------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Independent verification that an assignment actually is what a solver
/// claims: a ⊕-solution (sigma[x] = sigma[x] ⊕ f_x(sigma)), a post
/// solution (f_x(sigma) ⊑ sigma[x]), or a partial variant thereof with a
/// dependency-closed domain. Verification re-evaluates every right-hand
/// side exactly once, so it is cheap relative to solving and is the
/// recommended belt-and-braces check after a run — the test suite uses
/// it, and downstream clients can too.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_EQSYS_VERIFY_H
#define WARROW_EQSYS_VERIFY_H

#include "eqsys/dense_system.h"
#include "eqsys/local_system.h"

#include <string>
#include <vector>

namespace warrow {

/// Outcome of a verification pass.
struct VerifyResult {
  bool Ok = true;
  /// Human-readable descriptions of the violations found (at most 16).
  std::vector<std::string> Violations;

  explicit operator bool() const { return Ok; }

  void fail(std::string Message) {
    Ok = false;
    if (Violations.size() < 16)
      Violations.push_back(std::move(Message));
  }
};

/// Checks sigma[x] = sigma[x] ⊕ f_x(sigma) for every unknown of a dense
/// system.
template <typename D, typename C>
VerifyResult verifyCombineSolution(const DenseSystem<D> &System,
                                   const std::vector<D> &Sigma, C &&Combine) {
  VerifyResult R;
  auto Get = [&Sigma](Var Y) { return Sigma[Y]; };
  for (Var X = 0; X < System.size(); ++X) {
    D Combined = Combine(X, Sigma[X], System.eval(X, Get));
    if (!(Sigma[X] == Combined))
      R.fail("not a ⊕-solution at " + System.name(X));
  }
  return R;
}

/// Checks f_x(sigma) ⊑ sigma[x] for every unknown of a dense system.
template <typename D>
VerifyResult verifyPostSolution(const DenseSystem<D> &System,
                                const std::vector<D> &Sigma) {
  VerifyResult R;
  auto Get = [&Sigma](Var Y) { return Sigma[Y]; };
  for (Var X = 0; X < System.size(); ++X)
    if (!System.eval(X, Get).leq(Sigma[X]))
      R.fail("not a post solution at " + System.name(X));
  return R;
}

/// Checks that \p Solution is a partial post solution of a local system:
/// every right-hand side, evaluated over dom (with out-of-dom reads
/// failing the check), stays below sigma.
template <typename V, typename D>
VerifyResult verifyPartialPostSolution(const LocalSystem<V, D> &System,
                                       const PartialSolution<V, D> &Solution) {
  VerifyResult R;
  for (const auto &[X, Value] : Solution.Sigma) {
    bool EscapedDomain = false;
    typename LocalSystem<V, D>::Get Get = [&](const V &Y) -> D {
      if (!Solution.inDomain(Y))
        EscapedDomain = true;
      return Solution.value(Y);
    };
    D Rhs = System.rhs(X)(Get);
    if (EscapedDomain)
      R.fail("domain not dependency-closed at some unknown");
    else if (!Rhs.leq(Value))
      R.fail("not a partial post solution at some unknown");
  }
  return R;
}

/// Side-effecting variant: contributions recorded per target must be
/// supplied by the caller (target -> joined contribution), since the
/// system alone cannot reproduce them.
template <typename V, typename D, typename ContribFn>
VerifyResult
verifyPartialPostSolutionSide(const SideEffectingSystem<V, D> &System,
                              const PartialSolution<V, D> &Solution,
                              ContribFn &&ContributionOf) {
  VerifyResult R;
  for (const auto &[X, Value] : Solution.Sigma) {
    typename SideEffectingSystem<V, D>::Get Get = [&](const V &Y) -> D {
      return Solution.value(Y);
    };
    typename SideEffectingSystem<V, D>::Side Ignore = [](const V &,
                                                         const D &) {};
    D Rhs = System.rhs(X)(Get, Ignore).join(ContributionOf(X));
    if (!Rhs.leq(Value))
      R.fail("not a partial post solution at some unknown");
  }
  return R;
}

} // namespace warrow

#endif // WARROW_EQSYS_VERIFY_H
