//===- eqsys/verify.h - Solution verification -------------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Independent verification that an assignment actually is what a solver
/// claims: a ⊕-solution (sigma[x] = sigma[x] ⊕ f_x(sigma)), a post
/// solution (f_x(sigma) ⊑ sigma[x]), or a partial variant thereof with a
/// dependency-closed domain. Verification re-evaluates every right-hand
/// side exactly once, so it is cheap relative to solving and is the
/// recommended belt-and-braces check after a run — the test suite uses
/// it, and downstream clients can too.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_EQSYS_VERIFY_H
#define WARROW_EQSYS_VERIFY_H

#include "eqsys/dense_system.h"
#include "eqsys/local_system.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace warrow {

/// Outcome of a verification pass.
struct VerifyResult {
  bool Ok = true;
  /// Human-readable descriptions of the violations found. Capped at 16
  /// detailed entries; when more violations occur, `Dropped` counts the
  /// overflow and the final entry summarizes it ("... and N more").
  std::vector<std::string> Violations;
  /// Number of violations beyond the detailed cap.
  size_t Dropped = 0;

  explicit operator bool() const { return Ok; }

  /// All violation lines joined with newlines (empty when Ok).
  std::string str() const {
    std::string S;
    for (const std::string &V : Violations) {
      S += V;
      S += '\n';
    }
    return S;
  }

  void fail(std::string Message) {
    Ok = false;
    if (Violations.size() < DetailCap) {
      Violations.push_back(std::move(Message));
      return;
    }
    // Keep (or refresh) one trailing summary entry so consumers printing
    // the list see that it was truncated rather than complete.
    ++Dropped;
    std::string Trailer = "... and " + std::to_string(Dropped) + " more";
    if (Violations.size() == DetailCap)
      Violations.push_back(std::move(Trailer));
    else
      Violations.back() = std::move(Trailer);
  }

private:
  static constexpr size_t DetailCap = 16;
};

/// Checks sigma[x] = sigma[x] ⊕ f_x(sigma) for every unknown of a dense
/// system.
template <typename D, typename C>
VerifyResult verifyCombineSolution(const DenseSystem<D> &System,
                                   const std::vector<D> &Sigma, C &&Combine) {
  VerifyResult R;
  auto Get = [&Sigma](Var Y) { return Sigma[Y]; };
  for (Var X = 0; X < System.size(); ++X) {
    D Combined = Combine(X, Sigma[X], System.eval(X, Get));
    if (!(Sigma[X] == Combined))
      R.fail("not a ⊕-solution at " + System.name(X));
  }
  return R;
}

/// Checks f_x(sigma) ⊑ sigma[x] for every unknown of a dense system.
template <typename D>
VerifyResult verifyPostSolution(const DenseSystem<D> &System,
                                const std::vector<D> &Sigma) {
  VerifyResult R;
  auto Get = [&Sigma](Var Y) { return Sigma[Y]; };
  for (Var X = 0; X < System.size(); ++X)
    if (!System.eval(X, Get).leq(Sigma[X]))
      R.fail("not a post solution at " + System.name(X));
  return R;
}

/// Checks that \p Solution is a partial post solution of a local system:
/// every right-hand side, evaluated over dom (with out-of-dom reads
/// failing the check), stays below sigma.
template <typename V, typename D>
VerifyResult verifyPartialPostSolution(const LocalSystem<V, D> &System,
                                       const PartialSolution<V, D> &Solution) {
  VerifyResult R;
  for (const auto &[X, Value] : Solution.Sigma) {
    bool EscapedDomain = false;
    typename LocalSystem<V, D>::Get Get = [&](const V &Y) -> D {
      if (!Solution.inDomain(Y))
        EscapedDomain = true;
      return Solution.value(Y);
    };
    D Rhs = System.rhs(X)(Get);
    if (EscapedDomain)
      R.fail("domain not dependency-closed at some unknown");
    else if (!Rhs.leq(Value))
      R.fail("not a partial post solution at some unknown");
  }
  return R;
}

/// Full check of a side-effecting solution with no solver cooperation:
/// re-evaluates every right-hand side over sigma exactly once, recording
/// the side effects it emits, and checks that
///
///   - every direct result stays below its unknown's value,
///   - for every target z, the join of all fresh contributions to z stays
///     below sigma[z],
///   - reads and (non-bottom) contribution targets stay inside dom.
///
/// Sound for any ⊕-solution produced by SLR+ whose ⊕ keeps sigma[x] above
/// f_x(sigma) ⊔ ⊔ contributions (⊟, ▽, and join all do): right-hand sides
/// are pure functions of their reads, so re-evaluating over the final
/// sigma reproduces exactly the contributions the solver last recorded.
/// Bottom contributions to unknowns outside dom are permitted — the
/// always-contribute protocol of the race analysis emits them for
/// syntactically touched but unreachable targets, and the solver
/// deliberately never materializes such unknowns.
template <typename V, typename D>
VerifyResult
verifySideEffectingSolution(const SideEffectingSystem<V, D> &System,
                            const PartialSolution<V, D> &Solution) {
  VerifyResult R;
  std::unordered_map<V, D> ContribJoin;
  for (const auto &[X, Value] : Solution.Sigma) {
    bool EscapedDomain = false;
    typename SideEffectingSystem<V, D>::Get Get = [&](const V &Y) -> D {
      if (!Solution.inDomain(Y))
        EscapedDomain = true;
      return Solution.value(Y);
    };
    typename SideEffectingSystem<V, D>::Side Record = [&](const V &Z,
                                                          const D &Val) {
      if (!Solution.inDomain(Z)) {
        if (!(Val == D::bot()))
          EscapedDomain = true;
        return;
      }
      auto It = ContribJoin.try_emplace(Z, D::bot()).first;
      It->second = It->second.join(Val);
    };
    D Direct = System.rhs(X)(Get, Record);
    if (EscapedDomain)
      R.fail("domain not dependency-closed at some unknown");
    else if (!Direct.leq(Value))
      R.fail("direct right-hand side exceeds sigma at some unknown");
  }
  for (const auto &[Z, Joined] : ContribJoin)
    if (!Joined.leq(Solution.value(Z)))
      R.fail("joined side-effect contributions exceed sigma at a target");
  return R;
}

/// Side-effecting variant: contributions recorded per target must be
/// supplied by the caller (target -> joined contribution), since the
/// system alone cannot reproduce them.
template <typename V, typename D, typename ContribFn>
VerifyResult
verifyPartialPostSolutionSide(const SideEffectingSystem<V, D> &System,
                              const PartialSolution<V, D> &Solution,
                              ContribFn &&ContributionOf) {
  VerifyResult R;
  for (const auto &[X, Value] : Solution.Sigma) {
    typename SideEffectingSystem<V, D>::Get Get = [&](const V &Y) -> D {
      return Solution.value(Y);
    };
    typename SideEffectingSystem<V, D>::Side Ignore = [](const V &,
                                                         const D &) {};
    D Rhs = System.rhs(X)(Get, Ignore).join(ContributionOf(X));
    if (!Rhs.leq(Value))
      R.fail("not a partial post solution at some unknown");
  }
  return R;
}

} // namespace warrow

#endif // WARROW_EQSYS_VERIFY_H
