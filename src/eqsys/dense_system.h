//===- eqsys/dense_system.h - Finite equation systems -----------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A finite system of equations `x_i = f_i(sigma)` over a fixed set of
/// unknowns `x_1 .. x_n` (Section 2 of the paper). Right-hand sides are
/// black boxes `f : (Var -> D) -> D`; for the worklist-style solvers each
/// equation additionally declares a (super-)set `dep_i` of unknowns it may
/// read, from which the influence sets `infl_y = {x | y in dep_x} ∪ {y}`
/// are derived.
///
/// The *order* of variables (their indices) is the linear ordering that
/// the structured solvers SRR and SW rely on; per Bourdoncle's observation
/// (cited in Section 4), clients should number innermost-loop unknowns
/// first.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_EQSYS_DENSE_SYSTEM_H
#define WARROW_EQSYS_DENSE_SYSTEM_H

#include "solvers/stats.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace warrow {

/// Index of an unknown in a dense system.
using Var = uint32_t;

/// A finite equation system over domain D with declared dependencies.
template <typename D> class DenseSystem {
public:
  /// Read access to the current assignment, passed to right-hand sides.
  using GetFn = std::function<D(Var)>;
  /// A right-hand side: a pure function of the assignment.
  using Rhs = std::function<D(const GetFn &)>;

  /// Adds a fresh unknown with the given diagnostic \p Name and initial
  /// value; its equation must be supplied via `define` before solving.
  Var addVar(std::string Name = "", D Init = D::bot()) {
    Var X = static_cast<Var>(Equations.size());
    Equations.push_back({nullptr, {}, std::move(Name), std::move(Init)});
    InflValid = false;
    return X;
  }

  /// Sets the equation of \p X: right-hand side \p F reading only unknowns
  /// in \p Deps.
  void define(Var X, Rhs F, std::vector<Var> Deps) {
    assert(X < Equations.size() && "unknown variable");
    Equations[X].F = std::move(F);
    Equations[X].Deps = std::move(Deps);
    InflValid = false;
  }

  size_t size() const { return Equations.size(); }

  /// Evaluates f_X on \p Get.
  D eval(Var X, const GetFn &Get) const {
    assert(Equations[X].F && "undefined equation");
    return Equations[X].F(Get);
  }

  const std::vector<Var> &deps(Var X) const { return Equations[X].Deps; }
  const std::string &name(Var X) const { return Equations[X].Name; }
  const D &initial(Var X) const { return Equations[X].Init; }

  /// Initial assignment (per-variable initial values).
  std::vector<D> initialAssignment() const {
    std::vector<D> Sigma;
    Sigma.reserve(size());
    for (const auto &Eq : Equations)
      Sigma.push_back(Eq.Init);
    return Sigma;
  }

  /// Unknowns influenced by X: `{y | X in dep_y} ∪ {X}`, ascending.
  const std::vector<Var> &influenced(Var X) const {
    if (!InflValid)
      buildInfluence();
    return Infl[X];
  }

  /// Sum over i of (2 + |dep_i|): the `N` of Theorem 2.
  uint64_t theoremTwoN() const {
    uint64_t N = 0;
    for (const auto &Eq : Equations)
      N += 2 + Eq.Deps.size();
    return N;
  }

private:
  struct Equation {
    Rhs F;
    std::vector<Var> Deps;
    std::string Name;
    D Init;
  };

  void buildInfluence() const {
    Infl.assign(Equations.size(), {});
    for (Var Y = 0; Y < Equations.size(); ++Y)
      Infl[Y].push_back(Y); // Self-influence per Section 2's precaution.
    for (Var X = 0; X < Equations.size(); ++X)
      for (Var Y : Equations[X].Deps)
        if (Y != X)
          Infl[Y].push_back(X);
    // Dedupe and sort for deterministic scheduling.
    for (auto &Set : Infl) {
      std::sort(Set.begin(), Set.end());
      Set.erase(std::unique(Set.begin(), Set.end()), Set.end());
    }
    InflValid = true;
  }

  std::vector<Equation> Equations;
  mutable std::vector<std::vector<Var>> Infl;
  mutable bool InflValid = false;
};

/// An update record for solver traces (paper-example tests).
template <typename D> struct UpdateRecord {
  Var X;
  D Value;
};

/// Outcome of a dense solver run.
template <typename D> struct SolveResult {
  std::vector<D> Sigma;
  SolverStats Stats;
  std::vector<UpdateRecord<D>> Trace; // Filled iff Options.RecordTrace.
};

} // namespace warrow

#endif // WARROW_EQSYS_DENSE_SYSTEM_H
