//===- trace/recorder.cpp - Buffered trace recorder ------------------------==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "trace/recorder.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

using namespace warrow;

namespace {

std::atomic<uint64_t> NextEpoch{1};

/// Per-thread registration: epoch -> buffer owned by the live recorder
/// with that epoch. Entries for dead recorders are never looked up again
/// (epochs are unique), so the map only grows by one entry per recorder
/// a thread ever emitted into.
thread_local std::unordered_map<uint64_t, void *> LocalBuffers;

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

BufferedTraceRecorder::BufferedTraceRecorder(bool CaptureTimestamps)
    : Epoch(NextEpoch.fetch_add(1, std::memory_order_relaxed)),
      CaptureTimestamps(CaptureTimestamps) {}

BufferedTraceRecorder::~BufferedTraceRecorder() = default;

BufferedTraceRecorder::Buffer &BufferedTraceRecorder::localBuffer() {
  auto It = LocalBuffers.find(Epoch);
  if (It != LocalBuffers.end())
    return *static_cast<Buffer *>(It->second);
  auto Fresh = std::make_unique<Buffer>();
  Buffer *Raw = Fresh.get();
  {
    std::lock_guard<std::mutex> Lock(RegistryMutex);
    Raw->Tid = static_cast<uint32_t>(Buffers.size());
    Buffers.push_back(std::move(Fresh));
  }
  LocalBuffers.emplace(Epoch, Raw);
  return *Raw;
}

void BufferedTraceRecorder::event(TraceEvent E) {
  Buffer &B = localBuffer();
  E.Seq = NextSeq.fetch_add(1, std::memory_order_relaxed);
  E.TimeNs = CaptureTimestamps ? nowNs() : 0;
  E.Tid = B.Tid;
  B.Events.push_back(E);
}

std::vector<TraceEvent> BufferedTraceRecorder::events() const {
  std::vector<TraceEvent> All;
  {
    std::lock_guard<std::mutex> Lock(RegistryMutex);
    size_t Total = 0;
    for (const auto &B : Buffers)
      Total += B->Events.size();
    All.reserve(Total);
    for (const auto &B : Buffers)
      All.insert(All.end(), B->Events.begin(), B->Events.end());
  }
  std::sort(All.begin(), All.end(),
            [](const TraceEvent &A, const TraceEvent &B) {
              return A.Seq < B.Seq;
            });
  return All;
}

uint64_t BufferedTraceRecorder::eventCount() const {
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  uint64_t Total = 0;
  for (const auto &B : Buffers)
    Total += B->Events.size();
  return Total;
}

uint32_t BufferedTraceRecorder::threadCount() const {
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  return static_cast<uint32_t>(Buffers.size());
}
