//===- trace/chrome_export.h - Chrome trace_event exporter ------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exports an event stream in the Chrome `trace_event` JSON array format
/// (loadable in `chrome://tracing` and Perfetto): RhsEvalBegin/End pairs
/// become duration events ("ph":"B"/"E") on the emitting thread's track,
/// everything else becomes instant events ("ph":"i") carrying the event
/// payload in "args". Timestamps are microseconds from the recorded
/// nanosecond clock; in replay mode (all-zero timestamps) the sequence
/// number is used so the viewer still shows the order.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_TRACE_CHROME_EXPORT_H
#define WARROW_TRACE_CHROME_EXPORT_H

#include "trace/trace.h"

#include <functional>
#include <string>
#include <vector>

namespace warrow {

/// Maps an unknown id to a display name; nullable — ids print as "u<id>".
using UnknownNameFn = std::function<std::string(uint64_t)>;

/// Renders \p Events as a Chrome trace_event JSON array.
std::string chromeTraceJson(const std::vector<TraceEvent> &Events,
                            const UnknownNameFn &NameOf = nullptr);

/// Minimal structural JSON validator (objects, arrays, strings, numbers,
/// literals; UTF-8 passed through). Sufficient to assert exporter output
/// is well-formed without a JSON library dependency.
bool validateJsonSyntax(const std::string &Text);

} // namespace warrow

#endif // WARROW_TRACE_CHROME_EXPORT_H
