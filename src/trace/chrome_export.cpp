//===- trace/chrome_export.cpp - Chrome trace_event exporter ---------------==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "trace/chrome_export.h"

#include "trace/serialize.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstring>

using namespace warrow;

namespace {

std::string escapeJson(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

std::string nameOr(const UnknownNameFn &NameOf, uint64_t Id) {
  if (NameOf)
    return NameOf(Id);
  return "u" + std::to_string(Id);
}

/// Timestamp in microseconds; falls back to the sequence number when the
/// stream was recorded in replay mode (no wall clock).
std::string tsOf(const TraceEvent &E) {
  char Buf[48];
  if (E.TimeNs != 0)
    std::snprintf(Buf, sizeof(Buf), "%.3f",
                  static_cast<double>(E.TimeNs) / 1000.0);
  else
    std::snprintf(Buf, sizeof(Buf), "%" PRIu64, E.Seq);
  return Buf;
}

} // namespace

std::string warrow::chromeTraceJson(const std::vector<TraceEvent> &Events,
                                    const UnknownNameFn &NameOf) {
  std::string Out = "[";
  bool First = true;
  auto Emit = [&Out, &First](const std::string &Obj) {
    if (!First)
      Out += ",";
    Out += "\n  " + Obj;
    First = false;
  };

  for (const TraceEvent &E : Events) {
    std::string Common = "\"pid\": 1, \"tid\": " + std::to_string(E.Tid) +
                         ", \"ts\": " + tsOf(E);
    switch (E.Kind) {
    case TraceEventKind::RhsEvalBegin:
      Emit("{\"name\": \"eval " + escapeJson(nameOr(NameOf, E.Unknown)) +
           "\", \"cat\": \"rhs\", \"ph\": \"B\", " + Common + "}");
      break;
    case TraceEventKind::RhsEvalEnd:
      Emit("{\"name\": \"eval " + escapeJson(nameOr(NameOf, E.Unknown)) +
           "\", \"cat\": \"rhs\", \"ph\": \"E\", " + Common +
           ", \"args\": {\"from_cache\": " +
           (E.FromCache ? "true" : "false") + "}}");
      break;
    default: {
      std::string Args = "{\"unknown\": \"" +
                         escapeJson(nameOr(NameOf, E.Unknown)) +
                         "\", \"seq\": " + std::to_string(E.Seq);
      if (E.Kind == TraceEventKind::Update)
        Args += std::string(", \"kind\": \"") + updateKindName(E.UKind) +
                "\", \"grew\": " + (E.Grew ? "true" : "false") +
                ", \"shrank\": " + (E.Shrank ? "true" : "false");
      if (E.Kind == TraceEventKind::Destabilize ||
          E.Kind == TraceEventKind::DependencyRecord ||
          E.Kind == TraceEventKind::SideContribution ||
          E.Kind == TraceEventKind::PhaseChange)
        Args += ", \"aux\": \"" + escapeJson(nameOr(NameOf, E.Aux)) + "\"";
      Args += "}";
      Emit(std::string("{\"name\": \"") + traceEventKindName(E.Kind) +
           "\", \"cat\": \"solver\", \"ph\": \"i\", \"s\": \"t\", " +
           Common + ", \"args\": " + Args + "}");
      break;
    }
    }
  }
  Out += "\n]\n";
  return Out;
}

namespace {

/// Recursive-descent JSON checker over [Pos, Text.size()).
class JsonChecker {
public:
  explicit JsonChecker(const std::string &Text) : Text(Text) {}

  bool run() {
    skipWs();
    if (!value())
      return false;
    skipWs();
    return Pos == Text.size();
  }

private:
  bool value() {
    if (Depth > 256 || Pos >= Text.size())
      return false;
    char C = Text[Pos];
    if (C == '{')
      return object();
    if (C == '[')
      return array();
    if (C == '"')
      return string();
    if (C == '-' || (C >= '0' && C <= '9'))
      return number();
    return literal("true") || literal("false") || literal("null");
  }

  bool object() {
    ++Depth;
    ++Pos; // '{'
    skipWs();
    if (peek() == '}') {
      ++Pos;
      --Depth;
      return true;
    }
    for (;;) {
      skipWs();
      if (!string())
        return false;
      skipWs();
      if (peek() != ':')
        return false;
      ++Pos;
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == '}') {
        ++Pos;
        --Depth;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++Depth;
    ++Pos; // '['
    skipWs();
    if (peek() == ']') {
      ++Pos;
      --Depth;
      return true;
    }
    for (;;) {
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == ']') {
        ++Pos;
        --Depth;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"')
      return false;
    ++Pos;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C == '\\') {
        ++Pos;
        if (Pos >= Text.size())
          return false;
        char E = Text[Pos];
        if (E == 'u') {
          for (int I = 0; I < 4; ++I) {
            ++Pos;
            if (Pos >= Text.size() ||
                !std::isxdigit(static_cast<unsigned char>(Text[Pos])))
              return false;
          }
        } else if (!std::strchr("\"\\/bfnrt", E)) {
          return false;
        }
      } else if (static_cast<unsigned char>(C) < 0x20) {
        return false;
      }
      ++Pos;
    }
    return false;
  }

  bool number() {
    size_t Start = Pos;
    if (peek() == '-')
      ++Pos;
    if (!digits())
      return false;
    if (peek() == '.') {
      ++Pos;
      if (!digits())
        return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++Pos;
      if (peek() == '+' || peek() == '-')
        ++Pos;
      if (!digits())
        return false;
    }
    return Pos > Start;
  }

  bool digits() {
    size_t Start = Pos;
    while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
      ++Pos;
    return Pos > Start;
  }

  bool literal(const char *Word) {
    size_t Len = std::strlen(Word);
    if (Text.compare(Pos, Len, Word) != 0)
      return false;
    Pos += Len;
    return true;
  }

  char peek() const { return Pos < Text.size() ? Text[Pos] : '\0'; }
  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  const std::string &Text;
  size_t Pos = 0;
  int Depth = 0;
};

} // namespace

bool warrow::validateJsonSyntax(const std::string &Text) {
  return JsonChecker(Text).run();
}
