//===- trace/report.h - Human-readable convergence report -------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders aggregated trace metrics as a plain-text convergence report:
/// run totals, the top-k hottest unknowns (by evaluation count, with
/// their update/regime split and time-in-rhs), and the ⊟ mode-switch
/// table — every unknown that transitioned between the widening and
/// narrowing regimes, with transition counts and its final-stabilization
/// sequence number. This is the at-a-glance artifact for "why did this
/// analysis take 40k evaluations" questions; the Chrome exporter covers
/// the timeline view.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_TRACE_REPORT_H
#define WARROW_TRACE_REPORT_H

#include "trace/chrome_export.h" // UnknownNameFn
#include "trace/metrics.h"

#include <string>

namespace warrow {

/// Renders \p Metrics; \p TopK bounds the hottest-unknown table.
std::string convergenceReport(const TraceMetrics &Metrics,
                              std::size_t TopK = 10,
                              const UnknownNameFn &NameOf = nullptr);

} // namespace warrow

#endif // WARROW_TRACE_REPORT_H
