//===- trace/metrics.h - Per-unknown trace aggregation ----------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Aggregates an event stream into per-unknown metrics: evaluation and
/// update counts split by ⊟ regime, destabilization and queue traffic,
/// wall time spent inside right-hand sides, the sequence number at which
/// the unknown last changed (its final-stabilization point), and the
/// widen->narrow / narrow->widen mode switches of Lemma 1.
///
/// Aggregation is a pure function of the stream, so it applies equally
/// to live recorder output and to streams round-tripped through
/// trace/serialize.h — the equivalence the trace tests pin.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_TRACE_METRICS_H
#define WARROW_TRACE_METRICS_H

#include "trace/trace.h"

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace warrow {

/// Aggregate counters of one unknown.
struct UnknownMetrics {
  uint64_t Evals = 0;       ///< RhsEvalEnd events (cache hits included).
  uint64_t CachedEvals = 0; ///< RhsEvalEnd events with FromCache.
  uint64_t Updates = 0;
  uint64_t Widens = 0;  ///< Updates in the widening regime.
  uint64_t Narrows = 0; ///< Updates in the narrowing regime.
  uint64_t Joins = 0;   ///< Updates with incomparable movement.
  uint64_t Destabilized = 0;
  uint64_t Enqueues = 0;
  uint64_t TimeInRhsNs = 0; ///< Begin->End wall time (0 in replay mode).
  /// Widen->narrow regime transitions (⊟ switching △ on, Lemma 1) and
  /// narrow->widen transitions (only possible for non-monotonic systems
  /// or degrading operators).
  uint64_t WidenToNarrow = 0;
  uint64_t NarrowToWiden = 0;
  uint64_t FirstSeq = UINT64_MAX; ///< Seq of the first event mentioning x.
  uint64_t LastUpdateSeq = 0;     ///< Seq of the final update (0 if none).

  bool operator==(const UnknownMetrics &O) const = default;
};

/// Whole-run aggregation.
struct TraceMetrics {
  /// Keyed by unknown id; ordered so reports are deterministic.
  std::map<uint64_t, UnknownMetrics> PerUnknown;
  uint64_t TotalEvents = 0;
  uint64_t TotalEvals = 0;
  uint64_t TotalUpdates = 0;
  uint64_t PhaseChanges = 0;
  uint64_t WideningPoints = 0;
  uint64_t SideContributions = 0;

  bool operator==(const TraceMetrics &O) const = default;
};

/// Folds \p Events (in sequence order) into per-unknown metrics.
TraceMetrics aggregateTrace(const std::vector<TraceEvent> &Events);

/// The \p K unknowns with the most evaluations, hottest first (ties
/// broken by id for determinism).
std::vector<std::pair<uint64_t, UnknownMetrics>>
hottestUnknowns(const TraceMetrics &Metrics, std::size_t K);

} // namespace warrow

#endif // WARROW_TRACE_METRICS_H
