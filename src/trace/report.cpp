//===- trace/report.cpp - Human-readable convergence report ----------------==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "trace/report.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

using namespace warrow;

namespace {

std::string nameOr(const UnknownNameFn &NameOf, uint64_t Id) {
  if (NameOf)
    return NameOf(Id);
  return "u" + std::to_string(Id);
}

std::string fmtTimeNs(uint64_t Ns) {
  char Buf[48];
  if (Ns == 0)
    return "-";
  if (Ns >= 1000000)
    std::snprintf(Buf, sizeof(Buf), "%.2fms", static_cast<double>(Ns) / 1e6);
  else
    std::snprintf(Buf, sizeof(Buf), "%.1fus", static_cast<double>(Ns) / 1e3);
  return Buf;
}

void appendRow(std::string &Out, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendRow(std::string &Out, const char *Fmt, ...) {
  char Buf[256];
  va_list Ap;
  va_start(Ap, Fmt);
  std::vsnprintf(Buf, sizeof(Buf), Fmt, Ap);
  va_end(Ap);
  Out += Buf;
}

} // namespace

std::string warrow::convergenceReport(const TraceMetrics &Metrics,
                                      std::size_t TopK,
                                      const UnknownNameFn &NameOf) {
  std::string Out;
  Out += "=== convergence report ===\n";
  appendRow(Out,
            "events %" PRIu64 "  unknowns %zu  evals %" PRIu64
            "  updates %" PRIu64 "\n",
            Metrics.TotalEvents, Metrics.PerUnknown.size(), Metrics.TotalEvals,
            Metrics.TotalUpdates);
  appendRow(Out,
            "widening points %" PRIu64 "  side contributions %" PRIu64
            "  phase changes %" PRIu64 "\n",
            Metrics.WideningPoints, Metrics.SideContributions,
            Metrics.PhaseChanges);

  Out += "\n--- hottest unknowns (by rhs evaluations) ---\n";
  appendRow(Out, "%-24s %8s %7s %7s %7s %7s %9s %9s\n", "unknown", "evals",
            "cached", "widen", "narrow", "join", "rhs-time", "last-upd");
  for (const auto &[Id, U] : hottestUnknowns(Metrics, TopK))
    appendRow(Out,
              "%-24s %8" PRIu64 " %7" PRIu64 " %7" PRIu64 " %7" PRIu64
              " %7" PRIu64 " %9s %9" PRIu64 "\n",
              nameOr(NameOf, Id).c_str(), U.Evals, U.CachedEvals, U.Widens,
              U.Narrows, U.Joins, fmtTimeNs(U.TimeInRhsNs).c_str(),
              U.LastUpdateSeq);

  // The ⊟ mode-switch table: unknowns whose update regime flipped between
  // widening and narrowing. Lemma 1 says widen->narrow happens at most
  // once per unknown under a plain ⊟ with monotonic rhs; narrow->widen
  // flags non-monotonic behaviour or a degrading operator restart.
  Out += "\n--- mode switches (widen<->narrow) ---\n";
  bool Any = false;
  for (const auto &[Id, U] : Metrics.PerUnknown) {
    if (U.WidenToNarrow == 0 && U.NarrowToWiden == 0)
      continue;
    if (!Any) {
      appendRow(Out, "%-24s %8s %8s %9s\n", "unknown", "w->n", "n->w",
                "last-upd");
      Any = true;
    }
    appendRow(Out, "%-24s %8" PRIu64 " %8" PRIu64 " %9" PRIu64 "\n",
              nameOr(NameOf, Id).c_str(), U.WidenToNarrow, U.NarrowToWiden,
              U.LastUpdateSeq);
  }
  if (!Any)
    Out += "(none)\n";
  return Out;
}
