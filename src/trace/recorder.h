//===- trace/recorder.h - Buffered trace recorder ---------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `BufferedTraceRecorder` — the standard `TraceSink`: appends events to
/// per-thread buffers so that concurrent emission from solveParallelSW
/// workers contends only on one relaxed atomic (the global sequence
/// counter), never on a lock. A mutex is taken once per *thread* (buffer
/// registration), not per event. `events()` merges the buffers back into
/// global emission order by sequence number.
///
/// Deterministic replay: constructed with `CaptureTimestamps = false`,
/// the recorder stamps `TimeNs = 0` everywhere, making the serialized
/// stream of a single-threaded run a pure function of the solver's
/// decision sequence — the byte-identity property tests/trace_test.cpp
/// pins for every sequential solver.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_TRACE_RECORDER_H
#define WARROW_TRACE_RECORDER_H

#include "trace/trace.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

namespace warrow {

/// Thread-safe buffering sink; see file comment.
class BufferedTraceRecorder : public TraceSink {
public:
  explicit BufferedTraceRecorder(bool CaptureTimestamps = true);
  ~BufferedTraceRecorder() override;

  void event(TraceEvent E) override;

  /// All recorded events in emission (sequence) order. Call only after
  /// the traced solver run finished — merging is not synchronized with
  /// concurrent emission.
  std::vector<TraceEvent> events() const;

  /// Number of events recorded so far.
  uint64_t eventCount() const;

  /// Number of distinct emitting threads seen.
  uint32_t threadCount() const;

private:
  struct Buffer {
    std::vector<TraceEvent> Events;
    uint32_t Tid = 0;
  };

  Buffer &localBuffer();

  /// Identity surviving address reuse: thread-local registrations are
  /// keyed by this epoch, so a recorder allocated at a dead recorder's
  /// address never inherits its buffers.
  const uint64_t Epoch;
  const bool CaptureTimestamps;
  std::atomic<uint64_t> NextSeq{0};
  mutable std::mutex RegistryMutex;
  std::vector<std::unique_ptr<Buffer>> Buffers;
};

} // namespace warrow

#endif // WARROW_TRACE_RECORDER_H
