//===- trace/serialize.cpp - Event stream (de)serialization ----------------==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "trace/serialize.h"

#include <array>
#include <cinttypes>
#include <cstdio>
#include <cstring>

using namespace warrow;

namespace {

constexpr std::array<const char *, 10> KindNames = {
    "begin",   "end",  "update", "destab", "enq",
    "deq",     "dep",  "wpoint", "side",   "phase",
};

constexpr std::array<const char *, 4> UpdateKindNames = {"-", "widen",
                                                         "narrow", "join"};

} // namespace

const char *warrow::traceEventKindName(TraceEventKind Kind) {
  return KindNames[static_cast<size_t>(Kind)];
}

const char *warrow::updateKindName(UpdateKind Kind) {
  return UpdateKindNames[static_cast<size_t>(Kind)];
}

std::string warrow::serializeEvent(const TraceEvent &Event) {
  char Buf[192];
  std::snprintf(Buf, sizeof(Buf),
                "%" PRIu64 " %" PRIu64 " %" PRIu32 " %s %s %" PRIu64
                " %" PRIu64 " %d%d%d",
                Event.Seq, Event.TimeNs, Event.Tid,
                traceEventKindName(Event.Kind), updateKindName(Event.UKind),
                Event.Unknown, Event.Aux, Event.Grew ? 1 : 0,
                Event.Shrank ? 1 : 0, Event.FromCache ? 1 : 0);
  return Buf;
}

std::string warrow::serializeEvents(const std::vector<TraceEvent> &Events) {
  std::string Out;
  Out.reserve(Events.size() * 32);
  for (const TraceEvent &E : Events) {
    Out += serializeEvent(E);
    Out += '\n';
  }
  return Out;
}

std::optional<std::vector<TraceEvent>>
warrow::parseEvents(const std::string &Text) {
  std::vector<TraceEvent> Events;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    if (Eol == std::string::npos)
      return std::nullopt; // Every line must be newline-terminated.
    std::string Line = Text.substr(Pos, Eol - Pos);
    Pos = Eol + 1;

    TraceEvent E;
    char KindBuf[16] = {0};
    char UKindBuf[16] = {0};
    unsigned Grew = 0, Shrank = 0, FromCache = 0;
    int Matched = std::sscanf(
        Line.c_str(),
        "%" SCNu64 " %" SCNu64 " %" SCNu32 " %15s %15s %" SCNu64 " %" SCNu64
        " %1u%1u%1u",
        &E.Seq, &E.TimeNs, &E.Tid, KindBuf, UKindBuf, &E.Unknown, &E.Aux,
        &Grew, &Shrank, &FromCache);
    if (Matched != 10)
      return std::nullopt;
    E.Grew = Grew != 0;
    E.Shrank = Shrank != 0;
    E.FromCache = FromCache != 0;

    bool KindOk = false;
    for (size_t I = 0; I < KindNames.size(); ++I)
      if (std::strcmp(KindBuf, KindNames[I]) == 0) {
        E.Kind = static_cast<TraceEventKind>(I);
        KindOk = true;
        break;
      }
    bool UKindOk = false;
    for (size_t I = 0; I < UpdateKindNames.size(); ++I)
      if (std::strcmp(UKindBuf, UpdateKindNames[I]) == 0) {
        E.UKind = static_cast<UpdateKind>(I);
        UKindOk = true;
        break;
      }
    if (!KindOk || !UKindOk)
      return std::nullopt;
    Events.push_back(E);
  }
  return Events;
}
