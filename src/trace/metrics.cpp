//===- trace/metrics.cpp - Per-unknown trace aggregation -------------------==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "trace/metrics.h"

#include <algorithm>
#include <unordered_map>

using namespace warrow;

TraceMetrics warrow::aggregateTrace(const std::vector<TraceEvent> &Events) {
  TraceMetrics M;
  // Open Begin timestamps per unknown. Evaluations of one unknown never
  // nest (stable/on-stack guards), but evaluations of *different*
  // unknowns do (local solvers recurse), so the match is per-unknown.
  std::unordered_map<uint64_t, uint64_t> OpenBegin;
  // Last update regime per unknown, for mode-switch counting.
  std::unordered_map<uint64_t, UpdateKind> LastRegime;

  M.TotalEvents = Events.size();
  for (const TraceEvent &E : Events) {
    if (E.Kind == TraceEventKind::PhaseChange) {
      ++M.PhaseChanges;
      continue; // Carries no unknown.
    }
    UnknownMetrics &U = M.PerUnknown[E.Unknown];
    U.FirstSeq = std::min(U.FirstSeq, E.Seq);
    switch (E.Kind) {
    case TraceEventKind::RhsEvalBegin:
      OpenBegin[E.Unknown] = E.TimeNs;
      break;
    case TraceEventKind::RhsEvalEnd: {
      ++U.Evals;
      ++M.TotalEvals;
      if (E.FromCache)
        ++U.CachedEvals;
      auto It = OpenBegin.find(E.Unknown);
      if (It != OpenBegin.end()) {
        if (E.TimeNs >= It->second)
          U.TimeInRhsNs += E.TimeNs - It->second;
        OpenBegin.erase(It);
      }
      break;
    }
    case TraceEventKind::Update: {
      ++U.Updates;
      ++M.TotalUpdates;
      U.LastUpdateSeq = E.Seq;
      switch (E.UKind) {
      case UpdateKind::Widen:
        ++U.Widens;
        break;
      case UpdateKind::Narrow:
        ++U.Narrows;
        break;
      default:
        ++U.Joins;
        break;
      }
      auto [It, Fresh] = LastRegime.emplace(E.Unknown, E.UKind);
      if (!Fresh) {
        if (It->second == UpdateKind::Widen && E.UKind == UpdateKind::Narrow)
          ++U.WidenToNarrow;
        else if (It->second == UpdateKind::Narrow &&
                 E.UKind == UpdateKind::Widen)
          ++U.NarrowToWiden;
        It->second = E.UKind;
      }
      break;
    }
    case TraceEventKind::Destabilize:
      ++U.Destabilized;
      break;
    case TraceEventKind::Enqueue:
      ++U.Enqueues;
      break;
    case TraceEventKind::WideningPointMark:
      ++M.WideningPoints;
      break;
    case TraceEventKind::SideContribution:
      ++M.SideContributions;
      break;
    case TraceEventKind::Dequeue:
    case TraceEventKind::DependencyRecord:
      break; // Counted only via FirstSeq presence.
    case TraceEventKind::PhaseChange:
      break; // Handled above.
    }
  }
  return M;
}

std::vector<std::pair<uint64_t, UnknownMetrics>>
warrow::hottestUnknowns(const TraceMetrics &Metrics, std::size_t K) {
  std::vector<std::pair<uint64_t, UnknownMetrics>> All(
      Metrics.PerUnknown.begin(), Metrics.PerUnknown.end());
  std::sort(All.begin(), All.end(), [](const auto &A, const auto &B) {
    if (A.second.Evals != B.second.Evals)
      return A.second.Evals > B.second.Evals;
    return A.first < B.first;
  });
  if (All.size() > K)
    All.resize(K);
  return All;
}
