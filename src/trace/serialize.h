//===- trace/serialize.h - Event stream (de)serialization -------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A stable line-oriented text format for event streams: one event per
/// line, fields space-separated, kinds spelled as short mnemonics. The
/// format is a bijection on event contents, so
///
///     parseEvents(serializeEvents(Events)) == Events
///
/// — the round-trip the trace tests pin — and byte-comparing two
/// serialized streams is exactly comparing the event sequences (the
/// determinism tests). Timestamps are serialized verbatim; deterministic
/// comparisons should record with `CaptureTimestamps = false`.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_TRACE_SERIALIZE_H
#define WARROW_TRACE_SERIALIZE_H

#include "trace/trace.h"

#include <optional>
#include <string>
#include <vector>

namespace warrow {

/// Short mnemonic of an event kind ("begin", "update", ...).
const char *traceEventKindName(TraceEventKind Kind);

/// Short mnemonic of an update kind ("widen", "narrow", "join", "-").
const char *updateKindName(UpdateKind Kind);

/// Serializes one event as a single line (no trailing newline).
std::string serializeEvent(const TraceEvent &Event);

/// Serializes a stream, one event per line, each line newline-terminated.
std::string serializeEvents(const std::vector<TraceEvent> &Events);

/// Parses a stream serialized by `serializeEvents`. Returns nullopt on
/// any malformed line.
std::optional<std::vector<TraceEvent>> parseEvents(const std::string &Text);

} // namespace warrow

#endif // WARROW_TRACE_SERIALIZE_H
