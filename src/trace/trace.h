//===- trace/trace.h - Solver observability events --------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event vocabulary of the solver observability layer (DESIGN §6d).
/// Every solver, when handed a `TraceSink` through `SolverOptions::Trace`,
/// narrates its run as a stream of typed `TraceEvent`s:
///
///   RhsEvalBegin/End    one right-hand-side evaluation (End carries a
///                       from-cache flag when the read cache answered)
///   Update              sigma[x] changed; carries the ⊟ regime the update
///                       ran in (widen/narrow/join) and growth direction
///   Destabilize         x was removed from `stable` (Aux = the unknown
///                       whose update or side effect caused it)
///   Enqueue/Dequeue     worklist / priority-queue traffic
///   DependencyRecord    x read y through `eval` (Unknown = reader x,
///                       Aux = read unknown y)
///   WideningPointMark   x dynamically detected as a widening point
///                       (SLR+ localized mode, Example 9)
///   SideContribution    a side effect onto Unknown from contributor Aux
///   PhaseChange         two-phase solvers: ascending -> descending
///
/// Unknowns are identified by dense ids: the variable index for dense
/// systems, the discovery slot (the negated `key` of Fig. 6) for the
/// local solvers. Sequence numbers, timestamps, and thread ids are
/// stamped by the sink, not the solver, so deterministic replay can
/// disable wall-clock capture (see recorder.h).
///
/// The traced-off path is bit- and perf-identical: every emission site
/// is guarded by `if (Options.Trace)` and touches no solver state.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_TRACE_TRACE_H
#define WARROW_TRACE_TRACE_H

#include <cstdint>

namespace warrow {

/// Discriminator of a trace event.
enum class TraceEventKind : uint8_t {
  RhsEvalBegin,
  RhsEvalEnd,
  Update,
  Destabilize,
  Enqueue,
  Dequeue,
  DependencyRecord,
  WideningPointMark,
  SideContribution,
  PhaseChange,
};

/// The ⊟ regime an update ran in, classified from the value ordering
/// (not from the operator object, which solvers treat as a black box):
/// `Narrow` when the right-hand side stayed below the old value (the
/// branch where ⊟ applies △), `Widen` when the combined result grew
/// (the ▽ branch), `Join` for incomparable movement (possible only for
/// non-⊟ operators, e.g. plain assignment under localized widening).
enum class UpdateKind : uint8_t { None, Widen, Narrow, Join };

/// One solver event. Plain data; `Seq`, `TimeNs`, and `Tid` are zero
/// until a sink stamps them.
struct TraceEvent {
  uint64_t Seq = 0;    ///< Global emission order (stamped by the sink).
  uint64_t TimeNs = 0; ///< Steady-clock nanoseconds (0 in replay mode).
  uint32_t Tid = 0;    ///< Dense per-recorder thread id.
  TraceEventKind Kind = TraceEventKind::RhsEvalBegin;
  UpdateKind UKind = UpdateKind::None; ///< Valid for Update only.
  uint64_t Unknown = 0; ///< Primary unknown id (see file comment).
  uint64_t Aux = 0;     ///< Secondary id: cause / contributor / read.
  bool Grew = false;    ///< Update: old ⊑ new.
  bool Shrank = false;  ///< Update: new ⊑ old.
  bool FromCache = false; ///< RhsEvalEnd: answered by the read cache.

  bool operator==(const TraceEvent &O) const = default;

  static TraceEvent rhsBegin(uint64_t X) {
    TraceEvent E;
    E.Kind = TraceEventKind::RhsEvalBegin;
    E.Unknown = X;
    return E;
  }
  static TraceEvent rhsEnd(uint64_t X, bool FromCache = false) {
    TraceEvent E;
    E.Kind = TraceEventKind::RhsEvalEnd;
    E.Unknown = X;
    E.FromCache = FromCache;
    return E;
  }
  /// Classifies an accepted update from the three values involved:
  /// \p Old = sigma[x] before, \p Rhs = f_x(sigma), \p Combined = the
  /// new sigma[x] (which differs from Old at every emission site).
  template <typename D>
  static TraceEvent update(uint64_t X, const D &Old, const D &Rhs,
                           const D &Combined) {
    TraceEvent E;
    E.Kind = TraceEventKind::Update;
    E.Unknown = X;
    E.Grew = Old.leq(Combined);
    E.Shrank = Combined.leq(Old);
    if (Rhs.leq(Old))
      E.UKind = UpdateKind::Narrow;
    else if (E.Grew)
      E.UKind = UpdateKind::Widen;
    else
      E.UKind = UpdateKind::Join;
    return E;
  }
  static TraceEvent destabilize(uint64_t X, uint64_t Cause) {
    TraceEvent E;
    E.Kind = TraceEventKind::Destabilize;
    E.Unknown = X;
    E.Aux = Cause;
    return E;
  }
  static TraceEvent enqueue(uint64_t X) {
    TraceEvent E;
    E.Kind = TraceEventKind::Enqueue;
    E.Unknown = X;
    return E;
  }
  static TraceEvent dequeue(uint64_t X) {
    TraceEvent E;
    E.Kind = TraceEventKind::Dequeue;
    E.Unknown = X;
    return E;
  }
  static TraceEvent dependency(uint64_t Reader, uint64_t Read) {
    TraceEvent E;
    E.Kind = TraceEventKind::DependencyRecord;
    E.Unknown = Reader;
    E.Aux = Read;
    return E;
  }
  static TraceEvent wideningPoint(uint64_t X) {
    TraceEvent E;
    E.Kind = TraceEventKind::WideningPointMark;
    E.Unknown = X;
    return E;
  }
  static TraceEvent sideContribution(uint64_t Target, uint64_t From) {
    TraceEvent E;
    E.Kind = TraceEventKind::SideContribution;
    E.Unknown = Target;
    E.Aux = From;
    return E;
  }
  /// \p Phase: 0 = ascending (widening), 1 = descending (narrowing);
  /// \p Round numbers descending sweeps from 0.
  static TraceEvent phaseChange(uint64_t Phase, uint64_t Round = 0) {
    TraceEvent E;
    E.Kind = TraceEventKind::PhaseChange;
    E.Unknown = Round;
    E.Aux = Phase;
    return E;
  }
};

/// Receiver of solver events. Implementations must tolerate concurrent
/// `event` calls (solveParallelSW emits from worker threads).
class TraceSink {
public:
  virtual ~TraceSink() = default;
  virtual void event(TraceEvent E) = 0;
};

} // namespace warrow

#endif // WARROW_TRACE_TRACE_H
