//===- lang/cfg.cpp - Control-flow graphs ------------------------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/cfg.h"

#include "lang/pretty.h"
#include "lang/sema.h"
#include "support/casting.h"

#include <cassert>
#include <functional>

using namespace warrow;

std::string Action::str(const Interner &Symbols) const {
  switch (K) {
  case Kind::Skip:
    return "skip";
  case Kind::DeclScalar:
    return "decl " + Symbols.spelling(Lhs);
  case Kind::DeclArray:
    return "decl-array " + Symbols.spelling(Lhs);
  case Kind::Assign:
    return Symbols.spelling(Lhs) + " = " + printExpr(*Value, Symbols);
  case Kind::Store:
    return Symbols.spelling(Lhs) + "[" + printExpr(*Index, Symbols) +
           "] = " + printExpr(*Value, Symbols);
  case Kind::Guard:
    return std::string(Positive ? "guard " : "guard !(") +
           printExpr(*Value, Symbols) + (Positive ? "" : ")");
  case Kind::Assert:
    return "assert(" + printExpr(*Value, Symbols) + ")";
  case Kind::Call: {
    std::string Out;
    if (Lhs)
      Out += Symbols.spelling(Lhs) + " = ";
    Out += Symbols.spelling(Callee) + "(";
    for (size_t I = 0; I < Args.size(); ++I) {
      if (I)
        Out += ", ";
      Out += printExpr(*Args[I], Symbols);
    }
    return Out + ")";
  }
  case Kind::Input:
    return Symbols.spelling(Lhs) + " = unknown()";
  case Kind::Spawn: {
    std::string Out = "spawn " + Symbols.spelling(Callee) + "(";
    for (size_t I = 0; I < Args.size(); ++I) {
      if (I)
        Out += ", ";
      Out += printExpr(*Args[I], Symbols);
    }
    return Out + ")";
  }
  case Kind::Lock:
    return "lock(" + Symbols.spelling(Lhs) + ")";
  case Kind::Unlock:
    return "unlock(" + Symbols.spelling(Lhs) + ")";
  }
  return "?";
}

uint32_t Cfg::addNode(uint32_t Line) {
  NodeLines.push_back(Line);
  In.emplace_back();
  Out.emplace_back();
  return static_cast<uint32_t>(NodeLines.size() - 1);
}

void Cfg::addEdge(uint32_t From, uint32_t To, Action Act) {
  assert(From < numNodes() && To < numNodes() && "edge endpoints exist");
  uint32_t Id = static_cast<uint32_t>(Edges.size());
  Edges.push_back({From, To, std::move(Act)});
  Out[From].push_back(Id);
  In[To].push_back(Id);
}

const Expr *Cfg::adoptExpr(ExprPtr E) {
  OwnedExprs.push_back(std::move(E));
  return OwnedExprs.back().get();
}

std::vector<uint32_t> Cfg::reversePostOrder() const {
  std::vector<uint32_t> Post;
  std::vector<char> Visited(numNodes(), 0);
  // Iterative DFS with an explicit stack of (node, next-out-edge-index).
  std::vector<std::pair<uint32_t, size_t>> Stack;
  Stack.push_back({EntryNode, 0});
  Visited[EntryNode] = 1;
  while (!Stack.empty()) {
    auto &[Node, NextIdx] = Stack.back();
    if (NextIdx < Out[Node].size()) {
      uint32_t Succ = Edges[Out[Node][NextIdx]].To;
      ++NextIdx;
      if (!Visited[Succ]) {
        Visited[Succ] = 1;
        Stack.push_back({Succ, 0});
      }
      continue;
    }
    Post.push_back(Node);
    Stack.pop_back();
  }
  std::vector<uint32_t> Rpo(Post.rbegin(), Post.rend());
  // Append unreachable nodes (dead code) in index order.
  for (uint32_t N = 0; N < numNodes(); ++N)
    if (!Visited[N])
      Rpo.push_back(N);
  return Rpo;
}

size_t ProgramCfg::totalNodes() const {
  size_t Total = 0;
  for (const Cfg &C : Funcs)
    Total += C.numNodes();
  return Total;
}

namespace {

/// Statement-to-CFG lowering for one function.
class CfgBuilder {
public:
  CfgBuilder(Program &P, Cfg &G)
      : P(P), G(G), UnknownSym(P.Symbols.lookup(UnknownBuiltinName)),
        RetSym(P.Symbols.intern(ReturnValueName)) {}

  void build(const FuncDecl &F) {
    uint32_t Entry = G.addNode(F.Line);
    uint32_t Exit = G.addNode(F.Line);
    assert(Entry == Cfg::EntryNode && Exit == Cfg::ExitNode &&
           "entry/exit convention");
    (void)Entry;
    (void)Exit;
    uint32_t End = lower(*F.Body, Cfg::EntryNode);
    // Fall-through at the end of the body.
    G.addEdge(End, Cfg::ExitNode, Action{});
  }

private:
  struct LoopContext {
    uint32_t BreakTarget;
    uint32_t ContinueTarget;
  };

  /// Lowers \p S starting at node \p Cur; returns the node reached after
  /// the statement completes normally.
  uint32_t lower(const Stmt &S, uint32_t Cur);
  /// Lowers an assignment of expression \p Value into scalar \p Lhs,
  /// handling root-position calls and `unknown()`.
  uint32_t lowerAssign(Symbol Lhs, const Expr &Value, uint32_t Cur,
                       uint32_t Line);

  Action guard(const Expr *Cond, bool Positive) {
    Action A;
    A.K = Action::Kind::Guard;
    A.Value = Cond;
    A.Positive = Positive;
    return A;
  }

  Program &P;
  Cfg &G;
  Symbol UnknownSym;
  Symbol RetSym;
  std::vector<LoopContext> Loops;
};

uint32_t CfgBuilder::lowerAssign(Symbol Lhs, const Expr &Value, uint32_t Cur,
                                 uint32_t Line) {
  uint32_t Next = G.addNode(Line);
  if (const auto *Call = dyn_cast<CallExpr>(&Value)) {
    Action A;
    if (UnknownSym && Call->callee() == UnknownSym) {
      A.K = Action::Kind::Input;
      A.Lhs = Lhs;
    } else {
      A.K = Action::Kind::Call;
      A.Lhs = Lhs;
      A.Callee = Call->callee();
      for (const ExprPtr &Arg : Call->args())
        A.Args.push_back(Arg.get());
    }
    G.addEdge(Cur, Next, std::move(A));
    return Next;
  }
  Action A;
  A.K = Action::Kind::Assign;
  A.Lhs = Lhs;
  A.Value = &Value;
  G.addEdge(Cur, Next, std::move(A));
  return Next;
}

uint32_t CfgBuilder::lower(const Stmt &S, uint32_t Cur) {
  switch (S.kind()) {
  case Stmt::Kind::Block: {
    for (const StmtPtr &Child : cast<BlockStmt>(&S)->stmts())
      Cur = lower(*Child, Cur);
    return Cur;
  }
  case Stmt::Kind::Decl: {
    const auto *D = cast<DeclStmt>(&S);
    if (D->isArray()) {
      uint32_t Next = G.addNode(S.line());
      Action A;
      A.K = Action::Kind::DeclArray;
      A.Lhs = D->name();
      G.addEdge(Cur, Next, std::move(A));
      return Next;
    }
    if (D->init())
      return lowerAssign(D->name(), *D->init(), Cur, S.line());
    uint32_t Next = G.addNode(S.line());
    Action A;
    A.K = Action::Kind::DeclScalar;
    A.Lhs = D->name();
    G.addEdge(Cur, Next, std::move(A));
    return Next;
  }
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(&S);
    return lowerAssign(A->name(), A->value(), Cur, S.line());
  }
  case Stmt::Kind::ArrayAssign: {
    const auto *St = cast<ArrayAssignStmt>(&S);
    uint32_t Next = G.addNode(S.line());
    Action A;
    A.K = Action::Kind::Store;
    A.Lhs = St->name();
    A.Index = &St->index();
    A.Value = &St->value();
    G.addEdge(Cur, Next, std::move(A));
    return Next;
  }
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(&S);
    uint32_t ThenEntry = G.addNode(I->thenStmt().line());
    uint32_t Join = G.addNode(S.line());
    G.addEdge(Cur, ThenEntry, guard(&I->cond(), true));
    uint32_t ThenEnd = lower(I->thenStmt(), ThenEntry);
    G.addEdge(ThenEnd, Join, Action{});
    if (I->elseStmt()) {
      uint32_t ElseEntry = G.addNode(I->elseStmt()->line());
      G.addEdge(Cur, ElseEntry, guard(&I->cond(), false));
      uint32_t ElseEnd = lower(*I->elseStmt(), ElseEntry);
      G.addEdge(ElseEnd, Join, Action{});
    } else {
      G.addEdge(Cur, Join, guard(&I->cond(), false));
    }
    return Join;
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(&S);
    uint32_t Head = G.addNode(S.line());
    uint32_t BodyEntry = G.addNode(W->body().line());
    uint32_t After = G.addNode(S.line());
    G.addEdge(Cur, Head, Action{});
    G.addEdge(Head, BodyEntry, guard(&W->cond(), true));
    G.addEdge(Head, After, guard(&W->cond(), false));
    Loops.push_back({After, Head});
    uint32_t BodyEnd = lower(W->body(), BodyEntry);
    Loops.pop_back();
    G.addEdge(BodyEnd, Head, Action{});
    return After;
  }
  case Stmt::Kind::For: {
    const auto *F = cast<ForStmt>(&S);
    if (F->init())
      Cur = lower(*F->init(), Cur);
    const Expr *Cond = F->cond();
    if (!Cond)
      Cond = G.adoptExpr(std::make_unique<IntLit>(1, S.line()));
    uint32_t Head = G.addNode(S.line());
    uint32_t BodyEntry = G.addNode(F->body().line());
    uint32_t StepEntry = G.addNode(S.line());
    uint32_t After = G.addNode(S.line());
    G.addEdge(Cur, Head, Action{});
    G.addEdge(Head, BodyEntry, guard(Cond, true));
    G.addEdge(Head, After, guard(Cond, false));
    Loops.push_back({After, StepEntry});
    uint32_t BodyEnd = lower(F->body(), BodyEntry);
    Loops.pop_back();
    G.addEdge(BodyEnd, StepEntry, Action{});
    uint32_t StepEnd = StepEntry;
    if (F->step())
      StepEnd = lower(*F->step(), StepEntry);
    G.addEdge(StepEnd, Head, Action{});
    return After;
  }
  case Stmt::Kind::ExprCall: {
    const CallExpr &Call = cast<ExprCallStmt>(&S)->call();
    uint32_t Next = G.addNode(S.line());
    if (UnknownSym && Call.callee() == UnknownSym) {
      G.addEdge(Cur, Next, Action{}); // Discarded input: no-op.
      return Next;
    }
    Action A;
    A.K = Action::Kind::Call;
    A.Lhs = 0;
    A.Callee = Call.callee();
    for (const ExprPtr &Arg : Call.args())
      A.Args.push_back(Arg.get());
    G.addEdge(Cur, Next, std::move(A));
    return Next;
  }
  case Stmt::Kind::Return: {
    const auto *R = cast<ReturnStmt>(&S);
    if (R->value()) {
      Action A;
      A.K = Action::Kind::Assign;
      A.Lhs = RetSym;
      A.Value = R->value();
      G.addEdge(Cur, Cfg::ExitNode, std::move(A));
    } else {
      G.addEdge(Cur, Cfg::ExitNode, Action{});
    }
    // Code after a return is unreachable; give it a fresh island node.
    return G.addNode(S.line());
  }
  case Stmt::Kind::Break: {
    assert(!Loops.empty() && "break outside loop survived sema");
    G.addEdge(Cur, Loops.back().BreakTarget, Action{});
    return G.addNode(S.line());
  }
  case Stmt::Kind::Continue: {
    assert(!Loops.empty() && "continue outside loop survived sema");
    G.addEdge(Cur, Loops.back().ContinueTarget, Action{});
    return G.addNode(S.line());
  }
  case Stmt::Kind::Empty:
    return Cur;
  case Stmt::Kind::Spawn: {
    const CallExpr &Call = cast<SpawnStmt>(&S)->call();
    uint32_t Next = G.addNode(S.line());
    Action A;
    A.K = Action::Kind::Spawn;
    A.Callee = Call.callee();
    for (const ExprPtr &Arg : Call.args())
      A.Args.push_back(Arg.get());
    G.addEdge(Cur, Next, std::move(A));
    return Next;
  }
  case Stmt::Kind::Assert: {
    uint32_t Next = G.addNode(S.line());
    Action A;
    A.K = Action::Kind::Assert;
    A.Value = &cast<AssertStmt>(&S)->cond();
    A.Positive = true;
    G.addEdge(Cur, Next, std::move(A));
    return Next;
  }
  case Stmt::Kind::Lock: {
    uint32_t Next = G.addNode(S.line());
    Action A;
    A.K = Action::Kind::Lock;
    A.Lhs = cast<LockStmt>(&S)->mutex();
    G.addEdge(Cur, Next, std::move(A));
    return Next;
  }
  case Stmt::Kind::Unlock: {
    uint32_t Next = G.addNode(S.line());
    Action A;
    A.K = Action::Kind::Unlock;
    A.Lhs = cast<UnlockStmt>(&S)->mutex();
    G.addEdge(Cur, Next, std::move(A));
    return Next;
  }
  }
  assert(false && "unhandled statement kind");
  return Cur;
}

} // namespace

Cfg warrow::buildCfg(const FuncDecl &F, Program &P) {
  Cfg G;
  CfgBuilder Builder(P, G);
  Builder.build(F);
  return G;
}

ProgramCfg warrow::buildProgramCfg(Program &P) {
  ProgramCfg PC;
  PC.Prog = &P;
  PC.Funcs.reserve(P.Functions.size());
  for (const auto &F : P.Functions)
    PC.Funcs.push_back(buildCfg(*F, P));
  return PC;
}
