//===- lang/diagnostics.cpp - Diagnostic collection -------------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/diagnostics.h"

using namespace warrow;

std::string Diagnostic::str() const {
  std::string Out = std::to_string(Line) + ":" + std::to_string(Column) + ": ";
  Out += Level == Severity::Error ? "error: " : "warning: ";
  Out += Message;
  return Out;
}

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}
