//===- lang/ast.cpp - Mini-C abstract syntax --------------------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/ast.h"

using namespace warrow;

bool warrow::isComparison(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Lt:
  case BinaryOp::Le:
  case BinaryOp::Gt:
  case BinaryOp::Ge:
  case BinaryOp::Eq:
  case BinaryOp::Ne:
    return true;
  default:
    return false;
  }
}

bool warrow::isLogical(BinaryOp Op) {
  return Op == BinaryOp::LAnd || Op == BinaryOp::LOr;
}

const char *warrow::spelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Rem:
    return "%";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::LAnd:
    return "&&";
  case BinaryOp::LOr:
    return "||";
  }
  return "?";
}

const CallExpr &ExprCallStmt::call() const { return *cast<CallExpr>(Call.get()); }

const CallExpr &SpawnStmt::call() const { return *cast<CallExpr>(Call.get()); }

const FuncDecl *Program::function(Symbol Name) const {
  for (const auto &F : Functions)
    if (F->Name == Name)
      return F.get();
  return nullptr;
}

size_t Program::functionIndex(Symbol Name) const {
  for (size_t I = 0; I < Functions.size(); ++I)
    if (Functions[I]->Name == Name)
      return I;
  return Functions.size();
}

const GlobalDecl *Program::global(Symbol Name) const {
  for (const auto &G : Globals)
    if (G.Name == Name)
      return &G;
  return nullptr;
}

const MutexDecl *Program::mutex(Symbol Name) const {
  for (const auto &M : Mutexes)
    if (M.Name == Name)
      return &M;
  return nullptr;
}
