//===- lang/parser.h - Mini-C parser ----------------------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for mini-C. Produces a `Program`; on error,
/// diagnostics are recorded and null is returned.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_LANG_PARSER_H
#define WARROW_LANG_PARSER_H

#include "lang/ast.h"
#include "lang/diagnostics.h"
#include "lang/token.h"

#include <memory>
#include <string_view>
#include <vector>

namespace warrow {

/// Parses \p Source into a Program. Returns null if any error was
/// diagnosed (lexical, syntactic, or semantic — `parseProgram` runs the
/// semantic checks of `sema.h` as its final step).
std::unique_ptr<Program> parseProgram(std::string_view Source,
                                      DiagnosticEngine &Diags);

/// Implementation class (exposed for tests of error recovery).
class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags)
      : Tokens(std::move(Tokens)), Diags(Diags) {}

  /// Parses a whole translation unit (without running sema).
  std::unique_ptr<Program> parse();

private:
  // --- Token helpers -------------------------------------------------------
  const Token &peek(size_t Ahead = 0) const;
  const Token &current() const { return peek(0); }
  Token consume();
  bool check(TokenKind Kind) const { return current().is(Kind); }
  bool match(TokenKind Kind);
  /// Consumes a token of \p Kind or diagnoses an error. Returns success.
  bool expect(TokenKind Kind, const char *Context);
  void error(const Token &At, std::string Message);
  /// Skips tokens until a statement/declaration boundary.
  void synchronize();

  // --- Declarations --------------------------------------------------------
  bool parseTopLevel(Program &P);
  std::unique_ptr<FuncDecl> parseFunction(bool ReturnsVoid, Program &P);

  // --- Statements ----------------------------------------------------------
  StmtPtr parseStmt(Program &P);
  StmtPtr parseBlock(Program &P);
  /// Declaration, assignment, or call — the forms legal in `for` headers.
  /// \p RequireSemi controls whether a trailing ';' is consumed.
  StmtPtr parseSimpleStmt(Program &P, bool RequireSemi);

  // --- Expressions (precedence climbing) ------------------------------------
  ExprPtr parseExpr(Program &P) { return parseLOr(P); }
  ExprPtr parseLOr(Program &P);
  ExprPtr parseLAnd(Program &P);
  ExprPtr parseEquality(Program &P);
  ExprPtr parseRelational(Program &P);
  ExprPtr parseAdditive(Program &P);
  ExprPtr parseMultiplicative(Program &P);
  ExprPtr parseUnary(Program &P);
  ExprPtr parsePrimary(Program &P);

  std::vector<Token> Tokens;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
};

} // namespace warrow

#endif // WARROW_LANG_PARSER_H
