//===- lang/diagnostics.h - Diagnostic collection ---------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Error/warning collection for the front-end. The library is
/// exception-free; the lexer/parser/sema record diagnostics here and
/// return null / partial results on failure.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_LANG_DIAGNOSTICS_H
#define WARROW_LANG_DIAGNOSTICS_H

#include <cstdint>
#include <string>
#include <vector>

namespace warrow {

/// One diagnostic message with a source position.
struct Diagnostic {
  enum class Severity { Error, Warning } Level = Severity::Error;
  uint32_t Line = 0;
  uint32_t Column = 0;
  std::string Message;

  /// "line:col: error: message" (messages start lowercase, no trailing
  /// period, per the coding standard).
  std::string str() const;
};

/// Accumulates diagnostics across front-end phases.
class DiagnosticEngine {
public:
  void error(uint32_t Line, uint32_t Column, std::string Message) {
    Diags.push_back(
        {Diagnostic::Severity::Error, Line, Column, std::move(Message)});
    ++Errors;
  }
  void warning(uint32_t Line, uint32_t Column, std::string Message) {
    Diags.push_back(
        {Diagnostic::Severity::Warning, Line, Column, std::move(Message)});
  }

  bool hasErrors() const { return Errors != 0; }
  const std::vector<Diagnostic> &all() const { return Diags; }

  /// All diagnostics rendered one per line.
  std::string str() const;

private:
  std::vector<Diagnostic> Diags;
  unsigned Errors = 0;
};

} // namespace warrow

#endif // WARROW_LANG_DIAGNOSTICS_H
