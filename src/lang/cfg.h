//===- lang/cfg.h - Control-flow graphs -------------------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Control-flow graphs for mini-C functions. Nodes are program points;
/// edges carry `Action`s (the small-step statements the abstract and
/// concrete interpreters execute). The analysis unknowns of the paper's
/// experiments are exactly (function, node, context) triples over these
/// graphs.
///
/// Conventions:
///  - node 0 is the function entry, node 1 the (unique) exit;
///  - `return e` becomes an `Assign` to the reserved symbol `$ret`
///    followed by a jump to the exit node;
///  - branch nodes have exactly two outgoing `Guard` edges with
///    complementary polarity on the same condition;
///  - arrays are declared via `DeclArray` (zero-initialized), scalars via
///    `DeclScalar` (initialized to 0 concretely, unconstrained
///    abstractly).
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_LANG_CFG_H
#define WARROW_LANG_CFG_H

#include "lang/ast.h"

#include <cstdint>
#include <string>
#include <vector>

namespace warrow {

/// The reserved name binding a function's return value in its exit
/// environment.
constexpr const char *ReturnValueName = "$ret";

/// One small-step operation labelling a CFG edge.
struct Action {
  enum class Kind : uint8_t {
    Skip,       ///< No-op.
    DeclScalar, ///< Declare scalar Lhs (concretely 0, abstractly top).
    DeclArray,  ///< Declare array Lhs, zero-initialized.
    Assign,     ///< Lhs = Value (Lhs scalar local or global).
    Store,      ///< Lhs[Index] = Value (Lhs array local or global).
    Guard,      ///< Pass iff truth(Value) == Positive.
    Assert,     ///< assert(Value): refines like a positive guard; the
                ///< bounds checker alarms when Value may be zero.
    Call,       ///< Lhs = Callee(Args); Lhs may be 0 (ignored result).
    Input,      ///< Lhs = unknown() — an arbitrary integer.
    Spawn,      ///< spawn Callee(Args): start a thread, discard result.
    Lock,       ///< lock(Lhs): acquire mutex Lhs.
    Unlock,     ///< unlock(Lhs): release mutex Lhs.
  };

  Kind K = Kind::Skip;
  Symbol Lhs = 0;
  const Expr *Value = nullptr;
  const Expr *Index = nullptr;
  bool Positive = true;
  Symbol Callee = 0;
  std::vector<const Expr *> Args;

  /// Diagnostic rendering ("x = e", "guard(c)", ...).
  std::string str(const Interner &Symbols) const;
};

/// A CFG edge From -> To labelled with Act.
struct CfgEdge {
  uint32_t From = 0;
  uint32_t To = 0;
  Action Act;
};

/// The control-flow graph of one function.
class Cfg {
public:
  static constexpr uint32_t EntryNode = 0;
  static constexpr uint32_t ExitNode = 1;

  uint32_t entry() const { return EntryNode; }
  uint32_t exit() const { return ExitNode; }
  size_t numNodes() const { return NodeLines.size(); }
  size_t numEdges() const { return Edges.size(); }

  const std::vector<CfgEdge> &edges() const { return Edges; }
  const CfgEdge &edge(uint32_t EdgeId) const { return Edges[EdgeId]; }
  /// Ids of edges entering \p Node.
  const std::vector<uint32_t> &inEdges(uint32_t Node) const {
    return In[Node];
  }
  /// Ids of edges leaving \p Node.
  const std::vector<uint32_t> &outEdges(uint32_t Node) const {
    return Out[Node];
  }
  /// Source line associated with \p Node (0 if synthetic).
  uint32_t lineOf(uint32_t Node) const { return NodeLines[Node]; }

  uint32_t addNode(uint32_t Line = 0);
  void addEdge(uint32_t From, uint32_t To, Action Act);

  /// Adopts a synthesized expression (e.g. the implicit `1` of an empty
  /// for-condition) so its lifetime matches the CFG's.
  const Expr *adoptExpr(ExprPtr E);

  /// Nodes in reverse post-order from the entry (good iteration order for
  /// the structured solvers; Bourdoncle's observation in Section 4).
  std::vector<uint32_t> reversePostOrder() const;

private:
  std::vector<CfgEdge> Edges;
  std::vector<std::vector<uint32_t>> In, Out;
  std::vector<uint32_t> NodeLines;
  std::vector<ExprPtr> OwnedExprs;
};

/// CFGs of all functions of a program (indexed like Program::Functions).
struct ProgramCfg {
  const Program *Prog = nullptr;
  std::vector<Cfg> Funcs;

  const Cfg &cfgOf(size_t FuncIndex) const { return Funcs[FuncIndex]; }
  /// Total number of CFG nodes across all functions.
  size_t totalNodes() const;
};

/// Builds the CFG of \p F (which must have passed sema).
Cfg buildCfg(const FuncDecl &F, Program &P);

/// Builds CFGs for every function of \p P. (Non-const: interns `$ret` and
/// may intern synthetic names.)
ProgramCfg buildProgramCfg(Program &P);

} // namespace warrow

#endif // WARROW_LANG_CFG_H
