//===- lang/token.cpp - Mini-C tokens --------------------------------------==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/token.h"

using namespace warrow;

std::string_view warrow::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Error:
    return "invalid token";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwVoid:
    return "'void'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwBreak:
    return "'break'";
  case TokenKind::KwContinue:
    return "'continue'";
  case TokenKind::KwAssert:
    return "'assert'";
  case TokenKind::KwSpawn:
    return "'spawn'";
  case TokenKind::KwLock:
    return "'lock'";
  case TokenKind::KwUnlock:
    return "'unlock'";
  case TokenKind::KwMutex:
    return "'mutex'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEqual:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEqual:
    return "'>='";
  case TokenKind::EqualEqual:
    return "'=='";
  case TokenKind::BangEqual:
    return "'!='";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::Bang:
    return "'!'";
  }
  return "unknown token";
}
