//===- lang/sema.cpp - Mini-C semantic checks --------------------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/sema.h"

#include "support/casting.h"

#include <functional>
#include <unordered_set>

using namespace warrow;

namespace {

/// Per-function checking context.
class SemaChecker {
public:
  SemaChecker(const Program &P, DiagnosticEngine &Diags)
      : P(P), Diags(Diags) {
    UnknownSym = P.Symbols.lookup(UnknownBuiltinName);
  }

  bool run();

private:
  void checkFunction(const FuncDecl &F);
  void collectDecls(const Stmt &S);
  void collectLockedMutexes(const Stmt &S);
  void checkStmt(const Stmt &S, unsigned LoopDepth);
  /// Checks an expression. \p CallAllowed permits a root-position call to
  /// a declared function; \p UnknownAllowed permits the `unknown()`
  /// builtin (banned inside conditions, which guard edges may evaluate
  /// more than once).
  void checkExpr(const Expr &E, bool CallAllowed, bool UnknownAllowed = true);
  void checkCall(const CallExpr &Call, bool AsStatement);

  bool isKnownScalar(Symbol Name) const {
    if (Vars.isScalar(Name))
      return true;
    const GlobalDecl *G = P.global(Name);
    return G && !G->isArray();
  }
  bool isKnownArray(Symbol Name) const {
    if (Vars.isArray(Name))
      return true;
    const GlobalDecl *G = P.global(Name);
    return G && G->isArray();
  }

  const Program &P;
  DiagnosticEngine &Diags;
  Symbol UnknownSym = 0;
  const FuncDecl *CurrentFunc = nullptr;
  FuncVars Vars;
  /// Mutexes that appear in a `lock` somewhere in the current function;
  /// `unlock` of anything else is diagnosed (it could never be held).
  std::unordered_set<Symbol> LockedInFunc;
};

bool SemaChecker::run() {
  // Unique global names.
  std::unordered_set<Symbol> GlobalNames;
  for (const GlobalDecl &G : P.Globals) {
    if (!GlobalNames.insert(G.Name).second)
      Diags.error(G.Line, 1,
                  "duplicate global '" + P.Symbols.spelling(G.Name) + "'");
    if (G.isArray() && G.ArraySize <= 0)
      Diags.error(G.Line, 1, "array size must be positive");
  }

  // Unique mutex names; no mutex/global clash.
  std::unordered_set<Symbol> MutexNames;
  for (const MutexDecl &M : P.Mutexes) {
    if (!MutexNames.insert(M.Name).second)
      Diags.error(M.Line, 1,
                  "duplicate mutex '" + P.Symbols.spelling(M.Name) + "'");
    if (GlobalNames.count(M.Name))
      Diags.error(M.Line, 1, "'" + P.Symbols.spelling(M.Name) +
                                 "' is both a global and a mutex");
  }

  // Unique function names; no function/global/mutex clash.
  std::unordered_set<Symbol> FuncNames;
  for (const auto &F : P.Functions) {
    if (!FuncNames.insert(F->Name).second)
      Diags.error(F->Line, 1,
                  "duplicate function '" + P.Symbols.spelling(F->Name) + "'");
    if (GlobalNames.count(F->Name))
      Diags.error(F->Line, 1,
                  "'" + P.Symbols.spelling(F->Name) +
                      "' is both a global and a function");
    if (MutexNames.count(F->Name))
      Diags.error(F->Line, 1, "'" + P.Symbols.spelling(F->Name) +
                                  "' is both a mutex and a function");
  }

  // main() exists.
  Symbol MainSym = P.Symbols.lookup("main");
  const FuncDecl *Main = MainSym ? P.function(MainSym) : nullptr;
  if (!Main)
    Diags.error(1, 1, "program has no 'main' function");
  else if (!Main->Params.empty())
    Diags.error(Main->Line, 1, "'main' must take no parameters");
  else if (Main->ReturnsVoid)
    Diags.error(Main->Line, 1, "'main' must return 'int'");

  for (const auto &F : P.Functions)
    checkFunction(*F);
  return !Diags.hasErrors();
}

void SemaChecker::checkFunction(const FuncDecl &F) {
  CurrentFunc = &F;
  Vars = FuncVars();
  std::unordered_set<Symbol> Seen;
  for (Symbol Param : F.Params) {
    if (!Seen.insert(Param).second)
      Diags.error(F.Line, 1,
                  "duplicate parameter '" + P.Symbols.spelling(Param) + "'");
    if (P.isGlobal(Param))
      Diags.error(F.Line, 1, "parameter '" + P.Symbols.spelling(Param) +
                                 "' shadows a global");
    if (P.isMutex(Param))
      Diags.error(F.Line, 1, "parameter '" + P.Symbols.spelling(Param) +
                                 "' shadows a mutex");
    Vars.Scalars.push_back(Param);
  }
  collectDecls(*F.Body);
  // Re-walk for duplicate locals (collectDecls gathered all of them).
  std::unordered_set<Symbol> Uniq;
  for (Symbol S : Vars.Scalars)
    if (!Uniq.insert(S).second)
      Diags.error(F.Line, 1, "duplicate local '" + P.Symbols.spelling(S) +
                                 "' in function '" +
                                 P.Symbols.spelling(F.Name) + "'");
  for (const auto &[S, Size] : Vars.Arrays) {
    if (!Uniq.insert(S).second)
      Diags.error(F.Line, 1, "duplicate local '" + P.Symbols.spelling(S) +
                                 "' in function '" +
                                 P.Symbols.spelling(F.Name) + "'");
    if (Size <= 0)
      Diags.error(F.Line, 1, "array size must be positive");
  }
  for (Symbol S : Uniq) {
    if (P.isGlobal(S))
      Diags.error(F.Line, 1,
                  "local '" + P.Symbols.spelling(S) + "' shadows a global");
    if (P.isMutex(S))
      Diags.error(F.Line, 1,
                  "local '" + P.Symbols.spelling(S) + "' shadows a mutex");
  }
  LockedInFunc.clear();
  collectLockedMutexes(*F.Body);
  checkStmt(*F.Body, 0);
  CurrentFunc = nullptr;
}

void SemaChecker::collectLockedMutexes(const Stmt &S) {
  switch (S.kind()) {
  case Stmt::Kind::Block:
    for (const StmtPtr &Child : cast<BlockStmt>(&S)->stmts())
      collectLockedMutexes(*Child);
    return;
  case Stmt::Kind::Lock:
    LockedInFunc.insert(cast<LockStmt>(&S)->mutex());
    return;
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(&S);
    collectLockedMutexes(I->thenStmt());
    if (I->elseStmt())
      collectLockedMutexes(*I->elseStmt());
    return;
  }
  case Stmt::Kind::While:
    collectLockedMutexes(cast<WhileStmt>(&S)->body());
    return;
  case Stmt::Kind::For: {
    const auto *F = cast<ForStmt>(&S);
    if (F->init())
      collectLockedMutexes(*F->init());
    if (F->step())
      collectLockedMutexes(*F->step());
    collectLockedMutexes(F->body());
    return;
  }
  default:
    return;
  }
}

void SemaChecker::collectDecls(const Stmt &S) {
  switch (S.kind()) {
  case Stmt::Kind::Block:
    for (const StmtPtr &Child : cast<BlockStmt>(&S)->stmts())
      collectDecls(*Child);
    return;
  case Stmt::Kind::Decl: {
    const auto *D = cast<DeclStmt>(&S);
    if (D->isArray())
      Vars.Arrays[D->name()] = D->arraySize();
    else
      Vars.Scalars.push_back(D->name());
    return;
  }
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(&S);
    collectDecls(I->thenStmt());
    if (I->elseStmt())
      collectDecls(*I->elseStmt());
    return;
  }
  case Stmt::Kind::While:
    collectDecls(cast<WhileStmt>(&S)->body());
    return;
  case Stmt::Kind::For: {
    const auto *F = cast<ForStmt>(&S);
    if (F->init())
      collectDecls(*F->init());
    if (F->step())
      collectDecls(*F->step());
    collectDecls(F->body());
    return;
  }
  default:
    return;
  }
}

void SemaChecker::checkStmt(const Stmt &S, unsigned LoopDepth) {
  switch (S.kind()) {
  case Stmt::Kind::Block:
    for (const StmtPtr &Child : cast<BlockStmt>(&S)->stmts())
      checkStmt(*Child, LoopDepth);
    return;
  case Stmt::Kind::Decl: {
    const auto *D = cast<DeclStmt>(&S);
    if (D->init())
      checkExpr(*D->init(), /*CallAllowed=*/true);
    return;
  }
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(&S);
    if (!isKnownScalar(A->name()))
      Diags.error(S.line(), 1,
                  "assignment to undeclared or non-scalar '" +
                      P.Symbols.spelling(A->name()) + "'");
    checkExpr(A->value(), /*CallAllowed=*/true);
    return;
  }
  case Stmt::Kind::ArrayAssign: {
    const auto *A = cast<ArrayAssignStmt>(&S);
    if (!isKnownArray(A->name()))
      Diags.error(S.line(), 1,
                  "store to undeclared or non-array '" +
                      P.Symbols.spelling(A->name()) + "'");
    checkExpr(A->index(), /*CallAllowed=*/false);
    checkExpr(A->value(), /*CallAllowed=*/false);
    return;
  }
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(&S);
    checkExpr(I->cond(), /*CallAllowed=*/false, /*UnknownAllowed=*/false);
    checkStmt(I->thenStmt(), LoopDepth);
    if (I->elseStmt())
      checkStmt(*I->elseStmt(), LoopDepth);
    return;
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(&S);
    checkExpr(W->cond(), /*CallAllowed=*/false, /*UnknownAllowed=*/false);
    checkStmt(W->body(), LoopDepth + 1);
    return;
  }
  case Stmt::Kind::For: {
    const auto *F = cast<ForStmt>(&S);
    if (F->init())
      checkStmt(*F->init(), LoopDepth);
    if (F->cond())
      checkExpr(*F->cond(), /*CallAllowed=*/false, /*UnknownAllowed=*/false);
    if (F->step())
      checkStmt(*F->step(), LoopDepth + 1);
    checkStmt(F->body(), LoopDepth + 1);
    return;
  }
  case Stmt::Kind::ExprCall:
    checkCall(cast<ExprCallStmt>(&S)->call(), /*AsStatement=*/true);
    return;
  case Stmt::Kind::Return: {
    const auto *R = cast<ReturnStmt>(&S);
    if (R->value()) {
      if (CurrentFunc && CurrentFunc->ReturnsVoid)
        Diags.error(S.line(), 1, "void function returns a value");
      checkExpr(*R->value(), /*CallAllowed=*/false);
    } else if (CurrentFunc && !CurrentFunc->ReturnsVoid) {
      Diags.warning(S.line(), 1, "non-void function returns without value");
    }
    return;
  }
  case Stmt::Kind::Break:
    if (LoopDepth == 0)
      Diags.error(S.line(), 1, "'break' outside of a loop");
    return;
  case Stmt::Kind::Continue:
    if (LoopDepth == 0)
      Diags.error(S.line(), 1, "'continue' outside of a loop");
    return;
  case Stmt::Kind::Empty:
    return;
  case Stmt::Kind::Spawn: {
    const CallExpr &Call = cast<SpawnStmt>(&S)->call();
    for (const ExprPtr &Arg : Call.args())
      checkExpr(*Arg, /*CallAllowed=*/false);
    if (UnknownSym && Call.callee() == UnknownSym) {
      Diags.error(S.line(), 1, "cannot spawn the builtin 'unknown'");
      return;
    }
    const FuncDecl *Callee = P.function(Call.callee());
    if (!Callee) {
      Diags.error(S.line(), 1, "spawn of undefined function '" +
                                   P.Symbols.spelling(Call.callee()) + "'");
      return;
    }
    if (Callee->Params.size() != Call.args().size())
      Diags.error(S.line(), 1,
                  "wrong number of arguments to spawned '" +
                      P.Symbols.spelling(Call.callee()) + "' (expected " +
                      std::to_string(Callee->Params.size()) + ", got " +
                      std::to_string(Call.args().size()) + ")");
    return;
  }
  case Stmt::Kind::Assert:
    checkExpr(cast<AssertStmt>(&S)->cond(), /*CallAllowed=*/false,
              /*UnknownAllowed=*/false);
    return;
  case Stmt::Kind::Lock: {
    Symbol M = cast<LockStmt>(&S)->mutex();
    if (!P.isMutex(M))
      Diags.error(S.line(), 1,
                  "lock of undeclared mutex '" + P.Symbols.spelling(M) + "'");
    return;
  }
  case Stmt::Kind::Unlock: {
    Symbol M = cast<UnlockStmt>(&S)->mutex();
    if (!P.isMutex(M)) {
      Diags.error(S.line(), 1, "unlock of undeclared mutex '" +
                                   P.Symbols.spelling(M) + "'");
      return;
    }
    if (!LockedInFunc.count(M))
      Diags.error(S.line(), 1,
                  "unlock of mutex '" + P.Symbols.spelling(M) +
                      "' that is never locked in this function");
    return;
  }
  }
}

void SemaChecker::checkExpr(const Expr &E, bool CallAllowed,
                            bool UnknownAllowed) {
  switch (E.kind()) {
  case Expr::Kind::IntLit:
    return;
  case Expr::Kind::VarRef: {
    const auto *V = cast<VarRef>(&E);
    if (!isKnownScalar(V->name())) {
      if (isKnownArray(V->name()))
        Diags.error(E.line(), 1,
                    "array '" + P.Symbols.spelling(V->name()) +
                        "' used without index");
      else if (P.isMutex(V->name()))
        Diags.error(E.line(), 1, "mutex '" + P.Symbols.spelling(V->name()) +
                                     "' cannot be used as a value");
      else
        Diags.error(E.line(), 1, "use of undeclared variable '" +
                                     P.Symbols.spelling(V->name()) + "'");
    }
    return;
  }
  case Expr::Kind::ArrayRef: {
    const auto *A = cast<ArrayRef>(&E);
    if (!isKnownArray(A->name()))
      Diags.error(E.line(), 1, "'" + P.Symbols.spelling(A->name()) +
                                   "' is not a declared array");
    checkExpr(A->index(), /*CallAllowed=*/false, UnknownAllowed);
    return;
  }
  case Expr::Kind::Unary:
    checkExpr(cast<UnaryExpr>(&E)->operand(), /*CallAllowed=*/false,
              UnknownAllowed);
    return;
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(&E);
    checkExpr(B->lhs(), /*CallAllowed=*/false, UnknownAllowed);
    checkExpr(B->rhs(), /*CallAllowed=*/false, UnknownAllowed);
    return;
  }
  case Expr::Kind::Call: {
    const auto *Call = cast<CallExpr>(&E);
    if (UnknownSym && Call->callee() == UnknownSym) {
      // `unknown()` is an expression primitive: legal anywhere except in
      // conditions (guard edges may evaluate a condition several times).
      if (!UnknownAllowed)
        Diags.error(E.line(), 1,
                    "'unknown()' may not appear inside a condition");
      if (!Call->args().empty())
        Diags.error(E.line(), 1, "'unknown' takes no arguments");
      return;
    }
    if (!CallAllowed) {
      Diags.error(E.line(), 1,
                  "calls may only appear as a whole statement or as the "
                  "whole right-hand side of an assignment");
      return;
    }
    checkCall(*Call, /*AsStatement=*/false);
    return;
  }
  }
}

void SemaChecker::checkCall(const CallExpr &Call, bool AsStatement) {
  for (const ExprPtr &Arg : Call.args())
    checkExpr(*Arg, /*CallAllowed=*/false);

  if (UnknownSym && Call.callee() == UnknownSym) {
    if (!Call.args().empty())
      Diags.error(Call.line(), 1, "'unknown' takes no arguments");
    return;
  }

  const FuncDecl *Callee = P.function(Call.callee());
  if (!Callee) {
    Diags.error(Call.line(), 1, "call to undefined function '" +
                                    P.Symbols.spelling(Call.callee()) + "'");
    return;
  }
  if (Callee->Params.size() != Call.args().size())
    Diags.error(Call.line(), 1,
                "wrong number of arguments to '" +
                    P.Symbols.spelling(Call.callee()) + "' (expected " +
                    std::to_string(Callee->Params.size()) + ", got " +
                    std::to_string(Call.args().size()) + ")");
  if (!AsStatement && Callee->ReturnsVoid)
    Diags.error(Call.line(), 1, "void function '" +
                                    P.Symbols.spelling(Call.callee()) +
                                    "' used as a value");
}

} // namespace

bool warrow::checkProgram(const Program &P, DiagnosticEngine &Diags) {
  SemaChecker Checker(P, Diags);
  return Checker.run();
}

FuncVars warrow::collectFunctionVars(const FuncDecl &F) {
  FuncVars Vars;
  for (Symbol Param : F.Params)
    Vars.Scalars.push_back(Param);
  // Local declarations, recursively.
  std::function<void(const Stmt &)> Walk = [&](const Stmt &S) {
    switch (S.kind()) {
    case Stmt::Kind::Block:
      for (const StmtPtr &Child : cast<BlockStmt>(&S)->stmts())
        Walk(*Child);
      return;
    case Stmt::Kind::Decl: {
      const auto *D = cast<DeclStmt>(&S);
      if (D->isArray())
        Vars.Arrays[D->name()] = D->arraySize();
      else
        Vars.Scalars.push_back(D->name());
      return;
    }
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(&S);
      Walk(I->thenStmt());
      if (I->elseStmt())
        Walk(*I->elseStmt());
      return;
    }
    case Stmt::Kind::While:
      Walk(cast<WhileStmt>(&S)->body());
      return;
    case Stmt::Kind::For: {
      const auto *FS = cast<ForStmt>(&S);
      if (FS->init())
        Walk(*FS->init());
      if (FS->step())
        Walk(*FS->step());
      Walk(FS->body());
      return;
    }
    default:
      return;
    }
  };
  Walk(*F.Body);
  return Vars;
}
