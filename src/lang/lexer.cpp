//===- lang/lexer.cpp - Mini-C lexer ---------------------------------------==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/lexer.h"

#include <cctype>

using namespace warrow;

namespace {

TokenKind keywordKind(std::string_view Text) {
  if (Text == "int")
    return TokenKind::KwInt;
  if (Text == "void")
    return TokenKind::KwVoid;
  if (Text == "if")
    return TokenKind::KwIf;
  if (Text == "else")
    return TokenKind::KwElse;
  if (Text == "while")
    return TokenKind::KwWhile;
  if (Text == "for")
    return TokenKind::KwFor;
  if (Text == "return")
    return TokenKind::KwReturn;
  if (Text == "break")
    return TokenKind::KwBreak;
  if (Text == "continue")
    return TokenKind::KwContinue;
  if (Text == "assert")
    return TokenKind::KwAssert;
  if (Text == "spawn")
    return TokenKind::KwSpawn;
  if (Text == "lock")
    return TokenKind::KwLock;
  if (Text == "unlock")
    return TokenKind::KwUnlock;
  if (Text == "mutex")
    return TokenKind::KwMutex;
  return TokenKind::Identifier;
}

bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_' || C == '$';
}
bool isIdentCont(char C) {
  return isIdentStart(C) || std::isdigit(static_cast<unsigned char>(C));
}

} // namespace

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  for (;;) {
    Token T = next();
    Tokens.push_back(T);
    if (T.is(TokenKind::Eof))
      break;
  }
  return Tokens;
}

void Lexer::advance() {
  if (Pos >= Source.size())
    return;
  if (Source[Pos] == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  ++Pos;
}

void Lexer::skipTrivia() {
  for (;;) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      uint32_t StartLine = Line, StartCol = Column;
      advance();
      advance();
      while (!(peek() == '*' && peek(1) == '/')) {
        if (peek() == '\0') {
          Diags.error(StartLine, StartCol, "unterminated block comment");
          return;
        }
        advance();
      }
      advance();
      advance();
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokenKind Kind, size_t Start) {
  Token T;
  T.Kind = Kind;
  T.Text = Source.substr(Start, Pos - Start);
  T.Line = TokLine;
  T.Column = TokColumn;
  return T;
}

Token Lexer::next() {
  skipTrivia();
  TokLine = Line;
  TokColumn = Column;
  size_t Start = Pos;
  char C = peek();

  if (C == '\0')
    return makeToken(TokenKind::Eof, Start);

  if (isIdentStart(C)) {
    while (isIdentCont(peek()))
      advance();
    return makeToken(keywordKind(Source.substr(Start, Pos - Start)), Start);
  }

  if (std::isdigit(static_cast<unsigned char>(C))) {
    int64_t Value = 0;
    bool Overflow = false;
    while (std::isdigit(static_cast<unsigned char>(peek()))) {
      int Digit = peek() - '0';
      if (Value > (INT64_MAX - Digit) / 10)
        Overflow = true;
      else
        Value = Value * 10 + Digit;
      advance();
    }
    if (Overflow)
      Diags.error(TokLine, TokColumn, "integer literal too large");
    Token T = makeToken(TokenKind::IntLiteral, Start);
    T.IntValue = Value;
    return T;
  }

  advance(); // Consume C.
  switch (C) {
  case '(':
    return makeToken(TokenKind::LParen, Start);
  case ')':
    return makeToken(TokenKind::RParen, Start);
  case '{':
    return makeToken(TokenKind::LBrace, Start);
  case '}':
    return makeToken(TokenKind::RBrace, Start);
  case '[':
    return makeToken(TokenKind::LBracket, Start);
  case ']':
    return makeToken(TokenKind::RBracket, Start);
  case ';':
    return makeToken(TokenKind::Semicolon, Start);
  case ',':
    return makeToken(TokenKind::Comma, Start);
  case '+':
    return makeToken(TokenKind::Plus, Start);
  case '-':
    return makeToken(TokenKind::Minus, Start);
  case '*':
    return makeToken(TokenKind::Star, Start);
  case '/':
    return makeToken(TokenKind::Slash, Start);
  case '%':
    return makeToken(TokenKind::Percent, Start);
  case '<':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::LessEqual, Start);
    }
    return makeToken(TokenKind::Less, Start);
  case '>':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::GreaterEqual, Start);
    }
    return makeToken(TokenKind::Greater, Start);
  case '=':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::EqualEqual, Start);
    }
    return makeToken(TokenKind::Assign, Start);
  case '!':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::BangEqual, Start);
    }
    return makeToken(TokenKind::Bang, Start);
  case '&':
    if (peek() == '&') {
      advance();
      return makeToken(TokenKind::AmpAmp, Start);
    }
    break;
  case '|':
    if (peek() == '|') {
      advance();
      return makeToken(TokenKind::PipePipe, Start);
    }
    break;
  default:
    break;
  }
  Diags.error(TokLine, TokColumn,
              std::string("unexpected character '") + C + "'");
  return makeToken(TokenKind::Error, Start);
}
