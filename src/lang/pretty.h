//===- lang/pretty.h - Mini-C pretty printer --------------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pretty printer for mini-C ASTs. Printing then reparsing yields an
/// equivalent AST (checked by round-trip tests), which also gives the
/// synthetic workload generator a validation path.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_LANG_PRETTY_H
#define WARROW_LANG_PRETTY_H

#include "lang/ast.h"

#include <string>

namespace warrow {

/// Renders a whole program as parseable source text.
std::string printProgram(const Program &P);

/// Renders one expression (needs the program's interner for names).
std::string printExpr(const Expr &E, const Interner &Symbols);

/// Renders one statement at the given indentation depth.
std::string printStmt(const Stmt &S, const Interner &Symbols,
                      unsigned Indent = 0);

} // namespace warrow

#endif // WARROW_LANG_PRETTY_H
