//===- lang/sema.h - Mini-C semantic checks ---------------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic checks for mini-C programs and name-resolution helpers shared
/// by CFG construction, the interpreter, and the abstract interpreter.
///
/// Enforced rules (beyond syntax):
///  - a zero-parameter `int main()` exists;
///  - function, global, and per-function local names are unique; locals do
///    not shadow globals or parameters;
///  - every identifier resolves; scalar/array usage matches declarations;
///  - call arity matches; `unknown()` is the only builtin (0 arguments);
///  - calls appear only as a whole statement or as the whole right-hand
///    side of a scalar assignment (the analysis-friendly call form);
///  - `void` functions do not return values; `break`/`continue` appear
///    inside loops only.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_LANG_SEMA_H
#define WARROW_LANG_SEMA_H

#include "lang/ast.h"
#include "lang/diagnostics.h"

#include <unordered_map>
#include <vector>

namespace warrow {

/// Runs all semantic checks; returns false (with diagnostics) on error.
bool checkProgram(const Program &P, DiagnosticEngine &Diags);

/// Variables of one function as collected from its declarations.
struct FuncVars {
  /// Parameters followed by locals, in declaration order.
  std::vector<Symbol> Scalars;
  /// Local arrays with their sizes.
  std::unordered_map<Symbol, int64_t> Arrays;

  bool isScalar(Symbol Name) const {
    for (Symbol S : Scalars)
      if (S == Name)
        return true;
    return false;
  }
  bool isArray(Symbol Name) const { return Arrays.count(Name) != 0; }
};

/// Collects parameters, scalar locals, and local arrays of \p F.
FuncVars collectFunctionVars(const FuncDecl &F);

/// The name of the nondeterministic-input builtin.
constexpr const char *UnknownBuiltinName = "unknown";

} // namespace warrow

#endif // WARROW_LANG_SEMA_H
