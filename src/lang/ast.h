//===- lang/ast.h - Mini-C abstract syntax ----------------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for mini-C, the analysis substrate. LLVM-style class hierarchies
/// with kind discriminators and `classof` for `isa<>`/`dyn_cast<>`.
///
/// Language summary:
///   program  := (global | mutex | function)*
///   global   := 'int' ident ('=' intconst)? ';'
///             | 'int' ident '[' intconst ']' ';'
///   mutex    := 'mutex' ident ';'
///   function := ('int'|'void') ident '(' params ')' block
///   stmt     := decl | assign ';' | call ';' | if | while | for | return
///             | break ';' | continue ';' | block | ';'
///             | 'spawn' ident '(' args ')' ';'
///             | 'assert' '(' expr ')' ';'
///             | 'lock' '(' ident ')' ';' | 'unlock' '(' ident ')' ';'
///   expr     := full arithmetic/relational/logical expression grammar;
///               calls (including the builtin `unknown()`, an arbitrary
///               input value) may appear only as a whole statement or as
///               the whole right-hand side of an assignment.
///
/// Arrays are 1-D with constant size, zero-initialized (analysis smashes
/// them to a single interval). All values are mathematical integers.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_LANG_AST_H
#define WARROW_LANG_AST_H

#include "support/casting.h"
#include "support/interner.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace warrow {

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class BinaryOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,
  LAnd,
  LOr,
};

enum class UnaryOp : uint8_t { Neg, Not };

/// True for the six relational operators.
bool isComparison(BinaryOp Op);
/// True for `&&` and `||`.
bool isLogical(BinaryOp Op);
/// Source spelling of an operator ("<=", "&&", ...).
const char *spelling(BinaryOp Op);

/// Base class of all expressions.
class Expr {
public:
  enum class Kind : uint8_t {
    IntLit,
    VarRef,
    ArrayRef,
    Unary,
    Binary,
    Call,
  };

  Kind kind() const { return K; }
  uint32_t line() const { return Line; }

  virtual ~Expr() = default;

protected:
  Expr(Kind K, uint32_t Line) : K(K), Line(Line) {}

private:
  Kind K;
  uint32_t Line;
};

using ExprPtr = std::unique_ptr<Expr>;

/// An integer literal.
class IntLit : public Expr {
public:
  IntLit(int64_t Value, uint32_t Line)
      : Expr(Kind::IntLit, Line), Value(Value) {}
  int64_t value() const { return Value; }
  static bool classof(const Expr *E) { return E->kind() == Kind::IntLit; }

private:
  int64_t Value;
};

/// A read of a scalar variable (local, parameter, or global).
class VarRef : public Expr {
public:
  VarRef(Symbol Name, uint32_t Line) : Expr(Kind::VarRef, Line), Name(Name) {}
  Symbol name() const { return Name; }
  static bool classof(const Expr *E) { return E->kind() == Kind::VarRef; }

private:
  Symbol Name;
};

/// A read of an array element `a[i]`.
class ArrayRef : public Expr {
public:
  ArrayRef(Symbol Name, ExprPtr Index, uint32_t Line)
      : Expr(Kind::ArrayRef, Line), Name(Name), Index(std::move(Index)) {}
  Symbol name() const { return Name; }
  const Expr &index() const { return *Index; }
  static bool classof(const Expr *E) { return E->kind() == Kind::ArrayRef; }

private:
  Symbol Name;
  ExprPtr Index;
};

/// A unary operation.
class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOp Op, ExprPtr Operand, uint32_t Line)
      : Expr(Kind::Unary, Line), Op(Op), Operand(std::move(Operand)) {}
  UnaryOp op() const { return Op; }
  const Expr &operand() const { return *Operand; }
  static bool classof(const Expr *E) { return E->kind() == Kind::Unary; }

private:
  UnaryOp Op;
  ExprPtr Operand;
};

/// A binary operation.
class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOp Op, ExprPtr Lhs, ExprPtr Rhs, uint32_t Line)
      : Expr(Kind::Binary, Line), Op(Op), Lhs(std::move(Lhs)),
        Rhs(std::move(Rhs)) {}
  BinaryOp op() const { return Op; }
  const Expr &lhs() const { return *Lhs; }
  const Expr &rhs() const { return *Rhs; }
  static bool classof(const Expr *E) { return E->kind() == Kind::Binary; }

private:
  BinaryOp Op;
  ExprPtr Lhs, Rhs;
};

/// A function call `f(e1, ..., ek)`. The callee `unknown` (no arguments)
/// is a builtin producing an arbitrary integer.
class CallExpr : public Expr {
public:
  CallExpr(Symbol Callee, std::vector<ExprPtr> Args, uint32_t Line)
      : Expr(Kind::Call, Line), Callee(Callee), Args(std::move(Args)) {}
  Symbol callee() const { return Callee; }
  const std::vector<ExprPtr> &args() const { return Args; }
  static bool classof(const Expr *E) { return E->kind() == Kind::Call; }

private:
  Symbol Callee;
  std::vector<ExprPtr> Args;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

/// Base class of all statements.
class Stmt {
public:
  enum class Kind : uint8_t {
    Block,
    Decl,
    Assign,
    ArrayAssign,
    If,
    While,
    For,
    ExprCall,
    Return,
    Break,
    Continue,
    Empty,
    Spawn,
    Lock,
    Unlock,
    Assert,
  };

  Kind kind() const { return K; }
  uint32_t line() const { return Line; }

  virtual ~Stmt() = default;

protected:
  Stmt(Kind K, uint32_t Line) : K(K), Line(Line) {}

private:
  Kind K;
  uint32_t Line;
};

using StmtPtr = std::unique_ptr<Stmt>;

/// `{ stmt* }`.
class BlockStmt : public Stmt {
public:
  BlockStmt(std::vector<StmtPtr> Stmts, uint32_t Line)
      : Stmt(Kind::Block, Line), Stmts(std::move(Stmts)) {}
  const std::vector<StmtPtr> &stmts() const { return Stmts; }
  static bool classof(const Stmt *S) { return S->kind() == Kind::Block; }

private:
  std::vector<StmtPtr> Stmts;
};

/// `int x;`, `int x = e;`, or `int a[n];`.
class DeclStmt : public Stmt {
public:
  DeclStmt(Symbol Name, ExprPtr Init, int64_t ArraySize, uint32_t Line)
      : Stmt(Kind::Decl, Line), Name(Name), Init(std::move(Init)),
        ArraySize(ArraySize) {}
  Symbol name() const { return Name; }
  /// Null for plain `int x;` and for arrays.
  const Expr *init() const { return Init.get(); }
  bool isArray() const { return ArraySize >= 0; }
  int64_t arraySize() const { return ArraySize; }
  static bool classof(const Stmt *S) { return S->kind() == Kind::Decl; }

private:
  Symbol Name;
  ExprPtr Init;
  int64_t ArraySize; // -1 for scalars.
};

/// `x = e;` (x scalar, local or global).
class AssignStmt : public Stmt {
public:
  AssignStmt(Symbol Name, ExprPtr Value, uint32_t Line)
      : Stmt(Kind::Assign, Line), Name(Name), Value(std::move(Value)) {}
  Symbol name() const { return Name; }
  const Expr &value() const { return *Value; }
  static bool classof(const Stmt *S) { return S->kind() == Kind::Assign; }

private:
  Symbol Name;
  ExprPtr Value;
};

/// `a[i] = e;`.
class ArrayAssignStmt : public Stmt {
public:
  ArrayAssignStmt(Symbol Name, ExprPtr Index, ExprPtr Value, uint32_t Line)
      : Stmt(Kind::ArrayAssign, Line), Name(Name), Index(std::move(Index)),
        Value(std::move(Value)) {}
  Symbol name() const { return Name; }
  const Expr &index() const { return *Index; }
  const Expr &value() const { return *Value; }
  static bool classof(const Stmt *S) {
    return S->kind() == Kind::ArrayAssign;
  }

private:
  Symbol Name;
  ExprPtr Index, Value;
};

/// `if (c) then else?`.
class IfStmt : public Stmt {
public:
  IfStmt(ExprPtr Cond, StmtPtr Then, StmtPtr Else, uint32_t Line)
      : Stmt(Kind::If, Line), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}
  const Expr &cond() const { return *Cond; }
  const Stmt &thenStmt() const { return *Then; }
  const Stmt *elseStmt() const { return Else.get(); }
  static bool classof(const Stmt *S) { return S->kind() == Kind::If; }

private:
  ExprPtr Cond;
  StmtPtr Then, Else;
};

/// `while (c) body`.
class WhileStmt : public Stmt {
public:
  WhileStmt(ExprPtr Cond, StmtPtr Body, uint32_t Line)
      : Stmt(Kind::While, Line), Cond(std::move(Cond)), Body(std::move(Body)) {
  }
  const Expr &cond() const { return *Cond; }
  const Stmt &body() const { return *Body; }
  static bool classof(const Stmt *S) { return S->kind() == Kind::While; }

private:
  ExprPtr Cond;
  StmtPtr Body;
};

/// `for (init; cond; step) body`; any header part may be absent.
/// Kept as its own node (rather than desugared) so `continue` can target
/// the step in CFG construction.
class ForStmt : public Stmt {
public:
  ForStmt(StmtPtr Init, ExprPtr Cond, StmtPtr Step, StmtPtr Body,
          uint32_t Line)
      : Stmt(Kind::For, Line), Init(std::move(Init)), Cond(std::move(Cond)),
        Step(std::move(Step)), Body(std::move(Body)) {}
  const Stmt *init() const { return Init.get(); }
  const Expr *cond() const { return Cond.get(); }
  const Stmt *step() const { return Step.get(); }
  const Stmt &body() const { return *Body; }
  static bool classof(const Stmt *S) { return S->kind() == Kind::For; }

private:
  StmtPtr Init;
  ExprPtr Cond;
  StmtPtr Step;
  StmtPtr Body;
};

/// A call used as a statement: `f(...);` or `x = f(...);` is an
/// AssignStmt whose value is a CallExpr.
class ExprCallStmt : public Stmt {
public:
  ExprCallStmt(ExprPtr Call, uint32_t Line)
      : Stmt(Kind::ExprCall, Line), Call(std::move(Call)) {}
  const CallExpr &call() const;
  static bool classof(const Stmt *S) { return S->kind() == Kind::ExprCall; }

private:
  ExprPtr Call;
};

/// `return e?;`.
class ReturnStmt : public Stmt {
public:
  ReturnStmt(ExprPtr Value, uint32_t Line)
      : Stmt(Kind::Return, Line), Value(std::move(Value)) {}
  const Expr *value() const { return Value.get(); }
  static bool classof(const Stmt *S) { return S->kind() == Kind::Return; }

private:
  ExprPtr Value;
};

/// `break;`.
class BreakStmt : public Stmt {
public:
  explicit BreakStmt(uint32_t Line) : Stmt(Kind::Break, Line) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Break; }
};

/// `continue;`.
class ContinueStmt : public Stmt {
public:
  explicit ContinueStmt(uint32_t Line) : Stmt(Kind::Continue, Line) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Continue; }
};

/// `;`.
class EmptyStmt : public Stmt {
public:
  explicit EmptyStmt(uint32_t Line) : Stmt(Kind::Empty, Line) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Empty; }
};

/// `spawn f(e1, ..., ek);` — start a new thread executing `f` with the
/// given arguments; the spawner continues immediately and any return
/// value is discarded. Stored as a CallExpr for uniformity with calls.
class SpawnStmt : public Stmt {
public:
  SpawnStmt(ExprPtr Call, uint32_t Line)
      : Stmt(Kind::Spawn, Line), Call(std::move(Call)) {}
  const CallExpr &call() const;
  static bool classof(const Stmt *S) { return S->kind() == Kind::Spawn; }

private:
  ExprPtr Call;
};

/// `lock(m);` — acquire a declared mutex (blocking, non-reentrant).
class LockStmt : public Stmt {
public:
  LockStmt(Symbol Mutex, uint32_t Line)
      : Stmt(Kind::Lock, Line), Mutex(Mutex) {}
  Symbol mutex() const { return Mutex; }
  static bool classof(const Stmt *S) { return S->kind() == Kind::Lock; }

private:
  Symbol Mutex;
};

/// `assert(c);` — the bounds/assert checker reports program points where
/// `c` may be zero; concretely a failed assertion traps. Downstream of
/// the statement the analysis assumes `c` holds (it refines like a
/// positive guard).
class AssertStmt : public Stmt {
public:
  AssertStmt(ExprPtr Cond, uint32_t Line)
      : Stmt(Kind::Assert, Line), Cond(std::move(Cond)) {}
  const Expr &cond() const { return *Cond; }
  static bool classof(const Stmt *S) { return S->kind() == Kind::Assert; }

private:
  ExprPtr Cond;
};

/// `unlock(m);` — release a declared mutex.
class UnlockStmt : public Stmt {
public:
  UnlockStmt(Symbol Mutex, uint32_t Line)
      : Stmt(Kind::Unlock, Line), Mutex(Mutex) {}
  Symbol mutex() const { return Mutex; }
  static bool classof(const Stmt *S) { return S->kind() == Kind::Unlock; }

private:
  Symbol Mutex;
};

//===----------------------------------------------------------------------===//
// Declarations and the program
//===----------------------------------------------------------------------===//

/// A global variable (optionally array, optionally constant-initialized;
/// like C statics, globals are zero-initialized by default).
struct GlobalDecl {
  Symbol Name = 0;
  int64_t Init = 0;
  int64_t ArraySize = -1; // -1 for scalars.
  uint32_t Line = 0;

  bool isArray() const { return ArraySize >= 0; }
};

/// A top-level mutex declaration `mutex m;`. Mutexes form their own
/// namespace-less declared kind: they are not integer variables, can only
/// appear as the operand of `lock`/`unlock`, and are the (finite) universe
/// of the must-lockset analysis.
struct MutexDecl {
  Symbol Name = 0;
  uint32_t Line = 0;
};

/// A function definition.
struct FuncDecl {
  Symbol Name = 0;
  std::vector<Symbol> Params;
  StmtPtr Body;
  bool ReturnsVoid = false;
  uint32_t Line = 0;
};

/// A parsed program: interner + globals + functions.
struct Program {
  Interner Symbols;
  std::vector<GlobalDecl> Globals;
  std::vector<MutexDecl> Mutexes;
  std::vector<std::unique_ptr<FuncDecl>> Functions;

  /// Looks up a function by symbol; null if absent.
  const FuncDecl *function(Symbol Name) const;
  /// Index of a function in `Functions`; size() if absent.
  size_t functionIndex(Symbol Name) const;
  /// Looks up a global by symbol; null if absent.
  const GlobalDecl *global(Symbol Name) const;
  bool isGlobal(Symbol Name) const { return global(Name) != nullptr; }
  /// Looks up a mutex by symbol; null if absent.
  const MutexDecl *mutex(Symbol Name) const;
  bool isMutex(Symbol Name) const { return mutex(Name) != nullptr; }
};

} // namespace warrow

#endif // WARROW_LANG_AST_H
