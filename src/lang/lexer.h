//===- lang/lexer.h - Mini-C lexer ------------------------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for mini-C. Supports `//` and `/* */` comments,
/// decimal integer literals, and the token set of `token.h`.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_LANG_LEXER_H
#define WARROW_LANG_LEXER_H

#include "lang/diagnostics.h"
#include "lang/token.h"

#include <string_view>
#include <vector>

namespace warrow {

/// Lexes a complete source buffer into a token vector (terminated by an
/// Eof token). The buffer must outlive the tokens.
class Lexer {
public:
  Lexer(std::string_view Source, DiagnosticEngine &Diags)
      : Source(Source), Diags(Diags) {}

  /// Lexes the whole input.
  std::vector<Token> lexAll();

private:
  Token next();
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }
  void advance();
  void skipTrivia();
  Token makeToken(TokenKind Kind, size_t Start);

  std::string_view Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;
  uint32_t TokLine = 1;
  uint32_t TokColumn = 1;
};

} // namespace warrow

#endif // WARROW_LANG_LEXER_H
