//===- lang/interp.cpp - Concrete mini-C interpreter -------------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/interp.h"

#include "lang/sema.h"
#include "support/casting.h"
#include "support/saturating.h"

#include <cassert>

using namespace warrow;

Interpreter::Interpreter(const Program &P, const ProgramCfg &Cfgs,
                         std::vector<int64_t> Inputs, InterpOptions Options)
    : P(P), Cfgs(Cfgs), Inputs(std::move(Inputs)), Options(Options) {
  RetSym = P.Symbols.lookup(ReturnValueName);
  UnknownSym = P.Symbols.lookup(UnknownBuiltinName);
  for (const auto &F : P.Functions)
    VarsPerFunc.push_back(collectFunctionVars(*F));
  // Initialize globals.
  for (const GlobalDecl &G : P.Globals) {
    if (G.isArray())
      Globals.Arrays[G.Name] =
          std::vector<int64_t>(static_cast<size_t>(G.ArraySize), 0);
    else
      Globals.Scalars[G.Name] = G.Init;
  }
}

int64_t Interpreter::nextInput() {
  if (Inputs.empty())
    return 0;
  int64_t Value = Inputs[NextInput % Inputs.size()];
  ++NextInput;
  return Value;
}

bool Interpreter::trap(std::string Reason) {
  Result.St = InterpResult::Status::Trapped;
  Result.TrapReason = std::move(Reason);
  return false;
}

InterpResult Interpreter::run() {
  Result = InterpResult();
  Symbol MainSym = P.Symbols.lookup("main");
  size_t MainIdx = P.functionIndex(MainSym);
  assert(MainIdx < P.Functions.size() && "sema guarantees main exists");
  int64_t ReturnValue = 0;
  if (runFunction(MainIdx, ConcreteFrame(), 0, ReturnValue))
    Result.ReturnValue = ReturnValue;
  return Result;
}

bool Interpreter::evalExpr(const Expr &E, const ConcreteFrame &Frame,
                           int64_t &Out) {
  switch (E.kind()) {
  case Expr::Kind::IntLit:
    Out = cast<IntLit>(&E)->value();
    return true;
  case Expr::Kind::VarRef: {
    Symbol Name = cast<VarRef>(&E)->name();
    auto It = Frame.Scalars.find(Name);
    if (It != Frame.Scalars.end()) {
      Out = It->second;
      return true;
    }
    auto GIt = Globals.Scalars.find(Name);
    if (GIt != Globals.Scalars.end()) {
      Out = GIt->second;
      return true;
    }
    Out = 0; // Read before assignment: defined as 0.
    return true;
  }
  case Expr::Kind::ArrayRef: {
    const auto *A = cast<ArrayRef>(&E);
    int64_t Index;
    if (!evalExpr(A->index(), Frame, Index))
      return false;
    const std::vector<int64_t> *Storage = nullptr;
    auto It = Frame.Arrays.find(A->name());
    if (It != Frame.Arrays.end())
      Storage = &It->second;
    else {
      auto GIt = Globals.Arrays.find(A->name());
      if (GIt != Globals.Arrays.end())
        Storage = &GIt->second;
    }
    if (!Storage)
      return trap("read of undeclared array");
    if (Index < 0 || static_cast<size_t>(Index) >= Storage->size())
      return trap("array index out of bounds");
    Out = (*Storage)[static_cast<size_t>(Index)];
    return true;
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(&E);
    int64_t V;
    if (!evalExpr(U->operand(), Frame, V))
      return false;
    Out = U->op() == UnaryOp::Neg ? satNeg64(V) : (V == 0 ? 1 : 0);
    return true;
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(&E);
    int64_t L;
    if (!evalExpr(B->lhs(), Frame, L))
      return false;
    // Short-circuit the logical operators (their operands have no side
    // effects, but the right operand may trap, e.g. divide by zero).
    if (B->op() == BinaryOp::LAnd && L == 0) {
      Out = 0;
      return true;
    }
    if (B->op() == BinaryOp::LOr && L != 0) {
      Out = 1;
      return true;
    }
    int64_t R;
    if (!evalExpr(B->rhs(), Frame, R))
      return false;
    switch (B->op()) {
    case BinaryOp::Add:
      Out = satAdd64(L, R);
      return true;
    case BinaryOp::Sub:
      Out = satSub64(L, R);
      return true;
    case BinaryOp::Mul:
      Out = satMul64(L, R);
      return true;
    case BinaryOp::Div:
      if (R == 0)
        return trap("division by zero");
      Out = (L == INT64_MIN && R == -1) ? INT64_MAX : L / R;
      return true;
    case BinaryOp::Rem:
      if (R == 0)
        return trap("modulo by zero");
      Out = (L == INT64_MIN && R == -1) ? 0 : L % R;
      return true;
    case BinaryOp::Lt:
      Out = L < R;
      return true;
    case BinaryOp::Le:
      Out = L <= R;
      return true;
    case BinaryOp::Gt:
      Out = L > R;
      return true;
    case BinaryOp::Ge:
      Out = L >= R;
      return true;
    case BinaryOp::Eq:
      Out = L == R;
      return true;
    case BinaryOp::Ne:
      Out = L != R;
      return true;
    case BinaryOp::LAnd:
      Out = R != 0; // L already known nonzero.
      return true;
    case BinaryOp::LOr:
      Out = R != 0; // L already known zero.
      return true;
    }
    return trap("unknown binary operator");
  }
  case Expr::Kind::Call: {
    const auto *Call = cast<CallExpr>(&E);
    if (UnknownSym && Call->callee() == UnknownSym) {
      Out = nextInput(); // unknown() as an expression primitive.
      return true;
    }
    return trap("call in expression position survived sema");
  }
  }
  return trap("unknown expression kind");
}

bool Interpreter::runFunction(size_t FuncIndex, ConcreteFrame Frame,
                              unsigned Depth, int64_t &ReturnValue) {
  if (Depth > Options.MaxCallDepth)
    return trap("call depth limit exceeded");
  const Cfg &G = Cfgs.cfgOf(FuncIndex);

  uint32_t Node = G.entry();
  for (;;) {
    if (Observe)
      Observe(static_cast<uint32_t>(FuncIndex), Node, Frame, Globals);
    if (Node == G.exit()) {
      auto It = Frame.Scalars.find(RetSym);
      ReturnValue = It == Frame.Scalars.end() ? 0 : It->second;
      return true;
    }
    if (++Result.Steps > Options.MaxSteps) {
      Result.St = InterpResult::Status::OutOfFuel;
      return false;
    }

    // Pick the edge to follow.
    const CfgEdge *Chosen = nullptr;
    for (uint32_t EdgeId : G.outEdges(Node)) {
      const CfgEdge &E = G.edge(EdgeId);
      if (E.Act.K != Action::Kind::Guard) {
        Chosen = &E;
        break;
      }
      int64_t Cond;
      if (!evalExpr(*E.Act.Value, Frame, Cond))
        return false;
      if ((Cond != 0) == E.Act.Positive) {
        Chosen = &E;
        break;
      }
    }
    if (!Chosen)
      return trap("stuck: no viable CFG edge");

    const Action &A = Chosen->Act;
    switch (A.K) {
    case Action::Kind::Skip:
    case Action::Kind::Guard:
      break;
    case Action::Kind::DeclScalar:
      Frame.Scalars[A.Lhs] = 0;
      break;
    case Action::Kind::DeclArray: {
      const FuncVars &Vars = VarsPerFunc[FuncIndex];
      auto It = Vars.Arrays.find(A.Lhs);
      assert(It != Vars.Arrays.end() && "declared array has a size");
      Frame.Arrays[A.Lhs] =
          std::vector<int64_t>(static_cast<size_t>(It->second), 0);
      break;
    }
    case Action::Kind::Assign: {
      int64_t Value;
      if (!evalExpr(*A.Value, Frame, Value))
        return false;
      if (Globals.Scalars.count(A.Lhs) && !Frame.Scalars.count(A.Lhs))
        Globals.Scalars[A.Lhs] = Value;
      else
        Frame.Scalars[A.Lhs] = Value;
      break;
    }
    case Action::Kind::Store: {
      int64_t Index, Value;
      if (!evalExpr(*A.Index, Frame, Index) ||
          !evalExpr(*A.Value, Frame, Value))
        return false;
      std::vector<int64_t> *Storage = nullptr;
      auto It = Frame.Arrays.find(A.Lhs);
      if (It != Frame.Arrays.end())
        Storage = &It->second;
      else {
        auto GIt = Globals.Arrays.find(A.Lhs);
        if (GIt != Globals.Arrays.end())
          Storage = &GIt->second;
      }
      if (!Storage)
        return trap("store to undeclared array");
      if (Index < 0 || static_cast<size_t>(Index) >= Storage->size())
        return trap("array index out of bounds");
      (*Storage)[static_cast<size_t>(Index)] = Value;
      break;
    }
    case Action::Kind::Assert: {
      int64_t Cond;
      if (!evalExpr(*A.Value, Frame, Cond))
        return false;
      if (Cond == 0)
        return trap("assertion failed");
      break;
    }
    case Action::Kind::Input: {
      Frame.Scalars[A.Lhs] = nextInput();
      break;
    }
    case Action::Kind::Call: {
      size_t CalleeIdx = P.functionIndex(A.Callee);
      assert(CalleeIdx < P.Functions.size() && "sema checked callee");
      const FuncDecl &Callee = *P.Functions[CalleeIdx];
      ConcreteFrame CalleeFrame;
      for (size_t I = 0; I < A.Args.size(); ++I) {
        int64_t ArgValue;
        if (!evalExpr(*A.Args[I], Frame, ArgValue))
          return false;
        CalleeFrame.Scalars[Callee.Params[I]] = ArgValue;
      }
      int64_t CalleeReturn = 0;
      if (!runFunction(CalleeIdx, std::move(CalleeFrame), Depth + 1,
                       CalleeReturn))
        return false;
      if (A.Lhs) {
        if (Globals.Scalars.count(A.Lhs) && !Frame.Scalars.count(A.Lhs))
          Globals.Scalars[A.Lhs] = CalleeReturn;
        else
          Frame.Scalars[A.Lhs] = CalleeReturn;
      }
      break;
    }
    case Action::Kind::Spawn: {
      // The concrete oracle executes the *sequentialized* semantics: the
      // spawned function runs to completion at the spawn point (one legal
      // interleaving), its return value is discarded. The abstract
      // semantics over-approximates this: it binds the arguments into the
      // spawned function's entry and keeps the spawner's state unchanged.
      size_t CalleeIdx = P.functionIndex(A.Callee);
      assert(CalleeIdx < P.Functions.size() && "sema checked spawn callee");
      const FuncDecl &Callee = *P.Functions[CalleeIdx];
      ConcreteFrame CalleeFrame;
      for (size_t I = 0; I < A.Args.size(); ++I) {
        int64_t ArgValue;
        if (!evalExpr(*A.Args[I], Frame, ArgValue))
          return false;
        CalleeFrame.Scalars[Callee.Params[I]] = ArgValue;
      }
      int64_t Discarded = 0;
      if (!runFunction(CalleeIdx, std::move(CalleeFrame), Depth + 1,
                       Discarded))
        return false;
      break;
    }
    case Action::Kind::Lock:
    case Action::Kind::Unlock:
      // Mutex operations are no-ops under the sequentialized semantics.
      break;
    }
    Node = Chosen->To;
  }
}
