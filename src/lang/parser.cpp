//===- lang/parser.cpp - Mini-C parser --------------------------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/parser.h"

#include "lang/lexer.h"
#include "lang/sema.h"

using namespace warrow;

std::unique_ptr<Program> warrow::parseProgram(std::string_view Source,
                                              DiagnosticEngine &Diags) {
  Lexer Lex(Source, Diags);
  std::vector<Token> Tokens = Lex.lexAll();
  if (Diags.hasErrors())
    return nullptr;
  Parser P(std::move(Tokens), Diags);
  std::unique_ptr<Program> Prog = P.parse();
  if (!Prog || Diags.hasErrors())
    return nullptr;
  if (!checkProgram(*Prog, Diags))
    return nullptr;
  return Prog;
}

const Token &Parser::peek(size_t Ahead) const {
  size_t Index = Pos + Ahead;
  if (Index >= Tokens.size())
    Index = Tokens.size() - 1; // Eof token.
  return Tokens[Index];
}

Token Parser::consume() {
  Token T = current();
  if (Pos + 1 < Tokens.size())
    ++Pos;
  return T;
}

bool Parser::match(TokenKind Kind) {
  if (!check(Kind))
    return false;
  consume();
  return true;
}

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (match(Kind))
    return true;
  error(current(), std::string("expected ") + std::string(tokenKindName(Kind)) +
                       " " + Context + ", found " +
                       std::string(tokenKindName(current().Kind)));
  return false;
}

void Parser::error(const Token &At, std::string Message) {
  Diags.error(At.Line, At.Column, std::move(Message));
}

void Parser::synchronize() {
  while (!check(TokenKind::Eof)) {
    if (match(TokenKind::Semicolon))
      return;
    switch (current().Kind) {
    case TokenKind::KwInt:
    case TokenKind::KwVoid:
    case TokenKind::KwIf:
    case TokenKind::KwWhile:
    case TokenKind::KwFor:
    case TokenKind::KwReturn:
    case TokenKind::KwSpawn:
    case TokenKind::KwAssert:
    case TokenKind::KwLock:
    case TokenKind::KwUnlock:
    case TokenKind::KwMutex:
    case TokenKind::RBrace:
      return;
    default:
      consume();
    }
  }
}

std::unique_ptr<Program> Parser::parse() {
  auto P = std::make_unique<Program>();
  while (!check(TokenKind::Eof)) {
    if (!parseTopLevel(*P))
      synchronize();
  }
  return P;
}

bool Parser::parseTopLevel(Program &P) {
  if (match(TokenKind::KwMutex)) {
    if (!check(TokenKind::Identifier)) {
      error(current(), "expected mutex name after 'mutex'");
      return false;
    }
    Token NameTok = consume();
    MutexDecl M;
    M.Name = P.Symbols.intern(NameTok.Text);
    M.Line = NameTok.Line;
    if (!expect(TokenKind::Semicolon, "after mutex declaration"))
      return false;
    P.Mutexes.push_back(M);
    return true;
  }

  bool ReturnsVoid;
  if (match(TokenKind::KwVoid)) {
    ReturnsVoid = true;
  } else if (match(TokenKind::KwInt)) {
    ReturnsVoid = false;
  } else {
    error(current(), "expected 'int', 'void', or 'mutex' at top level");
    consume();
    return false;
  }

  if (!check(TokenKind::Identifier)) {
    error(current(), "expected identifier after type");
    return false;
  }

  if (peek(1).is(TokenKind::LParen)) {
    std::unique_ptr<FuncDecl> F = parseFunction(ReturnsVoid, P);
    if (!F)
      return false;
    P.Functions.push_back(std::move(F));
    return true;
  }

  // Global variable.
  if (ReturnsVoid) {
    error(current(), "global variables must have type 'int'");
    return false;
  }
  Token NameTok = consume();
  GlobalDecl G;
  G.Name = P.Symbols.intern(NameTok.Text);
  G.Line = NameTok.Line;
  if (match(TokenKind::LBracket)) {
    if (!check(TokenKind::IntLiteral)) {
      error(current(), "array size must be an integer constant");
      return false;
    }
    G.ArraySize = consume().IntValue;
    if (!expect(TokenKind::RBracket, "after array size"))
      return false;
  } else if (match(TokenKind::Assign)) {
    bool Negative = match(TokenKind::Minus);
    if (!check(TokenKind::IntLiteral)) {
      error(current(), "global initializer must be an integer constant");
      return false;
    }
    G.Init = consume().IntValue;
    if (Negative)
      G.Init = -G.Init;
  }
  if (!expect(TokenKind::Semicolon, "after global declaration"))
    return false;
  P.Globals.push_back(G);
  return true;
}

std::unique_ptr<FuncDecl> Parser::parseFunction(bool ReturnsVoid, Program &P) {
  Token NameTok = consume();
  auto F = std::make_unique<FuncDecl>();
  F->Name = P.Symbols.intern(NameTok.Text);
  F->ReturnsVoid = ReturnsVoid;
  F->Line = NameTok.Line;
  expect(TokenKind::LParen, "after function name");
  if (!check(TokenKind::RParen)) {
    do {
      if (match(TokenKind::KwVoid))
        break; // `f(void)` style empty parameter list.
      if (!expect(TokenKind::KwInt, "before parameter name"))
        return nullptr;
      if (!check(TokenKind::Identifier)) {
        error(current(), "expected parameter name");
        return nullptr;
      }
      F->Params.push_back(P.Symbols.intern(consume().Text));
    } while (match(TokenKind::Comma));
  }
  if (!expect(TokenKind::RParen, "after parameter list"))
    return nullptr;
  if (!check(TokenKind::LBrace)) {
    error(current(), "expected function body");
    return nullptr;
  }
  F->Body = parseBlock(P);
  return F->Body ? std::move(F) : nullptr;
}

StmtPtr Parser::parseBlock(Program &P) {
  Token Open = current();
  if (!expect(TokenKind::LBrace, "to open block"))
    return nullptr;
  std::vector<StmtPtr> Stmts;
  while (!check(TokenKind::RBrace) && !check(TokenKind::Eof)) {
    StmtPtr S = parseStmt(P);
    if (S)
      Stmts.push_back(std::move(S));
    else
      synchronize();
  }
  if (!expect(TokenKind::RBrace, "to close block"))
    return nullptr;
  return std::make_unique<BlockStmt>(std::move(Stmts), Open.Line);
}

StmtPtr Parser::parseStmt(Program &P) {
  switch (current().Kind) {
  case TokenKind::LBrace:
    return parseBlock(P);
  case TokenKind::Semicolon: {
    Token T = consume();
    return std::make_unique<EmptyStmt>(T.Line);
  }
  case TokenKind::KwIf: {
    Token T = consume();
    if (!expect(TokenKind::LParen, "after 'if'"))
      return nullptr;
    ExprPtr Cond = parseExpr(P);
    if (!Cond || !expect(TokenKind::RParen, "after condition"))
      return nullptr;
    StmtPtr Then = parseStmt(P);
    if (!Then)
      return nullptr;
    StmtPtr Else;
    if (match(TokenKind::KwElse)) {
      Else = parseStmt(P);
      if (!Else)
        return nullptr;
    }
    return std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                    std::move(Else), T.Line);
  }
  case TokenKind::KwWhile: {
    Token T = consume();
    if (!expect(TokenKind::LParen, "after 'while'"))
      return nullptr;
    ExprPtr Cond = parseExpr(P);
    if (!Cond || !expect(TokenKind::RParen, "after condition"))
      return nullptr;
    StmtPtr Body = parseStmt(P);
    if (!Body)
      return nullptr;
    return std::make_unique<WhileStmt>(std::move(Cond), std::move(Body),
                                       T.Line);
  }
  case TokenKind::KwFor: {
    Token T = consume();
    if (!expect(TokenKind::LParen, "after 'for'"))
      return nullptr;
    StmtPtr Init;
    if (!check(TokenKind::Semicolon)) {
      Init = parseSimpleStmt(P, /*RequireSemi=*/false);
      if (!Init)
        return nullptr;
    }
    if (!expect(TokenKind::Semicolon, "after for-initializer"))
      return nullptr;
    ExprPtr Cond;
    if (!check(TokenKind::Semicolon)) {
      Cond = parseExpr(P);
      if (!Cond)
        return nullptr;
    }
    if (!expect(TokenKind::Semicolon, "after for-condition"))
      return nullptr;
    StmtPtr Step;
    if (!check(TokenKind::RParen)) {
      Step = parseSimpleStmt(P, /*RequireSemi=*/false);
      if (!Step)
        return nullptr;
    }
    if (!expect(TokenKind::RParen, "after for-header"))
      return nullptr;
    StmtPtr Body = parseStmt(P);
    if (!Body)
      return nullptr;
    return std::make_unique<ForStmt>(std::move(Init), std::move(Cond),
                                     std::move(Step), std::move(Body),
                                     T.Line);
  }
  case TokenKind::KwReturn: {
    Token T = consume();
    ExprPtr Value;
    if (!check(TokenKind::Semicolon)) {
      Value = parseExpr(P);
      if (!Value)
        return nullptr;
    }
    if (!expect(TokenKind::Semicolon, "after return"))
      return nullptr;
    return std::make_unique<ReturnStmt>(std::move(Value), T.Line);
  }
  case TokenKind::KwBreak: {
    Token T = consume();
    if (!expect(TokenKind::Semicolon, "after 'break'"))
      return nullptr;
    return std::make_unique<BreakStmt>(T.Line);
  }
  case TokenKind::KwContinue: {
    Token T = consume();
    if (!expect(TokenKind::Semicolon, "after 'continue'"))
      return nullptr;
    return std::make_unique<ContinueStmt>(T.Line);
  }
  case TokenKind::KwSpawn: {
    Token T = consume();
    if (!check(TokenKind::Identifier)) {
      error(current(), "expected function name after 'spawn'");
      return nullptr;
    }
    Token NameTok = consume();
    Symbol Callee = P.Symbols.intern(NameTok.Text);
    if (!expect(TokenKind::LParen, "after spawned function name"))
      return nullptr;
    std::vector<ExprPtr> Args;
    if (!check(TokenKind::RParen)) {
      do {
        ExprPtr Arg = parseExpr(P);
        if (!Arg)
          return nullptr;
        Args.push_back(std::move(Arg));
      } while (match(TokenKind::Comma));
    }
    if (!expect(TokenKind::RParen, "after spawn arguments"))
      return nullptr;
    if (!expect(TokenKind::Semicolon, "after 'spawn'"))
      return nullptr;
    auto Call =
        std::make_unique<CallExpr>(Callee, std::move(Args), NameTok.Line);
    return std::make_unique<SpawnStmt>(std::move(Call), T.Line);
  }
  case TokenKind::KwAssert: {
    Token T = consume();
    if (!expect(TokenKind::LParen, "after 'assert'"))
      return nullptr;
    ExprPtr Cond = parseExpr(P);
    if (!Cond || !expect(TokenKind::RParen, "after asserted condition"))
      return nullptr;
    if (!expect(TokenKind::Semicolon, "after 'assert'"))
      return nullptr;
    return std::make_unique<AssertStmt>(std::move(Cond), T.Line);
  }
  case TokenKind::KwMutex:
    // KwMutex is a synchronize() sync point (for top-level recovery), so
    // it must be consumed here or statement recovery loops without
    // progress.
    error(current(), "mutex declarations are only allowed at the top level");
    consume();
    return nullptr;
  case TokenKind::KwLock:
  case TokenKind::KwUnlock: {
    Token T = consume();
    bool IsLock = T.is(TokenKind::KwLock);
    const char *What = IsLock ? "'lock'" : "'unlock'";
    if (!expect(TokenKind::LParen, IsLock ? "after 'lock'" : "after 'unlock'"))
      return nullptr;
    if (!check(TokenKind::Identifier)) {
      error(current(), std::string("expected mutex name in ") + What);
      return nullptr;
    }
    Symbol Mutex = P.Symbols.intern(consume().Text);
    if (!expect(TokenKind::RParen, "after mutex name"))
      return nullptr;
    if (!expect(TokenKind::Semicolon,
                IsLock ? "after 'lock'" : "after 'unlock'"))
      return nullptr;
    if (IsLock)
      return std::make_unique<LockStmt>(Mutex, T.Line);
    return std::make_unique<UnlockStmt>(Mutex, T.Line);
  }
  default:
    return parseSimpleStmt(P, /*RequireSemi=*/true);
  }
}

StmtPtr Parser::parseSimpleStmt(Program &P, bool RequireSemi) {
  auto FinishSemi = [&](StmtPtr S) -> StmtPtr {
    if (RequireSemi && !expect(TokenKind::Semicolon, "after statement"))
      return nullptr;
    return S;
  };

  if (match(TokenKind::KwInt)) {
    if (!check(TokenKind::Identifier)) {
      error(current(), "expected variable name after 'int'");
      return nullptr;
    }
    Token NameTok = consume();
    Symbol Name = P.Symbols.intern(NameTok.Text);
    if (match(TokenKind::LBracket)) {
      if (!check(TokenKind::IntLiteral)) {
        error(current(), "array size must be an integer constant");
        return nullptr;
      }
      int64_t Size = consume().IntValue;
      if (!expect(TokenKind::RBracket, "after array size"))
        return nullptr;
      return FinishSemi(std::make_unique<DeclStmt>(Name, nullptr, Size,
                                                   NameTok.Line));
    }
    ExprPtr Init;
    if (match(TokenKind::Assign)) {
      Init = parseExpr(P);
      if (!Init)
        return nullptr;
    }
    return FinishSemi(std::make_unique<DeclStmt>(Name, std::move(Init),
                                                 /*ArraySize=*/-1,
                                                 NameTok.Line));
  }

  if (!check(TokenKind::Identifier)) {
    error(current(), "expected statement");
    return nullptr;
  }

  Token NameTok = consume();
  Symbol Name = P.Symbols.intern(NameTok.Text);

  if (match(TokenKind::Assign)) {
    ExprPtr Value = parseExpr(P);
    if (!Value)
      return nullptr;
    return FinishSemi(
        std::make_unique<AssignStmt>(Name, std::move(Value), NameTok.Line));
  }

  if (match(TokenKind::LBracket)) {
    ExprPtr Index = parseExpr(P);
    if (!Index || !expect(TokenKind::RBracket, "after array index"))
      return nullptr;
    if (!expect(TokenKind::Assign, "in array assignment"))
      return nullptr;
    ExprPtr Value = parseExpr(P);
    if (!Value)
      return nullptr;
    return FinishSemi(std::make_unique<ArrayAssignStmt>(
        Name, std::move(Index), std::move(Value), NameTok.Line));
  }

  if (check(TokenKind::LParen)) {
    consume();
    std::vector<ExprPtr> Args;
    if (!check(TokenKind::RParen)) {
      do {
        ExprPtr Arg = parseExpr(P);
        if (!Arg)
          return nullptr;
        Args.push_back(std::move(Arg));
      } while (match(TokenKind::Comma));
    }
    if (!expect(TokenKind::RParen, "after call arguments"))
      return nullptr;
    auto Call =
        std::make_unique<CallExpr>(Name, std::move(Args), NameTok.Line);
    return FinishSemi(
        std::make_unique<ExprCallStmt>(std::move(Call), NameTok.Line));
  }

  error(NameTok, "expected '=', '[', or '(' after identifier");
  return nullptr;
}

ExprPtr Parser::parseLOr(Program &P) {
  ExprPtr Lhs = parseLAnd(P);
  while (Lhs && check(TokenKind::PipePipe)) {
    Token T = consume();
    ExprPtr Rhs = parseLAnd(P);
    if (!Rhs)
      return nullptr;
    Lhs = std::make_unique<BinaryExpr>(BinaryOp::LOr, std::move(Lhs),
                                       std::move(Rhs), T.Line);
  }
  return Lhs;
}

ExprPtr Parser::parseLAnd(Program &P) {
  ExprPtr Lhs = parseEquality(P);
  while (Lhs && check(TokenKind::AmpAmp)) {
    Token T = consume();
    ExprPtr Rhs = parseEquality(P);
    if (!Rhs)
      return nullptr;
    Lhs = std::make_unique<BinaryExpr>(BinaryOp::LAnd, std::move(Lhs),
                                       std::move(Rhs), T.Line);
  }
  return Lhs;
}

ExprPtr Parser::parseEquality(Program &P) {
  ExprPtr Lhs = parseRelational(P);
  while (Lhs &&
         (check(TokenKind::EqualEqual) || check(TokenKind::BangEqual))) {
    Token T = consume();
    BinaryOp Op =
        T.is(TokenKind::EqualEqual) ? BinaryOp::Eq : BinaryOp::Ne;
    ExprPtr Rhs = parseRelational(P);
    if (!Rhs)
      return nullptr;
    Lhs = std::make_unique<BinaryExpr>(Op, std::move(Lhs), std::move(Rhs),
                                       T.Line);
  }
  return Lhs;
}

ExprPtr Parser::parseRelational(Program &P) {
  ExprPtr Lhs = parseAdditive(P);
  while (Lhs && (check(TokenKind::Less) || check(TokenKind::LessEqual) ||
                 check(TokenKind::Greater) ||
                 check(TokenKind::GreaterEqual))) {
    Token T = consume();
    BinaryOp Op;
    switch (T.Kind) {
    case TokenKind::Less:
      Op = BinaryOp::Lt;
      break;
    case TokenKind::LessEqual:
      Op = BinaryOp::Le;
      break;
    case TokenKind::Greater:
      Op = BinaryOp::Gt;
      break;
    default:
      Op = BinaryOp::Ge;
      break;
    }
    ExprPtr Rhs = parseAdditive(P);
    if (!Rhs)
      return nullptr;
    Lhs = std::make_unique<BinaryExpr>(Op, std::move(Lhs), std::move(Rhs),
                                       T.Line);
  }
  return Lhs;
}

ExprPtr Parser::parseAdditive(Program &P) {
  ExprPtr Lhs = parseMultiplicative(P);
  while (Lhs && (check(TokenKind::Plus) || check(TokenKind::Minus))) {
    Token T = consume();
    BinaryOp Op = T.is(TokenKind::Plus) ? BinaryOp::Add : BinaryOp::Sub;
    ExprPtr Rhs = parseMultiplicative(P);
    if (!Rhs)
      return nullptr;
    Lhs = std::make_unique<BinaryExpr>(Op, std::move(Lhs), std::move(Rhs),
                                       T.Line);
  }
  return Lhs;
}

ExprPtr Parser::parseMultiplicative(Program &P) {
  ExprPtr Lhs = parseUnary(P);
  while (Lhs && (check(TokenKind::Star) || check(TokenKind::Slash) ||
                 check(TokenKind::Percent))) {
    Token T = consume();
    BinaryOp Op = T.is(TokenKind::Star)    ? BinaryOp::Mul
                  : T.is(TokenKind::Slash) ? BinaryOp::Div
                                           : BinaryOp::Rem;
    ExprPtr Rhs = parseUnary(P);
    if (!Rhs)
      return nullptr;
    Lhs = std::make_unique<BinaryExpr>(Op, std::move(Lhs), std::move(Rhs),
                                       T.Line);
  }
  return Lhs;
}

ExprPtr Parser::parseUnary(Program &P) {
  if (check(TokenKind::Minus)) {
    Token T = consume();
    ExprPtr Operand = parseUnary(P);
    if (!Operand)
      return nullptr;
    return std::make_unique<UnaryExpr>(UnaryOp::Neg, std::move(Operand),
                                       T.Line);
  }
  if (check(TokenKind::Bang)) {
    Token T = consume();
    ExprPtr Operand = parseUnary(P);
    if (!Operand)
      return nullptr;
    return std::make_unique<UnaryExpr>(UnaryOp::Not, std::move(Operand),
                                       T.Line);
  }
  return parsePrimary(P);
}

ExprPtr Parser::parsePrimary(Program &P) {
  if (check(TokenKind::IntLiteral)) {
    Token T = consume();
    return std::make_unique<IntLit>(T.IntValue, T.Line);
  }
  if (match(TokenKind::LParen)) {
    ExprPtr Inner = parseExpr(P);
    if (!Inner || !expect(TokenKind::RParen, "after expression"))
      return nullptr;
    return Inner;
  }
  if (check(TokenKind::Identifier)) {
    Token T = consume();
    Symbol Name = P.Symbols.intern(T.Text);
    if (match(TokenKind::LBracket)) {
      ExprPtr Index = parseExpr(P);
      if (!Index || !expect(TokenKind::RBracket, "after array index"))
        return nullptr;
      return std::make_unique<ArrayRef>(Name, std::move(Index), T.Line);
    }
    if (match(TokenKind::LParen)) {
      std::vector<ExprPtr> Args;
      if (!check(TokenKind::RParen)) {
        do {
          ExprPtr Arg = parseExpr(P);
          if (!Arg)
            return nullptr;
          Args.push_back(std::move(Arg));
        } while (match(TokenKind::Comma));
      }
      if (!expect(TokenKind::RParen, "after call arguments"))
        return nullptr;
      return std::make_unique<CallExpr>(Name, std::move(Args), T.Line);
    }
    return std::make_unique<VarRef>(Name, T.Line);
  }
  error(current(), "expected expression");
  return nullptr;
}
