//===- lang/interp.h - Concrete mini-C interpreter --------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A concrete interpreter executing mini-C programs over their CFGs. Its
/// purpose is to serve as the *soundness oracle* for the abstract
/// interpreter: an observer callback sees every (function, node, state)
/// the execution visits, and property tests assert that each concrete
/// state is contained in the corresponding abstract environment.
///
/// Semantics matching the abstract domain's assumptions:
///  - integers are mathematical, approximated with saturating int64;
///  - scalars are 0 when read before assignment; arrays zero-initialize;
///  - `unknown()` pops the next value from a user-supplied input tape
///    (cyclic; 0 when empty);
///  - division/modulo by zero and out-of-bounds array accesses trap
///    (execution stops; states observed before the trap remain valid).
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_LANG_INTERP_H
#define WARROW_LANG_INTERP_H

#include "lang/cfg.h"
#include "lang/sema.h"

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

namespace warrow {

/// Concrete values of one activation record.
struct ConcreteFrame {
  std::unordered_map<Symbol, int64_t> Scalars;
  std::unordered_map<Symbol, std::vector<int64_t>> Arrays;
};

/// Concrete values of globals.
struct ConcreteGlobals {
  std::unordered_map<Symbol, int64_t> Scalars;
  std::unordered_map<Symbol, std::vector<int64_t>> Arrays;
};

/// Interpreter limits.
struct InterpOptions {
  uint64_t MaxSteps = 1'000'000;
  unsigned MaxCallDepth = 200;
};

/// Outcome of a run.
struct InterpResult {
  enum class Status { Finished, OutOfFuel, Trapped } St = Status::Finished;
  int64_t ReturnValue = 0;
  uint64_t Steps = 0;
  std::string TrapReason;

  bool finished() const { return St == Status::Finished; }
};

/// Executes `main` of a program over its CFGs.
class Interpreter {
public:
  /// Called at every visited program point, *before* executing an
  /// outgoing edge.
  using Observer = std::function<void(
      uint32_t FuncIndex, uint32_t Node, const ConcreteFrame &Frame,
      const ConcreteGlobals &Globals)>;

  Interpreter(const Program &P, const ProgramCfg &Cfgs,
              std::vector<int64_t> Inputs = {}, InterpOptions Options = {});

  void setObserver(Observer Obs) { Observe = std::move(Obs); }

  /// Runs `main()`.
  InterpResult run();

  const ConcreteGlobals &globals() const { return Globals; }

private:
  /// Runs one function; returns false on trap/out-of-fuel.
  bool runFunction(size_t FuncIndex, ConcreteFrame Frame, unsigned Depth,
                   int64_t &ReturnValue);
  /// Evaluates an expression (no calls inside; sema guarantees that).
  bool evalExpr(const Expr &E, const ConcreteFrame &Frame, int64_t &Out);
  bool trap(std::string Reason);
  /// Pops the next `unknown()` value from the (cyclic) input tape.
  int64_t nextInput();

  const Program &P;
  const ProgramCfg &Cfgs;
  std::vector<FuncVars> VarsPerFunc;
  std::vector<int64_t> Inputs;
  size_t NextInput = 0;
  InterpOptions Options;
  Observer Observe;
  ConcreteGlobals Globals;
  InterpResult Result;
  Symbol RetSym = 0;
  Symbol UnknownSym = 0;
};

} // namespace warrow

#endif // WARROW_LANG_INTERP_H
