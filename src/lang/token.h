//===- lang/token.h - Mini-C tokens -----------------------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds of the mini-C language that serves as the analysis
/// substrate (the role CIL-parsed C plays for Goblint in the paper).
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_LANG_TOKEN_H
#define WARROW_LANG_TOKEN_H

#include <cstdint>
#include <string>
#include <string_view>

namespace warrow {

enum class TokenKind : uint8_t {
  Eof,
  Error,
  Identifier,
  IntLiteral,
  // Keywords.
  KwInt,
  KwVoid,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwReturn,
  KwBreak,
  KwContinue,
  KwAssert,
  // Concurrency keywords (Goblint-style multithreaded mini-C).
  KwSpawn,
  KwLock,
  KwUnlock,
  KwMutex,
  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semicolon,
  Comma,
  // Operators.
  Assign,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Less,
  LessEqual,
  Greater,
  GreaterEqual,
  EqualEqual,
  BangEqual,
  AmpAmp,
  PipePipe,
  Bang,
};

/// Human-readable token-kind name for diagnostics ("';'", "identifier").
std::string_view tokenKindName(TokenKind Kind);

/// A lexed token. `Text` views into the source buffer, which must outlive
/// the token stream.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  std::string_view Text;
  int64_t IntValue = 0; // Valid for IntLiteral.
  uint32_t Line = 0;    // 1-based.
  uint32_t Column = 0;  // 1-based.

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace warrow

#endif // WARROW_LANG_TOKEN_H
