//===- lang/pretty.cpp - Mini-C pretty printer -------------------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/pretty.h"

#include "support/casting.h"

using namespace warrow;

namespace {

/// Precedence levels matching the parser (higher binds tighter).
int precedence(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::LOr:
    return 1;
  case BinaryOp::LAnd:
    return 2;
  case BinaryOp::Eq:
  case BinaryOp::Ne:
    return 3;
  case BinaryOp::Lt:
  case BinaryOp::Le:
  case BinaryOp::Gt:
  case BinaryOp::Ge:
    return 4;
  case BinaryOp::Add:
  case BinaryOp::Sub:
    return 5;
  case BinaryOp::Mul:
  case BinaryOp::Div:
  case BinaryOp::Rem:
    return 6;
  }
  return 0;
}

void printExprInto(const Expr &E, const Interner &Symbols, std::string &Out,
                   int ParentPrec) {
  switch (E.kind()) {
  case Expr::Kind::IntLit:
    Out += std::to_string(cast<IntLit>(&E)->value());
    return;
  case Expr::Kind::VarRef:
    Out += Symbols.spelling(cast<VarRef>(&E)->name());
    return;
  case Expr::Kind::ArrayRef: {
    const auto *A = cast<ArrayRef>(&E);
    Out += Symbols.spelling(A->name());
    Out += '[';
    printExprInto(A->index(), Symbols, Out, 0);
    Out += ']';
    return;
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(&E);
    Out += U->op() == UnaryOp::Neg ? '-' : '!';
    printExprInto(U->operand(), Symbols, Out, 7);
    return;
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(&E);
    int Prec = precedence(B->op());
    bool Paren = Prec < ParentPrec;
    if (Paren)
      Out += '(';
    printExprInto(B->lhs(), Symbols, Out, Prec);
    Out += ' ';
    Out += spelling(B->op());
    Out += ' ';
    // Left-associative operators: parenthesize an equal-precedence RHS.
    printExprInto(B->rhs(), Symbols, Out, Prec + 1);
    if (Paren)
      Out += ')';
    return;
  }
  case Expr::Kind::Call: {
    const auto *C = cast<CallExpr>(&E);
    Out += Symbols.spelling(C->callee());
    Out += '(';
    for (size_t I = 0; I < C->args().size(); ++I) {
      if (I)
        Out += ", ";
      printExprInto(*C->args()[I], Symbols, Out, 0);
    }
    Out += ')';
    return;
  }
  }
}

void indentInto(std::string &Out, unsigned Indent) {
  Out.append(2 * Indent, ' ');
}

void printStmtInto(const Stmt &S, const Interner &Symbols, std::string &Out,
                   unsigned Indent) {
  switch (S.kind()) {
  case Stmt::Kind::Block: {
    indentInto(Out, Indent);
    Out += "{\n";
    for (const StmtPtr &Child : cast<BlockStmt>(&S)->stmts())
      printStmtInto(*Child, Symbols, Out, Indent + 1);
    indentInto(Out, Indent);
    Out += "}\n";
    return;
  }
  case Stmt::Kind::Decl: {
    const auto *D = cast<DeclStmt>(&S);
    indentInto(Out, Indent);
    Out += "int " + Symbols.spelling(D->name());
    if (D->isArray()) {
      Out += '[' + std::to_string(D->arraySize()) + ']';
    } else if (D->init()) {
      Out += " = ";
      printExprInto(*D->init(), Symbols, Out, 0);
    }
    Out += ";\n";
    return;
  }
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(&S);
    indentInto(Out, Indent);
    Out += Symbols.spelling(A->name()) + " = ";
    printExprInto(A->value(), Symbols, Out, 0);
    Out += ";\n";
    return;
  }
  case Stmt::Kind::ArrayAssign: {
    const auto *A = cast<ArrayAssignStmt>(&S);
    indentInto(Out, Indent);
    Out += Symbols.spelling(A->name()) + '[';
    printExprInto(A->index(), Symbols, Out, 0);
    Out += "] = ";
    printExprInto(A->value(), Symbols, Out, 0);
    Out += ";\n";
    return;
  }
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(&S);
    indentInto(Out, Indent);
    Out += "if (";
    printExprInto(I->cond(), Symbols, Out, 0);
    Out += ")\n";
    printStmtInto(I->thenStmt(), Symbols, Out, Indent + 1);
    if (I->elseStmt()) {
      indentInto(Out, Indent);
      Out += "else\n";
      printStmtInto(*I->elseStmt(), Symbols, Out, Indent + 1);
    }
    return;
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(&S);
    indentInto(Out, Indent);
    Out += "while (";
    printExprInto(W->cond(), Symbols, Out, 0);
    Out += ")\n";
    printStmtInto(W->body(), Symbols, Out, Indent + 1);
    return;
  }
  case Stmt::Kind::For: {
    const auto *F = cast<ForStmt>(&S);
    indentInto(Out, Indent);
    Out += "for (";
    if (F->init()) {
      std::string Init;
      printStmtInto(*F->init(), Symbols, Init, 0);
      // Strip trailing ";\n" — the header supplies its own separators.
      while (!Init.empty() && (Init.back() == '\n' || Init.back() == ';'))
        Init.pop_back();
      Out += Init;
    }
    Out += "; ";
    if (F->cond())
      printExprInto(*F->cond(), Symbols, Out, 0);
    Out += "; ";
    if (F->step()) {
      std::string Step;
      printStmtInto(*F->step(), Symbols, Step, 0);
      while (!Step.empty() && (Step.back() == '\n' || Step.back() == ';'))
        Step.pop_back();
      Out += Step;
    }
    Out += ")\n";
    printStmtInto(F->body(), Symbols, Out, Indent + 1);
    return;
  }
  case Stmt::Kind::ExprCall: {
    indentInto(Out, Indent);
    printExprInto(cast<ExprCallStmt>(&S)->call(), Symbols, Out, 0);
    Out += ";\n";
    return;
  }
  case Stmt::Kind::Return: {
    const auto *R = cast<ReturnStmt>(&S);
    indentInto(Out, Indent);
    Out += "return";
    if (R->value()) {
      Out += ' ';
      printExprInto(*R->value(), Symbols, Out, 0);
    }
    Out += ";\n";
    return;
  }
  case Stmt::Kind::Break:
    indentInto(Out, Indent);
    Out += "break;\n";
    return;
  case Stmt::Kind::Continue:
    indentInto(Out, Indent);
    Out += "continue;\n";
    return;
  case Stmt::Kind::Empty:
    indentInto(Out, Indent);
    Out += ";\n";
    return;
  case Stmt::Kind::Spawn:
    indentInto(Out, Indent);
    Out += "spawn ";
    printExprInto(cast<SpawnStmt>(&S)->call(), Symbols, Out, 0);
    Out += ";\n";
    return;
  case Stmt::Kind::Assert:
    indentInto(Out, Indent);
    Out += "assert(";
    printExprInto(cast<AssertStmt>(&S)->cond(), Symbols, Out, 0);
    Out += ");\n";
    return;
  case Stmt::Kind::Lock:
    indentInto(Out, Indent);
    Out += "lock(" + Symbols.spelling(cast<LockStmt>(&S)->mutex()) + ");\n";
    return;
  case Stmt::Kind::Unlock:
    indentInto(Out, Indent);
    Out +=
        "unlock(" + Symbols.spelling(cast<UnlockStmt>(&S)->mutex()) + ");\n";
    return;
  }
}

} // namespace

std::string warrow::printExpr(const Expr &E, const Interner &Symbols) {
  std::string Out;
  printExprInto(E, Symbols, Out, 0);
  return Out;
}

std::string warrow::printStmt(const Stmt &S, const Interner &Symbols,
                              unsigned Indent) {
  std::string Out;
  printStmtInto(S, Symbols, Out, Indent);
  return Out;
}

std::string warrow::printProgram(const Program &P) {
  std::string Out;
  for (const GlobalDecl &G : P.Globals) {
    Out += "int " + P.Symbols.spelling(G.Name);
    if (G.isArray())
      Out += '[' + std::to_string(G.ArraySize) + ']';
    else if (G.Init != 0)
      Out += " = " + std::to_string(G.Init);
    Out += ";\n";
  }
  for (const MutexDecl &M : P.Mutexes)
    Out += "mutex " + P.Symbols.spelling(M.Name) + ";\n";
  if (!P.Globals.empty() || !P.Mutexes.empty())
    Out += '\n';
  for (const auto &F : P.Functions) {
    Out += F->ReturnsVoid ? "void " : "int ";
    Out += P.Symbols.spelling(F->Name);
    Out += '(';
    for (size_t I = 0; I < F->Params.size(); ++I) {
      if (I)
        Out += ", ";
      Out += "int " + P.Symbols.spelling(F->Params[I]);
    }
    Out += ")\n";
    Out += printStmt(*F->Body, P.Symbols, 0);
    Out += '\n';
  }
  return Out;
}
