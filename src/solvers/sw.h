//===- solvers/sw.h - Structured worklist (paper Fig. 4) --------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured worklist solver SW of the paper's Figure 4 (Theorem 2)
/// — thin shims over the engine's PriorityWorklist strategy
/// (engine/strategies/priority_worklist.h), which unifies the identity
/// ordering and the explicitly ranked variant behind one loop.
/// Registered as "sw" / "sw-ordered".
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_SOLVERS_SW_H
#define WARROW_SOLVERS_SW_H

#include "engine/strategies/priority_worklist.h"

#include <utility>
#include <vector>

namespace warrow {

/// Runs structured worklist iteration with combine operator \p Combine.
template <typename D, typename C>
SolveResult<D> solveSW(const DenseSystem<D> &System, C &&Combine,
                       const SolverOptions &Options = {}) {
  return engine::runPriorityWorklist(System, std::forward<C>(Combine),
                                     Options);
}

/// SW under an explicit priority order: \p Rank maps each variable to
/// its priority (smaller = evaluated first), so Fig. 4's "fixed variable
/// ordering" becomes a parameter instead of the identity. With a
/// condensation-consistent Rank (graph/order.h) sequential SW stabilizes
/// every component before its successors, and its result is bit-identical
/// to solveParallelSW at any thread count.
template <typename D, typename C>
SolveResult<D> solveOrderedSW(const DenseSystem<D> &System, C &&Combine,
                              const std::vector<uint32_t> &Rank,
                              const SolverOptions &Options = {}) {
  return engine::runPriorityWorklist(System, std::forward<C>(Combine),
                                     Options, &Rank);
}

} // namespace warrow

#endif // WARROW_SOLVERS_SW_H
