//===- solvers/sw.h - Structured worklist (paper Fig. 4) --------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured worklist solver SW of the paper's Figure 4:
///
///     Q <- {};  for (i <- 1..n) add Q x_i;
///     while (Q != {}) {
///       x_i <- extract_min(Q);
///       new <- sigma[x_i] ⊕ f_i(sigma);
///       if (sigma[x_i] != new) {
///         sigma[x_i] <- new;
///         add Q x_i;
///         forall (x_j in infl_i) add Q x_j;
///       }
///     }
///
/// SW replaces the plain worklist by a priority queue over the fixed
/// variable ordering, always re-evaluating the *least* unstable unknown
/// first. Theorem 2: complexity matches ordinary worklist iteration up to
/// the log factor for the queue, and with ⊕ = ⊟ SW terminates for
/// monotonic systems from any initial assignment.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_SOLVERS_SW_H
#define WARROW_SOLVERS_SW_H

#include "eqsys/dense_system.h"
#include "solvers/stats.h"

#include <queue>
#include <vector>

namespace warrow {

/// Runs structured worklist iteration with combine operator \p Combine.
template <typename D, typename C>
SolveResult<D> solveSW(const DenseSystem<D> &System, C &&Combine,
                       const SolverOptions &Options = {}) {
  SolveResult<D> Result;
  Result.Sigma = System.initialAssignment();
  Result.Stats.VarsSeen = System.size();
  auto Get = [&Result](Var Y) { return Result.Sigma[Y]; };

  // Min-heap over variable indices with an "in queue" guard implementing
  // the `add` of the paper (insert or leave unchanged).
  std::priority_queue<Var, std::vector<Var>, std::greater<Var>> Queue;
  std::vector<char> InQueue(System.size(), 0);
  size_t InQueueCount = 0;
  auto Add = [&](Var Y) {
    if (InQueue[Y])
      return;
    InQueue[Y] = 1;
    Queue.push(Y);
    ++InQueueCount;
    if (InQueueCount > Result.Stats.QueueMax)
      Result.Stats.QueueMax = InQueueCount;
  };
  for (Var X = 0; X < System.size(); ++X)
    Add(X);

  while (!Queue.empty()) {
    if (Result.Stats.RhsEvals >= Options.MaxRhsEvals) {
      Result.Stats.Converged = false;
      return Result;
    }
    Var X = Queue.top();
    Queue.pop();
    InQueue[X] = 0;
    --InQueueCount;
    ++Result.Stats.RhsEvals;
    D New = Combine(X, Result.Sigma[X], System.eval(X, Get));
    if (Result.Sigma[X] == New)
      continue;
    Result.Sigma[X] = New;
    ++Result.Stats.Updates;
    if (Options.RecordTrace)
      Result.Trace.push_back({X, Result.Sigma[X]});
    Add(X); // Precaution for non-idempotent ⊕ (Fig. 4 line `add Q x_i`).
    for (Var Y : System.influenced(X))
      Add(Y);
  }
  return Result;
}

} // namespace warrow

#endif // WARROW_SOLVERS_SW_H
