//===- solvers/sw.h - Structured worklist (paper Fig. 4) --------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured worklist solver SW of the paper's Figure 4:
///
///     Q <- {};  for (i <- 1..n) add Q x_i;
///     while (Q != {}) {
///       x_i <- extract_min(Q);
///       new <- sigma[x_i] ⊕ f_i(sigma);
///       if (sigma[x_i] != new) {
///         sigma[x_i] <- new;
///         add Q x_i;
///         forall (x_j in infl_i) add Q x_j;
///       }
///     }
///
/// SW replaces the plain worklist by a priority queue over the fixed
/// variable ordering, always re-evaluating the *least* unstable unknown
/// first. Theorem 2: complexity matches ordinary worklist iteration up to
/// the log factor for the queue, and with ⊕ = ⊟ SW terminates for
/// monotonic systems from any initial assignment.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_SOLVERS_SW_H
#define WARROW_SOLVERS_SW_H

#include "eqsys/dense_system.h"
#include "solvers/stats.h"
#include "support/indexed_heap.h"
#include "trace/trace.h"

#include <vector>

namespace warrow {

/// Runs structured worklist iteration with combine operator \p Combine.
template <typename D, typename C>
SolveResult<D> solveSW(const DenseSystem<D> &System, C &&Combine,
                       const SolverOptions &Options = {}) {
  SolveResult<D> Result;
  Result.Sigma = System.initialAssignment();
  Result.Stats.VarsSeen = System.size();
  Var Current = 0; // Unknown under evaluation, for dependency events.
  auto Get = [&Result, &Options, &Current](Var Y) {
    if (Options.Trace)
      Options.Trace->event(TraceEvent::dependency(Current, Y));
    return Result.Sigma[Y];
  };

  // Indexed min-heap over variable indices; push implements the `add` of
  // the paper (insert or leave unchanged).
  IndexedHeap<> Queue;
  Queue.resizeUniverse(System.size());
  auto Add = [&](Var Y) {
    if (Queue.push(Y) && Options.Trace)
      Options.Trace->event(TraceEvent::enqueue(Y));
    if (Queue.size() > Result.Stats.QueueMax)
      Result.Stats.QueueMax = Queue.size();
  };
  for (Var X = 0; X < System.size(); ++X)
    Add(X);

  while (!Queue.empty()) {
    if (Result.Stats.RhsEvals >= Options.MaxRhsEvals) {
      Result.Stats.Converged = false;
      return Result;
    }
    Var X = Queue.pop();
    ++Result.Stats.RhsEvals;
    if (Options.Trace) {
      Current = X;
      Options.Trace->event(TraceEvent::dequeue(X));
      Options.Trace->event(TraceEvent::rhsBegin(X));
    }
    D Rhs = System.eval(X, Get);
    if (Options.Trace)
      Options.Trace->event(TraceEvent::rhsEnd(X));
    D New = Combine(X, Result.Sigma[X], Rhs);
    if (Result.Sigma[X] == New)
      continue;
    if (Options.Trace)
      Options.Trace->event(TraceEvent::update(X, Result.Sigma[X], Rhs, New));
    Result.Sigma[X] = New;
    ++Result.Stats.Updates;
    if (Options.RecordTrace)
      Result.Trace.push_back({X, Result.Sigma[X]});
    if (Options.Trace) {
      Options.Trace->event(TraceEvent::destabilize(X, X));
      for (Var Y : System.influenced(X))
        Options.Trace->event(TraceEvent::destabilize(Y, X));
    }
    Add(X); // Precaution for non-idempotent ⊕ (Fig. 4 line `add Q x_i`).
    for (Var Y : System.influenced(X))
      Add(Y);
  }
  return Result;
}

/// SW under an explicit priority order: \p Rank maps each variable to
/// its priority (smaller = evaluated first), so Fig. 4's "fixed variable
/// ordering" becomes a parameter instead of the identity. With a
/// condensation-consistent Rank (graph/order.h) sequential SW stabilizes
/// every component before its successors, and its result is bit-identical
/// to solveParallelSW at any thread count.
template <typename D, typename C>
SolveResult<D> solveOrderedSW(const DenseSystem<D> &System, C &&Combine,
                              const std::vector<uint32_t> &Rank,
                              const SolverOptions &Options = {}) {
  SolveResult<D> Result;
  Result.Sigma = System.initialAssignment();
  Result.Stats.VarsSeen = System.size();
  Var Current = 0; // Unknown under evaluation, for dependency events.
  auto Get = [&Result, &Options, &Current](Var Y) {
    if (Options.Trace)
      Options.Trace->event(TraceEvent::dependency(Current, Y));
    return Result.Sigma[Y];
  };

  // The heap holds ranks; VarAt inverts the permutation on extraction.
  std::vector<Var> VarAt(System.size());
  for (Var X = 0; X < System.size(); ++X)
    VarAt[Rank[X]] = X;
  IndexedHeap<> Queue;
  Queue.resizeUniverse(System.size());
  auto Add = [&](Var Y) {
    if (Queue.push(Rank[Y]) && Options.Trace)
      Options.Trace->event(TraceEvent::enqueue(Y));
    if (Queue.size() > Result.Stats.QueueMax)
      Result.Stats.QueueMax = Queue.size();
  };
  for (Var X = 0; X < System.size(); ++X)
    Add(X);

  while (!Queue.empty()) {
    if (Result.Stats.RhsEvals >= Options.MaxRhsEvals) {
      Result.Stats.Converged = false;
      return Result;
    }
    Var X = VarAt[Queue.pop()];
    ++Result.Stats.RhsEvals;
    if (Options.Trace) {
      Current = X;
      Options.Trace->event(TraceEvent::dequeue(X));
      Options.Trace->event(TraceEvent::rhsBegin(X));
    }
    D Rhs = System.eval(X, Get);
    if (Options.Trace)
      Options.Trace->event(TraceEvent::rhsEnd(X));
    D New = Combine(X, Result.Sigma[X], Rhs);
    if (Result.Sigma[X] == New)
      continue;
    if (Options.Trace)
      Options.Trace->event(TraceEvent::update(X, Result.Sigma[X], Rhs, New));
    Result.Sigma[X] = New;
    ++Result.Stats.Updates;
    if (Options.RecordTrace)
      Result.Trace.push_back({X, Result.Sigma[X]});
    if (Options.Trace) {
      Options.Trace->event(TraceEvent::destabilize(X, X));
      for (Var Y : System.influenced(X))
        Options.Trace->event(TraceEvent::destabilize(Y, X));
    }
    Add(X);
    for (Var Y : System.influenced(X))
      Add(Y);
  }
  return Result;
}

} // namespace warrow

#endif // WARROW_SOLVERS_SW_H
