//===- solvers/lrr.h - Local round-robin solver (Sec. 5) --------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The local round-robin solver sketched in the paper's Section 5 — a
/// thin shim over the engine's LocalRoundRobin strategy
/// (engine/strategies/local_round_robin.h). Registered as "lrr".
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_SOLVERS_LRR_H
#define WARROW_SOLVERS_LRR_H

#include "engine/strategies/local_round_robin.h"

#include <utility>

namespace warrow {

/// Runs local round-robin iteration for the interesting unknown \p X0.
template <typename V, typename D, typename C>
PartialSolution<V, D> solveLRR(const LocalSystem<V, D> &System, const V &X0,
                               C &&Combine, const SolverOptions &Options = {}) {
  return engine::runLocalRoundRobin(System, X0, std::forward<C>(Combine),
                                    Options);
}

} // namespace warrow

#endif // WARROW_SOLVERS_LRR_H
