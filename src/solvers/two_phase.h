//===- solvers/two_phase.h - Classic widening/narrowing solver --*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classical two-phase iteration of Cousot & Cousot against which the
/// paper's ⊟-solvers are compared: first an ascending (widening) phase
/// with ⊕ = ▽ until stabilization, then a descending (narrowing) phase
/// with ⊕ = △ on the obtained post solution (Fact 1). The narrowing phase
/// is only sound for *monotonic* systems — which is precisely the
/// limitation the paper removes.
///
/// Both phases run structured worklist iteration (SW) so that the
/// comparison with the ⊟-solver isolates the operator, not the strategy.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_SOLVERS_TWO_PHASE_H
#define WARROW_SOLVERS_TWO_PHASE_H

#include "eqsys/dense_system.h"
#include "lattice/combine.h"
#include "solvers/stats.h"
#include "solvers/sw.h"
#include "trace/trace.h"

#include <algorithm>

namespace warrow {

/// Runs the widening phase followed by the narrowing phase and merges the
/// statistics. \p NarrowRounds bounds the descending iteration: each round
/// is one SW stabilization pass with ⊕ = △ (one round suffices for
/// idempotent narrowings; 0 disables the phase entirely).
template <typename D>
SolveResult<D> solveTwoPhase(const DenseSystem<D> &System,
                             const SolverOptions &Options = {},
                             unsigned NarrowRounds = 1) {
  // Phase 1: ascending iteration with widening.
  if (Options.Trace)
    Options.Trace->event(TraceEvent::phaseChange(0));
  SolveResult<D> Up = solveSW(System, WidenCombine{}, Options);
  if (!Up.Stats.Converged)
    return Up;

  // Phase 2: descending iteration with narrowing, seeded with the post
  // solution from phase 1.
  for (unsigned Round = 0; Round < NarrowRounds; ++Round) {
    if (Options.Trace)
      Options.Trace->event(TraceEvent::phaseChange(1, Round));
    // Re-run SW on a copy of the system state: build a wrapper system
    // whose initial assignment is the current sigma.
    DenseSystem<D> Seeded;
    for (Var X = 0; X < System.size(); ++X)
      Seeded.addVar(System.name(X), Up.Sigma[X]);
    for (Var X = 0; X < System.size(); ++X)
      Seeded.define(
          X, [&System, X](const typename DenseSystem<D>::GetFn &Get) {
            return System.eval(X, Get);
          },
          System.deps(X));
    SolveResult<D> Down = solveSW(Seeded, NarrowCombine{}, Options);
    Up.Stats.RhsEvals += Down.Stats.RhsEvals;
    Up.Stats.Updates += Down.Stats.Updates;
    Up.Stats.QueueMax = std::max(Up.Stats.QueueMax, Down.Stats.QueueMax);
    Up.Stats.Converged = Down.Stats.Converged;
    bool Changed = !(Down.Sigma == Up.Sigma);
    Up.Sigma = std::move(Down.Sigma);
    if (!Up.Stats.Converged || !Changed)
      break;
  }
  return Up;
}

} // namespace warrow

#endif // WARROW_SOLVERS_TWO_PHASE_H
