//===- solvers/two_phase.h - Classic widening/narrowing solver --*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classical two-phase iteration of Cousot & Cousot against which the
/// paper's ⊟-solvers are compared — a thin shim over the engine's
/// TwoPhaseSW driver (engine/strategies/two_phase.h). Registered as
/// "two-phase-dense"; the engine also registers the new "two-phase-rr"
/// driver over round-robin sweeps.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_SOLVERS_TWO_PHASE_H
#define WARROW_SOLVERS_TWO_PHASE_H

#include "engine/strategies/two_phase.h"

namespace warrow {

/// Runs the widening phase followed by the narrowing phase and merges the
/// statistics. \p NarrowRounds bounds the descending iteration: each round
/// is one SW stabilization pass with ⊕ = △ (one round suffices for
/// idempotent narrowings; 0 disables the phase entirely).
template <typename D>
SolveResult<D> solveTwoPhase(const DenseSystem<D> &System,
                             const SolverOptions &Options = {},
                             unsigned NarrowRounds = 1) {
  return engine::runTwoPhaseSW(System, Options, NarrowRounds);
}

} // namespace warrow

#endif // WARROW_SOLVERS_TWO_PHASE_H
