//===- solvers/slr_plus.h - SLR+ for side effects (Sec. 6) ------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The side-effecting structured local solver SLR+ of the paper's
/// Section 6, with per-contributor value cells and optional localized
/// widening points — a thin shim over the engine's unified SlrEngine
/// (engine/strategies/slr.h), instantiated with side-effect support.
/// Registered as "slr-plus" (and, operator-fixed, as "warrow"/"widen").
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_SOLVERS_SLR_PLUS_H
#define WARROW_SOLVERS_SLR_PLUS_H

#include "engine/strategies/slr.h"

#include <type_traits>
#include <utility>

namespace warrow {

/// SLR+ solver engine. Kept as a class so that tests, the analyses, and
/// the experiment drivers can inspect contributions, widening points, and
/// the discovered domain.
template <typename V, typename D, typename C>
using SlrPlusSolver = engine::SlrEngine<V, D, C, /*WithSide=*/true>;

/// Convenience wrapper running SLR+ once.
template <typename V, typename D, typename C>
PartialSolution<V, D> solveSLRPlus(const SideEffectingSystem<V, D> &System,
                                   const V &X0, C &&Combine,
                                   const SolverOptions &Options = {}) {
  SlrPlusSolver<V, D, std::decay_t<C>> Solver(System, std::forward<C>(Combine),
                                              Options);
  return Solver.solveFor(X0);
}

} // namespace warrow

#endif // WARROW_SOLVERS_SLR_PLUS_H
