//===- solvers/slr_plus.h - Side-effecting SLR+ (paper Sec. 6) --*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SLR+ — the extension of SLR to side-effecting constraint systems
/// (Section 6). Right-hand sides receive, besides `get`, a callback
/// `side(z, d)` contributing the value d to unknown z; such systems
/// express context-sensitive interprocedural analysis with flow-
/// insensitive globals (Apinis/Seidl/Vojdani, APLAS'12; Goblint).
///
/// The crucial twist (Example 8): individual contributions must not be
/// combined into the target with ⊟ one by one — narrowing on a single
/// contribution is unsound. SLR+ therefore materializes one fresh unknown
/// `(x, z)` per (contributing equation x, target z) holding the *last*
/// contribution of x to z, maintains `set[z]` = all contributors seen, and
/// extends z's right-hand side with `⊔ { sigma(x,z) | x in set[z] }`. The
/// ⊟ operator is then applied to the *joined* value, which is safe.
///
/// Paper modifications relative to Fig. 6, implemented verbatim:
///
///     side x y d =
///       if (x,y) ∉ dom then sigma[(x,y)] <- ⊥;
///       if d != sigma[(x,y)] then
///         sigma[(x,y)] <- d;
///         if y in dom then set[y] ∪= {x}; stable \= {y}; add Q y
///         else init y; set[y] <- {x}; solve y
///
///     (in solve)
///     tmp <- sigma(x) ⊕ (f_x (eval x) (side x) ⊔ ⊔{sigma(z,x) | z in set x})
///
/// Representation (mirroring slr.h): unknowns are interned into dense
/// *slots* in discovery order — sigma, stable, infl, the on-stack and
/// widening-point marks, the priority queue, and the evaluation cache are
/// flat vectors indexed by slot; the single V-keyed hash lookup left on
/// the hot path is the `y ∈ dom` test. The per-contributor cells sigma(x,z)
/// stay in a V-keyed map (contribution traffic is orders of magnitude
/// below get traffic, and tests read the map through `contributions()`).
/// `set[z]` itself is implicit: the join in solve() runs over *all* of
/// z's cells — cells that never changed still hold ⊥ and join as no-ops,
/// so the result is identical — and a per-slot flag tracks `set[z] != {}`.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_SOLVERS_SLR_PLUS_H
#define WARROW_SOLVERS_SLR_PLUS_H

#include "eqsys/local_system.h"
#include "solvers/stats.h"
#include "support/indexed_heap.h"
#include "trace/trace.h"

#include <cassert>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace warrow {

/// SLR+ solver engine for side-effecting systems.
///
/// With \p LocalizedCombine enabled, the ⊕ operator is applied only at
/// dynamically detected *widening points* — unknowns whose evaluation was
/// re-entered while already in progress (i.e. that sit on a dependency
/// cycle) and unknowns receiving side effects; all other unknowns are
/// combined with plain join. Every cycle passes through a widening point,
/// so termination for monotonic systems is preserved, while acyclic
/// unknowns never lose precision to widening (the localized-widening
/// refinement of the follow-up journal work on SLR).
template <typename V, typename D, typename C> class SlrPlusSolver {
public:
  SlrPlusSolver(const SideEffectingSystem<V, D> &System, C Combine,
                const SolverOptions &Options = {},
                bool LocalizedCombine = false)
      : System(System), Combine(std::move(Combine)), Options(Options),
        Localized(LocalizedCombine) {}

  /// Solves for \p X0 and returns the partial ⊕-solution.
  PartialSolution<V, D> solveFor(const V &X0) {
    solve(internFresh(X0));
    // Drain any unknowns destabilized by side effects that no enclosing
    // update flushed (Fig. 6 drains inside the update branch only; if the
    // chain up to x0 never changes value, destabilized unknowns would
    // otherwise be left unsolved and the result would not be a partial
    // ⊕-solution).
    while (!Failed && !Queue.empty())
      solve(popQ());
    PartialSolution<V, D> Result;
    Result.Sigma.reserve(VarOf.size());
    for (uint32_t S = 0; S < VarOf.size(); ++S)
      Result.Sigma.emplace(VarOf[S], SigmaV[S]);
    Result.Stats = Stats;
    Result.Stats.Converged = !Failed;
    Result.Stats.VarsSeen = VarOf.size();
    Result.Trace = std::move(Trace);
    if (Options.Trace)
      Result.DiscoveryOrder = VarOf;
    return Result;
  }

  // --- Introspection (used by the two-phase baseline and by tests) --------
  std::unordered_map<V, D> assignment() const {
    std::unordered_map<V, D> A;
    A.reserve(VarOf.size());
    for (uint32_t S = 0; S < VarOf.size(); ++S)
      A.emplace(VarOf[S], SigmaV[S]);
    return A;
  }
  /// The paper's key map: key[y] = -(discovery index of y).
  std::unordered_map<V, int64_t> keys() const {
    std::unordered_map<V, int64_t> K;
    K.reserve(VarOf.size());
    for (uint32_t S = 0; S < VarOf.size(); ++S)
      K.emplace(VarOf[S], -static_cast<int64_t>(S));
    return K;
  }
  /// Contributions per target: target -> (contributor -> last value).
  const std::unordered_map<V, std::unordered_map<V, D>> &
  contributions() const {
    return Contribs;
  }
  /// True if \p X ever received a side-effect contribution.
  bool isSideEffected(const V &X) const {
    auto It = SlotOf.find(X);
    return It != SlotOf.end() && SideEffectedV[It->second];
  }
  /// Widening points detected so far (meaningful in localized mode).
  const std::unordered_set<V> &wideningPoints() const {
    return WideningPoints;
  }
  const SolverStats &stats() const { return Stats; }
  bool failed() const { return Failed; }

private:
  /// Last evaluation of one unknown: the (slot, value) pairs read through
  /// `Get`, in read order with duplicates, and the RHS result before the
  /// contribution join and ⊕. Consed values make the copies cheap.
  struct CacheEntry {
    std::vector<std::pair<uint32_t, D>> Reads;
    D Value{};
    bool Valid = false;
  };

  /// `init` of Fig. 6: key <- -count, infl <- {y}, sigma <- sigma_0.
  uint32_t internFresh(const V &Y) {
    assert(!SlotOf.count(Y) && "double init");
    uint32_t S = static_cast<uint32_t>(VarOf.size());
    SlotOf.emplace(Y, S);
    VarOf.push_back(Y);
    SigmaV.push_back(System.initial(Y));
    InflV.push_back({S});
    StableV.push_back(0);
    OnStackV.push_back(0);
    WideningPointV.push_back(0);
    SideEffectedV.push_back(0);
    CacheV.emplace_back();
    Queue.resizeUniverse(VarOf.size());
    return S;
  }

  void addQ(uint32_t S) {
    if (Queue.push(S) && Options.Trace)
      Options.Trace->event(TraceEvent::enqueue(S));
    if (Queue.size() > Stats.QueueMax)
      Stats.QueueMax = Queue.size();
  }

  uint32_t popQ() {
    uint32_t S = Queue.pop();
    if (Options.Trace)
      Options.Trace->event(TraceEvent::dequeue(S));
    return S;
  }

  void solve(uint32_t XS) {
    if (Failed || StableV[XS])
      return;
    StableV[XS] = 1;
    // Hits count against the budget so the hit path cannot loop past
    // MaxRhsEvals on a divergent system; on convergent runs hits replace
    // evals one-for-one and the sum matches the uncached eval count.
    if (Stats.RhsEvals + Stats.RhsCacheHits >= Options.MaxRhsEvals) {
      Failed = true;
      return;
    }
    OnStackV[XS] = 1;
    D New = evaluate(XS);
    if (Failed) {
      OnStackV[XS] = 0;
      return;
    }
    // Join in the recorded contributions of all contributors (cells that
    // never changed still hold ⊥ and drop out of the join).
    auto ContribIt = Contribs.find(VarOf[XS]);
    if (ContribIt != Contribs.end())
      for (const auto &[Z, Value] : ContribIt->second)
        New = New.join(Value);
    // In localized mode, ⊕ is applied at widening points only; elsewhere
    // the unknown simply tracks its right-hand side (plain assignment) —
    // acyclic unknowns stabilize once their inputs do, values may both
    // grow and shrink, and no widening-induced precision is lost.
    bool UseCombine =
        !Localized || WideningPointV[XS] || SideEffectedV[XS];
    D Tmp = UseCombine ? Combine(VarOf[XS], SigmaV[XS], New) : New;
    if (!(Tmp == SigmaV[XS])) {
      if (Options.Trace)
        Options.Trace->event(TraceEvent::update(XS, SigmaV[XS], New, Tmp));
      std::vector<uint32_t> W = std::move(InflV[XS]);
      if (Options.Trace)
        for (uint32_t YS : W)
          Options.Trace->event(TraceEvent::destabilize(YS, XS));
      for (uint32_t YS : W)
        addQ(YS);
      SigmaV[XS] = std::move(Tmp);
      ++Stats.Updates;
      if (Options.RecordTrace)
        Trace.push_back({VarOf[XS], SigmaV[XS]});
      InflV[XS] = {XS};
      for (uint32_t YS : W)
        StableV[YS] = 0;
      // min_key Q <= key[x]  ⟺  max slot in Q >= slot(x).
      while (!Failed && !Queue.empty() && Queue.top() >= XS)
        solve(popQ());
    }
    OnStackV[XS] = 0;
  }

  /// f_x (eval x) (side x), answered from the read cache when every value
  /// x's last evaluation read through `Get` is unchanged. Sound despite
  /// the side effects: contribution values are a pure function of the
  /// reads, and only x's own evaluations write x's contribution cells, so
  /// with identical reads every `side` call the skipped evaluation would
  /// make finds its value already recorded and early-returns (no
  /// destabilization). The contribution join over set[x] stays in solve()
  /// — other contributors can change without x's reads changing.
  D evaluate(uint32_t XS) {
    if (Options.RhsCache && CacheV[XS].Valid && cacheIsFresh(XS)) {
      ++Stats.RhsCacheHits;
      if (Options.Trace)
        Options.Trace->event(TraceEvent::rhsBegin(XS));
      // Replay what a real re-evaluation would do per read, in order:
      // re-register influence (updates of y reset infl[y], so earlier
      // registrations may be gone) and re-run the localized widening-
      // point detection (X is on the stack, exactly as during a real
      // evaluation, so self-reads behave identically).
      for (const auto &R : CacheV[XS].Reads) {
        if (Localized && OnStackV[R.first])
          markWideningPoint(R.first);
        std::vector<uint32_t> &I = InflV[R.first];
        if (I.empty() || I.back() != XS)
          I.push_back(XS);
        if (Options.Trace)
          Options.Trace->event(TraceEvent::dependency(XS, R.first));
      }
      if (Options.Trace)
        Options.Trace->event(TraceEvent::rhsEnd(XS, /*FromCache=*/true));
      return CacheV[XS].Value;
    }
    if (Options.RhsCache)
      ++Stats.RhsCacheMisses;
    ++Stats.RhsEvals;
    if (Options.Trace)
      Options.Trace->event(TraceEvent::rhsBegin(XS));
    // Reads lives in this frame: CacheV may reallocate while the RHS
    // recursively interns fresh unknowns, so no reference into it may be
    // held across the rhs() call (everything below indexes).
    std::vector<std::pair<uint32_t, D>> Reads;
    typename SideEffectingSystem<V, D>::Get Eval =
        [this, XS, &Reads](const V &Y) -> D {
      uint32_t YS = eval(XS, Y);
      if (Options.RhsCache)
        Reads.emplace_back(YS, SigmaV[YS]);
      return SigmaV[YS];
    };
    typename SideEffectingSystem<V, D>::Side Side =
        [this, XS](const V &Y, const D &Value) { side(XS, Y, Value); };
    D New = System.rhs(VarOf[XS])(Eval, Side);
    if (Options.Trace)
      Options.Trace->event(TraceEvent::rhsEnd(XS));
    if (!Failed && Options.RhsCache)
      CacheV[XS] = CacheEntry{std::move(Reads), New, true};
    return New;
  }

  /// True when every recorded read of x's last evaluation would return
  /// the identical value today; pointer/memoized-hash compares for
  /// consed environments.
  bool cacheIsFresh(uint32_t XS) const {
    for (const auto &R : CacheV[XS].Reads)
      if (!(R.second == SigmaV[R.first]))
        return false;
    return true;
  }

  void markWideningPoint(uint32_t YS) {
    if (!WideningPointV[YS]) {
      WideningPointV[YS] = 1;
      WideningPoints.insert(VarOf[YS]);
      if (Options.Trace)
        Options.Trace->event(TraceEvent::wideningPoint(YS));
    }
  }

  /// `eval x y` of the paper minus the value read; returns y's slot.
  uint32_t eval(uint32_t XS, const V &Y) {
    uint32_t YS;
    auto It = SlotOf.find(Y);
    if (It == SlotOf.end()) {
      YS = internFresh(Y);
      solve(YS);
    } else {
      YS = It->second;
      if (Localized && OnStackV[YS]) {
        // Y queried while its own evaluation is in progress: Y closes a
        // dependency cycle and becomes a widening point.
        markWideningPoint(YS);
      }
    }
    // infl[y] ∪= {x}: append with a cheap duplicate filter (see slr.h —
    // transient duplicates are harmless, updates of y reset infl[y]).
    std::vector<uint32_t> &I = InflV[YS];
    if (I.empty() || I.back() != XS)
      I.push_back(XS);
    if (Options.Trace)
      Options.Trace->event(TraceEvent::dependency(XS, YS));
    return YS;
  }

  void side(uint32_t XS, const V &Y, const D &Value) {
    auto &TargetContribs = Contribs[Y];
    auto It = TargetContribs.find(VarOf[XS]);
    if (It == TargetContribs.end())
      It = TargetContribs.emplace(VarOf[XS], D::bot()).first; // <- ⊥
    if (Value == It->second)
      return;
    It->second = Value;
    auto SlotIt = SlotOf.find(Y);
    if (SlotIt != SlotOf.end()) {
      if (Options.Trace) {
        Options.Trace->event(
            TraceEvent::sideContribution(SlotIt->second, XS));
        Options.Trace->event(TraceEvent::destabilize(SlotIt->second, XS));
      }
      SideEffectedV[SlotIt->second] = 1; // set[y] ∪= {x}
      StableV[SlotIt->second] = 0;
      addQ(SlotIt->second);
      return;
    }
    uint32_t YS = internFresh(Y);
    if (Options.Trace)
      Options.Trace->event(TraceEvent::sideContribution(YS, XS));
    SideEffectedV[YS] = 1; // set[y] <- {x}
    solve(YS);
  }

  const SideEffectingSystem<V, D> &System;
  C Combine;
  SolverOptions Options;

  // Dense slot-indexed state; slots are discovery order (`count`).
  std::unordered_map<V, uint32_t> SlotOf; // dom = keys(SlotOf).
  std::vector<V> VarOf;
  std::vector<D> SigmaV;
  std::vector<std::vector<uint32_t>> InflV;
  std::vector<uint8_t> StableV;
  std::vector<uint8_t> OnStackV;
  std::vector<uint8_t> WideningPointV;
  std::vector<uint8_t> SideEffectedV;
  std::vector<CacheEntry> CacheV;
  IndexedHeap<std::greater<uint32_t>> Queue; // top() = max slot = min key.

  // Contribution cells sigma(x,z), target-major; V-keyed on purpose (see
  // file comment). WideningPoints mirrors WideningPointV for the public
  // accessor (writes are rare — once per detected point).
  std::unordered_map<V, std::unordered_map<V, D>> Contribs;
  std::unordered_set<V> WideningPoints;
  std::vector<std::pair<V, D>> Trace;
  SolverStats Stats;
  bool Failed = false;
  bool Localized = false;
};

/// Convenience wrapper running SLR+ once.
template <typename V, typename D, typename C>
PartialSolution<V, D> solveSLRPlus(const SideEffectingSystem<V, D> &System,
                                   const V &X0, C &&Combine,
                                   const SolverOptions &Options = {}) {
  SlrPlusSolver<V, D, std::decay_t<C>> Solver(System, std::forward<C>(Combine),
                                              Options);
  return Solver.solveFor(X0);
}

} // namespace warrow

#endif // WARROW_SOLVERS_SLR_PLUS_H
