//===- solvers/slr_plus.h - Side-effecting SLR+ (paper Sec. 6) --*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SLR+ — the extension of SLR to side-effecting constraint systems
/// (Section 6). Right-hand sides receive, besides `get`, a callback
/// `side(z, d)` contributing the value d to unknown z; such systems
/// express context-sensitive interprocedural analysis with flow-
/// insensitive globals (Apinis/Seidl/Vojdani, APLAS'12; Goblint).
///
/// The crucial twist (Example 8): individual contributions must not be
/// combined into the target with ⊟ one by one — narrowing on a single
/// contribution is unsound. SLR+ therefore materializes one fresh unknown
/// `(x, z)` per (contributing equation x, target z) holding the *last*
/// contribution of x to z, maintains `set[z]` = all contributors seen, and
/// extends z's right-hand side with `⊔ { sigma(x,z) | x in set[z] }`. The
/// ⊟ operator is then applied to the *joined* value, which is safe.
///
/// Paper modifications relative to Fig. 6, implemented verbatim:
///
///     side x y d =
///       if (x,y) ∉ dom then sigma[(x,y)] <- ⊥;
///       if d != sigma[(x,y)] then
///         sigma[(x,y)] <- d;
///         if y in dom then set[y] ∪= {x}; stable \= {y}; add Q y
///         else init y; set[y] <- {x}; solve y
///
///     (in solve)
///     tmp <- sigma(x) ⊕ (f_x (eval x) (side x) ⊔ ⊔{sigma(z,x) | z in set x})
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_SOLVERS_SLR_PLUS_H
#define WARROW_SOLVERS_SLR_PLUS_H

#include "eqsys/local_system.h"
#include "solvers/stats.h"

#include <cassert>
#include <cstdint>
#include <functional>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace warrow {

/// SLR+ solver engine for side-effecting systems.
///
/// With \p LocalizedCombine enabled, the ⊕ operator is applied only at
/// dynamically detected *widening points* — unknowns whose evaluation was
/// re-entered while already in progress (i.e. that sit on a dependency
/// cycle) and unknowns receiving side effects; all other unknowns are
/// combined with plain join. Every cycle passes through a widening point,
/// so termination for monotonic systems is preserved, while acyclic
/// unknowns never lose precision to widening (the localized-widening
/// refinement of the follow-up journal work on SLR).
template <typename V, typename D, typename C> class SlrPlusSolver {
public:
  SlrPlusSolver(const SideEffectingSystem<V, D> &System, C Combine,
                const SolverOptions &Options = {},
                bool LocalizedCombine = false)
      : System(System), Combine(std::move(Combine)), Options(Options),
        Localized(LocalizedCombine) {}

  /// Solves for \p X0 and returns the partial ⊕-solution.
  PartialSolution<V, D> solveFor(const V &X0) {
    init(X0);
    solve(X0);
    // Drain any unknowns destabilized by side effects that no enclosing
    // update flushed (Fig. 6 drains inside the update branch only; if the
    // chain up to x0 never changes value, destabilized unknowns would
    // otherwise be left unsolved and the result would not be a partial
    // ⊕-solution).
    while (!Failed && !Queue.empty()) {
      int64_t MinKey = *Queue.begin();
      Queue.erase(Queue.begin());
      solve(KeyToVar.at(MinKey));
    }
    PartialSolution<V, D> Result;
    Result.Sigma = Sigma;
    Result.Stats = Stats;
    Result.Stats.Converged = !Failed;
    Result.Stats.VarsSeen = Sigma.size();
    Result.Trace = std::move(Trace);
    return Result;
  }

  // --- Introspection (used by the two-phase baseline and by tests) --------
  const std::unordered_map<V, D> &assignment() const { return Sigma; }
  const std::unordered_map<V, int64_t> &keys() const { return Key; }
  /// Contributions per target: target -> (contributor -> last value).
  const std::unordered_map<V, std::unordered_map<V, D>> &
  contributions() const {
    return Contribs;
  }
  /// True if \p X ever received a side-effect contribution.
  bool isSideEffected(const V &X) const {
    auto It = SetOf.find(X);
    return It != SetOf.end() && !It->second.empty();
  }
  /// Widening points detected so far (meaningful in localized mode).
  const std::unordered_set<V> &wideningPoints() const {
    return WideningPoints;
  }
  const SolverStats &stats() const { return Stats; }
  bool failed() const { return Failed; }

private:
  void init(const V &Y) {
    assert(!Sigma.count(Y) && "double init");
    Key[Y] = -Count;
    KeyToVar.emplace(-Count, Y);
    ++Count;
    Infl[Y] = {Y};
    SetOf[Y]; // set[y] <- {} (created empty).
    Sigma.emplace(Y, System.initial(Y));
  }

  void addQ(const V &Y) {
    Queue.insert(Key.at(Y));
    if (Queue.size() > Stats.QueueMax)
      Stats.QueueMax = Queue.size();
  }

  void solve(const V &X) {
    if (Failed || Stable.count(X))
      return;
    Stable.insert(X);
    if (Stats.RhsEvals >= Options.MaxRhsEvals) {
      Failed = true;
      return;
    }
    ++Stats.RhsEvals;
    OnStack.insert(X);
    typename SideEffectingSystem<V, D>::Get Eval = [this,
                                                    X](const V &Y) -> D {
      return eval(X, Y);
    };
    typename SideEffectingSystem<V, D>::Side Side =
        [this, X](const V &Y, const D &Value) { side(X, Y, Value); };
    D New = System.rhs(X)(Eval, Side);
    if (Failed) {
      OnStack.erase(X);
      return;
    }
    // Join in the recorded contributions of all known contributors.
    for (const V &Z : SetOf.at(X)) {
      auto TargetIt = Contribs.find(X);
      if (TargetIt == Contribs.end())
        break;
      auto It = TargetIt->second.find(Z);
      if (It != TargetIt->second.end())
        New = New.join(It->second);
    }
    // In localized mode, ⊕ is applied at widening points only; elsewhere
    // the unknown simply tracks its right-hand side (plain assignment) —
    // acyclic unknowns stabilize once their inputs do, values may both
    // grow and shrink, and no widening-induced precision is lost.
    bool UseCombine =
        !Localized || WideningPoints.count(X) || isSideEffected(X);
    D Tmp = UseCombine ? Combine(X, Sigma.at(X), New) : New;
    if (!(Tmp == Sigma.at(X))) {
      std::unordered_set<V> W = std::move(Infl[X]);
      for (const V &Y : W)
        addQ(Y);
      Sigma[X] = std::move(Tmp);
      ++Stats.Updates;
      if (Options.RecordTrace)
        Trace.push_back({X, Sigma.at(X)});
      Infl[X] = {X};
      for (const V &Y : W)
        Stable.erase(Y);
      int64_t KeyX = Key.at(X);
      while (!Failed && !Queue.empty() && *Queue.begin() <= KeyX) {
        int64_t MinKey = *Queue.begin();
        Queue.erase(Queue.begin());
        solve(KeyToVar.at(MinKey));
      }
    }
    OnStack.erase(X);
  }

  D eval(const V &X, const V &Y) {
    if (!Sigma.count(Y)) {
      init(Y);
      solve(Y);
    } else if (Localized && OnStack.count(Y)) {
      // Y queried while its own evaluation is in progress: Y closes a
      // dependency cycle and becomes a widening point.
      WideningPoints.insert(Y);
    }
    Infl[Y].insert(X);
    return Sigma.at(Y);
  }

  void side(const V &X, const V &Y, const D &Value) {
    auto &TargetContribs = Contribs[Y];
    auto It = TargetContribs.find(X);
    if (It == TargetContribs.end())
      It = TargetContribs.emplace(X, D::bot()).first; // sigma[(x,y)] <- ⊥
    if (Value == It->second)
      return;
    It->second = Value;
    if (Sigma.count(Y)) {
      SetOf[Y].insert(X);
      Stable.erase(Y);
      addQ(Y);
      return;
    }
    init(Y);
    SetOf[Y] = {X};
    solve(Y);
  }

  const SideEffectingSystem<V, D> &System;
  C Combine;
  SolverOptions Options;

  std::unordered_map<V, D> Sigma;
  std::unordered_map<V, int64_t> Key;
  std::unordered_map<int64_t, V> KeyToVar;
  std::unordered_map<V, std::unordered_set<V>> Infl;
  std::unordered_map<V, std::unordered_set<V>> SetOf;
  std::unordered_map<V, std::unordered_map<V, D>> Contribs;
  std::unordered_set<V> Stable;
  std::unordered_set<V> OnStack;
  std::unordered_set<V> WideningPoints;
  std::set<int64_t> Queue;
  std::vector<std::pair<V, D>> Trace;
  int64_t Count = 0;
  SolverStats Stats;
  bool Failed = false;
  bool Localized = false;
};

/// Convenience wrapper running SLR+ once.
template <typename V, typename D, typename C>
PartialSolution<V, D> solveSLRPlus(const SideEffectingSystem<V, D> &System,
                                   const V &X0, C &&Combine,
                                   const SolverOptions &Options = {}) {
  SlrPlusSolver<V, D, std::decay_t<C>> Solver(System, std::forward<C>(Combine),
                                              Options);
  return Solver.solveFor(X0);
}

} // namespace warrow

#endif // WARROW_SOLVERS_SLR_PLUS_H
