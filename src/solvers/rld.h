//===- solvers/rld.h - Recursive local descent (paper Fig. 5) ---*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The recursive local solver RLD of Hofmann, Karbyshev & Seidl (SAS'10),
/// the baseline the paper repairs — a thin shim over the engine's
/// RecursiveDescent strategy (engine/strategies/recursive_descent.h).
/// Registered as "rld".
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_SOLVERS_RLD_H
#define WARROW_SOLVERS_RLD_H

#include "engine/strategies/recursive_descent.h"

#include <utility>

namespace warrow {

/// Runs RLD for the interesting unknown \p X0.
template <typename V, typename D, typename C>
PartialSolution<V, D> solveRLD(const LocalSystem<V, D> &System, const V &X0,
                               C &&Combine, const SolverOptions &Options = {}) {
  return engine::runRecursiveDescent(System, X0, std::forward<C>(Combine),
                                     Options);
}

} // namespace warrow

#endif // WARROW_SOLVERS_RLD_H
