//===- solvers/srr.h - Structured round-robin (paper Fig. 3) ----*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured round-robin solver SRR of the paper's Figure 3:
///
///     void solve i {
///       if (i = 0) return;
///       solve (i-1);
///       new <- sigma[x_i] ⊕ f_i(sigma);
///       if (sigma[x_i] != new) { sigma[x_i] <- new; solve i; }
///     }
///     // started as: solve n
///
/// SRR iterates on unknown x_i until stabilization, re-solving all smaller
/// unknowns before each evaluation. Theorem 1: with ⊕ = ⊟ and monotonic
/// right-hand sides SRR always terminates, and for ⊕ = ⊔ over a lattice of
/// height h it needs at most `n + h/2 * n(n+1)` evaluations.
///
/// The implementation is an iterative reformulation of the recursion
/// (which otherwise nests up to n*h frames deep): maintain a cursor i;
/// evaluate x_i; on change restart the cursor at 1, else advance. The
/// invariant is identical — whenever x_i is evaluated, all x_j with j < i
/// satisfy sigma[x_j] = sigma[x_j] ⊕ f_j(sigma) — and the evaluation
/// sequences coincide (verified against the paper's Example 3 trace).
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_SOLVERS_SRR_H
#define WARROW_SOLVERS_SRR_H

#include "eqsys/dense_system.h"
#include "solvers/stats.h"
#include "trace/trace.h"

namespace warrow {

/// Runs structured round-robin iteration with combine operator \p Combine.
template <typename D, typename C>
SolveResult<D> solveSRR(const DenseSystem<D> &System, C &&Combine,
                        const SolverOptions &Options = {}) {
  SolveResult<D> Result;
  Result.Sigma = System.initialAssignment();
  Result.Stats.VarsSeen = System.size();
  Var Current = 0; // Unknown under evaluation, for dependency events.
  auto Get = [&Result, &Options, &Current](Var Y) {
    if (Options.Trace)
      Options.Trace->event(TraceEvent::dependency(Current, Y));
    return Result.Sigma[Y];
  };

  size_t I = 0; // Cursor over 0-based unknown indices.
  while (I < System.size()) {
    if (Result.Stats.RhsEvals >= Options.MaxRhsEvals) {
      Result.Stats.Converged = false;
      return Result;
    }
    Var X = static_cast<Var>(I);
    ++Result.Stats.RhsEvals;
    if (Options.Trace) {
      Current = X;
      Options.Trace->event(TraceEvent::rhsBegin(X));
    }
    D Rhs = System.eval(X, Get);
    if (Options.Trace)
      Options.Trace->event(TraceEvent::rhsEnd(X));
    D New = Combine(X, Result.Sigma[X], Rhs);
    if (Result.Sigma[X] == New) {
      ++I;
      continue;
    }
    if (Options.Trace)
      Options.Trace->event(TraceEvent::update(X, Result.Sigma[X], Rhs, New));
    Result.Sigma[X] = New;
    ++Result.Stats.Updates;
    if (Options.RecordTrace)
      Result.Trace.push_back({X, Result.Sigma[X]});
    I = 0; // Re-stabilize all smaller unknowns, then revisit X.
  }
  return Result;
}

} // namespace warrow

#endif // WARROW_SOLVERS_SRR_H
