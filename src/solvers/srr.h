//===- solvers/srr.h - Structured round-robin (paper Fig. 3) ----*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured round-robin solver SRR of the paper's Figure 3
/// (Theorem 1) — a thin shim over the engine's StructuredRoundRobin
/// strategy (engine/strategies/structured_round_robin.h). Registered as
/// "srr".
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_SOLVERS_SRR_H
#define WARROW_SOLVERS_SRR_H

#include "engine/strategies/structured_round_robin.h"

#include <utility>

namespace warrow {

/// Runs structured round-robin iteration with combine operator \p Combine.
template <typename D, typename C>
SolveResult<D> solveSRR(const DenseSystem<D> &System, C &&Combine,
                        const SolverOptions &Options = {}) {
  return engine::runStructuredRoundRobin(System, std::forward<C>(Combine),
                                         Options);
}

} // namespace warrow

#endif // WARROW_SOLVERS_SRR_H
