//===- solvers/two_phase_local.h - Two-phase baseline (local) ---*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classical two-phase widening/narrowing baseline for *side-effecting*
/// local systems — the comparison point of the paper's Figure 7.
///
/// Phase 1 runs SLR+ with ⊕ = ▽ to obtain a post solution on the
/// discovered domain. Phase 2 performs descending (narrowing) sweeps over
/// that fixed domain with ⊕ = △, re-evaluating each right-hand side
/// against the current assignment.
///
/// Faithful to the pre-paper state of the art, side-effected unknowns
/// (globals) are *frozen* during phase 2: without SLR+'s per-contributor
/// value tracking, narrowing a global from any individual contribution is
/// unsound (paper, Example 8), so a classical solver must keep the widened
/// value. Side effects emitted during phase-2 re-evaluations are therefore
/// discarded. This is the precision gap the ⊟-solver closes.
///
/// Soundness requires monotonic right-hand sides and a fixed unknown set —
/// exactly the conditions of Fact 1; the context-sensitive analyses of
/// Table 1 violate them, which is why only ▽ and ⊟ are compared there.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_SOLVERS_TWO_PHASE_LOCAL_H
#define WARROW_SOLVERS_TWO_PHASE_LOCAL_H

#include "eqsys/local_system.h"
#include "lattice/combine.h"
#include "solvers/slr_plus.h"
#include "solvers/stats.h"
#include "trace/trace.h"

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

namespace warrow {

/// Runs the two-phase baseline on a side-effecting system, solving for
/// \p X0. \p MaxNarrowRounds bounds the number of full descending sweeps.
template <typename V, typename D>
PartialSolution<V, D>
solveTwoPhaseSide(const SideEffectingSystem<V, D> &System, const V &X0,
                  const SolverOptions &Options = {},
                  unsigned MaxNarrowRounds = 8) {
  // Phase 1: ascending with widening.
  if (Options.Trace)
    Options.Trace->event(TraceEvent::phaseChange(0));
  SlrPlusSolver<V, D, WidenCombine> Ascending(System, WidenCombine{},
                                              Options);
  PartialSolution<V, D> Result = Ascending.solveFor(X0);
  if (!Result.Stats.Converged)
    return Result;

  // Phase-2 events reuse phase 1's slot ids (key[x] = -slot, Fig. 6).
  std::unordered_map<V, uint64_t> SlotOf;
  if (Options.Trace)
    for (const auto &[X, KeyValue] : Ascending.keys())
      SlotOf.emplace(X, static_cast<uint64_t>(-KeyValue));

  // Stable iteration order: by discovery key, oldest (x0) last, so inner
  // (fresher) unknowns narrow first — mirroring SLR's priority discipline.
  std::vector<std::pair<int64_t, V>> Order;
  Order.reserve(Result.Sigma.size());
  for (const auto &[X, KeyValue] : Ascending.keys())
    Order.push_back({KeyValue, X});
  std::sort(Order.begin(), Order.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });

  auto GetCurrent = [&System, &Result](const V &Y) -> D {
    auto It = Result.Sigma.find(Y);
    return It == Result.Sigma.end() ? System.initial(Y) : It->second;
  };
  typename SideEffectingSystem<V, D>::Side DiscardSide =
      [](const V &, const D &) {};

  // Per-unknown read cache for the sweeps: a descending round mostly
  // re-confirms values, so most right-hand sides see the exact inputs of
  // the previous round and need not run (side effects are discarded in
  // phase 2, so skipping is trivially sound here).
  struct CacheEntry {
    std::vector<std::pair<V, D>> Reads;
    D Value{};
  };
  std::unordered_map<V, CacheEntry> Cache;

  // Phase 2: descending sweeps with narrowing; frozen globals.
  for (unsigned Round = 0; Round < MaxNarrowRounds; ++Round) {
    if (Options.Trace)
      Options.Trace->event(TraceEvent::phaseChange(1, Round));
    bool Changed = false;
    for (const auto &[KeyValue, X] : Order) {
      if (Ascending.isSideEffected(X))
        continue; // Frozen: classical solvers cannot narrow globals.
      if (Result.Stats.RhsEvals + Result.Stats.RhsCacheHits >=
          Options.MaxRhsEvals) {
        Result.Stats.Converged = false;
        return Result;
      }
      const uint64_t XSlot =
          Options.Trace ? SlotOf.at(X) : 0;
      auto DepEvent = [&](const V &Y) {
        auto It = SlotOf.find(Y);
        if (It != SlotOf.end())
          Options.Trace->event(TraceEvent::dependency(XSlot, It->second));
      };
      D New;
      auto CIt = Options.RhsCache ? Cache.find(X) : Cache.end();
      bool Hit = CIt != Cache.end() &&
                 std::all_of(CIt->second.Reads.begin(),
                             CIt->second.Reads.end(), [&](const auto &R) {
                               return R.second == GetCurrent(R.first);
                             });
      if (Hit) {
        ++Result.Stats.RhsCacheHits;
        if (Options.Trace) {
          Options.Trace->event(TraceEvent::rhsBegin(XSlot));
          for (const auto &R : CIt->second.Reads)
            DepEvent(R.first);
          Options.Trace->event(TraceEvent::rhsEnd(XSlot,
                                                  /*FromCache=*/true));
        }
        New = CIt->second.Value;
      } else {
        if (Options.RhsCache)
          ++Result.Stats.RhsCacheMisses;
        ++Result.Stats.RhsEvals;
        if (Options.Trace)
          Options.Trace->event(TraceEvent::rhsBegin(XSlot));
        std::vector<std::pair<V, D>> Reads;
        typename SideEffectingSystem<V, D>::Get Get =
            [&](const V &Y) -> D {
          D Val = GetCurrent(Y);
          if (Options.RhsCache)
            Reads.emplace_back(Y, Val);
          if (Options.Trace)
            DepEvent(Y);
          return Val;
        };
        New = System.rhs(X)(Get, DiscardSide);
        if (Options.Trace)
          Options.Trace->event(TraceEvent::rhsEnd(XSlot));
        if (Options.RhsCache)
          Cache[X] = CacheEntry{std::move(Reads), New};
      }
      D Narrowed = Result.Sigma.at(X).narrow(New);
      if (!(Narrowed == Result.Sigma.at(X))) {
        if (Options.Trace)
          Options.Trace->event(
              TraceEvent::update(XSlot, Result.Sigma.at(X), New, Narrowed));
        Result.Sigma[X] = std::move(Narrowed);
        ++Result.Stats.Updates;
        Changed = true;
      }
    }
    if (!Changed)
      break;
  }
  return Result;
}

/// Two-phase baseline for plain (non-side-effecting) local systems,
/// implemented by wrapping them as side-effecting systems with no effects.
template <typename V, typename D>
PartialSolution<V, D> solveTwoPhaseLocal(const LocalSystem<V, D> &System,
                                         const V &X0,
                                         const SolverOptions &Options = {},
                                         unsigned MaxNarrowRounds = 8) {
  SideEffectingSystem<V, D> Wrapped(
      [&System](const V &X) -> typename SideEffectingSystem<V, D>::Rhs {
        typename LocalSystem<V, D>::Rhs F = System.rhs(X);
        return [F](const typename SideEffectingSystem<V, D>::Get &Get,
                   const typename SideEffectingSystem<V, D>::Side &) {
          return F(Get);
        };
      },
      [&System](const V &X) { return System.initial(X); });
  return solveTwoPhaseSide(Wrapped, X0, Options, MaxNarrowRounds);
}

} // namespace warrow

#endif // WARROW_SOLVERS_TWO_PHASE_LOCAL_H
