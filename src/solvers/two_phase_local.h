//===- solvers/two_phase_local.h - Two-phase (local/side) -------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classical two-phase widening/narrowing baseline for side-effecting
/// local systems (the comparison point of the paper's Figure 7) — thin
/// shims over the engine's TwoPhaseLocal strategy
/// (engine/strategies/two_phase_local.h). Registered as "two-phase"; the
/// engine additionally registers "two-phase-localized" with localized
/// phase-1 widening points.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_SOLVERS_TWO_PHASE_LOCAL_H
#define WARROW_SOLVERS_TWO_PHASE_LOCAL_H

#include "engine/strategies/two_phase_local.h"

namespace warrow {

/// Runs the two-phase baseline on a side-effecting system, solving for
/// \p X0. \p MaxNarrowRounds bounds the number of full descending sweeps.
template <typename V, typename D>
PartialSolution<V, D>
solveTwoPhaseSide(const SideEffectingSystem<V, D> &System, const V &X0,
                  const SolverOptions &Options = {},
                  unsigned MaxNarrowRounds = 8) {
  return engine::runTwoPhaseSide(System, X0, Options, MaxNarrowRounds);
}

/// Two-phase baseline for plain (non-side-effecting) local systems,
/// implemented by wrapping them as side-effecting systems with no effects.
template <typename V, typename D>
PartialSolution<V, D> solveTwoPhaseLocal(const LocalSystem<V, D> &System,
                                         const V &X0,
                                         const SolverOptions &Options = {},
                                         unsigned MaxNarrowRounds = 8) {
  return engine::runTwoPhaseLocal(System, X0, Options, MaxNarrowRounds);
}

} // namespace warrow

#endif // WARROW_SOLVERS_TWO_PHASE_LOCAL_H
